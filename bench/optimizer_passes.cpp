// Ablation bench for the core/opt plan-optimizer passes (DESIGN.md §5).
//
// Two questions, answered on the same trained MLP the design ablation
// uses:
//   1. Parity — enabling the full pass pipeline must not cost accuracy:
//      every scheme x cell grid point is deployed with the pipeline off
//      and on, and both mean accuracies are recorded side by side.
//   2. Savings — how much each pass contributes: the pass list is grown
//      one pass at a time (cumulative prefixes) and after each step the
//      plan's offset-register count, Table II overhead area/power
//      (arch::plan_overhead) and per-inference offset energy
//      (arch::vmm_energy at each layer's own m) are recorded.
// Everything recorded here is compile-time deterministic: same binary,
// same numbers, any RDO_THREADS (the CI opt-parity job relies on this).
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "arch/energy.h"
#include "arch/isaac_cost.h"
#include "common.h"
#include "core/opt/pipeline.h"
#include "core/plan.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "quant/act_quant.h"

using namespace rdo;
using namespace rdo::bench;
using core::Scheme;

namespace {

struct Fixture {
  data::SyntheticDataset ds;
  nn::Sequential net;
  float ideal = 0.0f;

  Fixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.train_per_class = 60;
    spec.test_per_class = 20;
    ds = data::make_synthetic(spec);
    nn::Rng rng(21);
    net.emplace<nn::Flatten>();
    net.emplace<quant::ActQuant>(8);
    net.emplace<nn::Dense>(28 * 28, 64, rng);
    net.emplace<nn::ReLU>();
    net.emplace<quant::ActQuant>(8);
    net.emplace<nn::Dense>(64, 10, rng);
    nn::SGD opt(net.params(), 0.05f);
    for (int e = 0; e < 6; ++e) {
      nn::train_epoch(net, opt, ds.train(), 32, rng);
    }
    ideal = nn::evaluate(net, ds.test(), 64).accuracy;
  }

  float run(obs::BenchReport& rep, const std::string& label,
            core::DeployOptions o) {
    try {
      obs::PhaseTimer t(rep.recorder(), "parity_sweep");
      const auto res =
          core::run_scheme(net, o, ds.train(), ds.test(), kRepeats);
      record_scheme_result(rep, label, o, res);
      return res.mean_accuracy;
    } catch (const std::exception& e) {
      rep.add_failure(label, e.what());
      return std::numeric_limits<float>::quiet_NaN();
    }
  }
};

/// Deterministic hardware accounting of one (possibly optimized) plan:
/// registers kept, Table II area/power and the offset share of one
/// inference's energy, each layer priced at its own m.
struct PlanCost {
  long long registers = 0;
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double offset_pj = 0.0;
};

PlanCost plan_cost(const core::DeploymentPlan& plan, int offset_bits) {
  PlanCost c;
  std::vector<arch::LayerOffsetCost> lc;
  const double state_sum =
      plan.assigned_read_power() /
      static_cast<double>(plan.total_crossbars());
  for (std::size_t li = 0; li < plan.layers.size(); ++li) {
    const core::PlanLayer& pl = plan.layers[li];
    const auto xbars =
        static_cast<long long>(plan.layer_tiling(li).total_crossbars());
    lc.push_back({pl.m, xbars,
                  static_cast<long long>(pl.offset_registers)});
    arch::VmmGeometry g;
    g.m = pl.m;
    c.offset_pj += arch::vmm_energy(g, state_sum).offset_pj *
                   static_cast<double>(xbars);
  }
  const double ratio = plan.assigned_read_power() / plan.plain_read_power();
  const arch::PlanOverhead ov = arch::plan_overhead(lc, offset_bits, ratio);
  c.registers = ov.registers;
  c.area_mm2 = ov.area_mm2;
  c.power_mw = ov.power_mw;
  return c;
}

}  // namespace

int main() {
  obs::BenchReport rep("optimizer_passes", 2021);

  std::unique_ptr<Fixture> f;
  {
    obs::PhaseTimer t(rep.recorder(), "train_models");
    f = std::make_unique<Fixture>();
  }
  rep.results()["ideal_accuracy"] = static_cast<double>(f->ideal);

  const std::vector<std::string>& passes = core::opt::registered_passes();
  std::string all_passes;
  for (const std::string& p : passes) {
    if (!all_passes.empty()) all_passes += ',';
    all_passes += p;
  }

  std::printf("=== optimizer passes (MLP, sigma = 0.5, m = 16) ===\n");
  std::printf("ideal accuracy: %.2f%%\n", 100 * f->ideal);

  // [1] Parity grid: pipeline off vs on, every scheme x cell point.
  std::printf("\n[1] accuracy parity: pipeline off -> on\n");
  const struct {
    Scheme scheme;
    const char* name;
  } schemes[] = {{Scheme::Plain, "plain"},
                 {Scheme::VAWOStar, "vawo*"},
                 {Scheme::VAWOStarPWT, "vawo*+pwt"}};
  const struct {
    rram::CellKind cell;
    const char* name;
  } cells[] = {{rram::CellKind::SLC, "SLC"}, {rram::CellKind::MLC2, "MLC2"}};
  for (const auto& s : schemes) {
    for (const auto& cl : cells) {
      auto off = bench_options(s.scheme, 16, cl.cell, 0.5);
      auto on = off;
      on.opt_passes = all_passes;
      const std::string tag =
          std::string(s.name) + "/" + cl.name;
      const float a_off = f->run(rep, "parity/" + tag + "/off", off);
      const float a_on = f->run(rep, "parity/" + tag + "/on", on);
      std::printf("  %-16s off %.1f%%  on %.1f%%  (delta %+.2f%%)\n",
                  tag.c_str(), 100 * a_off, 100 * a_on,
                  100 * (a_on - a_off));
    }
  }

  // [2] Cumulative per-pass savings on the VAWO*/SLC plan. Compiled
  // once, then each pass prefix is re-applied to a fresh copy so every
  // row isolates the marginal contribution of one pass.
  std::printf("\n[2] per-pass savings (VAWO*, SLC): registers / area / "
              "power / offset energy\n");
  const auto base_opt =
      bench_options(Scheme::VAWOStar, 16, rram::CellKind::SLC, 0.5);
  const core::DeploymentPlan base = [&] {
    obs::PhaseTimer t(rep.recorder(), "compile_base_plan");
    return core::compile_plan(f->net, base_opt, f->ds.train());
  }();
  const PlanCost c0 = plan_cost(base, base_opt.offsets.offset_bits);
  std::printf("  %-28s %8lld  %7.4f mm^2  %7.2f mW  %9.1f pJ\n",
              "(no passes)", c0.registers, c0.area_mm2, c0.power_mw,
              c0.offset_pj);
  rep.results()["savings"] = obs::Json::array();
  {
    obs::Json row = obs::Json::object();
    row["passes"] = std::string("");
    row["offset_registers"] = static_cast<std::int64_t>(c0.registers);
    row["area_mm2"] = c0.area_mm2;
    row["power_mw"] = c0.power_mw;
    row["offset_energy_pj"] = c0.offset_pj;
    rep.results()["savings"].push_back(std::move(row));
  }
  for (std::size_t n = 1; n <= passes.size(); ++n) {
    const std::vector<std::string> prefix(passes.begin(),
                                          passes.begin() +
                                              static_cast<long>(n));
    core::DeploymentPlan p = base;
    {
      obs::PhaseTimer t(rep.recorder(), "run_pass_prefix");
      core::opt::run_pipeline(p, prefix);
    }
    const PlanCost c = plan_cost(p, base_opt.offsets.offset_bits);
    std::printf("  + %-26s %8lld  %7.4f mm^2  %7.2f mW  %9.1f pJ\n",
                passes[n - 1].c_str(), c.registers, c.area_mm2, c.power_mw,
                c.offset_pj);
    obs::Json row = obs::Json::object();
    row["passes"] = prefix.back();
    row["offset_registers"] = static_cast<std::int64_t>(c.registers);
    row["area_mm2"] = c.area_mm2;
    row["power_mw"] = c.power_mw;
    row["offset_energy_pj"] = c.offset_pj;
    rep.results()["savings"].push_back(std::move(row));
  }

  // The acceptance invariant, checked here so a regression turns the
  // bench red: the full pipeline must strictly shrink the register
  // count on this committed model.
  core::DeploymentPlan full = base;
  core::opt::run_pipeline(full, passes);
  if (full.total_offset_registers() >= base.total_offset_registers()) {
    rep.add_failure("savings",
                    "full pipeline did not reduce offset registers");
  }
  std::printf(
      "\nexpected: [1] deltas are >= 0 everywhere (passes are parity- or\n"
      "improvement-only; PWT rows are no-ops by design); [2] registers,\n"
      "area and offset energy shrink monotonically as passes stack.\n");
  return finish_report(rep);
}
