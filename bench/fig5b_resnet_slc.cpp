// Fig. 5(b): ResNet accuracy on SLC crossbars under every scheme and
// sharing granularity.
//
// Paper reference (ResNet-18 + CIFAR-10, SLC, sigma = 0.5, ideal 94.14%):
//   plain collapses; VAWO* alone NOT sufficient; PWT alone ineffective;
//   VAWO*+PWT recovers to 91.37% at m = 16 (2.77% drop).
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.h"
#include "nn/parallel.h"

using namespace rdo;
using namespace rdo::bench;
using core::Scheme;

int main() {
  obs::BenchReport rep("fig5b_resnet_slc", 2021);

  const data::SyntheticDataset ds = bench_cifar();
  float ideal = 0.0f;
  std::unique_ptr<nn::Sequential> net;
  {
    obs::PhaseTimer t(rep.recorder(), "train_models");
    net = cached_resnet(ds, &ideal);
  }
  rep.results()["ideal_accuracy"] = static_cast<double>(ideal);

  std::printf("=== Fig 5(b): ResNet (scaled) + CIFAR-like, SLC cells ===\n");
  std::printf("ideal (float) accuracy: %.2f%%   [paper: 94.14%%]\n", 100 * ideal);

  const int ms[] = {16, 64, 128};
  const Scheme schemes[] = {Scheme::Plain, Scheme::VAWO, Scheme::VAWOStar,
                            Scheme::PWT, Scheme::VAWOStarPWT};
  const double sigmas[] = {kSigmaStar, 0.5};

  std::vector<core::DeployOptions> jobs;
  for (double sigma : sigmas) {
    for (Scheme s : schemes) {
      for (int m : ms) {
        jobs.push_back(bench_options(s, m, rram::CellKind::SLC, sigma));
      }
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<core::SchemeResult> grid;
  {
    obs::PhaseTimer t(rep.recorder(), "deployment_sweep");
    grid = run_grid(*net, jobs, ds.train(), ds.test(), kRepeats);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::size_t j = 0;
  for (double sigma : sigmas) {
    std::printf("\n-- sigma = %.2f%s --\n", sigma,
                sigma == kSigmaStar ? " (calibrated sigma*)" : " (nominal)");
    std::printf("%-12s", "scheme");
    for (int m : ms) std::printf("  m=%-3d ", m);
    std::printf("\n");
    for (Scheme s : schemes) {
      std::printf("%-12s", core::to_string(s));
      for ([[maybe_unused]] int m : ms) {
        std::printf("  %5.1f%%", 100 * grid[j].mean_accuracy);
        char label[64];
        std::snprintf(label, sizeof(label), "sigma%.2f/%s/m%d", sigma,
                      core::to_string(s), jobs[j].offsets.m);
        record_scheme_result(rep, label, jobs[j], grid[j]);
        ++j;
      }
      std::printf("\n");
    }
  }
  std::fprintf(stderr, "[bench] deployment sweep: %.1f s (RDO_THREADS=%d)\n",
               secs, nn::thread_count());
  std::printf(
      "\nexpected shape: deeper net => VAWO*/PWT alone leave a larger gap\n"
      "than on LeNet; the combination VAWO*+PWT recovers most of it.\n");
  return finish_report(rep);
}
