// Micro-benchmarks (google-benchmark) for the simulation kernels: device
// programming, crossbar VMM, LUT construction, the VAWO group solver, and
// conv lowering.
#include <benchmark/benchmark.h>

#include <atomic>

#include "core/vawo.h"
#include "nn/conv2d.h"
#include "nn/gemm.h"
#include "nn/parallel.h"
#include "rram/crossbar.h"
#include "rram/rlut.h"

using namespace rdo;
using rdo::nn::Rng;

namespace {

void BM_WeightProgram(benchmark::State& state) {
  const rram::CellModel cell{
      state.range(0) == 1 ? rram::CellKind::SLC : rram::CellKind::MLC2,
      200.0};
  rram::WeightProgrammer prog(cell, 8, {0.5, 0.0});
  Rng rng(1);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prog.program(v, rng));
    v = (v + 37) & 255;
  }
}
BENCHMARK(BM_WeightProgram)->Arg(1)->Arg(2);

void BM_CrossbarProgram(benchmark::State& state) {
  rram::CrossbarConfig cfg;
  cfg.cell = {rram::CellKind::MLC2, 200.0};
  cfg.variation = {0.5, 0.0};
  rram::Crossbar xb(cfg);
  Rng rng(2);
  std::vector<int> states(128 * 128);
  for (std::size_t i = 0; i < states.size(); ++i) {
    states[i] = static_cast<int>(i % 4);
  }
  for (auto _ : state) {
    xb.program(states, rng);
  }
  state.SetItemsProcessed(state.iterations() * 128 * 128);
}
BENCHMARK(BM_CrossbarProgram);

void BM_CrossbarVmm(benchmark::State& state) {
  rram::CrossbarConfig cfg;
  cfg.cell = {rram::CellKind::MLC2, 200.0};
  cfg.variation = {0.5, 0.0};
  cfg.active_wordlines = static_cast<int>(state.range(0));
  rram::Crossbar xb(cfg);
  Rng rng(3);
  std::vector<int> states(128 * 128);
  for (std::size_t i = 0; i < states.size(); ++i) {
    states[i] = static_cast<int>((i * 7) % 4);
  }
  xb.program(states, rng);
  std::vector<double> x(128);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xb.vmm(x));
  }
  state.SetItemsProcessed(state.iterations() * 128 * 128);
}
BENCHMARK(BM_CrossbarVmm)->Arg(16)->Arg(128);

void BM_LutBuild(benchmark::State& state) {
  rram::WeightProgrammer prog({rram::CellKind::SLC, 200.0}, 8, {0.5, 0.0});
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rram::RLut::build(prog, k, 8, Rng(4)));
  }
}
BENCHMARK(BM_LutBuild)->Arg(4)->Arg(16);

// Args: {group size m, engine (0 = table, 1 = reference)}. The weight
// range is derived from the LUT bit-width, not hardcoded, so changing the
// programmer's bits keeps the bench honest.
void BM_VawoSolveGroup(benchmark::State& state) {
  rram::WeightProgrammer prog({rram::CellKind::SLC, 200.0}, 8, {0.5, 0.0});
  const rram::RLut lut = rram::RLut::build_analytic(prog);
  const int levels = lut.max_weight();
  const int m = static_cast<int>(state.range(0));
  const bool reference = state.range(1) == 1;
  Rng rng(5);
  std::vector<int> ntw;
  std::vector<double> grad;
  for (int i = 0; i < m; ++i) {
    ntw.push_back(static_cast<int>(rng.uniform_int(0, levels)));
    grad.push_back(rng.uniform(0.01, 1.0));
  }
  core::VawoOptions opt;
  opt.use_complement = true;
  const core::VawoTable table =
      core::VawoTable::build(lut, levels, opt.offsets, opt.penalize_bias);
  std::vector<double> g2(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) g2[i] = grad[i] * grad[i];
  for (auto _ : state) {
    int b = 0;
    bool comp = false;
    std::vector<int> ctw;
    if (reference) {
      benchmark::DoNotOptimize(core::vawo_solve_group(ntw, grad, lut, levels,
                                                      opt, b, comp, ctw));
    } else {
      benchmark::DoNotOptimize(core::vawo_solve_group(
          ntw, g2, table, opt.use_complement, b, comp, ctw));
    }
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_VawoSolveGroup)
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({128, 0})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({128, 1});

// Full-layer solve, fast vs reference, where the deploy-time speedup is
// actually claimed (ROADMAP: `deploy:vawo_solve` dominance). Args:
// {group size m, engine (0 = table, 1 = reference)}.
void BM_VawoLayer(benchmark::State& state) {
  rram::WeightProgrammer prog({rram::CellKind::SLC, 200.0}, 8, {0.5, 0.0});
  const rram::RLut lut = rram::RLut::build_analytic(prog);
  const std::int64_t rows = 256, cols = 64;
  rdo::quant::LayerQuant lq;
  lq.bits = 8;
  lq.rows = rows;
  lq.cols = cols;
  lq.scale = 0.01f;
  lq.zero = 128;
  lq.q.resize(static_cast<std::size_t>(rows * cols));
  std::vector<double> grads(lq.q.size());
  Rng rng(9);
  for (std::size_t i = 0; i < lq.q.size(); ++i) {
    lq.q[i] = static_cast<int>(rng.uniform_int(0, lq.levels()));
    grads[i] = rng.uniform(0.0, 1.0);
  }
  core::VawoOptions opt;
  opt.use_complement = true;
  opt.offsets.m = static_cast<int>(state.range(0));
  opt.engine = state.range(1) == 1 ? core::VawoEngine::kReference
                                   : core::VawoEngine::kTable;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::vawo_layer(lq, grads, lut, opt));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_VawoLayer)
    ->Args({16, 0})
    ->Args({128, 0})
    ->Args({16, 1})
    ->Args({128, 1})
    ->Unit(benchmark::kMillisecond);

// Args: {matrix size, pool threads}. The thread sweep is the speedup
// table recorded in EXPERIMENTS.md; results are bit-identical across the
// sweep (asserted in tests/test_parallel.cpp).
void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  nn::set_thread_count(static_cast<int>(state.range(1)));
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  Rng rng(6);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n * 2);
  nn::set_thread_count(0);
}
BENCHMARK(BM_Gemm)
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 4});

void BM_GemmAtB(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  nn::set_thread_count(static_cast<int>(state.range(1)));
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)),
      c(static_cast<std::size_t>(n * n), 0.0f);
  Rng rng(8);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::gemm_at_b_accumulate(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n * 2);
  nn::set_thread_count(0);
}
BENCHMARK(BM_GemmAtB)->Args({256, 1})->Args({256, 4});

// Dispatch overhead of one parallel_for over a trivial body: the floor
// under which kernels should not bother going parallel.
void BM_ParallelForDispatch(benchmark::State& state) {
  nn::set_thread_count(static_cast<int>(state.range(0)));
  std::atomic<std::int64_t> sink{0};
  for (auto _ : state) {
    nn::parallel_for(1024, [&](std::int64_t b, std::int64_t e) {
      sink.fetch_add(e - b, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
  nn::set_thread_count(0);
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(4);

void BM_Conv2DForward(benchmark::State& state) {
  Rng rng(7);
  nn::Conv2D conv(8, 16, 3, 1, 1, rng);
  nn::Tensor x({4, 8, 16, 16});
  for (std::int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.uniform(0, 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv2DForward);

}  // namespace

BENCHMARK_MAIN();
