// Fig. 5(c): ResNet with VAWO*+PWT on 2-bit MLC crossbars across the
// variation sweep sigma in [0.2, 1.0].
//
// Paper reference (ResNet-18 + CIFAR-10, 2-bit MLC, VAWO*+PWT):
//   m = 16 stays > 90% up to sigma = 0.7; m = 128 stays ~ 80% even at
//   sigma = 1.0; accuracy decreases with sigma, finer m degrades slower.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.h"
#include "nn/parallel.h"

using namespace rdo;
using namespace rdo::bench;

int main() {
  const data::SyntheticDataset ds = bench_cifar();
  float ideal = 0.0f;
  auto net = cached_resnet(ds, &ideal);

  std::printf(
      "=== Fig 5(c): ResNet (scaled) + CIFAR-like, 2-bit MLC, VAWO*+PWT "
      "===\n");
  std::printf("ideal (float) accuracy: %.2f%%   [paper: 94.14%%]\n",
              100 * ideal);
  const double sigmas[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  std::vector<core::DeployOptions> jobs;
  for (double sigma : sigmas) {
    for (int m : {16, 128}) {
      auto o = bench_options(core::Scheme::VAWOStarPWT, m,
                             rram::CellKind::MLC2, sigma);
      o.pwt.max_samples = 300;
      jobs.push_back(o);
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto grid =
      run_grid(*net, blank_resnet, jobs, ds.train(), ds.test(), 2);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("\n%-8s  m=16    m=128\n", "sigma");
  std::size_t j = 0;
  for (double sigma : sigmas) {
    std::printf("%-8.1f", sigma);
    std::printf("  %5.1f%%", 100 * grid[j++].mean_accuracy);
    std::printf("  %5.1f%%", 100 * grid[j++].mean_accuracy);
    std::printf("\n");
  }
  std::fprintf(stderr, "[bench] deployment sweep: %.1f s (RDO_THREADS=%d)\n",
               secs, nn::thread_count());
  std::printf(
      "\nexpected shape: monotone decrease in sigma; m = 16 degrades\n"
      "slower than m = 128 (finer offset sharing).\n");
  return 0;
}
