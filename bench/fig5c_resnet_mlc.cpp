// Fig. 5(c): ResNet with VAWO*+PWT on 2-bit MLC crossbars across the
// variation sweep sigma in [0.2, 1.0].
//
// Paper reference (ResNet-18 + CIFAR-10, 2-bit MLC, VAWO*+PWT):
//   m = 16 stays > 90% up to sigma = 0.7; m = 128 stays ~ 80% even at
//   sigma = 1.0; accuracy decreases with sigma, finer m degrades slower.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.h"
#include "nn/parallel.h"

using namespace rdo;
using namespace rdo::bench;

int main() {
  obs::BenchReport rep("fig5c_resnet_mlc", 2021);

  const data::SyntheticDataset ds = bench_cifar();
  float ideal = 0.0f;
  std::unique_ptr<nn::Sequential> net;
  {
    obs::PhaseTimer t(rep.recorder(), "train_models");
    net = cached_resnet(ds, &ideal);
  }
  rep.results()["ideal_accuracy"] = static_cast<double>(ideal);

  std::printf(
      "=== Fig 5(c): ResNet (scaled) + CIFAR-like, 2-bit MLC, VAWO*+PWT "
      "===\n");
  std::printf("ideal (float) accuracy: %.2f%%   [paper: 94.14%%]\n",
              100 * ideal);
  const double sigmas[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  std::vector<core::DeployOptions> jobs;
  for (double sigma : sigmas) {
    for (int m : {16, 128}) {
      auto o = bench_options(core::Scheme::VAWOStarPWT, m,
                             rram::CellKind::MLC2, sigma);
      o.pwt.max_samples = 300;
      jobs.push_back(o);
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<core::SchemeResult> grid;
  {
    obs::PhaseTimer t(rep.recorder(), "deployment_sweep");
    grid = run_grid(*net, jobs, ds.train(), ds.test(), 2);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("\n%-8s  m=16    m=128\n", "sigma");
  std::size_t j = 0;
  for (double sigma : sigmas) {
    std::printf("%-8.1f", sigma);
    for (int rep_m = 0; rep_m < 2; ++rep_m) {
      std::printf("  %5.1f%%", 100 * grid[j].mean_accuracy);
      char label[64];
      std::snprintf(label, sizeof(label), "sigma%.2f/m%d", sigma,
                    jobs[j].offsets.m);
      record_scheme_result(rep, label, jobs[j], grid[j]);
      ++j;
    }
    std::printf("\n");
  }
  std::fprintf(stderr, "[bench] deployment sweep: %.1f s (RDO_THREADS=%d)\n",
               secs, nn::thread_count());
  std::printf(
      "\nexpected shape: monotone decrease in sigma; m = 16 degrades\n"
      "slower than m = 128 (finer offset sharing).\n");
  return finish_report(rep);
}
