#include "common.h"

#include <cstdio>
#include <filesystem>

#include "baselines/dva.h"
#include "core/backend.h"
#include "core/plan.h"
#include "models/lenet.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "nn/optimizer.h"
#include "nn/parallel.h"
#include "nn/serialize.h"
#include "nn/trainer.h"

namespace rdo::bench {

namespace {

constexpr const char* kCacheDir = "bench_cache";

std::string cache_path(const std::string& tag) {
  std::filesystem::create_directories(kCacheDir);
  return std::string(kCacheDir) + "/" + tag + ".bin";
}

/// Train-or-load helper: `make` builds the (deterministically initialized)
/// network, `train` fits it when there is no cache entry.
template <typename MakeFn, typename TrainFn>
std::unique_ptr<rdo::nn::Sequential> train_or_load(
    const std::string& tag, const data::SyntheticDataset& ds, float* ideal,
    MakeFn make, TrainFn train) {
  auto net = make();
  const std::string path = cache_path(tag);
  bool loaded = false;
  try {
    loaded = rdo::nn::load_params(*net, path);
  } catch (const std::exception&) {
    loaded = false;  // stale cache from an older layout: retrain
  }
  if (loaded &&
      rdo::nn::evaluate(*net, ds.test(), 64).accuracy < 0.6f) {
    // Guard against a stale/poisoned cache (e.g. written by an older
    // hyper-parameter set): a bench model must be well trained.
    std::fprintf(stderr, "[bench] cache for %s is low-accuracy; retraining\n",
                 tag.c_str());
    loaded = false;
    auto fresh = make();
    net.swap(fresh);
  }
  if (!loaded) {
    std::fprintf(stderr, "[bench] training %s (no cache)...\n", tag.c_str());
    train(*net);
    rdo::nn::save_params(*net, path);
    std::fprintf(stderr, "[bench] %s test accuracy %.3f\n", tag.c_str(),
                 rdo::nn::evaluate(*net, ds.test(), 64).accuracy);
  }
  if (ideal != nullptr) {
    *ideal = rdo::nn::evaluate(*net, ds.test(), 64).accuracy;
  }
  return net;
}

}  // namespace

data::SyntheticDataset bench_mnist() {
  data::SyntheticSpec spec = data::mnist_like();
  spec.train_per_class = 100;
  spec.test_per_class = 30;
  spec.noise = 0.25;
  return data::make_synthetic(spec);
}

data::SyntheticDataset bench_cifar() {
  data::SyntheticSpec spec = data::cifar_like();
  spec.train_per_class = 70;
  spec.test_per_class = 25;
  spec.noise = 0.25;
  return data::make_synthetic(spec);
}

std::unique_ptr<rdo::nn::Sequential> blank_lenet() {
  rdo::nn::Rng rng(31);
  return models::make_lenet({}, rng);
}

std::unique_ptr<rdo::nn::Sequential> blank_resnet() {
  rdo::nn::Rng rng(41);
  models::ResNetConfig cfg;
  cfg.base_channels = 8;
  cfg.blocks_per_stage = 1;
  return models::make_resnet(cfg, rng);
}

std::unique_ptr<rdo::nn::Sequential> blank_vgg() {
  rdo::nn::Rng rng(51);
  models::VggConfig cfg;
  cfg.base_channels = 8;
  return models::make_vgg(cfg, rng);
}

std::unique_ptr<rdo::nn::Sequential> cached_lenet(
    const data::SyntheticDataset& ds, float* ideal) {
  return train_or_load(
      "lenet", ds, ideal, [] { return blank_lenet(); },
      [&](rdo::nn::Sequential& net) {
        rdo::nn::Rng rng(32);
        rdo::nn::SGD opt(net.params(), 0.02f, 0.9f, 1e-4f);
        for (int e = 0; e < 12; ++e) {
          rdo::nn::train_epoch(net, opt, ds.train(), 32, rng);
        }
      });
}

std::unique_ptr<rdo::nn::Sequential> cached_resnet(
    const data::SyntheticDataset& ds, float* ideal) {
  return train_or_load(
      "resnet", ds, ideal, [] { return blank_resnet(); },
      [&](rdo::nn::Sequential& net) {
        rdo::nn::Rng rng(42);
        rdo::nn::SGD opt(net.params(), 0.02f, 0.9f, 1e-4f);
        for (int e = 0; e < 15; ++e) {
          if (e == 10) opt.set_lr(0.005f);
          rdo::nn::train_epoch(net, opt, ds.train(), 32, rng);
        }
      });
}

std::unique_ptr<rdo::nn::Sequential> cached_vgg(
    const data::SyntheticDataset& ds, float* ideal) {
  return train_or_load(
      "vgg", ds, ideal, [] { return blank_vgg(); },
      [&](rdo::nn::Sequential& net) {
        rdo::nn::Rng rng(52);
        rdo::nn::SGD opt(net.params(), 0.02f, 0.9f, 1e-4f);
        for (int e = 0; e < 15; ++e) {
          if (e == 10) opt.set_lr(0.005f);
          rdo::nn::train_epoch(net, opt, ds.train(), 32, rng);
        }
      });
}

std::unique_ptr<rdo::nn::Sequential> cached_dva_vgg(
    const data::SyntheticDataset& ds, float* ideal) {
  return train_or_load(
      "vgg_dva", ds, ideal, [] { return blank_vgg(); },  // same init as vgg
      [&](rdo::nn::Sequential& net) {
        // Same pretraining as cached_vgg, then DVA fine-tuning.
        rdo::nn::Rng rng(52);
        rdo::nn::SGD opt(net.params(), 0.02f, 0.9f, 1e-4f);
        for (int e = 0; e < 15; ++e) {
          if (e == 10) opt.set_lr(0.005f);
          rdo::nn::train_epoch(net, opt, ds.train(), 32, rng);
        }
        baselines::DvaOptions dopt;
        dopt.epochs = 5;
        dopt.lr = 0.002f;
        // Calibrated training-noise level (see EXPERIMENTS.md): sigma*
        // keeps the scaled substrate in the paper's operating regime.
        dopt.variation.sigma = kSigmaStar;
        baselines::dva_train(net, ds.train(), dopt);
      });
}

rdo::core::DeployOptions bench_options(rdo::core::Scheme scheme, int m,
                                       rdo::rram::CellKind cell,
                                       double sigma) {
  rdo::core::DeployOptions o;
  o.scheme = scheme;
  o.offsets.m = m;
  o.cell = {cell, 200.0};
  o.variation.sigma = sigma;
  o.lut_k_sets = 16;
  o.lut_j_cycles = 8;
  o.grad_samples = 256;
  o.pwt.epochs = 2;
  o.pwt.max_samples = 400;
  o.seed = 2021;  // DATE 2021
  return o;
}

std::vector<rdo::core::SchemeResult> run_grid(
    const rdo::nn::Layer& master,
    const std::vector<rdo::core::DeployOptions>& points,
    const rdo::nn::DataView& train, const rdo::nn::DataView& test,
    int repeats) {
  const std::int64_t npoints = static_cast<std::int64_t>(points.size());
  std::vector<rdo::core::SchemeResult> results(points.size());
  for (auto& r : results) {
    r.per_cycle.assign(static_cast<std::size_t>(repeats), 0.0f);
    r.trial_seconds.assign(static_cast<std::size_t>(repeats), 0.0);
    r.errors.assign(static_cast<std::size_t>(repeats), "");
  }
  // Compile every grid point once; all of the point's trials share the
  // plan. A throwing compile is recorded into each of that point's trial
  // slots — one bad grid point must not discard the rest of the sweep.
  std::vector<std::unique_ptr<rdo::core::DeploymentPlan>> plans(
      points.size());
  std::vector<std::string> compile_errors(points.size());
  rdo::nn::parallel_for(npoints, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const auto pi = static_cast<std::size_t>(p);
      try {
        plans[pi] = std::make_unique<rdo::core::DeploymentPlan>(
            rdo::core::compile_plan(master, points[pi], train));
      } catch (const std::exception& e) {
        compile_errors[pi] = e.what();
      } catch (...) {
        compile_errors[pi] = "unknown exception";
      }
    }
  });
  std::vector<rdo::core::DeployStats> trial_stats(
      static_cast<std::size_t>(npoints * repeats));
  // One task per (point, trial): finer than per-point tasks, so a grid
  // keeps every core busy even when repeats < cores. Each task runs an
  // EffectiveWeightBackend over a private clone of the trained network;
  // `master` is only read. A throwing trial is recorded, not propagated.
  rdo::nn::parallel_for(npoints * repeats, [&](std::int64_t t0,
                                               std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t point = t / repeats;
      const std::int64_t trial = t % repeats;
      const auto pi = static_cast<std::size_t>(point);
      const auto ti = static_cast<std::size_t>(trial);
      if (plans[pi] == nullptr) {
        results[pi].errors[ti] = compile_errors[pi];
        continue;
      }
      rdo::obs::Stopwatch watch;
      try {
        rdo::core::EffectiveWeightBackend backend(*plans[pi], master);
        backend.program_cycle(static_cast<std::uint64_t>(trial));
        backend.tune(train);
        results[pi].per_cycle[ti] = backend.evaluate(test);
        trial_stats[static_cast<std::size_t>(t)] = backend.stats();
      } catch (const std::exception& e) {
        results[pi].errors[ti] = e.what();
      } catch (...) {
        results[pi].errors[ti] = "unknown exception";
      }
      results[pi].trial_seconds[ti] = watch.seconds();
    }
  });
  // Merge stats in (compile, trial...) order outside the parallel region
  // so aggregated counters and traces are thread-count independent.
  for (std::int64_t p = 0; p < npoints; ++p) {
    auto& r = results[static_cast<std::size_t>(p)];
    if (plans[static_cast<std::size_t>(p)] != nullptr) {
      r.stats = plans[static_cast<std::size_t>(p)]->compile_stats;
    }
    for (std::int64_t trial = 0; trial < repeats; ++trial) {
      r.stats.merge(trial_stats[static_cast<std::size_t>(p * repeats + trial)]);
    }
    double total = 0.0;
    for (float a : r.per_cycle) total += a;
    r.mean_accuracy = static_cast<float>(total / std::max(1, repeats));
  }
  return results;
}

void record_scheme_result(rdo::obs::BenchReport& rep,
                          const std::string& label,
                          const rdo::core::DeployOptions& opt,
                          const rdo::core::SchemeResult& res) {
  rdo::obs::Json point = rdo::obs::Json::object();
  point["label"] = label;
  point["scheme"] = rdo::core::to_string(opt.scheme);
  point["m"] = opt.offsets.m;
  point["cell"] = rdo::rram::to_string(opt.cell.kind);
  point["sigma"] = opt.variation.sigma;
  point["mean_accuracy"] = static_cast<double>(res.mean_accuracy);
  rdo::obs::Json per_cycle = rdo::obs::Json::array();
  for (float a : res.per_cycle) per_cycle.push_back(static_cast<double>(a));
  point["per_cycle"] = std::move(per_cycle);
  point["stats"] = rdo::core::deploy_stats_json(res.stats);
  rdo::obs::Json errors = rdo::obs::Json::array();
  for (const std::string& e : res.errors) errors.push_back(e);
  point["errors"] = std::move(errors);
  rep.results()["grid"].push_back(std::move(point));

  rdo::core::add_deploy_phase_times(rep.recorder(), res.stats);
  rdo::obs::Recorder& rec = rep.recorder();
  for (double s : res.trial_seconds) rec.observe("trial_seconds", s);
  for (double s : res.stats.eval_seconds) {
    rec.observe("deploy_evaluate_seconds", s);
  }
  rec.incr("grid_points");
  rec.incr("trials", static_cast<std::int64_t>(res.errors.size()));
  rec.incr("cycles", res.stats.cycles);
  rec.incr("weights_programmed", res.stats.weights_programmed);
  rec.incr("device_pulses", res.stats.device_pulses);
  rec.incr("pwt_epochs", res.stats.pwt_epochs);
  rec.incr("pwt_batches", res.stats.pwt_batches);
  rec.incr("pwt_offset_updates", res.stats.pwt_offset_updates);

  for (std::size_t trial = 0; trial < res.errors.size(); ++trial) {
    if (!res.errors[trial].empty()) {
      rep.add_failure(label + " trial " + std::to_string(trial),
                      res.errors[trial]);
    }
  }
}

void record_measurement(rdo::obs::BenchReport& rep, const std::string& label,
                        double value) {
  rdo::obs::Json m = rdo::obs::Json::object();
  m["label"] = label;
  m["value"] = value;
  rep.results()["measurements"].push_back(std::move(m));
}

int finish_report(rdo::obs::BenchReport& rep) {
  try {
    const std::string path = rep.write();
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench] cannot write structured results: %s\n",
                 e.what());
    return 1;
  }
  return rep.exit_code();
}

}  // namespace rdo::bench
