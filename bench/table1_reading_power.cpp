// Table I: relative total device reading power of VAWO* vs. the plain
// scheme.
//
// Paper reference:
//   LeNet + MNIST:     m=16 68.87%,  m=128 79.95%
//   ResNet + CIFAR-10: m=16 57.61%,  m=128 72.24%
// Shape: VAWO* < 100% (lower CTWs -> more devices in high-resistance
// states), finer m saves more, ResNet saves more than LeNet.
#include <cstdio>
#include <limits>
#include <string>

#include "common.h"
#include "core/plan.h"

using namespace rdo;
using namespace rdo::bench;

namespace {

double ratio_for(const rdo::nn::Sequential& net,
                 const data::SyntheticDataset& ds, int m) {
  auto o = bench_options(core::Scheme::VAWOStar, m, rram::CellKind::MLC2,
                         0.5);
  const core::DeploymentPlan plan = core::compile_plan(net, o, ds.train());
  return plan.assigned_read_power() / plan.plain_read_power();
}

}  // namespace

int main() {
  obs::BenchReport rep("table1_reading_power", 2021);

  const data::SyntheticDataset mnist = bench_mnist();
  const data::SyntheticDataset cifar = bench_cifar();
  std::unique_ptr<nn::Sequential> lenet, resnet;
  {
    obs::PhaseTimer t(rep.recorder(), "train_models");
    lenet = cached_lenet(mnist, nullptr);
    resnet = cached_resnet(cifar, nullptr);
  }

  // One measurement per (workload, m) cell; a throwing cell is recorded
  // as a failure (NaN row) instead of aborting the table.
  auto measure = [&](const char* tag, rdo::nn::Sequential& net,
                     const data::SyntheticDataset& ds, int m) {
    obs::PhaseTimer t(rep.recorder(), "power_analysis");
    const std::string label = std::string(tag) + "/m" + std::to_string(m);
    try {
      const double r = ratio_for(net, ds, m);
      record_measurement(rep, label, r);
      return r;
    } catch (const std::exception& e) {
      rep.add_failure(label, e.what());
      return std::numeric_limits<double>::quiet_NaN();
    }
  };

  std::printf("=== Table I: relative reading power, VAWO* / plain ===\n\n");
  std::printf("%-22s %8s %8s   (paper)\n", "workload", "m=16", "m=128");
  std::printf("%-22s %7.2f%% %7.2f%%   (68.87%% / 79.95%%)\n",
              "LeNet + MNIST-like", 100 * measure("lenet", *lenet, mnist, 16),
              100 * measure("lenet", *lenet, mnist, 128));
  std::printf("%-22s %7.2f%% %7.2f%%   (57.61%% / 72.24%%)\n",
              "ResNet + CIFAR-like",
              100 * measure("resnet", *resnet, cifar, 16),
              100 * measure("resnet", *resnet, cifar, 128));
  std::printf(
      "\nexpected shape: all < 100%%; m=16 saves more than m=128.\n");
  return finish_report(rep);
}
