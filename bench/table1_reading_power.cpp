// Table I: relative total device reading power of VAWO* vs. the plain
// scheme.
//
// Paper reference:
//   LeNet + MNIST:     m=16 68.87%,  m=128 79.95%
//   ResNet + CIFAR-10: m=16 57.61%,  m=128 72.24%
// Shape: VAWO* < 100% (lower CTWs -> more devices in high-resistance
// states), finer m saves more, ResNet saves more than LeNet.
#include <cstdio>

#include "common.h"

using namespace rdo;
using namespace rdo::bench;

namespace {

double ratio_for(rdo::nn::Sequential& net, const data::SyntheticDataset& ds,
                 int m) {
  auto o = bench_options(core::Scheme::VAWOStar, m, rram::CellKind::MLC2,
                         0.5);
  core::Deployment dep(net, o);
  dep.prepare(ds.train());
  const double r = dep.assigned_read_power() / dep.plain_read_power();
  dep.restore();
  return r;
}

}  // namespace

int main() {
  const data::SyntheticDataset mnist = bench_mnist();
  const data::SyntheticDataset cifar = bench_cifar();
  auto lenet = cached_lenet(mnist, nullptr);
  auto resnet = cached_resnet(cifar, nullptr);

  std::printf("=== Table I: relative reading power, VAWO* / plain ===\n\n");
  std::printf("%-22s %8s %8s   (paper)\n", "workload", "m=16", "m=128");
  std::printf("%-22s %7.2f%% %7.2f%%   (68.87%% / 79.95%%)\n",
              "LeNet + MNIST-like", 100 * ratio_for(*lenet, mnist, 16),
              100 * ratio_for(*lenet, mnist, 128));
  std::printf("%-22s %7.2f%% %7.2f%%   (57.61%% / 72.24%%)\n",
              "ResNet + CIFAR-like", 100 * ratio_for(*resnet, cifar, 16),
              100 * ratio_for(*resnet, cifar, 128));
  std::printf(
      "\nexpected shape: all < 100%%; m=16 saves more than m=128.\n");
  return 0;
}
