// Ablation bench for the design decisions called out in DESIGN.md §5:
//   A. bias-penalized vs strict (Eq. 5-only) VAWO objective
//   B. PWT measured-mean warm start on/off
//   C. variation scope: per-weight (paper §IV) vs per-cell (Fig. 3)
//   D. offset register width (4/6/8/10 bits)
// Uses a small MLP so the whole ablation matrix runs in under a minute.
#include <cstdio>
#include <limits>
#include <memory>
#include <string>

#include "common.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "quant/act_quant.h"

using namespace rdo;
using namespace rdo::bench;
using core::Scheme;

namespace {

struct Fixture {
  data::SyntheticDataset ds;
  nn::Sequential net;
  float ideal = 0.0f;

  Fixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.train_per_class = 60;
    spec.test_per_class = 20;
    ds = data::make_synthetic(spec);
    nn::Rng rng(21);
    net.emplace<nn::Flatten>();
    net.emplace<quant::ActQuant>(8);
    net.emplace<nn::Dense>(28 * 28, 64, rng);
    net.emplace<nn::ReLU>();
    net.emplace<quant::ActQuant>(8);
    net.emplace<nn::Dense>(64, 10, rng);
    nn::SGD opt(net.params(), 0.05f);
    for (int e = 0; e < 6; ++e) {
      nn::train_epoch(net, opt, ds.train(), 32, rng);
    }
    ideal = nn::evaluate(net, ds.test(), 64).accuracy;
  }

  /// Runs one ablation cell, records it under `label`, and turns an
  /// exception into a recorded failure (NaN accuracy) so one bad cell
  /// doesn't kill the matrix.
  float run(obs::BenchReport& rep, const std::string& label,
            core::DeployOptions o) {
    try {
      obs::PhaseTimer t(rep.recorder(), "ablation_sweep");
      const auto res =
          core::run_scheme(net, o, ds.train(), ds.test(), kRepeats);
      record_scheme_result(rep, label, o, res);
      return res.mean_accuracy;
    } catch (const std::exception& e) {
      rep.add_failure(label, e.what());
      return std::numeric_limits<float>::quiet_NaN();
    }
  }
};

}  // namespace

int main() {
  obs::BenchReport rep("ablation_design", 2021);

  std::unique_ptr<Fixture> f;
  {
    obs::PhaseTimer t(rep.recorder(), "train_models");
    f = std::make_unique<Fixture>();
  }
  rep.results()["ideal_accuracy"] = static_cast<double>(f->ideal);

  std::printf("=== ablations (MLP, SLC, sigma = 0.5, m = 16) ===\n");
  std::printf("ideal accuracy: %.2f%%\n", 100 * f->ideal);

  std::printf("\n[A] VAWO objective: bias-penalized vs strict Eq. 5\n");
  for (bool penalize : {true, false}) {
    auto o = bench_options(Scheme::VAWOStar, 16, rram::CellKind::SLC, 0.5);
    o.penalize_bias = penalize;
    const std::string label =
        std::string("A/penalize_bias=") + (penalize ? "true" : "false");
    std::printf("  penalize_bias=%-5s  VAWO* accuracy %.1f%%\n",
                penalize ? "true" : "false", 100 * f->run(rep, label, o));
  }

  std::printf("\n[B] PWT warm start: measured group-mean vs gradient-only\n");
  for (bool mean_init : {true, false}) {
    auto o =
        bench_options(Scheme::VAWOStarPWT, 16, rram::CellKind::SLC, 0.5);
    o.pwt.mean_init = mean_init;
    const std::string label =
        std::string("B/mean_init=") + (mean_init ? "true" : "false");
    std::printf("  mean_init=%-5s      VAWO*+PWT accuracy %.1f%%\n",
                mean_init ? "true" : "false", 100 * f->run(rep, label, o));
  }

  std::printf("\n[C] variation scope (same total sigma)\n");
  for (auto scope :
       {rram::VariationScope::PerWeight, rram::VariationScope::PerCell}) {
    auto o =
        bench_options(Scheme::VAWOStarPWT, 16, rram::CellKind::SLC, 0.5);
    o.variation.scope = scope;
    const bool per_weight = scope == rram::VariationScope::PerWeight;
    const std::string label =
        std::string("C/scope=") + (per_weight ? "per-weight" : "per-cell");
    std::printf("  %-22s VAWO*+PWT accuracy %.1f%%\n",
                per_weight ? "per-weight (paper)" : "per-cell (Fig. 3)",
                100 * f->run(rep, label, o));
  }

  std::printf("\n[D] offset register width\n");
  for (int bits : {4, 6, 8, 10}) {
    auto o =
        bench_options(Scheme::VAWOStarPWT, 16, rram::CellKind::SLC, 0.5);
    o.offsets.offset_bits = bits;
    const std::string label = "D/offset_bits=" + std::to_string(bits);
    std::printf("  %2d-bit offsets       VAWO*+PWT accuracy %.1f%%\n", bits,
                100 * f->run(rep, label, o));
  }
  std::printf(
      "\nexpected: [A] penalty helps when the unbiased constraint is\n"
      "unreachable; [B] warm start dominates gradient-only tuning; [C]\n"
      "both scopes are handled; [D] accuracy saturates around 8 bits —\n"
      "the paper's register width.\n");
  return finish_report(rep);
}
