// Fig. 5(a): LeNet accuracy on SLC crossbars under every scheme and
// sharing granularity m in {16, 64, 128}.
//
// Paper reference (LeNet + MNIST, SLC, sigma = 0.5, ideal 99.17%):
//   plain 12.05% | VAWO m16 88.48%, m128 lower | VAWO* m16 95.84%,
//   m128 ~ m16 | PWT ~ ideal for both m | VAWO*+PWT = ideal.
// This harness reports the calibrated sigma* (same operating regime on
// the scaled substrate, see EXPERIMENTS.md) and the nominal sigma = 0.5.
#include <cstdio>

#include "common.h"

using namespace rdo;
using namespace rdo::bench;
using core::Scheme;

int main() {
  const data::SyntheticDataset ds = bench_mnist();
  float ideal = 0.0f;
  auto net = cached_lenet(ds, &ideal);

  std::printf("=== Fig 5(a): LeNet + MNIST-like, SLC cells ===\n");
  std::printf("ideal (float) accuracy: %.2f%%   [paper: 99.17%%]\n", 100 * ideal);

  const int ms[] = {16, 64, 128};
  const Scheme schemes[] = {Scheme::Plain, Scheme::VAWO, Scheme::VAWOStar,
                            Scheme::PWT, Scheme::VAWOStarPWT};
  for (double sigma : {kSigmaStar, 0.5}) {
    std::printf("\n-- sigma = %.2f%s --\n", sigma,
                sigma == kSigmaStar ? " (calibrated sigma*)" : " (nominal)");
    std::printf("%-12s", "scheme");
    for (int m : ms) std::printf("  m=%-3d ", m);
    std::printf("\n");
    for (Scheme s : schemes) {
      std::printf("%-12s", core::to_string(s));
      for (int m : ms) {
        const auto o = bench_options(s, m, rram::CellKind::SLC, sigma);
        const auto res =
            core::run_scheme(*net, o, ds.train(), ds.test(), kRepeats);
        std::printf("  %5.1f%%", 100 * res.mean_accuracy);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nexpected shape: plain ~ chance; VAWO recovers, degrades with m;\n"
      "VAWO* >= VAWO and flat in m; PWT ~ ideal (LeNet); VAWO*+PWT ~ ideal.\n");
  return 0;
}
