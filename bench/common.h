// Shared infrastructure for the experiment harnesses.
//
// Each bench binary regenerates one table or figure of the paper. Models
// are trained once and cached on disk (bench_cache/) so the binaries can
// run independently and in any order.
//
// Calibration note (see EXPERIMENTS.md): the substrate here is a scaled-
// down network on a synthetic dataset, whose noise-tolerance constant
// differs from full-size nets on MNIST/CIFAR. The paper's sigma = 0.5
// operating regime (plain collapses to chance, VAWO* recovers most, full
// method ~ ideal) is reached on this substrate at sigma* ~ 0.3; harnesses
// therefore report both the calibrated sigma* and the paper's nominal
// sigma rows.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/deploy.h"
#include "data/synthetic.h"
#include "nn/sequential.h"
#include "obs/report.h"

namespace rdo::bench {

/// Bench-scale datasets (deterministic, regenerated per run).
data::SyntheticDataset bench_mnist();
data::SyntheticDataset bench_cifar();

/// Train-or-load models. `tag` names the cache entry under bench_cache/.
/// On a cache hit the stored weights are loaded; otherwise the model is
/// trained and saved. Returns the float ("ideal") test accuracy through
/// `ideal` when non-null.
std::unique_ptr<rdo::nn::Sequential> cached_lenet(
    const data::SyntheticDataset& ds, float* ideal);
std::unique_ptr<rdo::nn::Sequential> cached_resnet(
    const data::SyntheticDataset& ds, float* ideal);
std::unique_ptr<rdo::nn::Sequential> cached_vgg(
    const data::SyntheticDataset& ds, float* ideal);
/// VGG fine-tuned with DVA (variation-injected training, sigma 0.5).
std::unique_ptr<rdo::nn::Sequential> cached_dva_vgg(
    const data::SyntheticDataset& ds, float* ideal);

/// Standard deployment options used across the harnesses.
rdo::core::DeployOptions bench_options(rdo::core::Scheme scheme, int m,
                                       rdo::rram::CellKind cell,
                                       double sigma);

/// Untrained networks with the exact architectures the cached_* models
/// use (deterministic initialization; the train-or-load cache builds on
/// these).
std::unique_ptr<rdo::nn::Sequential> blank_lenet();
std::unique_ptr<rdo::nn::Sequential> blank_resnet();
std::unique_ptr<rdo::nn::Sequential> blank_vgg();

/// Parallel Monte-Carlo sweep over a figure's grid: each grid point is
/// compiled once into a shared core::DeploymentPlan, then every (grid
/// point, programming trial) pair runs as one independent
/// core::EffectiveWeightBackend task over a private clone of `master`,
/// spread over the nn/parallel.h pool (RDO_THREADS). `master` is only
/// read. Cycle randomness derives from Rng(opt.seed).split(trial)
/// streams, so results[i].per_cycle is bit-identical to calling
/// core::run_scheme(master, points[i], ...) serially — for any thread
/// count.
///
/// A trial (or a point's compile) that throws does not abort the grid:
/// its accuracy stays 0, the exception message lands in
/// results[i].errors[trial], and the harness surfaces it via
/// record_scheme_result + a nonzero exit code.
std::vector<rdo::core::SchemeResult> run_grid(
    const rdo::nn::Layer& master,
    const std::vector<rdo::core::DeployOptions>& points,
    const rdo::nn::DataView& train, const rdo::nn::DataView& test,
    int repeats);

/// Append one grid-point result to rep.results()["grid"] (config,
/// per-cycle accuracies, deterministic pipeline counters, per-trial
/// errors), fold its wall times into the recorder's "deploy:*" phases,
/// aggregate global counters, and register any failed trials so the
/// harness exits nonzero. Call in grid order — the JSON is positional.
void record_scheme_result(rdo::obs::BenchReport& rep,
                          const std::string& label,
                          const rdo::core::DeployOptions& opt,
                          const rdo::core::SchemeResult& res);

/// Record a single named accuracy measurement (Table-style harnesses)
/// under rep.results()["measurements"].
void record_measurement(rdo::obs::BenchReport& rep, const std::string& label,
                        double value);

/// Write BENCH_<name>.json next to the stdout report and convert any
/// recorded failures into the process exit code.
int finish_report(rdo::obs::BenchReport& rep);

/// Number of programming cycles averaged per data point (paper used 5).
inline constexpr int kRepeats = 3;

/// The calibrated sigma* corresponding to the paper's sigma = 0.5 regime.
inline constexpr double kSigmaStar = 0.3;

}  // namespace rdo::bench
