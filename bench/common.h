// Shared infrastructure for the experiment harnesses.
//
// Each bench binary regenerates one table or figure of the paper. Models
// are trained once and cached on disk (bench_cache/) so the binaries can
// run independently and in any order.
//
// Calibration note (see EXPERIMENTS.md): the substrate here is a scaled-
// down network on a synthetic dataset, whose noise-tolerance constant
// differs from full-size nets on MNIST/CIFAR. The paper's sigma = 0.5
// operating regime (plain collapses to chance, VAWO* recovers most, full
// method ~ ideal) is reached on this substrate at sigma* ~ 0.3; harnesses
// therefore report both the calibrated sigma* and the paper's nominal
// sigma rows.
#pragma once

#include <memory>
#include <string>

#include "core/deploy.h"
#include "data/synthetic.h"
#include "nn/sequential.h"

namespace rdo::bench {

/// Bench-scale datasets (deterministic, regenerated per run).
data::SyntheticDataset bench_mnist();
data::SyntheticDataset bench_cifar();

/// Train-or-load models. `tag` names the cache entry under bench_cache/.
/// On a cache hit the stored weights are loaded; otherwise the model is
/// trained and saved. Returns the float ("ideal") test accuracy through
/// `ideal` when non-null.
std::unique_ptr<rdo::nn::Sequential> cached_lenet(
    const data::SyntheticDataset& ds, float* ideal);
std::unique_ptr<rdo::nn::Sequential> cached_resnet(
    const data::SyntheticDataset& ds, float* ideal);
std::unique_ptr<rdo::nn::Sequential> cached_vgg(
    const data::SyntheticDataset& ds, float* ideal);
/// VGG fine-tuned with DVA (variation-injected training, sigma 0.5).
std::unique_ptr<rdo::nn::Sequential> cached_dva_vgg(
    const data::SyntheticDataset& ds, float* ideal);

/// Standard deployment options used across the harnesses.
rdo::core::DeployOptions bench_options(rdo::core::Scheme scheme, int m,
                                       rdo::rram::CellKind cell,
                                       double sigma);

/// Number of programming cycles averaged per data point (paper used 5).
inline constexpr int kRepeats = 3;

/// The calibrated sigma* corresponding to the paper's sigma = 0.5 regime.
inline constexpr double kSigmaStar = 0.3;

}  // namespace rdo::bench
