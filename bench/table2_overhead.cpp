// Table II: total area/power overhead of the digital-offset support in an
// ISAAC tile (0.372 mm^2 / 330 mW baseline, 2-bit MLC).
//
// Paper reference:
//   m=16 : +0.049 mm^2 (13.3%), +8.05 mW (2.4%)
//   m=128: +0.064 mm^2 (17.2%), +22.77 mW (6.9%)
// Shape: area overhead low-double-digit %, power single-digit %, both
// larger at m = 128 (adder growth outpaces register savings, and the
// read-power saving shrinks).
#include <cstdio>

#include "arch/isaac_cost.h"
#include "common.h"
#include "core/plan.h"

using namespace rdo;
using namespace rdo::bench;

int main() {
  obs::BenchReport rep("table2_overhead", 2021);

  // Measured reading-power ratios for ResNet (the paper combines Table I's
  // ResNet ratios into Table II).
  const data::SyntheticDataset cifar = bench_cifar();
  std::unique_ptr<nn::Sequential> resnet;
  {
    obs::PhaseTimer t(rep.recorder(), "train_models");
    resnet = cached_resnet(cifar, nullptr);
  }

  const arch::TileParams tp;
  std::printf("=== Table II: overhead in an ISAAC tile ===\n\n");
  std::printf("ISAAC tile baseline: %.3f mm^2, %.0f mW, %d crossbars\n\n",
              tp.tile_area_mm2, tp.tile_power_mw, tp.crossbars_per_tile);
  std::printf("%-6s %-10s %-12s %-10s %-12s\n", "m", "area/mm2", "area ovh",
              "power/mW", "power ovh");
  for (int m : {16, 128}) {
    const std::string tag = "m" + std::to_string(m);
    try {
      obs::PhaseTimer t(rep.recorder(), "overhead_analysis");
      auto o = bench_options(core::Scheme::VAWOStar, m, rram::CellKind::MLC2,
                             0.5);
      const core::DeploymentPlan plan =
          core::compile_plan(*resnet, o, cifar.train());
      const double ratio =
          plan.assigned_read_power() / plan.plain_read_power();
      const arch::TileOverhead ov = arch::tile_overhead(m, 8, ratio, tp);
      std::printf("%-6d %-10.3f %-12s %-10.2f %-12s\n", m, ov.area_mm2,
                  (std::to_string(ov.area_pct).substr(0, 4) + "%").c_str(),
                  ov.power_mw,
                  (std::to_string(ov.power_pct).substr(0, 4) + "%").c_str());
      record_measurement(rep, tag + "/read_power_ratio", ratio);
      record_measurement(rep, tag + "/area_mm2", ov.area_mm2);
      record_measurement(rep, tag + "/area_pct", ov.area_pct);
      record_measurement(rep, tag + "/power_mw", ov.power_mw);
      record_measurement(rep, tag + "/power_pct", ov.power_pct);
    } catch (const std::exception& e) {
      rep.add_failure(tag, e.what());
    }
  }
  std::printf("\npaper: m=16: 0.049 mm^2 (13.3%%), 8.05 mW (2.4%%)\n");
  std::printf("       m=128: 0.064 mm^2 (17.2%%), 22.77 mW (6.9%%)\n");

  const arch::GateCosts g;
  std::printf("\nSum+Multi critical path: m=16 %.1f ns, m=128 %.1f ns "
              "(clock %.0f ns) -> fits the ISAAC pipeline\n",
              arch::sum_multi_delay_ns(16, g), arch::sum_multi_delay_ns(128, g),
              tp.clock_ns);
  std::printf("offset registers per crossbar (Eq. 9): m=16 -> %lld, "
              "m=128 -> %lld   [paper: 256 / 32]\n",
              arch::offset_hardware(16, 8, tp).register_bits / 8,
              arch::offset_hardware(128, 8, tp).register_bits / 8);
  record_measurement(rep, "delay_ns/m16", arch::sum_multi_delay_ns(16, g));
  record_measurement(rep, "delay_ns/m128", arch::sum_multi_delay_ns(128, g));
  return finish_report(rep);
}
