// Table III: comparison with state-of-the-art fault-tolerant methods on
// VGG (paper: VGG-16 + CIFAR-10, sigma = 0.8).
//
// Paper reference (accuracy loss / normalized crossbar count):
//   DVA [9]      13%    / 2     (8 SLCs per weight, one-crossbar)
//   PM [12]      12.02% / 2.5   (10 2-bit MLCs per weight, two-crossbar)
//   DVA+PM [12]  5.48%  / 2.5
//   this work    4.94%  / 1     (4 2-bit MLCs per weight, one-crossbar)
// Shape: ours <= DVA+PM < PM ~ DVA in loss, with the fewest crossbars.
#include <cstdio>
#include <string>

#include "baselines/pm.h"
#include "baselines/write_verify.h"
#include "common.h"

using namespace rdo;
using namespace rdo::bench;

int main() {
  obs::BenchReport rep("table3_comparison", 2021);

  const data::SyntheticDataset ds = bench_cifar();
  float ideal = 0.0f;
  float dva_ideal = 0.0f;
  std::unique_ptr<nn::Sequential> vgg, vgg_dva;
  {
    obs::PhaseTimer t(rep.recorder(), "train_models");
    vgg = cached_vgg(ds, &ideal);
    vgg_dva = cached_dva_vgg(ds, &dva_ideal);
  }
  rep.results()["ideal_accuracy"] = static_cast<double>(ideal);
  rep.results()["dva_ideal_accuracy"] = static_cast<double>(dva_ideal);

  std::printf("=== Table III: method comparison on VGG (scaled) ===\n");
  std::printf("ideal accuracy: %.2f%% (plain training), %.2f%% (DVA "
              "training)\n",
              100 * ideal, 100 * dva_ideal);

  // Every method cell runs under guard(): an exception is recorded as a
  // failure for that row (the table keeps going, the exit code goes
  // nonzero) instead of tearing down the whole comparison.
  for (double sigma : {0.5, 0.8}) {
    std::printf("\n-- sigma = %.2f%s --\n", sigma,
                sigma == 0.8 ? " (paper's operating point)"
                             : " (calibrated regime)");
    std::printf("%-12s %-12s %-12s %-10s\n", "method", "accuracy",
                "acc. loss", "crossbars");
    char sig[16];
    std::snprintf(sig, sizeof(sig), "sigma%.2f/", sigma);

    const auto guard = [&](const char* method, auto&& body) {
      try {
        obs::PhaseTimer t(rep.recorder(), "method_comparison");
        body();
      } catch (const std::exception& e) {
        rep.add_failure(sig + std::string(method), e.what());
        std::printf("%-12s %10s\n", method, "FAILED");
      }
    };

    // DVA: variation-trained network, plain one-crossbar deployment on
    // 8 SLCs per weight. (The original [9] reports on AlexNet at
    // sigma 0.5; we use the same VGG as everyone else for a like-for-like
    // comparison, as the paper does.)
    guard("DVA", [&] {
      auto o = bench_options(core::Scheme::Plain, 16, rram::CellKind::SLC,
                             sigma);
      const auto res =
          core::run_scheme(*vgg_dva, o, ds.train(), ds.test(), kRepeats);
      std::printf("%-12s %10.2f%% %10.2f%% %10.1f\n", "DVA",
                  100 * res.mean_accuracy,
                  100 * (ideal - res.mean_accuracy), 2.0);
      record_scheme_result(rep, sig + std::string("DVA"), o, res);
    });
    // PM: unary coding on 10 2-bit MLCs, two-crossbar architecture.
    guard("PM", [&] {
      baselines::PmOptions po;
      po.variation.sigma = sigma;
      po.seed = 2021;
      const float acc = baselines::run_pm(*vgg, po, ds.test(), kRepeats);
      std::printf("%-12s %10.2f%% %10.2f%% %10.1f\n", "PM", 100 * acc,
                  100 * (ideal - acc), 2.5);
      record_measurement(rep, sig + std::string("PM"), acc);
    });
    // DVA+PM: variation-trained network deployed with PM coding.
    guard("DVA+PM", [&] {
      baselines::PmOptions po;
      po.variation.sigma = sigma;
      po.seed = 2021;
      const float acc = baselines::run_pm(*vgg_dva, po, ds.test(), kRepeats);
      std::printf("%-12s %10.2f%% %10.2f%% %10.1f\n", "DVA+PM", 100 * acc,
                  100 * (ideal - acc), 2.5);
      record_measurement(rep, sig + std::string("DVA+PM"), acc);
    });
    // This work: VAWO*+PWT on 4 2-bit MLCs, one-crossbar.
    guard("this work", [&] {
      auto o = bench_options(core::Scheme::VAWOStarPWT, 16,
                             rram::CellKind::MLC2, sigma);
      const auto res =
          core::run_scheme(*vgg, o, ds.train(), ds.test(), kRepeats);
      std::printf("%-12s %10.2f%% %10.2f%% %10.1f\n", "this work",
                  100 * res.mean_accuracy,
                  100 * (ideal - res.mean_accuracy), 1.0);
      record_scheme_result(rep, sig + std::string("this work"), o, res);
    });
    // DVA + this work: the paper's stated future work ("orthogonal to
    // many existing training-based methods such as DVA... explore how to
    // combine them"). Same hardware budget as "this work".
    guard("DVA+ours", [&] {
      auto o = bench_options(core::Scheme::VAWOStarPWT, 16,
                             rram::CellKind::MLC2, sigma);
      const auto res =
          core::run_scheme(*vgg_dva, o, ds.train(), ds.test(), kRepeats);
      std::printf("%-12s %10.2f%% %10.2f%% %10.1f   (future work, Sec. V)\n",
                  "DVA+ours", 100 * res.mean_accuracy,
                  100 * (ideal - res.mean_accuracy), 1.0);
      record_scheme_result(rep, sig + std::string("DVA+ours"), o, res);
    });
    // Write-verify: the iterative-programming workaround the paper cites
    // as the lifetime-costly CCV fix ([5], [6] in Sec. I). Same device
    // budget as this work, no offsets, pulse budget 8.
    guard("write-verify", [&] {
      rram::WeightProgrammer prog({rram::CellKind::MLC2, 200.0}, 8,
                                  {sigma, 0.0});
      baselines::WriteVerifyOptions wopt;
      wopt.tolerance = 0.05;
      wopt.max_pulses = 8;
      const baselines::WvDeployResult wv = baselines::run_write_verify(
          *vgg, prog, wopt, ds.test(), kRepeats, 2021);
      std::printf("%-12s %10.2f%% %10.2f%% %10.1f   (%.1f pulses/device)\n",
                  "write-verify", 100 * wv.mean_accuracy,
                  100 * (ideal - wv.mean_accuracy), 1.0, wv.mean_pulses);
      record_measurement(rep, sig + std::string("write-verify"),
                         wv.mean_accuracy);
      record_measurement(rep, sig + std::string("write-verify/mean_pulses"),
                         wv.mean_pulses);
    });
  }
  std::printf(
      "\npaper (sigma=0.8): DVA 13%% / 2, PM 12.02%% / 2.5, DVA+PM 5.48%% "
      "/ 2.5, this work 4.94%% / 1\n"
      "expected shape: this work has the smallest loss at 50%%+ fewer "
      "crossbars.\n");
  return finish_report(rep);
}
