// Unique temp-file suffixes for atomic write-then-rename cache writers.
//
// Every on-disk cache in this repo (RLut under RDO_LUT_CACHE_DIR,
// DeploymentPlan under RDO_PLAN_CACHE_DIR) publishes entries by writing a
// temp file next to the target and renaming it into place, so concurrent
// readers only ever observe complete documents. That only holds if the
// temp names themselves never collide: two *processes* sharing a cache
// directory can allocate an object at the same address, so an
// address-derived suffix (the original scheme) can interleave two writers
// into one temp file and rename a torn document into place. pid plus a
// process-wide atomic counter is unique across processes and across
// threads within a process.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include <unistd.h>

namespace rdo::core {

/// A suffix of the form ".tmp.<pid>.<n>" that no concurrent writer — in
/// this process or any other sharing the directory — will pick for the
/// same target path.
inline std::string unique_tmp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return ".tmp." + std::to_string(static_cast<long long>(::getpid())) + "." +
         std::to_string(n);
}

}  // namespace rdo::core
