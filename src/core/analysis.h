// Pre-deployment risk analysis.
//
// Before writing a single device, the statistical LUT lets us compute the
// expected squared NRW deviation each assignment will produce — the exact
// quantity VAWO minimizes. This turns the method into a *predictive*
// tool: a designer can rank (scheme, m, cell, sigma) configurations by
// expected weight error without running a full accuracy evaluation, and
// the test suite verifies the prediction orders real accuracies
// correctly.
#pragma once

#include <vector>

#include "core/plan.h"

namespace rdo::core {

struct LayerRisk {
  /// Mean over the layer's weights of E[(NRW - NTW)^2] in integer-weight
  /// units (variance of the chosen CTW plus squared residual bias).
  double mean_sq_dev = 0.0;
  /// sqrt(mean_sq_dev) relative to the full integer range — a
  /// scale-free severity indicator (~0 good, ~0.3+ catastrophic).
  double rms_relative = 0.0;
};

/// Risk of one layer's assignment under the device statistics in `lut`.
LayerRisk assignment_risk(const rdo::quant::LayerQuant& lq,
                          const VawoResult& assign,
                          const rdo::rram::RLut& lut);

/// Per-layer risks of a compiled DeploymentPlan.
std::vector<LayerRisk> deployment_risk(const DeploymentPlan& plan);

/// Network-level scalar: weight-count-weighted mean of the layer
/// mean_sq_dev values, normalized to the integer range (rms_relative of
/// the whole network).
double network_risk(const DeploymentPlan& plan);

/// Result of the granularity auto-tuner.
struct GranularityChoice {
  int m = 16;
  double risk = 0.0;
  /// (m, predicted risk) for every candidate, in candidate order.
  std::vector<std::pair<int, double>> candidates;
  bool within_budget = false;
};

/// Pick the coarsest (fewest-registers, Eq. 9) sharing granularity whose
/// predicted network risk stays within `max_risk`; falls back to the
/// minimum-risk candidate when none qualifies. Candidates are evaluated
/// by compiling a plan (quantization + VAWO) per m — no device is
/// programmed and `net` is never modified.
GranularityChoice choose_granularity(const rdo::nn::Layer& net,
                                     DeployOptions base,
                                     const rdo::nn::DataView& train,
                                     const std::vector<int>& candidate_ms,
                                     double max_risk);

}  // namespace rdo::core
