#include "core/plan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/check.h"
#include "core/opt/pipeline.h"
#include "obs/envvar.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "quant/act_quant.h"

namespace rdo::core {

namespace {

/// Build the deployment LUT, timing the construction. When the
/// RDO_LUT_CACHE_DIR environment variable names a directory, tables are
/// cached there under their config fingerprint: a stale or corrupt
/// entry is rebuilt (never silently reused — see RLut::load), and the
/// file is written atomically (temp + rename) so concurrent deployments
/// sharing a cache directory only ever observe complete tables.
rdo::rram::RLut make_lut(const rdo::rram::WeightProgrammer& prog,
                         const DeployOptions& opt, DeployStats& stats) {
  rdo::obs::ScopedTimer timer(&stats.lut_build_s);
  rdo::obs::TraceSpan span("deploy:lut_build", "deploy");
  span.arg("k_sets", opt.lut_k_sets);
  span.arg("j_cycles", opt.lut_j_cycles);
  const rdo::nn::Rng lut_rng = rdo::nn::Rng(opt.seed).split(0x11A7);
  const char* dir = rdo::obs::env_knob("RDO_LUT_CACHE_DIR");
  std::string path;
  std::uint64_t fp = 0;
  if (dir != nullptr && dir[0] != '\0') {
    fp = rdo::rram::RLut::fingerprint(prog, opt.lut_k_sets,
                                      opt.lut_j_cycles, opt.seed);
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fp));
    path = std::string(dir) + "/rlut_" + hex + ".bin";
    rdo::rram::RLut cached;
    try {
      if (rdo::rram::RLut::load(path, fp, cached)) {
        span.arg("cache_hit", std::int64_t{1});
        ++stats.lut_cache_hits;
        rdo::obs::global_metrics().counter("deploy_lut_cache_hits").add();
        return cached;
      }
    } catch (const std::exception& e) {
      rdo::obs::log_warn("deploy", "corrupt LUT cache entry; rebuilding")
          .with("path", path)
          .with("error", e.what());
    }
  }
  span.arg("cache_hit", std::int64_t{0});
  rdo::rram::RLut lut = rdo::rram::RLut::build(prog, opt.lut_k_sets,
                                               opt.lut_j_cycles, lut_rng);
  if (!path.empty()) {
    // A stale or corrupt entry lands here too and gets overwritten by
    // the rebuilt table (atomically), healing the cache in place.
    ++stats.lut_cache_misses;
    rdo::obs::global_metrics().counter("deploy_lut_cache_misses").add();
    try {
      lut.save(path, fp);
    } catch (const std::exception& e) {
      ++stats.lut_cache_save_failures;
      rdo::obs::global_metrics()
          .counter("deploy_lut_cache_save_failures")
          .add();
      rdo::obs::log_warn("deploy", "cannot cache LUT")
          .with("path", path)
          .with("error", e.what());
    }
  }
  return lut;
}

double read_power_of(const rdo::rram::WeightProgrammer& prog,
                     const rdo::rram::CellModel& cell,
                     const std::vector<int>& weights) {
  double p = 0.0;
  for (int v : weights) {
    for (int s : prog.slice(v)) p += cell.read_power(s);
  }
  return p;
}

}  // namespace

rdo::rram::TilingInfo DeploymentPlan::layer_tiling(std::size_t li,
                                                   int xbar_rows,
                                                   int xbar_cols) const {
  const PlanLayer& pl = layers.at(li);
  return rdo::rram::compute_tiling(pl.fan_in, pl.fan_out, xbar_rows,
                                   xbar_cols, prog.cells_per_weight());
}

double DeploymentPlan::assigned_read_power() const {
  double p = 0.0;
  for (const PlanLayer& pl : layers) {
    p += read_power_of(prog, opt.cell, pl.assign.ctw);
  }
  return p;
}

double DeploymentPlan::plain_read_power() const {
  double p = 0.0;
  for (const PlanLayer& pl : layers) {
    p += read_power_of(prog, opt.cell, pl.lq.q);
  }
  return p;
}

std::int64_t DeploymentPlan::total_crossbars(int xbar_rows,
                                             int xbar_cols) const {
  std::int64_t n = 0;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    n += layer_tiling(li, xbar_rows, xbar_cols).total_crossbars();
  }
  return n;
}

std::int64_t DeploymentPlan::total_offset_registers() const {
  std::int64_t n = 0;
  for (const PlanLayer& pl : layers) n += pl.offset_registers;
  return n;
}

namespace {

/// The actual compile stage (cache-oblivious); compile_plan wraps it
/// with the optional RDO_PLAN_CACHE_DIR lookup.
DeploymentPlan compile_plan_uncached(const rdo::nn::Layer& net,
                                     const DeployOptions& opt,
                                     const rdo::nn::DataView& train) {
  DeploymentPlan plan(opt);
  plan.lut = make_lut(plan.prog, opt, plan.compile_stats);

  // Work on a private twin so compilation can move it to the quantized
  // operating point without mutating the caller's network.
  std::unique_ptr<rdo::nn::Layer> work = net.clone();
  std::vector<rdo::nn::Layer*> all;
  collect_layers(work.get(), all);
  std::vector<rdo::nn::MatrixOp*> ops;
  std::vector<rdo::quant::ActQuant*> aqs;
  for (rdo::nn::Layer* l : all) {
    if (auto* op = dynamic_cast<rdo::nn::MatrixOp*>(l)) ops.push_back(op);
    if (auto* aq = dynamic_cast<rdo::quant::ActQuant*>(l)) aqs.push_back(aq);
  }
  RDO_CHECK(!ops.empty(), "compile_plan: network has no crossbar layers");

  rdo::obs::ScopedTimer timer(&plan.compile_stats.prepare_s);
  rdo::obs::TraceSpan span("deploy:prepare", "deploy");
  span.arg("layers", static_cast<std::int64_t>(ops.size()));

  // 1. Quantize every crossbar layer and move the twin to the quantized
  //    operating point (NTW round-trip).
  plan.layers.resize(ops.size());
  for (std::size_t li = 0; li < ops.size(); ++li) {
    PlanLayer& pl = plan.layers[li];
    pl.fan_in = ops[li]->fan_in();
    pl.fan_out = ops[li]->fan_out();
    pl.lq = rdo::quant::quantize_matrix(*ops[li], opt.weight_bits);
    rdo::quant::apply_quantized(*ops[li], pl.lq);
  }
  if (opt.quantize_activations && !aqs.empty()) {
    // Observe activation ranges on a few batches at the quantized-weight
    // operating point, then freeze the calibration into the plan.
    for (auto* aq : aqs) aq->disable();
    const std::int64_t n = std::min<std::int64_t>(train.size(), 128);
    std::vector<std::int64_t> idx;
    for (std::int64_t i = 0; i < n; ++i) idx.push_back(i);
    rdo::nn::Tensor batch = gather_batch(*train.images, idx);
    (void)work->forward(batch, /*train=*/false);
    plan.act_calib.reserve(aqs.size());
    for (auto* aq : aqs) {
      plan.act_calib.push_back({aq->bits(), aq->observed_max()});
      aq->calibrate(aq->observed_max());
    }
  }

  // 2. Scheme-dependent CTW/offset assignment.
  if (scheme_uses_vawo(opt.scheme)) {
    accumulate_mean_gradients(*work, train, opt.grad_batch,
                              opt.grad_samples);
    VawoOptions vopt;
    vopt.offsets = opt.offsets;
    vopt.use_complement = scheme_uses_complement(opt.scheme);
    vopt.penalize_bias = opt.penalize_bias;
    rdo::obs::ScopedTimer solve_timer(&plan.compile_stats.vawo_solve_s);
    rdo::obs::TraceSpan solve_span("deploy:vawo_solve", "deploy");
    // Every layer is quantized to the same weight width, so one dense
    // target-value cost table (see core/vawo.h) serves the whole plan;
    // build it once here, timed inside the solve phase.
    VawoTable vtable;
    {
      rdo::obs::TraceSpan table_span("vawo:table", "deploy");
      vtable = VawoTable::build(plan.lut, (1 << opt.weight_bits) - 1,
                                opt.offsets, opt.penalize_bias);
      table_span.arg("entries", static_cast<std::int64_t>(vtable.size()));
    }
    for (std::size_t li = 0; li < plan.layers.size(); ++li) {
      PlanLayer& pl = plan.layers[li];
      rdo::obs::TraceSpan layer_span("vawo:layer", "deploy");
      layer_span.arg("layer", static_cast<std::int64_t>(li));
      layer_span.arg("rows", pl.lq.rows);
      layer_span.arg("cols", pl.lq.cols);
      pl.mean_grads.resize(static_cast<std::size_t>(pl.lq.rows *
                                                    pl.lq.cols));
      for (std::int64_t r = 0; r < pl.lq.rows; ++r) {
        for (std::int64_t c = 0; c < pl.lq.cols; ++c) {
          pl.mean_grads[static_cast<std::size_t>(r * pl.lq.cols + c)] =
              ops[li]->weight_grad_at(r, c);
        }
      }
      pl.assign = vawo_layer(pl.lq, pl.mean_grads, plan.lut, vopt, &vtable);
      layer_span.arg("groups", pl.assign.groups_per_col);
    }
  } else {
    for (PlanLayer& pl : plan.layers) {
      pl.assign = plain_layer(pl.lq, opt.offsets.m);
    }
  }

  // 3. Seed the per-layer execution metadata (the optimizer passes refine
  //    it), then run the configured pass pipeline over the frozen plan.
  //    The pipeline runs inside the uncached path on purpose: the plan
  //    cache stores optimized plans, keyed by a fingerprint that covers
  //    the pass list.
  for (PlanLayer& pl : plan.layers) {
    pl.m = opt.offsets.m;
    pl.offset_registers = groups_per_column(pl.lq.rows, pl.m) * pl.lq.cols;
  }
  if (!opt.opt_passes.empty()) {
    std::string err;
    std::optional<std::vector<std::string>> names =
        opt::parse_pass_list(opt.opt_passes, &err);
    if (!names) {
      // Callers validate user input with parse_pass_list before building
      // DeployOptions; this is the defensive backstop.
      throw std::invalid_argument("compile_plan: " + err);
    }
    opt::run_pipeline(plan, *names);
  }
  return plan;
}

}  // namespace

DeploymentPlan compile_plan(const rdo::nn::Layer& net,
                            const DeployOptions& opt,
                            const rdo::nn::DataView& train) {
  // DeployOptions crosses the API boundary (CLI flags, bench configs):
  // reject hostile offset geometry before anything derives ranges from it.
  opt.offsets.validate();

  const char* dir = rdo::obs::env_knob("RDO_PLAN_CACHE_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return compile_plan_uncached(net, opt, train);
  }

  // Opt-in shared plan cache, mirroring the RDO_LUT_CACHE_DIR protocol:
  // keyed by the full config fingerprint, stale entries recompiled,
  // corrupt entries recompiled and healed by the atomic re-save.
  const std::uint64_t fp = plan_fingerprint(net, opt, train);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fp));
  const std::string path = std::string(dir) + "/plan_" + hex + ".bin";
  {
    rdo::obs::TraceSpan span("deploy:plan_cache", "deploy");
    try {
      if (std::optional<DeploymentPlan> cached =
              DeploymentPlan::load(path, fp)) {
        span.arg("cache_hit", std::int64_t{1});
        cached->compile_stats.plan_cache_hits = 1;
        rdo::obs::global_metrics().counter("deploy_plan_cache_hits").add();
        return std::move(*cached);
      }
    } catch (const PlanError& e) {
      rdo::obs::log_warn("deploy", "corrupt plan cache entry; recompiling")
          .with("path", path)
          .with("error", e.what());
    }
    span.arg("cache_hit", std::int64_t{0});
  }

  DeploymentPlan plan = compile_plan_uncached(net, opt, train);
  plan.compile_stats.plan_cache_misses = 1;
  rdo::obs::global_metrics().counter("deploy_plan_cache_misses").add();
  try {
    plan.save(path, fp);
  } catch (const std::exception& e) {
    plan.compile_stats.plan_cache_save_failures = 1;
    rdo::obs::global_metrics()
        .counter("deploy_plan_cache_save_failures")
        .add();
    rdo::obs::log_warn("deploy", "cannot cache plan")
        .with("path", path)
        .with("error", e.what());
  }
  return plan;
}

}  // namespace rdo::core
