// Digital-offset group geometry.
//
// An offset register is shared by m consecutive weights of one matrix
// column (the weights read out together on m activated wordlines,
// paper §III-A). m must be a multiple of the number of wordlines activated
// per cycle; with the paper's 128x128 crossbars and m in {16, 64, 128},
// row-blocks of m never straddle a crossbar boundary.
#pragma once

#include <cstdint>
#include <string>

#include "core/check.h"

namespace rdo::core {

struct OffsetConfig {
  int m = 16;           ///< sharing granularity (weights per offset)
  int offset_bits = 8;  ///< offset register width (signed)

  /// Contract check for externally supplied configs. `offset_min()` /
  /// `offset_max()` shift by `offset_bits - 1`, so `offset_bits = 0` (or
  /// anything >= 31) is undefined behaviour and a hostile value would
  /// otherwise enumerate an empty (or astronomically large) offset range.
  /// Every consumer of an OffsetConfig that crossed an API boundary
  /// (solver entry points, compile_plan) calls this before using it.
  void validate() const {
    RDO_CHECK(m >= 1, "OffsetConfig: m = " + std::to_string(m) + " < 1");
    RDO_CHECK(offset_bits >= 1 && offset_bits <= 30,
              "OffsetConfig: offset_bits = " + std::to_string(offset_bits) +
                  " outside [1, 30]");
  }

  [[nodiscard]] int offset_min() const { return -(1 << (offset_bits - 1)); }
  [[nodiscard]] int offset_max() const {
    return (1 << (offset_bits - 1)) - 1;
  }
  /// Number of representable register values, 2^offset_bits.
  [[nodiscard]] int offset_count() const { return 1 << offset_bits; }
};

/// Number of offset groups along one column of a `rows`-row matrix.
inline std::int64_t groups_per_column(std::int64_t rows, int m) {
  RDO_CHECK(m > 0, "groups_per_column: m = " + std::to_string(m) + " <= 0");
  return (rows + m - 1) / m;
}

/// Group index of matrix row `r`.
inline std::int64_t group_of_row(std::int64_t r, int m) { return r / m; }

/// Offset-register count for a crossbar with S rows storing l weight
/// columns at sharing granularity m (paper Eq. 9: H = S*l/m).
inline std::int64_t register_count(std::int64_t s, std::int64_t l, int m) {
  return s * l / m;
}

}  // namespace rdo::core
