// Variation-aware weight optimization (paper §III-B) and the weight
// complement enhancement (§III-C).
//
// For every group of m NTWs sharing one digital offset, VAWO picks the
// offset b and CTWs v_i that keep the network real weights unbiased
// (E[R(v_i)] + b = w_i*) while minimizing
//     sum_i (dL/dw_i)^2 * Var[R(v_i)].
// The offset is enumerated over all 2^offset_bits register values; each
// candidate inverts the E[R(v)] LUT to recover the v_i (the paper's exact
// procedure). When the constraint is unreachable for some weight (target
// outside the representable conductance range), the residual bias enters
// the objective as bias^2 — the natural extension of the paper's
// first-order analysis; set `penalize_bias = false` for the strict
// formulation (ablation).
//
// With `use_complement`, the mirrored problem over complemented targets
// (2^n - 1 - w_i*) is solved too and the better of the two forms is kept
// (VAWO*).
#pragma once

#include <cstdint>
#include <vector>

#include "core/offset.h"
#include "quant/quantizer.h"
#include "rram/rlut.h"

namespace rdo::core {

struct VawoOptions {
  OffsetConfig offsets;
  bool use_complement = false;
  bool penalize_bias = true;
};

/// VAWO output for one layer.
struct VawoResult {
  std::vector<int> ctw;              ///< [rows*cols] crossbar target weights
  std::vector<float> offsets;        ///< [groups_per_col*cols], value of b
  std::vector<std::uint8_t> complemented;  ///< per group, 1 = stored inverted
  std::int64_t groups_per_col = 0;
  double total_objective = 0.0;
};

/// Solve one offset group.
///
/// `ntw`/`grad` hold the m' (<= m) weights of the group; returns the chosen
/// offset, complement flag and CTWs through the out-parameters, and the
/// objective value achieved.
double vawo_solve_group(const std::vector<int>& ntw,
                        const std::vector<double>& grad,
                        const rdo::rram::RLut& lut, int weight_levels,
                        const VawoOptions& opt, int& best_offset,
                        bool& best_complemented, std::vector<int>& best_ctw);

/// Run VAWO over a whole quantized layer.
///
/// `grads` is the row-major [rows*cols] matrix of mean loss gradients
/// dL/dw (in effective-weight units; only relative magnitudes matter
/// within a group).
VawoResult vawo_layer(const rdo::quant::LayerQuant& lq,
                      const std::vector<double>& grads,
                      const rdo::rram::RLut& lut, const VawoOptions& opt);

/// The "plain" assignment (CTW = NTW, zero offsets) in the same format,
/// for the baseline scheme.
VawoResult plain_layer(const rdo::quant::LayerQuant& lq, int m);

}  // namespace rdo::core
