// Variation-aware weight optimization (paper §III-B) and the weight
// complement enhancement (§III-C).
//
// For every group of m NTWs sharing one digital offset, VAWO picks the
// offset b and CTWs v_i that keep the network real weights unbiased
// (E[R(v_i)] + b = w_i*) while minimizing
//     sum_i (dL/dw_i)^2 * Var[R(v_i)].
// The offset is enumerated over all 2^offset_bits register values; each
// candidate inverts the E[R(v)] LUT to recover the v_i (the paper's exact
// procedure). When the constraint is unreachable for some weight (target
// outside the representable conductance range), the residual bias enters
// the objective as bias^2 — the natural extension of the paper's
// first-order analysis; set `penalize_bias = false` for the strict
// formulation (ablation).
//
// With `use_complement`, the mirrored problem over complemented targets
// (2^n - 1 - w_i*) is solved too and the better of the two forms is kept
// (VAWO*).
//
// Two engines implement the same enumeration:
//
//   kReference  the literal per-candidate procedure: for every
//               (offset, form, weight) invert the LUT and re-derive the
//               variance/bias terms. O(forms * 2^bits * m) LUT binary
//               searches per group. Kept as the parity oracle.
//   kTable      the per-weight cost depends only on the integer target
//               value t = target_ntw - b, so a dense VawoTable of
//               (ctw, var, bias) indexed by t is built once per solve and
//               the objective collapses to a gather + dot product. The
//               enumeration order, floating-point expression shapes and
//               tie-breaking reproduce kReference bit-for-bit (asserted
//               exhaustively in tests/test_vawo_parity.cpp), so plans are
//               byte-identical across engines.
#pragma once

#include <cstdint>
#include <vector>

#include "core/offset.h"
#include "quant/quantizer.h"
#include "rram/rlut.h"

namespace rdo::core {

/// Solver implementation selector (see file comment). The table engine is
/// the production default; the reference engine is the oracle the parity
/// suite and the micro-benchmarks compare against.
enum class VawoEngine { kTable, kReference };

struct VawoOptions {
  OffsetConfig offsets;
  bool use_complement = false;
  bool penalize_bias = true;
  VawoEngine engine = VawoEngine::kTable;
};

/// Dense per-target-value cost table for the fast VAWO engine.
///
/// For every integer target value t = target_ntw - b that the enumeration
/// can produce — t spans [0 - offset_max, weight_levels - offset_min], one
/// contiguous range of weight_levels + 2^offset_bits entries — the table
/// stores the inverted CTW `ctw(t) = invert_mean(t)`, its variance
/// `var(t) = Var[R(ctw(t))]` and the residual bias
/// `bias(t) = E[R(ctw(t))] - t` (zeroed when `penalize_bias` is off, which
/// keeps the hot loop branch-free). Entries are laid out so that the
/// candidates of one weight with target_ntw = tau occupy the contiguous
/// slice [tau, tau + 2^offset_bits): index tau + j holds the cost of
/// offset b = offset_max - j. Shifting b by one therefore shifts every
/// index by one (adjacent offsets share all table work), and the
/// complement form only mirrors the base index to levels - ntw.
///
/// The table depends on the LUT, the weight range and the offset config
/// only — every group of a layer (and every layer of a plan compiled at
/// one weight width) shares a single instance.
class VawoTable {
 public:
  /// Precompute the table: one invert_mean per target value instead of
  /// one per (group x offset x form x weight) candidate.
  static VawoTable build(const rdo::rram::RLut& lut, int weight_levels,
                         const OffsetConfig& offsets, bool penalize_bias);

  [[nodiscard]] int weight_levels() const { return levels_; }
  [[nodiscard]] int offset_min() const { return bmin_; }
  [[nodiscard]] int offset_max() const { return bmax_; }
  [[nodiscard]] int offset_count() const { return bmax_ - bmin_ + 1; }
  [[nodiscard]] bool penalize_bias() const { return penalize_bias_; }
  [[nodiscard]] std::size_t size() const { return ctw_.size(); }

  /// Row pointers for a weight with target value `tau` (in [0, levels]):
  /// element j of the row is the cost entry of offset b = offset_max - j.
  [[nodiscard]] const double* var_row(int tau) const {
    return var_.data() + tau;
  }
  [[nodiscard]] const double* bias_row(int tau) const {
    return bias_.data() + tau;
  }
  [[nodiscard]] const int* ctw_row(int tau) const { return ctw_.data() + tau; }

 private:
  int levels_ = 0;
  int bmin_ = 0;
  int bmax_ = -1;
  bool penalize_bias_ = true;
  std::vector<int> ctw_;
  std::vector<double> var_;
  std::vector<double> bias_;
};

/// VAWO output for one layer.
struct VawoResult {
  std::vector<int> ctw;              ///< [rows*cols] crossbar target weights
  std::vector<float> offsets;        ///< [groups_per_col*cols], value of b
  std::vector<std::uint8_t> complemented;  ///< per group, 1 = stored inverted
  std::int64_t groups_per_col = 0;
  double total_objective = 0.0;
};

/// Solve one offset group — reference engine (the parity oracle).
///
/// `ntw`/`grad` hold the m' (<= m) weights of the group; returns the chosen
/// offset, complement flag and CTWs through the out-parameters, and the
/// objective value achieved. Throws ContractViolation on an invalid
/// offset config or an empty enumeration range (the out-parameters are
/// never left unwritten on a successful return).
double vawo_solve_group(const std::vector<int>& ntw,
                        const std::vector<double>& grad,
                        const rdo::rram::RLut& lut, int weight_levels,
                        const VawoOptions& opt, int& best_offset,
                        bool& best_complemented, std::vector<int>& best_ctw);

/// Solve one offset group — table engine. Same contract and bit-identical
/// results as the reference overload, but consumes the precomputed
/// VawoTable and the already-squared gradient weights `g2` (g2_i =
/// grad_i^2) directly. All ntw values must lie in
/// [0, table.weight_levels()].
double vawo_solve_group(const std::vector<int>& ntw,
                        const std::vector<double>& g2, const VawoTable& table,
                        bool use_complement, int& best_offset,
                        bool& best_complemented, std::vector<int>& best_ctw);

/// Run VAWO over a whole quantized layer.
///
/// `grads` is the row-major [rows*cols] matrix of mean loss gradients
/// dL/dw (in effective-weight units; only relative magnitudes matter
/// within a group). `opt.engine` selects the implementation; results are
/// bit-identical either way. When `table` is non-null it must have been
/// built for (lut, lq.levels(), opt.offsets, opt.penalize_bias) — pass it
/// to share one table across the layers of a plan; otherwise the table
/// engine builds its own.
VawoResult vawo_layer(const rdo::quant::LayerQuant& lq,
                      const std::vector<double>& grads,
                      const rdo::rram::RLut& lut, const VawoOptions& opt,
                      const VawoTable* table = nullptr);

/// The "plain" assignment (CTW = NTW, zero offsets) in the same format,
/// for the baseline scheme.
VawoResult plain_layer(const rdo::quant::LayerQuant& lq, int m);

}  // namespace rdo::core
