#include "core/backend.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace rdo::core {

EffectiveWeightBackend::EffectiveWeightBackend(const DeploymentPlan& plan,
                                               const rdo::nn::Layer& src,
                                               bool keep_cell_values)
    : plan_(plan), net_(src.clone()), keep_cells_(keep_cell_values) {
  std::vector<rdo::nn::Layer*> all;
  collect_layers(net_.get(), all);
  for (rdo::nn::Layer* l : all) {
    if (auto* op = dynamic_cast<rdo::nn::MatrixOp*>(l)) {
      LayerState ls;
      ls.op = op;
      layers_.push_back(std::move(ls));
    }
    if (auto* aq = dynamic_cast<rdo::quant::ActQuant*>(l)) {
      act_quants_.push_back(aq);
    }
  }
  RDO_CHECK(layers_.size() == plan_.layers.size(),
            "EffectiveWeightBackend: network does not match the plan "
            "(crossbar layer count)");
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const PlanLayer& pl = plan_.layers[li];
    RDO_CHECK(layers_[li].op->fan_in() == pl.fan_in &&
                  layers_[li].op->fan_out() == pl.fan_out,
              "EffectiveWeightBackend: network does not match the plan "
              "(layer geometry)");
    // Move the twin to the plan's quantized operating point.
    rdo::quant::apply_quantized(*layers_[li].op, pl.lq);
  }
  for (auto* aq : act_quants_) aq->disable();
  if (plan_.opt.quantize_activations && !act_quants_.empty()) {
    RDO_CHECK(act_quants_.size() == plan_.act_calib.size(),
              "EffectiveWeightBackend: network does not match the plan "
              "(activation quantizer count)");
    for (std::size_t i = 0; i < act_quants_.size(); ++i) {
      act_quants_[i]->calibrate(plan_.act_calib[i].max_abs);
    }
  }
}

void EffectiveWeightBackend::program_cycle(std::uint64_t cycle_salt) {
  rdo::obs::ScopedTimer timer(&stats_.program_s);
  rdo::obs::TraceSpan span("deploy:program", "deploy");
  span.arg("cycle", static_cast<std::int64_t>(cycle_salt));
  rdo::nn::Rng rng =
      rdo::nn::Rng(plan_.opt.seed).split(0xC0DEull + cycle_salt * 7919ull);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const PlanLayer& pl = plan_.layers[li];
    LayerState& ls = layers_[li];
    rdo::obs::TraceSpan layer_span("program:layer", "deploy");
    layer_span.arg("layer", static_cast<std::int64_t>(li));
    layer_span.arg("weights", static_cast<std::int64_t>(pl.assign.ctw.size()));
    rdo::nn::Rng lrng = rng.split(li);
    ls.crw.resize(pl.assign.ctw.size());
    if (keep_cells_) ls.cells.resize(pl.assign.ctw.size());
    // Dead columns (eliminate_dead_tiles) are never programmed: the RNG
    // draws are consumed and discarded so every live weight sees exactly
    // the stream it would without the pass, and the column reads back the
    // zero point exactly (ideal unprogrammed cells).
    const bool has_dead = !pl.dead_cols.empty();
    const auto cols = static_cast<std::size_t>(pl.lq.cols);
    std::vector<double> ideal_zero;
    if (has_dead && keep_cells_) {
      for (int s : plan_.prog.slice(pl.lq.zero)) {
        ideal_zero.push_back(static_cast<double>(s));
      }
    }
    std::int64_t live = 0;
    for (std::size_t i = 0; i < pl.assign.ctw.size(); ++i) {
      std::vector<double> cells =
          plan_.prog.program_cells(pl.assign.ctw[i], lrng);
      if (has_dead && pl.dead_cols[i % cols] != 0) {
        ls.crw[i] = static_cast<double>(pl.lq.zero);
        if (keep_cells_) ls.cells[i] = ideal_zero;
        continue;
      }
      ls.crw[i] = plan_.prog.compose(cells);
      if (keep_cells_) ls.cells[i] = std::move(cells);
      ++live;
    }
    stats_.weights_programmed += live;
    stats_.device_pulses += live * plan_.prog.cells_per_weight();
    // Each cycle starts from the a-priori (VAWO or zero) offsets; PWT then
    // adapts them to this cycle's CRWs.
    ls.offsets = pl.assign.offsets;
  }
  ++stats_.cycles;
  rdo::obs::trace_counter("device_pulses", stats_.device_pulses);
  apply_effective_weights();
}

void EffectiveWeightBackend::apply_effective_weights() {
  const float maxw = static_cast<float>(plan_.prog.max_weight());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const PlanLayer& pl = plan_.layers[li];
    LayerState& ls = layers_[li];
    const std::int64_t rows = pl.lq.rows, cols = pl.lq.cols;
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int64_t g = group_of_row(r, pl.m);
      for (std::int64_t c = 0; c < cols; ++c) {
        const std::size_t gi = static_cast<std::size_t>(g * cols + c);
        const float b = ls.offsets[gi];
        const double v = ls.crw[static_cast<std::size_t>(r * cols + c)];
        const double nrw = pl.assign.complemented[gi]
                               ? static_cast<double>(maxw) - v - b
                               : v + b;
        ls.op->set_weight_at(r, c, pl.lq.dequant(static_cast<float>(nrw)));
      }
    }
  }
  weights_deployed_ = true;
}

void EffectiveWeightBackend::apply_group_delta(std::size_t li,
                                               std::int64_t c,
                                               std::int64_t g,
                                               float delta_b) {
  const PlanLayer& pl = plan_.layers[li];
  LayerState& ls = layers_[li];
  const std::int64_t cols = pl.lq.cols;
  const std::size_t gi = static_cast<std::size_t>(g * cols + c);
  const float sign = pl.assign.complemented[gi] ? -1.0f : 1.0f;
  const float dw = sign * pl.lq.scale * delta_b;
  const std::int64_t r0 = g * pl.m;
  const std::int64_t r1 = std::min<std::int64_t>(pl.lq.rows, r0 + pl.m);
  for (std::int64_t r = r0; r < r1; ++r) {
    ls.op->set_weight_at(r, c, ls.op->weight_at(r, c) + dw);
  }
}

void EffectiveWeightBackend::tune(const rdo::nn::DataView& train) {
  if (!scheme_uses_pwt(plan_.opt.scheme)) return;
  RDO_CHECK(weights_deployed_,
            "EffectiveWeightBackend: program_cycle() first");
  rdo::obs::ScopedTimer timer(&stats_.tune_s);
  rdo::obs::TraceSpan span("deploy:tune", "deploy");
  const float lo = static_cast<float>(plan_.opt.offsets.offset_min());
  const float hi = static_cast<float>(plan_.opt.offsets.offset_max());
  if (plan_.opt.pwt.mean_init) {
    // Closed-form warm start from the measured CRWs: the offset that
    // zeroes the mean NRW deviation of each group.
    const int maxw = plan_.prog.max_weight();
    for (std::size_t li = 0; li < layers_.size(); ++li) {
      const PlanLayer& pl = plan_.layers[li];
      LayerState& ls = layers_[li];
      const std::int64_t rows = pl.lq.rows, cols = pl.lq.cols;
      for (std::int64_t c = 0; c < cols; ++c) {
        for (std::int64_t g = 0; g < pl.assign.groups_per_col; ++g) {
          const std::size_t gi = static_cast<std::size_t>(g * cols + c);
          const std::int64_t r0 = g * pl.m;
          const std::int64_t r1 = std::min<std::int64_t>(rows, r0 + pl.m);
          double acc = 0.0;
          for (std::int64_t r = r0; r < r1; ++r) {
            const int ntw = pl.lq.at(r, c);
            const double target =
                pl.assign.complemented[gi] ? maxw - ntw : ntw;
            acc += target - ls.crw[static_cast<std::size_t>(r * cols + c)];
          }
          ls.offsets[gi] = std::clamp(
              static_cast<float>(acc / static_cast<double>(r1 - r0)), lo,
              hi);
        }
      }
    }
    apply_effective_weights();
  }
  run_pwt(train);
  // Snap tuned offsets onto the signed offset-register grid and rebuild
  // the effective weights from scratch (removes incremental-update drift).
  for (LayerState& ls : layers_) {
    for (float& b : ls.offsets) b = std::clamp(std::round(b), lo, hi);
  }
  apply_effective_weights();
}

float EffectiveWeightBackend::evaluate(const rdo::nn::DataView& test,
                                       std::int64_t batch) {
  RDO_CHECK(weights_deployed_,
            "EffectiveWeightBackend: program_cycle() first");
  rdo::obs::ScopedTimer timer(&stats_.eval_s);
  rdo::obs::TraceSpan span("deploy:evaluate", "deploy");
  span.arg("batch", batch);
  rdo::obs::Stopwatch watch;
  const float acc = rdo::nn::evaluate(*net_, test, batch).accuracy;
  stats_.eval_seconds.push_back(watch.seconds());
  span.arg("accuracy", static_cast<double>(acc));
  stats_.eval_accuracy.push_back(acc);
  return acc;
}

}  // namespace rdo::core
