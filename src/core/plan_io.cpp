// DeploymentPlan serialization (save/load/fingerprint) — the on-disk half
// of the compile-once/execute-many story.
//
// Format ("RDP2", version-in-magic like the RLut's "RLU2"):
//
//   u32  magic "RDP2"
//   u64  config fingerprint (plan_fingerprint of the compiling caller)
//   ...  DeployOptions block (fixed-width fields + the length-prefixed
//        optimizer pass list, see save())
//   u64  LUT byte count, then one embedded RLut save() document (RLU2)
//   u32  layer count, then per layer: geometry, per-layer offset-group
//        size m and register count (written before the arrays so their
//        declared counts validate against the layer's own m), LayerQuant,
//        mean gradients, VawoResult, dead-column mask
//   u32  activation-calibration count, then {bits, max_abs} entries
//   u32  applied-pass count, then length-prefixed registered pass names
//
// RDP1 files fail the magic check and raise PlanError ("bad magic") —
// the cache-recovery path then recompiles and overwrites them; since the
// magic participates in plan_fingerprint, stale RDP1 cache entries can
// never alias an RDP2 fingerprint either.
//
// The load path treats the file as untrusted input (it is the payload
// behind the opt-in RDO_PLAN_CACHE_DIR shared cache): every read is
// checked against the stream state, every declared count is bounded by
// the bytes actually remaining before it is believed, enum and range
// fields are validated before any object is constructed from them, and
// trailing bytes are rejected. A damaged file raises PlanError — never a
// partially-initialized plan, an unbounded resize, or a ContractViolation
// from deeper layers. fuzz/fuzz_plan.cpp hammers exactly this contract.
//
// compile_stats is intentionally not serialized: wall times are volatile,
// and a loaded plan reporting zero compile time is precisely what a cache
// hit means (the warm-start test asserts it).
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "core/opt/pipeline.h"
#include "core/plan.h"
#include "core/tmpfile.h"
#include "nn/matrix_op.h"
#include "quant/act_quant.h"

namespace rdo::core {

namespace {

constexpr std::uint32_t kPlanMagic = 0x52445032;  // "RDP2" (little-endian "2PDR" on disk; a tag, not text)

// Structural ceilings for hostile headers. Far above anything a real
// network produces, far below anything that could drive a multi-GB
// resize before the byte budget catches it.
constexpr std::uint64_t kMaxLayers = 4096;
constexpr std::uint64_t kMaxLayerElems = std::uint64_t{1} << 28;
constexpr std::uint64_t kMaxCalib = 4096;
constexpr std::uint64_t kMaxDim = std::uint64_t{1} << 24;
constexpr std::uint64_t kMaxPassSpec = 4096;  ///< pass-list string bytes
constexpr std::uint64_t kMaxPasses = 64;      ///< applied-pass record entries

/// FNV-1a over a byte span (same construction as RLut::fingerprint).
void fnv1a(const void* data, std::size_t n, std::uint64_t& h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

void fnv1a_u64(std::uint64_t v, std::uint64_t& h) { fnv1a(&v, sizeof(v), h); }

void fnv1a_double(double v, std::uint64_t& h) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  fnv1a_u64(bits, h);
}

void fnv1a_str(const std::string& s, std::uint64_t& h) {
  fnv1a_u64(s.size(), h);
  fnv1a(s.data(), s.size(), h);
}

void hash_options(const DeployOptions& o, std::uint64_t& h) {
  fnv1a_u64(static_cast<std::uint64_t>(o.scheme), h);
  fnv1a_u64(static_cast<std::uint64_t>(o.offsets.m), h);
  fnv1a_u64(static_cast<std::uint64_t>(o.offsets.offset_bits), h);
  fnv1a_u64(o.cell.kind == rdo::rram::CellKind::SLC ? 1u : 2u, h);
  fnv1a_double(o.cell.on_off_ratio, h);
  fnv1a_double(o.variation.sigma, h);
  fnv1a_double(o.variation.ddv_fraction, h);
  fnv1a_u64(o.variation.scope == rdo::rram::VariationScope::PerWeight ? 1u
                                                                      : 2u,
            h);
  fnv1a_double(o.faults.stuck_hrs_rate, h);
  fnv1a_double(o.faults.stuck_lrs_rate, h);
  fnv1a_u64(static_cast<std::uint64_t>(o.weight_bits), h);
  fnv1a_u64(static_cast<std::uint64_t>(o.pwt.epochs), h);
  fnv1a_double(static_cast<double>(o.pwt.lr), h);
  fnv1a_u64(static_cast<std::uint64_t>(o.pwt.batch_size), h);
  fnv1a_u64(static_cast<std::uint64_t>(o.pwt.max_samples), h);
  fnv1a_u64(o.pwt.mean_init ? 1u : 0u, h);
  fnv1a_u64(o.quantize_activations ? 1u : 0u, h);
  fnv1a_u64(o.penalize_bias ? 1u : 0u, h);
  fnv1a_u64(static_cast<std::uint64_t>(o.lut_k_sets), h);
  fnv1a_u64(static_cast<std::uint64_t>(o.lut_j_cycles), h);
  fnv1a_u64(static_cast<std::uint64_t>(o.grad_samples), h);
  fnv1a_u64(static_cast<std::uint64_t>(o.grad_batch), h);
  fnv1a_u64(o.seed, h);
  fnv1a_str(o.opt_passes, h);
}

/// Binary writer with stream-state checking.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void raw(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    if (!out_) {
      throw std::runtime_error("DeploymentPlan::save: stream write failed");
    }
  }
  template <typename T>
  void scalar(T v) {
    raw(&v, sizeof(v));
  }
  template <typename T>
  void array(const std::vector<T>& v) {
    scalar(static_cast<std::uint64_t>(v.size()));
    raw(v.data(), v.size() * sizeof(T));
  }

 private:
  std::ostream& out_;
};

/// Binary reader with a byte budget: every read is bounded by the bytes
/// the stream actually holds, so a hostile count can never drive an
/// allocation or a read past the document.
class Reader {
 public:
  Reader(std::istream& in, std::uint64_t total, std::string source)
      : in_(in), remaining_(total), source_(std::move(source)) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw PlanError("DeploymentPlan::load: " + what + " in " + source_);
  }
  void require(bool cond, const char* what) const {
    if (!cond) fail(what);
  }

  void raw(void* dst, std::size_t n) {
    if (n > remaining_) fail("truncated file");
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!in_ || in_.gcount() != static_cast<std::streamsize>(n)) {
      fail("truncated file");
    }
    remaining_ -= n;
  }
  template <typename T>
  T scalar() {
    T v;
    raw(&v, sizeof(v));
    return v;
  }
  /// Length-prefixed array whose count must satisfy `max_count` and the
  /// byte budget before anything is allocated.
  template <typename T>
  std::vector<T> array(std::uint64_t max_count) {
    const auto n = scalar<std::uint64_t>();
    require(n <= max_count, "oversized array count");
    require(n * sizeof(T) <= remaining_, "array count exceeds file size");
    std::vector<T> v(static_cast<std::size_t>(n));
    raw(v.data(), static_cast<std::size_t>(n) * sizeof(T));
    return v;
  }
  double finite_double() {
    const auto v = scalar<double>();
    require(std::isfinite(v), "non-finite floating-point field");
    return v;
  }
  float finite_float() {
    const auto v = scalar<float>();
    require(std::isfinite(v), "non-finite floating-point field");
    return v;
  }

  [[nodiscard]] std::uint64_t remaining() const { return remaining_; }
  [[nodiscard]] const std::string& source() const { return source_; }

 private:
  std::istream& in_;
  std::uint64_t remaining_;
  std::string source_;
};

void write_options(Writer& w, const DeployOptions& o) {
  w.scalar(static_cast<std::uint32_t>(o.scheme));
  w.scalar(static_cast<std::int32_t>(o.offsets.m));
  w.scalar(static_cast<std::int32_t>(o.offsets.offset_bits));
  w.scalar(static_cast<std::uint32_t>(o.cell.kind));
  w.scalar(o.cell.on_off_ratio);
  w.scalar(o.variation.sigma);
  w.scalar(o.variation.ddv_fraction);
  w.scalar(static_cast<std::uint32_t>(o.variation.scope));
  w.scalar(o.faults.stuck_hrs_rate);
  w.scalar(o.faults.stuck_lrs_rate);
  w.scalar(static_cast<std::int32_t>(o.weight_bits));
  w.scalar(static_cast<std::int32_t>(o.pwt.epochs));
  w.scalar(o.pwt.lr);
  w.scalar(o.pwt.batch_size);
  w.scalar(o.pwt.max_samples);
  w.scalar(static_cast<std::uint8_t>(o.pwt.mean_init ? 1 : 0));
  w.scalar(static_cast<std::uint8_t>(o.quantize_activations ? 1 : 0));
  w.scalar(static_cast<std::uint8_t>(o.penalize_bias ? 1 : 0));
  w.scalar(static_cast<std::int32_t>(o.lut_k_sets));
  w.scalar(static_cast<std::int32_t>(o.lut_j_cycles));
  w.scalar(o.grad_samples);
  w.scalar(o.grad_batch);
  w.scalar(o.seed);
  w.scalar(static_cast<std::uint64_t>(o.opt_passes.size()));
  w.raw(o.opt_passes.data(), o.opt_passes.size());
}

DeployOptions read_options(Reader& r) {
  DeployOptions o;
  const auto scheme = r.scalar<std::uint32_t>();
  r.require(scheme <= static_cast<std::uint32_t>(Scheme::VAWOStarPWT),
            "unknown scheme");
  o.scheme = static_cast<Scheme>(scheme);
  const auto m = r.scalar<std::int32_t>();
  r.require(m >= 1 && static_cast<std::uint64_t>(m) <= kMaxDim,
            "offset group size out of range");
  o.offsets.m = m;
  const auto obits = r.scalar<std::int32_t>();
  r.require(obits >= 1 && obits <= 30, "offset register width out of range");
  o.offsets.offset_bits = obits;
  const auto kind = r.scalar<std::uint32_t>();
  r.require(kind <= 1, "unknown cell kind");
  o.cell.kind = static_cast<rdo::rram::CellKind>(kind);
  o.cell.on_off_ratio = r.finite_double();
  r.require(o.cell.on_off_ratio > 1.0, "ON/OFF ratio out of range");
  o.variation.sigma = r.finite_double();
  r.require(o.variation.sigma >= 0.0, "negative sigma");
  o.variation.ddv_fraction = r.finite_double();
  r.require(o.variation.ddv_fraction >= 0.0 && o.variation.ddv_fraction <= 1.0,
            "DDV fraction out of range");
  const auto scope = r.scalar<std::uint32_t>();
  r.require(scope <= 1, "unknown variation scope");
  o.variation.scope = static_cast<rdo::rram::VariationScope>(scope);
  o.faults.stuck_hrs_rate = r.finite_double();
  o.faults.stuck_lrs_rate = r.finite_double();
  r.require(o.faults.stuck_hrs_rate >= 0.0 && o.faults.stuck_hrs_rate <= 1.0 &&
                o.faults.stuck_lrs_rate >= 0.0 &&
                o.faults.stuck_lrs_rate <= 1.0,
            "fault rate out of range");
  const auto wbits = r.scalar<std::int32_t>();
  r.require(wbits >= 1 && wbits <= 16, "weight bits out of range");
  r.require(wbits % o.cell.bits() == 0,
            "weight bits not divisible into cells");
  o.weight_bits = wbits;
  o.pwt.epochs = r.scalar<std::int32_t>();
  r.require(o.pwt.epochs >= 0, "negative PWT epoch count");
  o.pwt.lr = r.finite_float();
  o.pwt.batch_size = r.scalar<std::int64_t>();
  o.pwt.max_samples = r.scalar<std::int64_t>();
  r.require(o.pwt.batch_size >= 1 && o.pwt.max_samples >= 0,
            "PWT batch geometry out of range");
  o.pwt.mean_init = r.scalar<std::uint8_t>() != 0;
  o.quantize_activations = r.scalar<std::uint8_t>() != 0;
  o.penalize_bias = r.scalar<std::uint8_t>() != 0;
  o.lut_k_sets = r.scalar<std::int32_t>();
  o.lut_j_cycles = r.scalar<std::int32_t>();
  r.require(o.lut_k_sets >= 1 &&
                static_cast<std::uint64_t>(o.lut_k_sets) <= kMaxDim &&
                o.lut_j_cycles >= 1 &&
                static_cast<std::uint64_t>(o.lut_j_cycles) <= kMaxDim,
            "LUT protocol out of range");
  o.grad_samples = r.scalar<std::int64_t>();
  o.grad_batch = r.scalar<std::int64_t>();
  r.require(o.grad_samples >= 0 && o.grad_batch >= 1,
            "gradient budget out of range");
  o.seed = r.scalar<std::uint64_t>();
  const auto pass_len = r.scalar<std::uint64_t>();
  r.require(pass_len <= kMaxPassSpec, "oversized optimizer pass list");
  std::string spec(static_cast<std::size_t>(pass_len), '\0');
  if (pass_len > 0) r.raw(spec.data(), spec.size());
  std::string err;
  if (!opt::parse_pass_list(spec, &err)) {
    r.fail("invalid optimizer pass list: " + err);
  }
  o.opt_passes = std::move(spec);
  return o;
}

}  // namespace

void DeploymentPlan::save(std::ostream& out,
                          std::uint64_t fingerprint) const {
  Writer w(out);
  w.scalar(kPlanMagic);
  w.scalar(fingerprint);
  write_options(w, opt);

  // Embed the LUT as one length-prefixed RLU2 document so the hardened
  // RLut loader parses it back (single parsing path for LUT bytes).
  std::ostringstream lut_bytes(std::ios::binary);
  lut.save(lut_bytes, rdo::rram::RLut::fingerprint(prog, opt.lut_k_sets,
                                                   opt.lut_j_cycles,
                                                   opt.seed));
  const std::string blob = lut_bytes.str();
  w.scalar(static_cast<std::uint64_t>(blob.size()));
  w.raw(blob.data(), blob.size());

  w.scalar(static_cast<std::uint32_t>(layers.size()));
  for (const PlanLayer& pl : layers) {
    w.scalar(pl.fan_in);
    w.scalar(pl.fan_out);
    // Per-layer execution metadata goes before the arrays so the loader
    // can validate their declared counts against this layer's own m.
    w.scalar(static_cast<std::int32_t>(pl.m));
    w.scalar(pl.offset_registers);
    w.scalar(static_cast<std::int32_t>(pl.lq.bits));
    w.scalar(pl.lq.scale);
    w.scalar(static_cast<std::int32_t>(pl.lq.zero));
    w.scalar(pl.lq.rows);
    w.scalar(pl.lq.cols);
    w.array(pl.lq.q);
    w.array(pl.mean_grads);
    w.array(pl.assign.ctw);
    w.array(pl.assign.offsets);
    w.array(pl.assign.complemented);
    w.scalar(pl.assign.groups_per_col);
    w.scalar(pl.assign.total_objective);
    w.array(pl.dead_cols);
  }

  w.scalar(static_cast<std::uint32_t>(act_calib.size()));
  for (const ActCalibration& ac : act_calib) {
    w.scalar(static_cast<std::int32_t>(ac.bits));
    w.scalar(ac.max_abs);
  }

  w.scalar(static_cast<std::uint32_t>(passes_applied.size()));
  for (const std::string& name : passes_applied) {
    w.scalar(static_cast<std::uint64_t>(name.size()));
    w.raw(name.data(), name.size());
  }
}

void DeploymentPlan::save(const std::string& path,
                          std::uint64_t fingerprint) const {
  const std::string tmp = path + unique_tmp_suffix();
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      throw std::runtime_error("DeploymentPlan::save: cannot open " + tmp);
    }
    save(f, fingerprint);
    if (!f) {
      throw std::runtime_error("DeploymentPlan::save: write failed for " +
                               tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("DeploymentPlan::save: cannot rename into " +
                             path);
  }
}

std::optional<DeploymentPlan> DeploymentPlan::load(std::istream& in,
                                                   std::uint64_t fingerprint,
                                                   const std::string& source) {
  // Byte budget: bound every declared count by what the stream holds.
  const std::istream::pos_type pos = in.tellg();
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (pos == std::istream::pos_type(-1) || end == std::istream::pos_type(-1) ||
      !in || end < pos) {
    throw PlanError("DeploymentPlan::load: unseekable stream " + source);
  }
  Reader r(in, static_cast<std::uint64_t>(end - pos), source);

  if (r.scalar<std::uint32_t>() != kPlanMagic) r.fail("bad magic");
  const auto stored_fp = r.scalar<std::uint64_t>();
  if (stored_fp != fingerprint) {
    // Stale cache: compiled for another configuration (or a format/seed
    // change). Not corruption — the caller recompiles and overwrites.
    return std::nullopt;
  }

  const DeployOptions opt = read_options(r);
  DeploymentPlan plan(opt);

  // Embedded LUT: extract the length-prefixed blob and feed it to the
  // hardened RLut loader, which re-checks its own header, payload size
  // and fingerprint over exactly this span.
  const auto lut_blob = r.array<char>(r.remaining());
  {
    std::istringstream lut_in(std::string(lut_blob.data(), lut_blob.size()),
                              std::ios::binary);
    const std::uint64_t lut_fp = rdo::rram::RLut::fingerprint(
        plan.prog, opt.lut_k_sets, opt.lut_j_cycles, opt.seed);
    try {
      if (!rdo::rram::RLut::load(lut_in, lut_fp, plan.lut,
                                 source + " (embedded LUT)")) {
        r.fail("embedded LUT fingerprint mismatch");
      }
    } catch (const rdo::rram::LutError& e) {
      throw PlanError(std::string("DeploymentPlan::load: ") + e.what());
    }
  }
  r.require(plan.lut.max_weight() == plan.prog.max_weight(),
            "embedded LUT size does not match weight bits");

  const auto n_layers = r.scalar<std::uint32_t>();
  r.require(n_layers >= 1 && n_layers <= kMaxLayers,
            "layer count out of range");
  plan.layers.resize(n_layers);
  const int levels = (1 << opt.weight_bits) - 1;
  for (std::uint32_t li = 0; li < n_layers; ++li) {
    PlanLayer& pl = plan.layers[li];
    pl.fan_in = r.scalar<std::int64_t>();
    pl.fan_out = r.scalar<std::int64_t>();
    r.require(pl.fan_in >= 1 &&
                  static_cast<std::uint64_t>(pl.fan_in) <= kMaxDim &&
                  pl.fan_out >= 1 &&
                  static_cast<std::uint64_t>(pl.fan_out) <= kMaxDim,
              "layer fan geometry out of range");
    const auto layer_m = r.scalar<std::int32_t>();
    r.require(layer_m >= opt.offsets.m && layer_m % opt.offsets.m == 0 &&
                  static_cast<std::uint64_t>(layer_m) <= kMaxDim,
              "layer group size out of range");
    pl.m = layer_m;
    pl.offset_registers = r.scalar<std::int64_t>();
    const auto bits = r.scalar<std::int32_t>();
    r.require(bits == opt.weight_bits, "layer bit width mismatch");
    pl.lq.bits = bits;
    pl.lq.scale = r.finite_float();
    pl.lq.zero = r.scalar<std::int32_t>();
    pl.lq.rows = r.scalar<std::int64_t>();
    pl.lq.cols = r.scalar<std::int64_t>();
    r.require(pl.lq.rows >= 1 &&
                  static_cast<std::uint64_t>(pl.lq.rows) <= kMaxDim &&
                  pl.lq.cols >= 1 &&
                  static_cast<std::uint64_t>(pl.lq.cols) <= kMaxDim,
              "layer matrix shape out of range");
    const std::uint64_t elems = static_cast<std::uint64_t>(pl.lq.rows) *
                                static_cast<std::uint64_t>(pl.lq.cols);
    r.require(elems <= kMaxLayerElems, "layer element count out of range");

    pl.lq.q = r.array<int>(elems);
    r.require(pl.lq.q.size() == elems, "NTW count mismatch");
    for (int v : pl.lq.q) {
      r.require(v >= 0 && v <= levels, "NTW value out of range");
    }
    pl.mean_grads = r.array<double>(elems);
    r.require(pl.mean_grads.empty() || pl.mean_grads.size() == elems,
              "gradient count mismatch");
    for (double g : pl.mean_grads) {
      r.require(std::isfinite(g), "non-finite gradient");
    }
    pl.assign.ctw = r.array<int>(elems);
    r.require(pl.assign.ctw.size() == elems, "CTW count mismatch");
    for (int v : pl.assign.ctw) {
      r.require(v >= 0 && v <= levels, "CTW value out of range");
    }
    r.require(pl.offset_registers >= 1 &&
                  pl.offset_registers <=
                      groups_per_column(pl.lq.rows, pl.m) * pl.lq.cols,
              "layer register count out of range");
    const std::uint64_t groups =
        static_cast<std::uint64_t>(groups_per_column(pl.lq.rows, pl.m)) *
        static_cast<std::uint64_t>(pl.lq.cols);
    pl.assign.offsets = r.array<float>(groups);
    r.require(pl.assign.offsets.size() == groups, "offset count mismatch");
    for (float b : pl.assign.offsets) {
      r.require(std::isfinite(b), "non-finite offset");
    }
    pl.assign.complemented = r.array<std::uint8_t>(groups);
    r.require(pl.assign.complemented.size() == groups,
              "complement-flag count mismatch");
    for (std::uint8_t c : pl.assign.complemented) {
      r.require(c <= 1, "complement flag out of range");
    }
    pl.assign.groups_per_col = r.scalar<std::int64_t>();
    r.require(pl.assign.groups_per_col ==
                  groups_per_column(pl.lq.rows, pl.m),
              "group count does not match geometry");
    pl.assign.total_objective = r.finite_double();
    pl.dead_cols = r.array<std::uint8_t>(
        static_cast<std::uint64_t>(pl.lq.cols));
    r.require(pl.dead_cols.empty() ||
                  pl.dead_cols.size() ==
                      static_cast<std::size_t>(pl.lq.cols),
              "dead-column mask size mismatch");
    for (std::int64_t c = 0;
         c < static_cast<std::int64_t>(pl.dead_cols.size()); ++c) {
      const std::uint8_t flag = pl.dead_cols[static_cast<std::size_t>(c)];
      r.require(flag <= 1, "dead-column flag out of range");
      if (flag == 0) continue;
      // A marked column must actually be canonically dead: backends skip
      // its programming, so believing a hostile flag would silently zero
      // live weights.
      for (std::int64_t row = 0; row < pl.lq.rows; ++row) {
        const auto e = static_cast<std::size_t>(row * pl.lq.cols + c);
        r.require(pl.lq.q[e] == pl.lq.zero && pl.assign.ctw[e] == pl.lq.zero,
                  "dead-column flag over a live weight");
      }
      for (std::int64_t g = 0; g < pl.assign.groups_per_col; ++g) {
        const auto gi = static_cast<std::size_t>(g * pl.lq.cols + c);
        r.require(pl.assign.offsets[gi] == 0.0f &&
                      pl.assign.complemented[gi] == 0,
                  "dead-column flag over a nonzero offset");
      }
    }
  }

  const auto n_calib = r.scalar<std::uint32_t>();
  r.require(n_calib <= kMaxCalib, "calibration count out of range");
  plan.act_calib.resize(n_calib);
  for (std::uint32_t i = 0; i < n_calib; ++i) {
    const auto bits = r.scalar<std::int32_t>();
    r.require(bits >= 1 && bits <= 16, "calibration bits out of range");
    plan.act_calib[i].bits = bits;
    plan.act_calib[i].max_abs = r.finite_float();
    r.require(plan.act_calib[i].max_abs >= 0.0f,
              "negative calibration range");
  }

  const auto n_passes = r.scalar<std::uint32_t>();
  r.require(n_passes <= kMaxPasses, "applied-pass count out of range");
  plan.passes_applied.reserve(n_passes);
  for (std::uint32_t i = 0; i < n_passes; ++i) {
    const auto len = r.scalar<std::uint64_t>();
    r.require(len >= 1 && len <= kMaxPassSpec, "pass name length out of range");
    std::string name(static_cast<std::size_t>(len), '\0');
    r.raw(name.data(), name.size());
    bool known = false;
    for (const std::string& reg : opt::registered_passes()) {
      if (reg == name) {
        known = true;
        break;
      }
    }
    r.require(known, "unregistered pass in provenance record");
    plan.passes_applied.push_back(std::move(name));
  }

  r.require(r.remaining() == 0, "trailing bytes");
  return plan;
}

std::optional<DeploymentPlan> DeploymentPlan::load(const std::string& path,
                                                   std::uint64_t fingerprint) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  return load(f, fingerprint, path);
}

std::uint64_t plan_fingerprint(const rdo::nn::Layer& net,
                               const DeployOptions& opt,
                               const rdo::nn::DataView& train) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  fnv1a_u64(kPlanMagic, h);  // format bumps invalidate every cached plan
  hash_options(opt, h);

  // Network: structure (layer names + crossbar shapes in traversal
  // order) and content (every parameter and buffer byte). params() and
  // buffers() are non-const in the Layer interface but only read here.
  auto& mut = const_cast<rdo::nn::Layer&>(net);
  std::vector<rdo::nn::Layer*> all;
  rdo::nn::collect_layers(&mut, all);
  fnv1a_u64(all.size(), h);
  for (rdo::nn::Layer* l : all) {
    fnv1a_str(l->name(), h);
    if (const auto* op = dynamic_cast<const rdo::nn::MatrixOp*>(l)) {
      fnv1a_u64(static_cast<std::uint64_t>(op->fan_in()), h);
      fnv1a_u64(static_cast<std::uint64_t>(op->fan_out()), h);
    }
    if (const auto* aq = dynamic_cast<const rdo::quant::ActQuant*>(l)) {
      fnv1a_u64(static_cast<std::uint64_t>(aq->bits()), h);
    }
  }
  for (rdo::nn::Param* p : mut.params()) {
    fnv1a_u64(static_cast<std::uint64_t>(p->value.size()), h);
    fnv1a(p->value.data(),
          static_cast<std::size_t>(p->value.size()) * sizeof(float), h);
  }
  for (rdo::nn::Tensor* b : mut.buffers()) {
    fnv1a_u64(static_cast<std::uint64_t>(b->size()), h);
    fnv1a(b->data(), static_cast<std::size_t>(b->size()) * sizeof(float), h);
  }

  // Calibration/gradient dataset: activation calibration and the VAWO
  // mean-gradient estimate both read it, so two different datasets must
  // never share a plan.
  fnv1a_u64(static_cast<std::uint64_t>(train.images->size()), h);
  for (std::int64_t d : train.images->shape()) {
    fnv1a_u64(static_cast<std::uint64_t>(d), h);
  }
  fnv1a(train.images->data(),
        static_cast<std::size_t>(train.images->size()) * sizeof(float), h);
  fnv1a_u64(train.labels->size(), h);
  fnv1a(train.labels->data(), train.labels->size() * sizeof(int), h);
  return h;
}

}  // namespace rdo::core
