#include "core/analysis.h"

#include <cmath>

#include "core/check.h"

namespace rdo::core {

LayerRisk assignment_risk(const rdo::quant::LayerQuant& lq,
                          const VawoResult& assign,
                          const rdo::rram::RLut& lut) {
  LayerRisk risk;
  const std::int64_t rows = lq.rows, cols = lq.cols;
  const int maxw = lq.levels();
  // Infer the group height from the assignment geometry (ceil division).
  const std::int64_t m =
      (rows + assign.groups_per_col - 1) / assign.groups_per_col;
  double total = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t g = r / m;
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::size_t gi = static_cast<std::size_t>(g * cols + c);
      const std::size_t wi = static_cast<std::size_t>(r * cols + c);
      const int ntw = lq.at(r, c);
      const double target =
          assign.complemented[gi] ? maxw - ntw : ntw;
      const int v = assign.ctw[wi];
      const double bias =
          lut.mean(v) + assign.offsets[gi] - target;
      total += lut.var(v) + bias * bias;
    }
  }
  risk.mean_sq_dev = total / static_cast<double>(rows * cols);
  risk.rms_relative =
      std::sqrt(risk.mean_sq_dev) / static_cast<double>(maxw);
  return risk;
}

std::vector<LayerRisk> deployment_risk(const DeploymentPlan& plan) {
  std::vector<LayerRisk> risks;
  risks.reserve(plan.layers.size());
  for (const PlanLayer& pl : plan.layers) {
    risks.push_back(assignment_risk(pl.lq, pl.assign, plan.lut));
  }
  return risks;
}

double network_risk(const DeploymentPlan& plan) {
  double total = 0.0;
  double weights = 0.0;
  for (const PlanLayer& pl : plan.layers) {
    const LayerRisk r = assignment_risk(pl.lq, pl.assign, plan.lut);
    const double n = static_cast<double>(pl.lq.rows * pl.lq.cols);
    total += r.mean_sq_dev * n;
    weights += n;
  }
  const int maxw = plan.layers.front().lq.levels();
  return std::sqrt(total / weights) / static_cast<double>(maxw);
}

GranularityChoice choose_granularity(const rdo::nn::Layer& net,
                                     DeployOptions base,
                                     const rdo::nn::DataView& train,
                                     const std::vector<int>& candidate_ms,
                                     double max_risk) {
  GranularityChoice choice;
  RDO_CHECK(!candidate_ms.empty(), "choose_granularity: no candidates");
  double best_risk = -1.0;
  int best_m = candidate_ms.front();
  int coarsest_ok = -1;
  double coarsest_ok_risk = 0.0;
  for (int m : candidate_ms) {
    DeployOptions o = base;
    o.offsets.m = m;
    const DeploymentPlan plan = compile_plan(net, o, train);
    const double r = network_risk(plan);
    choice.candidates.emplace_back(m, r);
    if (best_risk < 0.0 || r < best_risk) {
      best_risk = r;
      best_m = m;
    }
    if (r <= max_risk && m > coarsest_ok) {
      coarsest_ok = m;
      coarsest_ok_risk = r;
    }
  }
  if (coarsest_ok > 0) {
    choice.m = coarsest_ok;
    choice.risk = coarsest_ok_risk;
    choice.within_budget = true;
  } else {
    choice.m = best_m;
    choice.risk = best_risk;
    choice.within_budget = false;
  }
  return choice;
}

}  // namespace rdo::core
