#include "core/deploy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "nn/parallel.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "rram/tiler.h"

namespace rdo::core {

void DeployStats::merge(const DeployStats& other) {
  lut_build_s += other.lut_build_s;
  prepare_s += other.prepare_s;
  vawo_solve_s += other.vawo_solve_s;
  program_s += other.program_s;
  tune_s += other.tune_s;
  eval_s += other.eval_s;
  eval_seconds.insert(eval_seconds.end(), other.eval_seconds.begin(),
                      other.eval_seconds.end());
  cycles += other.cycles;
  weights_programmed += other.weights_programmed;
  device_pulses += other.device_pulses;
  pwt_epochs += other.pwt_epochs;
  pwt_batches += other.pwt_batches;
  pwt_offset_updates += other.pwt_offset_updates;
  pwt_epoch_loss.insert(pwt_epoch_loss.end(), other.pwt_epoch_loss.begin(),
                        other.pwt_epoch_loss.end());
  eval_accuracy.insert(eval_accuracy.end(), other.eval_accuracy.begin(),
                       other.eval_accuracy.end());
}

rdo::obs::Json deploy_stats_json(const DeployStats& s) {
  rdo::obs::Json j = rdo::obs::Json::object();
  j["cycles"] = s.cycles;
  j["weights_programmed"] = s.weights_programmed;
  j["device_pulses"] = s.device_pulses;
  j["pwt_epochs"] = s.pwt_epochs;
  j["pwt_batches"] = s.pwt_batches;
  j["pwt_offset_updates"] = s.pwt_offset_updates;
  rdo::obs::Json losses = rdo::obs::Json::array();
  for (float l : s.pwt_epoch_loss) losses.push_back(static_cast<double>(l));
  j["pwt_epoch_loss"] = std::move(losses);
  rdo::obs::Json accs = rdo::obs::Json::array();
  for (float a : s.eval_accuracy) accs.push_back(static_cast<double>(a));
  j["eval_accuracy"] = std::move(accs);
  return j;
}

void add_deploy_phase_times(rdo::obs::Recorder& rec, const DeployStats& s) {
  rec.add_phase("deploy:lut_build", s.lut_build_s);
  rec.add_phase("deploy:prepare", s.prepare_s);
  rec.add_phase("deploy:vawo_solve", s.vawo_solve_s);
  rec.add_phase("deploy:program", s.program_s);
  rec.add_phase("deploy:tune", s.tune_s);
  rec.add_phase("deploy:evaluate", s.eval_s);
}

namespace {

/// Build the deployment LUT, timing the construction. When the
/// RDO_LUT_CACHE_DIR environment variable names a directory, tables are
/// cached there under their config fingerprint: a stale or corrupt
/// entry is rebuilt (never silently reused — see RLut::load), and the
/// file is written atomically (temp + rename) so concurrent deployments
/// sharing a cache directory only ever observe complete tables.
rdo::rram::RLut make_lut(const rdo::rram::WeightProgrammer& prog,
                         const DeployOptions& opt, DeployStats& stats) {
  rdo::obs::ScopedTimer timer(&stats.lut_build_s);
  rdo::obs::TraceSpan span("deploy:lut_build", "deploy");
  span.arg("k_sets", opt.lut_k_sets);
  span.arg("j_cycles", opt.lut_j_cycles);
  const rdo::nn::Rng lut_rng = rdo::nn::Rng(opt.seed).split(0x11A7);
  const char* dir = std::getenv("RDO_LUT_CACHE_DIR");
  std::string path;
  std::uint64_t fp = 0;
  if (dir != nullptr && dir[0] != '\0') {
    fp = rdo::rram::RLut::fingerprint(prog, opt.lut_k_sets,
                                      opt.lut_j_cycles, opt.seed);
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fp));
    path = std::string(dir) + "/rlut_" + hex + ".bin";
    rdo::rram::RLut cached;
    try {
      if (rdo::rram::RLut::load(path, fp, cached)) {
        span.arg("cache_hit", std::int64_t{1});
        return cached;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[deploy] corrupt LUT cache entry %s (%s); "
                   "rebuilding\n", path.c_str(), e.what());
    }
  }
  span.arg("cache_hit", std::int64_t{0});
  rdo::rram::RLut lut = rdo::rram::RLut::build(prog, opt.lut_k_sets,
                                               opt.lut_j_cycles, lut_rng);
  if (!path.empty()) {
    try {
      lut.save(path, fp);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[deploy] cannot cache LUT to %s: %s\n",
                   path.c_str(), e.what());
    }
  }
  return lut;
}

}  // namespace

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::Plain: return "plain";
    case Scheme::VAWO: return "VAWO";
    case Scheme::VAWOStar: return "VAWO*";
    case Scheme::PWT: return "PWT";
    case Scheme::VAWOStarPWT: return "VAWO*+PWT";
  }
  return "?";
}

Deployment::Deployment(rdo::nn::Layer& net, DeployOptions opt)
    : net_(net),
      opt_(opt),
      prog_(opt.cell, opt.weight_bits, opt.variation, opt.faults),
      lut_(make_lut(prog_, opt_, stats_)) {
  std::vector<rdo::nn::Layer*> all;
  collect_layers(&net_, all);
  for (rdo::nn::Layer* l : all) {
    if (auto* op = dynamic_cast<rdo::nn::MatrixOp*>(l)) {
      DeployedLayer dl;
      dl.op = op;
      layers_.push_back(std::move(dl));
    }
    if (auto* aq = dynamic_cast<rdo::quant::ActQuant*>(l)) {
      act_quants_.push_back(aq);
    }
  }
  if (layers_.empty()) {
    throw std::invalid_argument("Deployment: network has no crossbar layers");
  }
  // Snapshot float weights for restore().
  float_backup_.reserve(layers_.size());
  for (DeployedLayer& dl : layers_) {
    std::vector<float> w(static_cast<std::size_t>(dl.op->fan_in() *
                                                  dl.op->fan_out()));
    for (std::int64_t r = 0; r < dl.op->fan_in(); ++r) {
      for (std::int64_t c = 0; c < dl.op->fan_out(); ++c) {
        w[static_cast<std::size_t>(r * dl.op->fan_out() + c)] =
            dl.op->weight_at(r, c);
      }
    }
    float_backup_.push_back(std::move(w));
  }
}

Deployment::~Deployment() {
  try {
    restore();
  } catch (...) {
    // restore() only writes in-memory tensors; never throws in practice.
  }
}

void Deployment::calibrate_act_quant(const rdo::nn::DataView& data) {
  if (act_quants_.empty()) return;
  for (auto* aq : act_quants_) aq->disable();
  // Observe activation ranges on a few batches at the quantized-weight
  // operating point.
  const std::int64_t n = std::min<std::int64_t>(data.size(), 128);
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 0; i < n; ++i) idx.push_back(i);
  rdo::nn::Tensor batch = gather_batch(*data.images, idx);
  (void)net_.forward(batch, /*train=*/false);
  for (auto* aq : act_quants_) aq->calibrate(aq->observed_max());
}

void Deployment::prepare(const rdo::nn::DataView& train) {
  rdo::obs::ScopedTimer timer(&stats_.prepare_s);
  rdo::obs::TraceSpan span("deploy:prepare", "deploy");
  span.arg("layers", static_cast<std::int64_t>(layers_.size()));
  // 1. Quantize every crossbar layer and move the network to the
  //    quantized operating point (NTW round-trip).
  for (DeployedLayer& dl : layers_) {
    dl.lq = rdo::quant::quantize_matrix(*dl.op, opt_.weight_bits);
    rdo::quant::apply_quantized(*dl.op, dl.lq);
  }
  if (opt_.quantize_activations) calibrate_act_quant(train);

  // 2. Scheme-dependent CTW/offset assignment.
  if (scheme_uses_vawo(opt_.scheme)) {
    accumulate_mean_gradients(net_, train, opt_.grad_batch,
                              opt_.grad_samples);
    VawoOptions vopt;
    vopt.offsets = opt_.offsets;
    vopt.use_complement = scheme_uses_complement(opt_.scheme);
    vopt.penalize_bias = opt_.penalize_bias;
    rdo::obs::ScopedTimer solve_timer(&stats_.vawo_solve_s);
    rdo::obs::TraceSpan solve_span("deploy:vawo_solve", "deploy");
    for (std::size_t li = 0; li < layers_.size(); ++li) {
      DeployedLayer& dl = layers_[li];
      rdo::obs::TraceSpan layer_span("vawo:layer", "deploy");
      layer_span.arg("layer", static_cast<std::int64_t>(li));
      layer_span.arg("rows", dl.lq.rows);
      layer_span.arg("cols", dl.lq.cols);
      std::vector<double> grads(static_cast<std::size_t>(dl.lq.rows *
                                                         dl.lq.cols));
      for (std::int64_t r = 0; r < dl.lq.rows; ++r) {
        for (std::int64_t c = 0; c < dl.lq.cols; ++c) {
          grads[static_cast<std::size_t>(r * dl.lq.cols + c)] =
              dl.op->weight_grad_at(r, c);
        }
      }
      dl.assign = vawo_layer(dl.lq, grads, lut_, vopt);
      layer_span.arg("groups", dl.assign.groups_per_col);
    }
    for (rdo::nn::Param* p : net_.params()) p->zero_grad();
  } else {
    for (DeployedLayer& dl : layers_) {
      dl.assign = plain_layer(dl.lq, opt_.offsets.m);
    }
  }
  prepared_ = true;
}

void Deployment::program_cycle(std::uint64_t cycle_salt) {
  if (!prepared_) throw std::logic_error("Deployment: prepare() first");
  rdo::obs::ScopedTimer timer(&stats_.program_s);
  rdo::obs::TraceSpan span("deploy:program", "deploy");
  span.arg("cycle", static_cast<std::int64_t>(cycle_salt));
  rdo::nn::Rng rng =
      rdo::nn::Rng(opt_.seed).split(0xC0DEull + cycle_salt * 7919ull);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    DeployedLayer& dl = layers_[li];
    rdo::obs::TraceSpan layer_span("program:layer", "deploy");
    layer_span.arg("layer", static_cast<std::int64_t>(li));
    layer_span.arg("weights", static_cast<std::int64_t>(dl.assign.ctw.size()));
    rdo::nn::Rng lrng = rng.split(li);
    dl.crw.resize(dl.assign.ctw.size());
    for (std::size_t i = 0; i < dl.assign.ctw.size(); ++i) {
      dl.crw[i] = prog_.program(dl.assign.ctw[i], lrng);
    }
    stats_.weights_programmed +=
        static_cast<std::int64_t>(dl.assign.ctw.size());
    stats_.device_pulses += static_cast<std::int64_t>(dl.assign.ctw.size()) *
                            prog_.cells_per_weight();
    // Each cycle starts from the a-priori (VAWO or zero) offsets; PWT then
    // adapts them to this cycle's CRWs.
    dl.offsets = dl.assign.offsets;
  }
  ++stats_.cycles;
  rdo::obs::trace_counter("device_pulses", stats_.device_pulses);
  apply_effective_weights();
}

void Deployment::apply_effective_weights() {
  const float maxw = static_cast<float>(prog_.max_weight());
  for (DeployedLayer& dl : layers_) {
    const std::int64_t rows = dl.lq.rows, cols = dl.lq.cols;
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int64_t g = group_of_row(r, opt_.offsets.m);
      for (std::int64_t c = 0; c < cols; ++c) {
        const std::size_t gi = static_cast<std::size_t>(g * cols + c);
        const float b = dl.offsets[gi];
        const double v = dl.crw[static_cast<std::size_t>(r * cols + c)];
        const double nrw = dl.assign.complemented[gi]
                               ? static_cast<double>(maxw) - v - b
                               : v + b;
        dl.op->set_weight_at(r, c, dl.lq.dequant(static_cast<float>(nrw)));
      }
    }
  }
  weights_deployed_ = true;
}

void Deployment::apply_group_delta(DeployedLayer& dl, std::int64_t c,
                                   std::int64_t g, float delta_b) {
  const std::int64_t cols = dl.lq.cols;
  const std::size_t gi = static_cast<std::size_t>(g * cols + c);
  const float sign = dl.assign.complemented[gi] ? -1.0f : 1.0f;
  const float dw = sign * dl.lq.scale * delta_b;
  const std::int64_t r0 = g * opt_.offsets.m;
  const std::int64_t r1 =
      std::min<std::int64_t>(dl.lq.rows, r0 + opt_.offsets.m);
  for (std::int64_t r = r0; r < r1; ++r) {
    dl.op->set_weight_at(r, c, dl.op->weight_at(r, c) + dw);
  }
}

void Deployment::tune(const rdo::nn::DataView& train) {
  if (!scheme_uses_pwt(opt_.scheme)) return;
  rdo::obs::ScopedTimer timer(&stats_.tune_s);
  rdo::obs::TraceSpan span("deploy:tune", "deploy");
  const float lo = static_cast<float>(opt_.offsets.offset_min());
  const float hi = static_cast<float>(opt_.offsets.offset_max());
  if (opt_.pwt.mean_init) {
    // Closed-form warm start from the measured CRWs: the offset that
    // zeroes the mean NRW deviation of each group.
    const int maxw = prog_.max_weight();
    for (DeployedLayer& dl : layers_) {
      const std::int64_t rows = dl.lq.rows, cols = dl.lq.cols;
      for (std::int64_t c = 0; c < cols; ++c) {
        for (std::int64_t g = 0; g < dl.assign.groups_per_col; ++g) {
          const std::size_t gi = static_cast<std::size_t>(g * cols + c);
          const std::int64_t r0 = g * opt_.offsets.m;
          const std::int64_t r1 =
              std::min<std::int64_t>(rows, r0 + opt_.offsets.m);
          double acc = 0.0;
          for (std::int64_t r = r0; r < r1; ++r) {
            const int ntw = dl.lq.at(r, c);
            const double target =
                dl.assign.complemented[gi] ? maxw - ntw : ntw;
            acc += target - dl.crw[static_cast<std::size_t>(r * cols + c)];
          }
          dl.offsets[gi] = std::clamp(
              static_cast<float>(acc / static_cast<double>(r1 - r0)), lo,
              hi);
        }
      }
    }
    apply_effective_weights();
  }
  run_pwt(train);
  // Snap tuned offsets onto the signed offset-register grid and rebuild
  // the effective weights from scratch (removes incremental-update drift).
  for (DeployedLayer& dl : layers_) {
    for (float& b : dl.offsets) b = std::clamp(std::round(b), lo, hi);
  }
  apply_effective_weights();
}

float Deployment::evaluate(const rdo::nn::DataView& test,
                           std::int64_t batch) {
  if (!weights_deployed_) {
    throw std::logic_error("Deployment: program_cycle() first");
  }
  rdo::obs::ScopedTimer timer(&stats_.eval_s);
  rdo::obs::TraceSpan span("deploy:evaluate", "deploy");
  span.arg("batch", batch);
  rdo::obs::Stopwatch watch;
  const float acc = rdo::nn::evaluate(net_, test, batch).accuracy;
  stats_.eval_seconds.push_back(watch.seconds());
  span.arg("accuracy", static_cast<double>(acc));
  stats_.eval_accuracy.push_back(acc);
  return acc;
}

void Deployment::restore() {
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    DeployedLayer& dl = layers_[li];
    const std::vector<float>& w = float_backup_[li];
    for (std::int64_t r = 0; r < dl.op->fan_in(); ++r) {
      for (std::int64_t c = 0; c < dl.op->fan_out(); ++c) {
        dl.op->set_weight_at(
            r, c, w[static_cast<std::size_t>(r * dl.op->fan_out() + c)]);
      }
    }
  }
  for (auto* aq : act_quants_) aq->disable();
  weights_deployed_ = false;
}

double Deployment::read_power_of(const std::vector<int>& weights) const {
  double p = 0.0;
  for (int v : weights) {
    for (int s : prog_.slice(v)) p += opt_.cell.read_power(s);
  }
  return p;
}

double Deployment::assigned_read_power() const {
  double p = 0.0;
  for (const DeployedLayer& dl : layers_) p += read_power_of(dl.assign.ctw);
  return p;
}

double Deployment::plain_read_power() const {
  double p = 0.0;
  for (const DeployedLayer& dl : layers_) {
    p += read_power_of(dl.lq.q);
  }
  return p;
}

std::int64_t Deployment::total_crossbars(int xbar_rows, int xbar_cols) const {
  std::int64_t n = 0;
  for (const DeployedLayer& dl : layers_) {
    n += rdo::rram::compute_tiling(dl.op->fan_in(), dl.op->fan_out(),
                                   xbar_rows, xbar_cols,
                                   prog_.cells_per_weight())
             .total_crossbars();
  }
  return n;
}

std::int64_t Deployment::total_offset_registers() const {
  std::int64_t n = 0;
  for (const DeployedLayer& dl : layers_) {
    n += groups_per_column(dl.op->fan_in(), opt_.offsets.m) *
         dl.op->fan_out();
  }
  return n;
}

SchemeResult run_scheme(rdo::nn::Layer& net, const DeployOptions& opt,
                        const rdo::nn::DataView& train,
                        const rdo::nn::DataView& test, int repeats,
                        std::int64_t eval_batch) {
  Deployment dep(net, opt);
  dep.prepare(train);
  SchemeResult res;
  double total = 0.0;
  for (int cycle = 0; cycle < repeats; ++cycle) {
    rdo::obs::Stopwatch watch;
    dep.program_cycle(static_cast<std::uint64_t>(cycle));
    dep.tune(train);
    const float acc = dep.evaluate(test, eval_batch);
    res.per_cycle.push_back(acc);
    res.trial_seconds.push_back(watch.seconds());
    total += acc;
  }
  dep.restore();
  res.mean_accuracy =
      static_cast<float>(total / std::max(1, repeats));
  res.stats = dep.stats();
  res.errors.assign(static_cast<std::size_t>(std::max(0, repeats)), "");
  return res;
}

SchemeResult run_scheme_parallel(
    const std::function<std::unique_ptr<rdo::nn::Layer>()>& make_net,
    const DeployOptions& opt, const rdo::nn::DataView& train,
    const rdo::nn::DataView& test, int repeats, std::int64_t eval_batch) {
  SchemeResult res;
  if (repeats <= 0) return res;
  res.per_cycle.assign(static_cast<std::size_t>(repeats), 0.0f);
  res.trial_seconds.assign(static_cast<std::size_t>(repeats), 0.0);
  res.errors.assign(static_cast<std::size_t>(repeats), "");
  std::vector<DeployStats> trial_stats(static_cast<std::size_t>(repeats));
  rdo::nn::parallel_for(repeats, [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t trial = t0; trial < t1; ++trial) {
      rdo::obs::Stopwatch watch;
      std::unique_ptr<rdo::nn::Layer> net = make_net();
      Deployment dep(*net, opt);
      dep.prepare(train);
      dep.program_cycle(static_cast<std::uint64_t>(trial));
      dep.tune(train);
      res.per_cycle[static_cast<std::size_t>(trial)] =
          dep.evaluate(test, eval_batch);
      trial_stats[static_cast<std::size_t>(trial)] = dep.stats();
      res.trial_seconds[static_cast<std::size_t>(trial)] = watch.seconds();
    }
  });
  // Merge in trial order so the aggregated traces are identical to the
  // serial run for any thread count.
  for (const DeployStats& s : trial_stats) res.stats.merge(s);
  double total = 0.0;
  for (float a : res.per_cycle) total += a;
  res.mean_accuracy = static_cast<float>(total / repeats);
  return res;
}

}  // namespace rdo::core
