#include "core/deploy.h"

#include <algorithm>
#include <cctype>

#include "core/backend.h"
#include "core/plan.h"
#include "nn/parallel.h"
#include "obs/stopwatch.h"

namespace rdo::core {

void DeployStats::merge(const DeployStats& other) {
  lut_build_s += other.lut_build_s;
  prepare_s += other.prepare_s;
  vawo_solve_s += other.vawo_solve_s;
  program_s += other.program_s;
  tune_s += other.tune_s;
  eval_s += other.eval_s;
  eval_seconds.insert(eval_seconds.end(), other.eval_seconds.begin(),
                      other.eval_seconds.end());
  lut_cache_hits += other.lut_cache_hits;
  lut_cache_misses += other.lut_cache_misses;
  lut_cache_save_failures += other.lut_cache_save_failures;
  plan_cache_hits += other.plan_cache_hits;
  plan_cache_misses += other.plan_cache_misses;
  plan_cache_save_failures += other.plan_cache_save_failures;
  cycles += other.cycles;
  weights_programmed += other.weights_programmed;
  device_pulses += other.device_pulses;
  pwt_epochs += other.pwt_epochs;
  pwt_batches += other.pwt_batches;
  pwt_offset_updates += other.pwt_offset_updates;
  pwt_epoch_loss.insert(pwt_epoch_loss.end(), other.pwt_epoch_loss.begin(),
                        other.pwt_epoch_loss.end());
  eval_accuracy.insert(eval_accuracy.end(), other.eval_accuracy.begin(),
                       other.eval_accuracy.end());
}

rdo::obs::Json deploy_stats_json(const DeployStats& s) {
  rdo::obs::Json j = rdo::obs::Json::object();
  j["cycles"] = s.cycles;
  j["weights_programmed"] = s.weights_programmed;
  j["device_pulses"] = s.device_pulses;
  j["pwt_epochs"] = s.pwt_epochs;
  j["pwt_batches"] = s.pwt_batches;
  j["pwt_offset_updates"] = s.pwt_offset_updates;
  rdo::obs::Json losses = rdo::obs::Json::array();
  for (float l : s.pwt_epoch_loss) losses.push_back(static_cast<double>(l));
  j["pwt_epoch_loss"] = std::move(losses);
  rdo::obs::Json accs = rdo::obs::Json::array();
  for (float a : s.eval_accuracy) accs.push_back(static_cast<double>(a));
  j["eval_accuracy"] = std::move(accs);
  return j;
}

void add_deploy_phase_times(rdo::obs::Recorder& rec, const DeployStats& s) {
  rec.add_phase("deploy:lut_build", s.lut_build_s);
  rec.add_phase("deploy:prepare", s.prepare_s);
  rec.add_phase("deploy:vawo_solve", s.vawo_solve_s);
  rec.add_phase("deploy:program", s.program_s);
  rec.add_phase("deploy:tune", s.tune_s);
  rec.add_phase("deploy:evaluate", s.eval_s);
}

void add_deploy_cache_counters(rdo::obs::Recorder& rec,
                               const DeployStats& s) {
  if (s.lut_cache_hits == 0 && s.lut_cache_misses == 0 &&
      s.lut_cache_save_failures == 0 && s.plan_cache_hits == 0 &&
      s.plan_cache_misses == 0 && s.plan_cache_save_failures == 0) {
    return;  // no cache configured: keep baseline counter sets unchanged
  }
  rec.incr("lut_cache_hits", s.lut_cache_hits);
  rec.incr("lut_cache_misses", s.lut_cache_misses);
  rec.incr("lut_cache_save_failures", s.lut_cache_save_failures);
  rec.incr("plan_cache_hits", s.plan_cache_hits);
  rec.incr("plan_cache_misses", s.plan_cache_misses);
  rec.incr("plan_cache_save_failures", s.plan_cache_save_failures);
}

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::Plain: return "plain";
    case Scheme::VAWO: return "VAWO";
    case Scheme::VAWOStar: return "VAWO*";
    case Scheme::PWT: return "PWT";
    case Scheme::VAWOStarPWT: return "VAWO*+PWT";
  }
  return "?";
}

std::optional<Scheme> parse_scheme(std::string_view s) {
  std::string low(s);
  std::transform(low.begin(), low.end(), low.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (low == "plain") return Scheme::Plain;
  if (low == "vawo") return Scheme::VAWO;
  if (low == "vawo*") return Scheme::VAWOStar;
  if (low == "pwt") return Scheme::PWT;
  if (low == "vawo*+pwt") return Scheme::VAWOStarPWT;
  return std::nullopt;
}

SchemeResult run_scheme(const rdo::nn::Layer& net, const DeployOptions& opt,
                        const rdo::nn::DataView& train,
                        const rdo::nn::DataView& test, int repeats,
                        std::int64_t eval_batch) {
  const DeploymentPlan plan = compile_plan(net, opt, train);
  EffectiveWeightBackend backend(plan, net);
  SchemeResult res;
  double total = 0.0;
  for (int cycle = 0; cycle < repeats; ++cycle) {
    rdo::obs::Stopwatch watch;
    backend.program_cycle(static_cast<std::uint64_t>(cycle));
    backend.tune(train);
    const float acc = backend.evaluate(test, eval_batch);
    res.per_cycle.push_back(acc);
    res.trial_seconds.push_back(watch.seconds());
    total += acc;
  }
  res.mean_accuracy =
      static_cast<float>(total / std::max(1, repeats));
  res.stats = plan.compile_stats;
  res.stats.merge(backend.stats());
  res.errors.assign(static_cast<std::size_t>(std::max(0, repeats)), "");
  return res;
}

SchemeResult run_scheme_parallel(const rdo::nn::Layer& net,
                                 const DeployOptions& opt,
                                 const rdo::nn::DataView& train,
                                 const rdo::nn::DataView& test, int repeats,
                                 std::int64_t eval_batch) {
  SchemeResult res;
  if (repeats <= 0) return res;
  // Compile once; the plan is read-only afterwards and shared by every
  // trial's backend.
  const DeploymentPlan plan = compile_plan(net, opt, train);
  res.per_cycle.assign(static_cast<std::size_t>(repeats), 0.0f);
  res.trial_seconds.assign(static_cast<std::size_t>(repeats), 0.0);
  res.errors.assign(static_cast<std::size_t>(repeats), "");
  std::vector<DeployStats> trial_stats(static_cast<std::size_t>(repeats));
  rdo::nn::parallel_for(repeats, [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t trial = t0; trial < t1; ++trial) {
      rdo::obs::Stopwatch watch;
      EffectiveWeightBackend backend(plan, net);
      backend.program_cycle(static_cast<std::uint64_t>(trial));
      backend.tune(train);
      res.per_cycle[static_cast<std::size_t>(trial)] =
          backend.evaluate(test, eval_batch);
      trial_stats[static_cast<std::size_t>(trial)] = backend.stats();
      res.trial_seconds[static_cast<std::size_t>(trial)] = watch.seconds();
    }
  });
  // Merge in trial order so the aggregated traces are identical to the
  // serial run for any thread count.
  res.stats = plan.compile_stats;
  for (const DeployStats& s : trial_stats) res.stats.merge(s);
  double total = 0.0;
  for (float a : res.per_cycle) total += a;
  res.mean_accuracy = static_cast<float>(total / repeats);
  return res;
}

}  // namespace rdo::core
