#include "core/deploy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/parallel.h"
#include "rram/tiler.h"

namespace rdo::core {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::Plain: return "plain";
    case Scheme::VAWO: return "VAWO";
    case Scheme::VAWOStar: return "VAWO*";
    case Scheme::PWT: return "PWT";
    case Scheme::VAWOStarPWT: return "VAWO*+PWT";
  }
  return "?";
}

Deployment::Deployment(rdo::nn::Layer& net, DeployOptions opt)
    : net_(net),
      opt_(opt),
      prog_(opt.cell, opt.weight_bits, opt.variation, opt.faults),
      lut_(rdo::rram::RLut::build(prog_, opt.lut_k_sets, opt.lut_j_cycles,
                                  rdo::nn::Rng(opt.seed).split(0x11A7))) {
  std::vector<rdo::nn::Layer*> all;
  collect_layers(&net_, all);
  for (rdo::nn::Layer* l : all) {
    if (auto* op = dynamic_cast<rdo::nn::MatrixOp*>(l)) {
      DeployedLayer dl;
      dl.op = op;
      layers_.push_back(std::move(dl));
    }
    if (auto* aq = dynamic_cast<rdo::quant::ActQuant*>(l)) {
      act_quants_.push_back(aq);
    }
  }
  if (layers_.empty()) {
    throw std::invalid_argument("Deployment: network has no crossbar layers");
  }
  // Snapshot float weights for restore().
  float_backup_.reserve(layers_.size());
  for (DeployedLayer& dl : layers_) {
    std::vector<float> w(static_cast<std::size_t>(dl.op->fan_in() *
                                                  dl.op->fan_out()));
    for (std::int64_t r = 0; r < dl.op->fan_in(); ++r) {
      for (std::int64_t c = 0; c < dl.op->fan_out(); ++c) {
        w[static_cast<std::size_t>(r * dl.op->fan_out() + c)] =
            dl.op->weight_at(r, c);
      }
    }
    float_backup_.push_back(std::move(w));
  }
}

Deployment::~Deployment() {
  try {
    restore();
  } catch (...) {
    // restore() only writes in-memory tensors; never throws in practice.
  }
}

void Deployment::calibrate_act_quant(const rdo::nn::DataView& data) {
  if (act_quants_.empty()) return;
  for (auto* aq : act_quants_) aq->disable();
  // Observe activation ranges on a few batches at the quantized-weight
  // operating point.
  const std::int64_t n = std::min<std::int64_t>(data.size(), 128);
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 0; i < n; ++i) idx.push_back(i);
  rdo::nn::Tensor batch = gather_batch(*data.images, idx);
  (void)net_.forward(batch, /*train=*/false);
  for (auto* aq : act_quants_) aq->calibrate(aq->observed_max());
}

void Deployment::prepare(const rdo::nn::DataView& train) {
  // 1. Quantize every crossbar layer and move the network to the
  //    quantized operating point (NTW round-trip).
  for (DeployedLayer& dl : layers_) {
    dl.lq = rdo::quant::quantize_matrix(*dl.op, opt_.weight_bits);
    rdo::quant::apply_quantized(*dl.op, dl.lq);
  }
  if (opt_.quantize_activations) calibrate_act_quant(train);

  // 2. Scheme-dependent CTW/offset assignment.
  if (scheme_uses_vawo(opt_.scheme)) {
    accumulate_mean_gradients(net_, train, opt_.grad_batch,
                              opt_.grad_samples);
    VawoOptions vopt;
    vopt.offsets = opt_.offsets;
    vopt.use_complement = scheme_uses_complement(opt_.scheme);
    vopt.penalize_bias = opt_.penalize_bias;
    for (DeployedLayer& dl : layers_) {
      std::vector<double> grads(static_cast<std::size_t>(dl.lq.rows *
                                                         dl.lq.cols));
      for (std::int64_t r = 0; r < dl.lq.rows; ++r) {
        for (std::int64_t c = 0; c < dl.lq.cols; ++c) {
          grads[static_cast<std::size_t>(r * dl.lq.cols + c)] =
              dl.op->weight_grad_at(r, c);
        }
      }
      dl.assign = vawo_layer(dl.lq, grads, lut_, vopt);
    }
    for (rdo::nn::Param* p : net_.params()) p->zero_grad();
  } else {
    for (DeployedLayer& dl : layers_) {
      dl.assign = plain_layer(dl.lq, opt_.offsets.m);
    }
  }
  prepared_ = true;
}

void Deployment::program_cycle(std::uint64_t cycle_salt) {
  if (!prepared_) throw std::logic_error("Deployment: prepare() first");
  rdo::nn::Rng rng =
      rdo::nn::Rng(opt_.seed).split(0xC0DEull + cycle_salt * 7919ull);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    DeployedLayer& dl = layers_[li];
    rdo::nn::Rng lrng = rng.split(li);
    dl.crw.resize(dl.assign.ctw.size());
    for (std::size_t i = 0; i < dl.assign.ctw.size(); ++i) {
      dl.crw[i] = prog_.program(dl.assign.ctw[i], lrng);
    }
    // Each cycle starts from the a-priori (VAWO or zero) offsets; PWT then
    // adapts them to this cycle's CRWs.
    dl.offsets = dl.assign.offsets;
  }
  apply_effective_weights();
}

void Deployment::apply_effective_weights() {
  const float maxw = static_cast<float>(prog_.max_weight());
  for (DeployedLayer& dl : layers_) {
    const std::int64_t rows = dl.lq.rows, cols = dl.lq.cols;
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int64_t g = group_of_row(r, opt_.offsets.m);
      for (std::int64_t c = 0; c < cols; ++c) {
        const std::size_t gi = static_cast<std::size_t>(g * cols + c);
        const float b = dl.offsets[gi];
        const double v = dl.crw[static_cast<std::size_t>(r * cols + c)];
        const double nrw = dl.assign.complemented[gi]
                               ? static_cast<double>(maxw) - v - b
                               : v + b;
        dl.op->set_weight_at(r, c, dl.lq.dequant(static_cast<float>(nrw)));
      }
    }
  }
  weights_deployed_ = true;
}

void Deployment::apply_group_delta(DeployedLayer& dl, std::int64_t c,
                                   std::int64_t g, float delta_b) {
  const std::int64_t cols = dl.lq.cols;
  const std::size_t gi = static_cast<std::size_t>(g * cols + c);
  const float sign = dl.assign.complemented[gi] ? -1.0f : 1.0f;
  const float dw = sign * dl.lq.scale * delta_b;
  const std::int64_t r0 = g * opt_.offsets.m;
  const std::int64_t r1 =
      std::min<std::int64_t>(dl.lq.rows, r0 + opt_.offsets.m);
  for (std::int64_t r = r0; r < r1; ++r) {
    dl.op->set_weight_at(r, c, dl.op->weight_at(r, c) + dw);
  }
}

void Deployment::tune(const rdo::nn::DataView& train) {
  if (!scheme_uses_pwt(opt_.scheme)) return;
  const float lo = static_cast<float>(opt_.offsets.offset_min());
  const float hi = static_cast<float>(opt_.offsets.offset_max());
  if (opt_.pwt.mean_init) {
    // Closed-form warm start from the measured CRWs: the offset that
    // zeroes the mean NRW deviation of each group.
    const int maxw = prog_.max_weight();
    for (DeployedLayer& dl : layers_) {
      const std::int64_t rows = dl.lq.rows, cols = dl.lq.cols;
      for (std::int64_t c = 0; c < cols; ++c) {
        for (std::int64_t g = 0; g < dl.assign.groups_per_col; ++g) {
          const std::size_t gi = static_cast<std::size_t>(g * cols + c);
          const std::int64_t r0 = g * opt_.offsets.m;
          const std::int64_t r1 =
              std::min<std::int64_t>(rows, r0 + opt_.offsets.m);
          double acc = 0.0;
          for (std::int64_t r = r0; r < r1; ++r) {
            const int ntw = dl.lq.at(r, c);
            const double target =
                dl.assign.complemented[gi] ? maxw - ntw : ntw;
            acc += target - dl.crw[static_cast<std::size_t>(r * cols + c)];
          }
          dl.offsets[gi] = std::clamp(
              static_cast<float>(acc / static_cast<double>(r1 - r0)), lo,
              hi);
        }
      }
    }
    apply_effective_weights();
  }
  run_pwt(train);
  // Snap tuned offsets onto the signed offset-register grid and rebuild
  // the effective weights from scratch (removes incremental-update drift).
  for (DeployedLayer& dl : layers_) {
    for (float& b : dl.offsets) b = std::clamp(std::round(b), lo, hi);
  }
  apply_effective_weights();
}

float Deployment::evaluate(const rdo::nn::DataView& test,
                           std::int64_t batch) {
  if (!weights_deployed_) {
    throw std::logic_error("Deployment: program_cycle() first");
  }
  return rdo::nn::evaluate(net_, test, batch).accuracy;
}

void Deployment::restore() {
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    DeployedLayer& dl = layers_[li];
    const std::vector<float>& w = float_backup_[li];
    for (std::int64_t r = 0; r < dl.op->fan_in(); ++r) {
      for (std::int64_t c = 0; c < dl.op->fan_out(); ++c) {
        dl.op->set_weight_at(
            r, c, w[static_cast<std::size_t>(r * dl.op->fan_out() + c)]);
      }
    }
  }
  for (auto* aq : act_quants_) aq->disable();
  weights_deployed_ = false;
}

double Deployment::read_power_of(const std::vector<int>& weights) const {
  double p = 0.0;
  for (int v : weights) {
    for (int s : prog_.slice(v)) p += opt_.cell.read_power(s);
  }
  return p;
}

double Deployment::assigned_read_power() const {
  double p = 0.0;
  for (const DeployedLayer& dl : layers_) p += read_power_of(dl.assign.ctw);
  return p;
}

double Deployment::plain_read_power() const {
  double p = 0.0;
  for (const DeployedLayer& dl : layers_) {
    p += read_power_of(dl.lq.q);
  }
  return p;
}

std::int64_t Deployment::total_crossbars(int xbar_rows, int xbar_cols) const {
  std::int64_t n = 0;
  for (const DeployedLayer& dl : layers_) {
    n += rdo::rram::compute_tiling(dl.op->fan_in(), dl.op->fan_out(),
                                   xbar_rows, xbar_cols,
                                   prog_.cells_per_weight())
             .total_crossbars();
  }
  return n;
}

std::int64_t Deployment::total_offset_registers() const {
  std::int64_t n = 0;
  for (const DeployedLayer& dl : layers_) {
    n += groups_per_column(dl.op->fan_in(), opt_.offsets.m) *
         dl.op->fan_out();
  }
  return n;
}

SchemeResult run_scheme(rdo::nn::Layer& net, const DeployOptions& opt,
                        const rdo::nn::DataView& train,
                        const rdo::nn::DataView& test, int repeats,
                        std::int64_t eval_batch) {
  Deployment dep(net, opt);
  dep.prepare(train);
  SchemeResult res;
  double total = 0.0;
  for (int cycle = 0; cycle < repeats; ++cycle) {
    dep.program_cycle(static_cast<std::uint64_t>(cycle));
    dep.tune(train);
    const float acc = dep.evaluate(test, eval_batch);
    res.per_cycle.push_back(acc);
    total += acc;
  }
  dep.restore();
  res.mean_accuracy =
      static_cast<float>(total / std::max(1, repeats));
  return res;
}

SchemeResult run_scheme_parallel(
    const std::function<std::unique_ptr<rdo::nn::Layer>()>& make_net,
    const DeployOptions& opt, const rdo::nn::DataView& train,
    const rdo::nn::DataView& test, int repeats, std::int64_t eval_batch) {
  SchemeResult res;
  if (repeats <= 0) return res;
  res.per_cycle.assign(static_cast<std::size_t>(repeats), 0.0f);
  rdo::nn::parallel_for(repeats, [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t trial = t0; trial < t1; ++trial) {
      std::unique_ptr<rdo::nn::Layer> net = make_net();
      Deployment dep(*net, opt);
      dep.prepare(train);
      dep.program_cycle(static_cast<std::uint64_t>(trial));
      dep.tune(train);
      res.per_cycle[static_cast<std::size_t>(trial)] =
          dep.evaluate(test, eval_batch);
    }
  });
  double total = 0.0;
  for (float a : res.per_cycle) total += a;
  res.mean_accuracy = static_cast<float>(total / repeats);
  return res;
}

}  // namespace rdo::core
