// Optimizer pass pipeline over a compiled DeploymentPlan.
//
// All four shipped passes are conservative: they only rewrite a plan
// when the result is provably equivalent at execution time (identical
// effective weights for the same programming draws), so enabling them
// can shrink the Table II offset-register account and the programming
// pulse count but never perturb eval accuracy of non-PWT schemes.
// Passes that would interfere with post-writing tuning skip PWT schemes
// entirely (see core/opt/pass.h).
#include "core/opt/pipeline.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/check.h"
#include "core/opt/pass.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rdo::core::opt {

namespace {

/// Group sizes stay within one 128-row crossbar: row-blocks of m never
/// straddle an array boundary, and any divisibility the seed m satisfied
/// (active wordlines, crossbar rows) is preserved by doubling below it.
constexpr int kMaxGroupSize = 128;

/// Eq. 9 geometric register count of one layer at its current m.
std::int64_t geometric_registers(const PlanLayer& pl) {
  return groups_per_column(pl.lq.rows, pl.m) * pl.lq.cols;
}

/// Structural consistency every pass must preserve; run_pipeline checks
/// it after each transform in addition to the pass's own invariant.
void check_layer_geometry(const DeploymentPlan& plan) {
  for (const PlanLayer& pl : plan.layers) {
    RDO_CHECK(pl.m >= 1, "opt: layer group size m < 1");
    RDO_CHECK(pl.assign.groups_per_col ==
                  groups_per_column(pl.lq.rows, pl.m),
              "opt: group count does not match the layer's m");
    const auto per_group = static_cast<std::size_t>(
        pl.assign.groups_per_col * pl.lq.cols);
    RDO_CHECK(pl.assign.offsets.size() == per_group &&
                  pl.assign.complemented.size() == per_group,
              "opt: offset vectors do not match the layer geometry");
    RDO_CHECK(pl.offset_registers >= 1 &&
                  pl.offset_registers <= geometric_registers(pl),
              "opt: register count outside [1, Eq. 9 count]");
    RDO_CHECK(pl.dead_cols.empty() ||
                  pl.dead_cols.size() ==
                      static_cast<std::size_t>(pl.lq.cols),
              "opt: dead-column mask does not match the column count");
  }
}

/// True when every merged sibling pair of groups (old size pl.m, new
/// size m2 = 2*pl.m) agrees on (offset, complement) in every column —
/// the cheap structural filter before the cost-table re-solve.
bool siblings_agree(const PlanLayer& pl, int m2) {
  const std::int64_t cols = pl.lq.cols;
  const std::int64_t old_groups = pl.assign.groups_per_col;
  const std::int64_t new_groups = groups_per_column(pl.lq.rows, m2);
  for (std::int64_t g2 = 0; g2 < new_groups; ++g2) {
    const std::int64_t first = g2 * 2;
    for (std::int64_t g = first + 1; g < std::min(old_groups, first + 2);
         ++g) {
      for (std::int64_t c = 0; c < cols; ++c) {
        const auto a = static_cast<std::size_t>(first * cols + c);
        const auto b = static_cast<std::size_t>(g * cols + c);
        if (pl.assign.offsets[a] != pl.assign.offsets[b] ||
            pl.assign.complemented[a] != pl.assign.complemented[b]) {
          return false;
        }
      }
    }
  }
  return true;
}

/// True when `cand` (solved at group size m2) expands to exactly the
/// per-row assignment of `pl.assign` (solved at pl.m): same CTWs and,
/// for every (row, column), the same offset and complement flag. This
/// is the bit-equivalence proof that makes a tuned m safe: both plans
/// program identical devices and fold identical effective weights.
bool expansion_matches(const PlanLayer& pl, const VawoResult& cand,
                       int m2) {
  if (cand.ctw != pl.assign.ctw) return false;
  const std::int64_t cols = pl.lq.cols;
  for (std::int64_t r = 0; r < pl.lq.rows; ++r) {
    const std::int64_t g_old = group_of_row(r, pl.m);
    const std::int64_t g_new = group_of_row(r, m2);
    for (std::int64_t c = 0; c < cols; ++c) {
      const auto a = static_cast<std::size_t>(g_old * cols + c);
      const auto b = static_cast<std::size_t>(g_new * cols + c);
      if (pl.assign.offsets[a] != cand.offsets[b] ||
          pl.assign.complemented[a] != cand.complemented[b]) {
        return false;
      }
    }
  }
  return true;
}

/// Re-impose dead-column canonical form on a freshly re-solved layer
/// (used by passes that re-run the solver after eliminate_dead_tiles).
void rezero_dead_columns(const PlanLayer& pl, VawoResult& res) {
  if (pl.dead_cols.empty()) return;
  const std::int64_t cols = pl.lq.cols;
  for (std::int64_t c = 0; c < cols; ++c) {
    if (pl.dead_cols[static_cast<std::size_t>(c)] == 0) continue;
    for (std::int64_t r = 0; r < pl.lq.rows; ++r) {
      res.ctw[static_cast<std::size_t>(r * cols + c)] = pl.lq.zero;
    }
    for (std::int64_t g = 0; g < res.groups_per_col; ++g) {
      res.offsets[static_cast<std::size_t>(g * cols + c)] = 0.0f;
      res.complemented[static_cast<std::size_t>(g * cols + c)] = 0;
    }
  }
}

/// Pass 1: per-layer offset-group size auto-tuning.
///
/// Doubles a layer's m while the merged assignment is provably
/// bit-equivalent: sibling groups must already agree on (offset,
/// complement), and for VAWO schemes the layer is re-solved at the
/// candidate m against the shared VawoTable — the doubled m is adopted
/// only when the re-solve reproduces the expanded assignment exactly
/// (the solver's strict first-found tie-breaking makes this
/// deterministic). Registers shrink by Eq. 9; effective weights, device
/// draws and therefore eval accuracy are unchanged.
class TuneGroupSize final : public Pass {
 public:
  [[nodiscard]] const char* name() const override {
    return "tune_group_size";
  }

  void run(DeploymentPlan& plan) const override {
    if (scheme_uses_pwt(plan.opt.scheme)) return;
    const bool vawo = scheme_uses_vawo(plan.opt.scheme);
    VawoTable table;
    bool have_table = false;
    std::int64_t layers_tuned = 0;
    for (PlanLayer& pl : plan.layers) {
      const int m_before = pl.m;
      const auto elems =
          static_cast<std::size_t>(pl.lq.rows * pl.lq.cols);
      while (pl.m <= kMaxGroupSize / 2) {
        const int m2 = pl.m * 2;
        if (!siblings_agree(pl, m2)) break;
        VawoResult cand;
        if (vawo) {
          if (pl.mean_grads.size() != elems) break;
          if (!have_table) {
            table = VawoTable::build(plan.lut,
                                     (1 << plan.opt.weight_bits) - 1,
                                     plan.opt.offsets,
                                     plan.opt.penalize_bias);
            have_table = true;
          }
          VawoOptions vopt;
          vopt.offsets = plan.opt.offsets;
          vopt.offsets.m = m2;
          vopt.use_complement = scheme_uses_complement(plan.opt.scheme);
          vopt.penalize_bias = plan.opt.penalize_bias;
          cand = vawo_layer(pl.lq, pl.mean_grads, plan.lut, vopt, &table);
          rezero_dead_columns(pl, cand);
        } else {
          cand = plain_layer(pl.lq, m2);
          rezero_dead_columns(pl, cand);
          if (cand.ctw != pl.assign.ctw) break;
        }
        if (!expansion_matches(pl, cand, m2)) break;
        pl.assign = std::move(cand);
        pl.m = m2;
        pl.offset_registers =
            std::min(pl.offset_registers, geometric_registers(pl));
      }
      if (pl.m != m_before) ++layers_tuned;
    }
    rdo::obs::global_metrics()
        .counter("opt_group_size_layers_tuned")
        .add(layers_tuned);
  }

  void check(const DeploymentPlan& plan) const override {
    for (const PlanLayer& pl : plan.layers) {
      RDO_CHECK(pl.m >= plan.opt.offsets.m &&
                    pl.m % plan.opt.offsets.m == 0,
                "tune_group_size: layer m is not a multiple of the "
                "configured m");
      RDO_CHECK(pl.m <= std::max(kMaxGroupSize, plan.opt.offsets.m),
                "tune_group_size: layer m exceeds the crossbar row count");
    }
  }
};

/// Pass 2: offset-register coloring/sharing across tiles.
///
/// Accounting-only: groups whose registers would hold the identical
/// (offset value, complement flag) pair can share one physical register
/// across the layer's tiles, so the layer's register count drops to the
/// number of distinct pairs. The assignment itself is untouched.
class ColorOffsetRegisters final : public Pass {
 public:
  [[nodiscard]] const char* name() const override {
    return "color_offset_registers";
  }

  static std::int64_t distinct_registers(const PlanLayer& pl) {
    std::vector<std::uint64_t> keys;
    keys.reserve(pl.assign.offsets.size());
    for (std::size_t i = 0; i < pl.assign.offsets.size(); ++i) {
      std::uint32_t bits = 0;
      std::memcpy(&bits, &pl.assign.offsets[i], sizeof(bits));
      keys.push_back((static_cast<std::uint64_t>(bits) << 1) |
                     pl.assign.complemented[i]);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return static_cast<std::int64_t>(keys.size());
  }

  void run(DeploymentPlan& plan) const override {
    if (scheme_uses_pwt(plan.opt.scheme)) return;
    std::int64_t saved = 0;
    for (PlanLayer& pl : plan.layers) {
      const std::int64_t colored =
          std::min(pl.offset_registers, distinct_registers(pl));
      saved += pl.offset_registers - colored;
      pl.offset_registers = colored;
    }
    rdo::obs::global_metrics()
        .counter("opt_registers_colored_away")
        .add(saved);
  }

  void check(const DeploymentPlan& plan) const override {
    if (scheme_uses_pwt(plan.opt.scheme)) return;
    for (const PlanLayer& pl : plan.layers) {
      RDO_CHECK(pl.offset_registers <= distinct_registers(pl),
                "color_offset_registers: register count exceeds the "
                "distinct (offset, complement) values");
    }
  }
};

/// Pass 3: dead-tile elimination.
///
/// A column whose every NTW quantized to the zero point carries no
/// signal: its canonical deployment is "never programmed, reads back
/// exactly 0". The pass records the mask and rewrites the column to the
/// canonical form (CTW = zero point, offset 0, direct form); backends
/// skip the programming pulses for masked columns while preserving the
/// RNG draw stream of every live weight.
class EliminateDeadTiles final : public Pass {
 public:
  [[nodiscard]] const char* name() const override {
    return "eliminate_dead_tiles";
  }

  void run(DeploymentPlan& plan) const override {
    if (scheme_uses_pwt(plan.opt.scheme)) return;
    std::int64_t dead_columns = 0;
    for (PlanLayer& pl : plan.layers) {
      const std::int64_t rows = pl.lq.rows, cols = pl.lq.cols;
      std::vector<std::uint8_t> dead(static_cast<std::size_t>(cols), 0);
      std::int64_t n_dead = 0;
      for (std::int64_t c = 0; c < cols; ++c) {
        bool all_zero = true;
        for (std::int64_t r = 0; r < rows && all_zero; ++r) {
          all_zero = pl.lq.q[static_cast<std::size_t>(r * cols + c)] ==
                     pl.lq.zero;
        }
        if (all_zero) {
          dead[static_cast<std::size_t>(c)] = 1;
          ++n_dead;
        }
      }
      if (n_dead == 0) continue;
      pl.dead_cols = std::move(dead);
      VawoResult& a = pl.assign;
      rezero_dead_columns(pl, a);
      dead_columns += n_dead;
    }
    rdo::obs::global_metrics()
        .counter("opt_dead_columns_eliminated")
        .add(dead_columns);
  }

  void check(const DeploymentPlan& plan) const override {
    for (const PlanLayer& pl : plan.layers) {
      if (pl.dead_cols.empty()) continue;
      const std::int64_t rows = pl.lq.rows, cols = pl.lq.cols;
      for (std::int64_t c = 0; c < cols; ++c) {
        if (pl.dead_cols[static_cast<std::size_t>(c)] == 0) continue;
        for (std::int64_t r = 0; r < rows; ++r) {
          const auto i = static_cast<std::size_t>(r * cols + c);
          RDO_CHECK(pl.lq.q[i] == pl.lq.zero &&
                        pl.assign.ctw[i] == pl.lq.zero,
                    "eliminate_dead_tiles: masked column is not all-zero");
        }
        for (std::int64_t g = 0; g < pl.assign.groups_per_col; ++g) {
          const auto gi = static_cast<std::size_t>(g * cols + c);
          RDO_CHECK(pl.assign.offsets[gi] == 0.0f &&
                        pl.assign.complemented[gi] == 0,
                    "eliminate_dead_tiles: masked column carries an "
                    "offset or complement flag");
        }
      }
    }
  }
};

/// Pass 4: complement-form canonicalization.
///
/// Re-solves every VAWO* layer against the shared cost table, which by
/// the solver's enumeration order (direct form first, strict-< winner)
/// keeps a complement flag only where the mirrored form is strictly
/// better. On a solver-produced plan this is the identity; on a plan
/// whose flags were perturbed (or merged by other tooling) it restores
/// the canonical assignment.
class CanonicalizeComplement final : public Pass {
 public:
  [[nodiscard]] const char* name() const override {
    return "canonicalize_complement";
  }

  void run(DeploymentPlan& plan) const override {
    if (!scheme_uses_complement(plan.opt.scheme) ||
        scheme_uses_pwt(plan.opt.scheme)) {
      return;
    }
    VawoTable table = VawoTable::build(plan.lut,
                                       (1 << plan.opt.weight_bits) - 1,
                                       plan.opt.offsets,
                                       plan.opt.penalize_bias);
    std::int64_t demoted = 0;
    for (PlanLayer& pl : plan.layers) {
      const auto elems =
          static_cast<std::size_t>(pl.lq.rows * pl.lq.cols);
      if (pl.mean_grads.size() != elems) continue;
      VawoOptions vopt;
      vopt.offsets = plan.opt.offsets;
      vopt.offsets.m = pl.m;
      vopt.use_complement = true;
      vopt.penalize_bias = plan.opt.penalize_bias;
      VawoResult res =
          vawo_layer(pl.lq, pl.mean_grads, plan.lut, vopt, &table);
      rezero_dead_columns(pl, res);
      for (std::size_t i = 0; i < res.complemented.size(); ++i) {
        if (pl.assign.complemented[i] == 1 && res.complemented[i] == 0) {
          ++demoted;
        }
      }
      pl.assign = std::move(res);
    }
    rdo::obs::global_metrics()
        .counter("opt_complement_groups_demoted")
        .add(demoted);
  }

  void check(const DeploymentPlan& plan) const override {
    for (const PlanLayer& pl : plan.layers) {
      for (std::uint8_t f : pl.assign.complemented) {
        RDO_CHECK(f <= 1, "canonicalize_complement: flag out of range");
        RDO_CHECK(f == 0 || scheme_uses_complement(plan.opt.scheme),
                  "canonicalize_complement: complement flag under a "
                  "non-complement scheme");
      }
    }
  }
};

const std::vector<std::unique_ptr<Pass>>& registry() {
  static const auto* passes = [] {
    auto* v = new std::vector<std::unique_ptr<Pass>>();
    v->push_back(std::make_unique<TuneGroupSize>());
    v->push_back(std::make_unique<ColorOffsetRegisters>());
    v->push_back(std::make_unique<EliminateDeadTiles>());
    v->push_back(std::make_unique<CanonicalizeComplement>());
    return v;
  }();
  return *passes;
}

const Pass* find_pass(const std::string& name) {
  for (const auto& p : registry()) {
    if (name == p->name()) return p.get();
  }
  return nullptr;
}

}  // namespace

const std::vector<std::string>& registered_passes() {
  static const auto* names = [] {
    auto* v = new std::vector<std::string>();
    for (const auto& p : registry()) v->emplace_back(p->name());
    return v;
  }();
  return *names;
}

std::optional<std::vector<std::string>> parse_pass_list(
    const std::string& spec, std::string* error) {
  std::vector<std::string> names;
  if (spec.empty()) return names;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string name = spec.substr(start, end - start);
    if (name.empty()) {
      if (error != nullptr) *error = "empty pass name in pass list";
      return std::nullopt;
    }
    if (find_pass(name) == nullptr) {
      if (error != nullptr) {
        std::string known;
        for (const std::string& n : registered_passes()) {
          if (!known.empty()) known += ", ";
          known += n;
        }
        *error = "unknown optimizer pass \"" + name + "\" (known: " +
                 known + ")";
      }
      return std::nullopt;
    }
    for (const std::string& seen : names) {
      if (seen == name) {
        if (error != nullptr) {
          *error = "optimizer pass \"" + name + "\" listed twice";
        }
        return std::nullopt;
      }
    }
    names.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return names;
}

void run_pipeline(DeploymentPlan& plan,
                  const std::vector<std::string>& names) {
  if (names.empty()) return;
  rdo::obs::TraceSpan pipeline_span("opt:pipeline", "opt");
  pipeline_span.arg("passes", static_cast<std::int64_t>(names.size()));
  for (const std::string& name : names) {
    const Pass* pass = find_pass(name);
    if (pass == nullptr) {
      throw std::invalid_argument("run_pipeline: unknown optimizer pass \"" +
                                  name + '"');
    }
    rdo::obs::TraceSpan span(("opt:" + name).c_str(), "opt");
    const std::int64_t before = plan.total_offset_registers();
    pass->run(plan);
    check_layer_geometry(plan);
    pass->check(plan);
    const std::int64_t after = plan.total_offset_registers();
    span.arg("registers_before", before);
    span.arg("registers_after", after);
    rdo::obs::global_metrics().counter("opt_pass_runs").add();
    if (after < before) {
      rdo::obs::global_metrics()
          .counter("opt_registers_saved")
          .add(before - after);
    }
    plan.passes_applied.push_back(name);
  }
}

}  // namespace rdo::core::opt
