// Pass pipeline over a compiled DeploymentPlan.
//
// The registry holds the shipped passes in canonical order:
//
//   tune_group_size         per-layer offset-group size auto-tuning: double
//                           a layer's m while the VAWO cost table proves the
//                           merged assignment is bit-identical (fewer
//                           registers, same effective weights)
//   color_offset_registers  register coloring: account only the distinct
//                           (offset, complement) values of a layer, shared
//                           across its tiles (accounting-only transform)
//   eliminate_dead_tiles    skip programming of all-zero weight columns
//                           (fewer pulses; the column reads back exactly 0)
//   canonicalize_complement re-solve complement-form groups against the
//                           cost table and demote any flag that is not
//                           strictly better than the direct form
//
// Pass lists are comma-separated name strings ("a,b,c"; the empty string
// is the empty list and leaves compiled plans untouched). They enter via
// PipelineConfig::opt_passes — set from the RDO_OPT_PASSES environment
// variable by rdo_experiment, or per request through the serve protocol's
// "opt_passes" config key — and are covered by plan_fingerprint, so
// cached plans are keyed by the pipeline that produced them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/plan.h"

namespace rdo::core::opt {

/// Names of every registered pass, in canonical order.
[[nodiscard]] const std::vector<std::string>& registered_passes();

/// Parse a comma-separated pass list. Returns the names in list order;
/// nullopt (with `*error` set when non-null) on an unknown or repeated
/// pass name or an empty element ("a,,b"). The empty string parses to
/// the empty list.
[[nodiscard]] std::optional<std::vector<std::string>> parse_pass_list(
    const std::string& spec, std::string* error = nullptr);

/// Run the named passes over `plan` in list order. Each pass runs under
/// an RDO_TRACE span ("opt:<name>"), bumps MetricsRegistry counters
/// (opt_pass_runs, opt_registers_saved), has its invariant checked
/// (ContractViolation on a violation) and is appended to
/// plan.passes_applied. Throws std::invalid_argument on a name that is
/// not registered (callers validate user input with parse_pass_list
/// first; this is the defensive backstop).
void run_pipeline(DeploymentPlan& plan,
                  const std::vector<std::string>& names);

}  // namespace rdo::core::opt
