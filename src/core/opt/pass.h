// Optimizer passes over a compiled DeploymentPlan.
//
// A pass is a named, deterministic transform DeploymentPlan ->
// DeploymentPlan that runs between core::compile_plan() and the
// ExecutionBackends (the MIGraphX idiom: small, verifiable rewrites over
// an immutable program). Every pass carries a machine-checkable
// invariant: run_pipeline() (core/opt/pipeline.h) calls check() after
// each transform and aborts compilation on a violation instead of
// handing a malformed plan to a backend.
//
// Contract for implementations:
//   * run() mutates only plan.layers / per-layer metadata; DeployOptions
//     and the LUT are read-only (they are covered by plan_fingerprint,
//     which already includes the pass list).
//   * run() is bit-deterministic: the same plan in, the same plan out,
//     for any thread count (passes run single-threaded on purpose).
//   * Passes that need per-group tuning freedom at execution time skip
//     PWT schemes (scheme_uses_pwt): PWT re-tunes every offset after
//     each programming cycle, so compile-time register sharing or group
//     merging would change its counters and tuning head-room.
#pragma once

#include "core/plan.h"

namespace rdo::core::opt {

class Pass {
 public:
  virtual ~Pass() = default;

  /// Stable pass name (the spelling used in RDO_OPT_PASSES, the serve
  /// "opt_passes" config key and the plan's pass-provenance record).
  [[nodiscard]] virtual const char* name() const = 0;

  /// Transform `plan` in place (see the contract above).
  virtual void run(DeploymentPlan& plan) const = 0;

  /// Machine-checkable invariant over the transformed plan. Throws
  /// ContractViolation (via RDO_CHECK) when the transform left the plan
  /// in a state a backend could misinterpret.
  virtual void check(const DeploymentPlan& plan) const = 0;
};

}  // namespace rdo::core::opt
