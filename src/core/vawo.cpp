#include "core/vawo.h"

#include <cmath>
#include <string>

#include "core/check.h"

namespace rdo::core {

namespace {

/// Objective of one candidate (offset, form) for a group; fills `ctw`.
double group_objective(const std::vector<int>& ntw,
                       const std::vector<double>& grad,
                       const rdo::rram::RLut& lut, int weight_levels, int b,
                       bool complemented, bool penalize_bias,
                       std::vector<int>& ctw) {
  double obj = 0.0;
  for (std::size_t i = 0; i < ntw.size(); ++i) {
    const int target_ntw =
        complemented ? weight_levels - ntw[i] : ntw[i];
    const double target_mean = static_cast<double>(target_ntw - b);
    const int v = lut.invert_mean(target_mean);
    ctw[i] = v;
    const double g2 = grad[i] * grad[i];
    double term = g2 * lut.var(v);
    if (penalize_bias) {
      const double bias = lut.mean(v) - target_mean;
      term += g2 * bias * bias;
    }
    obj += term;
  }
  return obj;
}

}  // namespace

double vawo_solve_group(const std::vector<int>& ntw,
                        const std::vector<double>& grad,
                        const rdo::rram::RLut& lut, int weight_levels,
                        const VawoOptions& opt, int& best_offset,
                        bool& best_complemented, std::vector<int>& best_ctw) {
  RDO_CHECK(ntw.size() == grad.size() && !ntw.empty(),
            "vawo_solve_group: " + std::to_string(ntw.size()) +
                " weights vs " + std::to_string(grad.size()) + " gradients");
  double best = -1.0;
  std::vector<int> ctw(ntw.size());
  const int forms = opt.use_complement ? 2 : 1;
  for (int form = 0; form < forms; ++form) {
    const bool comp = form == 1;
    for (int b = opt.offsets.offset_min(); b <= opt.offsets.offset_max();
         ++b) {
      const double obj = group_objective(ntw, grad, lut, weight_levels, b,
                                         comp, opt.penalize_bias, ctw);
      if (best < 0.0 || obj < best) {
        best = obj;
        best_offset = b;
        best_complemented = comp;
        best_ctw = ctw;
      }
    }
  }
  return best;
}

VawoResult vawo_layer(const rdo::quant::LayerQuant& lq,
                      const std::vector<double>& grads,
                      const rdo::rram::RLut& lut, const VawoOptions& opt) {
  const std::int64_t rows = lq.rows, cols = lq.cols;
  RDO_CHECK(grads.size() == static_cast<std::size_t>(rows * cols),
            "vawo_layer: " + std::to_string(grads.size()) +
                " gradients for a " + std::to_string(rows) + "x" +
                std::to_string(cols) + " matrix");
  VawoResult res;
  res.groups_per_col = groups_per_column(rows, opt.offsets.m);
  res.ctw.assign(static_cast<std::size_t>(rows * cols), 0);
  res.offsets.assign(static_cast<std::size_t>(res.groups_per_col * cols),
                     0.0f);
  res.complemented.assign(static_cast<std::size_t>(res.groups_per_col * cols),
                          0);

  // Floor the gradient magnitudes. Weights with (numerically) zero mean
  // gradient — dead units, converged directions — would otherwise make
  // the group objective identically zero, leaving the offset choice to
  // tie-breaking and producing arbitrarily bad CTWs for weights that still
  // matter at inference time.
  double mean_abs = 0.0;
  for (double g : grads) mean_abs += std::fabs(g);
  mean_abs /= static_cast<double>(grads.size());
  const double floor = mean_abs > 0.0 ? 0.05 * mean_abs : 1.0;
  std::vector<double> g2(grads.size());
  for (std::size_t i = 0; i < grads.size(); ++i) {
    g2[i] = std::max(std::fabs(grads[i]), floor);
  }

  std::vector<int> ntw;
  std::vector<double> grad;
  std::vector<int> ctw;
  for (std::int64_t c = 0; c < cols; ++c) {
    for (std::int64_t g = 0; g < res.groups_per_col; ++g) {
      const std::int64_t r0 = g * opt.offsets.m;
      const std::int64_t r1 = std::min<std::int64_t>(rows, r0 + opt.offsets.m);
      ntw.clear();
      grad.clear();
      for (std::int64_t r = r0; r < r1; ++r) {
        ntw.push_back(lq.at(r, c));
        grad.push_back(g2[static_cast<std::size_t>(r * cols + c)]);
      }
      int b = 0;
      bool comp = false;
      res.total_objective += vawo_solve_group(ntw, grad, lut, lq.levels(),
                                              opt, b, comp, ctw);
      for (std::int64_t r = r0; r < r1; ++r) {
        res.ctw[static_cast<std::size_t>(r * cols + c)] =
            ctw[static_cast<std::size_t>(r - r0)];
      }
      res.offsets[static_cast<std::size_t>(g * cols + c)] =
          static_cast<float>(b);
      res.complemented[static_cast<std::size_t>(g * cols + c)] =
          comp ? 1 : 0;
    }
  }
  return res;
}

VawoResult plain_layer(const rdo::quant::LayerQuant& lq, int m) {
  VawoResult res;
  res.groups_per_col = groups_per_column(lq.rows, m);
  res.ctw.assign(lq.q.begin(), lq.q.end());
  res.offsets.assign(static_cast<std::size_t>(res.groups_per_col * lq.cols),
                     0.0f);
  res.complemented.assign(
      static_cast<std::size_t>(res.groups_per_col * lq.cols), 0);
  return res;
}

}  // namespace rdo::core
