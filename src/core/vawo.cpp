#include "core/vawo.h"

#include <cmath>
#include <string>

#include "core/check.h"

namespace rdo::core {

namespace {

/// Gradient floor: weights whose mean gradient is numerically zero (dead
/// units, converged directions) would make the group objective identically
/// zero and leave the offset to tie-breaking, producing arbitrarily bad
/// CTWs for weights that still matter at inference time. Their |g| is
/// floored at this fraction of the layer's mean |g| (DESIGN.md §5, item 7).
constexpr double kGradFloorFrac = 0.05;

/// Objective of one candidate (offset, form) for a group; fills `ctw`.
/// The literal paper procedure — one LUT inversion per weight — kept as
/// the oracle the table engine must reproduce bit-for-bit.
double group_objective(const std::vector<int>& ntw,
                       const std::vector<double>& grad,
                       const rdo::rram::RLut& lut, int weight_levels, int b,
                       bool complemented, bool penalize_bias,
                       std::vector<int>& ctw) {
  double obj = 0.0;
  for (std::size_t i = 0; i < ntw.size(); ++i) {
    const int target_ntw =
        complemented ? weight_levels - ntw[i] : ntw[i];
    const double target_mean = static_cast<double>(target_ntw - b);
    const int v = lut.invert_mean(target_mean);
    ctw[i] = v;
    const double g2 = grad[i] * grad[i];
    double term = g2 * lut.var(v);
    if (penalize_bias) {
      const double bias = lut.mean(v) - target_mean;
      term += g2 * bias * bias;
    }
    obj += term;
  }
  return obj;
}

/// Table-engine core. Accumulates, for each form, the objective of every
/// offset candidate in one weight-outer/offset-inner sweep: the candidates
/// of weight i live in the contiguous table slice starting at its target
/// value tau_i, so the inner loop is a branch-free gather + multiply-add
/// the compiler can vectorize, and adjacent offsets share all per-weight
/// table work (offset b = offset_max - j reads element tau_i + j).
///
/// Bit-exactness with group_objective(): for a fixed offset the per-weight
/// terms are accumulated in the same weight order with identically shaped
/// expressions (g2*var, then += g2*bias*bias with the raw bias — never a
/// pre-squared bias, which would round differently), and the winner scan
/// replicates the reference enumeration order and strict-< tie-breaking.
/// With penalize_bias off the bias row is all zeros and the += adds +0.0,
/// which never changes a finite sum.
double solve_group_table(const int* ntw, const double* g2, std::size_t n,
                         const VawoTable& table, bool use_complement,
                         std::vector<double>& acc, int& best_offset,
                         bool& best_complemented, std::vector<int>& best_ctw) {
  const int nb = table.offset_count();
  const int levels = table.weight_levels();
  const int forms = use_complement ? 2 : 1;
  acc.assign(static_cast<std::size_t>(nb) * static_cast<std::size_t>(forms),
             0.0);
  for (int form = 0; form < forms; ++form) {
    double* a = acc.data() + static_cast<std::size_t>(form) *
                                 static_cast<std::size_t>(nb);
    for (std::size_t i = 0; i < n; ++i) {
      const int tau = form == 1 ? levels - ntw[i] : ntw[i];
      const double g = g2[i];
      const double* vr = table.var_row(tau);
      const double* br = table.bias_row(tau);
      for (int j = 0; j < nb; ++j) {
        double term = g * vr[j];
        term += g * br[j] * br[j];
        a[j] += term;
      }
    }
  }
  double best = -1.0;
  bool found = false;
  for (int form = 0; form < forms; ++form) {
    const double* a = acc.data() + static_cast<std::size_t>(form) *
                                       static_cast<std::size_t>(nb);
    for (int b = table.offset_min(); b <= table.offset_max(); ++b) {
      const double obj = a[table.offset_max() - b];
      if (best < 0.0 || obj < best) {
        best = obj;
        best_offset = b;
        best_complemented = form == 1;
      }
      found = true;
    }
  }
  RDO_CHECK(found, "vawo_solve_group: empty offset enumeration range");
  best_ctw.resize(n);
  const int j = table.offset_max() - best_offset;
  for (std::size_t i = 0; i < n; ++i) {
    const int tau = best_complemented ? levels - ntw[i] : ntw[i];
    best_ctw[i] = table.ctw_row(tau)[j];
  }
  return best;
}

void check_group_shape(std::size_t ntw, std::size_t grad) {
  RDO_CHECK(ntw == grad && ntw != 0,
            "vawo_solve_group: " + std::to_string(ntw) + " weights vs " +
                std::to_string(grad) + " gradients");
}

}  // namespace

VawoTable VawoTable::build(const rdo::rram::RLut& lut, int weight_levels,
                           const OffsetConfig& offsets, bool penalize_bias) {
  offsets.validate();
  RDO_CHECK(weight_levels >= 1,
            "VawoTable: weight_levels = " + std::to_string(weight_levels) +
                " < 1");
  VawoTable t;
  t.levels_ = weight_levels;
  t.bmin_ = offsets.offset_min();
  t.bmax_ = offsets.offset_max();
  t.penalize_bias_ = penalize_bias;
  // Target values span [0 - offset_max, weight_levels - offset_min]:
  // weight_levels + 2^offset_bits entries. Index idx holds target value
  // idx - offset_max, so the row of a weight with target_ntw = tau starts
  // at idx = tau (element j = cost of offset b = offset_max - j).
  const std::size_t size = static_cast<std::size_t>(weight_levels) +
                           static_cast<std::size_t>(t.bmax_ - t.bmin_ + 1);
  t.ctw_.resize(size);
  t.var_.resize(size);
  t.bias_.resize(size);
  for (std::size_t idx = 0; idx < size; ++idx) {
    const double target_mean =
        static_cast<double>(static_cast<int>(idx) - t.bmax_);
    const int v = lut.invert_mean(target_mean);
    t.ctw_[idx] = v;
    t.var_[idx] = lut.var(v);
    t.bias_[idx] = penalize_bias ? lut.mean(v) - target_mean : 0.0;
  }
  return t;
}

double vawo_solve_group(const std::vector<int>& ntw,
                        const std::vector<double>& grad,
                        const rdo::rram::RLut& lut, int weight_levels,
                        const VawoOptions& opt, int& best_offset,
                        bool& best_complemented, std::vector<int>& best_ctw) {
  check_group_shape(ntw.size(), grad.size());
  opt.offsets.validate();
  double best = -1.0;
  bool found = false;
  std::vector<int> ctw(ntw.size());
  const int forms = opt.use_complement ? 2 : 1;
  for (int form = 0; form < forms; ++form) {
    const bool comp = form == 1;
    for (int b = opt.offsets.offset_min(); b <= opt.offsets.offset_max();
         ++b) {
      const double obj = group_objective(ntw, grad, lut, weight_levels, b,
                                         comp, opt.penalize_bias, ctw);
      if (best < 0.0 || obj < best) {
        best = obj;
        best_offset = b;
        best_complemented = comp;
        best_ctw = ctw;
      }
      found = true;
    }
  }
  RDO_CHECK(found, "vawo_solve_group: empty offset enumeration range");
  return best;
}

double vawo_solve_group(const std::vector<int>& ntw,
                        const std::vector<double>& g2, const VawoTable& table,
                        bool use_complement, int& best_offset,
                        bool& best_complemented, std::vector<int>& best_ctw) {
  check_group_shape(ntw.size(), g2.size());
  for (int w : ntw) {
    RDO_CHECK(w >= 0 && w <= table.weight_levels(),
              "vawo_solve_group: NTW " + std::to_string(w) +
                  " outside [0, " + std::to_string(table.weight_levels()) +
                  "]");
  }
  std::vector<double> acc;
  return solve_group_table(ntw.data(), g2.data(), ntw.size(), table,
                           use_complement, acc, best_offset,
                           best_complemented, best_ctw);
}

VawoResult vawo_layer(const rdo::quant::LayerQuant& lq,
                      const std::vector<double>& grads,
                      const rdo::rram::RLut& lut, const VawoOptions& opt,
                      const VawoTable* table) {
  const std::int64_t rows = lq.rows, cols = lq.cols;
  RDO_CHECK(grads.size() == static_cast<std::size_t>(rows * cols),
            "vawo_layer: " + std::to_string(grads.size()) +
                " gradients for a " + std::to_string(rows) + "x" +
                std::to_string(cols) + " matrix");
  opt.offsets.validate();
  VawoResult res;
  res.groups_per_col = groups_per_column(rows, opt.offsets.m);
  res.ctw.assign(static_cast<std::size_t>(rows * cols), 0);
  res.offsets.assign(static_cast<std::size_t>(res.groups_per_col * cols),
                     0.0f);
  res.complemented.assign(static_cast<std::size_t>(res.groups_per_col * cols),
                          0);

  // Per-weight objective weights: |dL/dw| floored at kGradFloorFrac of the
  // layer mean (see the constant above; a gradient-free layer floors at
  // 1.0 so every weight still counts equally). The table engine consumes
  // the square directly — hoisted here so the hot loop never re-squares —
  // while the reference oracle squares internally and takes the magnitude.
  double mean_abs = 0.0;
  for (double g : grads) mean_abs += std::fabs(g);
  mean_abs /= static_cast<double>(grads.size());
  const double floor = mean_abs > 0.0 ? kGradFloorFrac * mean_abs : 1.0;
  const bool fast = opt.engine == VawoEngine::kTable;
  std::vector<double> gw(grads.size());
  for (std::size_t i = 0; i < grads.size(); ++i) {
    gw[i] = std::max(std::fabs(grads[i]), floor);
    if (fast) gw[i] = gw[i] * gw[i];
  }

  VawoTable local;
  if (fast && table == nullptr) {
    local = VawoTable::build(lut, lq.levels(), opt.offsets,
                             opt.penalize_bias);
    table = &local;
  }
  if (fast) {
    RDO_CHECK(table->weight_levels() == lq.levels() &&
                  table->offset_min() == opt.offsets.offset_min() &&
                  table->offset_max() == opt.offsets.offset_max() &&
                  table->penalize_bias() == opt.penalize_bias,
              "vawo_layer: VawoTable was built for a different LUT/offset "
              "configuration");
    // The table is indexed by NTW, so out-of-range quantized weights would
    // read past it (the reference engine merely clamps them through
    // invert_mean). One pass up front keeps the hot loop check-free.
    for (int w : lq.q) {
      RDO_CHECK(w >= 0 && w <= lq.levels(),
                "vawo_layer: NTW " + std::to_string(w) + " outside [0, " +
                    std::to_string(lq.levels()) + "]");
    }
  }

  std::vector<int> ntw;
  std::vector<double> grad;
  std::vector<int> ctw;
  std::vector<double> acc;
  for (std::int64_t c = 0; c < cols; ++c) {
    for (std::int64_t g = 0; g < res.groups_per_col; ++g) {
      const std::int64_t r0 = g * opt.offsets.m;
      const std::int64_t r1 = std::min<std::int64_t>(rows, r0 + opt.offsets.m);
      ntw.clear();
      grad.clear();
      for (std::int64_t r = r0; r < r1; ++r) {
        ntw.push_back(lq.at(r, c));
        grad.push_back(gw[static_cast<std::size_t>(r * cols + c)]);
      }
      int b = 0;
      bool comp = false;
      if (fast) {
        res.total_objective +=
            solve_group_table(ntw.data(), grad.data(), ntw.size(), *table,
                              opt.use_complement, acc, b, comp, ctw);
      } else {
        res.total_objective += vawo_solve_group(ntw, grad, lut, lq.levels(),
                                                opt, b, comp, ctw);
      }
      for (std::int64_t r = r0; r < r1; ++r) {
        res.ctw[static_cast<std::size_t>(r * cols + c)] =
            ctw[static_cast<std::size_t>(r - r0)];
      }
      res.offsets[static_cast<std::size_t>(g * cols + c)] =
          static_cast<float>(b);
      res.complemented[static_cast<std::size_t>(g * cols + c)] =
          comp ? 1 : 0;
    }
  }
  return res;
}

VawoResult plain_layer(const rdo::quant::LayerQuant& lq, int m) {
  VawoResult res;
  res.groups_per_col = groups_per_column(lq.rows, m);
  res.ctw.assign(lq.q.begin(), lq.q.end());
  res.offsets.assign(static_cast<std::size_t>(res.groups_per_col * lq.cols),
                     0.0f);
  res.complemented.assign(
      static_cast<std::size_t>(res.groups_per_col * lq.cols), 0);
  return res;
}

}  // namespace rdo::core
