// Compile-once deployment plan (scheme-dependent, backend-independent).
//
// compile_plan() performs everything that depends on the scheme but not on
// which execution substrate realizes it: weight quantization, activation
// range calibration, mean loss-gradient collection and the VAWO / plain
// CTW+offset assignment. It works on a private clone of the trained
// network — the caller's network is never touched — and freezes the result
// into an immutable DeploymentPlan.
//
// The plan is pure data (copyable, shareable by value or const reference):
// any number of ExecutionBackends (core::EffectiveWeightBackend,
// sim::DeviceSimBackend) can realize independent programming cycles from
// one plan. Compile once, execute many.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/deploy.h"
#include "core/vawo.h"
#include "nn/layer.h"
#include "nn/trainer.h"
#include "quant/quantizer.h"
#include "rram/programmer.h"
#include "rram/rlut.h"
#include "rram/tiler.h"

namespace rdo::core {

/// Raised by DeploymentPlan::load on a corrupt, truncated or oversized
/// plan file. Derives from std::runtime_error so generic catch sites keep
/// working; a distinct type so cache-recovery code can tell a damaged
/// plan from unrelated I/O failures.
class PlanError : public std::runtime_error {
 public:
  explicit PlanError(const std::string& what) : std::runtime_error(what) {}
};

/// Activation-quantizer calibration captured at compile time (one entry
/// per ActQuant layer in network traversal order).
struct ActCalibration {
  int bits = 8;
  float max_abs = 0.0f;  ///< range observed at the quantized operating point
};

/// One crossbar-mapped layer of the plan.
struct PlanLayer {
  std::int64_t fan_in = 0;
  std::int64_t fan_out = 0;
  rdo::quant::LayerQuant lq;       ///< NTWs + scale/zero
  std::vector<double> mean_grads;  ///< row-major dL/dw (VAWO schemes only)
  VawoResult assign;               ///< CTWs, base offsets, complement flags
  /// Offset-group size of THIS layer. compile_plan sets it to the global
  /// DeployOptions::offsets.m; the tune_group_size optimizer pass may
  /// raise it per layer. Backends and the serializer read this field,
  /// never opt.offsets.m, so a tuned plan executes consistently.
  int m = 1;
  /// Offset registers this layer actually needs. Defaults to the Eq. 9
  /// geometric count groups_per_column(rows, m) * cols; the
  /// color_offset_registers pass may lower it (registers shared across
  /// tiles). Accounting-only: backends still index the full per-group
  /// offset vectors.
  std::int64_t offset_registers = 0;
  /// Per-column dead flags set by eliminate_dead_tiles (1 = every NTW of
  /// the column quantized to the zero point, so the column is never
  /// programmed and reads back exactly 0). Empty = no dead columns.
  std::vector<std::uint8_t> dead_cols;
};

/// The shared compile product. Immutable by convention once compile_plan
/// returns; backends only read it.
struct DeploymentPlan {
  explicit DeploymentPlan(const DeployOptions& o)
      : opt(o), prog(o.cell, o.weight_bits, o.variation, o.faults) {}

  DeployOptions opt;
  rdo::rram::WeightProgrammer prog;
  rdo::rram::RLut lut;
  std::vector<PlanLayer> layers;
  std::vector<ActCalibration> act_calib;
  /// Pass-provenance record: the optimizer passes (core/opt) that ran
  /// over this plan, in execution order. Empty for an unoptimized plan.
  /// Serialized with the plan, so a cache hit reports the pipeline that
  /// produced it.
  std::vector<std::string> passes_applied;
  /// Wall times of the compile stage (lut_build_s, prepare_s,
  /// vawo_solve_s). Compilation contributes no deterministic counters, so
  /// merging this into backend stats reproduces the legacy single-object
  /// DeployStats exactly on the deterministic side.
  DeployStats compile_stats;

  /// Row/column tile geometry of layer `li` on xbar_rows x xbar_cols
  /// arrays of bit-sliced weights.
  [[nodiscard]] rdo::rram::TilingInfo layer_tiling(std::size_t li,
                                                   int xbar_rows = 128,
                                                   int xbar_cols = 128) const;

  /// Nominal device read power of the assigned CTWs (Table I numerator).
  [[nodiscard]] double assigned_read_power() const;
  /// Nominal device read power of the plain NTW assignment (denominator).
  [[nodiscard]] double plain_read_power() const;
  /// Crossbars needed to hold all layers (Table III accounting).
  [[nodiscard]] std::int64_t total_crossbars(int xbar_rows = 128,
                                             int xbar_cols = 128) const;
  /// Offset registers needed across all layers: the sum of the per-layer
  /// PlanLayer::offset_registers counts (Eq. 9 at each layer's own m,
  /// minus whatever the optimizer passes shared away).
  [[nodiscard]] std::int64_t total_offset_registers() const;

  // --- serialization (src/core/plan_io.cpp) ---
  //
  // A plan file stores everything the compile stage produced — the full
  // DeployOptions (including the optimizer pass list), the embedded RLut
  // (reusing the RLU2 document), every PlanLayer (with its per-layer m,
  // register count and dead-column mask) and the activation calibration —
  // under a "RDP2" header carrying the caller's config fingerprint (see
  // plan_fingerprint). RDP1 files are rejected cleanly ("bad magic").
  // compile_stats is wall-clock-only and is NOT serialized: a loaded
  // plan reports zero compile time, which is exactly what a cache hit
  // means. Serialization is byte-stable: save(load(save(p))) is
  // bit-identical to save(p).

  /// Append one complete plan document to `out`. Throws on stream
  /// failure.
  void save(std::ostream& out, std::uint64_t fingerprint) const;
  /// Save to `path` atomically (temp file + rename, pid+counter temp
  /// suffix — see core/tmpfile.h) so concurrent loaders sharing
  /// RDO_PLAN_CACHE_DIR only ever observe complete plans. Throws on I/O
  /// failure.
  void save(const std::string& path, std::uint64_t fingerprint) const;

  /// Parse one complete save() document from `in` (must be seekable —
  /// an open binary ifstream or istringstream holding exactly one
  /// document). Returns nullopt if the stored fingerprint differs from
  /// `fingerprint` (stale cache — the caller recompiles); throws
  /// PlanError on corrupt, truncated or oversized input. Every declared
  /// count is validated against the bytes actually present before it is
  /// believed, and trailing bytes are rejected. This is the single
  /// parsing path; the path overload and the fuzz harness both call it.
  static std::optional<DeploymentPlan> load(std::istream& in,
                                            std::uint64_t fingerprint,
                                            const std::string& source);
  /// Load a plan saved by save(). Returns nullopt if the file does not
  /// exist or is stale; throws PlanError on a corrupt file.
  static std::optional<DeploymentPlan> load(const std::string& path,
                                            std::uint64_t fingerprint);
};

/// 64-bit FNV-1a fingerprint of everything a cached plan depends on: the
/// serialization format version, the network (layer structure, shapes and
/// the bytes of every parameter and buffer), the calibration/gradient
/// dataset (shape, image bytes and labels) and the full DeployOptions
/// including its PipelineConfig base (scheme, offsets, cell, variation,
/// faults, weight bits, PWT knobs, LUT protocol, seed). Two
/// configurations that would compile different plans never share a
/// fingerprint (up to hash collisions).
[[nodiscard]] std::uint64_t plan_fingerprint(const rdo::nn::Layer& net,
                                             const DeployOptions& opt,
                                             const rdo::nn::DataView& train);

/// Compile `net` (unchanged; cloned internally) for deployment under
/// `opt`. `train` feeds activation calibration and, for VAWO schemes, the
/// mean gradient estimate. Throws std::invalid_argument when the network
/// has no crossbar-mappable (MatrixOp) layers.
///
/// When the RDO_PLAN_CACHE_DIR environment variable names a directory,
/// compiled plans are cached there under their plan_fingerprint(): a
/// warm call returns the bit-identical stored plan and skips
/// lut_build/prepare/vawo_solve entirely (compile_stats reports zero
/// phase times and plan_cache_hits = 1). A stale or corrupt entry is
/// recompiled and re-saved over; writes are atomic (temp + rename) so
/// concurrent compilations sharing a cache directory only ever observe
/// complete plans.
DeploymentPlan compile_plan(const rdo::nn::Layer& net,
                            const DeployOptions& opt,
                            const rdo::nn::DataView& train);

}  // namespace rdo::core
