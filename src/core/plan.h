// Compile-once deployment plan (scheme-dependent, backend-independent).
//
// compile_plan() performs everything that depends on the scheme but not on
// which execution substrate realizes it: weight quantization, activation
// range calibration, mean loss-gradient collection and the VAWO / plain
// CTW+offset assignment. It works on a private clone of the trained
// network — the caller's network is never touched — and freezes the result
// into an immutable DeploymentPlan.
//
// The plan is pure data (copyable, shareable by value or const reference):
// any number of ExecutionBackends (core::EffectiveWeightBackend,
// sim::DeviceSimBackend) can realize independent programming cycles from
// one plan. Compile once, execute many.
#pragma once

#include <cstdint>
#include <vector>

#include "core/deploy.h"
#include "core/vawo.h"
#include "nn/layer.h"
#include "nn/trainer.h"
#include "quant/quantizer.h"
#include "rram/programmer.h"
#include "rram/rlut.h"
#include "rram/tiler.h"

namespace rdo::core {

/// Activation-quantizer calibration captured at compile time (one entry
/// per ActQuant layer in network traversal order).
struct ActCalibration {
  int bits = 8;
  float max_abs = 0.0f;  ///< range observed at the quantized operating point
};

/// One crossbar-mapped layer of the plan.
struct PlanLayer {
  std::int64_t fan_in = 0;
  std::int64_t fan_out = 0;
  rdo::quant::LayerQuant lq;       ///< NTWs + scale/zero
  std::vector<double> mean_grads;  ///< row-major dL/dw (VAWO schemes only)
  VawoResult assign;               ///< CTWs, base offsets, complement flags
};

/// The shared compile product. Immutable by convention once compile_plan
/// returns; backends only read it.
struct DeploymentPlan {
  explicit DeploymentPlan(const DeployOptions& o)
      : opt(o), prog(o.cell, o.weight_bits, o.variation, o.faults) {}

  DeployOptions opt;
  rdo::rram::WeightProgrammer prog;
  rdo::rram::RLut lut;
  std::vector<PlanLayer> layers;
  std::vector<ActCalibration> act_calib;
  /// Wall times of the compile stage (lut_build_s, prepare_s,
  /// vawo_solve_s). Compilation contributes no deterministic counters, so
  /// merging this into backend stats reproduces the legacy single-object
  /// DeployStats exactly on the deterministic side.
  DeployStats compile_stats;

  /// Row/column tile geometry of layer `li` on xbar_rows x xbar_cols
  /// arrays of bit-sliced weights.
  [[nodiscard]] rdo::rram::TilingInfo layer_tiling(std::size_t li,
                                                   int xbar_rows = 128,
                                                   int xbar_cols = 128) const;

  /// Nominal device read power of the assigned CTWs (Table I numerator).
  [[nodiscard]] double assigned_read_power() const;
  /// Nominal device read power of the plain NTW assignment (denominator).
  [[nodiscard]] double plain_read_power() const;
  /// Crossbars needed to hold all layers (Table III accounting).
  [[nodiscard]] std::int64_t total_crossbars(int xbar_rows = 128,
                                             int xbar_cols = 128) const;
  /// Offset registers needed across all layers (Eq. 9 summed).
  [[nodiscard]] std::int64_t total_offset_registers() const;
};

/// Compile `net` (unchanged; cloned internally) for deployment under
/// `opt`. `train` feeds activation calibration and, for VAWO schemes, the
/// mean gradient estimate. Throws std::invalid_argument when the network
/// has no crossbar-mappable (MatrixOp) layers.
DeploymentPlan compile_plan(const rdo::nn::Layer& net,
                            const DeployOptions& opt,
                            const rdo::nn::DataView& train);

}  // namespace rdo::core
