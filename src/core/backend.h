// Pluggable execution backends over a compiled DeploymentPlan.
//
// An ExecutionBackend realizes programming cycles of a plan on some
// substrate: program_cycle() writes one CCV draw of every CTW, tune()
// runs the scheme's post-writing offset tuning and evaluate() measures
// test accuracy of the deployed state. Backends own all mutable state
// (including a private clone of the network), so the caller's trained
// network is never modified and independent backends over the same plan
// never interact — the parallel Monte-Carlo harnesses exploit exactly
// that.
//
// Both shipped backends (EffectiveWeightBackend here and
// sim::DeviceSimBackend in src/sim/device_backend.h) emit identical
// deterministic DeployStats counters and identical seeded RNG streams,
// so bench_diff can gate cross-backend parity.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/plan.h"
#include "nn/layer.h"
#include "nn/trainer.h"
#include "quant/act_quant.h"

namespace rdo::core {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Program every CTW once (one CCV cycle; `cycle_salt` selects the
  /// cycle's device draws deterministically from the plan seed).
  virtual void program_cycle(std::uint64_t cycle_salt) = 0;
  /// Post-writing tuning of the digital offsets (no-op unless the plan's
  /// scheme includes PWT). Rounds offsets to the register grid when done.
  virtual void tune(const rdo::nn::DataView& train) = 0;
  /// Test accuracy of the currently deployed state.
  virtual float evaluate(const rdo::nn::DataView& test,
                         std::int64_t batch = 64) = 0;
  /// Per-phase wall times and deterministic pipeline counters accumulated
  /// since construction (compile-stage times live in the plan, not here).
  [[nodiscard]] virtual const DeployStats& stats() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The fast path: CRWs are composed numerically by the WeightProgrammer
/// and folded, together with offsets and complement flags, into effective
/// float weights of a private network clone (the "twin"). Validated
/// against the device-level backend by the parity test suite.
class EffectiveWeightBackend : public ExecutionBackend {
 public:
  struct LayerState {
    rdo::nn::MatrixOp* op = nullptr;  ///< into the private twin network
    std::vector<float> offsets;       ///< working offsets (tuned by PWT)
    std::vector<double> crw;          ///< measured CRWs of the current cycle
    /// Per-weight post-variation cell read values (LSB cell first); kept
    /// only when constructed with keep_cell_values, so a device-level
    /// backend can replay the exact same devices onto simulated crossbars.
    std::vector<std::vector<double>> cells;
  };

  /// Clones `src` into a private twin at the plan's quantized operating
  /// point. `plan` must outlive the backend; `src` is only read during
  /// construction. Throws std::invalid_argument when the network shape
  /// does not match the plan.
  EffectiveWeightBackend(const DeploymentPlan& plan,
                         const rdo::nn::Layer& src,
                         bool keep_cell_values = false);

  void program_cycle(std::uint64_t cycle_salt) override;
  void tune(const rdo::nn::DataView& train) override;
  float evaluate(const rdo::nn::DataView& test,
                 std::int64_t batch = 64) override;
  [[nodiscard]] const DeployStats& stats() const override { return stats_; }
  [[nodiscard]] const char* name() const override {
    return "effective-weight";
  }

  [[nodiscard]] const DeploymentPlan& plan() const { return plan_; }
  [[nodiscard]] const std::vector<LayerState>& layers() const {
    return layers_;
  }
  /// The private deployed twin (for loss probes in tests and the device
  /// backend's PWT path). Never the caller's network.
  [[nodiscard]] rdo::nn::Layer& network() { return *net_; }

 private:
  const DeploymentPlan& plan_;
  std::unique_ptr<rdo::nn::Layer> net_;
  std::vector<LayerState> layers_;
  std::vector<rdo::quant::ActQuant*> act_quants_;
  DeployStats stats_;
  bool keep_cells_ = false;
  bool weights_deployed_ = false;

  void apply_effective_weights();
  void apply_group_delta(std::size_t li, std::int64_t c, std::int64_t g,
                         float delta_b);
  void run_pwt(const rdo::nn::DataView& train);  // defined in pwt.cpp
};

}  // namespace rdo::core
