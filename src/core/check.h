// Contract-check macros for the deployment stack.
//
// Three tiers, all producing a structured "file:line: CHECK(expr) msg"
// diagnostic so a violated invariant names itself in logs and test output:
//
//   RDO_CHECK(cond, msg)    always on; throws rdo::core::ContractViolation.
//                           Use on every boundary crossed by external data
//                           (files, CLI flags, caller-supplied dimensions).
//   RDO_DCHECK(cond, msg)   debug only; compiles to nothing under NDEBUG
//                           (verified by tests/test_check.cpp). Use on hot
//                           inner-loop invariants that are internally
//                           guaranteed but worth auditing in Debug/sanitizer
//                           builds.
//   RDO_BOUNDS(i, n)        always on; half-open range check 0 <= i < n with
//                           both values in the message. For indexing derived
//                           from untrusted sizes.
//
// Throwing (instead of abort()) keeps the contract testable, lets the
// Monte-Carlo trial runner record a violation as a per-trial failure
// instead of killing the whole bench harness, and composes with the
// sanitizer presets: ASan/UBSan builds run the same code paths.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rdo::core {

/// Thrown by RDO_CHECK / RDO_DCHECK / RDO_BOUNDS. A distinct type so tests
/// (and trial error accounting) can tell a broken invariant from ordinary
/// I/O errors. Derives from std::invalid_argument — every contract here is
/// a precondition on values handed across an API boundary — so call sites
/// that historically threw invalid_argument can adopt RDO_CHECK without
/// changing what callers catch.
class ContractViolation : public std::invalid_argument {
 public:
  explicit ContractViolation(const std::string& what)
      : std::invalid_argument(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* file, long line,
                                      const char* expr,
                                      const std::string& msg) {
  std::string out(file);
  out += ':';
  out += std::to_string(line);
  out += ": CHECK(";
  out += expr;
  out += ") failed";
  if (!msg.empty()) {
    out += ": ";
    out += msg;
  }
  throw ContractViolation(out);
}

[[noreturn]] inline void bounds_failed(const char* file, long line,
                                       const char* iexpr, std::int64_t i,
                                       std::int64_t n) {
  std::string out(file);
  out += ':';
  out += std::to_string(line);
  out += ": BOUNDS(";
  out += iexpr;
  out += ") failed: index ";
  out += std::to_string(i);
  out += " not in [0, ";
  out += std::to_string(n);
  out += ')';
  throw ContractViolation(out);
}

inline void bounds_check(const char* file, long line, const char* iexpr,
                         std::int64_t i, std::int64_t n) {
  if (i < 0 || i >= n) bounds_failed(file, line, iexpr, i, n);
}

}  // namespace detail
}  // namespace rdo::core

/// Always-on contract check; throws rdo::core::ContractViolation with
/// file:line, the failing expression and `msg` (any expression that
/// concatenates into std::string).
#define RDO_CHECK(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::rdo::core::detail::check_failed(__FILE__, __LINE__, #cond,    \
                                        std::string() + (msg));       \
    }                                                                 \
  } while (false)

/// Always-on half-open bounds check: 0 <= (i) < (n).
#define RDO_BOUNDS(i, n)                                                    \
  ::rdo::core::detail::bounds_check(__FILE__, __LINE__, #i,                 \
                                    static_cast<std::int64_t>(i),           \
                                    static_cast<std::int64_t>(n))

/// Debug-only contract check; expands to nothing under NDEBUG (the
/// condition is not evaluated), so it is free in Release hot loops.
#ifdef NDEBUG
#define RDO_DCHECK(cond, msg) \
  do {                        \
  } while (false)
#else
#define RDO_DCHECK(cond, msg) RDO_CHECK(cond, msg)
#endif
