// Post-writing tuning (paper §III-D).
//
// After programming, the CRWs are known; the digital offsets b_i become
// the only trainable parameters of the deployed network. Backpropagation
// through the unchanged autograd path yields dL/db_i = sum over the
// group's weights of dL/dW (Eq. 8 — the sum over the group's inputs times
// the upstream gradient), with a sign flip for complemented groups and a
// dequantization scale per layer.
//
// The raw gradient magnitude varies by orders of magnitude across layers,
// so the update is RMS-normalized per layer per batch: this is the
// practical instantiation of the paper's learning rate eta and makes PWT
// converge for every network without per-model tuning. Offsets are kept
// in float during tuning (projected onto the register range each step)
// and snapped to the 8-bit register grid by the backend's tune()
// afterwards. The loop runs entirely on the backend's private twin
// network, so the caller's network is untouched.
#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/backend.h"
#include "nn/loss.h"
#include "obs/trace.h"

namespace rdo::core {

void EffectiveWeightBackend::run_pwt(const rdo::nn::DataView& train) {
  const PwtOptions& popt = plan_.opt.pwt;
  const std::int64_t n =
      popt.max_samples > 0
          ? std::min<std::int64_t>(popt.max_samples, train.size())
          : train.size();
  rdo::nn::Rng rng = rdo::nn::Rng(plan_.opt.seed).split(0x9917);
  rdo::nn::SoftmaxCrossEntropy loss;
  const float lo = static_cast<float>(plan_.opt.offsets.offset_min());
  const float hi = static_cast<float>(plan_.opt.offsets.offset_max());

  std::vector<std::int64_t> order(static_cast<std::size_t>(train.size()));
  std::iota(order.begin(), order.end(), 0);

  float lr = popt.lr;
  for (int epoch = 0; epoch < popt.epochs; ++epoch) {
    rdo::obs::TraceSpan epoch_span("pwt:epoch", "deploy");
    epoch_span.arg("epoch", epoch);
    double epoch_loss = 0.0;
    std::int64_t epoch_batches = 0;
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (std::int64_t start = 0; start < n; start += popt.batch_size) {
      rdo::obs::TraceSpan batch_span("pwt:batch", "deploy");
      batch_span.arg("start", start);
      const std::int64_t end = std::min(n, start + popt.batch_size);
      std::vector<std::int64_t> idx(order.begin() + start,
                                    order.begin() + end);
      rdo::nn::Tensor batch = gather_batch(*train.images, idx);
      std::vector<int> labels;
      labels.reserve(idx.size());
      for (std::int64_t i : idx) {
        labels.push_back((*train.labels)[static_cast<std::size_t>(i)]);
      }

      for (rdo::nn::Param* p : net_->params()) p->zero_grad();
      // Eval-mode forward: the deployed accelerator runs with frozen
      // batch-norm statistics; PWT tunes offsets at that operating point.
      rdo::nn::Tensor logits = net_->forward(batch, /*train=*/false);
      epoch_loss += loss.forward(logits, labels);
      ++epoch_batches;
      net_->backward(loss.backward());

      for (std::size_t li = 0; li < layers_.size(); ++li) {
        const PlanLayer& pl = plan_.layers[li];
        LayerState& ls = layers_[li];
        const std::int64_t cols = pl.lq.cols;
        const std::int64_t groups = pl.assign.groups_per_col;
        // dL/db per group (Eq. 8 with the dequantization scale folded in).
        std::vector<float> gb(static_cast<std::size_t>(groups * cols), 0.0f);
        for (std::int64_t r = 0; r < pl.lq.rows; ++r) {
          const std::int64_t g = group_of_row(r, pl.m);
          for (std::int64_t c = 0; c < cols; ++c) {
            gb[static_cast<std::size_t>(g * cols + c)] +=
                ls.op->weight_grad_at(r, c);
          }
        }
        double sq = 0.0;
        for (std::int64_t g = 0; g < groups; ++g) {
          for (std::int64_t c = 0; c < cols; ++c) {
            const std::size_t gi = static_cast<std::size_t>(g * cols + c);
            const float sign = pl.assign.complemented[gi] ? -1.0f : 1.0f;
            gb[gi] *= sign * pl.lq.scale;
            sq += static_cast<double>(gb[gi]) * gb[gi];
          }
        }
        const float rms = static_cast<float>(
            std::sqrt(sq / static_cast<double>(groups * cols)) + 1e-12);
        for (std::int64_t g = 0; g < groups; ++g) {
          for (std::int64_t c = 0; c < cols; ++c) {
            const std::size_t gi = static_cast<std::size_t>(g * cols + c);
            float delta = -lr * gb[gi] / rms;
            // Project onto the representable offset-register range.
            const float b_old = ls.offsets[gi];
            const float b_new = std::clamp(b_old + delta, lo, hi);
            delta = b_new - b_old;
            if (delta != 0.0f) {
              ls.offsets[gi] = b_new;
              apply_group_delta(li, c, g, delta);
              ++stats_.pwt_offset_updates;
            }
          }
        }
      }
    }
    lr *= 0.5f;  // simple decay; two epochs suffice in practice
    ++stats_.pwt_epochs;
    stats_.pwt_batches += epoch_batches;
    // Mean training loss per epoch: the convergence trace recorded in
    // structured results (deterministic — the forward pass is seeded).
    stats_.pwt_epoch_loss.push_back(static_cast<float>(
        epoch_batches > 0 ? epoch_loss / static_cast<double>(epoch_batches)
                          : 0.0));
  }
  for (rdo::nn::Param* p : net_->params()) p->zero_grad();
}

}  // namespace rdo::core
