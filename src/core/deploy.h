// End-to-end deployment of a trained network onto variation-afflicted
// RRAM crossbars, with the paper's full scheme matrix:
//
//   Plain        CTW = NTW, no offsets            (baseline, §IV "plain")
//   VAWO         variation-aware CTWs + offsets   (§III-B)
//   VAWOStar     VAWO + weight complement         (§III-C, "VAWO*")
//   PWT          plain CTWs, offsets trained post-writing (§III-D)
//   VAWOStarPWT  VAWO* then PWT                   (§IV-A3, the full method)
//
// Pipeline per programming cycle (CCV means every cycle lands different
// CRWs):  prepare (once)  ->  program_cycle  ->  tune  ->  evaluate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/vawo.h"
#include "nn/layer.h"
#include "nn/trainer.h"
#include "obs/json.h"
#include "obs/recorder.h"
#include "quant/act_quant.h"
#include "rram/crossbar.h"
#include "rram/rlut.h"

namespace rdo::core {

enum class Scheme { Plain, VAWO, VAWOStar, PWT, VAWOStarPWT };

const char* to_string(Scheme s);
inline bool scheme_uses_vawo(Scheme s) {
  return s == Scheme::VAWO || s == Scheme::VAWOStar ||
         s == Scheme::VAWOStarPWT;
}
inline bool scheme_uses_complement(Scheme s) {
  return s == Scheme::VAWOStar || s == Scheme::VAWOStarPWT;
}
inline bool scheme_uses_pwt(Scheme s) {
  return s == Scheme::PWT || s == Scheme::VAWOStarPWT;
}

struct PwtOptions {
  int epochs = 2;
  /// Base step size in integer-offset units; gradients are RMS-normalized
  /// per layer each batch, so this is roughly "offset units moved per
  /// batch" (the practical choice of the paper's learning rate eta).
  float lr = 1.0f;
  std::int64_t batch_size = 32;
  std::int64_t max_samples = 0;  ///< 0 = full training set per epoch
  /// Warm-start each offset at the measured group-mean deviation
  /// mean_i(NTW_i - CRW_i) before gradient tuning. Pure posteriori
  /// knowledge (the same measurement PWT already requires) and the
  /// closed-form minimizer of the per-group weight MSE; backprop then
  /// refines it loss-aware. Disable for the strict gradient-only variant.
  bool mean_init = true;
};

struct DeployOptions {
  Scheme scheme = Scheme::Plain;
  OffsetConfig offsets;                 ///< m and offset register width
  rdo::rram::CellModel cell;            ///< SLC or MLC2, ON/OFF ratio
  rdo::rram::VariationModel variation;  ///< sigma (and optional DDV split)
  rdo::rram::FaultModel faults;         ///< optional stuck-at-fault rates
  int weight_bits = 8;
  /// LUT statistical-testing protocol (K device sets x J cycles per CTW).
  int lut_k_sets = 16;
  int lut_j_cycles = 8;
  /// Samples used to estimate the mean loss gradient for VAWO.
  std::int64_t grad_samples = 256;
  std::int64_t grad_batch = 32;
  PwtOptions pwt;
  bool quantize_activations = true;
  bool penalize_bias = true;  ///< see VawoOptions
  std::uint64_t seed = 1;     ///< master seed (LUT build, programming base)
};

/// Per-deployment observability record, accumulated across the
/// prepare -> program_cycle -> tune -> evaluate pipeline.
///
/// The struct is split along the determinism boundary of the BENCH_*.json
/// schema (see obs/report.h): wall times are volatile; every counter and
/// trace below them is derived from the seeded computation and is
/// bit-identical for any RDO_THREADS setting.
struct DeployStats {
  // --- volatile wall times (seconds) ---
  double lut_build_s = 0.0;   ///< statistical LUT construction (K x J)
  double prepare_s = 0.0;     ///< quantize + calibrate + gradients + VAWO
  double vawo_solve_s = 0.0;  ///< CTW/offset assignment inside prepare
  double program_s = 0.0;     ///< device programming per cycle
  double tune_s = 0.0;        ///< PWT (warm start + gradient epochs + snap)
  double eval_s = 0.0;        ///< test-set evaluation
  /// Wall time of each evaluate() call (latency samples for the BENCH
  /// `histograms` section). Volatile like the *_s sums above, so it is
  /// excluded from deploy_stats_json().
  std::vector<double> eval_seconds;

  // --- deterministic counters and traces ---
  std::int64_t cycles = 0;              ///< program_cycle() calls
  std::int64_t weights_programmed = 0;  ///< CTWs written across all cycles
  std::int64_t device_pulses = 0;       ///< per-cell programming pulses
  std::int64_t pwt_epochs = 0;
  std::int64_t pwt_batches = 0;
  std::int64_t pwt_offset_updates = 0;  ///< nonzero offset moves applied
  std::vector<float> pwt_epoch_loss;    ///< mean train loss per PWT epoch
  std::vector<float> eval_accuracy;     ///< one entry per evaluate() call

  /// Accumulate `other` into this record: times and counters add,
  /// traces append in call order. Used to fold per-trial stats into a
  /// per-point record deterministically (trials merge in trial order).
  void merge(const DeployStats& other);
};

/// Deterministic portion of a DeployStats as a JSON object (counters
/// and traces only — wall times are intentionally excluded so the
/// result can live in the deterministic `results` section).
[[nodiscard]] rdo::obs::Json deploy_stats_json(const DeployStats& s);

/// Fold the volatile wall times into a Recorder's phase table under
/// "deploy:*" names (aggregates across calls).
void add_deploy_phase_times(rdo::obs::Recorder& rec, const DeployStats& s);

/// One crossbar-mapped layer of the deployed network.
struct DeployedLayer {
  rdo::nn::MatrixOp* op = nullptr;
  rdo::quant::LayerQuant lq;       ///< NTWs + scale/zero
  VawoResult assign;               ///< CTWs, base offsets, complement flags
  std::vector<float> offsets;      ///< working offsets (tuned by PWT)
  std::vector<double> crw;         ///< measured CRWs of the current cycle
};

class Deployment {
 public:
  /// `net` must outlive the Deployment; its weights are replaced by the
  /// deployed effective weights until restore() (also called by the
  /// destructor).
  Deployment(rdo::nn::Layer& net, DeployOptions opt);
  ~Deployment();
  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  /// One-time preparation: quantize weights, calibrate activation
  /// quantizers, collect mean gradients and run VAWO (scheme-dependent).
  void prepare(const rdo::nn::DataView& train);

  /// Program every CTW once (one CCV cycle) and load the resulting
  /// effective weights into the network.
  void program_cycle(std::uint64_t cycle_salt);

  /// Post-writing tuning of the digital offsets (no-op unless the scheme
  /// includes PWT). Rounds offsets to the register grid when done.
  void tune(const rdo::nn::DataView& train);

  /// Test accuracy of the currently deployed network.
  float evaluate(const rdo::nn::DataView& test, std::int64_t batch = 64);

  /// Restore the original float weights.
  void restore();

  [[nodiscard]] const std::vector<DeployedLayer>& layers() const {
    return layers_;
  }
  std::vector<DeployedLayer>& mutable_layers() { return layers_; }
  [[nodiscard]] const rdo::rram::RLut& lut() const { return lut_; }
  [[nodiscard]] const rdo::rram::WeightProgrammer& programmer() const {
    return prog_;
  }
  [[nodiscard]] const DeployOptions& options() const { return opt_; }
  /// Per-phase wall times and deterministic pipeline counters,
  /// accumulated since construction.
  [[nodiscard]] const DeployStats& stats() const { return stats_; }

  /// Nominal device read power of the assigned CTWs (Table I numerator).
  [[nodiscard]] double assigned_read_power() const;
  /// Nominal device read power of the plain NTW assignment (denominator).
  [[nodiscard]] double plain_read_power() const;
  /// Crossbars needed to hold all layers (Table III accounting).
  [[nodiscard]] std::int64_t total_crossbars(int xbar_rows = 128,
                                             int xbar_cols = 128) const;
  /// Offset registers needed across all layers (Eq. 9 summed).
  [[nodiscard]] std::int64_t total_offset_registers() const;

 private:
  rdo::nn::Layer& net_;
  DeployOptions opt_;
  rdo::rram::WeightProgrammer prog_;
  DeployStats stats_;  ///< declared before lut_: timed during its init
  rdo::rram::RLut lut_;
  std::vector<DeployedLayer> layers_;
  std::vector<std::vector<float>> float_backup_;
  std::vector<rdo::quant::ActQuant*> act_quants_;
  bool prepared_ = false;
  bool weights_deployed_ = false;

  void apply_effective_weights();
  void apply_group_delta(DeployedLayer& dl, std::int64_t c, std::int64_t g,
                         float delta_b);
  void calibrate_act_quant(const rdo::nn::DataView& data);
  void run_pwt(const rdo::nn::DataView& train);  // defined in pwt.cpp
  double read_power_of(const std::vector<int>& weights) const;
};

/// Result of running one scheme over several programming cycles.
struct SchemeResult {
  float mean_accuracy = 0.0f;
  std::vector<float> per_cycle;
  /// Wall time of each program/tune/evaluate cycle (latency samples;
  /// volatile, slot order matches per_cycle for any thread count).
  std::vector<double> trial_seconds;
  /// Pipeline stats aggregated over the cycles (run_scheme) or merged
  /// over the independent trials in trial order (parallel harnesses).
  DeployStats stats;
  /// One entry per cycle/trial: empty string when the trial succeeded,
  /// the exception message otherwise (bench::run_grid records failures
  /// instead of aborting the whole grid).
  std::vector<std::string> errors;

  [[nodiscard]] bool failed() const {
    for (const std::string& e : errors) {
      if (!e.empty()) return true;
    }
    return false;
  }
};

/// Convenience harness: prepare once, then `repeats` program/tune/evaluate
/// cycles with distinct CCV draws; restores the network afterwards.
SchemeResult run_scheme(rdo::nn::Layer& net, const DeployOptions& opt,
                        const rdo::nn::DataView& train,
                        const rdo::nn::DataView& test, int repeats,
                        std::int64_t eval_batch = 64);

/// Parallel Monte-Carlo variant of run_scheme: the `repeats` programming
/// cycles are embarrassingly parallel (each cycle's devices are drawn
/// from Rng(seed).split(cycle)-derived streams and cycles share no
/// mutable state), so each trial runs as an independent task on a
/// private network produced by `make_net`.
///
/// `make_net` must return a fresh network in the same state run_scheme
/// would see (e.g. construct the architecture and nn::copy_state the
/// trained weights in); it is called concurrently from worker threads.
/// Every per-cycle accuracy is bit-identical to the serial run_scheme
/// for any thread count — prepare() is deterministic, and in the serial
/// harness each cycle already recomputes CRWs, offsets and effective
/// weights from scratch (asserted in tests/test_parallel.cpp).
SchemeResult run_scheme_parallel(
    const std::function<std::unique_ptr<rdo::nn::Layer>()>& make_net,
    const DeployOptions& opt, const rdo::nn::DataView& train,
    const rdo::nn::DataView& test, int repeats,
    std::int64_t eval_batch = 64);

}  // namespace rdo::core
