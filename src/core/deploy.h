// End-to-end deployment of a trained network onto variation-afflicted
// RRAM crossbars, with the paper's full scheme matrix:
//
//   Plain        CTW = NTW, no offsets            (baseline, §IV "plain")
//   VAWO         variation-aware CTWs + offsets   (§III-B)
//   VAWOStar     VAWO + weight complement         (§III-C, "VAWO*")
//   PWT          plain CTWs, offsets trained post-writing (§III-D)
//   VAWOStarPWT  VAWO* then PWT                   (§IV-A3, the full method)
//
// The pipeline is split into a compile stage and an execution stage:
// compile_plan() (core/plan.h) runs everything scheme-dependent but
// backend-independent once, and an ExecutionBackend (core/backend.h,
// sim/device_backend.h) realizes programming cycles from the shared
// plan:  compile_plan (once)  ->  program_cycle  ->  tune  ->  evaluate.
// CCV means every cycle lands different CRWs; cycles are independent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/offset.h"
#include "nn/layer.h"
#include "nn/trainer.h"
#include "obs/json.h"
#include "obs/recorder.h"
#include "rram/cell.h"
#include "rram/faults.h"
#include "rram/variation.h"

namespace rdo::core {

enum class Scheme { Plain, VAWO, VAWOStar, PWT, VAWOStarPWT };

const char* to_string(Scheme s);
/// Inverse of to_string(Scheme): accepts the canonical display names
/// ("plain", "VAWO", "VAWO*", "PWT", "VAWO*+PWT") case-insensitively, so
/// the lowercase command-line spellings parse too. Returns nullopt for
/// anything else.
std::optional<Scheme> parse_scheme(std::string_view s);
inline bool scheme_uses_vawo(Scheme s) {
  return s == Scheme::VAWO || s == Scheme::VAWOStar ||
         s == Scheme::VAWOStarPWT;
}
inline bool scheme_uses_complement(Scheme s) {
  return s == Scheme::VAWOStar || s == Scheme::VAWOStarPWT;
}
inline bool scheme_uses_pwt(Scheme s) {
  return s == Scheme::PWT || s == Scheme::VAWOStarPWT;
}

struct PwtOptions {
  int epochs = 2;
  /// Base step size in integer-offset units; gradients are RMS-normalized
  /// per layer each batch, so this is roughly "offset units moved per
  /// batch" (the practical choice of the paper's learning rate eta).
  float lr = 1.0f;
  std::int64_t batch_size = 32;
  std::int64_t max_samples = 0;  ///< 0 = full training set per epoch
  /// Warm-start each offset at the measured group-mean deviation
  /// mean_i(NTW_i - CRW_i) before gradient tuning. Pure posteriori
  /// knowledge (the same measurement PWT already requires) and the
  /// closed-form minimizer of the per-group weight MSE; backprop then
  /// refines it loss-aware. Disable for the strict gradient-only variant.
  bool mean_init = true;
};

/// Knobs of the shared compile/execute pipeline that every deployment
/// path consumes — the single source of truth for the LUT protocol, the
/// gradient-estimation budget and the master seed (the device simulator
/// reads them from the plan instead of carrying shadow copies).
struct PipelineConfig {
  /// LUT statistical-testing protocol (K device sets x J cycles per CTW).
  int lut_k_sets = 16;
  int lut_j_cycles = 8;
  /// Samples used to estimate the mean loss gradient for VAWO.
  std::int64_t grad_samples = 256;
  std::int64_t grad_batch = 32;
  std::uint64_t seed = 1;  ///< master seed (LUT build, programming base)
  /// Comma-separated optimizer pass list run over the compiled plan (see
  /// core/opt/pipeline.h; "" = no passes, plans are byte-identical to a
  /// build without the optimizer). Fed by the RDO_OPT_PASSES environment
  /// variable in rdo_experiment and the "opt_passes" serve config key;
  /// covered by plan_fingerprint so on-disk caches key on it.
  std::string opt_passes;
};

struct DeployOptions : PipelineConfig {
  Scheme scheme = Scheme::Plain;
  OffsetConfig offsets;                 ///< m and offset register width
  rdo::rram::CellModel cell;            ///< SLC or MLC2, ON/OFF ratio
  rdo::rram::VariationModel variation;  ///< sigma (and optional DDV split)
  rdo::rram::FaultModel faults;         ///< optional stuck-at-fault rates
  int weight_bits = 8;
  PwtOptions pwt;
  bool quantize_activations = true;
  bool penalize_bias = true;  ///< see VawoOptions
};

/// Per-deployment observability record, accumulated across the
/// compile -> program_cycle -> tune -> evaluate pipeline.
///
/// The struct is split along the determinism boundary of the BENCH_*.json
/// schema (see obs/report.h): wall times are volatile; every counter and
/// trace below them is derived from the seeded computation and is
/// bit-identical for any RDO_THREADS setting — and across execution
/// backends, which is what the parity suite gates.
struct DeployStats {
  // --- volatile wall times (seconds) ---
  double lut_build_s = 0.0;   ///< statistical LUT construction (K x J)
  double prepare_s = 0.0;     ///< quantize + calibrate + gradients + VAWO
  double vawo_solve_s = 0.0;  ///< CTW/offset assignment inside prepare
  double program_s = 0.0;     ///< device programming per cycle
  double tune_s = 0.0;        ///< PWT (warm start + gradient epochs + snap)
  double eval_s = 0.0;        ///< test-set evaluation
  /// Wall time of each evaluate() call (latency samples for the BENCH
  /// `histograms` section). Volatile like the *_s sums above, so it is
  /// excluded from deploy_stats_json().
  std::vector<double> eval_seconds;

  // --- cache-effectiveness counters (environment-dependent) ---
  // Hit/miss/save-failure counts of the opt-in on-disk caches
  // (RDO_LUT_CACHE_DIR, RDO_PLAN_CACHE_DIR). They depend on the on-disk
  // cache state, not on the seeded computation, so they belong to the
  // volatile half: excluded from deploy_stats_json() and from the
  // deterministic BENCH sections. Surface them with
  // add_deploy_cache_counters() where a shared-cache sweep wants to see
  // cache effectiveness.
  std::int64_t lut_cache_hits = 0;
  std::int64_t lut_cache_misses = 0;
  std::int64_t lut_cache_save_failures = 0;
  std::int64_t plan_cache_hits = 0;
  std::int64_t plan_cache_misses = 0;
  std::int64_t plan_cache_save_failures = 0;

  // --- deterministic counters and traces ---
  std::int64_t cycles = 0;              ///< program_cycle() calls
  std::int64_t weights_programmed = 0;  ///< CTWs written across all cycles
  std::int64_t device_pulses = 0;       ///< per-cell programming pulses
  std::int64_t pwt_epochs = 0;
  std::int64_t pwt_batches = 0;
  std::int64_t pwt_offset_updates = 0;  ///< nonzero offset moves applied
  std::vector<float> pwt_epoch_loss;    ///< mean train loss per PWT epoch
  std::vector<float> eval_accuracy;     ///< one entry per evaluate() call

  /// Accumulate `other` into this record: times and counters add,
  /// traces append in call order. Used to fold per-trial stats into a
  /// per-point record deterministically (trials merge in trial order).
  void merge(const DeployStats& other);
};

/// Deterministic portion of a DeployStats as a JSON object (counters
/// and traces only — wall times are intentionally excluded so the
/// result can live in the deterministic `results` section).
[[nodiscard]] rdo::obs::Json deploy_stats_json(const DeployStats& s);

/// Fold the volatile wall times into a Recorder's phase table under
/// "deploy:*" names (aggregates across calls).
void add_deploy_phase_times(rdo::obs::Recorder& rec, const DeployStats& s);

/// Surface the cache-effectiveness counters (lut_cache_* / plan_cache_*)
/// as Recorder counters. No-op when every counter is zero — a run
/// without RDO_LUT_CACHE_DIR / RDO_PLAN_CACHE_DIR configured emits no
/// cache counters at all, so committed BENCH baselines produced without
/// caches stay byte-identical.
void add_deploy_cache_counters(rdo::obs::Recorder& rec, const DeployStats& s);

/// Result of running one scheme over several programming cycles.
struct SchemeResult {
  float mean_accuracy = 0.0f;
  std::vector<float> per_cycle;
  /// Wall time of each program/tune/evaluate cycle (latency samples;
  /// volatile, slot order matches per_cycle for any thread count).
  std::vector<double> trial_seconds;
  /// Pipeline stats: the shared compile stage folded together with the
  /// cycles (run_scheme) or with the independent trials in trial order
  /// (parallel harnesses).
  DeployStats stats;
  /// One entry per cycle/trial: empty string when the trial succeeded,
  /// the exception message otherwise (bench::run_grid records failures
  /// instead of aborting the whole grid).
  std::vector<std::string> errors;

  [[nodiscard]] bool failed() const {
    for (const std::string& e : errors) {
      if (!e.empty()) return true;
    }
    return false;
  }
};

/// Convenience harness: compile the plan once, then run `repeats`
/// program/tune/evaluate cycles with distinct CCV draws on an
/// EffectiveWeightBackend. `net` is cloned internally and never modified.
SchemeResult run_scheme(const rdo::nn::Layer& net, const DeployOptions& opt,
                        const rdo::nn::DataView& train,
                        const rdo::nn::DataView& test, int repeats,
                        std::int64_t eval_batch = 64);

/// Parallel Monte-Carlo variant of run_scheme: the plan is compiled once
/// and shared read-only; the `repeats` programming cycles are
/// embarrassingly parallel (each cycle's devices are drawn from
/// Rng(seed).split(cycle)-derived streams and cycles share no mutable
/// state), so each trial runs as an independent EffectiveWeightBackend
/// over its own private clone of `net`. Every per-cycle accuracy is
/// bit-identical to the serial run_scheme for any thread count
/// (asserted in tests/test_parallel.cpp).
SchemeResult run_scheme_parallel(const rdo::nn::Layer& net,
                                 const DeployOptions& opt,
                                 const rdo::nn::DataView& train,
                                 const rdo::nn::DataView& test, int repeats,
                                 std::int64_t eval_batch = 64);

}  // namespace rdo::core
