// Elementwise activation layers and shape adapters.
#pragma once

#include "nn/layer.h"

namespace rdo::nn {

/// Rectified linear unit.
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>(*this);
  }
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;
};

/// Flattens [N, ...] to [N, features].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::int64_t> cached_shape_;
};

}  // namespace rdo::nn
