// Deterministic thread-pool execution layer.
//
// parallel_for(n, body) runs body(begin, end) over disjoint chunks that
// exactly cover [0, n). Each index is processed by exactly one task and
// the iteration order *within* a chunk is the serial order, so any loop
// whose chunks touch disjoint outputs produces bit-identical results for
// every thread count (including 1). All randomness in this repo flows
// through explicit Rng streams (see nn/rng.h) that are split per work
// item, never shared across tasks, so parallel Monte-Carlo trials are
// reproducible too.
//
// The pool size is resolved once from the RDO_THREADS environment
// variable (default: std::thread::hardware_concurrency) and can be
// overridden programmatically with set_thread_count. Nested parallel_for
// calls execute inline on the calling worker (no oversubscription, no
// deadlock).
#pragma once

#include <cstdint>
#include <functional>

namespace rdo::nn {

/// Number of threads parallel_for may use, including the calling thread
/// (always >= 1). Resolution order: set_thread_count override, then the
/// RDO_THREADS environment variable, then hardware_concurrency.
int thread_count();

/// Override the pool size. n >= 1 forces that many threads (1 = serial
/// execution); n <= 0 resets to the RDO_THREADS/hardware default. Must
/// not be called concurrently with a running parallel_for (intended for
/// harness setup and tests).
void set_thread_count(int n);

/// True while the calling thread executes inside a parallel_for body;
/// nested parallel_for calls detect this and run inline.
[[nodiscard]] bool in_parallel_region();

/// Cumulative execution-layer statistics since process start (or the
/// last reset_pool_stats()). Counters are advisory observability data:
/// they vary with thread count and load and belong in the *volatile*
/// `pool` section of structured reports, never in deterministic results.
struct PoolStats {
  std::int64_t parallel_loops = 0;   ///< loops dispatched to the pool
  std::int64_t inline_loops = 0;     ///< loops run inline (serial/nested/small)
  std::int64_t chunks_executed = 0;  ///< chunks retired across all loops
  std::int64_t chunks_stolen = 0;    ///< chunks claimed by helper workers
};

[[nodiscard]] PoolStats pool_stats();
void reset_pool_stats();

/// Chunked parallel loop over [0, n). `body(begin, end)` receives
/// half-open disjoint ranges covering [0, n); chunks are claimed by an
/// atomic counter (cheap work stealing) so load imbalance between chunks
/// is absorbed. `grain` is the minimum chunk length — raise it when one
/// iteration is tiny so dispatch overhead cannot dominate.
///
/// The first exception thrown by any chunk is rethrown on the calling
/// thread after all chunks finish. Runs inline when n <= grain, when the
/// pool has one thread, or when already inside a parallel region.
void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& body,
                  std::int64_t grain = 1);

}  // namespace rdo::nn
