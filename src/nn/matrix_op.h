// Interface implemented by layers whose weights map onto RRAM crossbars.
//
// The deployment pipeline (src/core) treats every Dense and Conv2D layer as
// a fan_in x fan_out weight matrix: rows drive crossbar wordlines, columns
// drive bitlines. This interface exposes that matrix view plus the matching
// gradient view, independent of how the layer stores its weights natively.
#pragma once

#include <cstdint>

#include "nn/param.h"

namespace rdo::nn {

class MatrixOp {
 public:
  virtual ~MatrixOp() = default;

  /// Number of matrix rows (= crossbar wordlines consumed).
  [[nodiscard]] virtual std::int64_t fan_in() const = 0;
  /// Number of matrix columns (= output channels / units).
  [[nodiscard]] virtual std::int64_t fan_out() const = 0;

  /// Read weight element at matrix position (row, col).
  [[nodiscard]] virtual float weight_at(std::int64_t row,
                                        std::int64_t col) const = 0;
  /// Write weight element at matrix position (row, col).
  virtual void set_weight_at(std::int64_t row, std::int64_t col, float v) = 0;

  /// Read the accumulated gradient at matrix position (row, col).
  [[nodiscard]] virtual float weight_grad_at(std::int64_t row,
                                             std::int64_t col) const = 0;

  /// The underlying weight parameter (for freezing / optimizer exclusion).
  virtual Param& weight_param() = 0;
};

}  // namespace rdo::nn
