#include "nn/gemm.h"

#include <cstring>

namespace rdo::nn {

void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // im2col matrices are often sparse (ReLU)
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m * n));
  gemm_accumulate(a, b, c, m, k, n);
}

void gemm_at_b_accumulate(const float* a, const float* b, float* c,
                          std::int64_t m, std::int64_t k, std::int64_t n) {
  // A is [K, M]; we compute C[i, j] += sum_p A[p, i] * B[p, j].
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt_accumulate(const float* a, const float* b, float* c,
                          std::int64_t m, std::int64_t k, std::int64_t n) {
  // B is [N, K]; we compute C[i, j] += sum_p A[i, p] * B[j, p].
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

}  // namespace rdo::nn
