#include "nn/gemm.h"

#include <algorithm>
#include <cstring>

#include "nn/parallel.h"

namespace rdo::nn {

namespace {

/// B-panel height kept hot in cache while sweeping a block of C rows.
/// Blocking over k only reorders *whole rows* of the p loop per output
/// element (p still increases monotonically), so results are bitwise
/// identical to the unblocked kernel.
constexpr std::int64_t kPanelK = 256;

/// Minimum multiply-adds one chunk should amortize the dispatch over.
constexpr std::int64_t kGrainFlops = 1 << 15;

std::int64_t row_grain(std::int64_t k, std::int64_t n) {
  const std::int64_t per_row = std::max<std::int64_t>(1, k * n);
  return std::max<std::int64_t>(1, kGrainFlops / per_row);
}

}  // namespace

void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  parallel_for(
      m,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t p0 = 0; p0 < k; p0 += kPanelK) {
          const std::int64_t p1 = std::min(k, p0 + kPanelK);
          for (std::int64_t i = i0; i < i1; ++i) {
            const float* arow = a + i * k;
            float* crow = c + i * n;
            for (std::int64_t p = p0; p < p1; ++p) {
              const float av = arow[p];
              // im2col matrices are often sparse (ReLU)
              if (av == 0.0f) continue;
              const float* brow = b + p * n;
              for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
            }
          }
        }
      },
      row_grain(k, n));
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m * n));
  gemm_accumulate(a, b, c, m, k, n);
}

void gemm_at_b_accumulate(const float* a, const float* b, float* c,
                          std::int64_t m, std::int64_t k, std::int64_t n) {
  // A is [K, M]; we compute C[i, j] += sum_p A[p, i] * B[p, j]. Each
  // chunk owns rows [i0, i1) of C and walks p in the serial order, so
  // every C element sees the exact serial accumulation sequence.
  parallel_for(
      m,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t p = 0; p < k; ++p) {
          const float* arow = a + p * m;
          const float* brow = b + p * n;
          for (std::int64_t i = i0; i < i1; ++i) {
            const float av = arow[i];
            if (av == 0.0f) continue;
            float* crow = c + i * n;
            for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      row_grain(k, n));
}

void gemm_a_bt_accumulate(const float* a, const float* b, float* c,
                          std::int64_t m, std::int64_t k, std::int64_t n) {
  // B is [N, K]; we compute C[i, j] += sum_p A[i, p] * B[j, p].
  parallel_for(
      m,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (std::int64_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            float acc = 0.0f;
            for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
            crow[j] += acc;
          }
        }
      },
      row_grain(k, n));
}

}  // namespace rdo::nn
