// Training / evaluation loops over in-memory datasets.
#pragma once

#include <vector>

#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/rng.h"

namespace rdo::nn {

/// A labelled dataset held fully in memory. `images` is [N, C, H, W] and
/// `labels[i]` is the class of sample i.
struct DataView {
  const Tensor* images = nullptr;
  const std::vector<int>* labels = nullptr;

  [[nodiscard]] std::int64_t size() const { return images->dim(0); }
};

struct EpochStats {
  float loss = 0.0f;
  float accuracy = 0.0f;
};

/// Assemble the batch with the given sample indices.
Tensor gather_batch(const Tensor& images, const std::vector<std::int64_t>& idx);

/// One shuffled training epoch of SGD.
EpochStats train_epoch(Layer& net, SGD& opt, const DataView& data,
                       std::int64_t batch_size, Rng& rng);

/// Accuracy (and mean loss) of `net` in eval mode.
EpochStats evaluate(Layer& net, const DataView& data, std::int64_t batch_size);

/// Accumulate dL/dparam averaged over the whole dataset into param.grad
/// (without taking optimizer steps). Used by VAWO, which needs the mean
/// gradient of every weight over the training set (paper §III-B).
///
/// Gradients are left in the params for the caller to read; any previous
/// gradient content is cleared first. `max_samples` (0 = all) limits the
/// pass for large datasets.
void accumulate_mean_gradients(Layer& net, const DataView& data,
                               std::int64_t batch_size,
                               std::int64_t max_samples = 0);

}  // namespace rdo::nn
