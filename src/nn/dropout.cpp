#include "nn/dropout.h"

#include <string>

#include "core/check.h"

namespace rdo::nn {

Tensor Dropout::forward(const Tensor& x, bool train) {
  RDO_CHECK(p_ >= 0.0f && p_ < 1.0f,
            "Dropout: p = " + std::to_string(p_) + " outside [0, 1)");
  last_train_ = train;
  if (!train || p_ == 0.0f) return x;
  const float keep = 1.0f - p_;
  mask_ = Tensor(x.shape());
  Tensor y = x;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    const bool kept = rng_.uniform() >= p_;
    mask_[i] = kept ? 1.0f / keep : 0.0f;
    y[i] *= mask_[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!last_train_ || p_ == 0.0f) return grad_out;
  Tensor g = grad_out;
  for (std::int64_t i = 0; i < g.size(); ++i) g[i] *= mask_[i];
  return g;
}

}  // namespace rdo::nn
