// Batch normalization over the channel dimension of NCHW tensors.
//
// In the deployed accelerator this op runs in the digital domain (as in
// ISAAC); it is therefore never mapped onto crossbars and is unaffected by
// device variation.
#pragma once

#include "nn/layer.h"

namespace rdo::nn {

class BatchNorm2D : public Layer {
 public:
  explicit BatchNorm2D(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> buffers() override {
    return {&running_mean_, &running_var_};
  }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<BatchNorm2D>(*this);
  }
  [[nodiscard]] std::string name() const override { return "BatchNorm2D"; }

 private:
  std::int64_t channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // Caches for backward.
  Tensor xhat_;
  std::vector<float> batch_inv_std_;
  std::vector<std::int64_t> in_shape_;
  bool last_train_ = true;
};

}  // namespace rdo::nn
