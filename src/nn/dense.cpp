#include "nn/dense.h"

#include "core/check.h"
#include "nn/gemm.h"

namespace rdo::nn {

Dense::Dense(std::int64_t in, std::int64_t out, Rng& rng, bool bias)
    : in_(in), out_(out), has_bias_(bias), weight_({in, out}), bias_({out}) {
  weight_.value.kaiming_init(rng, in);
  bias_.trainable = bias;
}

Tensor Dense::forward(const Tensor& x, bool /*train*/) {
  Tensor flat = x.rank() == 2 ? x : x.reshaped({x.dim(0), x.size() / x.dim(0)});
  RDO_CHECK(flat.dim(1) == in_,
            "Dense::forward: fan-in mismatch " + flat.shape_str());
  cached_in_ = flat;
  const std::int64_t n = flat.dim(0);
  Tensor y({n, out_});
  gemm(flat.data(), weight_.value.data(), y.data(), n, in_, out_);
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < out_; ++j) y.at(i, j) += bias_.value[j];
    }
  }
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  const std::int64_t n = cached_in_.dim(0);
  // dW[in, out] += X^T[in, n] * dY[n, out]
  gemm_at_b_accumulate(cached_in_.data(), grad_out.data(),
                       weight_.grad.data(), in_, n, out_);
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < out_; ++j) {
        bias_.grad[j] += grad_out.at(i, j);
      }
    }
  }
  // dX[n, in] = dY[n, out] * W^T[out, in]
  Tensor grad_in({n, in_});
  gemm_a_bt_accumulate(grad_out.data(), weight_.value.data(), grad_in.data(),
                       n, out_, in_);
  return grad_in;
}

std::vector<Param*> Dense::params() {
  std::vector<Param*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

}  // namespace rdo::nn
