#include "nn/batchnorm.h"

#include <cmath>

#include "core/check.h"

namespace rdo::nn {

BatchNorm2D::BatchNorm2D(std::int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({channels}),
      beta_({channels}),
      running_mean_({channels}),
      running_var_({channels}) {
  gamma_.value.fill(1.0f);
  running_var_.fill(1.0f);
}

Tensor BatchNorm2D::forward(const Tensor& x, bool train) {
  RDO_CHECK(x.rank() == 4 && x.dim(1) == channels_,
            "BatchNorm2D: bad input " + x.shape_str() + " for " +
                std::to_string(channels_) + " channels");
  in_shape_ = x.shape();
  last_train_ = train;
  const std::int64_t n = x.dim(0), hw = x.dim(2) * x.dim(3);
  const std::int64_t count = n * hw;
  Tensor y(x.shape());
  xhat_ = Tensor(x.shape());
  batch_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);

  for (std::int64_t c = 0; c < channels_; ++c) {
    float mean, var;
    if (train) {
      double m = 0.0;
      for (std::int64_t s = 0; s < n; ++s) {
        const float* img = x.data() + (s * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) m += img[i];
      }
      mean = static_cast<float>(m / static_cast<double>(count));
      double v = 0.0;
      for (std::int64_t s = 0; s < n; ++s) {
        const float* img = x.data() + (s * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          const double d = img[i] - mean;
          v += d * d;
        }
      }
      var = static_cast<float>(v / static_cast<double>(count));
      running_mean_[c] = (1 - momentum_) * running_mean_[c] + momentum_ * mean;
      running_var_[c] = (1 - momentum_) * running_var_[c] + momentum_ * var;
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    batch_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::int64_t s = 0; s < n; ++s) {
      const float* img = x.data() + (s * channels_ + c) * hw;
      float* xh = xhat_.data() + (s * channels_ + c) * hw;
      float* yo = y.data() + (s * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        xh[i] = (img[i] - mean) * inv_std;
        yo[i] = g * xh[i] + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2D::backward(const Tensor& grad_out) {
  const std::int64_t n = in_shape_[0], hw = in_shape_[2] * in_shape_[3];
  const std::int64_t count = n * hw;
  Tensor grad_in(in_shape_);
  for (std::int64_t c = 0; c < channels_; ++c) {
    // Accumulate dgamma, dbeta and the batch-statistics correction terms.
    double dg = 0.0, db = 0.0;
    for (std::int64_t s = 0; s < n; ++s) {
      const float* go = grad_out.data() + (s * channels_ + c) * hw;
      const float* xh = xhat_.data() + (s * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        dg += static_cast<double>(go[i]) * xh[i];
        db += go[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(dg);
    beta_.grad[c] += static_cast<float>(db);

    const float g = gamma_.value[c];
    const float inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
    const float inv_count = 1.0f / static_cast<float>(count);
    // In eval mode (PWT trains offsets against frozen running statistics)
    // mean/var are constants, so the batch-statistic correction terms
    // vanish.
    const float mg =
        last_train_ ? static_cast<float>(db) * inv_count : 0.0f;
    const float mgx =
        last_train_ ? static_cast<float>(dg) * inv_count : 0.0f;
    for (std::int64_t s = 0; s < n; ++s) {
      const float* go = grad_out.data() + (s * channels_ + c) * hw;
      const float* xh = xhat_.data() + (s * channels_ + c) * hw;
      float* gi = grad_in.data() + (s * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        gi[i] = g * inv_std * (go[i] - mg - xh[i] * mgx);
      }
    }
  }
  return grad_in;
}

}  // namespace rdo::nn
