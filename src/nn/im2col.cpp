#include "nn/im2col.h"

namespace rdo::nn {

void im2col(const float* in, std::int64_t c, std::int64_t h, std::int64_t w,
            std::int64_t kh, std::int64_t kw, std::int64_t stride,
            std::int64_t pad, float* out) {
  const std::int64_t oh = conv_out_dim(h, kh, stride, pad);
  const std::int64_t ow = conv_out_dim(w, kw, stride, pad);
  const std::int64_t row_len = c * kh * kw;
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      float* row = out + (oy * ow + ox) * row_len;
      std::int64_t idx = 0;
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float* img = in + ch * h * w;
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          const std::int64_t iy = oy * stride - pad + ky;
          for (std::int64_t kx = 0; kx < kw; ++kx, ++idx) {
            const std::int64_t ix = ox * stride - pad + kx;
            row[idx] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                           ? img[iy * w + ix]
                           : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, std::int64_t c, std::int64_t h, std::int64_t w,
            std::int64_t kh, std::int64_t kw, std::int64_t stride,
            std::int64_t pad, float* in_grad) {
  const std::int64_t oh = conv_out_dim(h, kh, stride, pad);
  const std::int64_t ow = conv_out_dim(w, kw, stride, pad);
  const std::int64_t row_len = c * kh * kw;
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      const float* row = cols + (oy * ow + ox) * row_len;
      std::int64_t idx = 0;
      for (std::int64_t ch = 0; ch < c; ++ch) {
        float* img = in_grad + ch * h * w;
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          const std::int64_t iy = oy * stride - pad + ky;
          for (std::int64_t kx = 0; kx < kw; ++kx, ++idx) {
            const std::int64_t ix = ox * stride - pad + kx;
            if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
              img[iy * w + ix] += row[idx];
            }
          }
        }
      }
    }
  }
}

}  // namespace rdo::nn
