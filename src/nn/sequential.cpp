#include "nn/sequential.h"

namespace rdo::nn {

void collect_layers(Layer* layer, std::vector<Layer*>& out) {
  out.push_back(layer);
  for (Layer* child : layer->children()) collect_layers(child, out);
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, train);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::buffers() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* b : l->buffers()) out.push_back(b);
  }
  return out;
}

std::vector<Layer*> Sequential::children() {
  std::vector<Layer*> out;
  out.reserve(layers_.size());
  for (auto& l : layers_) out.push_back(l.get());
  return out;
}

std::unique_ptr<Layer> Sequential::clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const LayerPtr& l : layers_) copy->layers_.push_back(l->clone());
  return copy;
}

Tensor Residual::forward(const Tensor& x, bool train) {
  Tensor main_out = main_->forward(x, train);
  Tensor short_out = shortcut_ ? shortcut_->forward(x, train) : x;
  Tensor y = main_out;
  y.axpy(1.0f, short_out);
  relu_mask_ = Tensor(y.shape());
  for (std::int64_t i = 0; i < y.size(); ++i) {
    if (y[i] > 0.0f) {
      relu_mask_[i] = 1.0f;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::int64_t i = 0; i < g.size(); ++i) g[i] *= relu_mask_[i];
  Tensor grad_main = main_->backward(g);
  if (shortcut_) {
    Tensor grad_short = shortcut_->backward(g);
    grad_main.axpy(1.0f, grad_short);
  } else {
    grad_main.axpy(1.0f, g);
  }
  return grad_main;
}

std::vector<Param*> Residual::params() {
  std::vector<Param*> out = main_->params();
  if (shortcut_) {
    for (Param* p : shortcut_->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Residual::buffers() {
  std::vector<Tensor*> out = main_->buffers();
  if (shortcut_) {
    for (Tensor* b : shortcut_->buffers()) out.push_back(b);
  }
  return out;
}

std::vector<Layer*> Residual::children() {
  std::vector<Layer*> out{main_.get()};
  if (shortcut_) out.push_back(shortcut_.get());
  return out;
}

std::unique_ptr<Layer> Residual::clone() const {
  auto copy = std::make_unique<Residual>(
      main_->clone(), shortcut_ ? shortcut_->clone() : nullptr);
  copy->relu_mask_ = relu_mask_;
  return copy;
}

}  // namespace rdo::nn
