#include "nn/loss.h"

#include <cmath>

#include "core/check.h"

namespace rdo::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<int>& labels) {
  RDO_CHECK(logits.rank() == 2 &&
                logits.dim(0) == static_cast<std::int64_t>(labels.size()),
            "SoftmaxCrossEntropy: logits " + logits.shape_str() + " vs " +
                std::to_string(labels.size()) + " labels");
  const std::int64_t n = logits.dim(0), k = logits.dim(1);
  probs_ = Tensor({n, k});
  labels_ = labels;
  correct_ = 0;
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    float maxv = logits.at(i, 0);
    std::int64_t arg = 0;
    for (std::int64_t j = 1; j < k; ++j) {
      if (logits.at(i, j) > maxv) {
        maxv = logits.at(i, j);
        arg = j;
      }
    }
    if (arg == labels[static_cast<std::size_t>(i)]) ++correct_;
    double z = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      const double e = std::exp(static_cast<double>(logits.at(i, j) - maxv));
      probs_.at(i, j) = static_cast<float>(e);
      z += e;
    }
    for (std::int64_t j = 0; j < k; ++j) {
      probs_.at(i, j) = static_cast<float>(probs_.at(i, j) / z);
    }
    const float p = probs_.at(i, labels[static_cast<std::size_t>(i)]);
    total += -std::log(std::max(p, 1e-12f));
  }
  return static_cast<float>(total / static_cast<double>(n));
}

Tensor SoftmaxCrossEntropy::backward() const {
  const std::int64_t n = probs_.dim(0), k = probs_.dim(1);
  Tensor g = probs_;
  const float inv = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    g.at(i, labels_[static_cast<std::size_t>(i)]) -= 1.0f;
    for (std::int64_t j = 0; j < k; ++j) g.at(i, j) *= inv;
  }
  return g;
}

}  // namespace rdo::nn
