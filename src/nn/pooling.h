// Spatial pooling layers over NCHW tensors.
#pragma once

#include "nn/layer.h"

namespace rdo::nn {

/// Non-overlapping max pooling with a square window.
class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(std::int64_t window) : window_(window) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2D"; }
  [[nodiscard]] std::int64_t window() const { return window_; }

 private:
  std::int64_t window_;
  std::vector<std::int64_t> argmax_;
  std::vector<std::int64_t> in_shape_;
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<std::int64_t> in_shape_;
};

}  // namespace rdo::nn
