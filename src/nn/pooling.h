// Spatial pooling layers over NCHW tensors.
#pragma once

#include <cstdint>
#include <limits>

#include "nn/layer.h"

namespace rdo::nn {

/// Non-overlapping square-window max pool over one [C, H, W] image.
/// `out` receives [C, H/window, W/window] in row-major order; when
/// `argmax` is non-null it receives, per output element, the index of
/// the winning input within this image.
///
/// Single source of truth for max-pool semantics: both the float
/// MaxPool2D layer and the device-level simulator (sim::NetworkExecutor)
/// call this, so the two paths cannot drift (parity is asserted in
/// tests/test_equivalence.cpp).
template <typename T>
inline void maxpool2d_image(const T* in, std::int64_t c, std::int64_t h,
                            std::int64_t w, std::int64_t window, T* out,
                            std::int64_t* argmax = nullptr) {
  const std::int64_t oh = h / window, ow = w / window;
  std::int64_t oi = 0;
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const T* img = in + ch * h * w;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++oi) {
        T best = -std::numeric_limits<T>::infinity();
        std::int64_t best_idx = 0;
        for (std::int64_t ky = 0; ky < window; ++ky) {
          for (std::int64_t kx = 0; kx < window; ++kx) {
            const std::int64_t iy = oy * window + ky;
            const std::int64_t ix = ox * window + kx;
            const T v = img[iy * w + ix];
            if (v > best) {
              best = v;
              best_idx = ch * h * w + iy * w + ix;
            }
          }
        }
        out[oi] = best;
        if (argmax != nullptr) argmax[oi] = best_idx;
      }
    }
  }
}

/// Non-overlapping max pooling with a square window.
class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(std::int64_t window) : window_(window) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2D>(*this);
  }
  [[nodiscard]] std::string name() const override { return "MaxPool2D"; }
  [[nodiscard]] std::int64_t window() const { return window_; }

 private:
  std::int64_t window_;
  std::vector<std::int64_t> argmax_;
  std::vector<std::int64_t> in_shape_;
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPool>(*this);
  }
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<std::int64_t> in_shape_;
};

}  // namespace rdo::nn
