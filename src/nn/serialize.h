// Binary save/load of network parameters.
//
// Used by the benchmark harnesses to train each model once and reuse the
// weights across experiment binaries. The format stores every Param of the
// network in definition order; load requires an identically-constructed
// network.
#pragma once

#include <string>

#include "nn/layer.h"

namespace rdo::nn {

/// Save all parameters of `net` to `path`. Throws on I/O failure.
void save_params(Layer& net, const std::string& path);

/// Load parameters saved by save_params. Returns false if the file does
/// not exist; throws if it exists but does not match the network.
bool load_params(Layer& net, const std::string& path);

/// Copy every parameter and buffer (e.g. batch-norm running statistics)
/// from `src` into the identically-constructed network `dst`. Used to
/// clone a trained network for parallel Monte-Carlo deployment trials;
/// `src` is only read, so several clones may be taken concurrently.
/// Throws if the two networks do not match.
void copy_state(Layer& dst, Layer& src);

}  // namespace rdo::nn
