// Binary save/load of network parameters.
//
// Used by the benchmark harnesses to train each model once and reuse the
// weights across experiment binaries. The format stores every Param of the
// network in definition order; load requires an identically-constructed
// network.
//
// The load path treats the file as untrusted input: every read is
// validated against the stream state, every declared size is bounded by
// the bytes actually remaining, and trailing bytes are rejected. A file
// that is corrupt, truncated, oversized or mismatched raises
// SerializeError — never a partially-updated network or silent garbage.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "nn/layer.h"

namespace rdo::nn {

/// Raised by the load path on a corrupt, truncated or mismatched model
/// file. Derives from std::runtime_error so existing catch sites keep
/// working; a distinct type so callers can tell bad input from other I/O
/// failures.
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Save all parameters of `net` to `path`. Throws on I/O failure.
void save_params(Layer& net, const std::string& path);

/// Load parameters saved by save_params. Returns false if the file does
/// not exist; throws SerializeError if it exists but is corrupt,
/// truncated, carries trailing bytes, or does not match the network.
bool load_params(Layer& net, const std::string& path);

/// Stream form of the loader: parse one complete save_params document
/// from `in` (which must support seeking, e.g. an open binary ifstream or
/// an istringstream). `source` names the stream in error messages.
/// Throws SerializeError on any malformed input. This is the single
/// parsing path — the path overload and the fuzz harness both call it.
void load_params(Layer& net, std::istream& in, const std::string& source);

/// Copy every parameter and buffer (e.g. batch-norm running statistics)
/// from `src` into the identically-constructed network `dst`. Used to
/// clone a trained network for parallel Monte-Carlo deployment trials;
/// `src` is only read, so several clones may be taken concurrently.
/// Throws if the two networks do not match.
void copy_state(Layer& dst, Layer& src);

}  // namespace rdo::nn
