// Learning-rate schedules for the training substrate.
#pragma once

#include <cmath>
#include <string>

#include "core/check.h"

namespace rdo::nn {

/// Step decay: lr = base * gamma^(epoch / step_every).
class StepDecay {
 public:
  StepDecay(float base_lr, int step_every, float gamma = 0.1f)
      : base_(base_lr), every_(step_every), gamma_(gamma) {
    RDO_CHECK(step_every > 0, "StepDecay: step_every = " +
                                  std::to_string(step_every) + " <= 0");
  }
  [[nodiscard]] float at(int epoch) const {
    return base_ * std::pow(gamma_, static_cast<float>(epoch / every_));
  }

 private:
  float base_;
  int every_;
  float gamma_;
};

/// Cosine annealing from base_lr to min_lr over total_epochs.
class CosineDecay {
 public:
  CosineDecay(float base_lr, int total_epochs, float min_lr = 0.0f)
      : base_(base_lr), total_(total_epochs), min_(min_lr) {
    RDO_CHECK(total_epochs > 0, "CosineDecay: total_epochs = " +
                                    std::to_string(total_epochs) + " <= 0");
  }
  [[nodiscard]] float at(int epoch) const {
    if (epoch >= total_) return min_;
    const float t = static_cast<float>(epoch) / static_cast<float>(total_);
    return min_ + 0.5f * (base_ - min_) *
                      (1.0f + std::cos(3.14159265358979f * t));
  }

 private:
  float base_;
  int total_;
  float min_;
};

/// Linear warmup into a wrapped schedule.
template <typename Schedule>
class Warmup {
 public:
  Warmup(Schedule inner, int warmup_epochs)
      : inner_(inner), warmup_(warmup_epochs) {}
  [[nodiscard]] float at(int epoch) const {
    if (warmup_ > 0 && epoch < warmup_) {
      return inner_.at(warmup_) * static_cast<float>(epoch + 1) /
             static_cast<float>(warmup_);
    }
    return inner_.at(epoch);
  }

 private:
  Schedule inner_;
  int warmup_;
};

}  // namespace rdo::nn
