#include "nn/conv2d.h"

#include <vector>

#include "core/check.h"
#include "nn/gemm.h"
#include "nn/im2col.h"

namespace rdo::nn {

Conv2D::Conv2D(std::int64_t in_ch, std::int64_t out_ch, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad, Rng& rng, bool bias)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      weight_({in_ch * kernel * kernel, out_ch}),
      bias_({out_ch}) {
  weight_.value.kaiming_init(rng, fan_in());
  bias_.trainable = bias;
}

Tensor Conv2D::forward(const Tensor& x, bool /*train*/) {
  RDO_CHECK(x.rank() == 4 && x.dim(1) == in_ch_,
            "Conv2D::forward: bad input " + x.shape_str() + " for " +
                std::to_string(in_ch_) + " input channels");
  cached_in_ = x;
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = conv_out_dim(h, kernel_, stride_, pad_);
  const std::int64_t ow = conv_out_dim(w, kernel_, stride_, pad_);
  const std::int64_t positions = oh * ow;
  const std::int64_t fin = fan_in();

  Tensor y({n, out_ch_, oh, ow});
  std::vector<float> cols(static_cast<std::size_t>(positions * fin));
  std::vector<float> ymat(static_cast<std::size_t>(positions * out_ch_));
  for (std::int64_t s = 0; s < n; ++s) {
    im2col(x.data() + s * in_ch_ * h * w, in_ch_, h, w, kernel_, kernel_,
           stride_, pad_, cols.data());
    gemm(cols.data(), weight_.value.data(), ymat.data(), positions, fin,
         out_ch_);
    float* ys = y.data() + s * out_ch_ * positions;
    for (std::int64_t p = 0; p < positions; ++p) {
      const float* row = ymat.data() + p * out_ch_;
      for (std::int64_t oc = 0; oc < out_ch_; ++oc) {
        ys[oc * positions + p] =
            row[oc] + (has_bias_ ? bias_.value[oc] : 0.0f);
      }
    }
  }
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  const Tensor& x = cached_in_;
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  const std::int64_t positions = oh * ow;
  const std::int64_t fin = fan_in();

  Tensor grad_in({n, in_ch_, h, w});
  std::vector<float> cols(static_cast<std::size_t>(positions * fin));
  std::vector<float> gmat(static_cast<std::size_t>(positions * out_ch_));
  std::vector<float> dcols(static_cast<std::size_t>(positions * fin));
  for (std::int64_t s = 0; s < n; ++s) {
    // Recompute im2col (cheaper than caching it for every layer).
    im2col(x.data() + s * in_ch_ * h * w, in_ch_, h, w, kernel_, kernel_,
           stride_, pad_, cols.data());
    // Transpose grad_out[s] from [oc, positions] to [positions, oc].
    const float* gs = grad_out.data() + s * out_ch_ * positions;
    for (std::int64_t oc = 0; oc < out_ch_; ++oc) {
      for (std::int64_t p = 0; p < positions; ++p) {
        gmat[static_cast<std::size_t>(p * out_ch_ + oc)] =
            gs[oc * positions + p];
      }
    }
    // dW += cols^T * G
    gemm_at_b_accumulate(cols.data(), gmat.data(), weight_.grad.data(), fin,
                         positions, out_ch_);
    if (has_bias_) {
      for (std::int64_t oc = 0; oc < out_ch_; ++oc) {
        float acc = 0.0f;
        for (std::int64_t p = 0; p < positions; ++p) {
          acc += gs[oc * positions + p];
        }
        bias_.grad[oc] += acc;
      }
    }
    // dcols = G * W^T, then scatter back to the input gradient.
    std::fill(dcols.begin(), dcols.end(), 0.0f);
    gemm_a_bt_accumulate(gmat.data(), weight_.value.data(), dcols.data(),
                         positions, out_ch_, fin);
    col2im(dcols.data(), in_ch_, h, w, kernel_, kernel_, stride_, pad_,
           grad_in.data() + s * in_ch_ * h * w);
  }
  return grad_in;
}

std::vector<Param*> Conv2D::params() {
  std::vector<Param*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

}  // namespace rdo::nn
