// Minimal dense float tensor used by the NN substrate.
//
// Row-major contiguous storage, shapes up to rank 4 in practice
// (N, C, H, W). This is deliberately a simple value type: copies are deep,
// moves are cheap, and all indexing is contract-checked via RDO_DCHECK in
// debug/sanitizer builds (free in Release — see core/check.h).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "core/check.h"
#include "nn/rng.h"

namespace rdo::nn {

/// Dense row-major float tensor.
class Tensor {
 public:
  Tensor() = default;

  /// Construct a zero-filled tensor with the given shape.
  explicit Tensor(std::vector<std::int64_t> shape);
  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  /// Total number of elements.
  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] const std::vector<std::int64_t>& shape() const {
    return shape_;
  }
  [[nodiscard]] std::int64_t dim(int i) const {
    RDO_DCHECK(i >= 0 && i < static_cast<int>(shape_.size()),
               "Tensor::dim: axis " + std::to_string(i) + " of rank " +
                   std::to_string(shape_.size()));
    return shape_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int rank() const { return static_cast<int>(shape_.size()); }

  float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) {
    RDO_DCHECK(i >= 0 && i < size(), "Tensor[]: index out of range");
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    RDO_DCHECK(i >= 0 && i < size(), "Tensor[]: index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D indexing (matrix of shape [d0, d1]).
  float& at(std::int64_t i, std::int64_t j) {
    RDO_DCHECK(rank() == 2, "Tensor::at(i,j) on shape " + shape_str());
    RDO_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
               "Tensor::at: (i,j) out of range");
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }
  float at(std::int64_t i, std::int64_t j) const {
    RDO_DCHECK(rank() == 2, "Tensor::at(i,j) on shape " + shape_str());
    RDO_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
               "Tensor::at: (i,j) out of range");
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }

  /// 4-D indexing (n, c, h, w).
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    RDO_DCHECK(rank() == 4, "Tensor::at(n,c,h,w) on shape " + shape_str());
    RDO_DCHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] &&
                   h >= 0 && h < shape_[2] && w >= 0 && w < shape_[3],
               "Tensor::at: (n,c,h,w) out of range");
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float at(std::int64_t n, std::int64_t c, std::int64_t h,
           std::int64_t w) const {
    RDO_DCHECK(rank() == 4, "Tensor::at(n,c,h,w) on shape " + shape_str());
    RDO_DCHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] &&
                   h >= 0 && h < shape_[2] && w >= 0 && w < shape_[3],
               "Tensor::at: (n,c,h,w) out of range");
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  /// Reinterpret with a new shape of the same total size.
  [[nodiscard]] Tensor reshaped(std::vector<std::int64_t> new_shape) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  /// Kaiming-uniform initialization with the given fan-in.
  void kaiming_init(Rng& rng, std::int64_t fan_in);
  /// Uniform init in [lo, hi).
  void uniform_init(Rng& rng, float lo, float hi);

  /// Elementwise accumulate: *this += a * other.
  void axpy(float a, const Tensor& other);
  /// Elementwise scale.
  void scale(float a);

  [[nodiscard]] float max_abs() const;
  [[nodiscard]] float sum() const;
  [[nodiscard]] std::string shape_str() const;

  static std::int64_t numel(const std::vector<std::int64_t>& shape) {
    return std::accumulate(shape.begin(), shape.end(),
                           static_cast<std::int64_t>(1),
                           [](std::int64_t a, std::int64_t b) { return a * b; });
  }

 private:
  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace rdo::nn
