// Adam optimizer (Kingma & Ba) — an alternative to SGD for the training
// substrate; useful where SGD's learning rate is hard to tune (e.g. the
// deeper scaled models).
#pragma once

#include <vector>

#include "nn/param.h"

namespace rdo::nn {

class Adam {
 public:
  explicit Adam(std::vector<Param*> params, float lr = 1e-3f,
                float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f,
                float weight_decay = 0.0f);

  /// Apply one update using the accumulated gradients, then zero them.
  void step();
  void zero_grad();

  void set_lr(float lr) { lr_ = lr; }
  [[nodiscard]] float lr() const { return lr_; }
  [[nodiscard]] long step_count() const { return t_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  long t_ = 0;
};

}  // namespace rdo::nn
