// Layer interface for the define-by-structure network graph.
//
// Layers own their parameters and cache whatever they need from `forward`
// to compute `backward`. The graph is static (Sequential + nested blocks);
// this is all the autograd the reproduction needs, and it keeps gradient
// flow explicit — which matters because PWT (post-writing tuning) re-uses
// exactly this path to train digital offsets.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/param.h"
#include "nn/tensor.h"

namespace rdo::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `train` enables training-time behaviour (e.g. batch-norm
  /// batch statistics). Implementations must cache inputs needed by
  /// backward.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Backward pass: consumes dL/d(output), accumulates parameter gradients,
  /// returns dL/d(input). Must be called after a matching forward.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// All trainable parameters of this layer (including nested layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Persistent non-trainable state (e.g. batch-norm running statistics).
  /// Serialized alongside params so a saved model evaluates identically
  /// after loading.
  virtual std::vector<Tensor*> buffers() { return {}; }

  /// Direct child layers (for recursive traversal of blocks).
  virtual std::vector<Layer*> children() { return {}; }

  /// Deep copy: an independent, identically-constructed layer holding
  /// copies of all parameters and buffers. The deployment pipeline uses
  /// this to work on a private twin of a trained network, so the caller's
  /// network is never mutated.
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Recursively collect `layer` and all transitive children in definition
/// order.
void collect_layers(Layer* layer, std::vector<Layer*>& out);

}  // namespace rdo::nn
