#include "nn/optimizer.h"

namespace rdo::nn {

SGD::SGD(std::vector<Param*> params, float lr, float momentum,
         float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    if (!p->trainable) continue;
    Tensor& v = velocity_[i];
    for (std::int64_t j = 0; j < p->value.size(); ++j) {
      const float g = p->grad[j] + weight_decay_ * p->value[j];
      v[j] = momentum_ * v[j] + g;
      p->value[j] -= lr_ * v[j];
    }
  }
  zero_grad();
}

void SGD::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

}  // namespace rdo::nn
