#include "nn/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/envvar.h"
#include "obs/trace.h"

namespace rdo::nn {

namespace {

thread_local bool tls_in_parallel = false;

int default_thread_count() {
  if (const char* s = rdo::obs::env_knob("RDO_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end != s && v >= 1) {
      return static_cast<int>(std::min<long>(v, 512));
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

std::atomic<int> g_thread_override{0};  // <= 0: use the env/hw default

// Execution-layer statistics (see PoolStats). Relaxed atomics: the
// counts are observability data, not synchronization.
std::atomic<std::int64_t> g_parallel_loops{0};
std::atomic<std::int64_t> g_inline_loops{0};
std::atomic<std::int64_t> g_chunks_executed{0};
std::atomic<std::int64_t> g_chunks_stolen{0};

/// One parallel_for invocation. Chunks are claimed with an atomic
/// counter; completion is signalled when the last chunk retires, so the
/// caller never waits on helper threads that found nothing to steal.
struct ForLoop {
  std::int64_t n = 0;
  std::int64_t chunk = 1;
  std::int64_t num_chunks = 0;
  const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure wins; guarded by mu

  void work(bool helper) {
    const bool was_in_parallel = tls_in_parallel;
    tls_in_parallel = true;
    for (;;) {
      const std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_chunks) break;
      const std::int64_t begin = i * chunk;
      const std::int64_t end = std::min(n, begin + chunk);
      rdo::obs::TraceSpan span("pool:chunk", "pool");
      span.arg("begin", begin);
      span.arg("end", end);
      try {
        (*body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      // Stats are bumped per chunk, sequenced before this chunk's `done`
      // increment: once the waiter has observed every chunk retire, every
      // stats increment happened-before it as well, so a
      // reset_pool_stats() issued after the loop returns can never race a
      // straggler's deferred flush and leak counts into the next window.
      g_chunks_executed.fetch_add(1, std::memory_order_relaxed);
      if (helper) g_chunks_stolen.fetch_add(1, std::memory_order_relaxed);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(mu);  // pairs with the waiter
        cv.notify_all();
      }
    }
    tls_in_parallel = was_in_parallel;
  }
};

/// Lazily started persistent worker pool. Workers pull whole ForLoops
/// from a queue and drain chunks from them; several concurrent
/// parallel_for calls (from distinct user threads) simply enqueue more
/// entries.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void post(const std::shared_ptr<ForLoop>& loop, int copies) {
    std::unique_lock<std::mutex> lock(mu_);
    ensure_workers(copies);
    for (int i = 0; i < copies; ++i) queue_.push_back(loop);
    lock.unlock();
    cv_.notify_all();
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

 private:
  // Grow-only: shrinking would require draining in-flight work; unused
  // workers just sleep on the queue.
  void ensure_workers(int target) {
    while (static_cast<int>(workers_.size()) < target) {
      // Worker i owns trace track i+1 for its whole lifetime (track 0
      // is the first unbound thread, normally main), so spans stay on
      // stable per-worker rows across trace start/stop cycles.
      const int idx = static_cast<int>(workers_.size()) + 1;
      workers_.emplace_back([this, idx] {
        rdo::obs::trace_bind_thread(idx,
                                    "pool-worker-" + std::to_string(idx));
        worker_main();
      });
    }
  }

  void worker_main() {
    for (;;) {
      std::shared_ptr<ForLoop> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task->work(/*helper=*/true);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<ForLoop>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace

int thread_count() {
  const int override = g_thread_override.load(std::memory_order_relaxed);
  if (override >= 1) return override;
  static const int resolved = default_thread_count();
  return resolved;
}

void set_thread_count(int n) {
  g_thread_override.store(n >= 1 ? n : 0, std::memory_order_relaxed);
}

bool in_parallel_region() { return tls_in_parallel; }

PoolStats pool_stats() {
  PoolStats s;
  s.parallel_loops = g_parallel_loops.load(std::memory_order_relaxed);
  s.inline_loops = g_inline_loops.load(std::memory_order_relaxed);
  s.chunks_executed = g_chunks_executed.load(std::memory_order_relaxed);
  s.chunks_stolen = g_chunks_stolen.load(std::memory_order_relaxed);
  return s;
}

void reset_pool_stats() {
  g_parallel_loops.store(0, std::memory_order_relaxed);
  g_inline_loops.store(0, std::memory_order_relaxed);
  g_chunks_executed.store(0, std::memory_order_relaxed);
  g_chunks_stolen.store(0, std::memory_order_relaxed);
}

void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& body,
                  std::int64_t grain) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int threads = thread_count();
  if (threads <= 1 || tls_in_parallel || n <= grain) {
    g_inline_loops.fetch_add(1, std::memory_order_relaxed);
    body(0, n);
    return;
  }
  g_parallel_loops.fetch_add(1, std::memory_order_relaxed);
  rdo::obs::TraceSpan span("pool:parallel_for", "pool");
  auto loop = std::make_shared<ForLoop>();
  loop->n = n;
  // ~4 chunks per thread absorbs per-chunk load imbalance without
  // shrinking chunks below `grain`.
  loop->chunk = std::max<std::int64_t>(
      grain, (n + static_cast<std::int64_t>(threads) * 4 - 1) /
                 (static_cast<std::int64_t>(threads) * 4));
  loop->num_chunks = (n + loop->chunk - 1) / loop->chunk;
  loop->body = &body;
  span.arg("n", n);
  span.arg("chunks", loop->num_chunks);
  span.arg("grain", grain);
  const int helpers = static_cast<int>(std::min<std::int64_t>(
      threads - 1, loop->num_chunks - 1));
  if (helpers > 0) Pool::instance().post(loop, helpers);
  loop->work(/*helper=*/false);  // the caller is a worker too
  {
    std::unique_lock<std::mutex> lock(loop->mu);
    loop->cv.wait(lock, [&] {
      return loop->done.load(std::memory_order_acquire) == loop->num_chunks;
    });
  }
  if (span.active()) {
    rdo::obs::trace_counter(
        "pool_chunks_executed",
        g_chunks_executed.load(std::memory_order_relaxed));
    rdo::obs::trace_counter(
        "pool_chunks_stolen",
        g_chunks_stolen.load(std::memory_order_relaxed));
  }
  if (loop->error) std::rethrow_exception(loop->error);
}

}  // namespace rdo::nn
