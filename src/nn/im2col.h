// im2col / col2im transforms for convolution lowering.
#pragma once

#include <cstdint>

namespace rdo::nn {

/// Expand input patch columns:
///   in  : [C, H, W] (single image)
///   out : [OH*OW, C*KH*KW] row-major; each row is one output position's
///         receptive field, flattened channel-major.
/// Zero padding `pad` on both sides, stride `stride`.
void im2col(const float* in, std::int64_t c, std::int64_t h, std::int64_t w,
            std::int64_t kh, std::int64_t kw, std::int64_t stride,
            std::int64_t pad, float* out);

/// Inverse scatter-add of im2col: accumulates columns back into the image
/// gradient. `in_grad` must be pre-zeroed by the caller.
void col2im(const float* cols, std::int64_t c, std::int64_t h, std::int64_t w,
            std::int64_t kh, std::int64_t kw, std::int64_t stride,
            std::int64_t pad, float* in_grad);

/// Output spatial size of a convolution dimension.
inline std::int64_t conv_out_dim(std::int64_t in, std::int64_t k,
                                 std::int64_t stride, std::int64_t pad) {
  return (in + 2 * pad - k) / stride + 1;
}

}  // namespace rdo::nn
