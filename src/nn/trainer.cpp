#include "nn/trainer.h"

#include <algorithm>
#include <numeric>

namespace rdo::nn {

Tensor gather_batch(const Tensor& images,
                    const std::vector<std::int64_t>& idx) {
  std::vector<std::int64_t> shape = images.shape();
  shape[0] = static_cast<std::int64_t>(idx.size());
  Tensor batch(shape);
  const std::int64_t stride = images.size() / images.dim(0);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const float* src = images.data() + idx[i] * stride;
    float* dst = batch.data() + static_cast<std::int64_t>(i) * stride;
    std::copy(src, src + stride, dst);
  }
  return batch;
}

EpochStats train_epoch(Layer& net, SGD& opt, const DataView& data,
                       std::int64_t batch_size, Rng& rng) {
  const std::int64_t n = data.size();
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  SoftmaxCrossEntropy loss;
  double total_loss = 0.0;
  std::int64_t total_correct = 0, batches = 0;
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const std::int64_t end = std::min(n, start + batch_size);
    std::vector<std::int64_t> idx(order.begin() + start, order.begin() + end);
    Tensor batch = gather_batch(*data.images, idx);
    std::vector<int> labels;
    labels.reserve(idx.size());
    for (std::int64_t i : idx) {
      labels.push_back((*data.labels)[static_cast<std::size_t>(i)]);
    }
    Tensor logits = net.forward(batch, /*train=*/true);
    total_loss += loss.forward(logits, labels);
    total_correct += loss.correct();
    net.backward(loss.backward());
    opt.step();
    ++batches;
  }
  return {static_cast<float>(total_loss /
                             static_cast<double>(std::max<std::int64_t>(
                                 1, batches))),
          static_cast<float>(total_correct) / static_cast<float>(n)};
}

EpochStats evaluate(Layer& net, const DataView& data,
                    std::int64_t batch_size) {
  const std::int64_t n = data.size();
  SoftmaxCrossEntropy loss;
  double total_loss = 0.0;
  std::int64_t total_correct = 0, batches = 0;
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const std::int64_t end = std::min(n, start + batch_size);
    std::vector<std::int64_t> idx;
    for (std::int64_t i = start; i < end; ++i) idx.push_back(i);
    Tensor batch = gather_batch(*data.images, idx);
    std::vector<int> labels(data.labels->begin() + start,
                            data.labels->begin() + end);
    Tensor logits = net.forward(batch, /*train=*/false);
    total_loss += loss.forward(logits, labels);
    total_correct += loss.correct();
    ++batches;
  }
  return {static_cast<float>(total_loss /
                             static_cast<double>(std::max<std::int64_t>(
                                 1, batches))),
          static_cast<float>(total_correct) / static_cast<float>(n)};
}

void accumulate_mean_gradients(Layer& net, const DataView& data,
                               std::int64_t batch_size,
                               std::int64_t max_samples) {
  for (Param* p : net.params()) p->zero_grad();
  const std::int64_t n = max_samples > 0
                             ? std::min<std::int64_t>(max_samples, data.size())
                             : data.size();
  SoftmaxCrossEntropy loss;
  std::int64_t batches = 0;
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const std::int64_t end = std::min(n, start + batch_size);
    std::vector<std::int64_t> idx;
    for (std::int64_t i = start; i < end; ++i) idx.push_back(i);
    Tensor batch = gather_batch(*data.images, idx);
    std::vector<int> labels(data.labels->begin() + start,
                            data.labels->begin() + end);
    // Eval-mode forward: the gradients should describe the deployed
    // network's operating point (frozen batch-norm statistics).
    Tensor logits = net.forward(batch, /*train=*/false);
    loss.forward(logits, labels);
    net.backward(loss.backward());
    ++batches;
  }
  if (batches > 1) {
    const float inv = 1.0f / static_cast<float>(batches);
    for (Param* p : net.params()) p->grad.scale(inv);
  }
}

}  // namespace rdo::nn
