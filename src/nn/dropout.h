// Inverted dropout (train-time regularization for the deeper scaled
// models; identity at inference).
#pragma once

#include "nn/layer.h"
#include "nn/rng.h"

namespace rdo::nn {

class Dropout : public Layer {
 public:
  /// `p` is the drop probability; the kept activations are scaled by
  /// 1/(1-p) (inverted dropout), so inference needs no rescaling.
  Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dropout>(*this);
  }
  [[nodiscard]] std::string name() const override { return "Dropout"; }

  [[nodiscard]] float drop_probability() const { return p_; }

 private:
  float p_;
  Rng rng_;
  Tensor mask_;
  bool last_train_ = false;
};

}  // namespace rdo::nn
