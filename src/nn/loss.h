// Softmax cross-entropy loss (the paper trains with cross-entropy).
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace rdo::nn {

/// Softmax + cross-entropy over logits [N, classes].
class SoftmaxCrossEntropy {
 public:
  /// Returns mean loss over the batch; caches probabilities for backward.
  float forward(const Tensor& logits, const std::vector<int>& labels);

  /// Returns dL/dlogits for the cached forward (mean reduction).
  [[nodiscard]] Tensor backward() const;

  /// Number of correct argmax predictions in the cached batch.
  [[nodiscard]] int correct() const { return correct_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
  int correct_ = 0;
};

}  // namespace rdo::nn
