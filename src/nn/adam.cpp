#include "nn/adam.h"

#include <cmath>

namespace rdo::nn {

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    if (!p->trainable) continue;
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::int64_t j = 0; j < p->value.size(); ++j) {
      const float g = p->grad[j] + weight_decay_ * p->value[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      p->value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  zero_grad();
}

void Adam::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

}  // namespace rdo::nn
