#include "nn/pooling.h"

#include <limits>

#include "core/check.h"

namespace rdo::nn {

Tensor MaxPool2D::forward(const Tensor& x, bool /*train*/) {
  RDO_CHECK(x.rank() == 4, "MaxPool2D: input rank " +
                               std::to_string(x.rank()) + " != 4");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = h / window_, ow = w / window_;
  in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(y.size()), 0);
  const std::int64_t in_plane = c * h * w;
  const std::int64_t out_plane = c * oh * ow;
  for (std::int64_t s = 0; s < n; ++s) {
    std::int64_t* amax = argmax_.data() + s * out_plane;
    maxpool2d_image(x.data() + s * in_plane, c, h, w, window_,
                    y.data() + s * out_plane, amax);
    // The helper reports indices within the image; backward() needs them
    // within the batch tensor.
    for (std::int64_t i = 0; i < out_plane; ++i) amax[i] += s * in_plane;
  }
  return y;
}

Tensor MaxPool2D::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (std::int64_t i = 0; i < grad_out.size(); ++i) {
    grad_in[argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  }
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool /*train*/) {
  RDO_CHECK(x.rank() == 4, "GlobalAvgPool: input rank " +
                               std::to_string(x.rank()) + " != 4");
  in_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* img = x.data() + (s * c + ch) * hw;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < hw; ++i) acc += img[i];
      y.at(s, ch) = acc / static_cast<float>(hw);
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  const std::int64_t n = in_shape_[0], c = in_shape_[1],
                     hw = in_shape_[2] * in_shape_[3];
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at(s, ch) * inv;
      float* img = grad_in.data() + (s * c + ch) * hw;
      for (std::int64_t i = 0; i < hw; ++i) img[i] = g;
    }
  }
  return grad_in;
}

}  // namespace rdo::nn
