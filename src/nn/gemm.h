// Blocked, parallel GEMM kernels used by Dense and Conv2D layers.
//
// Kernels keep the ikj loop order (-O3 auto-vectorized inner j loop),
// block over k to keep the B panel cache-resident, and tile the M
// dimension across the nn/parallel.h thread pool. Every output row is
// owned by exactly one chunk and the per-element accumulation order is
// unchanged, so results are bit-identical to the serial kernels for any
// thread count (see tests/test_parallel.cpp). Small problems run inline.
#pragma once

#include <cstdint>

namespace rdo::nn {

/// C[M,N] += A[M,K] * B[K,N]  (row-major, C must be pre-initialized).
void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n);

/// C[M,N] = A[M,K] * B[K,N]  (row-major, C overwritten).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

/// C[M,N] += A^T[M,K] * B[K,N] where A is stored as [K,M] row-major.
void gemm_at_b_accumulate(const float* a, const float* b, float* c,
                          std::int64_t m, std::int64_t k, std::int64_t n);

/// C[M,N] += A[M,K] * B^T[K,N] where B is stored as [N,K] row-major.
void gemm_a_bt_accumulate(const float* a, const float* b, float* c,
                          std::int64_t m, std::int64_t k, std::int64_t n);

}  // namespace rdo::nn
