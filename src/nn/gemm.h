// Small single-threaded GEMM kernels used by Dense and Conv2D layers.
//
// These are deliberately simple (ikj loop order, -O3 auto-vectorized) —
// adequate for the scaled-down networks this reproduction trains on a
// single CPU core.
#pragma once

#include <cstdint>

namespace rdo::nn {

/// C[M,N] += A[M,K] * B[K,N]  (row-major, C must be pre-initialized).
void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n);

/// C[M,N] = A[M,K] * B[K,N]  (row-major, C overwritten).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

/// C[M,N] += A^T[M,K] * B[K,N] where A is stored as [K,M] row-major.
void gemm_at_b_accumulate(const float* a, const float* b, float* c,
                          std::int64_t m, std::int64_t k, std::int64_t n);

/// C[M,N] += A[M,K] * B^T[K,N] where B is stored as [N,K] row-major.
void gemm_a_bt_accumulate(const float* a, const float* b, float* c,
                          std::int64_t m, std::int64_t k, std::int64_t n);

}  // namespace rdo::nn
