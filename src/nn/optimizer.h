// SGD optimizer with momentum and weight decay.
#pragma once

#include <vector>

#include "nn/param.h"

namespace rdo::nn {

class SGD {
 public:
  SGD(std::vector<Param*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);

  /// Apply one update using the accumulated gradients, then zero them.
  void step();
  void zero_grad();

  void set_lr(float lr) { lr_ = lr; }
  [[nodiscard]] float lr() const { return lr_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  float lr_, momentum_, weight_decay_;
};

}  // namespace rdo::nn
