// Trainable parameter: a value tensor plus its accumulated gradient.
#pragma once

#include "nn/tensor.h"

namespace rdo::nn {

/// A trainable parameter. `grad` has the same shape as `value` and is
/// accumulated by Layer::backward; optimizers consume and zero it.
struct Param {
  Tensor value;
  Tensor grad;
  bool trainable = true;

  explicit Param(std::vector<std::int64_t> shape)
      : value(shape), grad(std::move(shape)) {}
  Param() = default;

  void zero_grad() { grad.zero(); }
};

}  // namespace rdo::nn
