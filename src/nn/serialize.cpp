#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <stdexcept>
#include <vector>

namespace rdo::nn {

namespace {
constexpr std::uint32_t kMagic = 0x52444F32;  // "RDO2"
constexpr std::uint64_t kHeaderBytes =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);

void write_tensor(std::ofstream& f, const Tensor& t) {
  const std::uint64_t size = static_cast<std::uint64_t>(t.size());
  f.write(reinterpret_cast<const char*>(&size), sizeof(size));
  f.write(reinterpret_cast<const char*>(t.data()),
          static_cast<std::streamsize>(size * sizeof(float)));
}

/// Read exactly `n` bytes or throw; the stream state is validated after
/// every read so a truncated file can never feed uninitialized memory
/// into the network.
void read_exact(std::istream& f, void* dst, std::size_t n,
                const std::string& source) {
  f.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (!f || f.gcount() != static_cast<std::streamsize>(n)) {
    throw SerializeError("load_params: truncated read in " + source);
  }
}

/// Bytes between the current position and end-of-stream. Requires a
/// seekable stream; every declared count in the header is bounded
/// against this before it is believed.
std::uint64_t remaining_bytes(std::istream& f, const std::string& source) {
  const std::istream::pos_type pos = f.tellg();
  f.seekg(0, std::ios::end);
  const std::istream::pos_type end = f.tellg();
  f.seekg(pos);
  if (pos == std::istream::pos_type(-1) || end == std::istream::pos_type(-1) ||
      !f || end < pos) {
    throw SerializeError("load_params: unseekable stream " + source);
  }
  return static_cast<std::uint64_t>(end - pos);
}

/// Parse one stored tensor into `stage` (not the live network — the load
/// is transactional, see load_params). The expected element count comes
/// from the destination tensor, so a hostile size is rejected before any
/// payload is consumed, and the declared payload is bounded by the bytes
/// actually present.
void read_tensor(std::istream& f, const Tensor& expect,
                 std::vector<float>& stage, std::uint64_t& budget,
                 const std::string& source) {
  std::uint64_t size = 0;
  if (budget < sizeof(size)) {
    throw SerializeError("load_params: truncated tensor header in " + source);
  }
  read_exact(f, &size, sizeof(size), source);
  budget -= sizeof(size);
  if (size != static_cast<std::uint64_t>(expect.size())) {
    throw SerializeError("load_params: tensor size mismatch in " + source);
  }
  if (size > budget / sizeof(float)) {
    throw SerializeError("load_params: tensor payload exceeds file size in " +
                         source);
  }
  stage.resize(static_cast<std::size_t>(size));
  read_exact(f, stage.data(), static_cast<std::size_t>(size) * sizeof(float),
             source);
  budget -= size * sizeof(float);
}

}  // namespace

void save_params(Layer& net, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("save_params: cannot open " + path);
  const auto params = net.params();
  const auto buffers = net.buffers();
  const std::uint64_t pcount = params.size();
  const std::uint64_t bcount = buffers.size();
  f.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  f.write(reinterpret_cast<const char*>(&pcount), sizeof(pcount));
  f.write(reinterpret_cast<const char*>(&bcount), sizeof(bcount));
  for (Param* p : params) write_tensor(f, p->value);
  for (Tensor* b : buffers) write_tensor(f, *b);
  if (!f) throw std::runtime_error("save_params: write failed for " + path);
}

void load_params(Layer& net, std::istream& in, const std::string& source) {
  std::uint64_t budget = remaining_bytes(in, source);
  if (budget < kHeaderBytes) {
    throw SerializeError("load_params: " + source +
                         " is too small to hold a header");
  }
  std::uint32_t magic = 0;
  std::uint64_t pcount = 0, bcount = 0;
  read_exact(in, &magic, sizeof(magic), source);
  read_exact(in, &pcount, sizeof(pcount), source);
  read_exact(in, &bcount, sizeof(bcount), source);
  budget -= kHeaderBytes;
  if (magic != kMagic) {
    throw SerializeError("load_params: " + source + " has a bad magic");
  }
  const auto params = net.params();
  const auto buffers = net.buffers();
  if (pcount != params.size() || bcount != buffers.size()) {
    throw SerializeError("load_params: " + source +
                         " does not match the network");
  }
  // Each stored tensor carries at least an 8-byte length; an oversized
  // header count is rejected before any tensor data is consumed.
  const std::uint64_t tensors = pcount + bcount;
  if (tensors > budget / sizeof(std::uint64_t)) {
    throw SerializeError("load_params: " + source +
                         " declares more tensors than the file can hold");
  }
  // Stage the whole document first, commit only once every tensor has
  // validated — a file rejected half-way never leaves the network
  // partially overwritten.
  std::vector<std::vector<float>> pstage(params.size());
  std::vector<std::vector<float>> bstage(buffers.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    read_tensor(in, params[i]->value, pstage[i], budget, source);
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    read_tensor(in, *buffers[i], bstage[i], budget, source);
  }
  if (budget != 0 || in.peek() != std::istream::traits_type::eof()) {
    throw SerializeError("load_params: trailing bytes in " + source);
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* dst = params[i]->value.data();
    for (std::size_t j = 0; j < pstage[i].size(); ++j) dst[j] = pstage[i][j];
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    float* dst = buffers[i]->data();
    for (std::size_t j = 0; j < bstage[i].size(); ++j) dst[j] = bstage[i][j];
  }
}

bool load_params(Layer& net, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  load_params(net, f, path);
  return true;
}

void copy_state(Layer& dst, Layer& src) {
  const auto dst_params = dst.params();
  const auto src_params = src.params();
  const auto dst_buffers = dst.buffers();
  const auto src_buffers = src.buffers();
  if (dst_params.size() != src_params.size() ||
      dst_buffers.size() != src_buffers.size()) {
    throw std::runtime_error("copy_state: networks do not match");
  }
  for (std::size_t i = 0; i < dst_params.size(); ++i) {
    if (dst_params[i]->value.size() != src_params[i]->value.size()) {
      throw std::runtime_error("copy_state: parameter size mismatch");
    }
    dst_params[i]->value = src_params[i]->value;
  }
  for (std::size_t i = 0; i < dst_buffers.size(); ++i) {
    if (dst_buffers[i]->size() != src_buffers[i]->size()) {
      throw std::runtime_error("copy_state: buffer size mismatch");
    }
    *dst_buffers[i] = *src_buffers[i];
  }
}

}  // namespace rdo::nn
