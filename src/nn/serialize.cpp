#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace rdo::nn {

namespace {
constexpr std::uint32_t kMagic = 0x52444F32;  // "RDO2"

void write_tensor(std::ofstream& f, const Tensor& t) {
  const std::uint64_t size = static_cast<std::uint64_t>(t.size());
  f.write(reinterpret_cast<const char*>(&size), sizeof(size));
  f.write(reinterpret_cast<const char*>(t.data()),
          static_cast<std::streamsize>(size * sizeof(float)));
}

void read_tensor(std::ifstream& f, Tensor& t, const std::string& path) {
  std::uint64_t size = 0;
  f.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (size != static_cast<std::uint64_t>(t.size())) {
    throw std::runtime_error("load_params: tensor size mismatch in " + path);
  }
  f.read(reinterpret_cast<char*>(t.data()),
         static_cast<std::streamsize>(size * sizeof(float)));
}

}  // namespace

void save_params(Layer& net, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("save_params: cannot open " + path);
  const auto params = net.params();
  const auto buffers = net.buffers();
  const std::uint64_t pcount = params.size();
  const std::uint64_t bcount = buffers.size();
  f.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  f.write(reinterpret_cast<const char*>(&pcount), sizeof(pcount));
  f.write(reinterpret_cast<const char*>(&bcount), sizeof(bcount));
  for (Param* p : params) write_tensor(f, p->value);
  for (Tensor* b : buffers) write_tensor(f, *b);
  if (!f) throw std::runtime_error("save_params: write failed for " + path);
}

bool load_params(Layer& net, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::uint32_t magic = 0;
  std::uint64_t pcount = 0, bcount = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&pcount), sizeof(pcount));
  f.read(reinterpret_cast<char*>(&bcount), sizeof(bcount));
  const auto params = net.params();
  const auto buffers = net.buffers();
  if (magic != kMagic || pcount != params.size() ||
      bcount != buffers.size()) {
    throw std::runtime_error("load_params: " + path +
                             " does not match the network");
  }
  for (Param* p : params) read_tensor(f, p->value, path);
  for (Tensor* b : buffers) read_tensor(f, *b, path);
  if (!f) throw std::runtime_error("load_params: truncated file " + path);
  return true;
}

void copy_state(Layer& dst, Layer& src) {
  const auto dst_params = dst.params();
  const auto src_params = src.params();
  const auto dst_buffers = dst.buffers();
  const auto src_buffers = src.buffers();
  if (dst_params.size() != src_params.size() ||
      dst_buffers.size() != src_buffers.size()) {
    throw std::runtime_error("copy_state: networks do not match");
  }
  for (std::size_t i = 0; i < dst_params.size(); ++i) {
    if (dst_params[i]->value.size() != src_params[i]->value.size()) {
      throw std::runtime_error("copy_state: parameter size mismatch");
    }
    dst_params[i]->value = src_params[i]->value;
  }
  for (std::size_t i = 0; i < dst_buffers.size(); ++i) {
    if (dst_buffers[i]->size() != src_buffers[i]->size()) {
      throw std::runtime_error("copy_state: buffer size mismatch");
    }
    *dst_buffers[i] = *src_buffers[i];
  }
}

}  // namespace rdo::nn
