#include "nn/activations.h"

namespace rdo::nn {

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  mask_ = Tensor(x.shape());
  for (std::int64_t i = 0; i < y.size(); ++i) {
    if (y[i] > 0.0f) {
      mask_[i] = 1.0f;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::int64_t i = 0; i < g.size(); ++i) g[i] *= mask_[i];
  return g;
}

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  cached_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.size() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_shape_);
}

}  // namespace rdo::nn
