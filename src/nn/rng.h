// Deterministic random number generation for the whole project.
//
// Every stochastic component (weight init, dataset synthesis, device
// variation, Monte-Carlo LUT building) takes an explicit `Rng` or seed, so
// experiments are exactly reproducible.  No component may seed from the
// wall clock or from std::random_device.
#pragma once

#include <cstdint>
#include <random>

namespace rdo::nn {

/// Seeded pseudo-random generator with the distributions used in this repo.
///
/// A thin wrapper over std::mt19937_64 that also supports deriving
/// independent child streams (`split`) so that, e.g., each programming
/// cycle of a crossbar gets its own stream derived from one master seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derive an independent child stream. Deterministic in (seed, salt).
  [[nodiscard]] Rng split(std::uint64_t salt) const {
    // SplitMix64-style mixing of seed and salt.
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z = z ^ (z >> 31);
    return Rng(z);
  }

  /// Standard normal sample scaled to N(mean, stddev^2).
  double normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace rdo::nn
