#include "nn/tensor.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace rdo::nn {

Tensor::Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
  for (std::int64_t d : shape_) {
    RDO_CHECK(d > 0, "Tensor: non-positive dimension in " + shape_str());
  }
  data_.assign(static_cast<std::size_t>(numel(shape_)), 0.0f);
}

Tensor Tensor::reshaped(std::vector<std::int64_t> new_shape) const {
  RDO_CHECK(numel(new_shape) == size(),
            "Tensor::reshaped: " + shape_str() + " holds " +
                std::to_string(size()) + " elements, new shape needs " +
                std::to_string(numel(new_shape)));
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::kaiming_init(Rng& rng, std::int64_t fan_in) {
  // Kaiming-normal: trained networks have concentrated, heavy-centered
  // weight distributions; a normal init reproduces that statistic, which
  // matters downstream (quantization ranges, VAWO's low-conductance CTW
  // choices).
  const float std_dev =
      std::sqrt(2.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
  for (auto& x : data_) {
    x = static_cast<float>(rng.normal(0.0, std_dev));
  }
}

void Tensor::uniform_init(Rng& rng, float lo, float hi) {
  for (auto& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::axpy(float a, const Tensor& other) {
  RDO_CHECK(other.size() == size(),
            "Tensor::axpy: " + shape_str() + " += a * " + other.shape_str());
  for (std::int64_t i = 0; i < size(); ++i) {
    data_[static_cast<std::size_t>(i)] +=
        a * other.data_[static_cast<std::size_t>(i)];
  }
}

void Tensor::scale(float a) {
  for (auto& x : data_) x *= a;
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

float Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace rdo::nn
