// Sequential container and residual block.
#pragma once

#include <memory>
#include <utility>

#include "nn/layer.h"

namespace rdo::nn {

/// Linear chain of layers.
class Sequential : public Layer {
 public:
  Sequential() = default;

  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }
  void push(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::vector<Tensor*> buffers() override;
  std::vector<Layer*> children() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }

 private:
  std::vector<LayerPtr> layers_;
};

/// Residual block: y = ReLU(main(x) + shortcut(x)).
///
/// `shortcut` may be empty (identity) or a projection (1x1 conv + BN).
class Residual : public Layer {
 public:
  Residual(LayerPtr main, LayerPtr shortcut)
      : main_(std::move(main)), shortcut_(std::move(shortcut)) {}
  explicit Residual(LayerPtr main) : main_(std::move(main)) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::vector<Tensor*> buffers() override;
  std::vector<Layer*> children() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Residual"; }

 private:
  LayerPtr main_;
  LayerPtr shortcut_;  // nullptr => identity
  Tensor relu_mask_;
};

}  // namespace rdo::nn
