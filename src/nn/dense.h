// Fully-connected layer.
#pragma once

#include "nn/layer.h"
#include "nn/matrix_op.h"
#include "nn/rng.h"

namespace rdo::nn {

/// Dense (fully connected) layer: y = x W + bias.
///
/// Weight is stored as [in, out] — directly the crossbar matrix orientation
/// (rows = wordlines, columns = bitlines), so MatrixOp accessors are
/// trivial.
class Dense : public Layer, public MatrixOp {
 public:
  Dense(std::int64_t in, std::int64_t out, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dense>(*this);
  }
  [[nodiscard]] std::string name() const override { return "Dense"; }

  // MatrixOp
  [[nodiscard]] std::int64_t fan_in() const override { return in_; }
  [[nodiscard]] std::int64_t fan_out() const override { return out_; }
  [[nodiscard]] float weight_at(std::int64_t row,
                                std::int64_t col) const override {
    return weight_.value.at(row, col);
  }
  void set_weight_at(std::int64_t row, std::int64_t col, float v) override {
    weight_.value.at(row, col) = v;
  }
  [[nodiscard]] float weight_grad_at(std::int64_t row,
                                     std::int64_t col) const override {
    return weight_.grad.at(row, col);
  }
  Param& weight_param() override { return weight_; }
  Param& bias_param() { return bias_; }

 private:
  std::int64_t in_ = 0;
  std::int64_t out_ = 0;
  bool has_bias_ = true;
  Param weight_;
  Param bias_;
  Tensor cached_in_;
};

}  // namespace rdo::nn
