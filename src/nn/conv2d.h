// 2-D convolution layer lowered to GEMM via im2col.
#pragma once

#include "nn/layer.h"
#include "nn/matrix_op.h"
#include "nn/rng.h"

namespace rdo::nn {

/// Conv2D over NCHW inputs.
///
/// The weight is stored directly in crossbar-matrix orientation
/// [fan_in = C*KH*KW, fan_out = OC]: rows are flattened receptive-field
/// positions (the values driven onto wordlines after im2col), columns are
/// output channels (bitlines). This makes the MatrixOp view an identity
/// mapping, exactly how ISAAC maps convolutions onto crossbars.
class Conv2D : public Layer, public MatrixOp {
 public:
  Conv2D(std::int64_t in_ch, std::int64_t out_ch, std::int64_t kernel,
         std::int64_t stride, std::int64_t pad, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2D>(*this);
  }
  [[nodiscard]] std::string name() const override { return "Conv2D"; }

  // MatrixOp
  [[nodiscard]] std::int64_t fan_in() const override {
    return in_ch_ * kernel_ * kernel_;
  }
  [[nodiscard]] std::int64_t fan_out() const override { return out_ch_; }
  [[nodiscard]] float weight_at(std::int64_t row,
                                std::int64_t col) const override {
    return weight_.value.at(row, col);
  }
  void set_weight_at(std::int64_t row, std::int64_t col, float v) override {
    weight_.value.at(row, col) = v;
  }
  [[nodiscard]] float weight_grad_at(std::int64_t row,
                                     std::int64_t col) const override {
    return weight_.grad.at(row, col);
  }
  Param& weight_param() override { return weight_; }
  Param& bias_param() { return bias_; }

  [[nodiscard]] std::int64_t kernel() const { return kernel_; }
  [[nodiscard]] std::int64_t stride() const { return stride_; }
  [[nodiscard]] std::int64_t pad() const { return pad_; }

 private:
  std::int64_t in_ch_, out_ch_, kernel_, stride_, pad_;
  bool has_bias_;
  Param weight_;  // [fan_in, out_ch]
  Param bias_;    // [out_ch]
  Tensor cached_in_;
};

}  // namespace rdo::nn
