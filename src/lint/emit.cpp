#include "lint/emit.h"

#include <cstdio>

namespace rdo::lint {

std::string format_text(const std::vector<Finding>& findings,
                        int files_scanned) {
  std::string out;
  std::size_t shown = 0;
  for (const Finding& f : findings) {
    if (f.baselined) continue;
    out += f.file;
    out += ':';
    out += std::to_string(f.line);
    out += ": [";
    out += f.rule;
    out += "] ";
    out += f.message;
    out += '\n';
    ++shown;
  }
  out += "rdo_lint: " + std::to_string(files_scanned) + " file(s), " +
         std::to_string(shown) + " violation(s)\n";
  return out;
}

rdo::obs::Json findings_json(const std::vector<Finding>& findings) {
  rdo::obs::Json doc = rdo::obs::Json::object();
  doc["version"] = 1;
  rdo::obs::Json arr = rdo::obs::Json::array();
  for (const Finding& f : findings) {
    rdo::obs::Json j = rdo::obs::Json::object();
    j["file"] = f.file;
    j["line"] = f.line;
    j["col"] = f.col;
    j["rule"] = f.rule;
    j["message"] = f.message;
    j["context"] = f.context;
    j["baselined"] = f.baselined;
    arr.push_back(std::move(j));
  }
  doc["findings"] = std::move(arr);
  return doc;
}

rdo::obs::Json sarif_document(const Engine& engine,
                              const std::vector<Finding>& findings,
                              bool baseline_used) {
  using rdo::obs::Json;

  Json rules = Json::array();
  const auto rule_meta = [](const char* id, const char* desc) {
    Json r = Json::object();
    r["id"] = id;
    Json short_desc = Json::object();
    short_desc["text"] = desc;
    r["shortDescription"] = std::move(short_desc);
    Json cfg = Json::object();
    cfg["level"] = "error";
    r["defaultConfiguration"] = std::move(cfg);
    return r;
  };
  std::vector<std::string> rule_ids;
  for (const auto& r : engine.rules()) {
    rules.push_back(rule_meta(r->name(), r->description()));
    rule_ids.emplace_back(r->name());
  }
  rules.push_back(rule_meta(kUnusedSuppression,
                            "a rdo-lint suppression comment that "
                            "suppressed no finding"));
  rule_ids.emplace_back(kUnusedSuppression);
  rules.push_back(rule_meta(kMalformedSuppression,
                            "a rdo-lint suppression comment the engine "
                            "could not parse"));
  rule_ids.emplace_back(kMalformedSuppression);

  Json driver = Json::object();
  driver["name"] = "rdo_lint";
  driver["informationUri"] =
      "https://github.com/rram-digital-offset/reproduction";
  driver["version"] = "2.0.0";
  driver["rules"] = std::move(rules);
  Json tool = Json::object();
  tool["driver"] = std::move(driver);

  Json results = Json::array();
  for (const Finding& f : findings) {
    Json res = Json::object();
    res["ruleId"] = f.rule;
    // ruleIndex lets viewers join results to the rule table without a
    // linear scan.
    for (std::size_t k = 0; k < rule_ids.size(); ++k) {
      if (rule_ids[k] == f.rule) {
        res["ruleIndex"] = static_cast<std::int64_t>(k);
        break;
      }
    }
    res["level"] = "error";
    Json msg = Json::object();
    msg["text"] = f.message;
    res["message"] = std::move(msg);
    Json artifact = Json::object();
    artifact["uri"] = f.file;
    Json region = Json::object();
    region["startLine"] = f.line;
    region["startColumn"] = f.col;
    Json physical = Json::object();
    physical["artifactLocation"] = std::move(artifact);
    physical["region"] = std::move(region);
    Json loc = Json::object();
    loc["physicalLocation"] = std::move(physical);
    Json locs = Json::array();
    locs.push_back(std::move(loc));
    res["locations"] = std::move(locs);
    if (baseline_used) {
      res["baselineState"] = f.baselined ? "unchanged" : "new";
    }
    results.push_back(std::move(res));
  }

  Json run = Json::object();
  run["tool"] = std::move(tool);
  run["columnKind"] = "utf16CodeUnits";
  run["results"] = std::move(results);
  Json runs = Json::array();
  runs.push_back(std::move(run));

  Json doc = Json::object();
  doc["$schema"] =
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json";
  doc["version"] = "2.1.0";
  doc["runs"] = std::move(runs);
  return doc;
}

}  // namespace rdo::lint
