// The built-in rule catalogue. Every rule encodes a contract the
// compiler cannot see (see DESIGN.md §5 for the catalogue and the
// policy for adding one):
//
//   naked-read         PR 5: unchecked stream reads become silent garbage
//   nondeterminism     PR 1/4: all randomness must come from seeded Rng
//   unordered-iter     PR 2: hashed iteration order leaks into BENCH
//   unbudgeted-alloc   PR 5/7: parsed counts must be bounded before they
//                      size an allocation
//   float-reduce-order PR 1: shared accumulators inside parallel_for
//                      bodies break bit-determinism
//   metric-name        PR 8: MetricsRegistry naming convention
//   unspanned-phase    PR 3: phase timers must be trace-visible
//   pass-invariant     PR 9: every optimizer pass asserts an invariant
//   naked-getenv       env knobs read through one blessed choke point
//
// The first three are token ports of the PR 5 regex lint; their
// messages and per-line reporting are kept byte-compatible, pinned by
// the legacy-parity fixture tree (tests/data/lint/legacy).
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lint/engine.h"
#include "lint/rule.h"

namespace rdo::lint {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

/// One finding per (rule, line), matching the old per-line regex scan.
bool already_on_line(const std::vector<Finding>& out, const char* rule,
                     int line) {
  for (auto it = out.rbegin(); it != out.rend(); ++it) {
    if (it->line < line) break;
    if (it->line == line && it->rule == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// naked-read — legacy rule 1

class NakedRead final : public Rule {
 public:
  [[nodiscard]] const char* name() const override { return "naked-read"; }
  [[nodiscard]] const char* description() const override {
    return "every raw stream.read(...) must be followed within three "
           "lines by a stream-state check (gcount, if (!..., or an "
           "RDO_CHECK); route binary reads through a read_exact helper";
  }
  void run(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (int i = 0; i < ctx.ncode(); ++i) {
      if (!(ctx.punct(i, ".") || ctx.punct(i, "->"))) continue;
      const Token& recv = ctx.code(i - 1);
      if (recv.kind != TokKind::Identifier && recv.kind != TokKind::Number) {
        continue;
      }
      if (!ctx.ident(i + 1, "read") || !ctx.punct(i + 2, "(")) continue;
      const int line = ctx.code(i + 1).line;
      if (already_on_line(out, name(), line)) continue;
      if (!state_checked(ctx, i, line)) {
        ctx.report(out, name(),
                   "stream read without a state check within 3 lines; "
                   "route binary reads through a read_exact helper",
                   i + 1);
      }
    }
  }

 private:
  /// A stream-state check on lines [line, line+3]: gcount, an
  /// RDO_CHECK-family macro, `if (!`, or `|| !`.
  static bool state_checked(const FileContext& ctx, int from, int line) {
    // Walk back to the first code token of `line`, then forward.
    int i = from;
    while (i > 0 && ctx.code(i - 1).line >= line) --i;
    for (; i < ctx.ncode() && ctx.code(i).line <= line + 3; ++i) {
      const Token& t = ctx.code(i);
      if (t.kind == TokKind::Identifier) {
        if (contains(t.text, "gcount") || starts_with(t.text, "RDO_CHECK")) {
          return true;
        }
        if (t.text == "if" && ctx.punct(i + 1, "(") && ctx.punct(i + 2, "!")) {
          return true;
        }
      } else if (t.kind == TokKind::Punct && t.text == "||" &&
                 ctx.punct(i + 1, "!")) {
        return true;
      }
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// nondeterminism — legacy rule 2

class Nondeterminism final : public Rule {
 public:
  [[nodiscard]] const char* name() const override { return "nondeterminism"; }
  [[nodiscard]] const char* description() const override {
    return "rand()/srand()/time()/std::random_device are banned; every "
           "random draw must come from a seeded rdo::nn::Rng or the "
           "cross-backend parity gate breaks";
  }
  void run(const FileContext& ctx, std::vector<Finding>& out) const override {
    static const char* const kMessage =
        "rand()/srand()/time()/random_device are banned; draw "
        "from a seeded rdo::nn::Rng instead";
    for (int i = 0; i < ctx.ncode(); ++i) {
      const Token& t = ctx.code(i);
      if (t.kind != TokKind::Identifier) continue;
      bool hit = false;
      if (contains(t.text, "random_device")) {
        hit = true;
      } else if ((t.text == "rand" || t.text == "srand" || t.text == "time") &&
                 ctx.punct(i + 1, "(")) {
        if (ctx.punct(i - 1, "::")) {
          hit = ctx.ident(i - 2, "std");  // std::time(...) yes, x::time no
        } else if (ctx.punct(i - 1, ".")) {
          hit = false;  // member call on some object
        } else {
          hit = true;
        }
      }
      if (hit && !already_on_line(out, name(), t.line)) {
        ctx.report(out, name(), kMessage, i);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// unordered-iter — legacy rule 3

class UnorderedIter final : public Rule {
 public:
  [[nodiscard]] const char* name() const override { return "unordered-iter"; }
  [[nodiscard]] const char* description() const override {
    return "std::unordered_map/std::unordered_set iteration order is "
           "implementation-defined and leaks into deterministic output; "
           "use std::map or a sorted vector";
  }
  void run(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (int i = 0; i < ctx.ncode(); ++i) {
      const Token& t = ctx.code(i);
      if (t.kind != TokKind::Identifier) continue;
      if (!contains(t.text, "unordered_map") &&
          !contains(t.text, "unordered_set")) {
        continue;
      }
      if (!ctx.punct(i + 1, "<")) continue;
      if (already_on_line(out, name(), t.line)) continue;
      ctx.report(out, name(),
                 "hashed-container iteration order is nondeterministic "
                 "and leaks into BENCH sections; use std::map or a "
                 "sorted vector",
                 i);
    }
  }
};

// ---------------------------------------------------------------------------
// unbudgeted-alloc — the PR 5/7 loader invariant

/// Identifiers whose call results are "freshly parsed counts".
bool taint_source(const std::string& id) {
  return id == "scalar" || id == "as_int" || id == "atoi" || id == "atol" ||
         id == "atoll" || starts_with(id, "read_") ||
         starts_with(id, "strto") || starts_with(id, "stou") ||
         id == "stoi" || id == "stol" || id == "stoll";
}

class UnbudgetedAlloc final : public Rule {
 public:
  [[nodiscard]] const char* name() const override {
    return "unbudgeted-alloc";
  }
  [[nodiscard]] const char* description() const override {
    return "resize/reserve sized by a freshly parsed count with no "
           "RDO_CHECK/require/byte-budget between parse and allocation; "
           "a hostile header must never drive the allocator";
  }
  void run(const FileContext& ctx, std::vector<Finding>& out) const override {
    // Taint window: a parsed count stays suspect for this many lines
    // unless a check mentions it first. Long enough for real loader
    // bodies, short enough not to leak across functions.
    constexpr int kWindowLines = 40;
    std::map<std::string, int> tainted;  // name -> line parsed

    for (int i = 0; i < ctx.ncode(); ++i) {
      const Token& t = ctx.code(i);
      // Expire stale taint.
      for (auto it = tainted.begin(); it != tainted.end();) {
        if (t.line > it->second + kWindowLines) {
          it = tainted.erase(it);
        } else {
          ++it;
        }
      }
      if (t.kind != TokKind::Identifier) continue;

      // Sanitizers: require(...), RDO_CHECK*(...), RDO_BOUNDS(...), and
      // if/while/for conditions clear every count they mention.
      if ((t.text == "require" || starts_with(t.text, "RDO_CHECK") ||
           t.text == "RDO_BOUNDS" || t.text == "if" || t.text == "while" ||
           t.text == "for") &&
          ctx.punct(i + 1, "(")) {
        const int close = ctx.matching(i + 1);
        for (int j = i + 2; j < close; ++j) {
          const Token& a = ctx.code(j);
          if (a.kind == TokKind::Identifier) tainted.erase(a.text);
        }
        continue;
      }

      // Sink: x.resize(...) / x.reserve(...) with a tainted or directly
      // parsed size expression.
      if ((t.text == "resize" || t.text == "reserve") &&
          (ctx.punct(i - 1, ".") || ctx.punct(i - 1, "->")) &&
          ctx.punct(i + 1, "(")) {
        const int close = ctx.matching(i + 1);
        for (int j = i + 2; j < close; ++j) {
          const Token& a = ctx.code(j);
          if (a.kind != TokKind::Identifier) continue;
          if (tainted.count(a.text) != 0 || taint_source(a.text)) {
            ctx.report(out, name(),
                       "allocation sized by freshly parsed count \"" +
                           a.text +
                           "\"; bound it (RDO_CHECK/require/byte budget) "
                           "before resize/reserve",
                       i);
            break;
          }
        }
        i = close;
        continue;
      }

      // Taint source A: `x = ... parse(...) ...;`
      if (ctx.punct(i + 1, "=") && !ctx.punct(i + 2, "=")) {
        bool from_parse = false;
        int j = i + 2;
        for (; j < ctx.ncode() && !ctx.punct(j, ";"); ++j) {
          const Token& a = ctx.code(j);
          if (a.kind == TokKind::Identifier && taint_source(a.text)) {
            from_parse = true;
          }
        }
        if (from_parse) {
          tainted[t.text] = t.line;
        } else {
          tainted.erase(t.text);  // reassigned from something benign
        }
        i = j;
        continue;
      }

      // Taint source B: out-parameter of a read helper —
      // read_exact(f, &size, ...).
      if (taint_source(t.text) && ctx.punct(i + 1, "(")) {
        const int close = ctx.matching(i + 1);
        for (int j = i + 2; j < close; ++j) {
          if (ctx.punct(j, "&") &&
              ctx.code(j + 1).kind == TokKind::Identifier &&
              (ctx.punct(j + 2, ",") || ctx.punct(j + 2, ")"))) {
            tainted[ctx.code(j + 1).text] = ctx.code(j + 1).line;
          }
        }
        i = close;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// float-reduce-order — PR 1 bit-determinism inside parallel bodies

class FloatReduceOrder final : public Rule {
 public:
  [[nodiscard]] const char* name() const override {
    return "float-reduce-order";
  }
  [[nodiscard]] const char* description() const override {
    return "compound assignment to a shared variable inside a "
           "parallel_for body accumulates in chunk-completion order; "
           "accumulate per chunk and reduce deterministically";
  }
  void run(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (int i = 0; i < ctx.ncode(); ++i) {
      if (!ctx.ident(i, "parallel_for") || !ctx.punct(i + 1, "(")) continue;
      const int close = ctx.matching(i + 1);
      scan_body(ctx, i + 2, close, out);
      i = close;
    }
  }

 private:
  void scan_body(const FileContext& ctx, int begin, int end,
                 std::vector<Finding>& out) const {
    // Names declared inside the extent (lambda params and locals):
    // an identifier preceded by a type-ish token is a declaration.
    std::vector<std::string> declared;
    const auto is_declared = [&](const std::string& n) {
      for (const std::string& d : declared) {
        if (d == n) return true;
      }
      return false;
    };
    for (int j = begin; j < end; ++j) {
      const Token& t = ctx.code(j);
      if (t.kind == TokKind::Identifier) {
        const Token& prev = ctx.code(j - 1);
        if (prev.kind == TokKind::Identifier || prev.text == ">" ||
            prev.text == "&" || prev.text == "*") {
          declared.push_back(t.text);
        }
      }
      if (!(ctx.punct(j + 1, "+=") || ctx.punct(j + 1, "-="))) continue;
      if (t.kind != TokKind::Identifier) continue;  // c[i] += is fine
      const Token& before = ctx.code(j - 1);
      if (before.text == "." || before.text == "->" || before.text == "::") {
        continue;  // member access: counted elsewhere, not a bare shared var
      }
      if (is_declared(t.text)) continue;
      ctx.report(out, name(),
                 "\"" + t.text +
                     "\" is accumulated across parallel_for chunks; "
                     "chunk-completion order is nondeterministic — use a "
                     "per-chunk accumulator and a deterministic reduce",
                 j);
    }
  }
};

// ---------------------------------------------------------------------------
// metric-name — the PR 8 MetricsRegistry naming convention

class MetricName final : public Rule {
 public:
  [[nodiscard]] const char* name() const override { return "metric-name"; }
  [[nodiscard]] const char* description() const override {
    return "MetricsRegistry instrument names must be snake_case with a "
           "known subsystem prefix and SI unit suffixes (_seconds, "
           "_bytes); the Prometheus exposition prepends rdo_ itself";
  }
  void run(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (int i = 0; i < ctx.ncode(); ++i) {
      if (!(ctx.punct(i, ".") || ctx.punct(i, "->"))) continue;
      const Token& method = ctx.code(i + 1);
      if (method.kind != TokKind::Identifier ||
          (method.text != "counter" && method.text != "gauge" &&
           method.text != "histogram")) {
        continue;
      }
      if (!ctx.punct(i + 2, "(")) continue;
      const Token& lit = ctx.code(i + 3);
      if (lit.kind != TokKind::String || lit.text.size() < 2) continue;
      const std::string metric =
          lit.text.substr(1, lit.text.size() - 2);  // strip quotes
      const std::string why = violation(metric, method.text);
      if (!why.empty()) {
        ctx.report(out, name(),
                   "metric \"" + metric + "\" " + why, i + 3);
      }
    }
  }

 private:
  static std::string violation(const std::string& m,
                               const std::string& kind) {
    if (m.empty()) return "is empty";
    for (const char c : m) {
      if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
        return "is not lowercase snake_case";
      }
    }
    if (m.front() == '_' || m.back() == '_' || contains(m, "__")) {
      return "is not well-formed snake_case (leading/trailing/double _)";
    }
    if (starts_with(m, "rdo_")) {
      return "must not carry the rdo_ prefix; the Prometheus exposition "
             "prepends the namespace itself";
    }
    bool prefixed = false;
    for (const char* p : {"serve_", "deploy_", "opt_", "pool_", "process_",
                          "pwt_", "bench_", "lint_"}) {
      if (starts_with(m, p)) {
        prefixed = true;
        break;
      }
    }
    if (!prefixed) {
      return "lacks a known subsystem prefix (serve_, deploy_, opt_, "
             "pool_, process_, pwt_, bench_, lint_)";
    }
    for (const char* bad : {"_ms", "_msec", "_millis", "_us", "_usec",
                            "_micros", "_ns", "_nsec", "_nanos"}) {
      if (ends_with(m, bad)) {
        return "uses a sub-second unit suffix; express time in _seconds";
      }
    }
    for (const char* bad : {"_kb", "_mb", "_gb", "_kib", "_mib"}) {
      if (ends_with(m, bad)) {
        return "uses a scaled byte suffix; express sizes in _bytes";
      }
    }
    if (kind == "histogram" && !ends_with(m, "_seconds")) {
      return "names a latency histogram and must end in _seconds";
    }
    return "";
  }
};

// ---------------------------------------------------------------------------
// unspanned-phase — PR 3: timed phases must be trace-visible

class UnspannedPhase final : public Rule {
 public:
  [[nodiscard]] const char* name() const override {
    return "unspanned-phase";
  }
  [[nodiscard]] const char* description() const override {
    return "a ScopedTimer accumulating a DeployStats phase needs a "
           "TraceSpan in the same scope so the phase shows up in "
           "RDO_TRACE output";
  }
  void run(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (int i = 0; i < ctx.ncode(); ++i) {
      // A declaration `ScopedTimer name(...)` — not the class definition,
      // constructors or deleted copies in obs/stopwatch.h.
      if (!ctx.ident(i, "ScopedTimer")) continue;
      if (ctx.code(i + 1).kind != TokKind::Identifier ||
          !ctx.punct(i + 2, "(")) {
        continue;
      }
      const int line = ctx.code(i).line;
      bool spanned = false;
      for (int j = 0; j < ctx.ncode(); ++j) {
        const Token& t = ctx.code(j);
        if (t.line < line - 5) continue;
        if (t.line > line + 5) break;
        if (t.kind == TokKind::Identifier && t.text == "TraceSpan") {
          spanned = true;
          break;
        }
      }
      if (!spanned) {
        ctx.report(out, name(),
                   "phase timer without a TraceSpan within 5 lines; every "
                   "timed phase must also be visible in RDO_TRACE",
                   i);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// pass-invariant — PR 9: every optimizer pass asserts something

class PassInvariant final : public Rule {
 public:
  [[nodiscard]] const char* name() const override { return "pass-invariant"; }
  [[nodiscard]] const char* description() const override {
    return "every class deriving from opt::Pass must override check() "
           "and actually assert (RDO_CHECK) an invariant over the "
           "transformed plan";
  }
  void run(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (int i = 0; i < ctx.ncode(); ++i) {
      // Base-clause use: `public Pass` (possibly qualified opt::Pass).
      if (!ctx.ident(i, "Pass") || !ctx.ident(i - 1, "public")) continue;
      const int body = find_body(ctx, i);
      if (body >= ctx.ncode()) continue;
      const int close = ctx.matching(body);
      bool has_check = false;
      bool has_assert = false;
      for (int j = body; j < close; ++j) {
        const Token& t = ctx.code(j);
        if (t.kind != TokKind::Identifier) continue;
        if (t.text == "check" && ctx.punct(j + 1, "(")) has_check = true;
        if (starts_with(t.text, "RDO_CHECK")) has_assert = true;
      }
      if (!has_check) {
        ctx.report(out, name(),
                   "pass derives from opt::Pass but never overrides "
                   "check(); every registered pass must name its "
                   "invariant checker",
                   i);
      } else if (!has_assert) {
        ctx.report(out, name(),
                   "pass invariant check() asserts nothing (no RDO_CHECK "
                   "in the class); a vacuous checker hides malformed "
                   "plans",
                   i);
      }
      i = close;
    }
  }

 private:
  static int find_body(const FileContext& ctx, int from) {
    for (int j = from; j < ctx.ncode() && j < from + 16; ++j) {
      if (ctx.punct(j, "{")) return j;
    }
    return ctx.ncode();
  }
};

// ---------------------------------------------------------------------------
// naked-getenv — one blessed choke point for env knobs

class NakedGetenv final : public Rule {
 public:
  [[nodiscard]] const char* name() const override { return "naked-getenv"; }
  [[nodiscard]] const char* description() const override {
    return "std::getenv outside the blessed choke point "
           "(src/obs/envvar.cpp); read knobs through rdo::obs::env_knob "
           "so every knob stays greppable in one place";
  }
  void run(const FileContext& ctx, std::vector<Finding>& out) const override {
    if (ends_with(ctx.path(), "src/obs/envvar.cpp") ||
        ends_with(ctx.path(), "obs/envvar.cpp")) {
      return;
    }
    for (int i = 0; i < ctx.ncode(); ++i) {
      const Token& t = ctx.code(i);
      if (t.kind != TokKind::Identifier ||
          (t.text != "getenv" && t.text != "secure_getenv")) {
        continue;
      }
      if (!ctx.punct(i + 1, "(")) continue;
      ctx.report(out, name(),
                 "direct getenv; read environment knobs through "
                 "rdo::obs::env_knob (src/obs/envvar.cpp) so the knob "
                 "surface stays in one blessed file",
                 i);
    }
  }
};

}  // namespace

Engine::Engine() {
  rules_.push_back(std::make_unique<NakedRead>());
  rules_.push_back(std::make_unique<Nondeterminism>());
  rules_.push_back(std::make_unique<UnorderedIter>());
  rules_.push_back(std::make_unique<UnbudgetedAlloc>());
  rules_.push_back(std::make_unique<FloatReduceOrder>());
  rules_.push_back(std::make_unique<MetricName>());
  rules_.push_back(std::make_unique<UnspannedPhase>());
  rules_.push_back(std::make_unique<PassInvariant>());
  rules_.push_back(std::make_unique<NakedGetenv>());
}

}  // namespace rdo::lint
