// Token model for the rdo_lint static analyzer (src/lint/).
//
// Unlike the PR 5 textual lint — which *stripped* comments and literals
// to spaces before running regexes — the lexer keeps every token,
// classified, with its exact source position. That is what makes the
// rest of the analyzer possible: rules match token sequences instead of
// text (so a pattern named inside a diagnostic string can never trip a
// checker), and suppression comments (`// rdo-lint: allow(rule) reason`)
// stay readable because comments survive lexing as first-class tokens.
#pragma once

#include <string>
#include <vector>

namespace rdo::lint {

enum class TokKind {
  Identifier,  ///< identifiers and keywords (rules match by spelling)
  Number,      ///< numeric literals, including hex/float/digit-separator
  String,      ///< cooked string literal, prefix included ("...", u8"...")
  RawString,   ///< raw string literal, full R"delim(...)delim" spelling
  CharLit,     ///< character literal ('a', '\n', u'x')
  Comment,     ///< // or /* */ comment, delimiters included
  Punct,       ///< operators and punctuation, longest-match (`->`, `+=`)
};

struct Token {
  TokKind kind = TokKind::Punct;
  std::string text;  ///< exact source spelling
  int line = 1;      ///< 1-based line of the first character
  int col = 1;       ///< 1-based column of the first character
};

/// Lex a C++ translation unit. Never throws on malformed input — an
/// unterminated literal or comment is closed at end of file so rules can
/// still run over fuzzer corpora and half-written code. Raw string
/// literals are consumed to their exact `)delim"` terminator: the old
/// strip_non_code desynced on a `"` inside an R"(...)" payload and
/// misclassified everything after it (regression pinned by
/// tests/data/lint/rules and LexerRawString* in tests/test_lint.cpp).
[[nodiscard]] std::vector<Token> lex(const std::string& source);

}  // namespace rdo::lint
