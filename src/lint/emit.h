// Finding emitters: the human text form (byte-compatible with the old
// PR 5 tool so diffs against its output stay meaningful), a structured
// JSON form, and SARIF 2.1.0 for CI annotation upload.
#pragma once

#include <string>
#include <vector>

#include "lint/engine.h"
#include "lint/rule.h"
#include "obs/json.h"

namespace rdo::lint {

/// One `file:line: [rule] message` line per finding (baselined findings
/// skipped) followed by the `rdo_lint: N file(s), M violation(s)`
/// summary — exactly the old tool's stderr format.
[[nodiscard]] std::string format_text(const std::vector<Finding>& findings,
                                      int files_scanned);

/// {"version": 1, "findings": [{file, line, col, rule, message, context,
/// baselined} ...]} — every finding, baselined ones marked.
[[nodiscard]] rdo::obs::Json findings_json(
    const std::vector<Finding>& findings);

/// SARIF 2.1.0 document: one run, the engine's rule catalogue as
/// tool.driver.rules, one result per finding with a physical location.
/// When `baseline_used` is true every result carries a baselineState
/// ("unchanged" for absorbed findings, "new" otherwise) so CI viewers
/// can separate debt from regressions.
[[nodiscard]] rdo::obs::Json sarif_document(
    const Engine& engine, const std::vector<Finding>& findings,
    bool baseline_used);

}  // namespace rdo::lint
