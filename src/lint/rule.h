// Rule interface for the rdo_lint analyzer.
//
// A rule is a named check over one file's token stream. Rules see the
// full stream (comments included) plus a code-only index, and report
// Findings with exact positions. They never do I/O and never look across
// files — cross-file policy (the baseline ratchet, path allowlists) is
// the engine's and driver's job, which keeps every rule a pure function
// of (path, tokens) and therefore trivially deterministic.
#pragma once

#include <string>
#include <vector>

#include "lint/token.h"

namespace rdo::lint {

struct Finding {
  std::string rule;
  std::string message;
  std::string file;     ///< path as reported (driver may relativize)
  std::string context;  ///< trimmed source line — the baseline match key
  int line = 0;
  int col = 0;
  bool baselined = false;  ///< true when absorbed by a baseline entry
};

/// One file, lexed, with the derived views every rule wants.
class FileContext {
 public:
  FileContext(std::string path, const std::string& source);

  [[nodiscard]] const std::string& path() const { return path_; }
  /// Every token, comments included, in source order.
  [[nodiscard]] const std::vector<Token>& tokens() const { return tokens_; }

  /// Number of non-comment tokens.
  [[nodiscard]] int ncode() const { return static_cast<int>(code_.size()); }
  /// i-th non-comment token. Out-of-range indices return a sentinel
  /// empty Punct token so neighbour checks never need bounds tests.
  [[nodiscard]] const Token& code(int i) const;
  /// True when code(i) is an identifier spelled `text`.
  [[nodiscard]] bool ident(int i, const char* text) const;
  /// True when code(i) is punctuation spelled `text`.
  [[nodiscard]] bool punct(int i, const char* text) const;
  /// Index of the `)`/`}`/`]` matching the opener at code index i, or
  /// ncode() when unbalanced.
  [[nodiscard]] int matching(int open) const;

  /// Trimmed text of a 1-based source line ("" when out of range).
  [[nodiscard]] std::string line_text(int line) const;

  /// Convenience: append a finding for `rule` at code token i.
  void report(std::vector<Finding>& out, const char* rule,
              const std::string& message, int i) const;

 private:
  std::string path_;
  std::vector<Token> tokens_;
  std::vector<int> code_;  ///< indices of non-comment tokens
  std::vector<std::string> lines_;
};

class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable rule name: the spelling used in findings, suppression
  /// comments, the baseline and the SARIF rule table.
  [[nodiscard]] virtual const char* name() const = 0;
  /// One-line contract statement for --list-rules and SARIF metadata.
  [[nodiscard]] virtual const char* description() const = 0;
  virtual void run(const FileContext& ctx, std::vector<Finding>& out) const = 0;
};

}  // namespace rdo::lint
