#include "lint/baseline.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>

#include "obs/json.h"

namespace rdo::lint {

namespace {

using Key = std::tuple<std::string, std::string, std::string>;

Key key_of(const BaselineEntry& e) { return {e.file, e.rule, e.context}; }
Key key_of(const Finding& f) { return {f.file, f.rule, f.context}; }

}  // namespace

Baseline load_baseline(const std::string& path) {
  const rdo::obs::Json doc = rdo::obs::read_json_file(path);
  const auto* version = doc.find("version");
  if (version == nullptr || !version->is_int() || version->as_int() != 1) {
    throw std::runtime_error("rdo_lint: " + path +
                             ": baseline version must be 1");
  }
  const auto* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    throw std::runtime_error("rdo_lint: " + path +
                             ": baseline needs an \"entries\" array");
  }
  Baseline b;
  for (std::size_t i = 0; i < entries->size(); ++i) {
    const rdo::obs::Json& e = entries->at(i);
    const auto* file = e.find("file");
    const auto* rule = e.find("rule");
    const auto* context = e.find("context");
    const auto* count = e.find("count");
    if (file == nullptr || !file->is_string() || rule == nullptr ||
        !rule->is_string() || context == nullptr || !context->is_string() ||
        count == nullptr || !count->is_int() || count->as_int() < 1) {
      throw std::runtime_error(
          "rdo_lint: " + path +
          ": baseline entries need string file/rule/context and count >= 1");
    }
    b.entries.push_back(BaselineEntry{file->as_string(), rule->as_string(),
                                      context->as_string(),
                                      static_cast<int>(count->as_int())});
  }
  return b;
}

void save_baseline(const Baseline& b, const std::string& path) {
  Baseline sorted = b;
  std::sort(sorted.entries.begin(), sorted.entries.end(),
            [](const BaselineEntry& a, const BaselineEntry& c) {
              return key_of(a) < key_of(c);
            });
  rdo::obs::Json doc = rdo::obs::Json::object();
  doc["version"] = 1;
  rdo::obs::Json entries = rdo::obs::Json::array();
  for (const BaselineEntry& e : sorted.entries) {
    rdo::obs::Json j = rdo::obs::Json::object();
    j["file"] = e.file;
    j["rule"] = e.rule;
    j["context"] = e.context;
    j["count"] = e.count;
    entries.push_back(std::move(j));
  }
  doc["entries"] = std::move(entries);
  rdo::obs::write_json_file(doc, path);
}

Baseline make_baseline(const std::vector<Finding>& findings) {
  std::map<Key, int> counts;
  for (const Finding& f : findings) ++counts[key_of(f)];
  Baseline b;
  for (const auto& [k, n] : counts) {
    b.entries.push_back(BaselineEntry{std::get<0>(k), std::get<1>(k),
                                      std::get<2>(k), n});
  }
  return b;
}

BaselineResult apply_baseline(std::vector<Finding>& findings,
                              const Baseline& b) {
  std::map<Key, int> budget;
  for (const BaselineEntry& e : b.entries) budget[key_of(e)] += e.count;

  BaselineResult r;
  for (Finding& f : findings) {
    const auto it = budget.find(key_of(f));
    if (it != budget.end() && it->second > 0) {
      --it->second;
      f.baselined = true;
      ++r.absorbed;
    } else {
      ++r.fresh;
    }
  }
  for (const auto& [k, remaining] : budget) {
    if (remaining > 0) {
      r.stale.push_back(BaselineEntry{std::get<0>(k), std::get<1>(k),
                                      std::get<2>(k), remaining});
    }
  }
  return r;
}

}  // namespace rdo::lint
