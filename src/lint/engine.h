// Analyzer engine: owns the rule set, runs rules over files, applies
// inline suppressions.
//
// Suppression contract (DESIGN.md §5):
//
//   // rdo-lint: allow(rule-a, rule-b) reason text
//
// A trailing comment suppresses matching findings on its own line; a
// comment alone on a line suppresses them on the next line that holds
// any code. The reason is mandatory, the rule names must be registered,
// and a suppression that suppressed nothing is itself a finding
// (`unused-suppression`) — so stale allowances can never accumulate.
// Malformed suppressions (no reason, unknown rule, bad syntax) are
// reported as `malformed-suppression` rather than silently ignored.
#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "lint/rule.h"

namespace rdo::lint {

/// Pseudo-rules emitted by the engine itself (not in rules(), not
/// suppressible).
inline constexpr const char* kUnusedSuppression = "unused-suppression";
inline constexpr const char* kMalformedSuppression = "malformed-suppression";

class Engine {
 public:
  /// Registers every built-in rule (see rules.cpp).
  Engine();

  /// The registered rules, in catalogue order.
  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const {
    return rules_;
  }
  /// nullptr when no rule has that name.
  [[nodiscard]] const Rule* find_rule(const std::string& name) const;

  /// Restrict analysis to the named rules (driver --rules). Unknown
  /// names throw std::invalid_argument. An empty list restores all.
  void set_enabled(const std::vector<std::string>& names);

  /// Lint one translation unit given as text. `path` is the spelling
  /// used in findings. Returns findings sorted by (line, col, rule),
  /// suppressions already applied.
  [[nodiscard]] std::vector<Finding> lint_source(
      const std::string& path, const std::string& source) const;

  /// Lint a file on disk, reporting it as `report_path`. Throws
  /// std::runtime_error when the file cannot be read.
  [[nodiscard]] std::vector<Finding> lint_file(
      const std::filesystem::path& file, const std::string& report_path) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<const Rule*> enabled_;
};

/// True for the extensions the analyzer understands (.cpp/.h/.hpp/.cc).
[[nodiscard]] bool lintable(const std::filesystem::path& p);

/// Expand files/directories into a sorted list of lintable files,
/// skipping any path whose generic string contains an `exclude`
/// substring. Throws std::runtime_error on a nonexistent root.
[[nodiscard]] std::vector<std::filesystem::path> collect_files(
    const std::vector<std::filesystem::path>& roots,
    const std::vector<std::string>& excludes);

}  // namespace rdo::lint
