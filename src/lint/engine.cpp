#include "lint/engine.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rdo::lint {

// ---------------------------------------------------------------------------
// FileContext

namespace {

const Token& sentinel() {
  static const Token t{TokKind::Punct, "", 0, 0};
  return t;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

FileContext::FileContext(std::string path, const std::string& source)
    : path_(std::move(path)), tokens_(lex(source)) {
  code_.reserve(tokens_.size());
  for (int i = 0; i < static_cast<int>(tokens_.size()); ++i) {
    if (tokens_[static_cast<std::size_t>(i)].kind != TokKind::Comment) {
      code_.push_back(i);
    }
  }
  std::string line;
  std::istringstream ls(source);
  while (std::getline(ls, line)) lines_.push_back(std::move(line));
}

const Token& FileContext::code(int i) const {
  if (i < 0 || i >= ncode()) return sentinel();
  return tokens_[static_cast<std::size_t>(code_[static_cast<std::size_t>(i)])];
}

bool FileContext::ident(int i, const char* text) const {
  const Token& t = code(i);
  return t.kind == TokKind::Identifier && t.text == text;
}

bool FileContext::punct(int i, const char* text) const {
  const Token& t = code(i);
  return t.kind == TokKind::Punct && t.text == text;
}

int FileContext::matching(int open) const {
  const std::string& o = code(open).text;
  const char* close = o == "(" ? ")" : o == "{" ? "}" : o == "[" ? "]" : "";
  int depth = 0;
  for (int i = open; i < ncode(); ++i) {
    if (punct(i, o.c_str())) {
      ++depth;
    } else if (punct(i, close)) {
      if (--depth == 0) return i;
    }
  }
  return ncode();
}

std::string FileContext::line_text(int line) const {
  if (line < 1 || line > static_cast<int>(lines_.size())) return "";
  return trim(lines_[static_cast<std::size_t>(line - 1)]);
}

void FileContext::report(std::vector<Finding>& out, const char* rule,
                         const std::string& message, int i) const {
  const Token& t = code(i);
  out.push_back(Finding{rule, message, path_, line_text(t.line), t.line,
                        t.col, false});
}

// ---------------------------------------------------------------------------
// Suppressions

namespace {

struct Suppression {
  int comment_line = 0;
  int target_line = 0;  ///< 0 when the comment governs no code line
  std::vector<std::string> rules;
  bool used = false;
};

/// Parse one comment for the `rdo-lint:` marker. Returns true when the
/// marker is present; fills `sup` on success or `error` on a malformed
/// directive. The marker must be the first thing in the comment (after
/// the // or /* opener and whitespace) — prose that merely *mentions*
/// the directive syntax, including a doc line quoting a suppression
/// inside another comment, is not a directive.
bool parse_suppression(const Engine& eng, const Token& comment,
                       Suppression* sup, std::string* error) {
  const std::string& text = comment.text;
  std::size_t marker = 0;
  if (text.compare(0, 2, "//") == 0 || text.compare(0, 2, "/*") == 0) {
    marker = 2;
    // Tolerate exactly one doc-comment opener char: ///, //!, /**, /*!.
    if (marker < text.size() &&
        (text[marker] == '/' || text[marker] == '*' || text[marker] == '!')) {
      ++marker;
    }
    while (marker < text.size() &&
           (text[marker] == ' ' || text[marker] == '\t')) {
      ++marker;
    }
  }
  if (text.compare(marker, 9, "rdo-lint:") != 0) return false;
  std::size_t p = marker + 9;
  while (p < text.size() && text[p] == ' ') ++p;
  if (text.compare(p, 6, "allow(") != 0) {
    *error = "expected \"allow(rule[, rule]) reason\" after rdo-lint:";
    return true;
  }
  p += 6;
  const std::size_t close = text.find(')', p);
  if (close == std::string::npos) {
    *error = "unterminated allow( list";
    return true;
  }
  std::string names = text.substr(p, close - p);
  std::size_t start = 0;
  while (start <= names.size()) {
    std::size_t comma = names.find(',', start);
    if (comma == std::string::npos) comma = names.size();
    const std::string name = trim(names.substr(start, comma - start));
    if (name.empty()) {
      *error = "empty rule name in allow( list";
      return true;
    }
    if (eng.find_rule(name) == nullptr) {
      *error = "unknown rule \"" + name + "\" in allow( list";
      return true;
    }
    sup->rules.push_back(name);
    start = comma + 1;
    if (comma == names.size()) break;
  }
  std::string reason = text.substr(close + 1);
  // Block comments keep their terminator in the token text.
  const std::size_t term = reason.rfind("*/");
  if (term != std::string::npos) reason = reason.substr(0, term);
  if (trim(reason).empty()) {
    *error = "suppression needs a reason after allow(...)";
    return true;
  }
  sup->comment_line = comment.line;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine

const Rule* Engine::find_rule(const std::string& name) const {
  for (const auto& r : rules_) {
    if (name == r->name()) return r.get();
  }
  return nullptr;
}

void Engine::set_enabled(const std::vector<std::string>& names) {
  enabled_.clear();
  for (const std::string& n : names) {
    const Rule* r = find_rule(n);
    if (r == nullptr) {
      throw std::invalid_argument("rdo_lint: unknown rule \"" + n + '"');
    }
    enabled_.push_back(r);
  }
}

std::vector<Finding> Engine::lint_source(const std::string& path,
                                         const std::string& source) const {
  const FileContext ctx(path, source);

  std::vector<Finding> findings;
  if (enabled_.empty()) {
    for (const auto& r : rules_) r->run(ctx, findings);
  } else {
    for (const Rule* r : enabled_) r->run(ctx, findings);
  }

  // Lines that hold at least one code token, for suppression targeting.
  std::vector<int> code_lines;
  for (int i = 0; i < ctx.ncode(); ++i) {
    if (code_lines.empty() || code_lines.back() != ctx.code(i).line) {
      code_lines.push_back(ctx.code(i).line);
    }
  }
  const auto first_code_line_after = [&](int line) {
    for (const int l : code_lines) {
      if (l > line) return l;
    }
    return 0;
  };
  const auto line_has_code = [&](int line) {
    return std::binary_search(code_lines.begin(), code_lines.end(), line);
  };

  std::vector<Suppression> sups;
  for (const Token& t : ctx.tokens()) {
    if (t.kind != TokKind::Comment) continue;
    Suppression s;
    std::string error;
    if (!parse_suppression(*this, t, &s, &error)) continue;
    if (!error.empty()) {
      findings.push_back(Finding{kMalformedSuppression, error, ctx.path(),
                                 ctx.line_text(t.line), t.line, t.col,
                                 false});
      continue;
    }
    // Trailing comment governs its own line; a standalone comment line
    // governs the next line that holds code.
    s.target_line = line_has_code(t.line) ? t.line
                                          : first_code_line_after(t.line);
    sups.push_back(std::move(s));
  }

  if (!sups.empty()) {
    std::vector<Finding> kept;
    kept.reserve(findings.size());
    for (Finding& f : findings) {
      bool drop = false;
      for (Suppression& s : sups) {
        if (s.target_line == f.line &&
            std::find(s.rules.begin(), s.rules.end(), f.rule) !=
                s.rules.end()) {
          s.used = true;
          drop = true;
          break;
        }
      }
      if (!drop) kept.push_back(std::move(f));
    }
    findings = std::move(kept);
    for (const Suppression& s : sups) {
      if (s.used) continue;
      findings.push_back(Finding{
          kUnusedSuppression,
          "suppression does not match any finding; delete it or fix the "
          "rule list",
          ctx.path(), ctx.line_text(s.comment_line), s.comment_line, 1,
          false});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> Engine::lint_file(const std::filesystem::path& file,
                                       const std::string& report_path) const {
  std::ifstream f(file, std::ios::binary);
  if (!f) {
    throw std::runtime_error("rdo_lint: cannot read " + file.string());
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return lint_source(report_path, ss.str());
}

// ---------------------------------------------------------------------------
// File collection

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".hpp" || ext == ".cc";
}

std::vector<std::filesystem::path> collect_files(
    const std::vector<std::filesystem::path>& roots,
    const std::vector<std::string>& excludes) {
  namespace fs = std::filesystem;
  const auto excluded = [&](const fs::path& p) {
    const std::string s = p.generic_string();
    for (const std::string& e : excludes) {
      if (s.find(e) != std::string::npos) return true;
    }
    return false;
  };
  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (fs::is_directory(root)) {
      std::vector<fs::path> batch;
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable(entry.path()) &&
            !excluded(entry.path())) {
          batch.push_back(entry.path());
        }
      }
      std::sort(batch.begin(), batch.end());
      files.insert(files.end(), batch.begin(), batch.end());
    } else if (fs::is_regular_file(root)) {
      if (!excluded(root)) files.push_back(root);
    } else {
      throw std::runtime_error("rdo_lint: no such file or directory: " +
                               root.string());
    }
  }
  return files;
}

}  // namespace rdo::lint
