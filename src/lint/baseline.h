// Baseline ratchet for rdo_lint (lint_baseline.json at the repo root).
//
// The baseline is the committed debt ledger: every entry is one known
// finding, keyed by (file, rule, trimmed source line) with a count, so
// entries survive unrelated line-number churn. The ratchet is two-sided:
//
//   * a finding NOT absorbed by the baseline is NEW -> exit 1;
//   * a baseline entry NOT matched by any finding is STALE -> exit 1
//     with instructions to run --update-baseline, which rewrites the
//     file from the current findings and can therefore only shrink debt
//     (growing it again would fail as new findings first).
//
// Policy (ISSUE 10): only tests/ and bench/ noise may be baselined;
// findings in src/ are fixed or carry an inline suppression with a
// reason.
#pragma once

#include <string>
#include <vector>

#include "lint/rule.h"

namespace rdo::lint {

struct BaselineEntry {
  std::string file;
  std::string rule;
  std::string context;  ///< trimmed source line at the finding
  int count = 1;        ///< identical findings absorbed on that key
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Outcome of matching findings against a baseline.
struct BaselineResult {
  int fresh = 0;      ///< findings not absorbed (these fail the gate)
  int absorbed = 0;   ///< findings marked .baselined
  std::vector<BaselineEntry> stale;  ///< entries with unmatched count
};

/// Parse a baseline document. Throws std::runtime_error on I/O or
/// schema problems (a broken ledger must fail loudly, exit 2).
[[nodiscard]] Baseline load_baseline(const std::string& path);

/// Write `b` deterministically (entries sorted by file/rule/context).
void save_baseline(const Baseline& b, const std::string& path);

/// Build the baseline that would absorb exactly `findings`.
[[nodiscard]] Baseline make_baseline(const std::vector<Finding>& findings);

/// Mark findings absorbed by `b` (sets Finding::baselined) and report
/// what was fresh and what went stale.
[[nodiscard]] BaselineResult apply_baseline(std::vector<Finding>& findings,
                                            const Baseline& b);

}  // namespace rdo::lint
