#include "lint/token.h"

#include <array>
#include <cstddef>
#include <string_view>

namespace rdo::lint {

namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }
bool digit(char c) { return c >= '0' && c <= '9'; }

/// True when `id` is one of the encoding prefixes that can glue onto a
/// string/char literal (L"", u8"", uR"(...)", ...). The raw flavours end
/// in R; [raw] selects which family to test.
bool literal_prefix(std::string_view id, bool raw) {
  if (raw) {
    return id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R";
  }
  return id == "L" || id == "u" || id == "U" || id == "u8";
}

/// Multi-character operators, longest first within each leading char.
constexpr std::array<std::string_view, 21> kOperators = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++", "--", "+=", "-=", "*=", "/=",
    "|=",
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        advance();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        advance();
        continue;
      }
      if (c == '\\' && peek(1) == '\n') {  // line continuation
        advance();
        advance();
        continue;
      }
      Token t;
      t.line = line_;
      t.col = col_;
      if (c == '/' && peek(1) == '/') {
        t.kind = TokKind::Comment;
        t.text = take_while([](char ch) { return ch != '\n'; });
      } else if (c == '/' && peek(1) == '*') {
        t.kind = TokKind::Comment;
        t.text = block_comment();
      } else if (c == '"') {
        t.kind = TokKind::String;
        t.text = cooked_literal('"');
      } else if (c == '\'') {
        t.kind = TokKind::CharLit;
        t.text = cooked_literal('\'');
      } else if (ident_start(c)) {
        std::string id = take_while(ident_char);
        if (peek(0) == '"' && literal_prefix(id, /*raw=*/true)) {
          t.kind = TokKind::RawString;
          t.text = id + raw_literal();
        } else if (peek(0) == '"' && literal_prefix(id, /*raw=*/false)) {
          t.kind = TokKind::String;
          t.text = id + cooked_literal('"');
        } else if (peek(0) == '\'' && literal_prefix(id, /*raw=*/false)) {
          t.kind = TokKind::CharLit;
          t.text = id + cooked_literal('\'');
        } else {
          t.kind = TokKind::Identifier;
          t.text = std::move(id);
        }
      } else if (digit(c) || (c == '.' && digit(peek(1)))) {
        t.kind = TokKind::Number;
        t.text = number();
      } else {
        t.kind = TokKind::Punct;
        t.text = punct();
      }
      out.push_back(std::move(t));
    }
    return out;
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  void advance() {
    if (src_[i_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++i_;
  }

  template <typename Pred>
  std::string take_while(Pred keep) {
    std::string s;
    while (i_ < src_.size() && keep(src_[i_])) {
      s += src_[i_];
      advance();
    }
    return s;
  }

  std::string block_comment() {
    std::string s = "/*";
    advance();
    advance();
    while (i_ < src_.size()) {
      if (src_[i_] == '*' && peek(1) == '/') {
        s += "*/";
        advance();
        advance();
        return s;
      }
      s += src_[i_];
      advance();
    }
    return s;  // unterminated: closed at EOF
  }

  /// "..." or '...' with backslash escapes. An unescaped newline ends
  /// the token (error tolerance — real literals never span lines).
  std::string cooked_literal(char quote) {
    std::string s(1, quote);
    advance();
    while (i_ < src_.size() && src_[i_] != '\n') {
      const char c = src_[i_];
      if (c == '\\' && i_ + 1 < src_.size()) {
        s += c;
        advance();
        s += src_[i_];
        advance();
        continue;
      }
      s += c;
      advance();
      if (c == quote) break;
    }
    return s;
  }

  /// R"delim( ... )delim" — payload consumed verbatim to the exact
  /// terminator, so embedded quotes and backslashes never desync the
  /// token stream (the strip_non_code bug this lexer replaces).
  std::string raw_literal() {
    std::string s = "\"";
    advance();  // the opening quote
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(' && src_[i_] != '\n' &&
           delim.size() < 16) {
      delim += src_[i_];
      s += src_[i_];
      advance();
    }
    if (i_ >= src_.size() || src_[i_] != '(') return s;  // malformed
    s += '(';
    advance();
    const std::string terminator = ")" + delim + "\"";
    std::string tail;
    while (i_ < src_.size()) {
      tail += src_[i_];
      s += src_[i_];
      advance();
      if (tail.size() >= terminator.size() &&
          tail.compare(tail.size() - terminator.size(), terminator.size(),
                       terminator) == 0) {
        return s;
      }
    }
    return s;  // unterminated: closed at EOF
  }

  /// Numeric literal: pp-number rules, approximately — digits, letters,
  /// dots, digit separators, and exponent signs after e/E/p/P.
  std::string number() {
    std::string s;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (ident_char(c) || c == '.') {
        s += c;
        advance();
      } else if (c == '\'' && !s.empty() && ident_char(peek(1))) {
        s += c;  // digit separator 1'000'000
        advance();
      } else if ((c == '+' || c == '-') && !s.empty() &&
                 (s.back() == 'e' || s.back() == 'E' || s.back() == 'p' ||
                  s.back() == 'P')) {
        s += c;
        advance();
      } else {
        break;
      }
    }
    return s;
  }

  std::string punct() {
    for (const std::string_view op : kOperators) {
      if (src_.compare(i_, op.size(), op) == 0) {
        for (std::size_t k = 0; k < op.size(); ++k) advance();
        return std::string(op);
      }
    }
    std::string s(1, src_[i_]);
    advance();
    return s;
  }

  const std::string& src_;
  std::size_t i_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> lex(const std::string& source) {
  return Lexer(source).run();
}

}  // namespace rdo::lint
