// Scaled-down AlexNet (the network DVA [9] reports on in Table III).
//
// CIFAR-style AlexNet: large-ish first kernel, three conv stages with
// pooling, dropout-regularized two-layer classifier. Channel counts are
// reduced for the CPU budget (see DESIGN.md substitutions).
#pragma once

#include <memory>

#include "nn/rng.h"
#include "nn/sequential.h"

namespace rdo::models {

struct AlexNetConfig {
  int in_channels = 3;
  int image_size = 32;
  int base_channels = 8;
  int classes = 10;
  float dropout = 0.25f;
  bool act_quant = true;
  int act_bits = 8;
};

std::unique_ptr<rdo::nn::Sequential> make_alexnet(const AlexNetConfig& cfg,
                                                  rdo::nn::Rng& rng);

}  // namespace rdo::models
