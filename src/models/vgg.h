// Scaled-down VGG (the paper's Table III test case uses VGG-16).
//
// Conv-conv-pool stacks with doubling channel counts and a two-layer
// classifier head — the VGG-16 topology with reduced width/depth for the
// CPU budget (see DESIGN.md substitutions).
#pragma once

#include <memory>

#include "nn/rng.h"
#include "nn/sequential.h"

namespace rdo::models {

struct VggConfig {
  int in_channels = 3;
  int image_size = 32;
  int base_channels = 8;
  int classes = 10;
  int stacks = 3;        ///< conv-conv-pool stacks
  int fc_width = 64;
  bool act_quant = true;
  int act_bits = 8;
};

std::unique_ptr<rdo::nn::Sequential> make_vgg(const VggConfig& cfg,
                                              rdo::nn::Rng& rng);

}  // namespace rdo::models
