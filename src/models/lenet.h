// LeNet-5 (the paper's MNIST test case).
#pragma once

#include <memory>

#include "nn/rng.h"
#include "nn/sequential.h"

namespace rdo::models {

struct LeNetConfig {
  int in_channels = 1;
  int image_size = 28;
  int classes = 10;
  bool act_quant = true;  ///< insert 8-bit activation quantizers
  int act_bits = 8;
};

/// Classic LeNet-5: conv(6,5x5,pad2) - pool - conv(16,5x5) - pool -
/// fc120 - fc84 - fc10, with an activation quantizer ahead of every
/// crossbar-mapped layer.
std::unique_ptr<rdo::nn::Sequential> make_lenet(const LeNetConfig& cfg,
                                                rdo::nn::Rng& rng);

}  // namespace rdo::models
