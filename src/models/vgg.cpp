#include "models/vgg.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "quant/act_quant.h"

namespace rdo::models {

using namespace rdo::nn;

std::unique_ptr<Sequential> make_vgg(const VggConfig& cfg, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  auto aq = [&]() {
    if (cfg.act_quant) net->emplace<rdo::quant::ActQuant>(cfg.act_bits);
  };
  int ch = cfg.in_channels;
  int spatial = cfg.image_size;
  for (int s = 0; s < cfg.stacks; ++s) {
    const int out_ch = cfg.base_channels << s;
    aq();
    net->emplace<Conv2D>(ch, out_ch, 3, 1, 1, rng);
    net->emplace<ReLU>();
    aq();
    net->emplace<Conv2D>(out_ch, out_ch, 3, 1, 1, rng);
    net->emplace<ReLU>();
    net->emplace<MaxPool2D>(2);
    ch = out_ch;
    spatial /= 2;
  }
  net->emplace<Flatten>();
  aq();
  net->emplace<Dense>(static_cast<std::int64_t>(ch) * spatial * spatial,
                      cfg.fc_width, rng);
  net->emplace<ReLU>();
  aq();
  net->emplace<Dense>(cfg.fc_width, cfg.classes, rng);
  return net;
}

}  // namespace rdo::models
