// Scaled-down ResNet with basic blocks (the paper's ResNet-18 test case).
//
// Architecture-faithful: 3 stages of basic residual blocks with identity
// shortcuts (1x1 projection where shape changes), batch-norm, global
// average pooling. Channel counts are reduced for the single-core CPU
// budget (see DESIGN.md substitutions); `blocks_per_stage = 2` with
// base_channels 64 recovers the real ResNet-18 topology minus stage 4.
#pragma once

#include <memory>

#include "nn/rng.h"
#include "nn/sequential.h"

namespace rdo::models {

struct ResNetConfig {
  int in_channels = 3;
  int base_channels = 8;
  int blocks_per_stage = 1;
  int classes = 10;
  bool act_quant = true;
  int act_bits = 8;
};

std::unique_ptr<rdo::nn::Sequential> make_resnet(const ResNetConfig& cfg,
                                                 rdo::nn::Rng& rng);

}  // namespace rdo::models
