#include "models/lenet.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "quant/act_quant.h"

namespace rdo::models {

using namespace rdo::nn;

std::unique_ptr<Sequential> make_lenet(const LeNetConfig& cfg, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  auto aq = [&](Sequential& s) {
    if (cfg.act_quant) s.emplace<rdo::quant::ActQuant>(cfg.act_bits);
  };
  aq(*net);
  net->emplace<Conv2D>(cfg.in_channels, 6, 5, 1, 2, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2);
  aq(*net);
  net->emplace<Conv2D>(6, 16, 5, 1, 0, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2);
  net->emplace<Flatten>();
  const std::int64_t half = cfg.image_size / 2;           // after pool 1
  const std::int64_t spatial = (half - 4) / 2;            // conv5 + pool 2
  const std::int64_t flat = 16 * spatial * spatial;       // 400 for 28x28
  aq(*net);
  net->emplace<Dense>(flat, 120, rng);
  net->emplace<ReLU>();
  aq(*net);
  net->emplace<Dense>(120, 84, rng);
  net->emplace<ReLU>();
  aq(*net);
  net->emplace<Dense>(84, cfg.classes, rng);
  return net;
}

}  // namespace rdo::models
