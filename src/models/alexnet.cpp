#include "models/alexnet.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"
#include "quant/act_quant.h"

namespace rdo::models {

using namespace rdo::nn;

std::unique_ptr<Sequential> make_alexnet(const AlexNetConfig& cfg,
                                         Rng& rng) {
  auto net = std::make_unique<Sequential>();
  auto aq = [&]() {
    if (cfg.act_quant) net->emplace<rdo::quant::ActQuant>(cfg.act_bits);
  };
  const int b = cfg.base_channels;
  // Stage 1: 5x5 stem (AlexNet's big-kernel front end, CIFAR-scaled).
  aq();
  net->emplace<Conv2D>(cfg.in_channels, b, 5, 1, 2, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2);
  // Stage 2.
  aq();
  net->emplace<Conv2D>(b, 2 * b, 5, 1, 2, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2);
  // Stage 3: two 3x3 convs back to back.
  aq();
  net->emplace<Conv2D>(2 * b, 4 * b, 3, 1, 1, rng);
  net->emplace<ReLU>();
  aq();
  net->emplace<Conv2D>(4 * b, 2 * b, 3, 1, 1, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2);
  // Classifier.
  net->emplace<Flatten>();
  const std::int64_t spatial = cfg.image_size / 8;
  const std::int64_t flat = 2 * b * spatial * spatial;
  if (cfg.dropout > 0.0f) net->emplace<Dropout>(cfg.dropout, rng.seed());
  aq();
  net->emplace<Dense>(flat, 8 * b, rng);
  net->emplace<ReLU>();
  if (cfg.dropout > 0.0f) {
    net->emplace<Dropout>(cfg.dropout, rng.seed() + 1);
  }
  aq();
  net->emplace<Dense>(8 * b, cfg.classes, rng);
  return net;
}

}  // namespace rdo::models
