#include "models/resnet.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "quant/act_quant.h"

namespace rdo::models {

using namespace rdo::nn;

namespace {

/// One basic block: [conv3x3 - BN - ReLU - conv3x3 - BN] + shortcut, ReLU.
/// The caller places an ActQuant ahead of the block so both paths see
/// quantized activations.
LayerPtr make_block(int in_ch, int out_ch, int stride,
                    const ResNetConfig& cfg, Rng& rng) {
  auto main = std::make_unique<Sequential>();
  main->emplace<Conv2D>(in_ch, out_ch, 3, stride, 1, rng, /*bias=*/false);
  main->emplace<BatchNorm2D>(out_ch);
  main->emplace<ReLU>();
  if (cfg.act_quant) main->emplace<rdo::quant::ActQuant>(cfg.act_bits);
  main->emplace<Conv2D>(out_ch, out_ch, 3, 1, 1, rng, /*bias=*/false);
  main->emplace<BatchNorm2D>(out_ch);
  if (in_ch != out_ch || stride != 1) {
    auto shortcut = std::make_unique<Sequential>();
    shortcut->emplace<Conv2D>(in_ch, out_ch, 1, stride, 0, rng,
                              /*bias=*/false);
    shortcut->emplace<BatchNorm2D>(out_ch);
    return std::make_unique<Residual>(std::move(main), std::move(shortcut));
  }
  return std::make_unique<Residual>(std::move(main));
}

}  // namespace

std::unique_ptr<Sequential> make_resnet(const ResNetConfig& cfg, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  auto aq = [&]() {
    if (cfg.act_quant) net->emplace<rdo::quant::ActQuant>(cfg.act_bits);
  };
  const int b = cfg.base_channels;
  aq();
  net->emplace<Conv2D>(cfg.in_channels, b, 3, 1, 1, rng, /*bias=*/false);
  net->emplace<BatchNorm2D>(b);
  net->emplace<ReLU>();
  int ch = b;
  for (int stage = 0; stage < 3; ++stage) {
    const int out_ch = b << stage;
    for (int blk = 0; blk < cfg.blocks_per_stage; ++blk) {
      const int stride = (stage > 0 && blk == 0) ? 2 : 1;
      aq();
      net->push(make_block(ch, out_ch, stride, cfg, rng));
      ch = out_ch;
    }
  }
  net->emplace<GlobalAvgPool>();
  aq();
  net->emplace<Dense>(ch, cfg.classes, rng);
  return net;
}

}  // namespace rdo::models
