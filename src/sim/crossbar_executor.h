// Device-level execution of one crossbar-mapped layer.
//
// This is the hardware-faithful reference path: the quantized layer is
// tiled onto 128x128 Crossbar arrays (bit-sliced cells, per-device
// variation, wordline-activation groups, optional finite-resolution ADC),
// the digital offset units compute b * sum(x) per group, the complement
// post-processing applies (2^n - 1) * sum(x) - z', and the ISAAC weight
// shift subtracts zero * sum(x).
//
// The fast path used by core::Deployment absorbs all of this into
// effective weights; tests/test_sim.cpp proves the two paths agree on the
// same measured CRWs (exactly with an ideal ADC, boundedly with a real
// one), which is what licenses the fast path for the accuracy benches.
#pragma once

#include <cstdint>
#include <vector>

#include "core/vawo.h"
#include "nn/rng.h"
#include "quant/quantizer.h"
#include "rram/crossbar.h"
#include "rram/programmer.h"
#include "rram/tiler.h"

namespace rdo::sim {

struct ExecutorConfig {
  rdo::rram::CrossbarConfig xbar;  ///< geometry, cell, variation, ADC
  rdo::core::OffsetConfig offsets;
  int weight_bits = 8;
};

class CrossbarLayerExecutor {
 public:
  /// Tiles `lq` onto crossbars and programs every device once (one CCV
  /// cycle drawn from `rng`). `assign` supplies CTWs, offsets and
  /// complement flags (use core::plain_layer for the plain scheme).
  CrossbarLayerExecutor(const rdo::quant::LayerQuant& lq,
                        const rdo::core::VawoResult& assign,
                        const ExecutorConfig& cfg, rdo::nn::Rng& rng);

  /// Same tiling, but programs every device ideally (no variation draw).
  /// Used by the device backend, which replays externally drawn cell
  /// values per programming cycle via program_cell_values().
  CrossbarLayerExecutor(const rdo::quant::LayerQuant& lq,
                        const rdo::core::VawoResult& assign,
                        const ExecutorConfig& cfg);

  /// Re-program every device from explicit per-weight cell read values
  /// (row-major [rows*cols], each entry cells_per_weight values, LSB cell
  /// first) — the exact outputs of WeightProgrammer::program_cells, so
  /// the device level observes bit-identical conductances to the
  /// effective-weight path. Padding cells read as ideal HRS.
  void program_cell_values(
      const std::vector<std::vector<double>>& cells);

  /// Device-level forward: x has lq.rows entries (activation units);
  /// returns lq.cols effective (dequantized) outputs.
  ///
  /// Thread safety: const and touches only state that is immutable after
  /// construction (crossbar cells, CTWs, offsets), so any number of
  /// threads may call forward()/forward_bit_serial()/measure_crw()
  /// concurrently. set_offsets() is the only mutator and must not race
  /// with concurrent forwards.
  [[nodiscard]] std::vector<double> forward(
      const std::vector<double>& x) const;

  /// ISAAC bit-serial forward: inputs are quantized to `input_bits`
  /// levels over [0, x_max] and streamed one bit per read pass; partial
  /// results are shifted-and-added. The whole pipeline is linear in x, so
  /// with an ideal ADC this equals forward() on the quantized inputs —
  /// asserted by the test suite.
  [[nodiscard]] std::vector<double> forward_bit_serial(
      const std::vector<double>& x, int input_bits, double x_max) const;

  /// One read pass over every device: the composed CRW of each weight
  /// (row-major [rows*cols]) — the measurement PWT requires.
  [[nodiscard]] std::vector<double> measure_crw() const;

  /// Replace the working offsets (e.g. after PWT).
  void set_offsets(std::vector<float> offsets);

  [[nodiscard]] const rdo::rram::TilingInfo& tiling() const {
    return tiling_;
  }
  [[nodiscard]] std::int64_t crossbar_count() const {
    return static_cast<std::int64_t>(xbars_.size());
  }

 private:
  rdo::quant::LayerQuant lq_;
  rdo::core::VawoResult assign_;
  ExecutorConfig cfg_;
  rdo::rram::WeightProgrammer prog_;
  rdo::rram::TilingInfo tiling_;
  std::vector<rdo::rram::Crossbar> xbars_;  // row-major [row_tile][col_tile]
  std::vector<float> offsets_;

  [[nodiscard]] const rdo::rram::Crossbar& xbar_at(std::int64_t tr,
                                                   std::int64_t tc) const {
    return xbars_[static_cast<std::size_t>(tr * tiling_.col_tiles + tc)];
  }

  /// Shared ctor body: validate geometry, tile and program each device —
  /// with per-weight/per-cell variation drawn from `rng`, or ideally when
  /// `rng` is null.
  void build_tiles(rdo::nn::Rng* rng);
};

}  // namespace rdo::sim
