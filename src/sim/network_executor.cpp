#include "sim/network_executor.h"

#include <algorithm>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/im2col.h"
#include "nn/parallel.h"
#include "nn/pooling.h"
#include "obs/trace.h"
#include "quant/act_quant.h"
#include "rram/rlut.h"

namespace rdo::sim {

using rdo::nn::Conv2D;
using rdo::nn::Dense;
using rdo::nn::Rng;

NetworkExecutor::NetworkExecutor(rdo::nn::Sequential& net,
                                 const rdo::nn::DataView& train,
                                 const NetworkExecutorOptions& opt)
    : opt_(opt) {
  // Walk the graph in definition order and validate the topology.
  std::vector<rdo::nn::Layer*> all;
  collect_layers(&net, all);
  std::vector<rdo::nn::Layer*> sequence;
  int matrix_layers = 0;
  for (rdo::nn::Layer* l : all) {
    if (l == &net) continue;
    if (dynamic_cast<Dense*>(l) || dynamic_cast<Conv2D*>(l)) {
      ++matrix_layers;
      sequence.push_back(l);
    } else if (l->name() == "Flatten" || l->name() == "ReLU" ||
               l->name() == "MaxPool2D" || l->name() == "ActQuant" ||
               l->name() == "Dropout") {  // Dropout: identity at inference
      sequence.push_back(l);
    } else {
      throw std::invalid_argument(
          "NetworkExecutor: unsupported layer at device level: " +
          l->name());
    }
  }
  if (matrix_layers == 0) {
    throw std::invalid_argument("NetworkExecutor: no crossbar layers");
  }

  // Quantize + assign. VAWO needs gradients at the quantized operating
  // point.
  rdo::rram::WeightProgrammer prog(opt.exec.xbar.cell, opt.exec.weight_bits,
                                   opt.exec.xbar.variation);
  const rdo::rram::RLut lut = rdo::rram::RLut::build(
      prog, opt.lut_k_sets, opt.lut_j_cycles, Rng(opt.seed).split(0x10));
  if (opt.use_vawo_star) {
    accumulate_mean_gradients(net, train, opt.grad_batch, opt.grad_samples);
  }

  Rng prog_rng = Rng(opt.seed).split(0xBEEF);
  std::size_t li = 0;
  for (rdo::nn::Layer* l : sequence) {
    Stage stage;
    if (l->name() == "ReLU") {
      stage.kind = Stage::Kind::ReLU;
      stages_.push_back(std::move(stage));
      continue;
    }
    if (l->name() == "Flatten" || l->name() == "ActQuant" ||
        l->name() == "Dropout") {
      continue;  // shape bookkeeping only / identity at inference
    }
    if (auto* pool = dynamic_cast<rdo::nn::MaxPool2D*>(l)) {
      stage.kind = Stage::Kind::MaxPool;
      stage.pool_window = static_cast<int>(pool->window());
      stages_.push_back(std::move(stage));
      continue;
    }
    auto* op = dynamic_cast<rdo::nn::MatrixOp*>(l);
    if (auto* conv = dynamic_cast<Conv2D*>(l)) {
      stage.kind = Stage::Kind::Conv;
      stage.kernel = static_cast<int>(conv->kernel());
      stage.stride = static_cast<int>(conv->stride());
      stage.pad = static_cast<int>(conv->pad());
    } else {
      stage.kind = Stage::Kind::Crossbar;
    }
    stage.m = opt.exec.offsets.m;
    stage.lq = rdo::quant::quantize_matrix(*op, opt.exec.weight_bits);
    if (opt.use_vawo_star) {
      std::vector<double> grads(
          static_cast<std::size_t>(stage.lq.rows * stage.lq.cols));
      for (std::int64_t r = 0; r < stage.lq.rows; ++r) {
        for (std::int64_t c = 0; c < stage.lq.cols; ++c) {
          grads[static_cast<std::size_t>(r * stage.lq.cols + c)] =
              op->weight_grad_at(r, c);
        }
      }
      rdo::core::VawoOptions vopt;
      vopt.offsets = opt.exec.offsets;
      vopt.use_complement = true;
      stage.assign = rdo::core::vawo_layer(stage.lq, grads, lut, vopt);
    } else {
      stage.assign = rdo::core::plain_layer(stage.lq, opt.exec.offsets.m);
    }
    Rng layer_rng = prog_rng.split(li++);
    stage.exec = std::make_unique<CrossbarLayerExecutor>(
        stage.lq, stage.assign, opt.exec, layer_rng);
    stage.bias.assign(static_cast<std::size_t>(op->fan_out()), 0.0f);
    rdo::nn::Param* bias_param = nullptr;
    if (auto* d = dynamic_cast<Dense*>(l)) {
      bias_param = &d->bias_param();
    } else if (auto* cv = dynamic_cast<Conv2D*>(l)) {
      bias_param = &cv->bias_param();
    }
    if (bias_param != nullptr &&
        bias_param->value.size() == op->fan_out()) {
      for (std::int64_t c = 0; c < op->fan_out(); ++c) {
        stage.bias[static_cast<std::size_t>(c)] = bias_param->value[c];
      }
    }
    stages_.push_back(std::move(stage));
  }
  if (opt.use_vawo_star) {
    for (rdo::nn::Param* p : net.params()) p->zero_grad();
  }
}

std::vector<double> NetworkExecutor::forward(
    const std::vector<double>& x) const {
  return forward_image(x, /*channels=*/0, /*height=*/0, /*width=*/0);
}

std::vector<double> NetworkExecutor::forward_image(
    const std::vector<double>& x, int channels, int height,
    int width) const {
  std::vector<double> h = x;
  int c = channels, hh = height, ww = width;
  for (const Stage& s : stages_) {
    switch (s.kind) {
      case Stage::Kind::ReLU:
        for (auto& v : h) v = std::max(0.0, v);
        break;
      case Stage::Kind::MaxPool: {
        if (c <= 0) {
          throw std::logic_error("NetworkExecutor: pooling needs an image");
        }
        const int oh = hh / s.pool_window, ow = ww / s.pool_window;
        std::vector<double> y(static_cast<std::size_t>(c) * oh * ow);
        // Same kernel as the float nn::MaxPool2D layer, so the device
        // and float paths cannot drift (asserted in test_equivalence).
        rdo::nn::maxpool2d_image(h.data(), c, hh, ww, s.pool_window,
                                 y.data());
        h = std::move(y);
        hh = oh;
        ww = ow;
        break;
      }
      case Stage::Kind::Conv: {
        if (c <= 0) {
          throw std::logic_error("NetworkExecutor: conv needs an image");
        }
        rdo::obs::TraceSpan stage_span("sim:conv_stage", "sim");
        stage_span.arg("kernel", s.kernel);
        stage_span.arg("out_channels", s.lq.cols);
        const int oh = static_cast<int>(
            rdo::nn::conv_out_dim(hh, s.kernel, s.stride, s.pad));
        const int ow = static_cast<int>(
            rdo::nn::conv_out_dim(ww, s.kernel, s.stride, s.pad));
        const std::int64_t fin = s.lq.rows;
        const std::int64_t oc = s.lq.cols;
        // im2col rows, each driven through the crossbars as one VMM.
        std::vector<float> img(h.size());
        for (std::size_t i = 0; i < h.size(); ++i) {
          img[i] = static_cast<float>(h[i]);
        }
        std::vector<float> cols(static_cast<std::size_t>(oh) * ow * fin);
        rdo::nn::im2col(img.data(), c, hh, ww, s.kernel, s.kernel, s.stride,
                        s.pad, cols.data());
        std::vector<double> y(static_cast<std::size_t>(oc) * oh * ow, 0.0);
        // Each im2col row is one independent VMM through the (read-only)
        // crossbars; dispatch them across the pool. Every output
        // position is written by exactly one task, so results are
        // bit-identical for any thread count. Runs inline when already
        // inside evaluate()'s per-image parallelism.
        rdo::nn::parallel_for(
            oh * ow,
            [&](std::int64_t p0, std::int64_t p1) {
              std::vector<double> row(static_cast<std::size_t>(fin));
              for (std::int64_t p = p0; p < p1; ++p) {
                for (std::int64_t j = 0; j < fin; ++j) {
                  row[static_cast<std::size_t>(j)] =
                      cols[static_cast<std::size_t>(p) * fin +
                           static_cast<std::size_t>(j)];
                }
                const std::vector<double> out = s.exec->forward(row);
                for (std::int64_t k = 0; k < oc; ++k) {
                  y[static_cast<std::size_t>(k * oh * ow + p)] =
                      out[static_cast<std::size_t>(k)] +
                      s.bias[static_cast<std::size_t>(k)];
                }
              }
            });
        h = std::move(y);
        c = static_cast<int>(oc);
        hh = oh;
        ww = ow;
        break;
      }
      case Stage::Kind::Crossbar: {
        rdo::obs::TraceSpan stage_span("sim:crossbar_stage", "sim");
        stage_span.arg("rows", s.lq.rows);
        stage_span.arg("cols", s.lq.cols);
        std::vector<double> y = s.exec->forward(h);
        for (std::size_t k = 0; k < y.size(); ++k) y[k] += s.bias[k];
        h = std::move(y);
        c = 0;  // now a flat vector
        break;
      }
    }
  }
  return h;
}

float NetworkExecutor::evaluate(const rdo::nn::DataView& test,
                                std::int64_t max_samples) const {
  const std::int64_t n = max_samples > 0
                             ? std::min<std::int64_t>(max_samples,
                                                      test.size())
                             : test.size();
  const std::int64_t sample = test.images->size() / test.images->dim(0);
  const int channels = static_cast<int>(test.images->dim(1));
  const int height = static_cast<int>(test.images->dim(2));
  const int width = static_cast<int>(test.images->dim(3));
  // Batched inference: forward_image is const and every stage reads only
  // state frozen at construction time (see CrossbarLayerExecutor::forward),
  // so images classify concurrently. Each image's verdict lands in its
  // own slot and the final reduction is an integer sum — the accuracy is
  // bit-identical for any thread count.
  std::vector<unsigned char> hit(static_cast<std::size_t>(n), 0);
  rdo::obs::TraceSpan span("sim:evaluate", "sim");
  span.arg("n", n);
  rdo::nn::parallel_for(n, [&](std::int64_t i0, std::int64_t i1) {
    rdo::obs::TraceSpan chunk_span("sim:evaluate_chunk", "sim");
    chunk_span.arg("begin", i0);
    chunk_span.arg("end", i1);
    std::vector<double> x(static_cast<std::size_t>(sample));
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* src = test.images->data() + i * sample;
      for (std::int64_t j = 0; j < sample; ++j) {
        x[static_cast<std::size_t>(j)] = src[j];
      }
      const std::vector<double> logits =
          forward_image(x, channels, height, width);
      const std::int64_t arg = static_cast<std::int64_t>(
          std::max_element(logits.begin(), logits.end()) - logits.begin());
      hit[static_cast<std::size_t>(i)] =
          arg == (*test.labels)[static_cast<std::size_t>(i)] ? 1 : 0;
    }
  });
  int correct = 0;
  for (unsigned char b : hit) correct += b;
  return static_cast<float>(correct) / static_cast<float>(n);
}

void NetworkExecutor::apply_mean_init_offsets() {
  const int maxw = (1 << opt_.exec.weight_bits) - 1;
  const float lo = static_cast<float>(opt_.exec.offsets.offset_min());
  const float hi = static_cast<float>(opt_.exec.offsets.offset_max());
  for (Stage& s : stages_) {
    if (!s.exec) continue;
    const std::vector<double> crw = s.exec->measure_crw();
    std::vector<float> offsets(s.assign.offsets.size());
    const std::int64_t cols = s.lq.cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      for (std::int64_t g = 0; g < s.assign.groups_per_col; ++g) {
        const std::size_t gi = static_cast<std::size_t>(g * cols + c);
        const std::int64_t r0 = g * s.m;
        const std::int64_t r1 = std::min<std::int64_t>(s.lq.rows, r0 + s.m);
        double acc = 0.0;
        for (std::int64_t r = r0; r < r1; ++r) {
          const int ntw = s.lq.at(r, c);
          const double target =
              s.assign.complemented[gi] ? maxw - ntw : ntw;
          acc += target - crw[static_cast<std::size_t>(r * cols + c)];
        }
        offsets[gi] = std::clamp(
            static_cast<float>(acc / static_cast<double>(r1 - r0)), lo, hi);
        offsets[gi] = std::round(offsets[gi]);  // 8-bit register grid
      }
    }
    s.exec->set_offsets(std::move(offsets));
  }
}

std::int64_t NetworkExecutor::crossbar_count() const {
  std::int64_t n = 0;
  for (const Stage& s : stages_) {
    if (s.exec) n += s.exec->crossbar_count();
  }
  return n;
}

}  // namespace rdo::sim
