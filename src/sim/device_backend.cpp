#include "sim/device_backend.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/check.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/im2col.h"
#include "nn/parallel.h"
#include "nn/pooling.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "quant/act_quant.h"

namespace rdo::sim {

using rdo::nn::Conv2D;
using rdo::nn::Dense;

DeviceSimBackend::DeviceSimBackend(const rdo::core::DeploymentPlan& plan,
                                   const rdo::nn::Layer& src,
                                   DeviceSimOptions dopt)
    : engine_(plan, src, /*keep_cell_values=*/true),
      plan_(plan),
      dopt_(dopt) {
  // Device substrate: geometry from dopt, device physics and offset
  // configuration from the shared plan.
  ExecutorConfig cfg;
  cfg.xbar.rows = dopt_.xbar_rows;
  cfg.xbar.cols = dopt_.xbar_cols;
  cfg.xbar.cell = plan_.opt.cell;
  cfg.xbar.variation = plan_.opt.variation;
  cfg.xbar.active_wordlines = dopt_.active_wordlines;
  cfg.xbar.adc_bits = dopt_.adc_bits;
  cfg.offsets = plan_.opt.offsets;
  cfg.weight_bits = plan_.opt.weight_bits;

  // Walk the engine's twin (same topology as `src`, already moved to the
  // plan's quantized + calibrated operating point) in definition order
  // and validate the topology.
  rdo::nn::Layer* root = &engine_.network();
  std::vector<rdo::nn::Layer*> all;
  collect_layers(root, all);
  std::size_t mi = 0;
  for (rdo::nn::Layer* l : all) {
    if (l == root) continue;
    Stage stage;
    if (l->name() == "ReLU") {
      stage.kind = Stage::Kind::ReLU;
      stages_.push_back(std::move(stage));
      continue;
    }
    if (l->name() == "Flatten" || l->name() == "Dropout") {
      continue;  // shape bookkeeping only / identity at inference
    }
    if (auto* aq = dynamic_cast<rdo::quant::ActQuant*>(l)) {
      stage.kind = Stage::Kind::ActQuant;
      stage.aq = aq;
      stages_.push_back(std::move(stage));
      continue;
    }
    if (auto* pool = dynamic_cast<rdo::nn::MaxPool2D*>(l)) {
      stage.kind = Stage::Kind::MaxPool;
      stage.pool_window = static_cast<int>(pool->window());
      stages_.push_back(std::move(stage));
      continue;
    }
    auto* op = dynamic_cast<rdo::nn::MatrixOp*>(l);
    if (op == nullptr) {
      throw std::invalid_argument(
          "DeviceSimBackend: unsupported layer at device level: " +
          l->name());
    }
    rdo::nn::Param* bias_param = nullptr;
    if (auto* conv = dynamic_cast<Conv2D*>(l)) {
      stage.kind = Stage::Kind::Conv;
      stage.kernel = static_cast<int>(conv->kernel());
      stage.stride = static_cast<int>(conv->stride());
      stage.pad = static_cast<int>(conv->pad());
      bias_param = &conv->bias_param();
    } else if (auto* dense = dynamic_cast<Dense*>(l)) {
      stage.kind = Stage::Kind::Crossbar;
      bias_param = &dense->bias_param();
    } else {
      throw std::invalid_argument(
          "DeviceSimBackend: unsupported layer at device level: " +
          l->name());
    }
    RDO_CHECK(mi < plan_.layers.size(),
              "DeviceSimBackend: network does not match the plan");
    stage.plan_index = mi;
    const rdo::core::PlanLayer& pl = plan_.layers[mi];
    ++mi;
    // Per-layer executor config: the tune_group_size pass may have raised
    // this layer's offset-group size above the global opt.offsets.m.
    ExecutorConfig lcfg = cfg;
    lcfg.offsets.m = pl.m;
    stage.exec = std::make_unique<CrossbarLayerExecutor>(pl.lq, pl.assign,
                                                         lcfg);
    stage.bias.assign(static_cast<std::size_t>(pl.fan_out), 0.0f);
    if (bias_param != nullptr && bias_param->value.size() == pl.fan_out) {
      for (std::int64_t c = 0; c < pl.fan_out; ++c) {
        stage.bias[static_cast<std::size_t>(c)] = bias_param->value[c];
      }
    }
    stages_.push_back(std::move(stage));
  }
  RDO_CHECK(mi == plan_.layers.size(),
            "DeviceSimBackend: network does not match the plan");
}

void DeviceSimBackend::sync_devices() {
  const std::vector<rdo::core::EffectiveWeightBackend::LayerState>& states =
      engine_.layers();
  for (Stage& s : stages_) {
    if (!s.exec) continue;
    s.exec->program_cell_values(states[s.plan_index].cells);
    s.exec->set_offsets(states[s.plan_index].offsets);
  }
}

void DeviceSimBackend::program_cycle(std::uint64_t cycle_salt) {
  engine_.program_cycle(cycle_salt);
  sync_devices();
  deployed_ = true;
}

void DeviceSimBackend::tune(const rdo::nn::DataView& train) {
  engine_.tune(train);
  if (!rdo::core::scheme_uses_pwt(plan_.opt.scheme)) return;
  // Install the tuned (register-snapped) offsets into the digital offset
  // units; the devices themselves are untouched by tuning.
  for (Stage& s : stages_) {
    if (!s.exec) continue;
    s.exec->set_offsets(engine_.layers()[s.plan_index].offsets);
  }
}

std::vector<double> DeviceSimBackend::forward(
    const std::vector<double>& x) const {
  return forward_image(x, /*channels=*/0, /*height=*/0, /*width=*/0);
}

std::vector<double> DeviceSimBackend::forward_image(
    const std::vector<double>& x, int channels, int height,
    int width) const {
  std::vector<double> h = x;
  int c = channels, hh = height, ww = width;
  for (const Stage& s : stages_) {
    switch (s.kind) {
      case Stage::Kind::ReLU:
        for (auto& v : h) v = std::max(0.0, v);
        break;
      case Stage::Kind::ActQuant: {
        // Digital activation quantization in front of the DACs; same
        // float grid as the twin's ActQuant layer so the paths agree.
        if (s.aq != nullptr && s.aq->enabled()) {
          const float step = s.aq->step();
          const float levels =
              static_cast<float>((1 << s.aq->bits()) - 1);
          for (auto& v : h) {
            float q = std::round(static_cast<float>(v) / step);
            q = std::clamp(q, 0.0f, levels);
            v = static_cast<double>(q * step);
          }
        }
        break;
      }
      case Stage::Kind::MaxPool: {
        RDO_CHECK(c > 0, "DeviceSimBackend: pooling needs an image");
        const int oh = hh / s.pool_window, ow = ww / s.pool_window;
        std::vector<double> y(static_cast<std::size_t>(c) * oh * ow);
        // Same kernel as the float nn::MaxPool2D layer, so the device
        // and float paths cannot drift (asserted in test_equivalence).
        rdo::nn::maxpool2d_image(h.data(), c, hh, ww, s.pool_window,
                                 y.data());
        h = std::move(y);
        hh = oh;
        ww = ow;
        break;
      }
      case Stage::Kind::Conv: {
        RDO_CHECK(c > 0, "DeviceSimBackend: conv needs an image");
        const rdo::core::PlanLayer& pl = plan_.layers[s.plan_index];
        rdo::obs::TraceSpan stage_span("sim:conv_stage", "sim");
        stage_span.arg("kernel", s.kernel);
        stage_span.arg("out_channels", pl.lq.cols);
        const int oh = static_cast<int>(
            rdo::nn::conv_out_dim(hh, s.kernel, s.stride, s.pad));
        const int ow = static_cast<int>(
            rdo::nn::conv_out_dim(ww, s.kernel, s.stride, s.pad));
        const std::int64_t fin = pl.lq.rows;
        const std::int64_t oc = pl.lq.cols;
        // im2col rows, each driven through the crossbars as one VMM.
        std::vector<float> img(h.size());
        for (std::size_t i = 0; i < h.size(); ++i) {
          img[i] = static_cast<float>(h[i]);
        }
        std::vector<float> cols(static_cast<std::size_t>(oh) * ow * fin);
        rdo::nn::im2col(img.data(), c, hh, ww, s.kernel, s.kernel, s.stride,
                        s.pad, cols.data());
        std::vector<double> y(static_cast<std::size_t>(oc) * oh * ow, 0.0);
        // Each im2col row is one independent VMM through the (read-only)
        // crossbars; dispatch them across the pool. Every output
        // position is written by exactly one task, so results are
        // bit-identical for any thread count. Runs inline when already
        // inside evaluate()'s per-image parallelism.
        rdo::nn::parallel_for(
            oh * ow,
            [&](std::int64_t p0, std::int64_t p1) {
              std::vector<double> row(static_cast<std::size_t>(fin));
              for (std::int64_t p = p0; p < p1; ++p) {
                for (std::int64_t j = 0; j < fin; ++j) {
                  row[static_cast<std::size_t>(j)] =
                      cols[static_cast<std::size_t>(p) * fin +
                           static_cast<std::size_t>(j)];
                }
                const std::vector<double> out = s.exec->forward(row);
                for (std::int64_t k = 0; k < oc; ++k) {
                  y[static_cast<std::size_t>(k * oh * ow + p)] =
                      out[static_cast<std::size_t>(k)] +
                      s.bias[static_cast<std::size_t>(k)];
                }
              }
            });
        h = std::move(y);
        c = static_cast<int>(oc);
        hh = oh;
        ww = ow;
        break;
      }
      case Stage::Kind::Crossbar: {
        const rdo::core::PlanLayer& pl = plan_.layers[s.plan_index];
        rdo::obs::TraceSpan stage_span("sim:crossbar_stage", "sim");
        stage_span.arg("rows", pl.lq.rows);
        stage_span.arg("cols", pl.lq.cols);
        std::vector<double> y = s.exec->forward(h);
        for (std::size_t k = 0; k < y.size(); ++k) y[k] += s.bias[k];
        h = std::move(y);
        c = 0;  // now a flat vector
        break;
      }
    }
  }
  return h;
}

float DeviceSimBackend::device_accuracy(const rdo::nn::DataView& test,
                                        std::int64_t max_samples) const {
  const std::int64_t n = max_samples > 0
                             ? std::min<std::int64_t>(max_samples,
                                                      test.size())
                             : test.size();
  const std::int64_t sample = test.images->size() / test.images->dim(0);
  const int channels = static_cast<int>(test.images->dim(1));
  const int height = static_cast<int>(test.images->dim(2));
  const int width = static_cast<int>(test.images->dim(3));
  // Batched inference: forward_image is const and every stage reads only
  // state frozen since the last program_cycle()/tune(), so images
  // classify concurrently. Each image's verdict lands in its own slot
  // and the final reduction is an integer sum — the accuracy is
  // bit-identical for any thread count.
  std::vector<unsigned char> hit(static_cast<std::size_t>(n), 0);
  rdo::obs::TraceSpan span("sim:evaluate", "sim");
  span.arg("n", n);
  rdo::nn::parallel_for(n, [&](std::int64_t i0, std::int64_t i1) {
    rdo::obs::TraceSpan chunk_span("sim:evaluate_chunk", "sim");
    chunk_span.arg("begin", i0);
    chunk_span.arg("end", i1);
    std::vector<double> x(static_cast<std::size_t>(sample));
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* src = test.images->data() + i * sample;
      for (std::int64_t j = 0; j < sample; ++j) {
        x[static_cast<std::size_t>(j)] = src[j];
      }
      const std::vector<double> logits =
          forward_image(x, channels, height, width);
      const std::int64_t arg = static_cast<std::int64_t>(
          std::max_element(logits.begin(), logits.end()) - logits.begin());
      hit[static_cast<std::size_t>(i)] =
          arg == (*test.labels)[static_cast<std::size_t>(i)] ? 1 : 0;
    }
  });
  int correct = 0;
  for (unsigned char b : hit) correct += b;
  return static_cast<float>(correct) / static_cast<float>(n);
}

float DeviceSimBackend::evaluate(const rdo::nn::DataView& test,
                                 std::int64_t batch) {
  RDO_CHECK(deployed_, "DeviceSimBackend: program_cycle() first");
  rdo::obs::ScopedTimer timer(&eval_stats_.eval_s);
  rdo::obs::TraceSpan span("deploy:evaluate", "deploy");
  span.arg("batch", batch);
  rdo::obs::Stopwatch watch;
  const float acc = device_accuracy(test, dopt_.eval_max_samples);
  eval_stats_.eval_seconds.push_back(watch.seconds());
  span.arg("accuracy", static_cast<double>(acc));
  eval_stats_.eval_accuracy.push_back(acc);
  return acc;
}

const rdo::core::DeployStats& DeviceSimBackend::stats() const {
  // The engine never evaluates (its eval fields stay empty), so the
  // merged record carries the engine's programming/PWT counters plus the
  // device-side evaluation trace.
  merged_ = engine_.stats();
  merged_.merge(eval_stats_);
  return merged_;
}

std::int64_t DeviceSimBackend::crossbar_count() const {
  std::int64_t n = 0;
  for (const Stage& s : stages_) {
    if (s.exec) n += s.exec->crossbar_count();
  }
  return n;
}

}  // namespace rdo::sim
