#include "sim/crossbar_executor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/check.h"
#include "core/offset.h"
#include "obs/trace.h"

namespace rdo::sim {

using rdo::core::group_of_row;
using rdo::rram::Crossbar;

CrossbarLayerExecutor::CrossbarLayerExecutor(
    const rdo::quant::LayerQuant& lq, const rdo::core::VawoResult& assign,
    const ExecutorConfig& cfg, rdo::nn::Rng& rng)
    : lq_(lq),
      assign_(assign),
      cfg_(cfg),
      prog_(cfg.xbar.cell, cfg.weight_bits, cfg.xbar.variation),
      offsets_(assign.offsets) {
  build_tiles(&rng);
}

CrossbarLayerExecutor::CrossbarLayerExecutor(
    const rdo::quant::LayerQuant& lq, const rdo::core::VawoResult& assign,
    const ExecutorConfig& cfg)
    : lq_(lq),
      assign_(assign),
      cfg_(cfg),
      prog_(cfg.xbar.cell, cfg.weight_bits, cfg.xbar.variation),
      offsets_(assign.offsets) {
  build_tiles(nullptr);
}

void CrossbarLayerExecutor::build_tiles(rdo::nn::Rng* rng) {
  RDO_CHECK(cfg_.offsets.m % cfg_.xbar.active_wordlines == 0,
            "CrossbarLayerExecutor: m must be a multiple of the activated "
            "wordlines (paper Sec. III-A)");
  // A value like m = 96 on 128-row crossbars would let one offset
  // group straddle a row-tile boundary, splitting a single logical
  // offset register across two physical tiles — the forward pass would
  // then apply one tile's group offset to rows belonging to the next
  // group (violates the Sec. III-A geometry, src/core/offset.h).
  RDO_CHECK(cfg_.xbar.rows % cfg_.offsets.m == 0,
            "CrossbarLayerExecutor: crossbar rows must be a multiple of m "
            "so offset groups never straddle a row-tile boundary (paper "
            "Sec. III-A)");
  RDO_CHECK(assign_.ctw.size() == lq_.q.size(),
            "CrossbarLayerExecutor: " + std::to_string(assign_.ctw.size()) +
                " assigned CTWs for " + std::to_string(lq_.q.size()) +
                " quantized weights");
  tiling_ = rdo::rram::compute_tiling(lq_.rows, lq_.cols, cfg_.xbar.rows,
                                      cfg_.xbar.cols,
                                      prog_.cells_per_weight());
  rdo::obs::TraceSpan span("sim:build_layer", "sim");
  span.arg("rows", lq_.rows);
  span.arg("cols", lq_.cols);
  span.arg("m", cfg_.offsets.m);
  span.arg("groups", assign_.groups_per_col);
  span.arg("row_tiles", tiling_.row_tiles);
  span.arg("col_tiles", tiling_.col_tiles);
  // Program each tile: cell states from the CTWs, variation factors drawn
  // per weight (PerWeight scope: all cells of a weight share the factor)
  // or per cell (PerCell scope).
  const std::int64_t wpr = cfg_.xbar.cols / prog_.cells_per_weight();
  rdo::quant::LayerQuant ctw_view = lq_;
  ctw_view.q = assign_.ctw;
  for (std::int64_t tr = 0; tr < tiling_.row_tiles; ++tr) {
    for (std::int64_t tc = 0; tc < tiling_.col_tiles; ++tc) {
      rdo::obs::TraceSpan tile_span("sim:program_tile", "sim");
      tile_span.arg("tr", tr);
      tile_span.arg("tc", tc);
      std::vector<int> states =
          rdo::rram::tile_states(ctw_view, prog_, cfg_.xbar, tr, tc);
      Crossbar xb(cfg_.xbar);
      if (rng == nullptr) {
        xb.program_ideal(states);
        xbars_.push_back(std::move(xb));
        continue;
      }
      std::vector<double> factors(states.size(), 1.0);
      for (std::int64_t r = 0; r < cfg_.xbar.rows; ++r) {
        const std::int64_t mr = tr * cfg_.xbar.rows + r;
        if (mr >= lq_.rows) break;
        for (std::int64_t wc = 0; wc < wpr; ++wc) {
          const std::int64_t mc = tc * wpr + wc;
          if (mc >= lq_.cols) break;
          if (cfg_.xbar.variation.scope ==
              rdo::rram::VariationScope::PerWeight) {
            const double f = cfg_.xbar.variation.sample_factor(*rng);
            for (int k = 0; k < prog_.cells_per_weight(); ++k) {
              factors[static_cast<std::size_t>(
                  r * cfg_.xbar.cols + wc * prog_.cells_per_weight() + k)] =
                  f;
            }
          } else {
            for (int k = 0; k < prog_.cells_per_weight(); ++k) {
              factors[static_cast<std::size_t>(
                  r * cfg_.xbar.cols + wc * prog_.cells_per_weight() + k)] =
                  cfg_.xbar.variation.sample_factor(*rng);
            }
          }
        }
      }
      xb.program_with_factors(states, factors);
      xbars_.push_back(std::move(xb));
    }
  }
}

void CrossbarLayerExecutor::program_cell_values(
    const std::vector<std::vector<double>>& cells) {
  RDO_CHECK(cells.size() == lq_.q.size(),
            "program_cell_values: " + std::to_string(cells.size()) +
                " cell vectors for " + std::to_string(lq_.q.size()) +
                " weights");
  const int cpw = prog_.cells_per_weight();
  const std::int64_t wpr = cfg_.xbar.cols / cpw;
  rdo::quant::LayerQuant ctw_view = lq_;
  ctw_view.q = assign_.ctw;
  // Padding cells (beyond the layer's rows/cols) read as an ideally
  // programmed HRS device, matching the variation-drawn programming path.
  const double pad = cfg_.xbar.cell.read_value(0, 1.0);
  for (std::int64_t tr = 0; tr < tiling_.row_tiles; ++tr) {
    for (std::int64_t tc = 0; tc < tiling_.col_tiles; ++tc) {
      rdo::obs::TraceSpan tile_span("sim:program_tile", "sim");
      tile_span.arg("tr", tr);
      tile_span.arg("tc", tc);
      std::vector<int> states =
          rdo::rram::tile_states(ctw_view, prog_, cfg_.xbar, tr, tc);
      std::vector<double> values(states.size(), pad);
      for (std::int64_t r = 0; r < cfg_.xbar.rows; ++r) {
        const std::int64_t mr = tr * cfg_.xbar.rows + r;
        if (mr >= lq_.rows) break;
        for (std::int64_t wc = 0; wc < wpr; ++wc) {
          const std::int64_t mc = tc * wpr + wc;
          if (mc >= lq_.cols) break;
          const std::vector<double>& cv =
              cells[static_cast<std::size_t>(mr * lq_.cols + mc)];
          RDO_CHECK(cv.size() == static_cast<std::size_t>(cpw),
                    "program_cell_values: cells-per-weight mismatch");
          for (int k = 0; k < cpw; ++k) {
            values[static_cast<std::size_t>(r * cfg_.xbar.cols +
                                            wc * cpw + k)] =
                cv[static_cast<std::size_t>(k)];
          }
        }
      }
      xbars_[static_cast<std::size_t>(tr * tiling_.col_tiles + tc)]
          .program_values(states, values);
    }
  }
}

void CrossbarLayerExecutor::set_offsets(std::vector<float> offsets) {
  RDO_CHECK(offsets.size() == offsets_.size(),
            "set_offsets: " + std::to_string(offsets.size()) +
                " offsets for " + std::to_string(offsets_.size()) +
                " registers");
  offsets_ = std::move(offsets);
}

std::vector<double> CrossbarLayerExecutor::forward(
    const std::vector<double>& x) const {
  RDO_CHECK(static_cast<std::int64_t>(x.size()) == lq_.rows,
            "CrossbarLayerExecutor::forward: input length " +
                std::to_string(x.size()) + " for " +
                std::to_string(lq_.rows) + " rows");
  const std::int64_t cols = lq_.cols;
  const std::int64_t wpr = cfg_.xbar.cols / prog_.cells_per_weight();
  const double maxw = static_cast<double>(prog_.max_weight());
  std::vector<double> y_int(static_cast<std::size_t>(cols), 0.0);
  double sum_x_total = 0.0;
  for (double v : x) sum_x_total += v;

  std::vector<double> x_slice(static_cast<std::size_t>(cfg_.xbar.rows), 0.0);
  for (std::int64_t tr = 0; tr < tiling_.row_tiles; ++tr) {
    const std::int64_t row_base = tr * cfg_.xbar.rows;
    const std::int64_t rows_here =
        std::min<std::int64_t>(cfg_.xbar.rows, lq_.rows - row_base);
    std::fill(x_slice.begin(), x_slice.end(), 0.0);
    for (std::int64_t r = 0; r < rows_here; ++r) {
      x_slice[static_cast<std::size_t>(r)] =
          x[static_cast<std::size_t>(row_base + r)];
    }
    // One digital offset group = m consecutive wordlines of one column.
    for (std::int64_t g0 = 0; g0 < rows_here; g0 += cfg_.offsets.m) {
      const std::int64_t g1 =
          std::min<std::int64_t>(rows_here, g0 + cfg_.offsets.m);
      const std::int64_t group = group_of_row(row_base + g0, cfg_.offsets.m);
      double sum_x_g = 0.0;  // the digital Sum unit
      for (std::int64_t r = g0; r < g1; ++r) {
        sum_x_g += x_slice[static_cast<std::size_t>(r)];
      }
      for (std::int64_t tc = 0; tc < tiling_.col_tiles; ++tc) {
        const std::vector<double> cell_sums =
            xbar_at(tr, tc).vmm_rows(x_slice, static_cast<int>(g0),
                                     static_cast<int>(g1));
        for (std::int64_t wc = 0; wc < wpr; ++wc) {
          const std::int64_t col = tc * wpr + wc;
          if (col >= cols) break;
          // Shift-and-add across the weight's bit-slice columns.
          double z = 0.0;
          double radix = 1.0;
          for (int k = 0; k < prog_.cells_per_weight(); ++k) {
            z += radix *
                 cell_sums[static_cast<std::size_t>(
                     wc * prog_.cells_per_weight() + k)];
            radix *= cfg_.xbar.cell.radix();
          }
          const std::size_t gi = static_cast<std::size_t>(group * cols + col);
          // Digital offset unit: + b * sum(x)  (Eq. 1).
          const double zc = z + offsets_[gi] * sum_x_g;
          // Complement post-processing (Sec. III-C).
          y_int[static_cast<std::size_t>(col)] +=
              assign_.complemented[gi] ? maxw * sum_x_g - zc : zc;
        }
      }
    }
  }
  // ISAAC weight shift + dequantization.
  std::vector<double> y(static_cast<std::size_t>(cols));
  for (std::int64_t c = 0; c < cols; ++c) {
    y[static_cast<std::size_t>(c)] =
        lq_.scale * (y_int[static_cast<std::size_t>(c)] -
                     static_cast<double>(lq_.zero) * sum_x_total);
  }
  return y;
}

std::vector<double> CrossbarLayerExecutor::forward_bit_serial(
    const std::vector<double>& x, int input_bits, double x_max) const {
  RDO_CHECK(input_bits >= 1 && input_bits <= 16 && x_max > 0.0,
            "forward_bit_serial: bad input format (bits = " +
                std::to_string(input_bits) + ")");
  rdo::obs::TraceSpan span("sim:forward_bit_serial", "sim");
  span.arg("input_bits", input_bits);
  const int levels = (1 << input_bits) - 1;
  std::vector<int> xq(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < 0.0) {
      // Silently clamping would corrupt results for non-ReLU inputs; the
      // paper assumes unsigned DAC inputs, so reject instead.
      throw std::invalid_argument(
          "forward_bit_serial: negative input (DAC inputs are unsigned; "
          "rescale or rectify activations first)");
    }
    const double q = std::round(x[i] / x_max * levels);
    xq[i] = static_cast<int>(std::clamp(q, 0.0, static_cast<double>(levels)));
  }
  std::vector<double> acc(static_cast<std::size_t>(lq_.cols), 0.0);
  std::vector<double> xbit(x.size());
  for (int b = 0; b < input_bits; ++b) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      xbit[i] = static_cast<double>((xq[i] >> b) & 1);
    }
    const std::vector<double> partial = forward(xbit);
    const double weight = static_cast<double>(1 << b);  // shift-and-add
    for (std::size_t c = 0; c < acc.size(); ++c) {
      acc[c] += weight * partial[c];
    }
  }
  // Undo the input quantization scale.
  const double rescale = x_max / static_cast<double>(levels);
  for (auto& v : acc) v *= rescale;
  return acc;
}

std::vector<double> CrossbarLayerExecutor::measure_crw() const {
  rdo::obs::TraceSpan span("sim:measure_crw", "sim");
  const std::int64_t wpr = cfg_.xbar.cols / prog_.cells_per_weight();
  std::vector<double> crw(static_cast<std::size_t>(lq_.rows * lq_.cols));
  for (std::int64_t r = 0; r < lq_.rows; ++r) {
    const std::int64_t tr = r / cfg_.xbar.rows;
    const int lr = static_cast<int>(r % cfg_.xbar.rows);
    for (std::int64_t c = 0; c < lq_.cols; ++c) {
      const std::int64_t tc = c / wpr;
      const std::int64_t wc = c % wpr;
      std::vector<double> vals(
          static_cast<std::size_t>(prog_.cells_per_weight()));
      for (int k = 0; k < prog_.cells_per_weight(); ++k) {
        vals[static_cast<std::size_t>(k)] = xbar_at(tr, tc).cell_value(
            lr, static_cast<int>(wc * prog_.cells_per_weight() + k));
      }
      crw[static_cast<std::size_t>(r * lq_.cols + c)] = prog_.compose(vals);
    }
  }
  return crw;
}

}  // namespace rdo::sim
