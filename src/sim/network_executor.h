// Whole-network device-level inference.
//
// Runs a trained network (Sequential of Flatten / Dense / Conv2D / ReLU /
// MaxPool2D / ActQuant — i.e. LeNet-class CNNs and MLPs) entirely on
// simulated crossbars: every Dense/Conv2D layer is quantized, assigned
// CTWs/offsets (plain or VAWO*), tiled onto Crossbar arrays and executed
// via CrossbarLayerExecutor (convolutions are lowered to one VMM per
// output position, exactly how ISAAC drives them); ReLU, max-pooling and
// biases run digitally, as in the real accelerator. This is the "full
// simulator" path — the fast effective-weight path used by
// core::Deployment is validated against it.
//
// Post-writing tuning at device level is supported through the measured
// CRWs: apply_mean_init_offsets() performs the closed-form PWT warm start
// (per-group mean deviation) on the actual devices.
#pragma once

#include <memory>
#include <vector>

#include "nn/sequential.h"
#include "nn/trainer.h"
#include "sim/crossbar_executor.h"

namespace rdo::sim {

struct NetworkExecutorOptions {
  ExecutorConfig exec;
  bool use_vawo_star = true;  ///< VAWO* assignment (else plain)
  int lut_k_sets = 16;
  int lut_j_cycles = 8;
  std::int64_t grad_samples = 128;
  std::int64_t grad_batch = 32;
  std::uint64_t seed = 1;
};

class NetworkExecutor {
 public:
  /// `net` must be a Sequential of Flatten / Dense / Conv2D / ReLU /
  /// MaxPool2D / ActQuant layers; throws otherwise. The network itself is
  /// not modified. `train` is used for VAWO gradient collection.
  NetworkExecutor(rdo::nn::Sequential& net, const rdo::nn::DataView& train,
                  const NetworkExecutorOptions& opt);

  /// Device-level logits for one flat sample (MLPs; no conv stages).
  [[nodiscard]] std::vector<double> forward(
      const std::vector<double>& x) const;

  /// Device-level logits for one image of the given shape (CNNs).
  /// Thread-safe: const, and every stage reads only state frozen at
  /// construction (apply_mean_init_offsets is the only mutator and must
  /// not race with forwards). Conv stages dispatch their im2col rows
  /// across the nn/parallel.h pool when called from a serial context.
  [[nodiscard]] std::vector<double> forward_image(
      const std::vector<double>& x, int channels, int height,
      int width) const;

  /// Device-level test accuracy. Images are classified in parallel
  /// across the nn/parallel.h pool (RDO_THREADS); the result is
  /// bit-identical for any thread count. Convolution lowering still
  /// makes this slow; `max_samples` (0 = all) bounds the pass.
  [[nodiscard]] float evaluate(const rdo::nn::DataView& test,
                               std::int64_t max_samples = 0) const;

  /// Closed-form PWT warm start on the measured device conductances.
  void apply_mean_init_offsets();

  [[nodiscard]] std::int64_t crossbar_count() const;
  [[nodiscard]] std::size_t layer_count() const { return stages_.size(); }

 private:
  struct Stage {
    enum class Kind { Crossbar, Conv, ReLU, MaxPool } kind = Kind::ReLU;
    std::unique_ptr<CrossbarLayerExecutor> exec;  // Crossbar/Conv stages
    rdo::quant::LayerQuant lq;
    rdo::core::VawoResult assign;
    std::vector<float> bias;  // digital bias add after the crossbar
    int m = 16;
    int kernel = 0, stride = 1, pad = 0;  // Conv stages
    int pool_window = 2;                  // MaxPool stages
  };
  std::vector<Stage> stages_;
  NetworkExecutorOptions opt_;
};

}  // namespace rdo::sim
