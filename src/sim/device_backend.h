// Device-level execution backend over a compiled DeploymentPlan.
//
// Runs a trained network (Sequential of Flatten / Dense / Conv2D / ReLU /
// MaxPool2D / ActQuant / Dropout — i.e. LeNet-class CNNs and MLPs)
// entirely on simulated crossbars: every Dense/Conv2D layer is tiled onto
// Crossbar arrays and executed via CrossbarLayerExecutor (convolutions
// are lowered to one VMM per output position, exactly how ISAAC drives
// them); ReLU, max-pooling, activation quantization and biases run
// digitally, as in the real accelerator.
//
// The backend consumes the same DeploymentPlan as the fast
// core::EffectiveWeightBackend and supports the plan's full scheme matrix
// including gradient PWT: it embeds an effective-weight engine (which is
// numerically equivalent with an ideal ADC — a property the parity suite
// asserts) to draw each cycle's per-cell conductances and to run PWT,
// then replays the exact same cell values and tuned offsets onto the
// simulated crossbars. Deterministic DeployStats counters are therefore
// bit-identical across backends; only the ADC model and floating-point
// summation order can move the reported accuracy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/backend.h"
#include "core/plan.h"
#include "sim/crossbar_executor.h"

namespace rdo::sim {

/// Device geometry of the simulated substrate. Everything else — cell
/// model, variation, weight bits, offset geometry, LUT protocol, seed —
/// comes from the shared DeploymentPlan so the two backends cannot drift.
struct DeviceSimOptions {
  int xbar_rows = 128;
  int xbar_cols = 128;
  int active_wordlines = 16;  ///< wordlines driven per read cycle
  int adc_bits = 0;           ///< 0 = ideal ADC
  /// Device-level evaluation is slow (one VMM per conv output position);
  /// 0 = the full test set, otherwise evaluate() stops after this many
  /// samples.
  std::int64_t eval_max_samples = 0;
};

class DeviceSimBackend : public rdo::core::ExecutionBackend {
 public:
  /// `plan` must outlive the backend; `src` is cloned internally (via the
  /// embedded effective-weight engine) and never modified. Throws
  /// std::invalid_argument for network layers that cannot run at device
  /// level or when the network does not match the plan.
  DeviceSimBackend(const rdo::core::DeploymentPlan& plan,
                   const rdo::nn::Layer& src, DeviceSimOptions dopt = {});

  /// One CCV cycle: draws every weight's cell conductances from the
  /// plan's seeded stream and programs them into the simulated crossbars.
  void program_cycle(std::uint64_t cycle_salt) override;
  /// PWT on the cycle's measured conductances (runs the gradient loop on
  /// the numerically-equivalent effective-weight twin, then installs the
  /// tuned offsets into the digital offset units).
  void tune(const rdo::nn::DataView& train) override;
  /// Device-level test accuracy. Images classify in parallel across the
  /// nn/parallel.h pool; bit-identical for any thread count.
  float evaluate(const rdo::nn::DataView& test,
                 std::int64_t batch = 64) override;
  [[nodiscard]] const rdo::core::DeployStats& stats() const override;
  [[nodiscard]] const char* name() const override { return "device-sim"; }

  /// Device-level logits for one flat sample (MLPs; no conv stages).
  [[nodiscard]] std::vector<double> forward(
      const std::vector<double>& x) const;
  /// Device-level logits for one image of the given shape (CNNs).
  /// Thread-safe: const, and every stage reads only state frozen since
  /// the last program_cycle()/tune().
  [[nodiscard]] std::vector<double> forward_image(
      const std::vector<double>& x, int channels, int height,
      int width) const;

  [[nodiscard]] std::int64_t crossbar_count() const;
  [[nodiscard]] std::size_t layer_count() const { return stages_.size(); }

 private:
  struct Stage {
    enum class Kind { Crossbar, Conv, ReLU, MaxPool, ActQuant } kind =
        Kind::ReLU;
    std::unique_ptr<CrossbarLayerExecutor> exec;  // Crossbar/Conv stages
    std::size_t plan_index = 0;       ///< into plan.layers (exec stages)
    std::vector<float> bias;          ///< digital bias add after the xbar
    rdo::quant::ActQuant* aq = nullptr;  ///< ActQuant stages (twin-owned)
    int kernel = 0, stride = 1, pad = 0;  // Conv stages
    int pool_window = 2;                  // MaxPool stages
  };

  rdo::core::EffectiveWeightBackend engine_;  ///< draws devices, runs PWT
  const rdo::core::DeploymentPlan& plan_;
  DeviceSimOptions dopt_;
  std::vector<Stage> stages_;
  rdo::core::DeployStats eval_stats_;   ///< device-side evaluate() record
  mutable rdo::core::DeployStats merged_;  ///< engine + eval, see stats()
  bool deployed_ = false;

  /// Replay the engine's current cell values and offsets onto the
  /// simulated crossbars.
  void sync_devices();
  [[nodiscard]] float device_accuracy(const rdo::nn::DataView& test,
                                      std::int64_t max_samples) const;
};

}  // namespace rdo::sim
