#include "arch/isaac_cost.h"

#include <cmath>
#include <string>

#include "core/check.h"

namespace rdo::arch {

double OffsetHardware::area_um2(const GateCosts& g) const {
  return (adder_fa + multiplier_fa) * g.fa_area_um2 +
         multiplier_and * g.and_area_um2 +
         static_cast<double>(register_bits) * g.sram_bit_area_um2;
}

double OffsetHardware::power_uw(const GateCosts& g) const {
  return (adder_fa + multiplier_fa) * g.fa_power_uw +
         multiplier_and * g.and_power_uw +
         static_cast<double>(register_bits) * g.sram_bit_power_uw;
}

OffsetHardware offset_hardware(int m, int offset_bits, const TileParams& tp) {
  RDO_CHECK(m > 0 && offset_bits > 0,
            "offset_hardware: m = " + std::to_string(m) +
                ", offset_bits = " + std::to_string(offset_bits));
  OffsetHardware hw;
  // Bit-count adder for m 1-bit inputs: a compressor tree needs about
  // m - ceil(log2(m+1)) full adders; we use the conservative m - 1 count
  // (matches the paper's observation that adder cost grows with m).
  hw.adder_fa = m - 1;
  // 8x8 Wallace multiplier: 64 partial-product ANDs, ~48 FA equivalents in
  // the reduction tree plus a 16-bit final carry-propagate adder.
  hw.multiplier_fa = 48 + 16;
  hw.multiplier_and = 64;
  // Eq. 9: H = S * l / m registers of offset_bits bits, where l is the
  // number of weight columns stored (crossbar columns / cells per weight).
  const int cells_per_weight = tp.weight_bits / tp.cell_bits;
  const long long l = tp.crossbar_cols / cells_per_weight;
  hw.register_bits = static_cast<long long>(tp.crossbar_rows) * l / m *
                     offset_bits;
  return hw;
}

double sum_multi_delay_ns(int m, const GateCosts& g) {
  // Adder tree depth ~ log2(m) FA stages, Wallace reduction ~ 6 stages for
  // 8x8, final 16-bit carry-propagate ~ 16 FA worst case (ripple bound).
  const double adder_depth = std::ceil(std::log2(static_cast<double>(m)));
  const double wallace_depth = 6.0;
  const double cpa_depth = 16.0;
  return (adder_depth + wallace_depth + cpa_depth) * g.fa_delay_ns;
}

long long layer_offset_registers(long long rows, long long cols, int m) {
  RDO_CHECK(rows > 0 && cols > 0 && m > 0,
            "layer_offset_registers: rows = " + std::to_string(rows) +
                ", cols = " + std::to_string(cols) +
                ", m = " + std::to_string(m));
  return (rows + m - 1) / m * cols;
}

PlanOverhead plan_overhead(const std::vector<LayerOffsetCost>& layers,
                           int offset_bits, double read_power_ratio,
                           const TileParams& tp, const GateCosts& g) {
  RDO_CHECK(offset_bits > 0,
            "plan_overhead: offset_bits = " + std::to_string(offset_bits));
  PlanOverhead o;
  long long crossbars = 0;
  double gate_area_um2 = 0.0;
  double gate_power_uw = 0.0;
  for (const LayerOffsetCost& lc : layers) {
    RDO_CHECK(lc.m > 0 && lc.crossbars >= 0 && lc.registers >= 0,
              "plan_overhead: bad layer cost entry");
    crossbars += lc.crossbars;
    o.registers += lc.registers;
    // Adder + multiplier per crossbar at this layer's own m; the
    // register file is priced at the registers the plan actually keeps
    // (shared registers are fabricated once), not the Eq. 9 count.
    OffsetHardware hw = offset_hardware(lc.m, offset_bits, tp);
    hw.register_bits = 0;
    gate_area_um2 += hw.area_um2(g) * static_cast<double>(lc.crossbars);
    gate_power_uw += hw.power_uw(g) * static_cast<double>(lc.crossbars);
  }
  o.register_bits = o.registers * offset_bits;
  o.tiles_used = (crossbars + tp.crossbars_per_tile - 1) /
                 tp.crossbars_per_tile;
  o.area_mm2 = (gate_area_um2 + static_cast<double>(o.register_bits) *
                                    g.sram_bit_area_um2) *
               1e-6;
  const double digital_mw =
      (gate_power_uw + static_cast<double>(o.register_bits) *
                           g.sram_bit_power_uw) *
      1e-3;
  const double read_saving_mw = (1.0 - read_power_ratio) *
                                tp.device_read_power_mw *
                                static_cast<double>(o.tiles_used);
  o.power_mw = digital_mw - read_saving_mw;
  const double base_area =
      tp.tile_area_mm2 * static_cast<double>(o.tiles_used);
  const double base_power =
      tp.tile_power_mw * static_cast<double>(o.tiles_used);
  o.area_pct = base_area > 0.0 ? 100.0 * o.area_mm2 / base_area : 0.0;
  o.power_pct = base_power > 0.0 ? 100.0 * o.power_mw / base_power : 0.0;
  return o;
}

TileOverhead tile_overhead(int m, int offset_bits, double read_power_ratio,
                           const TileParams& tp, const GateCosts& g) {
  const OffsetHardware hw = offset_hardware(m, offset_bits, tp);
  TileOverhead o;
  o.area_mm2 = hw.area_um2(g) * tp.crossbars_per_tile * 1e-6;
  const double digital_mw =
      hw.power_uw(g) * tp.crossbars_per_tile * 1e-3;
  const double read_saving_mw =
      (1.0 - read_power_ratio) * tp.device_read_power_mw;
  o.power_mw = digital_mw - read_saving_mw;
  o.area_pct = 100.0 * o.area_mm2 / tp.tile_area_mm2;
  o.power_pct = 100.0 * o.power_mw / tp.tile_power_mw;
  return o;
}

}  // namespace rdo::arch
