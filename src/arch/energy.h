// Per-inference energy model of an ISAAC-style accelerator with digital
// offset support.
//
// Component energies follow the ISAAC paper's budget (ADC dominates,
// then eDRAM/crossbar reads); each term is configurable so the model can
// be recalibrated. The device-read term is conductance-proportional and
// therefore scheme-dependent: VAWO*'s lower CTWs reduce it (Table I), and
// this model turns that ratio into Joules.
#pragma once

#include <cstdint>

namespace rdo::arch {

/// Per-event energies (picojoules), first-order 32 nm estimates.
struct EnergyParams {
  double adc_conversion_pj = 16.0;  ///< one 8-bit ADC sample
  double dac_drive_pj = 0.4;        ///< one wordline driven for one cycle
  double sample_hold_pj = 0.01;     ///< one S&H capture
  double cell_read_pj_per_state = 0.05;  ///< per cell, per unit conductance
  double shift_add_pj = 0.2;        ///< one S+A accumulation
  double sum_multi_pj = 0.9;        ///< one Sum+Multi offset operation
  double register_read_pj = 0.05;   ///< one offset-register access
};

/// Geometry of one deployed crossbar read pass.
struct VmmGeometry {
  int rows = 128;
  int cols = 128;
  int active_wordlines = 16;
  int input_bits = 16;  ///< bit-serial input streaming
  int m = 16;           ///< offset sharing granularity
  bool offsets_enabled = true;
};

struct VmmEnergy {
  double adc_pj = 0.0;
  double dac_pj = 0.0;
  double device_pj = 0.0;
  double digital_pj = 0.0;  ///< S&H + S+A
  double offset_pj = 0.0;   ///< Sum+Multi + register reads
  [[nodiscard]] double total_pj() const {
    return adc_pj + dac_pj + device_pj + digital_pj + offset_pj;
  }
};

/// Energy of one full VMM on one crossbar.
///
/// `mean_state_sum` is the average total conductance of the array in
/// state units (sum over cells of state + HRS offset) — the quantity
/// Deployment::assigned_read_power() reports per network; pass the
/// per-crossbar average.
VmmEnergy vmm_energy(const VmmGeometry& g, double mean_state_sum,
                     const EnergyParams& p = {});

/// Total energy (picojoules) for `vmm_count` VMMs across `crossbars`
/// arrays with the given average state sum per crossbar.
double network_energy_pj(std::int64_t crossbars, std::int64_t vmm_count,
                         const VmmGeometry& g, double mean_state_sum,
                         const EnergyParams& p = {});

}  // namespace rdo::arch
