// ISAAC-tile cost model with digital-offset support (paper §III-E, §IV-B).
//
// Reproduces the Table II accounting: an ISAAC tile (0.372 mm^2, 330 mW,
// 100 ns cycle; Shafiee et al., ISCA'16) is extended per crossbar with
//   * one m-input 1-bit adder per read group (sums the activated
//     wordline input bits; cost grows with m),
//   * one 8x8 Wallace-tree multiplier, time-multiplexed across the
//     crossbar's columns (computes b * sum(x)),
//   * H = S*l/m offset registers of offset_bits each (Eq. 9), built from
//     SRAM.
// Gate-level unit costs are first-order 32 nm standard-cell estimates
// (full-adder equivalents), standing in for the paper's Synopsys DC
// synthesis at Nangate 45 nm scaled to 32 nm (see DESIGN.md).
#pragma once

#include <vector>

namespace rdo::arch {

/// Fixed parameters of the baseline ISAAC tile.
struct TileParams {
  double tile_area_mm2 = 0.372;
  double tile_power_mw = 330.0;
  int crossbars_per_tile = 96;  ///< 12 IMAs x 8 arrays (ISAAC)
  int crossbar_rows = 128;
  int crossbar_cols = 128;
  int weight_bits = 8;
  int cell_bits = 2;  ///< ISAAC stores 2 bits/cell
  /// Share of tile power spent reading the RRAM devices; the reading-power
  /// savings of VAWO* (Table I) apply to this share.
  double device_read_power_mw = 30.0;
  double clock_ns = 100.0;
};

/// 32 nm first-order standard-cell unit costs.
struct GateCosts {
  double fa_area_um2 = 3.0;    ///< full adder
  double fa_power_uw = 1.44;
  double fa_delay_ns = 0.35;
  double and_area_um2 = 0.6;
  double and_power_uw = 0.15;
  double sram_bit_area_um2 = 0.1;
  double sram_bit_power_uw = 0.03;
};

/// Digital-offset hardware attached to one crossbar.
struct OffsetHardware {
  int adder_fa = 0;       ///< FA-equivalents in the m-input bit-count adder
  int multiplier_fa = 0;  ///< FA-equivalents in the Wallace tree
  int multiplier_and = 0; ///< partial-product AND gates
  long long register_bits = 0;

  [[nodiscard]] double area_um2(const GateCosts& g) const;
  [[nodiscard]] double power_uw(const GateCosts& g) const;
};

/// Hardware needed for sharing granularity m with `offset_bits`-bit
/// registers on a crossbar of the given tile geometry.
OffsetHardware offset_hardware(int m, int offset_bits, const TileParams& tp);

/// Critical-path delay of the Sum+Multi pipeline stage (adder tree depth +
/// Wallace tree + final carry-propagate adder). Must not exceed
/// TileParams::clock_ns for the stage to hide inside the ISAAC pipeline.
double sum_multi_delay_ns(int m, const GateCosts& g);

/// Total Table II-style tile overhead.
///
/// `read_power_ratio` is the measured relative device reading power of the
/// deployed scheme vs. plain (Table I; 1.0 = no change); the saving
/// (1 - ratio) * device_read_power_mw offsets the digital additions.
struct TileOverhead {
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double area_pct = 0.0;   ///< vs. tile_area_mm2
  double power_pct = 0.0;  ///< vs. tile_power_mw
};

TileOverhead tile_overhead(int m, int offset_bits, double read_power_ratio,
                           const TileParams& tp = {},
                           const GateCosts& g = {});

/// Eq. 9 generalized to one layer's own matrix: ceil(rows / m) offset
/// groups per column, one register each. This is what
/// core::DeploymentPlan::total_offset_registers() sums before the
/// optimizer passes shrink it (asserted in tests/test_arch.cpp), so the
/// cost model and the plan accounting cannot drift apart.
long long layer_offset_registers(long long rows, long long cols, int m);

/// Per-layer slice of a compiled plan, as consumed by plan_overhead():
/// the layer's own offset-group size (tune_group_size may have raised it
/// above the global m), the crossbars it tiles onto, and the registers
/// it actually needs (color_offset_registers may have shrunk them below
/// the Eq. 9 geometric count).
struct LayerOffsetCost {
  int m = 1;
  long long crossbars = 0;
  long long registers = 0;
};

/// Plan-aware Table II accounting: the per-layer generalization of
/// tile_overhead() that prices each layer's adder at its own m and the
/// register file at the registers the plan actually keeps.
struct PlanOverhead {
  long long registers = 0;      ///< sum of LayerOffsetCost::registers
  long long register_bits = 0;  ///< registers * offset_bits
  long long tiles_used = 0;     ///< ceil(total crossbars / per tile)
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double area_pct = 0.0;   ///< vs. tiles_used * tile_area_mm2
  double power_pct = 0.0;  ///< vs. tiles_used * tile_power_mw
};

PlanOverhead plan_overhead(const std::vector<LayerOffsetCost>& layers,
                           int offset_bits, double read_power_ratio,
                           const TileParams& tp = {},
                           const GateCosts& g = {});

}  // namespace rdo::arch
