#include "arch/energy.h"

#include "core/check.h"

namespace rdo::arch {

VmmEnergy vmm_energy(const VmmGeometry& g, double mean_state_sum,
                     const EnergyParams& p) {
  RDO_CHECK(g.rows > 0 && g.cols > 0 && g.active_wordlines > 0 &&
                g.input_bits > 0 && g.m > 0,
            "vmm_energy: bad geometry");
  VmmEnergy e;
  const std::int64_t groups =
      (g.rows + g.active_wordlines - 1) / g.active_wordlines;
  const std::int64_t cycles = groups * g.input_bits;
  // One ADC conversion per column per read cycle.
  e.adc_pj = static_cast<double>(cycles) * g.cols * p.adc_conversion_pj;
  // DAC drives the active wordlines every cycle.
  e.dac_pj = static_cast<double>(cycles) * g.active_wordlines *
             p.dac_drive_pj;
  // Device read energy: proportional to the array's total conductance;
  // each cell is read once per input bit (its group's cycles).
  e.device_pj = mean_state_sum * g.input_bits * p.cell_read_pj_per_state;
  // S&H per column per cycle plus shift-add per column per cycle.
  e.digital_pj = static_cast<double>(cycles) * g.cols *
                 (p.sample_hold_pj + p.shift_add_pj);
  if (g.offsets_enabled) {
    // One Sum+Multi per offset group per cycle group, plus a register
    // read each.
    const std::int64_t offset_groups_per_col = (g.rows + g.m - 1) / g.m;
    const std::int64_t ops = offset_groups_per_col * g.cols * g.input_bits;
    e.offset_pj =
        static_cast<double>(ops) * (p.sum_multi_pj + p.register_read_pj);
  }
  return e;
}

double network_energy_pj(std::int64_t crossbars, std::int64_t vmm_count,
                         const VmmGeometry& g, double mean_state_sum,
                         const EnergyParams& p) {
  const VmmEnergy e = vmm_energy(g, mean_state_sum, p);
  return e.total_pj() * static_cast<double>(crossbars) *
         static_cast<double>(vmm_count);
}

}  // namespace rdo::arch
