#include "arch/pipeline.h"

#include <algorithm>

namespace rdo::arch {

LayerLatency layer_latency(std::int64_t matrix_rows, int m,
                           const PipelineParams& pp, const GateCosts& g) {
  LayerLatency out;
  const std::int64_t rows = std::min<std::int64_t>(
      matrix_rows, pp.crossbar_rows);  // row tiles run in parallel
  const std::int64_t groups_per_bit =
      (rows + pp.active_wordlines - 1) / pp.active_wordlines;
  out.read_cycles = groups_per_bit * pp.input_bits;
  out.sum_multi_hidden = sum_multi_delay_ns(m, g) < pp.clock_ns;
  // The Sum+Multi stage adds one pipeline cycle of latency when hidden;
  // otherwise it stretches every cycle to its combinational delay.
  if (out.sum_multi_hidden) {
    out.latency_ns = static_cast<double>(out.read_cycles + 1) * pp.clock_ns;
    out.vmm_per_second =
        1e9 / (static_cast<double>(out.read_cycles) * pp.clock_ns);
  } else {
    const double cycle = sum_multi_delay_ns(m, g);
    out.latency_ns = static_cast<double>(out.read_cycles + 1) * cycle;
    out.vmm_per_second =
        1e9 / (static_cast<double>(out.read_cycles) * cycle);
  }
  return out;
}

}  // namespace rdo::arch
