// ISAAC pipeline timing model with the Sum+Multi stage (paper §III-E).
//
// ISAAC streams input bits serially: one VMM needs
// ceil(rows / active_wordlines) read cycles per input bit, times the
// input width. Row tiles operate in parallel crossbars, so latency is set
// by cycles, not tiles. The digital-offset Sum+Multi operation adds one
// pipeline stage; as long as its combinational delay fits the clock
// (sum_multi_delay_ns < clock_ns) it costs one cycle of latency and zero
// throughput (paper §IV-B2).
#pragma once

#include <cstdint>

#include "arch/isaac_cost.h"

namespace rdo::arch {

struct PipelineParams {
  double clock_ns = 100.0;
  int input_bits = 16;  ///< ISAAC's input resolution, streamed bit-serially
  int crossbar_rows = 128;
  int active_wordlines = 16;
};

struct LayerLatency {
  std::int64_t read_cycles = 0;   ///< cycles for one full VMM
  double latency_ns = 0.0;        ///< including the Sum+Multi stage
  double vmm_per_second = 0.0;    ///< pipelined throughput
  bool sum_multi_hidden = false;  ///< fits inside one clock period
};

/// Latency/throughput of one matrix layer with `matrix_rows` wordlines at
/// sharing granularity m.
LayerLatency layer_latency(std::int64_t matrix_rows, int m,
                           const PipelineParams& pp = {},
                           const GateCosts& g = {});

}  // namespace rdo::arch
