// Synthetic image classification datasets.
//
// Stand-ins for MNIST and CIFAR-10 (no dataset files are available in this
// offline environment — see DESIGN.md). Each class gets a smooth random
// prototype (a sum of Gaussian blobs); samples are the prototype under a
// random sub-pixel translation plus additive noise, clamped to [0, 1].
// The resulting tasks train to high accuracy with LeNet-class networks,
// giving the same "high ideal accuracy, collapses under variation" regime
// the paper's experiments need.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "nn/trainer.h"

namespace rdo::data {

struct SyntheticSpec {
  int classes = 10;
  int channels = 1;
  int height = 28;
  int width = 28;
  int train_per_class = 150;
  int test_per_class = 40;
  int blobs_per_class = 6;     ///< Gaussian blobs forming a prototype
  double noise = 0.25;         ///< additive noise std-dev
  double max_shift = 2.0;      ///< max |translation| in pixels
  std::uint64_t seed = 42;
};

/// "MNIST-like": 28x28 grayscale, 10 classes.
SyntheticSpec mnist_like();
/// "CIFAR-like": 32x32 RGB, 10 classes.
SyntheticSpec cifar_like();

struct SyntheticDataset {
  rdo::nn::Tensor train_images;
  std::vector<int> train_labels;
  rdo::nn::Tensor test_images;
  std::vector<int> test_labels;

  [[nodiscard]] rdo::nn::DataView train() const {
    return {&train_images, &train_labels};
  }
  [[nodiscard]] rdo::nn::DataView test() const {
    return {&test_images, &test_labels};
  }
};

SyntheticDataset make_synthetic(const SyntheticSpec& spec);

}  // namespace rdo::data
