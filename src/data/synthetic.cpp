#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

namespace rdo::data {

using rdo::nn::Rng;
using rdo::nn::Tensor;

SyntheticSpec mnist_like() {
  SyntheticSpec s;
  s.channels = 1;
  s.height = 28;
  s.width = 28;
  s.seed = 42;
  return s;
}

SyntheticSpec cifar_like() {
  SyntheticSpec s;
  s.channels = 3;
  s.height = 32;
  s.width = 32;
  s.noise = 0.3;
  s.max_shift = 3.0;
  s.seed = 77;
  return s;
}

namespace {

struct Blob {
  double cx, cy, sx, sy, amp;
  int channel;
};

/// Render the class prototype shifted by (dx, dy) into `out`.
void render(const std::vector<Blob>& blobs, const SyntheticSpec& spec,
            double dx, double dy, float* out) {
  const std::int64_t hw = static_cast<std::int64_t>(spec.height) * spec.width;
  std::fill(out, out + spec.channels * hw, 0.0f);
  for (const Blob& b : blobs) {
    float* img = out + b.channel * hw;
    for (int y = 0; y < spec.height; ++y) {
      const double ey = (y - (b.cy + dy)) / b.sy;
      for (int x = 0; x < spec.width; ++x) {
        const double ex = (x - (b.cx + dx)) / b.sx;
        img[y * spec.width + x] += static_cast<float>(
            b.amp * std::exp(-0.5 * (ex * ex + ey * ey)));
      }
    }
  }
}

}  // namespace

SyntheticDataset make_synthetic(const SyntheticSpec& spec) {
  Rng rng(spec.seed);
  // Class prototypes.
  std::vector<std::vector<Blob>> prototypes(
      static_cast<std::size_t>(spec.classes));
  for (int k = 0; k < spec.classes; ++k) {
    Rng crng = rng.split(static_cast<std::uint64_t>(k));
    auto& blobs = prototypes[static_cast<std::size_t>(k)];
    for (int b = 0; b < spec.blobs_per_class; ++b) {
      Blob blob;
      blob.cx = crng.uniform(0.2, 0.8) * spec.width;
      blob.cy = crng.uniform(0.2, 0.8) * spec.height;
      blob.sx = crng.uniform(0.06, 0.18) * spec.width;
      blob.sy = crng.uniform(0.06, 0.18) * spec.height;
      blob.amp = crng.uniform(0.5, 1.0);
      blob.channel =
          static_cast<int>(crng.uniform_int(0, spec.channels - 1));
      blobs.push_back(blob);
    }
  }

  const std::int64_t n_train =
      static_cast<std::int64_t>(spec.classes) * spec.train_per_class;
  const std::int64_t n_test =
      static_cast<std::int64_t>(spec.classes) * spec.test_per_class;
  SyntheticDataset ds;
  ds.train_images =
      Tensor({n_train, spec.channels, spec.height, spec.width});
  ds.test_images = Tensor({n_test, spec.channels, spec.height, spec.width});
  ds.train_labels.resize(static_cast<std::size_t>(n_train));
  ds.test_labels.resize(static_cast<std::size_t>(n_test));

  const std::int64_t sample_size =
      static_cast<std::int64_t>(spec.channels) * spec.height * spec.width;
  Rng srng = rng.split(0xDA7A);
  auto emit = [&](Tensor& images, std::vector<int>& labels,
                  std::int64_t index, int cls) {
    float* out = images.data() + index * sample_size;
    const double dx = srng.uniform(-spec.max_shift, spec.max_shift);
    const double dy = srng.uniform(-spec.max_shift, spec.max_shift);
    render(prototypes[static_cast<std::size_t>(cls)], spec, dx, dy, out);
    for (std::int64_t i = 0; i < sample_size; ++i) {
      const double v = out[i] + srng.normal(0.0, spec.noise);
      out[i] = static_cast<float>(std::clamp(v, 0.0, 1.0));
    }
    labels[static_cast<std::size_t>(index)] = cls;
  };

  std::int64_t ti = 0, si = 0;
  for (int k = 0; k < spec.classes; ++k) {
    for (int i = 0; i < spec.train_per_class; ++i) {
      emit(ds.train_images, ds.train_labels, ti++, k);
    }
    for (int i = 0; i < spec.test_per_class; ++i) {
      emit(ds.test_images, ds.test_labels, si++, k);
    }
  }
  return ds;
}

}  // namespace rdo::data
