// Bit-sliced weight programming: CTW integer -> cell states -> CRW.
//
// An n-bit crossbar target weight (CTW) is sliced across
// n / cell.bits() cells (LSB cell first); programming each cell draws a
// log-normal variation factor, and the crossbar real weight (CRW) is the
// radix-weighted readback — matching Fig. 3 of the paper where variation
// is injected into the individual bits of the CTW.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/rng.h"
#include "rram/cell.h"
#include "rram/faults.h"
#include "rram/variation.h"

namespace rdo::rram {

class WeightProgrammer {
 public:
  WeightProgrammer(CellModel cell, int weight_bits, VariationModel variation,
                   FaultModel faults = {});

  [[nodiscard]] int cells_per_weight() const { return cells_; }
  [[nodiscard]] const CellModel& cell() const { return cell_; }
  [[nodiscard]] const VariationModel& variation() const { return variation_; }
  [[nodiscard]] int weight_bits() const { return weight_bits_; }
  [[nodiscard]] int max_weight() const { return (1 << weight_bits_) - 1; }

  /// Slice integer weight v into cell states, least-significant cell first.
  [[nodiscard]] std::vector<int> slice(int v) const;

  /// Radix-weighted composition of per-cell read values into a CRW.
  [[nodiscard]] double compose(const std::vector<double>& cell_values) const;

  /// Program CTW `v` once with lumped DDV+CCV variation; returns the CRW.
  /// PerWeight scope: one factor for the whole weight,
  /// CRW = (v + C) e^theta - C with C the composite HRS leakage;
  /// PerCell scope: an independent factor per bit-slice device.
  [[nodiscard]] double program(int v, rdo::nn::Rng& rng) const;

  /// Program CTW `v` and return the individual post-variation cell read
  /// values (LSB cell first) instead of the composed CRW. Consumes the
  /// exact same random draws as program(); program(v, rng) is equivalent
  /// to compose(program_cells(v, rng)).
  [[nodiscard]] std::vector<double> program_cells(int v,
                                                  rdo::nn::Rng& rng) const;

  /// Program CTW `v` for a device group whose persistent DDV component is
  /// `ddv_theta` (one theta per cell; PerWeight scope uses ddv_theta[0]);
  /// CCV is drawn fresh from `rng`.
  [[nodiscard]] double program_with_ddv(int v,
                                        const std::vector<double>& ddv_theta,
                                        rdo::nn::Rng& rng) const;

  /// Composite HRS leakage of a whole weight: C = c * sum_k B^k.
  [[nodiscard]] double composite_leakage() const;

  /// Closed-form E[R(v)] (used for the analytic LUT and as a test
  /// oracle). Only valid with a zero fault rate; the Monte-Carlo LUT
  /// covers faults.
  [[nodiscard]] double analytic_mean(int v) const;
  /// Closed-form Var[R(v)] (zero fault rate only).
  [[nodiscard]] double analytic_var(int v) const;

  [[nodiscard]] const FaultModel& faults() const { return faults_; }

 private:
  CellModel cell_;
  int weight_bits_;
  VariationModel variation_;
  FaultModel faults_;
  int cells_;

  /// Per-cell read value after programming: applies a stuck-at fault draw
  /// (exact stuck state) or the variation factor.
  [[nodiscard]] double programmed_cell_value(int state, double factor,
                                             rdo::nn::Rng& rng) const;
};

}  // namespace rdo::rram
