// RRAM cell models: SLC (1 bit) and 2-bit MLC, with finite ON/OFF ratio.
//
// Conductances are unit-normalized: a cell in state s (0..states-1) has
// nominal conductance g(s) = (s + c) * u where u is the per-state
// conductance step and c = g_HRS / u encodes the finite ON/OFF ratio
// (paper uses 200). The readout path subtracts the nominal HRS baseline,
// so the digitized value of an unvaried cell is exactly s; under variation
// e^theta the value becomes (s + c) * e^theta - c, i.e. state-proportional
// noise plus a leakage floor on HRS cells.
#pragma once

#include <string>

#include "core/check.h"

namespace rdo::rram {

enum class CellKind { SLC, MLC2 };

struct CellModel {
  CellKind kind = CellKind::SLC;
  double on_off_ratio = 200.0;

  /// Bits stored per cell.
  [[nodiscard]] int bits() const { return kind == CellKind::SLC ? 1 : 2; }
  /// Number of programmable states.
  [[nodiscard]] int states() const { return 1 << bits(); }
  /// Radix contributed by each successive cell of a bit-sliced weight.
  [[nodiscard]] int radix() const { return states(); }

  /// HRS leakage constant c = g_HRS / u (u = conductance step per state).
  [[nodiscard]] double hrs_offset() const {
    const int top = states() - 1;  // LRS state index
    // g_LRS / g_HRS = ratio and g(s) = (s + c) u  =>  (top + c)/c = ratio.
    return static_cast<double>(top) / (on_off_ratio - 1.0);
  }

  /// Digitized read value of a cell in state `s` whose conductance got the
  /// multiplicative variation `factor` (= e^theta; 1.0 means no variation).
  [[nodiscard]] double read_value(int s, double factor) const {
    RDO_CHECK(s >= 0 && s < states(),
              "CellModel::read_value: state " + std::to_string(s) +
                  " outside [0, " + std::to_string(states()) + ")");
    const double c = hrs_offset();
    return (static_cast<double>(s) + c) * factor - c;
  }

  /// Relative read power of a cell in state `s`: proportional to its
  /// nominal conductance (I = g V, P = g V^2 at fixed read voltage).
  [[nodiscard]] double read_power(int s) const {
    return static_cast<double>(s) + hrs_offset();
  }
};

inline const char* to_string(CellKind k) {
  return k == CellKind::SLC ? "SLC" : "MLC2";
}

}  // namespace rdo::rram
