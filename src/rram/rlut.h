// Statistical look-up table of E[R(v)] and Var[R(v)] per CTW value.
//
// Implements the paper's testing protocol (§III-B): "For each CTW v, K
// random sets of n memristors are selected. For each set, it is programmed
// with the CTW v for J times and the final CRWs are measured." Here the
// memristors are simulated by WeightProgrammer, which is exactly what the
// protocol measures on real hardware. An analytic construction is also
// provided as a cross-check oracle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/check.h"
#include "nn/rng.h"
#include "rram/programmer.h"

namespace rdo::rram {

/// Raised by RLut::load on a corrupt, truncated or oversized cache file.
/// Derives from std::runtime_error so existing corrupt-file-throws catch
/// sites keep working; a distinct type so cache-recovery code can tell a
/// damaged table from unrelated I/O failures.
class LutError : public std::runtime_error {
 public:
  explicit LutError(const std::string& what) : std::runtime_error(what) {}
};

class RLut {
 public:
  /// Build the LUT by Monte-Carlo statistical testing (K sets x J cycles
  /// per CTW value).
  static RLut build(const WeightProgrammer& prog, int k_sets, int j_cycles,
                    rdo::nn::Rng rng);

  /// Build from the closed-form moments (test oracle / fast path).
  static RLut build_analytic(const WeightProgrammer& prog);

  [[nodiscard]] int max_weight() const {
    return static_cast<int>(mean_.size()) - 1;
  }
  [[nodiscard]] double mean(int v) const {
    RDO_DCHECK(v >= 0 && v < static_cast<int>(mean_.size()),
               "RLut::mean: CTW out of range");
    return mean_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] double var(int v) const {
    RDO_DCHECK(v >= 0 && v < static_cast<int>(var_.size()),
               "RLut::var: CTW out of range");
    return var_[static_cast<std::size_t>(v)];
  }

  /// Smallest achievable E[R(v)] (v = 0) and largest (v = max).
  [[nodiscard]] double mean_lo() const { return mean_.front(); }
  [[nodiscard]] double mean_hi() const { return mean_.back(); }

  /// The CTW whose E[R(v)] is closest to `target` (monotone inversion;
  /// clamps outside the representable range).
  [[nodiscard]] int invert_mean(double target) const;

  /// 64-bit fingerprint of everything a cached table depends on: cell
  /// kind and ON/OFF ratio, weight bits, the sigma/DDV variation split
  /// and scope, stuck-at-fault rates, the K x J testing protocol and
  /// the build seed. Two configurations that would measure different
  /// statistics never share a fingerprint (up to hash collisions).
  [[nodiscard]] static std::uint64_t fingerprint(const WeightProgrammer& prog,
                                                 int k_sets, int j_cycles,
                                                 std::uint64_t seed);

  /// Persist the table together with its config fingerprint (device
  /// characterization is expensive on real hardware; cache it). Writes
  /// atomically via a temp file + rename — with a pid+counter temp
  /// suffix that is unique across concurrent saver *processes* too — so
  /// a concurrent load never observes a half-written or interleaved
  /// table. Throws on I/O failure.
  void save(const std::string& path, std::uint64_t fingerprint) const;
  /// Stream form of the writer: append one complete save() document to
  /// `out` (used to embed tables inside DeploymentPlan files). Throws on
  /// stream failure.
  void save(std::ostream& out, std::uint64_t fingerprint) const;
  /// Load a table saved by save(). Returns false if the file does not
  /// exist, or if its stored fingerprint differs from `fingerprint`
  /// (stale cache for another device configuration — the caller
  /// rebuilds); throws LutError on a corrupt or truncated file.
  static bool load(const std::string& path, std::uint64_t fingerprint,
                   RLut& out);

  /// Stream form of the loader: parse one complete save() document from
  /// `in` (must be seekable — an open binary ifstream or istringstream).
  /// `source` names the stream in diagnostics. Same contract as the path
  /// overload except a missing file is the caller's problem. This is the
  /// single parsing path; the path overload and the fuzz harness both
  /// call it.
  static bool load(std::istream& in, std::uint64_t fingerprint, RLut& out,
                   const std::string& source);

 private:
  std::vector<double> mean_;
  std::vector<double> var_;

  void enforce_monotone_mean();
};

}  // namespace rdo::rram
