// Statistical look-up table of E[R(v)] and Var[R(v)] per CTW value.
//
// Implements the paper's testing protocol (§III-B): "For each CTW v, K
// random sets of n memristors are selected. For each set, it is programmed
// with the CTW v for J times and the final CRWs are measured." Here the
// memristors are simulated by WeightProgrammer, which is exactly what the
// protocol measures on real hardware. An analytic construction is also
// provided as a cross-check oracle.
#pragma once

#include <string>
#include <vector>

#include "nn/rng.h"
#include "rram/programmer.h"

namespace rdo::rram {

class RLut {
 public:
  /// Build the LUT by Monte-Carlo statistical testing (K sets x J cycles
  /// per CTW value).
  static RLut build(const WeightProgrammer& prog, int k_sets, int j_cycles,
                    rdo::nn::Rng rng);

  /// Build from the closed-form moments (test oracle / fast path).
  static RLut build_analytic(const WeightProgrammer& prog);

  [[nodiscard]] int max_weight() const {
    return static_cast<int>(mean_.size()) - 1;
  }
  [[nodiscard]] double mean(int v) const {
    return mean_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] double var(int v) const {
    return var_[static_cast<std::size_t>(v)];
  }

  /// Smallest achievable E[R(v)] (v = 0) and largest (v = max).
  [[nodiscard]] double mean_lo() const { return mean_.front(); }
  [[nodiscard]] double mean_hi() const { return mean_.back(); }

  /// The CTW whose E[R(v)] is closest to `target` (monotone inversion;
  /// clamps outside the representable range).
  [[nodiscard]] int invert_mean(double target) const;

  /// Persist the table (device characterization is expensive on real
  /// hardware; cache it). Throws on I/O failure.
  void save(const std::string& path) const;
  /// Load a table saved by save(). Returns false if the file does not
  /// exist; throws on a corrupt file.
  static bool load(const std::string& path, RLut& out);

 private:
  std::vector<double> mean_;
  std::vector<double> var_;

  void enforce_monotone_mean();
};

}  // namespace rdo::rram
