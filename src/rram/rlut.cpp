#include "rram/rlut.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <system_error>

#include "core/tmpfile.h"

namespace rdo::rram {

RLut RLut::build(const WeightProgrammer& prog, int k_sets, int j_cycles,
                 rdo::nn::Rng rng) {
  RLut lut;
  const int vmax = prog.max_weight();
  lut.mean_.resize(static_cast<std::size_t>(vmax) + 1);
  lut.var_.resize(static_cast<std::size_t>(vmax) + 1);
  const int samples = k_sets * j_cycles;
  std::vector<double> crw(static_cast<std::size_t>(samples));
  for (int v = 0; v <= vmax; ++v) {
    // K device sets; each set programmed J times. With the lumped
    // DDV+CCV model every programming is an independent draw, but we keep
    // the K x J structure so a DDV split is measured correctly too.
    int i = 0;
    for (int k = 0; k < k_sets; ++k) {
      rdo::nn::Rng set_rng = rng.split(
          static_cast<std::uint64_t>(v) * 1000003ull + static_cast<std::uint64_t>(k));
      std::vector<double> ddv(static_cast<std::size_t>(prog.cells_per_weight()));
      for (auto& t : ddv) t = prog.variation().sample_ddv_theta(set_rng);
      for (int j = 0; j < j_cycles; ++j) {
        crw[static_cast<std::size_t>(i++)] =
            prog.program_with_ddv(v, ddv, set_rng);
      }
    }
    double m = 0.0;
    for (double x : crw) m += x;
    m /= samples;
    double var = 0.0;
    for (double x : crw) var += (x - m) * (x - m);
    var /= std::max(1, samples - 1);
    lut.mean_[static_cast<std::size_t>(v)] = m;
    lut.var_[static_cast<std::size_t>(v)] = var;
  }
  lut.enforce_monotone_mean();
  return lut;
}

RLut RLut::build_analytic(const WeightProgrammer& prog) {
  RLut lut;
  const int vmax = prog.max_weight();
  lut.mean_.resize(static_cast<std::size_t>(vmax) + 1);
  lut.var_.resize(static_cast<std::size_t>(vmax) + 1);
  for (int v = 0; v <= vmax; ++v) {
    lut.mean_[static_cast<std::size_t>(v)] = prog.analytic_mean(v);
    lut.var_[static_cast<std::size_t>(v)] = prog.analytic_var(v);
  }
  lut.enforce_monotone_mean();
  return lut;
}

void RLut::enforce_monotone_mean() {
  // Monte-Carlo noise can produce small non-monotonicities; the inversion
  // needs a monotone mean curve. A running-max pass (isotonic upper
  // envelope) is enough given E[R(v)] is linear-in-v in expectation.
  for (std::size_t v = 1; v < mean_.size(); ++v) {
    mean_[v] = std::max(mean_[v], mean_[v - 1] + 1e-12);
  }
}

namespace {

// Bumped from "RLU1": version 1 headers carried no config fingerprint,
// so a cached table could silently load for a different device
// configuration. A v1 file now fails the magic check and reads as
// corrupt — callers rebuild, which is the correct recovery either way.
constexpr std::uint32_t kLutMagic = 0x524C5532;  // "RLU2"

/// FNV-1a over a byte span.
void fnv1a(const void* data, std::size_t n, std::uint64_t& h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

void fnv1a_u64(std::uint64_t v, std::uint64_t& h) { fnv1a(&v, sizeof(v), h); }

void fnv1a_double(double v, std::uint64_t& h) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  fnv1a_u64(bits, h);
}

}  // namespace

std::uint64_t RLut::fingerprint(const WeightProgrammer& prog, int k_sets,
                                int j_cycles, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  fnv1a_u64(static_cast<std::uint64_t>(prog.cell().kind ==
                                       CellKind::SLC ? 1 : 2), h);
  fnv1a_double(prog.cell().on_off_ratio, h);
  fnv1a_u64(static_cast<std::uint64_t>(prog.weight_bits()), h);
  const VariationModel& var = prog.variation();
  fnv1a_double(var.sigma, h);
  fnv1a_double(var.ddv_fraction, h);
  fnv1a_u64(var.scope == VariationScope::PerWeight ? 1u : 2u, h);
  const FaultModel& faults = prog.faults();
  fnv1a_double(faults.stuck_hrs_rate, h);
  fnv1a_double(faults.stuck_lrs_rate, h);
  fnv1a_u64(static_cast<std::uint64_t>(k_sets), h);
  fnv1a_u64(static_cast<std::uint64_t>(j_cycles), h);
  fnv1a_u64(seed, h);
  return h;
}

void RLut::save(std::ostream& out, std::uint64_t fingerprint) const {
  const std::uint64_t n = mean_.size();
  out.write(reinterpret_cast<const char*>(&kLutMagic), sizeof(kLutMagic));
  out.write(reinterpret_cast<const char*>(&fingerprint), sizeof(fingerprint));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(mean_.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
  out.write(reinterpret_cast<const char*>(var_.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
  if (!out) throw std::runtime_error("RLut::save: stream write failed");
}

void RLut::save(const std::string& path, std::uint64_t fingerprint) const {
  // Write-then-rename: concurrent loaders (parallel Monte-Carlo trials
  // sharing RDO_LUT_CACHE_DIR) only ever see complete tables. The temp
  // suffix is unique across processes too (see core/tmpfile.h) so
  // concurrent savers sharing a cache directory never interleave writes
  // into one temp file.
  const std::string tmp = path + rdo::core::unique_tmp_suffix();
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw std::runtime_error("RLut::save: cannot open " + tmp);
    save(f, fingerprint);
    if (!f) throw std::runtime_error("RLut::save: write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("RLut::save: cannot rename into " + path);
  }
}

namespace {

/// Read exactly `n` bytes or throw — the stream state is checked after
/// every read, so a truncated file can never feed uninitialized memory
/// into the table.
void read_exact(std::istream& f, void* dst, std::size_t n,
                const std::string& source) {
  f.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (!f || f.gcount() != static_cast<std::streamsize>(n)) {
    throw LutError("RLut::load: truncated file " + source);
  }
}

}  // namespace

bool RLut::load(std::istream& in, std::uint64_t fingerprint, RLut& out,
                const std::string& source) {
  // Byte budget: every declared count is bounded by what the stream
  // actually holds before it is believed.
  const std::istream::pos_type pos = in.tellg();
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (pos == std::istream::pos_type(-1) || end == std::istream::pos_type(-1) ||
      !in || end < pos) {
    throw LutError("RLut::load: unseekable stream " + source);
  }
  const std::uint64_t total = static_cast<std::uint64_t>(end - pos);
  constexpr std::uint64_t kHeaderBytes =
      sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
  if (total < kHeaderBytes) {
    throw LutError("RLut::load: corrupt file " + source);
  }
  std::uint32_t magic = 0;
  std::uint64_t stored_fp = 0;
  std::uint64_t n = 0;
  read_exact(in, &magic, sizeof(magic), source);
  read_exact(in, &stored_fp, sizeof(stored_fp), source);
  read_exact(in, &n, sizeof(n), source);
  // kMaxEntries: the largest table any supported configuration produces
  // is 2^16 + 1 entries (16-bit CTWs); 2^20 leaves generous headroom
  // while keeping a hostile header from driving a multi-GB resize.
  constexpr std::uint64_t kMaxEntries = 1u << 20;
  if (magic != kLutMagic || n == 0 || n > kMaxEntries) {
    throw LutError("RLut::load: corrupt file " + source);
  }
  // The payload is two double arrays of exactly n entries each; a size
  // mismatch in either direction (truncated or trailing bytes) means the
  // file is damaged.
  if (total - kHeaderBytes != n * 2 * sizeof(double)) {
    throw LutError("RLut::load: payload size mismatch in " + source);
  }
  if (stored_fp != fingerprint) {
    // Stale cache: the table was measured for a different device
    // configuration (or protocol/seed). Not corruption — the caller
    // rebuilds and overwrites.
    return false;
  }
  out.mean_.resize(n);
  out.var_.resize(n);
  read_exact(in, out.mean_.data(), n * sizeof(double), source);
  read_exact(in, out.var_.data(), n * sizeof(double), source);
  return true;
}

bool RLut::load(const std::string& path, std::uint64_t fingerprint,
                RLut& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  return load(f, fingerprint, out, path);
}

int RLut::invert_mean(double target) const {
  const auto it = std::lower_bound(mean_.begin(), mean_.end(), target);
  if (it == mean_.begin()) return 0;
  if (it == mean_.end()) return max_weight();
  const int hi = static_cast<int>(it - mean_.begin());
  const int lo = hi - 1;
  return (target - mean_[static_cast<std::size_t>(lo)] <=
          mean_[static_cast<std::size_t>(hi)] - target)
             ? lo
             : hi;
}

}  // namespace rdo::rram
