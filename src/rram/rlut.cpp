#include "rram/rlut.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace rdo::rram {

RLut RLut::build(const WeightProgrammer& prog, int k_sets, int j_cycles,
                 rdo::nn::Rng rng) {
  RLut lut;
  const int vmax = prog.max_weight();
  lut.mean_.resize(static_cast<std::size_t>(vmax) + 1);
  lut.var_.resize(static_cast<std::size_t>(vmax) + 1);
  const int samples = k_sets * j_cycles;
  std::vector<double> crw(static_cast<std::size_t>(samples));
  for (int v = 0; v <= vmax; ++v) {
    // K device sets; each set programmed J times. With the lumped
    // DDV+CCV model every programming is an independent draw, but we keep
    // the K x J structure so a DDV split is measured correctly too.
    int i = 0;
    for (int k = 0; k < k_sets; ++k) {
      rdo::nn::Rng set_rng = rng.split(
          static_cast<std::uint64_t>(v) * 1000003ull + static_cast<std::uint64_t>(k));
      std::vector<double> ddv(static_cast<std::size_t>(prog.cells_per_weight()));
      for (auto& t : ddv) t = prog.variation().sample_ddv_theta(set_rng);
      for (int j = 0; j < j_cycles; ++j) {
        crw[static_cast<std::size_t>(i++)] =
            prog.program_with_ddv(v, ddv, set_rng);
      }
    }
    double m = 0.0;
    for (double x : crw) m += x;
    m /= samples;
    double var = 0.0;
    for (double x : crw) var += (x - m) * (x - m);
    var /= std::max(1, samples - 1);
    lut.mean_[static_cast<std::size_t>(v)] = m;
    lut.var_[static_cast<std::size_t>(v)] = var;
  }
  lut.enforce_monotone_mean();
  return lut;
}

RLut RLut::build_analytic(const WeightProgrammer& prog) {
  RLut lut;
  const int vmax = prog.max_weight();
  lut.mean_.resize(static_cast<std::size_t>(vmax) + 1);
  lut.var_.resize(static_cast<std::size_t>(vmax) + 1);
  for (int v = 0; v <= vmax; ++v) {
    lut.mean_[static_cast<std::size_t>(v)] = prog.analytic_mean(v);
    lut.var_[static_cast<std::size_t>(v)] = prog.analytic_var(v);
  }
  lut.enforce_monotone_mean();
  return lut;
}

void RLut::enforce_monotone_mean() {
  // Monte-Carlo noise can produce small non-monotonicities; the inversion
  // needs a monotone mean curve. A running-max pass (isotonic upper
  // envelope) is enough given E[R(v)] is linear-in-v in expectation.
  for (std::size_t v = 1; v < mean_.size(); ++v) {
    mean_[v] = std::max(mean_[v], mean_[v - 1] + 1e-12);
  }
}

namespace {
constexpr std::uint32_t kLutMagic = 0x524C5531;  // "RLU1"
}

void RLut::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("RLut::save: cannot open " + path);
  const std::uint64_t n = mean_.size();
  f.write(reinterpret_cast<const char*>(&kLutMagic), sizeof(kLutMagic));
  f.write(reinterpret_cast<const char*>(&n), sizeof(n));
  f.write(reinterpret_cast<const char*>(mean_.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  f.write(reinterpret_cast<const char*>(var_.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!f) throw std::runtime_error("RLut::save: write failed for " + path);
}

bool RLut::load(const std::string& path, RLut& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::uint32_t magic = 0;
  std::uint64_t n = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (magic != kLutMagic || n == 0 || n > (1u << 20)) {
    throw std::runtime_error("RLut::load: corrupt file " + path);
  }
  out.mean_.resize(n);
  out.var_.resize(n);
  f.read(reinterpret_cast<char*>(out.mean_.data()),
         static_cast<std::streamsize>(n * sizeof(double)));
  f.read(reinterpret_cast<char*>(out.var_.data()),
         static_cast<std::streamsize>(n * sizeof(double)));
  if (!f) throw std::runtime_error("RLut::load: truncated file " + path);
  return true;
}

int RLut::invert_mean(double target) const {
  const auto it = std::lower_bound(mean_.begin(), mean_.end(), target);
  if (it == mean_.begin()) return 0;
  if (it == mean_.end()) return max_weight();
  const int hi = static_cast<int>(it - mean_.begin());
  const int lo = hi - 1;
  return (target - mean_[static_cast<std::size_t>(lo)] <=
          mean_[static_cast<std::size_t>(hi)] - target)
             ? lo
             : hi;
}

}  // namespace rdo::rram
