// Device-level crossbar array simulation.
//
// Models the analog substrate a deployment runs on: a rows x cols grid of
// RRAM cells, programmed with per-cell log-normal variation, read out
// group-by-group (only `active_wordlines` wordlines are driven per cycle,
// as in the paper's 128x128 / 16-active configuration) with an optional
// finite-resolution ADC per group.
//
// The end-to-end accuracy pipeline composes CRWs directly through
// WeightProgrammer (numerically identical with an ideal ADC — a property
// the test suite asserts); this class exists to validate that equivalence,
// to model ADC effects, and for the micro-benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/rng.h"
#include "rram/cell.h"
#include "rram/variation.h"

namespace rdo::rram {

struct CrossbarConfig {
  int rows = 128;
  int cols = 128;
  CellModel cell;
  VariationModel variation;
  int active_wordlines = 16;  ///< wordlines driven per read cycle
  int adc_bits = 0;           ///< 0 = ideal ADC
};

class Crossbar {
 public:
  explicit Crossbar(CrossbarConfig cfg);

  /// Program the whole array from row-major cell states (size rows*cols);
  /// draws a fresh variation factor per cell (one programming cycle).
  void program(const std::vector<int>& states, rdo::nn::Rng& rng);
  /// Program without variation (ideal device oracle).
  void program_ideal(const std::vector<int>& states);

  /// Digitized read value of one cell (state-units; exact state if ideal).
  [[nodiscard]] double cell_value(int r, int c) const;

  /// Program from explicit per-cell states and variation factors (used by
  /// the device-level executor to realize per-weight-correlated factors).
  void program_with_factors(const std::vector<int>& states,
                            const std::vector<double>& factors);

  /// Program from explicit per-cell read values (state-units), bypassing
  /// the cell model's state->value mapping. Lets the device level replay
  /// the exact post-variation (and post-fault) values produced by
  /// WeightProgrammer::program_cells so both execution backends observe
  /// bit-identical devices. `states` keeps read-power accounting honest.
  void program_values(const std::vector<int>& states,
                      const std::vector<double>& values);

  /// y_j = sum_i x_i * cell_value(i, j), computed per activation group and
  /// accumulated digitally, with optional per-group ADC quantization.
  [[nodiscard]] std::vector<double> vmm(const std::vector<double>& x) const;

  /// Partial VMM over wordlines [r0, r1): the read cycles a digital
  /// offset group of those rows observes. r0 must be aligned to the
  /// activation-group size.
  [[nodiscard]] std::vector<double> vmm_rows(const std::vector<double>& x,
                                             int r0, int r1) const;

  /// Read cycles needed for one VMM (= ceil(rows / active_wordlines)).
  [[nodiscard]] int cycles_per_vmm() const;

  /// Sum of nominal per-cell read powers (state-proportional units).
  [[nodiscard]] double total_read_power() const;

  [[nodiscard]] const CrossbarConfig& config() const { return cfg_; }

 private:
  CrossbarConfig cfg_;
  std::vector<int> states_;     // row-major
  std::vector<double> factors_; // per-cell e^theta (1.0 until programmed)
  std::vector<double> values_;  // explicit read values; empty unless
                                // program_values() was the last programming

  [[nodiscard]] std::size_t idx(int r, int c) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cfg_.cols) +
           static_cast<std::size_t>(c);
  }
};

}  // namespace rdo::rram
