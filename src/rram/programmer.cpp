#include "rram/programmer.h"

#include <cmath>
#include <string>

#include "core/check.h"

namespace rdo::rram {

WeightProgrammer::WeightProgrammer(CellModel cell, int weight_bits,
                                   VariationModel variation,
                                   FaultModel faults)
    : cell_(cell),
      weight_bits_(weight_bits),
      variation_(variation),
      faults_(faults) {
  RDO_CHECK(weight_bits_ > 0 && weight_bits_ % cell_.bits() == 0,
            "WeightProgrammer: " + std::to_string(weight_bits_) +
                " weight bits not divisible into " +
                std::to_string(cell_.bits()) + "-bit cells");
  cells_ = weight_bits_ / cell_.bits();
}

std::vector<int> WeightProgrammer::slice(int v) const {
  RDO_CHECK(v >= 0 && v <= max_weight(),
            "WeightProgrammer::slice: CTW " + std::to_string(v) +
                " outside [0, " + std::to_string(max_weight()) + "]");
  std::vector<int> states(static_cast<std::size_t>(cells_));
  const int mask = cell_.states() - 1;
  for (int k = 0; k < cells_; ++k) {
    states[static_cast<std::size_t>(k)] = (v >> (k * cell_.bits())) & mask;
  }
  return states;
}

double WeightProgrammer::compose(
    const std::vector<double>& cell_values) const {
  double crw = 0.0;
  double radix_pow = 1.0;
  for (double val : cell_values) {
    crw += radix_pow * val;
    radix_pow *= cell_.radix();
  }
  return crw;
}

double WeightProgrammer::composite_leakage() const {
  const double c = cell_.hrs_offset();
  double leak = 0.0;
  double radix_pow = 1.0;
  for (int k = 0; k < cells_; ++k) {
    leak += radix_pow * c;
    radix_pow *= cell_.radix();
  }
  return leak;
}

double WeightProgrammer::programmed_cell_value(int state, double factor,
                                               rdo::nn::Rng& rng) const {
  if (faults_.any()) {
    const double u = rng.uniform();
    if (u < faults_.stuck_hrs_rate) return cell_.read_value(0, 1.0);
    if (u < faults_.stuck_hrs_rate + faults_.stuck_lrs_rate) {
      return cell_.read_value(cell_.states() - 1, 1.0);
    }
  }
  return cell_.read_value(state, factor);
}

std::vector<double> WeightProgrammer::program_cells(int v,
                                                    rdo::nn::Rng& rng) const {
  const std::vector<int> states = slice(v);
  std::vector<double> vals(states.size());
  const bool shared =
      variation_.scope == VariationScope::PerWeight;
  const double shared_factor = shared ? variation_.sample_factor(rng) : 1.0;
  for (std::size_t k = 0; k < states.size(); ++k) {
    const double f = shared ? shared_factor : variation_.sample_factor(rng);
    vals[k] = programmed_cell_value(states[k], f, rng);
  }
  return vals;
}

double WeightProgrammer::program(int v, rdo::nn::Rng& rng) const {
  return compose(program_cells(v, rng));
}

double WeightProgrammer::program_with_ddv(
    int v, const std::vector<double>& ddv_theta, rdo::nn::Rng& rng) const {
  RDO_CHECK(ddv_theta.size() == static_cast<std::size_t>(cells_),
            "program_with_ddv: " + std::to_string(ddv_theta.size()) +
                " DDV thetas for " + std::to_string(cells_) + " cells");
  const std::vector<int> states = slice(v);
  std::vector<double> vals(states.size());
  const bool shared =
      variation_.scope == VariationScope::PerWeight;
  const double shared_theta =
      shared ? ddv_theta[0] + variation_.sample_ccv_theta(rng) : 0.0;
  for (std::size_t k = 0; k < states.size(); ++k) {
    const double theta =
        shared ? shared_theta
               : ddv_theta[k] + variation_.sample_ccv_theta(rng);
    vals[k] = programmed_cell_value(states[k], std::exp(theta), rng);
  }
  return compose(vals);
}

double WeightProgrammer::analytic_mean(int v) const {
  const double m = variation_.mean_factor();
  if (variation_.scope == VariationScope::PerWeight) {
    const double leak = composite_leakage();
    return (static_cast<double>(v) + leak) * m - leak;
  }
  // E[(s+c)e^theta - c] = (s+c) M - c per cell.
  const double c = cell_.hrs_offset();
  const std::vector<int> states = slice(v);
  double mean = 0.0;
  double radix_pow = 1.0;
  for (int s : states) {
    mean += radix_pow * ((static_cast<double>(s) + c) * m - c);
    radix_pow *= cell_.radix();
  }
  return mean;
}

double WeightProgrammer::analytic_var(int v) const {
  const double vf = variation_.var_factor();
  if (variation_.scope == VariationScope::PerWeight) {
    const double a = static_cast<double>(v) + composite_leakage();
    return a * a * vf;
  }
  // Var[(s+c)e^theta] = (s+c)^2 Var[e^theta]; cells are independent.
  const double c = cell_.hrs_offset();
  const std::vector<int> states = slice(v);
  double var = 0.0;
  double radix_pow = 1.0;
  for (int s : states) {
    const double a = static_cast<double>(s) + c;
    var += radix_pow * radix_pow * a * a * vf;
    radix_pow *= cell_.radix();
  }
  return var;
}

}  // namespace rdo::rram
