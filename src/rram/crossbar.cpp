#include "rram/crossbar.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace rdo::rram {

Crossbar::Crossbar(CrossbarConfig cfg) : cfg_(cfg) {
  RDO_CHECK(cfg_.rows > 0 && cfg_.cols > 0,
            "Crossbar: non-positive dimensions " + std::to_string(cfg_.rows) +
                "x" + std::to_string(cfg_.cols));
  RDO_CHECK(cfg_.active_wordlines > 0 && cfg_.active_wordlines <= cfg_.rows,
            "Crossbar: active_wordlines " +
                std::to_string(cfg_.active_wordlines) + " outside [1, " +
                std::to_string(cfg_.rows) + "]");
  states_.assign(static_cast<std::size_t>(cfg_.rows) * cfg_.cols, 0);
  factors_.assign(states_.size(), 1.0);
}

void Crossbar::program(const std::vector<int>& states, rdo::nn::Rng& rng) {
  RDO_CHECK(states.size() == states_.size(),
            "Crossbar::program: got " + std::to_string(states.size()) +
                " states for " + std::to_string(states_.size()) + " cells");
  states_ = states;
  for (auto& f : factors_) f = cfg_.variation.sample_factor(rng);
  values_.clear();
}

void Crossbar::program_ideal(const std::vector<int>& states) {
  RDO_CHECK(states.size() == states_.size(),
            "Crossbar::program_ideal: got " + std::to_string(states.size()) +
                " states for " + std::to_string(states_.size()) + " cells");
  states_ = states;
  std::fill(factors_.begin(), factors_.end(), 1.0);
  values_.clear();
}

void Crossbar::program_with_factors(const std::vector<int>& states,
                                    const std::vector<double>& factors) {
  RDO_CHECK(states.size() == states_.size() &&
                factors.size() == factors_.size(),
            "Crossbar::program_with_factors: state/factor count mismatch");
  states_ = states;
  factors_ = factors;
  values_.clear();
}

void Crossbar::program_values(const std::vector<int>& states,
                              const std::vector<double>& values) {
  RDO_CHECK(states.size() == states_.size() &&
                values.size() == states_.size(),
            "Crossbar::program_values: state/value count mismatch");
  states_ = states;
  std::fill(factors_.begin(), factors_.end(), 1.0);
  values_ = values;
}

double Crossbar::cell_value(int r, int c) const {
  RDO_DCHECK(r >= 0 && r < cfg_.rows && c >= 0 && c < cfg_.cols,
             "Crossbar::cell_value: (r, c) outside the array");
  if (!values_.empty()) return values_[idx(r, c)];
  return cfg_.cell.read_value(states_[idx(r, c)], factors_[idx(r, c)]);
}

int Crossbar::cycles_per_vmm() const {
  return (cfg_.rows + cfg_.active_wordlines - 1) / cfg_.active_wordlines;
}

std::vector<double> Crossbar::vmm(const std::vector<double>& x) const {
  return vmm_rows(x, 0, cfg_.rows);
}

std::vector<double> Crossbar::vmm_rows(const std::vector<double>& x, int r0,
                                       int r1) const {
  RDO_CHECK(static_cast<int>(x.size()) == cfg_.rows,
            "Crossbar::vmm: input length " + std::to_string(x.size()) +
                " for " + std::to_string(cfg_.rows) + " rows");
  RDO_CHECK(r0 >= 0 && r1 <= cfg_.rows && r0 % cfg_.active_wordlines == 0,
            "Crossbar::vmm_rows: bad row range [" + std::to_string(r0) +
                ", " + std::to_string(r1) + ")");
  std::vector<double> y(static_cast<std::size_t>(cfg_.cols), 0.0);
  // ADC full-scale: the largest group partial sum with unit inputs.
  const double full_scale =
      static_cast<double>(cfg_.active_wordlines) *
      static_cast<double>(cfg_.cell.states() - 1);
  const double adc_levels =
      cfg_.adc_bits > 0 ? static_cast<double>((1 << cfg_.adc_bits) - 1) : 0.0;
  for (int g0 = r0; g0 < r1; g0 += cfg_.active_wordlines) {
    const int g1 = std::min(r1, g0 + cfg_.active_wordlines);
    for (int c = 0; c < cfg_.cols; ++c) {
      double partial = 0.0;
      for (int r = g0; r < g1; ++r) {
        const double xv = x[static_cast<std::size_t>(r)];
        if (xv != 0.0) partial += xv * cell_value(r, c);
      }
      if (cfg_.adc_bits > 0) {
        const double q =
            std::round(std::clamp(partial / full_scale, 0.0, 1.0) *
                       adc_levels);
        partial = q / adc_levels * full_scale;
      }
      y[static_cast<std::size_t>(c)] += partial;
    }
  }
  return y;
}

double Crossbar::total_read_power() const {
  double p = 0.0;
  for (int s : states_) p += cfg_.cell.read_power(s);
  return p;
}

}  // namespace rdo::rram
