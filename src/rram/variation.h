// Log-normal resistance variation model (paper §IV, after Grossi et al.).
//
// A device programmed toward nominal conductance g lands at g * e^theta
// with theta ~ N(0, sigma^2). The paper lumps device-to-device variation
// (DDV) and cycle-to-cycle variation (CCV) into one sigma in [0.2, 1.0];
// this model additionally lets the variance be split so ablations can
// study the two sources separately:
//
//   theta = theta_ddv + theta_ccv,
//   Var[theta_ddv] = ddv_fraction * sigma^2   (fixed per device)
//   Var[theta_ccv] = (1 - ddv_fraction) * sigma^2  (fresh every cycle)
#pragma once

#include <cmath>

#include "nn/rng.h"

namespace rdo::rram {

/// Where the log-normal factor applies.
///
/// The paper's simulations use one factor per weight (V = v e^theta,
/// §IV); PerCell instead draws an independent factor for every bit-slice
/// device (the Fig. 3 reading), which changes which CTW bit patterns are
/// low-variance. Both are supported; the ablation bench compares them.
enum class VariationScope { PerWeight, PerCell };

struct VariationModel {
  double sigma = 0.5;        ///< total std-dev of theta
  double ddv_fraction = 0.0; ///< fraction of variance that is DDV
  VariationScope scope = VariationScope::PerWeight;

  [[nodiscard]] double sigma_ddv() const {
    return sigma * std::sqrt(ddv_fraction);
  }
  [[nodiscard]] double sigma_ccv() const {
    return sigma * std::sqrt(1.0 - ddv_fraction);
  }

  /// Multiplicative factor for one programming event (lumped DDV+CCV).
  [[nodiscard]] double sample_factor(rdo::nn::Rng& rng) const {
    return std::exp(rng.normal(0.0, sigma));
  }
  /// The per-device (persistent) component of theta.
  [[nodiscard]] double sample_ddv_theta(rdo::nn::Rng& rng) const {
    return rng.normal(0.0, sigma_ddv());
  }
  /// A fresh per-cycle component of theta.
  [[nodiscard]] double sample_ccv_theta(rdo::nn::Rng& rng) const {
    return rng.normal(0.0, sigma_ccv());
  }

  /// E[e^theta] in closed form (for the analytic LUT and tests).
  [[nodiscard]] double mean_factor() const {
    return std::exp(0.5 * sigma * sigma);
  }
  /// Var[e^theta] in closed form.
  [[nodiscard]] double var_factor() const {
    const double s2 = sigma * sigma;
    return (std::exp(s2) - 1.0) * std::exp(s2);
  }
};

}  // namespace rdo::rram
