// Stuck-at-fault model (the defect class of Zhang & Hu, ASP-DAC'20 [13],
// which the paper contrasts with its variation target).
//
// A stuck cell reads its stuck state exactly, regardless of what is
// programmed. Faults are drawn per device at programming time from the
// deployment's seeded stream; because the statistical LUT protocol
// measures the same simulated devices, VAWO automatically becomes
// fault-aware when a fault rate is configured.
#pragma once

namespace rdo::rram {

struct FaultModel {
  double stuck_hrs_rate = 0.0;  ///< P(cell stuck at state 0)
  double stuck_lrs_rate = 0.0;  ///< P(cell stuck at the top state)

  [[nodiscard]] bool any() const {
    return stuck_hrs_rate > 0.0 || stuck_lrs_rate > 0.0;
  }
};

}  // namespace rdo::rram
