// Mapping of a weight matrix onto 128x128 crossbars.
//
// Each n-bit weight occupies cells_per_weight adjacent bitlines (bit
// slices); matrix rows are chunked across crossbar wordlines. Used for
// crossbar-count accounting (Table III) and to drive the device-level
// Crossbar simulation from a quantized layer.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/quantizer.h"
#include "rram/crossbar.h"
#include "rram/programmer.h"

namespace rdo::rram {

struct TilingInfo {
  std::int64_t matrix_rows = 0;
  std::int64_t matrix_cols = 0;
  int cells_per_weight = 0;
  std::int64_t row_tiles = 0;
  std::int64_t col_tiles = 0;
  [[nodiscard]] std::int64_t total_crossbars() const {
    return row_tiles * col_tiles;
  }
};

/// Tiling of a rows x cols weight matrix over crossbars of the given size.
TilingInfo compute_tiling(std::int64_t matrix_rows, std::int64_t matrix_cols,
                          int crossbar_rows, int crossbar_cols,
                          int cells_per_weight);

/// Expand one tile of a quantized layer into crossbar cell states.
/// Tile (tr, tc) covers matrix rows [tr*R, ...) and weight columns that fit
/// in the crossbar given the per-weight cell count. Unused cells are 0.
std::vector<int> tile_states(const rdo::quant::LayerQuant& lq,
                             const WeightProgrammer& prog,
                             const CrossbarConfig& cfg, std::int64_t tr,
                             std::int64_t tc);

}  // namespace rdo::rram
