#include "rram/tiler.h"

#include <string>

#include "core/check.h"

namespace rdo::rram {

TilingInfo compute_tiling(std::int64_t matrix_rows, std::int64_t matrix_cols,
                          int crossbar_rows, int crossbar_cols,
                          int cells_per_weight) {
  RDO_CHECK(cells_per_weight > 0 && crossbar_cols >= cells_per_weight,
            "compute_tiling: " + std::to_string(cells_per_weight) +
                " cells/weight cannot fit " + std::to_string(crossbar_cols) +
                " crossbar columns");
  RDO_CHECK(matrix_rows > 0 && matrix_cols > 0 && crossbar_rows > 0,
            "compute_tiling: non-positive geometry");
  TilingInfo t;
  t.matrix_rows = matrix_rows;
  t.matrix_cols = matrix_cols;
  t.cells_per_weight = cells_per_weight;
  const std::int64_t weights_per_xbar_row = crossbar_cols / cells_per_weight;
  t.row_tiles = (matrix_rows + crossbar_rows - 1) / crossbar_rows;
  t.col_tiles =
      (matrix_cols + weights_per_xbar_row - 1) / weights_per_xbar_row;
  return t;
}

std::vector<int> tile_states(const rdo::quant::LayerQuant& lq,
                             const WeightProgrammer& prog,
                             const CrossbarConfig& cfg, std::int64_t tr,
                             std::int64_t tc) {
  const std::int64_t weights_per_row = cfg.cols / prog.cells_per_weight();
  std::vector<int> states(
      static_cast<std::size_t>(cfg.rows) * static_cast<std::size_t>(cfg.cols),
      0);
  for (std::int64_t r = 0; r < cfg.rows; ++r) {
    const std::int64_t mr = tr * cfg.rows + r;
    if (mr >= lq.rows) break;
    for (std::int64_t wc = 0; wc < weights_per_row; ++wc) {
      const std::int64_t mc = tc * weights_per_row + wc;
      if (mc >= lq.cols) break;
      const std::vector<int> cells = prog.slice(lq.at(mr, mc));
      RDO_DCHECK(static_cast<int>(cells.size()) == prog.cells_per_weight(),
                 "tile_states: slice width mismatch");
      for (int k = 0; k < prog.cells_per_weight(); ++k) {
        const std::int64_t col = wc * prog.cells_per_weight() + k;
        RDO_DCHECK(col < cfg.cols, "tile_states: cell column overflow");
        states[static_cast<std::size_t>(r * cfg.cols + col)] =
            cells[static_cast<std::size_t>(k)];
      }
    }
  }
  return states;
}

}  // namespace rdo::rram
