#include "serve/server.h"

#include <cstdio>
#include <utility>

#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace rdo::serve {

using rdo::obs::Json;

bool AdmissionGate::enter() {
  std::unique_lock<std::mutex> lk(mu_);
  if (active_ < max_active_) {
    ++active_;
    return true;
  }
  if (queued_ >= max_queued_) return false;  // shed
  ++queued_;
  cv_.wait(lk, [&] { return active_ < max_active_; });
  --queued_;
  ++active_;
  return true;
}

void AdmissionGate::leave() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    --active_;
  }
  cv_.notify_one();
}

int AdmissionGate::active() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_;
}

int AdmissionGate::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_;
}

InferenceService::InferenceService(const rdo::nn::Layer& net,
                                   rdo::nn::DataView train,
                                   rdo::nn::DataView test,
                                   rdo::core::DeployOptions base,
                                   ServeConfig cfg, rdo::obs::Recorder* rec)
    : net_(net.clone()),
      train_(train),
      test_(test),
      base_(base),
      cfg_(cfg),
      rec_(rec),
      gate_(cfg.max_active, cfg.max_queued) {}

void InferenceService::incr(const char* name,
                            std::int64_t ServeCounters::* field) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    counters_.*field += 1;
  }
  if (rec_ != nullptr) rec_->incr(name);
}

ServeCounters InferenceService::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

std::size_t InferenceService::cached_plans() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}

std::shared_ptr<InferenceService::PlanEntry> InferenceService::get_plan(
    const rdo::core::DeployOptions& opt, bool& lru_hit) {
  const std::uint64_t fp = rdo::core::plan_fingerprint(*net_, opt, train_);
  const auto find_hot = [&]() -> std::shared_ptr<PlanEntry> {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if ((*it)->fp == fp) {
        lru_.splice(lru_.begin(), lru_, it);  // touch
        return lru_.front();
      }
    }
    return nullptr;
  };
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (auto hot = find_hot()) {
      ++counters_.plan_hits;
      lru_hit = true;
      if (rec_ != nullptr) rec_->incr("serve_plan_hits");
      return hot;
    }
  }

  // Serialize compilation so a burst of identical cold requests compiles
  // once instead of N times; re-check the LRU after winning the lock.
  std::lock_guard<std::mutex> compile_lk(compile_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (auto hot = find_hot()) {
      ++counters_.plan_hits;
      lru_hit = true;
      if (rec_ != nullptr) rec_->incr("serve_plan_hits");
      return hot;
    }
  }
  lru_hit = false;
  auto entry =
      std::make_shared<PlanEntry>(rdo::core::compile_plan(*net_, opt, train_));
  entry->fp = fp;
  entry->from_disk_cache = entry->plan.compile_stats.plan_cache_hits > 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++counters_.plan_misses;
    lru_.push_front(entry);
    while (lru_.size() > cfg_.max_plans) {
      // In-flight requests keep their shared_ptr; the plan dies when the
      // last one finishes.
      lru_.pop_back();
      ++counters_.plan_evictions;
    }
  }
  if (rec_ != nullptr) rec_->incr("serve_plan_misses");
  return entry;
}

Json InferenceService::evaluate(const ServeRequest& req) {
  AdmissionTicket ticket(gate_);
  if (!ticket.admitted()) {
    throw ProtocolError(ErrorCode::Overloaded,
                        "active and queued request limits reached");
  }

  // Resolve the requested samples into a self-contained batch.
  rdo::nn::Tensor images;
  std::vector<int> labels;
  if (req.data.is_inline()) {
    if (req.data.inline_images.dim(0) > cfg_.max_request_samples) {
      throw ProtocolError(ErrorCode::BadRequest,
                          "inline batch exceeds max_request_samples");
    }
    images = req.data.inline_images;
    labels = req.data.inline_labels;
  } else {
    const rdo::nn::DataView& src =
        req.data.split == "train" ? train_ : test_;
    const std::int64_t total = src.size();
    if (req.data.offset > total) {
      throw ProtocolError(ErrorCode::BadRequest, "offset beyond dataset");
    }
    const std::int64_t count = req.data.count == 0
                                   ? total - req.data.offset
                                   : req.data.count;
    if (count < 1 || req.data.offset + count > total) {
      throw ProtocolError(ErrorCode::BadRequest,
                          "offset/count outside dataset");
    }
    if (count > cfg_.max_request_samples) {
      throw ProtocolError(ErrorCode::BadRequest,
                          "count exceeds max_request_samples");
    }
    std::vector<std::int64_t> idx;
    idx.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      idx.push_back(req.data.offset + i);
    }
    images = rdo::nn::gather_batch(*src.images, idx);
    labels.assign(src.labels->begin() + req.data.offset,
                  src.labels->begin() + req.data.offset + count);
  }
  const rdo::nn::DataView view{&images, &labels};

  bool lru_hit = false;
  std::shared_ptr<PlanEntry> entry = get_plan(req.options, lru_hit);

  // Check out a programmed backend for this cycle, or build one.
  std::unique_ptr<rdo::core::EffectiveWeightBackend> backend;
  {
    std::lock_guard<std::mutex> lk(entry->mu);
    auto& idle = entry->pools[req.cycle];
    if (!idle.empty()) {
      backend = std::move(idle.back());
      idle.pop_back();
    }
  }
  if (backend != nullptr) {
    incr("serve_backend_reuses", &ServeCounters::backend_reuses);
  } else {
    incr("serve_backend_creates", &ServeCounters::backend_creates);
    rdo::obs::TraceSpan span("serve:backend_create", "serve");
    backend = std::make_unique<rdo::core::EffectiveWeightBackend>(entry->plan,
                                                                  *net_);
    backend->program_cycle(req.cycle);
    backend->tune(train_);
  }

  const float acc = backend->evaluate(view, req.batch);

  {
    std::lock_guard<std::mutex> lk(entry->mu);
    auto& idle = entry->pools[req.cycle];
    if (idle.size() < cfg_.max_backends_per_plan) {
      idle.push_back(std::move(backend));
    }
    // else: drop it — the pool is full.
  }

  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(entry->fp));
  Json r = Json::object();
  r["accuracy"] = static_cast<double>(acc);
  r["samples"] = images.dim(0);
  r["cycle"] = static_cast<std::int64_t>(req.cycle);
  r["plan_fingerprint"] = std::string(hex);
  r["cached_plan"] = lru_hit;
  r["plan_from_disk_cache"] = entry->from_disk_cache;
  r["backend"] = "effective-weight";
  return r;
}

std::string InferenceService::handle_line(const std::string& line) {
  rdo::obs::Stopwatch watch;
  rdo::obs::TraceSpan span("serve:request", "serve");
  incr("serve_requests", &ServeCounters::requests);
  Json id;
  std::string out;
  try {
    Json doc;
    try {
      doc = Json::parse(line);
    } catch (const std::exception& e) {
      throw ProtocolError(ErrorCode::BadRequest,
                          std::string("malformed JSON: ") + e.what());
    }
    ServeRequest req = parse_request(doc, base_);
    id = req.id;
    switch (req.op) {
      case Op::Ping: {
        Json r = Json::object();
        r["pong"] = true;
        out = ok_response(id, std::move(r));
        break;
      }
      case Op::Stats: {
        const ServeCounters c = counters();
        Json r = Json::object();
        r["requests"] = c.requests;
        r["ok"] = c.ok;
        r["bad_request"] = c.bad_request;
        r["overloaded"] = c.overloaded;
        r["internal"] = c.internal;
        r["plan_hits"] = c.plan_hits;
        r["plan_misses"] = c.plan_misses;
        r["plan_evictions"] = c.plan_evictions;
        r["backend_creates"] = c.backend_creates;
        r["backend_reuses"] = c.backend_reuses;
        r["cached_plans"] = static_cast<std::int64_t>(cached_plans());
        r["active"] = gate_.active();
        r["queued"] = gate_.queued();
        out = ok_response(id, std::move(r));
        break;
      }
      case Op::Evaluate: {
        out = ok_response(id, evaluate(req));
        break;
      }
    }
    incr("serve_ok", &ServeCounters::ok);
  } catch (const ProtocolError& e) {
    span.arg("error", to_string(e.code));
    switch (e.code) {
      case ErrorCode::BadRequest:
        incr("serve_bad_request", &ServeCounters::bad_request);
        break;
      case ErrorCode::Overloaded:
        incr("serve_overloaded", &ServeCounters::overloaded);
        break;
      case ErrorCode::Internal:
        incr("serve_internal", &ServeCounters::internal);
        break;
    }
    out = error_response(id, e.code, e.what());
  } catch (const std::exception& e) {
    span.arg("error", "internal");
    incr("serve_internal", &ServeCounters::internal);
    out = error_response(id, ErrorCode::Internal, e.what());
  }
  if (rec_ != nullptr) rec_->observe("serve_request_seconds", watch.seconds());
  return out;
}

}  // namespace rdo::serve
