#include "serve/server.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/envvar.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace rdo::serve {

using rdo::obs::Json;

bool AdmissionGate::enter() {
  std::unique_lock<std::mutex> lk(mu_);
  if (active_ < max_active_) {
    ++active_;
    return true;
  }
  if (queued_ >= max_queued_) return false;  // shed
  ++queued_;
  cv_.wait(lk, [&] { return active_ < max_active_; });
  --queued_;
  ++active_;
  return true;
}

void AdmissionGate::leave() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    --active_;
  }
  // notify_all, not notify_one: both a queued request and a wait_idle()
  // drainer may be parked on this cv, and waking only one could leave
  // the other waiting on a notification that never comes.
  cv_.notify_all();
}

void AdmissionGate::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return active_ == 0 && queued_ == 0; });
}

int AdmissionGate::active() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_;
}

int AdmissionGate::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_;
}

InferenceService::InferenceService(const rdo::nn::Layer& net,
                                   rdo::nn::DataView train,
                                   rdo::nn::DataView test,
                                   rdo::core::DeployOptions base,
                                   ServeConfig cfg)
    : net_(net.clone()),
      train_(train),
      test_(test),
      base_(base),
      cfg_(cfg),
      gate_(cfg.max_active, cfg.max_queued) {
  if (const char* p = rdo::obs::env_knob("RDO_SLOW_REQUEST_MS")) {
    char* end = nullptr;
    const double ms = std::strtod(p, &end);
    if (end != p && *end == '\0' && ms >= 0.0) {
      slow_threshold_s_ = ms / 1000.0;
    }
  }
}

ServeCounters InferenceService::counters() const {
  ServeCounters c;
  c.requests = c_requests_.value();
  c.ok = c_ok_.value();
  c.bad_request = c_bad_request_.value();
  c.overloaded = c_overloaded_.value();
  c.internal = c_internal_.value();
  c.plan_hits = c_plan_hits_.value();
  c.plan_misses = c_plan_misses_.value();
  c.plan_evictions = c_plan_evictions_.value();
  c.backend_creates = c_backend_creates_.value();
  c.backend_reuses = c_backend_reuses_.value();
  c.slow_requests = c_slow_requests_.value();
  return c;
}

std::size_t InferenceService::cached_plans() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}

std::size_t InferenceService::pooled_backends() const {
  std::vector<std::shared_ptr<PlanEntry>> entries;
  {
    std::lock_guard<std::mutex> lk(mu_);
    entries.assign(lru_.begin(), lru_.end());
  }
  std::size_t n = 0;
  for (const auto& e : entries) {
    std::lock_guard<std::mutex> lk(e->mu);
    for (const auto& [cycle, idle] : e->pools) n += idle.size();
  }
  return n;
}

std::shared_ptr<InferenceService::PlanEntry> InferenceService::get_plan(
    const rdo::core::DeployOptions& opt, bool& lru_hit) {
  const std::uint64_t fp = rdo::core::plan_fingerprint(*net_, opt, train_);
  const auto find_hot = [&]() -> std::shared_ptr<PlanEntry> {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if ((*it)->fp == fp) {
        lru_.splice(lru_.begin(), lru_, it);  // touch
        return lru_.front();
      }
    }
    return nullptr;
  };
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (auto hot = find_hot()) {
      c_plan_hits_.add();
      lru_hit = true;
      return hot;
    }
  }

  // Serialize compilation so a burst of identical cold requests compiles
  // once instead of N times; re-check the LRU after winning the lock.
  std::lock_guard<std::mutex> compile_lk(compile_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (auto hot = find_hot()) {
      c_plan_hits_.add();
      lru_hit = true;
      return hot;
    }
  }
  lru_hit = false;
  auto entry =
      std::make_shared<PlanEntry>(rdo::core::compile_plan(*net_, opt, train_));
  entry->fp = fp;
  entry->from_disk_cache = entry->plan.compile_stats.plan_cache_hits > 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    c_plan_misses_.add();
    lru_.push_front(entry);
    while (lru_.size() > cfg_.max_plans) {
      // In-flight requests keep their shared_ptr; the plan dies when the
      // last one finishes.
      lru_.pop_back();
      c_plan_evictions_.add();
    }
  }
  return entry;
}

Json InferenceService::evaluate(const ServeRequest& req) {
  AdmissionTicket ticket(gate_);
  if (!ticket.admitted()) {
    throw ProtocolError(ErrorCode::Overloaded,
                        "active and queued request limits reached");
  }

  // Resolve the requested samples into a self-contained batch.
  rdo::nn::Tensor images;
  std::vector<int> labels;
  if (req.data.is_inline()) {
    if (req.data.inline_images.dim(0) > cfg_.max_request_samples) {
      throw ProtocolError(ErrorCode::BadRequest,
                          "inline batch exceeds max_request_samples");
    }
    images = req.data.inline_images;
    labels = req.data.inline_labels;
  } else {
    const rdo::nn::DataView& src =
        req.data.split == "train" ? train_ : test_;
    const std::int64_t total = src.size();
    if (req.data.offset > total) {
      throw ProtocolError(ErrorCode::BadRequest, "offset beyond dataset");
    }
    const std::int64_t count = req.data.count == 0
                                   ? total - req.data.offset
                                   : req.data.count;
    if (count < 1 || req.data.offset + count > total) {
      throw ProtocolError(ErrorCode::BadRequest,
                          "offset/count outside dataset");
    }
    if (count > cfg_.max_request_samples) {
      throw ProtocolError(ErrorCode::BadRequest,
                          "count exceeds max_request_samples");
    }
    std::vector<std::int64_t> idx;
    idx.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      idx.push_back(req.data.offset + i);
    }
    images = rdo::nn::gather_batch(*src.images, idx);
    labels.assign(src.labels->begin() + req.data.offset,
                  src.labels->begin() + req.data.offset + count);
  }
  const rdo::nn::DataView view{&images, &labels};

  bool lru_hit = false;
  std::shared_ptr<PlanEntry> entry = get_plan(req.options, lru_hit);

  // Check out a programmed backend for this cycle, or build one.
  std::unique_ptr<rdo::core::EffectiveWeightBackend> backend;
  {
    std::lock_guard<std::mutex> lk(entry->mu);
    auto& idle = entry->pools[req.cycle];
    if (!idle.empty()) {
      backend = std::move(idle.back());
      idle.pop_back();
    }
  }
  if (backend != nullptr) {
    c_backend_reuses_.add();
  } else {
    c_backend_creates_.add();
    rdo::obs::TraceSpan span("serve:backend_create", "serve");
    backend = std::make_unique<rdo::core::EffectiveWeightBackend>(entry->plan,
                                                                  *net_);
    backend->program_cycle(req.cycle);
    backend->tune(train_);
  }

  const float acc = backend->evaluate(view, req.batch);

  {
    std::lock_guard<std::mutex> lk(entry->mu);
    auto& idle = entry->pools[req.cycle];
    if (idle.size() < cfg_.max_backends_per_plan) {
      idle.push_back(std::move(backend));
    }
    // else: drop it — the pool is full.
  }

  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(entry->fp));
  Json r = Json::object();
  r["accuracy"] = static_cast<double>(acc);
  r["samples"] = images.dim(0);
  r["cycle"] = static_cast<std::int64_t>(req.cycle);
  r["plan_fingerprint"] = std::string(hex);
  r["cached_plan"] = lru_hit;
  r["plan_from_disk_cache"] = entry->from_disk_cache;
  r["backend"] = "effective-weight";
  return r;
}

Json InferenceService::stats_result() {
  // Refresh the point-in-time gauges before snapshotting so the nested
  // registry view and the flat fields agree within one stats response.
  const std::size_t pooled = pooled_backends();
  const std::size_t plans = cached_plans();
  const int active = gate_.active();
  const int queued = gate_.queued();
  const double uptime = uptime_.seconds();
  metrics_.gauge("serve_active_requests").set(active);
  metrics_.gauge("serve_queued_requests").set(queued);
  metrics_.gauge("serve_cached_plans").set(static_cast<double>(plans));
  metrics_.gauge("serve_pooled_backends").set(static_cast<double>(pooled));
  metrics_.gauge("serve_uptime_seconds").set(uptime);

  const ServeCounters c = counters();
  Json r = Json::object();
  r["requests"] = c.requests;
  r["ok"] = c.ok;
  r["bad_request"] = c.bad_request;
  r["overloaded"] = c.overloaded;
  r["internal"] = c.internal;
  r["plan_hits"] = c.plan_hits;
  r["plan_misses"] = c.plan_misses;
  r["plan_evictions"] = c.plan_evictions;
  r["backend_creates"] = c.backend_creates;
  r["backend_reuses"] = c.backend_reuses;
  r["slow_requests"] = c.slow_requests;
  r["cached_plans"] = static_cast<std::int64_t>(plans);
  r["pooled_backends"] = static_cast<std::int64_t>(pooled);
  r["active"] = active;
  r["queued"] = queued;
  r["uptime_seconds"] = uptime;
  const std::int64_t lookups = c.plan_hits + c.plan_misses;
  r["plan_hit_rate"] = lookups > 0 ? static_cast<double>(c.plan_hits) /
                                         static_cast<double>(lookups)
                                   : 0.0;
  r["metrics"] = metrics_.snapshot_json();
  return r;
}

std::string InferenceService::handle_line(const std::string& line) {
  rdo::obs::Stopwatch watch;
  const auto rid = static_cast<std::int64_t>(
      request_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  rdo::obs::TraceSpan span("serve:request", "serve");
  span.arg("request_id", rid);
  c_requests_.add();
  const char* op_name = "?";
  const char* status = "ok";
  Json id;
  std::string out;
  try {
    Json doc;
    try {
      doc = Json::parse(line);
    } catch (const std::exception& e) {
      throw ProtocolError(ErrorCode::BadRequest,
                          std::string("malformed JSON: ") + e.what());
    }
    ServeRequest req = parse_request(doc, base_);
    id = req.id;
    switch (req.op) {
      case Op::Ping: {
        op_name = "ping";
        Json r = Json::object();
        r["pong"] = true;
        out = ok_response(id, std::move(r));
        break;
      }
      case Op::Stats: {
        op_name = "stats";
        out = ok_response(id, stats_result());
        break;
      }
      case Op::Evaluate: {
        op_name = "evaluate";
        out = ok_response(id, evaluate(req));
        break;
      }
    }
    c_ok_.add();
  } catch (const ProtocolError& e) {
    status = to_string(e.code);
    span.arg("error", status);
    switch (e.code) {
      case ErrorCode::BadRequest:
        c_bad_request_.add();
        break;
      case ErrorCode::Overloaded:
        c_overloaded_.add();
        break;
      case ErrorCode::Internal:
        c_internal_.add();
        break;
    }
    out = error_response(id, e.code, e.what());
  } catch (const std::exception& e) {
    status = "internal";
    span.arg("error", status);
    c_internal_.add();
    out = error_response(id, ErrorCode::Internal, e.what());
  }
  const double seconds = watch.seconds();
  h_request_seconds_.observe(seconds);
  if (slow_threshold_s_ >= 0.0 && seconds >= slow_threshold_s_) {
    c_slow_requests_.add();
    rdo::obs::log_warn("serve", "slow request")
        .with("request_id", rid)
        .with("op", op_name)
        .with("status", status)
        .with("seconds", seconds)
        .with("threshold_seconds", slow_threshold_s_);
  }
  rdo::obs::log_debug("serve", "request handled")
      .with("request_id", rid)
      .with("op", op_name)
      .with("status", status)
      .with("seconds", seconds);
  return out;
}

}  // namespace rdo::serve
