// Wire protocol of the deployment server (tools/rdo_serve).
//
// Transport-agnostic line protocol: one request per line of JSON, one
// response line per request, in order. The parser treats every request
// as untrusted input — unknown operations, unknown config keys, wrong
// types and out-of-range values all raise ProtocolError(BadRequest)
// before anything touches the deployment pipeline, so hostile requests
// can never surface a ContractViolation from deeper layers.
//
// Requests:
//   {"id": <int|string>, "op": "ping"}
//   {"id": ..., "op": "stats"}
//   {"id": ..., "op": "evaluate",
//    "config": {"scheme": "VAWO*+PWT", "sigma": 0.5, ...},   // optional
//    "cycle": 0,                                             // optional
//    "batch": 64,                                            // optional
//    "data": {"split": "test", "offset": 0, "count": 256}    // optional
//           | {"shape": [N, ...], "images": [...], "labels": [...]}}
//
// Responses:
//   {"id": ..., "ok": true, "result": {...}}
//   {"id": ..., "ok": false,
//    "error": {"code": "bad_request"|"overloaded"|"internal",
//              "message": "..."}}
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/deploy.h"
#include "nn/tensor.h"
#include "obs/json.h"

namespace rdo::serve {

enum class ErrorCode { BadRequest, Overloaded, Internal };

const char* to_string(ErrorCode c);

/// Raised on any malformed or inadmissible request; `code` selects the
/// wire error code the caller serializes.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code(code) {}
  ErrorCode code;
};

enum class Op { Ping, Stats, Evaluate };

/// Which samples an evaluate request runs over. Either a slice of a
/// dataset registered with the service ("train"/"test") or an inline
/// batch shipped in the request itself.
struct DataSelector {
  std::string split = "test";  ///< empty when the request inlined data
  std::int64_t offset = 0;
  std::int64_t count = 0;  ///< 0 = to the end of the split
  rdo::nn::Tensor inline_images;
  std::vector<int> inline_labels;

  [[nodiscard]] bool is_inline() const { return split.empty(); }
};

struct ServeRequest {
  rdo::obs::Json id;  ///< echoed verbatim in the response; null if absent
  Op op = Op::Ping;
  /// Base service options with the request's "config" overrides applied.
  rdo::core::DeployOptions options;
  std::uint64_t cycle = 0;
  std::int64_t batch = 64;
  DataSelector data;
};

/// Validate one parsed request document against `base` options. Throws
/// ProtocolError(BadRequest) on any unknown key, type mismatch or
/// out-of-range value; never throws anything else.
ServeRequest parse_request(const rdo::obs::Json& doc,
                           const rdo::core::DeployOptions& base);

/// One success response line (no trailing newline).
std::string ok_response(const rdo::obs::Json& id, rdo::obs::Json result);
/// One error response line (no trailing newline).
std::string error_response(const rdo::obs::Json& id, ErrorCode code,
                           const std::string& message);

}  // namespace rdo::serve
