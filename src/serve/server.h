// Deployment-as-a-service: a long-running inference service over the
// compile-once/execute-many pipeline.
//
// An InferenceService owns one trained network plus its registered
// train/test datasets and answers line-protocol requests
// (serve/protocol.h). Per request config it compiles (or re-uses) a
// DeploymentPlan and evaluates on a pooled ExecutionBackend:
//
//   request config -> plan_fingerprint -> LRU of hot plans
//                  -> per-(plan, cycle) pool of programmed backends
//                  -> evaluate() -> response line
//
// Plans are immutable pure data, so one cached plan serves any number of
// concurrent backends; backends own all mutable state, so checking one
// out gives a request exclusive use with no further locking. Plan
// compilation additionally consults the on-disk RDO_PLAN_CACHE_DIR /
// RDO_LUT_CACHE_DIR caches (core/plan.h), which is what makes a cold
// server start cheap on a warmed cache.
//
// Admission control is a bounded active-set plus a bounded FIFO wait
// queue; beyond that requests are shed with a typed "overloaded" error
// instead of queueing without bound.
//
// Telemetry: every service owns a MetricsRegistry (obs/metrics.h) whose
// sharded counters and the serve_request_seconds histogram sit on the
// request hot path; the `stats` op snapshots it live. Each request gets
// a monotonically increasing request id carried by its "serve:request"
// trace span and its log lines; requests slower than RDO_SLOW_REQUEST_MS
// (milliseconds; unset = disabled) are logged at warn level. Harnesses
// fold the registry into a BENCH report with absorb_metrics at exit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/deploy.h"
#include "core/plan.h"
#include "nn/layer.h"
#include "nn/trainer.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "serve/protocol.h"

namespace rdo::serve {

struct ServeConfig {
  std::size_t max_plans = 4;             ///< LRU capacity (hot plans)
  std::size_t max_backends_per_plan = 2; ///< idle pool cap per (plan, cycle)
  int max_active = 4;                    ///< requests evaluating at once
  int max_queued = 16;                   ///< requests waiting for a slot
  std::int64_t max_request_samples = 1 << 16;  ///< eval budget per request
};

/// Service-level counters (monotonic; snapshot via counters()). This is
/// a point-in-time read of the service's MetricsRegistry, kept as a
/// plain struct for ergonomic test assertions.
struct ServeCounters {
  std::int64_t requests = 0;
  std::int64_t ok = 0;
  std::int64_t bad_request = 0;
  std::int64_t overloaded = 0;
  std::int64_t internal = 0;
  std::int64_t plan_hits = 0;
  std::int64_t plan_misses = 0;
  std::int64_t plan_evictions = 0;
  std::int64_t backend_creates = 0;
  std::int64_t backend_reuses = 0;
  std::int64_t slow_requests = 0;
};

/// Bounded admission: at most `max_active` holders at once, at most
/// `max_queued` waiters behind them; anything beyond is shed.
class AdmissionGate {
 public:
  AdmissionGate(int max_active, int max_queued)
      : max_active_(max_active), max_queued_(max_queued) {}

  /// Take a slot, waiting in the bounded queue if necessary. Returns
  /// false (without blocking) when both the active set and the queue are
  /// full — the caller sheds the request.
  bool enter();
  void leave();

  /// Block until no request holds a slot or waits in the queue — the
  /// graceful-shutdown drain. Callers must have stopped admitting new
  /// requests first or this can wait forever.
  void wait_idle();

  [[nodiscard]] int active() const;
  [[nodiscard]] int queued() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int max_active_;
  int max_queued_;
  int active_ = 0;
  int queued_ = 0;
};

/// RAII admission slot. `admitted()` is false when the gate shed the
/// request; destruction releases the slot exactly once.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionGate& gate)
      : gate_(gate), admitted_(gate.enter()) {}
  ~AdmissionTicket() {
    if (admitted_) gate_.leave();
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  [[nodiscard]] bool admitted() const { return admitted_; }

 private:
  AdmissionGate& gate_;
  bool admitted_;
};

class InferenceService {
 public:
  /// `net` is cloned; `train`/`test` must outlive the service (train
  /// feeds plan compilation and PWT, test/train serve "split" selectors).
  /// The ctor reads RDO_SLOW_REQUEST_MS (milliseconds, fractional ok)
  /// for the slow-request log threshold; unset or invalid disables it.
  InferenceService(const rdo::nn::Layer& net, rdo::nn::DataView train,
                   rdo::nn::DataView test, rdo::core::DeployOptions base,
                   ServeConfig cfg);

  /// Handle one request line, returning one response line (no trailing
  /// newline). Never throws: every failure becomes a typed error
  /// response. Safe to call concurrently from transport threads.
  std::string handle_line(const std::string& line);

  [[nodiscard]] ServeCounters counters() const;
  [[nodiscard]] const ServeConfig& config() const { return cfg_; }
  /// Plans currently resident in the LRU (test hook).
  [[nodiscard]] std::size_t cached_plans() const;
  /// Idle programmed backends pooled across every hot plan and cycle.
  [[nodiscard]] std::size_t pooled_backends() const;
  /// Seconds since the service was constructed (monotonic clock).
  [[nodiscard]] double uptime_seconds() const { return uptime_.seconds(); }
  /// Admission gate (test hook: tests hold AdmissionTickets directly to
  /// drive the gate into deterministic overload states).
  [[nodiscard]] AdmissionGate& gate() { return gate_; }
  /// Live instrument registry: counters, gauges and the request-latency
  /// histogram. Harnesses absorb it into a Recorder at report time.
  [[nodiscard]] rdo::obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const rdo::obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

 private:
  /// One hot plan plus its pools of programmed backends, keyed by cycle
  /// salt. shared_ptr-held so a request keeps its plan alive across an
  /// LRU eviction; `plan` is declared before the pools so backends (which
  /// reference it) are destroyed first.
  struct PlanEntry {
    explicit PlanEntry(rdo::core::DeploymentPlan p) : plan(std::move(p)) {}
    rdo::core::DeploymentPlan plan;
    std::uint64_t fp = 0;
    bool from_disk_cache = false;
    std::mutex mu;  ///< guards pools
    std::map<std::uint64_t,
             std::vector<std::unique_ptr<rdo::core::EffectiveWeightBackend>>>
        pools;
  };

  std::shared_ptr<PlanEntry> get_plan(const rdo::core::DeployOptions& opt,
                                      bool& lru_hit);
  rdo::obs::Json evaluate(const ServeRequest& req);
  rdo::obs::Json stats_result();

  std::unique_ptr<rdo::nn::Layer> net_;
  rdo::nn::DataView train_;
  rdo::nn::DataView test_;
  rdo::core::DeployOptions base_;
  ServeConfig cfg_;
  AdmissionGate gate_;

  mutable std::mutex mu_;       ///< guards lru_
  std::mutex compile_mu_;       ///< serializes plan compilation
  /// Most-recently-used first; eviction drops the tail.
  std::list<std::shared_ptr<PlanEntry>> lru_;

  rdo::obs::MetricsRegistry metrics_;
  // Hot-path instruments resolved once (references stay valid for the
  // registry's lifetime, i.e. the service's).
  rdo::obs::Counter& c_requests_ = metrics_.counter("serve_requests");
  rdo::obs::Counter& c_ok_ = metrics_.counter("serve_ok");
  rdo::obs::Counter& c_bad_request_ = metrics_.counter("serve_bad_request");
  rdo::obs::Counter& c_overloaded_ = metrics_.counter("serve_overloaded");
  rdo::obs::Counter& c_internal_ = metrics_.counter("serve_internal");
  rdo::obs::Counter& c_plan_hits_ = metrics_.counter("serve_plan_hits");
  rdo::obs::Counter& c_plan_misses_ = metrics_.counter("serve_plan_misses");
  rdo::obs::Counter& c_plan_evictions_ =
      metrics_.counter("serve_plan_evictions");
  rdo::obs::Counter& c_backend_creates_ =
      metrics_.counter("serve_backend_creates");
  rdo::obs::Counter& c_backend_reuses_ =
      metrics_.counter("serve_backend_reuses");
  rdo::obs::Counter& c_slow_requests_ =
      metrics_.counter("serve_slow_requests");
  rdo::obs::Histogram& h_request_seconds_ =
      metrics_.histogram("serve_request_seconds");

  std::atomic<std::uint64_t> request_seq_{0};
  double slow_threshold_s_ = -1.0;  ///< < 0 => slow-request log disabled
  rdo::obs::Stopwatch uptime_;
};

}  // namespace rdo::serve
