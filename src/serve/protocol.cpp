#include "serve/protocol.h"

#include <cmath>
#include <limits>

#include "core/opt/pipeline.h"

namespace rdo::serve {

namespace {

using rdo::obs::Json;

// Request-level structural ceilings (service-level sample budgets are
// enforced separately by ServeConfig::max_request_samples).
constexpr std::int64_t kMaxInlineValues = std::int64_t{1} << 24;
constexpr std::int64_t kMaxBatch = 1 << 16;
constexpr int kMaxLabelClasses = 1 << 16;

[[noreturn]] void bad(const std::string& what) {
  throw ProtocolError(ErrorCode::BadRequest, what);
}

const Json& member(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr) bad(std::string("missing member \"") + key + '"');
  return *v;
}

std::int64_t as_int(const Json& v, const char* key) {
  if (!v.is_int()) bad(std::string("member \"") + key + "\" must be an integer");
  return v.as_int();
}

double as_finite(const Json& v, const char* key) {
  if (!v.is_number()) bad(std::string("member \"") + key + "\" must be a number");
  const double d = v.as_double();
  if (!std::isfinite(d)) bad(std::string("member \"") + key + "\" must be finite");
  return d;
}

const std::string& as_str(const Json& v, const char* key) {
  if (!v.is_string()) bad(std::string("member \"") + key + "\" must be a string");
  return v.as_string();
}

/// Apply one "config" override onto `o`. Every key is individually
/// validated so a request can never construct options that deeper layers
/// would reject with a ContractViolation.
void apply_config_key(rdo::core::DeployOptions& o, const std::string& key,
                      const Json& v) {
  if (key == "scheme") {
    const auto s = rdo::core::parse_scheme(as_str(v, "scheme"));
    if (!s) bad("unknown scheme \"" + v.as_string() + '"');
    o.scheme = *s;
  } else if (key == "sigma") {
    const double d = as_finite(v, "sigma");
    if (d < 0.0 || d > 8.0) bad("sigma out of range [0, 8]");
    o.variation.sigma = d;
  } else if (key == "ddv_fraction") {
    const double d = as_finite(v, "ddv_fraction");
    if (d < 0.0 || d > 1.0) bad("ddv_fraction out of range [0, 1]");
    o.variation.ddv_fraction = d;
  } else if (key == "scope") {
    const std::string& s = as_str(v, "scope");
    if (s == "per_weight") {
      o.variation.scope = rdo::rram::VariationScope::PerWeight;
    } else if (s == "per_cell") {
      o.variation.scope = rdo::rram::VariationScope::PerCell;
    } else {
      bad("unknown scope \"" + s + "\" (per_weight|per_cell)");
    }
  } else if (key == "cell") {
    const std::string& s = as_str(v, "cell");
    if (s == "SLC") {
      o.cell.kind = rdo::rram::CellKind::SLC;
    } else if (s == "MLC2") {
      o.cell.kind = rdo::rram::CellKind::MLC2;
    } else {
      bad("unknown cell \"" + s + "\" (SLC|MLC2)");
    }
  } else if (key == "on_off_ratio") {
    const double d = as_finite(v, "on_off_ratio");
    if (d <= 1.0 || d > 1e9) bad("on_off_ratio out of range (1, 1e9]");
    o.cell.on_off_ratio = d;
  } else if (key == "m") {
    const std::int64_t n = as_int(v, "m");
    if (n < 1 || n > (1 << 20)) bad("m out of range [1, 2^20]");
    o.offsets.m = static_cast<int>(n);
  } else if (key == "offset_bits") {
    const std::int64_t n = as_int(v, "offset_bits");
    if (n < 1 || n > 30) bad("offset_bits out of range [1, 30]");
    o.offsets.offset_bits = static_cast<int>(n);
  } else if (key == "weight_bits") {
    const std::int64_t n = as_int(v, "weight_bits");
    if (n < 1 || n > 16) bad("weight_bits out of range [1, 16]");
    o.weight_bits = static_cast<int>(n);
  } else if (key == "seed") {
    const std::int64_t n = as_int(v, "seed");
    if (n < 0) bad("seed must be non-negative");
    o.seed = static_cast<std::uint64_t>(n);
  } else if (key == "lut_k_sets") {
    const std::int64_t n = as_int(v, "lut_k_sets");
    if (n < 1 || n > (1 << 20)) bad("lut_k_sets out of range [1, 2^20]");
    o.lut_k_sets = static_cast<int>(n);
  } else if (key == "lut_j_cycles") {
    const std::int64_t n = as_int(v, "lut_j_cycles");
    if (n < 1 || n > (1 << 20)) bad("lut_j_cycles out of range [1, 2^20]");
    o.lut_j_cycles = static_cast<int>(n);
  } else if (key == "grad_samples") {
    const std::int64_t n = as_int(v, "grad_samples");
    if (n < 0) bad("grad_samples must be non-negative");
    o.grad_samples = n;
  } else if (key == "pwt_epochs") {
    const std::int64_t n = as_int(v, "pwt_epochs");
    if (n < 0 || n > 1024) bad("pwt_epochs out of range [0, 1024]");
    o.pwt.epochs = static_cast<int>(n);
  } else if (key == "opt_passes") {
    const std::string& s = as_str(v, "opt_passes");
    std::string err;
    if (!rdo::core::opt::parse_pass_list(s, &err)) bad(err);
    o.opt_passes = s;
  } else {
    bad("unknown config key \"" + key + '"');
  }
}

DataSelector parse_data(const Json& d) {
  if (!d.is_object()) bad("\"data\" must be an object");
  DataSelector sel;
  if (d.find("split") != nullptr) {
    // Slice of a registered dataset.
    for (const auto& [key, v] : d.members()) {
      if (key == "split") {
        sel.split = as_str(v, "split");
        if (sel.split != "train" && sel.split != "test") {
          bad("unknown split \"" + sel.split + "\" (train|test)");
        }
      } else if (key == "offset") {
        sel.offset = as_int(v, "offset");
        if (sel.offset < 0) bad("offset must be non-negative");
      } else if (key == "count") {
        sel.count = as_int(v, "count");
        if (sel.count < 0) bad("count must be non-negative");
      } else {
        bad("unknown data key \"" + key + '"');
      }
    }
    return sel;
  }

  // Inline batch: shape + row-major image values + labels.
  sel.split.clear();
  const Json& shape = member(d, "shape");
  if (!shape.is_array() || shape.size() < 2) {
    bad("\"shape\" must be an array of at least rank 2");
  }
  std::vector<std::int64_t> dims;
  std::int64_t total = 1;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    const std::int64_t dim = as_int(shape.at(i), "shape");
    if (dim < 1 || dim > kMaxInlineValues) bad("shape dimension out of range");
    if (total > kMaxInlineValues / dim) bad("inline batch too large");
    total *= dim;
    dims.push_back(dim);
  }
  const Json& images = member(d, "images");
  if (!images.is_array() ||
      static_cast<std::int64_t>(images.size()) != total) {
    bad("\"images\" must be an array of shape-product length");
  }
  sel.inline_images = rdo::nn::Tensor(dims);
  for (std::size_t i = 0; i < images.size(); ++i) {
    sel.inline_images[static_cast<std::int64_t>(i)] =
        static_cast<float>(as_finite(images.at(i), "images"));
  }
  const Json& labels = member(d, "labels");
  if (!labels.is_array() ||
      static_cast<std::int64_t>(labels.size()) != dims[0]) {
    bad("\"labels\" must be an array of shape[0] length");
  }
  sel.inline_labels.reserve(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::int64_t l = as_int(labels.at(i), "labels");
    if (l < 0 || l >= kMaxLabelClasses) bad("label out of range");
    sel.inline_labels.push_back(static_cast<int>(l));
  }
  for (const auto& [key, v] : d.members()) {
    (void)v;
    if (key != "shape" && key != "images" && key != "labels") {
      bad("unknown data key \"" + key + '"');
    }
  }
  return sel;
}

}  // namespace

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::Internal: return "internal";
  }
  return "?";
}

ServeRequest parse_request(const Json& doc,
                           const rdo::core::DeployOptions& base) {
  if (!doc.is_object()) bad("request must be a JSON object");
  ServeRequest req;
  req.options = base;

  if (const Json* id = doc.find("id")) {
    if (!id->is_int() && !id->is_string() && !id->is_null()) {
      bad("\"id\" must be an integer or a string");
    }
    req.id = *id;
  }

  const std::string& op = as_str(member(doc, "op"), "op");
  if (op == "ping") {
    req.op = Op::Ping;
  } else if (op == "stats") {
    req.op = Op::Stats;
  } else if (op == "evaluate") {
    req.op = Op::Evaluate;
  } else {
    bad("unknown op \"" + op + "\" (ping|stats|evaluate)");
  }

  for (const auto& [key, v] : doc.members()) {
    if (key == "id" || key == "op") continue;
    if (req.op != Op::Evaluate) bad("unknown request key \"" + key + '"');
    if (key == "config") {
      if (!v.is_object()) bad("\"config\" must be an object");
      for (const auto& [ck, cv] : v.members()) {
        apply_config_key(req.options, ck, cv);
      }
    } else if (key == "cycle") {
      const std::int64_t n = as_int(v, "cycle");
      if (n < 0) bad("cycle must be non-negative");
      req.cycle = static_cast<std::uint64_t>(n);
    } else if (key == "batch") {
      const std::int64_t n = as_int(v, "batch");
      if (n < 1 || n > kMaxBatch) bad("batch out of range [1, 2^16]");
      req.batch = n;
    } else if (key == "data") {
      req.data = parse_data(v);
    } else {
      bad("unknown request key \"" + key + '"');
    }
  }

  // Cross-field check the pipeline would otherwise RDO_CHECK on.
  if (req.options.weight_bits % req.options.cell.bits() != 0) {
    bad("weight_bits must be divisible by the cell bit width");
  }
  return req;
}

std::string ok_response(const Json& id, Json result) {
  Json r = Json::object();
  r["id"] = id;
  r["ok"] = true;
  r["result"] = std::move(result);
  return r.dump();
}

std::string error_response(const Json& id, ErrorCode code,
                           const std::string& message) {
  Json e = Json::object();
  e["code"] = to_string(code);
  e["message"] = message;
  Json r = Json::object();
  r["id"] = id;
  r["ok"] = false;
  r["error"] = std::move(e);
  return r.dump();
}

}  // namespace rdo::serve
