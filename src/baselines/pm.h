// PM baseline: unary synapse coding with priority mapping on a
// two-crossbar architecture (Ma et al., "Go Unary", DATE'20 [12]).
//
// Each 8-bit weight magnitude is hybrid-coded over 10 2-bit MLCs: two
// binary cells (radix 4) hold the 4 LSBs, eight unary (thermometer) cells
// hold the 4 MSBs at 16 weight-units per state step. Unary coding spreads
// the high-significance part over many devices, so independent per-device
// variations average out instead of one MSB device dominating the error —
// the mechanism behind PM's robustness. Positive and negative weights
// live in separate crossbars (two-crossbar architecture); the idle side
// still contributes HRS leakage noise.
//
// Priority mapping proper permutes weight rows onto measured low-DDV
// devices. Its benefit exists only for the persistent (DDV) component of
// variation; under pure CCV a device's next cycle is unpredictable, which
// is exactly the paper's critique. We implement the DDV-aware row
// permutation and it becomes a no-op when ddv_fraction = 0.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "nn/trainer.h"
#include "rram/cell.h"
#include "rram/variation.h"

namespace rdo::baselines {

struct PmOptions {
  int unary_cells = 8;   ///< thermometer cells (4 MSBs)
  int binary_cells = 2;  ///< radix-4 cells (4 LSBs)
  rdo::rram::CellModel cell{rdo::rram::CellKind::MLC2, 200.0};
  /// Per-device variation (PM's averaging effect requires independent
  /// draws per cell, so VariationScope is ignored here).
  rdo::rram::VariationModel variation;
  bool priority_mapping = true;
  std::uint64_t seed = 11;
};

/// Deploy `net` with PM coding for `repeats` programming cycles; returns
/// the mean test accuracy. The network's weights are restored afterwards.
float run_pm(rdo::nn::Layer& net, const PmOptions& opt,
             const rdo::nn::DataView& test, int repeats,
             std::int64_t eval_batch = 64);

/// Devices per weight of the PM coding (for crossbar-count accounting).
inline int pm_cells_per_weight(const PmOptions& opt) {
  return opt.unary_cells + opt.binary_cells;
}

}  // namespace rdo::baselines
