#include "baselines/pm.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "nn/matrix_op.h"

namespace rdo::baselines {

using namespace rdo::nn;

namespace {

struct CodedLayer {
  MatrixOp* op = nullptr;
  float scale = 1.0f;
  std::vector<int> q;  ///< signed quantized weights, |q| <= 255
};

/// Cell significances of the hybrid code: binary cells x1, x4; unary
/// cells x16 each.
std::vector<int> slot_significance(const PmOptions& opt) {
  std::vector<int> sig;
  int radix = 1;
  for (int k = 0; k < opt.binary_cells; ++k) {
    sig.push_back(radix);
    radix *= opt.cell.states();
  }
  for (int k = 0; k < opt.unary_cells; ++k) sig.push_back(radix);
  return sig;
}

/// Cell states coding magnitude `mag` in [0, 255].
std::vector<int> code_states(int mag, const PmOptions& opt) {
  std::vector<int> states;
  const int smax = opt.cell.states() - 1;
  int lsb_levels = 1;
  for (int k = 0; k < opt.binary_cells; ++k) lsb_levels *= opt.cell.states();
  int lsb = mag % lsb_levels;
  const int msb = mag / lsb_levels;
  for (int k = 0; k < opt.binary_cells; ++k) {
    states.push_back(lsb % opt.cell.states());
    lsb /= opt.cell.states();
  }
  for (int k = 0; k < opt.unary_cells; ++k) {
    states.push_back(std::clamp(msb - smax * k, 0, smax));
  }
  return states;
}

}  // namespace

float run_pm(Layer& net, const PmOptions& opt, const DataView& test,
             int repeats, std::int64_t eval_batch) {
  // The coding must cover 8-bit magnitudes: the binary cells hold
  // log(lsb_levels) bits and the unary cells need capacity for the rest.
  {
    int lsb_levels = 1;
    for (int k = 0; k < opt.binary_cells; ++k) {
      lsb_levels *= opt.cell.states();
    }
    const int msb_max = 255 / lsb_levels;
    if ((opt.cell.states() - 1) * opt.unary_cells < msb_max) {
      throw std::invalid_argument(
          "run_pm: unary cell capacity cannot encode 8-bit magnitudes");
    }
  }
  std::vector<Layer*> all;
  collect_layers(&net, all);
  std::vector<CodedLayer> layers;
  std::vector<std::vector<float>> backup;
  for (Layer* l : all) {
    if (auto* op = dynamic_cast<MatrixOp*>(l)) {
      CodedLayer cl;
      cl.op = op;
      layers.push_back(cl);
    }
  }

  // Signed symmetric quantization to 8-bit magnitudes.
  for (CodedLayer& cl : layers) {
    const std::int64_t rows = cl.op->fan_in(), cols = cl.op->fan_out();
    float maxabs = 0.0f;
    std::vector<float> w(static_cast<std::size_t>(rows * cols));
    std::size_t i = 0;
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c, ++i) {
        w[i] = cl.op->weight_at(r, c);
        maxabs = std::max(maxabs, std::fabs(w[i]));
      }
    }
    backup.push_back(w);
    cl.scale = (maxabs > 0.0f ? maxabs : 1.0f) / 255.0f;
    cl.q.resize(w.size());
    for (std::size_t j = 0; j < w.size(); ++j) {
      cl.q[j] = std::clamp(
          static_cast<int>(std::lround(w[j] / cl.scale)), -255, 255);
    }
  }

  const std::vector<int> sig = slot_significance(opt);
  const int slots = pm_cells_per_weight(opt);
  const bool has_ddv = opt.variation.sigma_ddv() > 0.0;
  Rng master(opt.seed);

  // Persistent DDV thetas (both crossbars), drawn once per deployment.
  std::vector<std::vector<double>> ddv(layers.size());
  if (has_ddv) {
    Rng drng = master.split(0xDD);
    for (std::size_t li = 0; li < layers.size(); ++li) {
      ddv[li].resize(layers[li].q.size() * static_cast<std::size_t>(slots) *
                     2);
      for (auto& t : ddv[li]) t = opt.variation.sample_ddv_theta(drng);
    }
  }

  double total_acc = 0.0;
  for (int cycle = 0; cycle < repeats; ++cycle) {
    Rng crng = master.split(0xCC00 + static_cast<std::uint64_t>(cycle));
    for (std::size_t li = 0; li < layers.size(); ++li) {
      CodedLayer& cl = layers[li];
      const std::int64_t rows = cl.op->fan_in(), cols = cl.op->fan_out();
      std::size_t wi = 0;
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t c = 0; c < cols; ++c, ++wi) {
          const int q = cl.q[wi];
          std::vector<int> states = code_states(std::abs(q), opt);
          // Device slots for this weight: [0, slots) on the sign side,
          // [slots, 2*slots) on the idle side.
          const std::size_t base = wi * static_cast<std::size_t>(slots) * 2;
          std::vector<int> slot_of(states.size());
          std::iota(slot_of.begin(), slot_of.end(), 0);
          if (opt.priority_mapping && has_ddv) {
            // Priority mapping: most significant / highest-state cells to
            // the lowest-|DDV| devices of this weight's device group.
            std::vector<int> by_importance(states.size());
            std::iota(by_importance.begin(), by_importance.end(), 0);
            std::stable_sort(by_importance.begin(), by_importance.end(),
                             [&](int a, int b) {
                               return sig[static_cast<std::size_t>(a)] *
                                          states[static_cast<std::size_t>(a)] >
                                      sig[static_cast<std::size_t>(b)] *
                                          states[static_cast<std::size_t>(b)];
                             });
            std::vector<int> by_quality(states.size());
            std::iota(by_quality.begin(), by_quality.end(), 0);
            std::stable_sort(by_quality.begin(), by_quality.end(),
                             [&](int a, int b) {
                               return std::fabs(ddv[li][base + a]) <
                                      std::fabs(ddv[li][base + b]);
                             });
            for (std::size_t k = 0; k < states.size(); ++k) {
              slot_of[static_cast<std::size_t>(by_importance[k])] =
                  by_quality[k];
            }
          }
          double active = 0.0, idle = 0.0;
          for (std::size_t k = 0; k < states.size(); ++k) {
            const int slot = slot_of[k];
            const double th_a =
                (has_ddv ? ddv[li][base + slot] : 0.0) +
                opt.variation.sample_ccv_theta(crng);
            active += sig[k] *
                      opt.cell.read_value(states[k], std::exp(th_a));
            const double th_i =
                (has_ddv ? ddv[li][base + slots + slot] : 0.0) +
                opt.variation.sample_ccv_theta(crng);
            idle += sig[k] * opt.cell.read_value(0, std::exp(th_i));
          }
          const double mag = active - idle;
          cl.op->set_weight_at(
              r, c, static_cast<float>((q >= 0 ? mag : -mag) * cl.scale));
        }
      }
    }
    total_acc += rdo::nn::evaluate(net, test, eval_batch).accuracy;
  }

  // Restore float weights.
  for (std::size_t li = 0; li < layers.size(); ++li) {
    CodedLayer& cl = layers[li];
    std::size_t i = 0;
    for (std::int64_t r = 0; r < cl.op->fan_in(); ++r) {
      for (std::int64_t c = 0; c < cl.op->fan_out(); ++c, ++i) {
        cl.op->set_weight_at(r, c, backup[li][i]);
      }
    }
  }
  return static_cast<float>(total_acc / std::max(1, repeats));
}

}  // namespace rdo::baselines
