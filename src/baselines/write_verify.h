// Write-verify baseline: iterative program-and-verify (Lee et al. [5],
// Alibart et al. [6]).
//
// The classic CCV workaround: after programming, read the device back and
// reprogram until the CRW lands within a relative tolerance of the
// target, up to a pulse budget. It recovers accuracy without any
// architectural support but multiplies programming pulses — the lifetime
// cost the paper cites as its drawback (§I). `run_write_verify` deploys a
// network this way and reports both accuracy and the mean pulse count per
// device, so the accuracy-vs-lifetime trade-off is measurable.
#pragma once

#include <cstdint>

#include "nn/layer.h"
#include "nn/trainer.h"
#include "rram/programmer.h"

namespace rdo::baselines {

struct WriteVerifyOptions {
  /// Accept when |CRW - v| <= tolerance * max(v, tolerance_floor).
  double tolerance = 0.1;
  double tolerance_floor = 8.0;  ///< absolute floor in weight units
  int max_pulses = 8;            ///< programming attempts per weight
};

struct WriteVerifyResult {
  double crw = 0.0;
  int pulses = 0;
  bool converged = false;
};

/// Program one CTW with verify-and-retry.
WriteVerifyResult write_verify(const rdo::rram::WeightProgrammer& prog,
                               int v, const WriteVerifyOptions& opt,
                               rdo::nn::Rng& rng);

struct WvDeployResult {
  float mean_accuracy = 0.0f;
  double mean_pulses = 0.0;     ///< programming pulses per device per cycle
  double converged_share = 0.0; ///< fraction of weights within tolerance
};

/// Deploy `net` (plain one-crossbar, no offsets) with write-verify
/// programming for `repeats` cycles; restores the float weights after.
WvDeployResult run_write_verify(rdo::nn::Layer& net,
                                const rdo::rram::WeightProgrammer& prog,
                                const WriteVerifyOptions& opt,
                                const rdo::nn::DataView& test, int repeats,
                                std::uint64_t seed,
                                std::int64_t eval_batch = 64);

}  // namespace rdo::baselines
