#include "baselines/dva.h"

#include <algorithm>
#include <numeric>

#include "nn/loss.h"
#include "nn/matrix_op.h"
#include "nn/optimizer.h"

namespace rdo::baselines {

using namespace rdo::nn;

float dva_train(Layer& net, const DataView& train, const DvaOptions& opt) {
  std::vector<MatrixOp*> ops;
  std::vector<Layer*> all;
  collect_layers(&net, all);
  for (Layer* l : all) {
    if (auto* op = dynamic_cast<MatrixOp*>(l)) ops.push_back(op);
  }

  Rng rng(opt.seed);
  SGD sgd(net.params(), opt.lr, opt.momentum);
  SoftmaxCrossEntropy loss;
  const std::int64_t n = train.size();
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  std::vector<std::vector<float>> clean(ops.size());
  float last_acc = 0.0f;
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    std::int64_t correct = 0;
    for (std::int64_t start = 0; start < n; start += opt.batch_size) {
      const std::int64_t end = std::min(n, start + opt.batch_size);
      std::vector<std::int64_t> idx(order.begin() + start,
                                    order.begin() + end);
      Tensor batch = gather_batch(*train.images, idx);
      std::vector<int> labels;
      for (std::int64_t i : idx) {
        labels.push_back((*train.labels)[static_cast<std::size_t>(i)]);
      }

      // Perturb: W -> W * e^theta per weight.
      for (std::size_t k = 0; k < ops.size(); ++k) {
        MatrixOp* op = ops[k];
        auto& backup = clean[k];
        backup.resize(
            static_cast<std::size_t>(op->fan_in() * op->fan_out()));
        std::size_t i = 0;
        for (std::int64_t r = 0; r < op->fan_in(); ++r) {
          for (std::int64_t c = 0; c < op->fan_out(); ++c, ++i) {
            const float w = op->weight_at(r, c);
            backup[i] = w;
            op->set_weight_at(
                r, c,
                w * static_cast<float>(opt.variation.sample_factor(rng)));
          }
        }
      }

      Tensor logits = net.forward(batch, /*train=*/true);
      loss.forward(logits, labels);
      correct += loss.correct();
      net.backward(loss.backward());

      // Restore clean weights, then apply the noisy-point gradients.
      for (std::size_t k = 0; k < ops.size(); ++k) {
        MatrixOp* op = ops[k];
        std::size_t i = 0;
        for (std::int64_t r = 0; r < op->fan_in(); ++r) {
          for (std::int64_t c = 0; c < op->fan_out(); ++c, ++i) {
            op->set_weight_at(r, c, clean[k][i]);
          }
        }
      }
      sgd.step();
    }
    last_acc = static_cast<float>(correct) / static_cast<float>(n);
  }
  return last_acc;
}

}  // namespace rdo::baselines
