// DVA baseline: variation-aware training (Long et al., DATE'19 [9]).
//
// Trains the network with multiplicative log-normal noise injected into
// every crossbar-mapped weight each batch: gradients are computed at the
// perturbed point and applied to the clean weights, making the learned
// minimum flat with respect to resistance variation. Deployment-side, DVA
// uses 8 SLCs per weight on a one-crossbar architecture with no offsets —
// i.e. our Deployment with Scheme::Plain and SLC cells.
#pragma once

#include <cstdint>

#include "nn/layer.h"
#include "nn/trainer.h"
#include "rram/variation.h"

namespace rdo::baselines {

struct DvaOptions {
  int epochs = 3;
  std::int64_t batch_size = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
  rdo::rram::VariationModel variation;  ///< training-time injected noise
  std::uint64_t seed = 7;
};

/// Fine-tune `net` with variation-injected training. Returns the final
/// training accuracy (evaluated with clean weights).
float dva_train(rdo::nn::Layer& net, const rdo::nn::DataView& train,
                const DvaOptions& opt);

}  // namespace rdo::baselines
