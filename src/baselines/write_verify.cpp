#include "baselines/write_verify.h"

#include <algorithm>
#include <cmath>

#include "nn/matrix_op.h"
#include "quant/quantizer.h"

namespace rdo::baselines {

using namespace rdo::nn;

WriteVerifyResult write_verify(const rdo::rram::WeightProgrammer& prog,
                               int v, const WriteVerifyOptions& opt,
                               rdo::nn::Rng& rng) {
  WriteVerifyResult res;
  const double bound =
      opt.tolerance * std::max(static_cast<double>(v), opt.tolerance_floor);
  double best = 0.0;
  double best_err = -1.0;
  for (int p = 0; p < opt.max_pulses; ++p) {
    const double crw = prog.program(v, rng);
    ++res.pulses;
    const double err = std::fabs(crw - static_cast<double>(v));
    if (best_err < 0.0 || err < best_err) {
      best = crw;
      best_err = err;
    }
    if (err <= bound) {
      res.crw = crw;
      res.converged = true;
      return res;
    }
  }
  // Keep the best attempt (the device retains its last-best programming).
  res.crw = best;
  res.converged = false;
  return res;
}

WvDeployResult run_write_verify(Layer& net,
                                const rdo::rram::WeightProgrammer& prog,
                                const WriteVerifyOptions& opt,
                                const DataView& test, int repeats,
                                std::uint64_t seed,
                                std::int64_t eval_batch) {
  std::vector<Layer*> all;
  collect_layers(&net, all);
  std::vector<MatrixOp*> ops;
  for (Layer* l : all) {
    if (auto* op = dynamic_cast<MatrixOp*>(l)) ops.push_back(op);
  }

  // Quantize once; back up float weights.
  std::vector<rdo::quant::LayerQuant> lqs;
  std::vector<std::vector<float>> backup(ops.size());
  for (std::size_t k = 0; k < ops.size(); ++k) {
    lqs.push_back(rdo::quant::quantize_matrix(*ops[k], prog.weight_bits()));
    for (std::int64_t r = 0; r < ops[k]->fan_in(); ++r) {
      for (std::int64_t c = 0; c < ops[k]->fan_out(); ++c) {
        backup[k].push_back(ops[k]->weight_at(r, c));
      }
    }
  }

  WvDeployResult out;
  double total_acc = 0.0;
  long long total_pulses = 0, total_devices = 0, total_converged = 0;
  Rng master(seed);
  for (int cycle = 0; cycle < repeats; ++cycle) {
    Rng rng = master.split(0x77u + static_cast<std::uint64_t>(cycle));
    for (std::size_t k = 0; k < ops.size(); ++k) {
      const auto& lq = lqs[k];
      for (std::int64_t r = 0; r < lq.rows; ++r) {
        for (std::int64_t c = 0; c < lq.cols; ++c) {
          const WriteVerifyResult wv =
              write_verify(prog, lq.at(r, c), opt, rng);
          ops[k]->set_weight_at(
              r, c, lq.dequant(static_cast<float>(wv.crw)));
          total_pulses += wv.pulses;
          total_converged += wv.converged ? 1 : 0;
          ++total_devices;
        }
      }
    }
    total_acc += evaluate(net, test, eval_batch).accuracy;
  }

  // Restore float weights.
  for (std::size_t k = 0; k < ops.size(); ++k) {
    std::size_t i = 0;
    for (std::int64_t r = 0; r < ops[k]->fan_in(); ++r) {
      for (std::int64_t c = 0; c < ops[k]->fan_out(); ++c, ++i) {
        ops[k]->set_weight_at(r, c, backup[k][i]);
      }
    }
  }
  out.mean_accuracy = static_cast<float>(total_acc / std::max(1, repeats));
  out.mean_pulses =
      static_cast<double>(total_pulses) / static_cast<double>(total_devices);
  out.converged_share = static_cast<double>(total_converged) /
                        static_cast<double>(total_devices);
  return out;
}

}  // namespace rdo::baselines
