// Monotonic wall-clock helpers for phase timing. Header-only.
//
// Timing never feeds back into any computation — clocks are read only to
// fill the volatile `timing` section of a report — so instrumented code
// keeps PR 1's bit-identical determinism guarantee.
#pragma once

#include <chrono>

namespace rdo::obs {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// RAII phase timer: adds the scope's wall time to `*accumulator` on
/// destruction. Safe against exceptions unwinding through the scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator) : acc_(accumulator) {}
  ~ScopedTimer() {
    if (acc_ != nullptr) *acc_ += watch_.seconds();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* acc_;
  Stopwatch watch_;
};

}  // namespace rdo::obs
