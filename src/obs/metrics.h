// Live operational metrics: a registry of named counters, gauges and
// latency histograms that can be read *while the process runs*.
//
// The Recorder (obs/recorder.h) answers "what happened over this run"
// at report time; it is mutex-per-operation and serialized once, at the
// end. Long-running processes — rdo_serve, overnight fault/drift
// campaigns — additionally need instruments that are cheap enough to
// sit on the request hot path and can be snapshotted at any moment for
// a live `stats` request or a periodic dump. That is this registry:
//
//   * Counter    monotonic int64; add() lands in one of kMetricShards
//                cache-line-padded relaxed atomics chosen per thread,
//                so concurrent increments never contend on one line.
//   * Gauge      last-write-wins double (atomic store/load).
//   * Histogram  log2-microsecond latency buckets with the exact
//                geometry of the Recorder's histograms (obs/recorder.h
//                kLatencyBuckets), plus a sum track, so a registry
//                histogram can be absorbed into a BENCH document
//                without resampling.
//
// Instruments are created on first use and never destroyed, so a
// resolved Counter& stays valid for the registry's lifetime — resolve
// once, then add() with no lock. snapshot() walks every instrument in
// name order under the registration lock, giving one stable, sorted
// view; exports are a deterministic function of the snapshot (JSON via
// obs::Json, Prometheus text exposition for scrapers).
//
// Naming convention (enforced by convention, validated in exposition):
// lowercase snake_case, subsystem prefix first ("serve_", "deploy_",
// "process_"), unit suffix last where one applies ("_seconds", "_bytes").
// The Prometheus exposition prepends "rdo_" as the namespace.
//
// Recorder bridge: absorb_metrics(rec, registry) folds a snapshot into
// a Recorder at report time. Harnesses that never touch the registry
// absorb nothing, so committed BENCH baselines stay byte-identical.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/recorder.h"

namespace rdo::obs {

/// Shards per counter/histogram. 16 × 64B = 1 KiB per counter: plenty
/// of isolation for the pool's worker counts without bloating a
/// registry of dozens of instruments.
inline constexpr int kMetricShards = 16;

namespace metrics_internal {
/// Stable per-thread shard index in [0, kMetricShards), assigned
/// round-robin at first use.
int thread_shard() noexcept;

struct alignas(64) ShardedCell {
  std::atomic<std::int64_t> v{0};
};
}  // namespace metrics_internal

/// Histogram bucket index for a latency in seconds: floor(log2(µs)),
/// clamped to [0, kLatencyBuckets). Shared with the Recorder so both
/// instruments bucket identically.
int latency_bucket_index(double seconds);
/// Seconds at the geometric midpoint of bucket i.
double latency_bucket_midpoint_seconds(int i);
/// Upper bound of bucket i in seconds (2^(i+1) µs) — the Prometheus
/// `le` label.
double latency_bucket_upper_seconds(int i);
/// Value at quantile q of a bucketed latency distribution: the
/// geometric midpoint of the rank bucket, clamped to [min_s, max_s].
/// Shared by Recorder::histograms_json and the registry exports.
double latency_histogram_quantile(
    const std::array<std::int64_t, kLatencyBuckets>& buckets,
    std::int64_t count, double q, double min_s, double max_s);

/// Monotonic counter. add() is wait-free on x86: one relaxed fetch_add
/// on the calling thread's shard.
class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    shards_[metrics_internal::thread_shard()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  std::array<metrics_internal::ShardedCell, kMetricShards> shards_;
};

/// Last-write-wins gauge.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time view of one histogram (sums over all shards).
struct HistogramSnapshot {
  std::int64_t count = 0;
  double sum_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  std::array<std::int64_t, kLatencyBuckets> buckets{};
};

/// Log2-µs latency histogram. observe() touches only the calling
/// thread's shard (bucket increment + nanosecond sum) plus two relaxed
/// CAS loops for min/max.
class Histogram {
 public:
  void observe(double seconds) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::int64_t>, kLatencyBuckets> buckets{};
    std::atomic<std::int64_t> sum_ns{0};
  };
  std::array<Shard, kMetricShards> shards_;
  // Extremes start at ±infinity so the CAS fold works from the first
  // sample; snapshot() reports 0 for both until count > 0.
  std::atomic<double> min_seconds_{
      std::numeric_limits<double>::infinity()};
  std::atomic<double> max_seconds_{
      -std::numeric_limits<double>::infinity()};
};

/// Full registry view: instruments in sorted-name order.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class MetricsRegistry {
 public:
  /// Find-or-create by name. The returned reference is valid for the
  /// registry's lifetime; resolve once and cache it on hot paths.
  /// A name resolves to exactly one instrument kind — asking for a
  /// counter named like an existing gauge throws std::logic_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One consistent pass over every registered instrument, sorted by
  /// name (std::map order). Values are relaxed reads — increments
  /// racing the snapshot land in this view or the next, never torn.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with
  /// sorted member names; histogram entries carry the Recorder's
  /// histogram shape (count/min/max/p50/p95/p99/bucket_counts) plus
  /// sum_seconds.
  [[nodiscard]] Json snapshot_json() const;

  /// Prometheus text exposition (version 0.0.4): every name prefixed
  /// "rdo_", histograms as cumulative _bucket{le=...}/_sum/_count.
  [[nodiscard]] std::string prometheus_text() const;

 private:
  mutable std::mutex mu_;  ///< guards the maps (not the instruments)
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide registry for code without a natural owner (the deploy
/// cache counters); services that need isolated metrics (one registry
/// per InferenceService) construct their own.
MetricsRegistry& global_metrics();

/// JSON form of one HistogramSnapshot (the snapshot_json() entry shape).
[[nodiscard]] Json histogram_snapshot_json(const HistogramSnapshot& h);

/// Fold a registry snapshot into a Recorder at report time: counters
/// incr, gauges set, histograms merge bucket-by-bucket (sum_seconds has
/// no Recorder slot and is dropped). An empty registry is a no-op, so
/// reports that never used the registry are byte-identical to before.
void absorb_metrics(Recorder& rec, const MetricsRegistry& registry);

/// Structural validation of a snapshot_json() document: the three
/// sections present, counters int, gauges numeric, histograms carrying
/// count/min/max/quantiles/sum_seconds and exactly kLatencyBuckets
/// bucket_counts. Diagnostic in *err on failure.
bool validate_metrics_json(const Json& doc, std::string* err);

}  // namespace rdo::obs
