// Minimal dependency-free JSON document model for structured results.
//
// Design constraints (see DESIGN.md / ISSUE 2): the serialized form must
// be *deterministic* — object members keep insertion order, numbers are
// formatted with a fixed shortest-round-trip policy — so two runs that
// produce the same values produce byte-identical files regardless of
// thread count. A small recursive-descent parser is included so tests
// can round-trip documents and tools can validate emitted files; it is
// not a general-purpose validator (no streaming, whole-document only).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rdo::obs {

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;  // null
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(int v) : type_(Type::Int), int_(v) {}
  Json(std::int64_t v) : type_(Type::Int), int_(v) {}
  Json(std::uint64_t v) : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : type_(Type::Double), double_(v) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_int() const { return type_ == Type::Int; }
  [[nodiscard]] bool is_double() const { return type_ == Type::Double; }
  /// Int or Double.
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw std::logic_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  ///< Int promotes to double
  [[nodiscard]] const std::string& as_string() const;

  /// Array / object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const;

  /// Array element access (throws std::out_of_range).
  [[nodiscard]] const Json& at(std::size_t i) const;
  /// Append to an array (null converts to array first).
  Json& push_back(Json v);

  /// Object member access: inserts a null member when absent (null
  /// converts to object first). Insertion order is serialization order.
  Json& operator[](const std::string& key);
  /// Lookup without insertion; nullptr when absent or not an object.
  /// Lvalue-only: the pointer aims into this document, so calling it on
  /// a temporary would dangle the moment the statement ends (a real
  /// use-after-free once caught by the ASan preset in tests).
  [[nodiscard]] const Json* find(const std::string& key) const&;
  const Json* find(const std::string& key) const&& = delete;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Serialize. indent < 0: compact one-line form; indent >= 0: pretty-
  /// printed with that many spaces per level. Both forms are stable.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws std::runtime_error with a
  /// byte offset on malformed input.
  static Json parse(const std::string& text);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;

  void dump_to(std::string& out, int indent, int depth) const;
};

/// Write `doc` pretty-printed (2-space indent) to `path` with a trailing
/// newline; throws std::runtime_error on I/O failure.
void write_json_file(const Json& doc, const std::string& path);

/// Read and parse a JSON file; throws std::runtime_error on I/O or parse
/// failure.
Json read_json_file(const std::string& path);

}  // namespace rdo::obs
