#include "obs/diff.h"

#include <cmath>
#include <cstdlib>

namespace rdo::obs {

namespace {

std::string num_str(const Json& v) {
  return v.is_int() ? std::to_string(v.as_int()) : Json(v.as_double()).dump();
}

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return "bool";
    case Json::Type::Int: return "int";
    case Json::Type::Double: return "double";
    case Json::Type::String: return "string";
    case Json::Type::Array: return "array";
    case Json::Type::Object: return "object";
  }
  return "?";
}

bool within(double a, double b, double abs_tol, double rel_tol) {
  if (a == b) return true;  // covers ±0 and exact matches
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * scale;
}

struct Differ {
  const DiffOptions& opt;
  DiffReport& out;

  void regress(const std::string& path, const std::string& what) {
    out.regressions.push_back(path + ": " + what);
  }

  void tolerated(const std::string& path, double base, double cur) {
    out.infos.push_back(path + ": " + Json(base).dump() + " -> " +
                        Json(cur).dump() + " (within tolerance)");
  }

  /// Deep compare under gauge/result tolerances. Numbers are compared
  /// as doubles (Int promotes); everything else must match exactly,
  /// including container shape and object member order — the writer is
  /// deterministic, so order drift means the producing code changed.
  void compare_value(const std::string& path, const Json& base,
                     const Json& cur) {
    if (base.is_number() && cur.is_number()) {
      const double a = base.as_double();
      const double b = cur.as_double();
      const bool a_bad = std::isnan(a) || std::isinf(a);
      const bool b_bad = std::isnan(b) || std::isinf(b);
      if (a_bad || b_bad) {
        if (a_bad != b_bad) regress(path, "non-finite value on one side");
        return;
      }
      if (!within(a, b, opt.abs_tol, opt.rel_tol)) {
        regress(path, num_str(base) + " -> " + num_str(cur) +
                          " exceeds tolerance");
      } else if (a != b) {
        tolerated(path, a, b);
      }
      return;
    }
    if (base.type() != cur.type()) {
      regress(path, std::string("type changed ") + type_name(base.type()) +
                        " -> " + type_name(cur.type()));
      return;
    }
    switch (base.type()) {
      case Json::Type::Null:
        return;
      case Json::Type::Bool:
        if (base.as_bool() != cur.as_bool()) {
          regress(path, "bool value changed");
        }
        return;
      case Json::Type::String:
        if (base.as_string() != cur.as_string()) {
          regress(path, '"' + base.as_string() + "\" -> \"" +
                            cur.as_string() + '"');
        }
        return;
      case Json::Type::Array: {
        if (base.size() != cur.size()) {
          regress(path, "array length " + std::to_string(base.size()) +
                            " -> " + std::to_string(cur.size()));
          return;
        }
        for (std::size_t i = 0; i < base.size(); ++i) {
          compare_value(path + "[" + std::to_string(i) + "]", base.at(i),
                        cur.at(i));
        }
        return;
      }
      case Json::Type::Object: {
        for (const auto& [key, bval] : base.members()) {
          const Json* cval = cur.find(key);
          if (cval == nullptr) {
            regress(path + "." + key, "missing in current");
            continue;
          }
          compare_value(path + "." + key, bval, *cval);
        }
        for (const auto& [key, cval] : cur.members()) {
          (void)cval;
          if (base.find(key) == nullptr) {
            regress(path + "." + key, "not present in baseline");
          }
        }
        return;
      }
      default:
        return;  // numbers handled above
    }
  }

  void compare_counters(const Json& base, const Json& cur) {
    for (const auto& [key, bval] : base.members()) {
      const std::string path = "counters." + key;
      const Json* cval = cur.find(key);
      if (cval == nullptr) {
        regress(path, "missing in current");
        continue;
      }
      if (!bval.is_int() || !cval->is_int()) {
        regress(path, "counter is not an int");
        continue;
      }
      const std::int64_t a = bval.as_int();
      const std::int64_t b = cval->as_int();
      if (a == b) continue;
      const double scale =
          static_cast<double>(std::max(std::llabs(a), std::llabs(b)));
      if (std::fabs(static_cast<double>(a - b)) <=
          opt.counter_rel_tol * scale) {
        tolerated(path, static_cast<double>(a), static_cast<double>(b));
      } else {
        regress(path, std::to_string(a) + " -> " + std::to_string(b) +
                          " exceeds tolerance");
      }
    }
    for (const auto& [key, cval] : cur.members()) {
      (void)cval;
      if (base.find(key) == nullptr) {
        regress("counters." + key, "not present in baseline");
      }
    }
  }

  /// Failures are part of the gate with zero tolerance: a run that
  /// starts (or stops) failing must surface even when tolerances are
  /// loose.
  void compare_failures(const Json& base, const Json& cur) {
    const DiffOptions exact{};
    Differ strict{exact, out};
    strict.compare_value("failures", base, cur);
  }

  void info_volatile(const char* section, const Json& base,
                     const Json& cur) {
    const Json* b = base.find(section);
    const Json* c = cur.find(section);
    if (b == nullptr || c == nullptr) return;
    if (b->dump() != c->dump()) {
      out.infos.push_back(std::string(section) +
                          ": differs (informational)");
    }
  }
};

const Json* section(const Json& doc, const char* key, Json::Type type,
                    Differ& d) {
  const Json* v = doc.find(key);
  if (v == nullptr || v->type() != type) {
    d.regress(key, v == nullptr ? "section missing" : "section has wrong type");
    return nullptr;
  }
  return v;
}

}  // namespace

DiffReport diff_bench_documents(const Json& baseline, const Json& current,
                                const DiffOptions& opt) {
  DiffReport out;
  Differ d{opt, out};
  if (!baseline.is_object() || !current.is_object()) {
    d.regress("document", "not an object");
    return out;
  }

  const Json* bname = baseline.find("name");
  const Json* cname = current.find("name");
  if (bname == nullptr || cname == nullptr || !bname->is_string() ||
      !cname->is_string()) {
    d.regress("name", "missing harness name");
  } else if (bname->as_string() != cname->as_string()) {
    d.regress("name", '"' + bname->as_string() + "\" vs \"" +
                          cname->as_string() + "\" — different harnesses");
  }

  const Json* bver = baseline.find("schema_version");
  const Json* cver = current.find("schema_version");
  if (bver != nullptr && cver != nullptr && bver->is_int() &&
      cver->is_int() && bver->as_int() != cver->as_int()) {
    out.infos.push_back("schema_version: " + std::to_string(bver->as_int()) +
                        " -> " + std::to_string(cver->as_int()));
  }

  const Json* bc = section(baseline, "counters", Json::Type::Object, d);
  const Json* cc = section(current, "counters", Json::Type::Object, d);
  if (bc != nullptr && cc != nullptr) d.compare_counters(*bc, *cc);

  const Json* bg = section(baseline, "gauges", Json::Type::Object, d);
  const Json* cg = section(current, "gauges", Json::Type::Object, d);
  if (bg != nullptr && cg != nullptr) d.compare_value("gauges", *bg, *cg);

  const Json* br = section(baseline, "results", Json::Type::Object, d);
  const Json* cr = section(current, "results", Json::Type::Object, d);
  if (br != nullptr && cr != nullptr) d.compare_value("results", *br, *cr);

  const Json* bf = section(baseline, "failures", Json::Type::Array, d);
  const Json* cf = section(current, "failures", Json::Type::Array, d);
  if (bf != nullptr && cf != nullptr) d.compare_failures(*bf, *cf);

  d.info_volatile("timing", baseline, current);
  d.info_volatile("pool", baseline, current);
  d.info_volatile("histograms", baseline, current);
  d.info_volatile("env", baseline, current);
  return out;
}

}  // namespace rdo::obs
