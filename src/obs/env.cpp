#include "obs/env.h"

#include <cstdlib>
#include <thread>

#include "nn/parallel.h"
#include "obs/envvar.h"

#ifndef RDO_GIT_SHA
#define RDO_GIT_SHA "unknown"
#endif
#ifndef RDO_BUILD_TYPE
#define RDO_BUILD_TYPE "unknown"
#endif

namespace rdo::obs {

const char* build_git_sha() { return RDO_GIT_SHA; }

const char* build_type() { return RDO_BUILD_TYPE; }

Json capture_env(std::uint64_t seed) {
  Json env = Json::object();
  env["threads"] = rdo::nn::thread_count();
  const char* raw = rdo::obs::env_knob("RDO_THREADS");
  env["rdo_threads_env"] = raw != nullptr ? raw : "";
  env["hardware_concurrency"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  env["build_type"] = build_type();
  env["git_sha"] = build_git_sha();
  env["seed"] = seed;
#if defined(__clang__)
  env["compiler"] = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  env["compiler"] = std::string("gcc ") + std::to_string(__GNUC__) + "." +
                    std::to_string(__GNUC_MINOR__) + "." +
                    std::to_string(__GNUC_PATCHLEVEL__);
#else
  env["compiler"] = "unknown";
#endif
  return env;
}

}  // namespace rdo::obs
