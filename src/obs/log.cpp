#include "obs/log.h"

#include "obs/envvar.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace rdo::obs {

namespace log_internal {

std::atomic<int> g_level{0};

namespace {

/// All mutable logger state behind one mutex. Intentionally leaked so
/// lines emitted from atexit handlers (e.g. the trace flush) can never
/// touch a destroyed logger.
struct State {
  std::mutex mu;
  LogFormat format = LogFormat::Text;
  bool format_resolved = false;
  std::FILE* sink = nullptr;  // nullptr => stderr
  std::int64_t epoch_ns = 0;
  bool epoch_set = false;
};

State& state() {
  static State* s = new State();
  return *s;
}

std::int64_t mono_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Caller holds s.mu.
double uptime_locked(State& s) {
  if (!s.epoch_set) {
    s.epoch_ns = mono_ns();
    s.epoch_set = true;
  }
  return static_cast<double>(mono_ns() - s.epoch_ns) / 1e9;
}

/// Caller holds s.mu.
LogFormat format_locked(State& s) {
  if (!s.format_resolved) {
    s.format_resolved = true;
    if (const char* f = rdo::obs::env_knob("RDO_LOG_FORMAT")) {
      std::string v(f);
      for (char& c : v) c = static_cast<char>(std::tolower(c));
      if (v == "json") s.format = LogFormat::JsonLines;
    }
  }
  return s.format;
}

}  // namespace

int resolve_level_from_env() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const int cur = g_level.load(std::memory_order_relaxed);
  if (cur != 0) return cur;
  LogLevel lv = LogLevel::Info;
  if (const char* p = rdo::obs::env_knob("RDO_LOG_LEVEL")) {
    lv = log_level_from_string(p, LogLevel::Info);
  }
  const int encoded = static_cast<int>(lv) + 1;
  g_level.store(encoded, std::memory_order_relaxed);
  return encoded;
}

}  // namespace log_internal

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

LogLevel log_level_from_string(const std::string& name, LogLevel fallback) {
  std::string v = name;
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "debug") return LogLevel::Debug;
  if (v == "info") return LogLevel::Info;
  if (v == "warn" || v == "warning") return LogLevel::Warn;
  if (v == "error") return LogLevel::Error;
  if (v == "off" || v == "none") return LogLevel::Off;
  return fallback;
}

void log_set_level(LogLevel level) {
  log_internal::g_level.store(static_cast<int>(level) + 1,
                              std::memory_order_relaxed);
}

void log_set_format(LogFormat format) {
  auto& s = log_internal::state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.format = format;
  s.format_resolved = true;
}

void log_set_sink(std::FILE* sink) {
  auto& s = log_internal::state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.sink = sink;
}

double log_uptime_seconds() {
  auto& s = log_internal::state();
  std::lock_guard<std::mutex> lock(s.mu);
  return log_internal::uptime_locked(s);
}

namespace {

/// Level tag for the text format: fixed width so columns line up.
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: break;
  }
  return "?????";
}

bool needs_quoting(const std::string& v) {
  if (v.empty()) return true;
  for (const char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') {
      return true;
    }
  }
  return false;
}

void append_text_value(std::string& out, const Json& v) {
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (needs_quoting(s)) {
      out += Json(s).dump();  // JSON string escaping, quotes included
    } else {
      out += s;
    }
  } else {
    out += v.dump();
  }
}

}  // namespace

std::string format_log_line(LogFormat format, double ts, LogLevel level,
                            const char* subsystem,
                            const std::string& message, const Json& fields) {
  if (format == LogFormat::JsonLines) {
    Json line = Json::object();
    line["ts"] = ts;
    line["level"] = to_string(level);
    line["subsystem"] = subsystem;
    line["message"] = message;
    if (fields.is_object()) {
      for (const auto& [key, v] : fields.members()) line[key] = v;
    }
    return line.dump();
  }
  char head[64];
  std::snprintf(head, sizeof(head), "[%10.3f] ", ts);
  std::string out = head;
  out += level_tag(level);
  out += ' ';
  out += subsystem;
  out += ": ";
  out += message;
  if (fields.is_object()) {
    for (const auto& [key, v] : fields.members()) {
      out += ' ';
      out += key;
      out += '=';
      append_text_value(out, v);
    }
  }
  return out;
}

LogLine::LogLine(LogLevel level, const char* subsystem, std::string message)
    : live_(log_enabled(level)),
      level_(level),
      subsystem_(subsystem),
      message_(std::move(message)) {}

LogLine::LogLine(LogLine&& other) noexcept
    : live_(other.live_),
      level_(other.level_),
      subsystem_(other.subsystem_),
      message_(std::move(other.message_)),
      fields_(std::move(other.fields_)) {
  other.live_ = false;
}

LogLine::~LogLine() {
  if (!live_) return;
  auto& s = log_internal::state();
  double ts = 0.0;
  LogFormat format = LogFormat::Text;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    ts = log_internal::uptime_locked(s);
    format = log_internal::format_locked(s);
  }
  // Format off-lock; take the mutex only for the sink write so long
  // messages never serialize formatting work across threads.
  std::string line =
      format_log_line(format, ts, level_, subsystem_, message_, fields_);
  line += '\n';
  std::lock_guard<std::mutex> lock(s.mu);
  std::FILE* sink = s.sink != nullptr ? s.sink : stderr;
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
}

LogLine& LogLine::with(const char* key, const std::string& v) {
  if (live_) fields_[key] = v;
  return *this;
}

LogLine& LogLine::with(const char* key, const char* v) {
  if (live_) fields_[key] = v;
  return *this;
}

LogLine& LogLine::with(const char* key, std::int64_t v) {
  if (live_) fields_[key] = v;
  return *this;
}

LogLine& LogLine::with(const char* key, double v) {
  if (live_) fields_[key] = v;
  return *this;
}

LogLine log_debug(const char* subsystem, std::string message) {
  return {LogLevel::Debug, subsystem, std::move(message)};
}

LogLine log_info(const char* subsystem, std::string message) {
  return {LogLevel::Info, subsystem, std::move(message)};
}

LogLine log_warn(const char* subsystem, std::string message) {
  return {LogLevel::Warn, subsystem, std::move(message)};
}

LogLine log_error(const char* subsystem, std::string message) {
  return {LogLevel::Error, subsystem, std::move(message)};
}

}  // namespace rdo::obs
