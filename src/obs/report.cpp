#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "nn/parallel.h"
#include "obs/env.h"
#include "obs/envvar.h"
#include "obs/log.h"

namespace rdo::obs {

BenchReport::BenchReport(std::string name, std::uint64_t seed)
    : name_(std::move(name)), seed_(seed) {}

void BenchReport::add_failure(const std::string& where,
                              const std::string& what) {
  Json f = Json::object();
  f["where"] = where;
  f["what"] = what;
  failures_.push_back(std::move(f));
}

Json BenchReport::document() const {
  Json doc = Json::object();
  doc["schema_version"] = kBenchSchemaVersion;
  doc["name"] = name_;
  doc["env"] = capture_env(seed_);

  Json timing = Json::object();
  timing["total_seconds"] = total_.seconds();
  timing["phases"] = rec_.phases_json();
  doc["timing"] = std::move(timing);

  const rdo::nn::PoolStats ps = rdo::nn::pool_stats();
  Json pool = Json::object();
  pool["threads"] = rdo::nn::thread_count();
  pool["parallel_loops"] = ps.parallel_loops;
  pool["inline_loops"] = ps.inline_loops;
  pool["chunks_executed"] = ps.chunks_executed;
  pool["chunks_stolen"] = ps.chunks_stolen;
  pool["steal_ratio"] = ps.chunks_executed > 0
                            ? static_cast<double>(ps.chunks_stolen) /
                                  static_cast<double>(ps.chunks_executed)
                            : 0.0;
  doc["pool"] = std::move(pool);

  doc["histograms"] = rec_.histograms_json();
  doc["counters"] = rec_.counters_json();
  doc["gauges"] = rec_.gauges_json();
  doc["results"] = results_;
  doc["failures"] = failures_;
  return doc;
}

std::string BenchReport::deterministic_dump() const {
  Json det = Json::object();
  det["counters"] = rec_.counters_json();
  det["gauges"] = rec_.gauges_json();
  det["results"] = results_;
  det["failures"] = failures_;
  return det.dump();
}

std::string BenchReport::write() const {
  std::string dir = ".";
  if (const char* d = rdo::obs::env_knob("RDO_BENCH_DIR")) {
    if (d[0] != '\0') {
      dir = d;
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        // Surface the real failure here: swallowing it used to turn a
        // bogus RDO_BENCH_DIR into a confusing downstream open error.
        throw std::runtime_error("BenchReport::write: cannot create "
                                 "RDO_BENCH_DIR \"" + dir + "\": " +
                                 ec.message());
      }
    }
  }
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  write_to(path);
  return path;
}

void BenchReport::write_to(const std::string& path) const {
  write_json_file(document(), path);
}

int BenchReport::exit_code() const {
  if (!any_failure()) return 0;
  log_error("bench", "units of work failed; see the \"failures\" section")
      .with("failed", static_cast<std::int64_t>(failure_count()))
      .with("report", "BENCH_" + name_ + ".json");
  return 1;
}

namespace {

bool check(bool cond, const std::string& what, std::string* err) {
  if (cond) return true;
  if (err != nullptr) *err = what;
  return false;
}

const Json* require_member(const Json& doc, const char* key,
                           Json::Type type, std::string* err) {
  const Json* v = doc.find(key);
  if (v == nullptr) {
    if (err != nullptr) *err = std::string("missing member \"") + key + '"';
    return nullptr;
  }
  const bool ok =
      v->type() == type ||
      (type == Json::Type::Double && v->type() == Json::Type::Int);
  if (!ok) {
    if (err != nullptr) *err = std::string("member \"") + key + "\" has wrong type";
    return nullptr;
  }
  return v;
}

}  // namespace

bool validate_bench_document(const Json& doc, std::string* err) {
  if (!check(doc.is_object(), "document is not an object", err)) return false;

  const Json* ver =
      require_member(doc, "schema_version", Json::Type::Int, err);
  if (ver == nullptr) return false;
  const std::int64_t version = ver->as_int();
  if (!check(version == 1 || version == kBenchSchemaVersion,
             "unsupported schema_version " + std::to_string(version),
             err)) {
    return false;
  }
  const Json* name = require_member(doc, "name", Json::Type::String, err);
  if (name == nullptr) return false;
  if (!check(!name->as_string().empty(), "empty name", err)) return false;

  const Json* env = require_member(doc, "env", Json::Type::Object, err);
  if (env == nullptr) return false;
  for (const char* key : {"threads", "seed"}) {
    if (require_member(*env, key, Json::Type::Int, err) == nullptr) {
      return false;
    }
  }
  for (const char* key : {"build_type", "git_sha", "compiler"}) {
    if (require_member(*env, key, Json::Type::String, err) == nullptr) {
      return false;
    }
  }

  const Json* timing = require_member(doc, "timing", Json::Type::Object, err);
  if (timing == nullptr) return false;
  if (require_member(*timing, "total_seconds", Json::Type::Double, err) ==
      nullptr) {
    return false;
  }
  const Json* phases =
      require_member(*timing, "phases", Json::Type::Array, err);
  if (phases == nullptr) return false;
  for (std::size_t i = 0; i < phases->size(); ++i) {
    const Json& p = phases->at(i);
    if (!check(p.is_object(), "phase entry is not an object", err)) {
      return false;
    }
    if (require_member(p, "name", Json::Type::String, err) == nullptr ||
        require_member(p, "seconds", Json::Type::Double, err) == nullptr) {
      return false;
    }
  }

  const Json* pool = require_member(doc, "pool", Json::Type::Object, err);
  if (pool == nullptr) return false;
  for (const char* key : {"threads", "parallel_loops", "inline_loops",
                          "chunks_executed", "chunks_stolen"}) {
    if (require_member(*pool, key, Json::Type::Int, err) == nullptr) {
      return false;
    }
  }

  if (version >= 2) {
    const Json* hists =
        require_member(doc, "histograms", Json::Type::Object, err);
    if (hists == nullptr) return false;
    for (const auto& [key, h] : hists->members()) {
      if (!check(h.is_object(),
                 "histogram \"" + key + "\" is not an object", err)) {
        return false;
      }
      if (require_member(h, "count", Json::Type::Int, err) == nullptr) {
        return false;
      }
      for (const char* field : {"min_seconds", "max_seconds", "p50_seconds",
                                "p95_seconds", "p99_seconds"}) {
        if (require_member(h, field, Json::Type::Double, err) == nullptr) {
          return false;
        }
      }
      const Json* buckets =
          require_member(h, "bucket_counts", Json::Type::Array, err);
      if (buckets == nullptr) return false;
      for (std::size_t i = 0; i < buckets->size(); ++i) {
        if (!check(buckets->at(i).is_int(),
                   "histogram \"" + key + "\" bucket is not an int", err)) {
          return false;
        }
      }
    }
  }

  const Json* counters =
      require_member(doc, "counters", Json::Type::Object, err);
  if (counters == nullptr) return false;
  for (const auto& [key, value] : counters->members()) {
    if (!check(value.is_int(), "counter \"" + key + "\" is not an int",
               err)) {
      return false;
    }
  }
  const Json* gauges = require_member(doc, "gauges", Json::Type::Object, err);
  if (gauges == nullptr) return false;
  for (const auto& [key, value] : gauges->members()) {
    if (!check(value.is_number(), "gauge \"" + key + "\" is not a number",
               err)) {
      return false;
    }
  }

  if (require_member(doc, "results", Json::Type::Object, err) == nullptr) {
    return false;
  }
  const Json* failures =
      require_member(doc, "failures", Json::Type::Array, err);
  if (failures == nullptr) return false;
  for (std::size_t i = 0; i < failures->size(); ++i) {
    const Json& f = failures->at(i);
    if (!check(f.is_object(), "failure entry is not an object", err)) {
      return false;
    }
    if (require_member(f, "where", Json::Type::String, err) == nullptr ||
        require_member(f, "what", Json::Type::String, err) == nullptr) {
      return false;
    }
  }
  return true;
}

}  // namespace rdo::obs
