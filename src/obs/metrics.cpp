#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

namespace rdo::obs {

namespace metrics_internal {

int thread_shard() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kMetricShards));
  return shard;
}

}  // namespace metrics_internal

int latency_bucket_index(double seconds) {
  const double us = seconds * 1e6;
  if (!(us >= 1.0)) return 0;  // sub-microsecond, NaN, negative
  int exp = 0;
  std::frexp(us, &exp);  // us = m * 2^exp, m in [0.5, 1)
  return std::min(exp - 1, kLatencyBuckets - 1);
}

double latency_bucket_midpoint_seconds(int i) {
  return std::exp2(i + 0.5) * 1e-6;
}

double latency_bucket_upper_seconds(int i) {
  return std::exp2(i + 1) * 1e-6;
}

double latency_histogram_quantile(
    const std::array<std::int64_t, kLatencyBuckets>& buckets,
    std::int64_t count, double q, double min_s, double max_s) {
  const auto rank =
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count)));
  std::int64_t seen = 0;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return std::clamp(latency_bucket_midpoint_seconds(i), min_s, max_s);
    }
  }
  return max_s;
}

namespace {

/// Relaxed CAS loop folding one sample into a running min or max.
template <typename Cmp>
void update_extreme(std::atomic<double>& slot, double sample, Cmp better) {
  double cur = slot.load(std::memory_order_relaxed);
  while (better(sample, cur) &&
         !slot.compare_exchange_weak(cur, sample,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(double seconds) noexcept {
  Shard& s = shards_[metrics_internal::thread_shard()];
  s.buckets[static_cast<std::size_t>(latency_bucket_index(seconds))]
      .fetch_add(1, std::memory_order_relaxed);
  const double ns = seconds * 1e9;
  if (std::isfinite(ns)) {
    // Clamp before the cast: a single absurd sample must not be UB.
    const double clamped =
        std::clamp(ns, -9.0e18, 9.0e18);
    s.sum_ns.fetch_add(static_cast<std::int64_t>(clamped),
                       std::memory_order_relaxed);
  }
  update_extreme(min_seconds_, seconds,
                 [](double a, double b) { return a < b; });
  update_extreme(max_seconds_, seconds,
                 [](double a, double b) { return a > b; });
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot out;
  std::int64_t sum_ns = 0;
  for (const Shard& s : shards_) {
    for (int i = 0; i < kLatencyBuckets; ++i) {
      const std::int64_t c = s.buckets[static_cast<std::size_t>(i)].load(
          std::memory_order_relaxed);
      out.buckets[static_cast<std::size_t>(i)] += c;
      out.count += c;
    }
    sum_ns += s.sum_ns.load(std::memory_order_relaxed);
  }
  out.sum_seconds = static_cast<double>(sum_ns) / 1e9;
  if (out.count > 0) {
    out.min_seconds = min_seconds_.load(std::memory_order_relaxed);
    out.max_seconds = max_seconds_.load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

/// Find-or-create in one of the three instrument maps, rejecting a name
/// already claimed by a different kind (one name, one instrument).
template <typename T, typename MapA, typename MapB>
T& resolve(std::mutex& mu, std::map<std::string, std::unique_ptr<T>>& own,
           const MapA& other1, const MapB& other2, const std::string& name,
           const char* kind) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = own.find(name);
  if (it == own.end()) {
    if (other1.count(name) != 0 || other2.count(name) != 0) {
      throw std::logic_error("MetricsRegistry: \"" + name +
                             "\" already registered as a different "
                             "instrument kind than " + kind);
    }
    it = own.emplace(name, std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  return resolve(mu_, counters_, gauges_, histograms_, name, "counter");
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return resolve(mu_, gauges_, counters_, histograms_, name, "gauge");
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return resolve(mu_, histograms_, counters_, gauges_, name, "histogram");
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;
}

Json histogram_snapshot_json(const HistogramSnapshot& h) {
  Json e = Json::object();
  e["count"] = h.count;
  e["sum_seconds"] = h.sum_seconds;
  e["min_seconds"] = h.min_seconds;
  e["max_seconds"] = h.max_seconds;
  e["p50_seconds"] = latency_histogram_quantile(h.buckets, h.count, 0.50,
                                                h.min_seconds, h.max_seconds);
  e["p95_seconds"] = latency_histogram_quantile(h.buckets, h.count, 0.95,
                                                h.min_seconds, h.max_seconds);
  e["p99_seconds"] = latency_histogram_quantile(h.buckets, h.count, 0.99,
                                                h.min_seconds, h.max_seconds);
  Json buckets = Json::array();
  for (const std::int64_t c : h.buckets) buckets.push_back(c);
  e["bucket_counts"] = std::move(buckets);
  return e;
}

Json MetricsRegistry::snapshot_json() const {
  const MetricsSnapshot snap = snapshot();
  Json doc = Json::object();
  Json counters = Json::object();
  for (const auto& [name, v] : snap.counters) counters[name] = v;
  doc["counters"] = std::move(counters);
  Json gauges = Json::object();
  for (const auto& [name, v] : snap.gauges) gauges[name] = v;
  doc["gauges"] = std::move(gauges);
  Json hists = Json::object();
  for (const auto& [name, h] : snap.histograms) {
    hists[name] = histogram_snapshot_json(h);
  }
  doc["histograms"] = std::move(hists);
  return doc;
}

namespace {

/// Prometheus metric name: "rdo_" namespace + the registry name with
/// every character outside [A-Za-z0-9_] replaced by '_'.
std::string prom_name(const std::string& name) {
  std::string out = "rdo_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + ' ' + std::to_string(v) + '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + ' ' + prom_double(v) + '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    std::int64_t cumulative = 0;
    for (int i = 0; i < kLatencyBuckets; ++i) {
      cumulative += h.buckets[static_cast<std::size_t>(i)];
      out += p + "_bucket{le=\"" +
             prom_double(latency_bucket_upper_seconds(i)) + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    out += p + "_sum " + prom_double(h.sum_seconds) + '\n';
    out += p + "_count " + std::to_string(h.count) + '\n';
  }
  return out;
}

MetricsRegistry& global_metrics() {
  // Leaked like the tracer/logger state: instruments may be touched
  // from atexit handlers and pool workers exiting at static-destruction
  // time.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

void absorb_metrics(Recorder& rec, const MetricsRegistry& registry) {
  const MetricsSnapshot snap = registry.snapshot();
  for (const auto& [name, v] : snap.counters) rec.incr(name, v);
  for (const auto& [name, v] : snap.gauges) rec.set_gauge(name, v);
  for (const auto& [name, h] : snap.histograms) {
    rec.merge_histogram(name, h.count, h.min_seconds, h.max_seconds,
                        h.buckets);
  }
}

namespace {

bool mcheck(bool cond, const std::string& what, std::string* err) {
  if (cond) return true;
  if (err != nullptr) *err = what;
  return false;
}

}  // namespace

bool validate_metrics_json(const Json& doc, std::string* err) {
  if (!mcheck(doc.is_object(), "metrics document is not an object", err)) {
    return false;
  }
  const Json* counters = doc.find("counters");
  if (!mcheck(counters != nullptr && counters->is_object(),
              "missing counters object", err)) {
    return false;
  }
  for (const auto& [name, v] : counters->members()) {
    if (!mcheck(v.is_int(), "counter \"" + name + "\" is not an int", err)) {
      return false;
    }
  }
  const Json* gauges = doc.find("gauges");
  if (!mcheck(gauges != nullptr && gauges->is_object(),
              "missing gauges object", err)) {
    return false;
  }
  for (const auto& [name, v] : gauges->members()) {
    if (!mcheck(v.is_number(), "gauge \"" + name + "\" is not a number",
                err)) {
      return false;
    }
  }
  const Json* hists = doc.find("histograms");
  if (!mcheck(hists != nullptr && hists->is_object(),
              "missing histograms object", err)) {
    return false;
  }
  for (const auto& [name, h] : hists->members()) {
    const std::string at = "histogram \"" + name + "\" ";
    if (!mcheck(h.is_object(), at + "is not an object", err)) return false;
    const Json* count = h.find("count");
    if (!mcheck(count != nullptr && count->is_int(),
                at + "missing int count", err)) {
      return false;
    }
    for (const char* field : {"sum_seconds", "min_seconds", "max_seconds",
                              "p50_seconds", "p95_seconds", "p99_seconds"}) {
      const Json* v = h.find(field);
      if (!mcheck(v != nullptr && v->is_number(),
                  at + "missing numeric " + field, err)) {
        return false;
      }
    }
    const Json* buckets = h.find("bucket_counts");
    if (!mcheck(buckets != nullptr && buckets->is_array() &&
                    buckets->size() == static_cast<std::size_t>(
                                           kLatencyBuckets),
                at + "bucket_counts must have kLatencyBuckets entries",
                err)) {
      return false;
    }
    for (std::size_t i = 0; i < buckets->size(); ++i) {
      if (!mcheck(buckets->at(i).is_int(),
                  at + "bucket is not an int", err)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rdo::obs
