#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rdo::obs {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::logic_error(std::string("Json: expected ") + want +
                         ", value holds type #" +
                         std::to_string(static_cast<int>(got)));
}

/// Shortest decimal form that round-trips the double: try increasing
/// precision until strtod recovers the exact bits. Deterministic for a
/// given value, and keeps common values ("0.5") readable.
std::string format_double(double v) {
  // JSON has no NaN/Inf; both map to null so strict parsers (and our
  // own) accept the output.
  if (std::isnan(v) || std::isinf(v)) return "null";
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  // Ensure the token reads back as a double, not an integer, so that
  // parse(dump(x)) preserves the Int/Double distinction.
  std::string s(buf);
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Recursive-descent parser over the whole in-memory document.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;

  // Far deeper than any BENCH/trace document, but bounded: without it a
  // hostile "[[[[..." input recurses once per byte and overflows the
  // stack (found by fuzz/fuzz_json.cpp).
  static constexpr int kMaxDepth = 192;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    if (depth_ >= kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++depth_;
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return obj;
    }
  }

  Json parse_array() {
    ++depth_;
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u00XX for control bytes; decode the
          // BMP code point as UTF-8 for general inputs.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    const bool integral =
        tok.find_first_of(".eE") == std::string::npos;
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end == tok.c_str() + tok.size() && errno != ERANGE) {
        return Json(static_cast<std::int64_t>(v));
      }
    }
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number");
    return Json(d);
  }
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::Int) type_error("int", type_);
  return int_;
}

double Json::as_double() const {
  if (type_ == Type::Int) return static_cast<double>(int_);
  if (type_ != Type::Double) type_error("number", type_);
  return double_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return str_;
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return arr_.size();
  if (type_ == Type::Object) return obj_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::Array) type_error("array", type_);
  if (i >= arr_.size()) throw std::out_of_range("Json::at: index");
  return arr_[i];
}

Json& Json::push_back(Json v) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) type_error("array", type_);
  arr_.push_back(std::move(v));
  return arr_.back();
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) type_error("object", type_);
  for (auto& kv : obj_) {
    if (kv.first == key) return kv.second;
  }
  obj_.emplace_back(key, Json());
  return obj_.back().second;
}

const Json* Json::find(const std::string& key) const& {
  if (type_ != Type::Object) return nullptr;
  for (const auto& kv : obj_) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::Object) type_error("object", type_);
  return obj_;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: out += std::to_string(int_); break;
    case Type::Double: out += format_double(double_); break;
    case Type::String: escape_string(str_, out); break;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        escape_string(obj_[i].first, out);
        out += pretty ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

void write_json_file(const Json& doc, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("write_json_file: cannot open " + path);
  f << doc.dump(2) << '\n';
  if (!f) throw std::runtime_error("write_json_file: write failed: " + path);
}

Json read_json_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_json_file: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return Json::parse(ss.str());
}

}  // namespace rdo::obs
