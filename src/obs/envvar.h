// The one blessed std::getenv choke point.
//
// Every environment knob in the codebase (RDO_THREADS, RDO_TRACE,
// RDO_PLAN_CACHE_DIR, ...) is read through env_knob() so the whole knob
// surface is greppable in one place and the `naked-getenv` lint rule
// (src/lint/rules.cpp) can ban direct getenv everywhere else. Lives in
// rdo_obs_base so even the lowest layers (the nn thread pool, tracing,
// logging) can use it without dependency cycles.
#pragma once

namespace rdo::obs {

/// std::getenv, verbatim: nullptr when the variable is unset. The
/// returned pointer has getenv's lifetime rules — copy it out before
/// anything can modify the environment.
[[nodiscard]] const char* env_knob(const char* name) noexcept;

}  // namespace rdo::obs
