// BENCH document diffing: the trajectory regression gate.
//
// Compares the *deterministic* sections of two BENCH_<name>.json files
// (counters, gauges, results, failures — the same set covered by
// BenchReport::deterministic_dump() and the cross-thread-count
// determinism test). Counters are exact by default; gauges and numeric
// results admit declared absolute/relative tolerances so a baseline
// recorded on one machine can gate runs on another (FP accumulation
// order may differ across compilers even though it is fixed for a
// given binary). Volatile sections (env, timing, pool, histograms) are
// summarized informationally and never fail the diff.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"

namespace rdo::obs {

struct DiffOptions {
  /// Absolute tolerance for gauge/result numeric leaves.
  double abs_tol = 0.0;
  /// Relative tolerance for gauge/result numeric leaves (fraction of
  /// max(|baseline|, |current|)). A leaf passes if EITHER tolerance
  /// accepts it.
  double rel_tol = 0.0;
  /// Relative tolerance for counters; 0 means counters must match
  /// exactly.
  double counter_rel_tol = 0.0;
};

struct DiffReport {
  /// Deterministic-section divergences beyond tolerance; nonempty
  /// means the gate fails.
  std::vector<std::string> regressions;
  /// Informational lines: volatile-section deltas, tolerated drift.
  std::vector<std::string> infos;

  [[nodiscard]] bool ok() const { return regressions.empty(); }
};

/// Diff two BENCH documents under `opt`. Both must be objects; missing
/// deterministic sections are themselves regressions.
DiffReport diff_bench_documents(const Json& baseline, const Json& current,
                                const DiffOptions& opt);

}  // namespace rdo::obs
