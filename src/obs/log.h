// Leveled, thread-safe structured logging for long-running processes.
//
// Diagnostics used to be ad-hoc `std::fprintf(stderr, ...)` calls with
// no level, no timestamp and no machine-readable shape — useless for a
// campaign-length sweep or a served deployment where the interesting
// warning scrolled past hours ago. Every log line now carries:
//
//   * a level (debug < info < warn < error), filtered by RDO_LOG_LEVEL
//   * a subsystem tag ("deploy", "serve", "trace", ...)
//   * a monotonic timestamp (seconds since the logger epoch — wall-clock
//     time never feeds any computation, matching the repo-wide
//     determinism contract; correlate with trace files via RDO_TRACE)
//   * optional structured key=value fields (request ids, paths, counts)
//
// Two output formats, selected by RDO_LOG_FORMAT:
//
//   text (default)   [   12.345] WARN  deploy: corrupt LUT cache entry
//                    path=/cache/rlut_0a.bin error="truncated payload"
//   json             {"ts": 12.345, "level": "warn", "subsystem":
//                    "deploy", "message": "...", "path": "...", ...}
//
// JSON lines reuse the deterministic obs::Json writer, so a log stream
// is parseable line-by-line by the same tooling that reads BENCH files.
//
// Usage — the builder emits on destruction, at the end of the full
// expression:
//
//   log_warn("deploy", "corrupt LUT cache entry")
//       .with("path", path).with("error", e.what());
//
// Cost model: when the level is filtered out, constructing the line is
// one relaxed atomic load and every with() is a no-op. Emission itself
// formats off-lock and takes one mutex around the sink write, so
// concurrent lines never interleave. Lives in rdo_obs_base (json only)
// so the tracer and every layer above it can log without cycles.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/json.h"

namespace rdo::obs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Canonical lowercase name ("debug", ..., "off").
const char* to_string(LogLevel level);
/// Inverse of to_string (case-insensitive); nullopt-style: returns
/// `fallback` for unknown names. RDO_LOG_LEVEL is parsed through this.
LogLevel log_level_from_string(const std::string& name, LogLevel fallback);

enum class LogFormat { Text, JsonLines };

namespace log_internal {
/// Resolved minimum level + 1, or 0 while unresolved (first use reads
/// RDO_LOG_LEVEL). Kept as int so the enabled check is one relaxed load.
extern std::atomic<int> g_level;
int resolve_level_from_env();
}  // namespace log_internal

/// True when `level` passes the active filter. After the first call
/// (which resolves RDO_LOG_LEVEL, default info) this is one relaxed
/// atomic load.
inline bool log_enabled(LogLevel level) {
  int min = log_internal::g_level.load(std::memory_order_relaxed);
  if (min == 0) min = log_internal::resolve_level_from_env();
  return static_cast<int>(level) >= min - 1 && level != LogLevel::Off;
}

/// Programmatic overrides (tests, tools): take precedence over the
/// RDO_LOG_LEVEL / RDO_LOG_FORMAT environment variables.
void log_set_level(LogLevel level);
void log_set_format(LogFormat format);
/// Redirect emission (default stderr). Pass nullptr to restore stderr.
/// The caller keeps ownership of the stream.
void log_set_sink(std::FILE* sink);

/// Seconds since the logger epoch (first log call or first query);
/// monotonic, the same clock log lines stamp as `ts`.
double log_uptime_seconds();

/// One structured log line. Built by log_debug()/log_info()/log_warn()/
/// log_error(); emits on destruction unless the level is filtered.
class LogLine {
 public:
  LogLine(LogLevel level, const char* subsystem, std::string message);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  LogLine(LogLine&& other) noexcept;
  LogLine& operator=(LogLine&&) = delete;

  /// Attach one key/value field (insertion order preserved; no-op when
  /// the line is filtered out).
  LogLine& with(const char* key, const std::string& v);
  LogLine& with(const char* key, const char* v);
  LogLine& with(const char* key, std::int64_t v);
  LogLine& with(const char* key, int v) {
    return with(key, static_cast<std::int64_t>(v));
  }
  LogLine& with(const char* key, double v);

  [[nodiscard]] bool live() const { return live_; }

 private:
  bool live_ = false;
  LogLevel level_ = LogLevel::Info;
  const char* subsystem_ = "";
  std::string message_;
  Json fields_;  // Null until the first with() call
};

LogLine log_debug(const char* subsystem, std::string message);
LogLine log_info(const char* subsystem, std::string message);
LogLine log_warn(const char* subsystem, std::string message);
LogLine log_error(const char* subsystem, std::string message);

/// Render one line exactly as the sink would receive it (no trailing
/// newline) — the formatting contract, exposed so tests pin it without
/// scraping a stream.
std::string format_log_line(LogFormat format, double ts, LogLevel level,
                            const char* subsystem,
                            const std::string& message, const Json& fields);

}  // namespace rdo::obs
