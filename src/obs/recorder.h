// Named phase timers, counters and gauges for one harness run.
//
// Split along the determinism boundary the BENCH_*.json schema encodes:
// phases are wall-clock measurements (volatile across machines and
// RDO_THREADS settings), counters and gauges are derived from the
// seeded computation and must be identical for any thread count.
// A Recorder is thread-safe so parallel Monte-Carlo tasks can report
// into one instance; merge order never affects the serialized output
// because entries accumulate under stable insertion-ordered names.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/stopwatch.h"

namespace rdo::obs {

/// Latency histograms use fixed log-scale buckets: bucket i counts
/// samples in [2^i, 2^(i+1)) microseconds, so 28 buckets span 1 us to
/// ~4.5 minutes. The fixed geometry keeps the serialized shape stable
/// regardless of the samples observed.
inline constexpr int kLatencyBuckets = 28;

class Recorder {
 public:
  /// Add wall-clock seconds to phase `name` (created on first use;
  /// phases keep first-use order in the serialized report).
  void add_phase(const std::string& name, double seconds);

  /// Increment counter `name` by `delta`.
  void incr(const std::string& name, std::int64_t delta = 1);

  /// Set gauge `name` (last write wins).
  void set_gauge(const std::string& name, double value);

  /// Record one latency sample (seconds) into histogram `name` (created
  /// on first use). Samples below 1 us land in bucket 0, samples beyond
  /// the top bucket in the last one; min/max track the raw values.
  void observe(const std::string& name, double seconds);

  /// Merge a pre-bucketed histogram (same fixed geometry) into
  /// histogram `name`: bucket counts add, min/max widen. Used by
  /// absorb_metrics (obs/metrics.h) to fold a live registry histogram
  /// into the report without resampling. A zero-count merge is a no-op.
  void merge_histogram(const std::string& name, std::int64_t count,
                       double min_seconds, double max_seconds,
                       const std::array<std::int64_t, kLatencyBuckets>&
                           bucket_counts);

  [[nodiscard]] double phase_seconds(const std::string& name) const;
  [[nodiscard]] std::int64_t counter(const std::string& name) const;

  /// `[{"name": ..., "seconds": ...}, ...]` — volatile timing section.
  [[nodiscard]] Json phases_json() const;
  /// `{name: count, ...}` — deterministic.
  [[nodiscard]] Json counters_json() const;
  /// `{name: value, ...}` — deterministic.
  [[nodiscard]] Json gauges_json() const;
  /// `{name: {count, min/max_seconds, p50/p95/p99_seconds,
  /// bucket_counts[kLatencyBuckets]}, ...}` — wall-clock derived, so it
  /// belongs to the volatile half of the schema. Quantiles are the
  /// geometric midpoint of the rank bucket, clamped to [min, max].
  [[nodiscard]] Json histograms_json() const;

 private:
  struct Histogram {
    std::int64_t count = 0;
    double min_seconds = 0.0;
    double max_seconds = 0.0;
    std::array<std::int64_t, kLatencyBuckets> buckets{};
  };

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, double>> phases_;
  std::vector<std::pair<std::string, std::int64_t>> counters_;
  std::vector<std::pair<std::string, double>> gauges_;
  std::vector<std::pair<std::string, Histogram>> histograms_;
};

/// RAII helper timing one phase of a Recorder.
class PhaseTimer {
 public:
  PhaseTimer(Recorder& rec, std::string name)
      : rec_(rec), name_(std::move(name)) {}
  ~PhaseTimer() { rec_.add_phase(name_, watch_.seconds()); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Recorder& rec_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace rdo::obs
