// Schema-versioned structured result documents (BENCH_*.json).
//
// Every harness produces one document:
//
//   {
//     "schema_version": 2,
//     "name":     "<harness>",
//     "env":      { ... }                      // volatile (env.h)
//     "timing":   { total_seconds, phases[] }  // volatile wall times
//     "pool":     { ... }                      // volatile thread-pool stats
//     "histograms": { name: {count, min/max/p50/p95/p99_seconds,
//                            bucket_counts[]}, ... }  // volatile latencies
//     "counters": { name: int, ... }           // deterministic
//     "gauges":   { name: number, ... }        // deterministic
//     "results":  { ... }                      // deterministic, per-harness
//     "failures": [ {where, what}, ... ]       // deterministic
//   }
//
// Determinism contract: for a fixed seed, the `counters`, `gauges`,
// `results` and `failures` sections are byte-identical for any
// RDO_THREADS setting (deterministic_dump() serializes exactly those
// sections; tests/test_obs.cpp asserts the guarantee end to end).
// `env`, `timing` and `pool` legitimately vary and are excluded.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "obs/recorder.h"

namespace rdo::obs {

/// Version of the document layout above. Bump on breaking changes and
/// record the migration in EXPERIMENTS.md.
/// v1 -> v2: added the "histograms" section (latency distributions).
inline constexpr std::int64_t kBenchSchemaVersion = 2;

class BenchReport {
 public:
  /// `name` keys the output file (BENCH_<name>.json); `seed` is recorded
  /// in the env block. Total wall time is measured from construction.
  BenchReport(std::string name, std::uint64_t seed);

  /// Phase timers / counters / gauges (thread-safe).
  Recorder& recorder() { return rec_; }

  /// Deterministic harness-specific payload (mutable root object).
  Json& results() { return results_; }

  /// Record a failed unit of work (grid point, scheme, ...). Failures
  /// are part of the deterministic payload and drive the exit code.
  void add_failure(const std::string& where, const std::string& what);
  [[nodiscard]] bool any_failure() const { return failures_.size() > 0; }
  [[nodiscard]] std::size_t failure_count() const { return failures_.size(); }

  /// Assemble the full document (schema above) at this instant.
  [[nodiscard]] Json document() const;

  /// Compact serialization of only the deterministic sections.
  [[nodiscard]] std::string deterministic_dump() const;

  /// Write document() to `BENCH_<name>.json` in the directory named by
  /// the RDO_BENCH_DIR environment variable (default: current
  /// directory). Returns the path written.
  std::string write() const;
  /// Write document() to an explicit path.
  void write_to(const std::string& path) const;

  /// Exit status for a harness: 0 when no failures were recorded, 1
  /// otherwise (also prints a one-line summary to stderr on failure).
  [[nodiscard]] int exit_code() const;

 private:
  std::string name_;
  std::uint64_t seed_;
  Stopwatch total_;
  Recorder rec_;
  Json results_ = Json::object();
  Json failures_ = Json::array();
};

/// Validate a parsed document against the schema above. Returns true on
/// success; otherwise false with a diagnostic in *err (when non-null).
bool validate_bench_document(const Json& doc, std::string* err);

}  // namespace rdo::obs
