#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/envvar.h"
#include "obs/log.h"

namespace rdo::obs {

namespace trace_internal {

std::atomic<int> g_state{0};

namespace {

struct Event {
  char ph = 'X';
  std::string name;
  const char* cat = "";
  int tid = 0;
  std::int64_t ts_ns = 0;   // relative to the trace epoch
  std::int64_t dur_ns = 0;  // 'X' only
  Json args;                // Null when absent
};

/// All mutable tracer state behind one mutex. Intentionally leaked so
/// pool workers exiting during static destruction can never touch a
/// destroyed tracer; the atexit flush handler runs before that.
struct State {
  std::mutex mu;
  std::string path;
  std::int64_t epoch_ns = 0;
  std::vector<Event> events;
  std::vector<std::pair<int, std::string>> threads;  // tid -> track name
  int next_anon = 0;  // 0 => "main", then tid 1000+k ("thread-k")
  bool atexit_registered = false;
};

State& state() {
  static State* s = new State();
  return *s;
}

thread_local int tls_tid = -1;  // unresolved until first use / binding

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Register (tid, name) unless that tid is already bound. Caller holds
/// s.mu.
void register_thread_locked(State& s, int tid, const std::string& name) {
  for (const auto& [t, n] : s.threads) {
    if (t == tid) return;
  }
  s.threads.emplace_back(tid, name);
}

/// Resolve the calling thread's track id, assigning one on first use.
/// Caller holds s.mu.
int resolve_tid_locked(State& s) {
  if (tls_tid >= 0) return tls_tid;
  const int k = s.next_anon++;
  tls_tid = k == 0 ? 0 : 1000 + k;
  register_thread_locked(s, tls_tid,
                         k == 0 ? "main" : "thread-" + std::to_string(k));
  return tls_tid;
}

void append_event(char ph, std::string name, const char* cat,
                  std::int64_t start_ns, std::int64_t dur_ns, Json args) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (g_state.load(std::memory_order_relaxed) != 2) return;  // stopped since
  Event ev;
  ev.ph = ph;
  ev.name = std::move(name);
  ev.cat = cat;
  ev.tid = resolve_tid_locked(s);
  ev.ts_ns = std::max<std::int64_t>(0, start_ns - s.epoch_ns);
  ev.dur_ns = dur_ns;
  ev.args = std::move(args);
  s.events.push_back(std::move(ev));
}

Json event_json(const Event& ev, int tid, const char* name_override) {
  Json e = Json::object();
  e["name"] = name_override != nullptr ? name_override : ev.name.c_str();
  if (ev.cat[0] != '\0') e["cat"] = ev.cat;
  e["ph"] = std::string(1, ev.ph);
  e["ts"] = static_cast<double>(ev.ts_ns) / 1000.0;  // microseconds
  if (ev.ph == 'X') e["dur"] = static_cast<double>(ev.dur_ns) / 1000.0;
  e["pid"] = 1;
  e["tid"] = tid;
  if (!ev.args.is_null()) e["args"] = ev.args;
  return e;
}

/// Assemble the trace document. Caller holds s.mu.
Json build_document_locked(State& s) {
  Json doc = Json::object();
  Json evs = Json::array();

  Json pmeta = Json::object();
  pmeta["name"] = "process_name";
  pmeta["ph"] = "M";
  pmeta["pid"] = 1;
  pmeta["tid"] = 0;
  pmeta["args"]["name"] = "rdo";
  evs.push_back(std::move(pmeta));

  std::vector<std::pair<int, std::string>> threads = s.threads;
  std::sort(threads.begin(), threads.end());
  for (const auto& [tid, name] : threads) {
    Json tmeta = Json::object();
    tmeta["name"] = "thread_name";
    tmeta["ph"] = "M";
    tmeta["pid"] = 1;
    tmeta["tid"] = tid;
    tmeta["args"]["name"] = name;
    evs.push_back(std::move(tmeta));
  }

  // Timestamp order with insertion order as the tie-breaker: the only
  // nondeterminism left in the serialized form is the timestamps.
  std::vector<const Event*> ordered;
  ordered.reserve(s.events.size());
  for (const Event& ev : s.events) ordered.push_back(&ev);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     return a->ts_ns < b->ts_ns;
                   });
  for (const Event* ev : ordered) {
    evs.push_back(event_json(*ev, ev->tid, nullptr));
  }
  doc["traceEvents"] = std::move(evs);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

void flush_at_exit() { trace_stop(); }

void register_atexit_locked(State& s) {
  if (!s.atexit_registered) {
    std::atexit(flush_at_exit);
    s.atexit_registered = true;
  }
}

}  // namespace

bool resolve_from_env() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const int cur = g_state.load(std::memory_order_relaxed);
  if (cur != 0) return cur == 2;
  const char* p = rdo::obs::env_knob("RDO_TRACE");
  if (p != nullptr && p[0] != '\0') {
    s.path = p;
    s.epoch_ns = wall_ns();
    register_atexit_locked(s);
    g_state.store(2, std::memory_order_relaxed);
    return true;
  }
  g_state.store(1, std::memory_order_relaxed);
  return false;
}

}  // namespace trace_internal

using trace_internal::g_state;

void trace_start(const std::string& path) {
  trace_internal::State& s = trace_internal::state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.path = path;
  s.epoch_ns = [] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }();
  s.events.clear();
  trace_internal::register_atexit_locked(s);
  g_state.store(2, std::memory_order_relaxed);
}

namespace {

/// Caller holds s.mu. Serialize the current buffer to s.path.
std::string write_document_locked(trace_internal::State& s) {
  const Json doc = trace_internal::build_document_locked(s);
  try {
    write_json_file(doc, s.path);
  } catch (const std::exception& e) {
    log_error("trace", "cannot write trace file")
        .with("path", s.path)
        .with("error", e.what());
    return "";
  }
  return s.path;
}

}  // namespace

std::string trace_stop() {
  trace_internal::State& s = trace_internal::state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (g_state.load(std::memory_order_relaxed) != 2) return "";
  g_state.store(1, std::memory_order_relaxed);
  std::string written = write_document_locked(s);
  s.events.clear();
  return written;
}

std::string trace_flush() {
  trace_internal::State& s = trace_internal::state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (g_state.load(std::memory_order_relaxed) != 2) return "";
  // Keep the buffer and stay in the recording state: a later flush or
  // the final trace_stop() rewrites the file with a superset.
  return write_document_locked(s);
}

void trace_bind_thread(int tid, const std::string& name) {
  trace_internal::State& s = trace_internal::state();
  std::lock_guard<std::mutex> lock(s.mu);
  trace_internal::tls_tid = tid;
  trace_internal::register_thread_locked(s, tid, name);
}

void trace_counter(const char* name, std::int64_t value) {
  if (!trace_enabled()) return;
  Json args = Json::object();
  args["value"] = value;
  trace_internal::append_event('C', name, "counter",
                               trace_internal::wall_ns(), 0,
                               std::move(args));
}

void TraceSpan::begin(const char* name, const char* cat) {
  live_ = true;
  name_ = name;
  cat_ = cat;
  start_ns_ = trace_internal::wall_ns();
}

void TraceSpan::end() {
  const std::int64_t dur = trace_internal::wall_ns() - start_ns_;
  trace_internal::append_event('X', std::move(name_), cat_, start_ns_, dur,
                               std::move(args_));
  live_ = false;
}

void TraceSpan::arg(const char* key, std::int64_t v) {
  if (live_) args_[key] = v;
}

void TraceSpan::arg(const char* key, double v) {
  if (live_) args_[key] = v;
}

void TraceSpan::arg(const char* key, const std::string& v) {
  if (live_) args_[key] = v;
}

namespace {

bool trace_check(bool cond, const std::string& what, std::string* err) {
  if (cond) return true;
  if (err != nullptr) *err = what;
  return false;
}

}  // namespace

bool validate_trace_document(const Json& doc, std::string* err) {
  if (!trace_check(doc.is_object(), "document is not an object", err)) {
    return false;
  }
  const Json* evs = doc.find("traceEvents");
  if (!trace_check(evs != nullptr && evs->is_array(),
                   "missing traceEvents array", err)) {
    return false;
  }
  for (std::size_t i = 0; i < evs->size(); ++i) {
    const Json& e = evs->at(i);
    const std::string at = " in event #" + std::to_string(i);
    if (!trace_check(e.is_object(), "event is not an object" + at, err)) {
      return false;
    }
    const Json* name = e.find("name");
    const Json* ph = e.find("ph");
    const Json* pid = e.find("pid");
    const Json* tid = e.find("tid");
    if (!trace_check(name != nullptr && name->is_string(),
                     "missing string name" + at, err) ||
        !trace_check(ph != nullptr && ph->is_string() &&
                         ph->as_string().size() == 1,
                     "missing one-char ph" + at, err) ||
        !trace_check(pid != nullptr && pid->is_int(),
                     "missing int pid" + at, err) ||
        !trace_check(tid != nullptr && tid->is_int(),
                     "missing int tid" + at, err)) {
      return false;
    }
    const char kind = ph->as_string()[0];
    const Json* ts = e.find("ts");
    const Json* args = e.find("args");
    if (kind == 'X') {
      const Json* dur = e.find("dur");
      if (!trace_check(ts != nullptr && ts->is_number(),
                       "X event without numeric ts" + at, err) ||
          !trace_check(dur != nullptr && dur->is_number() &&
                           dur->as_double() >= 0.0,
                       "X event without nonnegative dur" + at, err)) {
        return false;
      }
    } else if (kind == 'C') {
      if (!trace_check(ts != nullptr && ts->is_number(),
                       "C event without numeric ts" + at, err) ||
          !trace_check(args != nullptr && args->is_object(),
                       "C event without args" + at, err)) {
        return false;
      }
    } else if (kind == 'M') {
      if (!trace_check(args != nullptr && args->is_object(),
                       "M event without args" + at, err)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rdo::obs
