// Execution tracing: Chrome trace-event / Perfetto-compatible spans.
//
// The tracer records complete spans ("ph":"X"), counter samples
// ("ph":"C") and process/thread name metadata ("ph":"M") into an
// in-memory buffer and writes one `traceEvents` JSON document (open it
// at ui.perfetto.dev or chrome://tracing). Output reuses the obs::Json
// writer, so the serialized form is deterministic modulo timestamps:
// events are ordered by timestamp with insertion order as the
// tie-breaker, and metadata tracks are sorted by thread id.
//
// Opt-in and cost model: tracing is off unless the RDO_TRACE=<path>
// environment variable is set (resolved once) or trace_start() is
// called. When off, every instrumentation site costs a single relaxed
// atomic load — no clock read, no lock, no allocation — so the
// bit-identical determinism guarantee of the pipeline (PR 1) and the
// BENCH determinism contract (obs/report.h) are unaffected either way:
// clocks never feed back into any computation.
//
// This header lives in rdo_obs_base (json + trace only, no other
// dependencies) so the nn thread pool can emit per-chunk spans without
// creating a cycle against rdo_obs, which links rdo_nn for pool stats.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/json.h"

namespace rdo::obs {

namespace trace_internal {
/// 0 = unresolved (first trace_enabled() call reads RDO_TRACE),
/// 1 = disabled, 2 = recording.
extern std::atomic<int> g_state;
bool resolve_from_env();
}  // namespace trace_internal

/// True while span/counter recording is active. After the first call
/// (which resolves RDO_TRACE) this is one relaxed atomic load.
inline bool trace_enabled() {
  const int s = trace_internal::g_state.load(std::memory_order_relaxed);
  if (s == 0) return trace_internal::resolve_from_env();
  return s == 2;
}

/// Programmatic start (tests, harnesses): drop any buffered events,
/// reset the trace epoch and begin recording; trace_stop() or process
/// exit writes the document to `path`. Overrides RDO_TRACE.
void trace_start(const std::string& path);

/// Write buffered events to the configured path and stop recording.
/// Returns the path written, or an empty string when tracing was not
/// active (or the write failed — diagnosed via the logger). Idempotent.
std::string trace_stop();

/// Write buffered events to the configured path *without* stopping:
/// recording continues and buffered events are kept, so a later flush
/// or stop rewrites the file with a superset. Returns the path written,
/// or an empty string when tracing is not active or the write failed.
/// This is the signal-shutdown hook — before trace_flush(), a process
/// killed between atexit registration and exit lost its whole trace.
std::string trace_flush();

/// Bind the calling thread to a stable track: `tid` becomes its thread
/// id in the trace and `name` its thread_name metadata. Pool workers
/// bind tid = worker index + 1 at thread start; unbound threads are
/// assigned tid 0 ("main") first, then 1000+k. Bindings are kept even
/// while tracing is off so long-lived workers stay labelled across
/// trace_start()/trace_stop() cycles.
void trace_bind_thread(int tid, const std::string& name);

/// Emit one counter sample (a "ph":"C" event; Perfetto renders a
/// counter track named `name`). No-op when tracing is off.
void trace_counter(const char* name, std::int64_t value);

/// RAII complete span: measures construction -> destruction and records
/// one "ph":"X" event on the calling thread's track. When tracing is
/// off the constructor is a single relaxed atomic check and every other
/// member is a no-op.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "rdo") {
    if (trace_enabled()) begin(name, cat);
  }
  ~TraceSpan() {
    if (live_) end();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a key/value to the span's `args` block (no-op when the
  /// span is inactive — guard expensive arg computation on active()).
  void arg(const char* key, std::int64_t v);
  void arg(const char* key, int v) { arg(key, static_cast<std::int64_t>(v)); }
  void arg(const char* key, double v);
  void arg(const char* key, const std::string& v);

  [[nodiscard]] bool active() const { return live_; }

 private:
  void begin(const char* name, const char* cat);
  void end();

  bool live_ = false;
  std::int64_t start_ns_ = 0;
  std::string name_;
  const char* cat_ = "";
  Json args_;  // Null until the first arg() call
};

/// Structural validation of a trace document (the writer's own output
/// format): a `traceEvents` array whose entries carry name/ph/pid/tid,
/// with ts+dur on "X" events, ts+args on "C" events and args on "M"
/// events. Returns true on success; diagnostic in *err otherwise.
bool validate_trace_document(const Json& doc, std::string* err);

}  // namespace rdo::obs
