#include "obs/envvar.h"

#include <cstdlib>

namespace rdo::obs {

const char* env_knob(const char* name) noexcept {
  // The single allowed direct read; everything else goes through here
  // (enforced by the naked-getenv rule, which blesses exactly this file).
  return std::getenv(name);
}

}  // namespace rdo::obs
