#include "obs/recorder.h"

#include <algorithm>
#include <cmath>

namespace rdo::obs {

namespace {

/// Bucket index for a latency: floor(log2(microseconds)), clamped to
/// the fixed range. frexp is exact, so the mapping is deterministic
/// (no transcendental rounding at bucket boundaries).
int bucket_index(double seconds) {
  const double us = seconds * 1e6;
  if (!(us >= 1.0)) return 0;  // sub-microsecond, NaN, negative
  int exp = 0;
  std::frexp(us, &exp);  // us = m * 2^exp, m in [0.5, 1)
  return std::min(exp - 1, kLatencyBuckets - 1);
}

/// Seconds at the geometric midpoint of bucket i: sqrt(2^i * 2^(i+1)) us.
double bucket_midpoint_seconds(int i) {
  return std::exp2(i + 0.5) * 1e-6;
}

template <typename T>
T* find_entry(std::vector<std::pair<std::string, T>>& v,
              const std::string& name) {
  for (auto& kv : v) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

template <typename T>
const T* find_entry(const std::vector<std::pair<std::string, T>>& v,
                    const std::string& name) {
  for (const auto& kv : v) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

}  // namespace

void Recorder::add_phase(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (double* s = find_entry(phases_, name)) {
    *s += seconds;
  } else {
    phases_.emplace_back(name, seconds);
  }
}

void Recorder::incr(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::int64_t* c = find_entry(counters_, name)) {
    *c += delta;
  } else {
    counters_.emplace_back(name, delta);
  }
}

void Recorder::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (double* g = find_entry(gauges_, name)) {
    *g = value;
  } else {
    gauges_.emplace_back(name, value);
  }
}

void Recorder::observe(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram* h = find_entry(histograms_, name);
  if (h == nullptr) {
    histograms_.emplace_back(name, Histogram{});
    h = &histograms_.back().second;
  }
  if (h->count == 0) {
    h->min_seconds = seconds;
    h->max_seconds = seconds;
  } else {
    h->min_seconds = std::min(h->min_seconds, seconds);
    h->max_seconds = std::max(h->max_seconds, seconds);
  }
  ++h->count;
  ++h->buckets[bucket_index(seconds)];
}

double Recorder::phase_seconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const double* s = find_entry(phases_, name);
  return s != nullptr ? *s : 0.0;
}

std::int64_t Recorder::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t* c = find_entry(counters_, name);
  return c != nullptr ? *c : 0;
}

Json Recorder::phases_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json arr = Json::array();
  for (const auto& [name, seconds] : phases_) {
    Json p = Json::object();
    p["name"] = name;
    p["seconds"] = seconds;
    arr.push_back(std::move(p));
  }
  return arr;
}

Json Recorder::counters_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json obj = Json::object();
  for (const auto& [name, count] : counters_) obj[name] = count;
  return obj;
}

Json Recorder::gauges_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json obj = Json::object();
  for (const auto& [name, value] : gauges_) obj[name] = value;
  return obj;
}

namespace {

/// Value at quantile q: walk buckets to the sample of rank ceil(q*n),
/// report that bucket's geometric midpoint clamped to the observed
/// range (exact when all samples share a bucket).
double histogram_quantile(const std::array<std::int64_t, kLatencyBuckets>& b,
                          std::int64_t count, double q, double min_s,
                          double max_s) {
  const auto rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::int64_t seen = 0;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    seen += b[i];
    if (seen >= rank) {
      return std::clamp(bucket_midpoint_seconds(i), min_s, max_s);
    }
  }
  return max_s;
}

}  // namespace

Json Recorder::histograms_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json obj = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json e = Json::object();
    e["count"] = h.count;
    e["min_seconds"] = h.min_seconds;
    e["max_seconds"] = h.max_seconds;
    e["p50_seconds"] = histogram_quantile(h.buckets, h.count, 0.50,
                                          h.min_seconds, h.max_seconds);
    e["p95_seconds"] = histogram_quantile(h.buckets, h.count, 0.95,
                                          h.min_seconds, h.max_seconds);
    e["p99_seconds"] = histogram_quantile(h.buckets, h.count, 0.99,
                                          h.min_seconds, h.max_seconds);
    Json buckets = Json::array();
    for (const std::int64_t c : h.buckets) buckets.push_back(c);
    e["bucket_counts"] = std::move(buckets);
    obj[name] = std::move(e);
  }
  return obj;
}

}  // namespace rdo::obs
