#include "obs/recorder.h"

#include <algorithm>

#include "obs/metrics.h"

namespace rdo::obs {

// Bucket geometry (index mapping, midpoints, quantile walk) is shared
// with the live registry — see latency_bucket_index and friends in
// obs/metrics.h — so Recorder and registry histograms merge losslessly.

namespace {

template <typename T>
T* find_entry(std::vector<std::pair<std::string, T>>& v,
              const std::string& name) {
  for (auto& kv : v) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

template <typename T>
const T* find_entry(const std::vector<std::pair<std::string, T>>& v,
                    const std::string& name) {
  for (const auto& kv : v) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

}  // namespace

void Recorder::add_phase(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (double* s = find_entry(phases_, name)) {
    *s += seconds;
  } else {
    phases_.emplace_back(name, seconds);
  }
}

void Recorder::incr(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::int64_t* c = find_entry(counters_, name)) {
    *c += delta;
  } else {
    counters_.emplace_back(name, delta);
  }
}

void Recorder::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (double* g = find_entry(gauges_, name)) {
    *g = value;
  } else {
    gauges_.emplace_back(name, value);
  }
}

void Recorder::observe(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram* h = find_entry(histograms_, name);
  if (h == nullptr) {
    histograms_.emplace_back(name, Histogram{});
    h = &histograms_.back().second;
  }
  if (h->count == 0) {
    h->min_seconds = seconds;
    h->max_seconds = seconds;
  } else {
    h->min_seconds = std::min(h->min_seconds, seconds);
    h->max_seconds = std::max(h->max_seconds, seconds);
  }
  ++h->count;
  ++h->buckets[static_cast<std::size_t>(latency_bucket_index(seconds))];
}

void Recorder::merge_histogram(
    const std::string& name, std::int64_t count, double min_seconds,
    double max_seconds,
    const std::array<std::int64_t, kLatencyBuckets>& bucket_counts) {
  if (count <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Histogram* h = find_entry(histograms_, name);
  if (h == nullptr) {
    histograms_.emplace_back(name, Histogram{});
    h = &histograms_.back().second;
  }
  if (h->count == 0) {
    h->min_seconds = min_seconds;
    h->max_seconds = max_seconds;
  } else {
    h->min_seconds = std::min(h->min_seconds, min_seconds);
    h->max_seconds = std::max(h->max_seconds, max_seconds);
  }
  h->count += count;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    h->buckets[static_cast<std::size_t>(i)] +=
        bucket_counts[static_cast<std::size_t>(i)];
  }
}

double Recorder::phase_seconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const double* s = find_entry(phases_, name);
  return s != nullptr ? *s : 0.0;
}

std::int64_t Recorder::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t* c = find_entry(counters_, name);
  return c != nullptr ? *c : 0;
}

Json Recorder::phases_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json arr = Json::array();
  for (const auto& [name, seconds] : phases_) {
    Json p = Json::object();
    p["name"] = name;
    p["seconds"] = seconds;
    arr.push_back(std::move(p));
  }
  return arr;
}

Json Recorder::counters_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json obj = Json::object();
  for (const auto& [name, count] : counters_) obj[name] = count;
  return obj;
}

Json Recorder::gauges_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json obj = Json::object();
  for (const auto& [name, value] : gauges_) obj[name] = value;
  return obj;
}

Json Recorder::histograms_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json obj = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json e = Json::object();
    e["count"] = h.count;
    e["min_seconds"] = h.min_seconds;
    e["max_seconds"] = h.max_seconds;
    e["p50_seconds"] = latency_histogram_quantile(h.buckets, h.count, 0.50,
                                          h.min_seconds, h.max_seconds);
    e["p95_seconds"] = latency_histogram_quantile(h.buckets, h.count, 0.95,
                                          h.min_seconds, h.max_seconds);
    e["p99_seconds"] = latency_histogram_quantile(h.buckets, h.count, 0.99,
                                          h.min_seconds, h.max_seconds);
    Json buckets = Json::array();
    for (const std::int64_t c : h.buckets) buckets.push_back(c);
    e["bucket_counts"] = std::move(buckets);
    obj[name] = std::move(e);
  }
  return obj;
}

}  // namespace rdo::obs
