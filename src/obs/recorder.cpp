#include "obs/recorder.h"

namespace rdo::obs {

namespace {

template <typename T>
T* find_entry(std::vector<std::pair<std::string, T>>& v,
              const std::string& name) {
  for (auto& kv : v) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

template <typename T>
const T* find_entry(const std::vector<std::pair<std::string, T>>& v,
                    const std::string& name) {
  for (const auto& kv : v) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

}  // namespace

void Recorder::add_phase(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (double* s = find_entry(phases_, name)) {
    *s += seconds;
  } else {
    phases_.emplace_back(name, seconds);
  }
}

void Recorder::incr(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::int64_t* c = find_entry(counters_, name)) {
    *c += delta;
  } else {
    counters_.emplace_back(name, delta);
  }
}

void Recorder::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (double* g = find_entry(gauges_, name)) {
    *g = value;
  } else {
    gauges_.emplace_back(name, value);
  }
}

double Recorder::phase_seconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const double* s = find_entry(phases_, name);
  return s != nullptr ? *s : 0.0;
}

std::int64_t Recorder::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t* c = find_entry(counters_, name);
  return c != nullptr ? *c : 0;
}

Json Recorder::phases_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json arr = Json::array();
  for (const auto& [name, seconds] : phases_) {
    Json p = Json::object();
    p["name"] = name;
    p["seconds"] = seconds;
    arr.push_back(std::move(p));
  }
  return arr;
}

Json Recorder::counters_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json obj = Json::object();
  for (const auto& [name, count] : counters_) obj[name] = count;
  return obj;
}

Json Recorder::gauges_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json obj = Json::object();
  for (const auto& [name, value] : gauges_) obj[name] = value;
  return obj;
}

}  // namespace rdo::obs
