// Environment capture block for structured results.
//
// Records everything needed to interpret (and distrust) a BENCH_*.json
// file later: the resolved thread-pool width, the raw RDO_THREADS
// setting, build type and git sha (baked in at configure time), the
// master seed, and toolchain identification. The whole block is
// *volatile* — it legitimately differs across machines and thread
// settings — and is therefore excluded from the determinism contract.
#pragma once

#include <cstdint>

#include "obs/json.h"

namespace rdo::obs {

/// Capture the current process environment as a JSON object.
[[nodiscard]] Json capture_env(std::uint64_t seed);

/// Git sha the build was configured from ("unknown" outside a checkout).
[[nodiscard]] const char* build_git_sha();

/// CMAKE_BUILD_TYPE the binaries were compiled with.
[[nodiscard]] const char* build_type();

}  // namespace rdo::obs
