#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "core/check.h"

namespace rdo::quant {

LayerQuant quantize_matrix(const rdo::nn::MatrixOp& op, int bits) {
  RDO_CHECK(bits >= 1 && bits <= 16,
            "quantize_matrix: " + std::to_string(bits) +
                " bits outside [1, 16]");
  LayerQuant lq;
  lq.bits = bits;
  lq.rows = op.fan_in();
  lq.cols = op.fan_out();

  // Symmetric quantization: the range is +-max|w| and the ISAAC weight
  // shift is exactly half the integer range, so the zero-weight cluster
  // of a trained layer always sits at 2^(bits-1) — within reach of the
  // signed offset registers regardless of the layer's outlier skew.
  float wabs = 0.0f;
  for (std::int64_t r = 0; r < lq.rows; ++r) {
    for (std::int64_t c = 0; c < lq.cols; ++c) {
      wabs = std::max(wabs, std::fabs(op.weight_at(r, c)));
    }
  }
  if (wabs <= 0.0f) wabs = 0.5f;
  const int levels = (1 << bits) - 1;
  lq.scale = 2.0f * wabs / static_cast<float>(levels);
  lq.zero = 1 << (bits - 1);

  lq.q.resize(static_cast<std::size_t>(lq.rows * lq.cols));
  for (std::int64_t r = 0; r < lq.rows; ++r) {
    for (std::int64_t c = 0; c < lq.cols; ++c) {
      const float w = op.weight_at(r, c);
      int v = static_cast<int>(std::lround(w / lq.scale)) + lq.zero;
      v = std::clamp(v, 0, levels);
      lq.q[static_cast<std::size_t>(r * lq.cols + c)] = v;
    }
  }
  return lq;
}

void apply_quantized(rdo::nn::MatrixOp& op, const LayerQuant& lq) {
  for (std::int64_t r = 0; r < lq.rows; ++r) {
    for (std::int64_t c = 0; c < lq.cols; ++c) {
      op.set_weight_at(r, c,
                       lq.dequant(static_cast<float>(lq.at(r, c))));
    }
  }
}

}  // namespace rdo::quant
