#include "quant/act_quant.h"

#include <algorithm>
#include <cmath>

namespace rdo::quant {

using rdo::nn::Tensor;

void ActQuant::disable() {
  enabled_ = false;
  observed_max_ = 0.0f;  // restart observation from a clean slate
}

void ActQuant::calibrate(float max_abs) {
  const int levels = (1 << bits_) - 1;
  step_ = std::max(max_abs, 1e-6f) / static_cast<float>(levels);
  enabled_ = true;
}

Tensor ActQuant::forward(const Tensor& x, bool /*train*/) {
  if (!enabled_) {
    observed_max_ = std::max(observed_max_, x.max_abs());
    return x;
  }
  const float levels = static_cast<float>((1 << bits_) - 1);
  Tensor y = x;
  for (std::int64_t i = 0; i < y.size(); ++i) {
    float q = std::round(y[i] / step_);
    q = std::clamp(q, 0.0f, levels);  // activations are post-ReLU / inputs
    y[i] = q * step_;
  }
  return y;
}

Tensor ActQuant::backward(const Tensor& grad_out) {
  // Straight-through estimator.
  return grad_out;
}

}  // namespace rdo::quant
