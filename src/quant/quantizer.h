// Post-training 8-bit weight quantization with the ISAAC weight shift.
//
// The one-crossbar architecture stores only non-negative weights: the
// signed range [w_min, w_max] is affinely mapped to integers [0, 2^bits-1]
// and the shift `zero` is subtracted digitally after the analog dot
// product (`zero * sum(x)`), exactly the ISAAC scheme the paper builds on
// (§II). The quantized integer weight is the paper's NTW (network target
// weight).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix_op.h"

namespace rdo::quant {

/// Quantization of one crossbar-mapped layer.
struct LayerQuant {
  int bits = 8;
  float scale = 1.0f;  ///< effective_weight = scale * (q - zero)
  int zero = 0;        ///< digital weight shift (integer)
  std::int64_t rows = 0, cols = 0;
  /// Integer NTWs in [0, 2^bits - 1], stored row-major [rows, cols].
  std::vector<int> q;

  [[nodiscard]] int levels() const { return (1 << bits) - 1; }
  [[nodiscard]] int at(std::int64_t r, std::int64_t c) const {
    return q[static_cast<std::size_t>(r * cols + c)];
  }
  /// Effective (float) weight represented by integer value `v`.
  [[nodiscard]] float dequant(float v) const {
    return scale * (v - static_cast<float>(zero));
  }
};

/// Quantize the weight matrix of `op` to `bits` bits (min/max calibration).
LayerQuant quantize_matrix(const rdo::nn::MatrixOp& op, int bits = 8);

/// Write effective weights dequant(q) back into `op` (pure round-trip,
/// used to measure quantization-only accuracy).
void apply_quantized(rdo::nn::MatrixOp& op, const LayerQuant& lq);

}  // namespace rdo::quant
