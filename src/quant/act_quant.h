// Activation fake-quantization layer (8-bit inputs, paper §IV).
//
// Disabled by default so a network trains in float; the deployment
// pipeline calibrates and enables it, after which activations snap to the
// 2^bits-level grid used by the DAC-driven wordlines. Backward uses the
// straight-through estimator so PWT can still propagate gradients.
#pragma once

#include "nn/layer.h"

namespace rdo::quant {

class ActQuant : public rdo::nn::Layer {
 public:
  explicit ActQuant(int bits = 8) : bits_(bits) {}

  rdo::nn::Tensor forward(const rdo::nn::Tensor& x, bool train) override;
  rdo::nn::Tensor backward(const rdo::nn::Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<rdo::nn::Layer> clone() const override {
    return std::make_unique<ActQuant>(*this);
  }
  [[nodiscard]] std::string name() const override { return "ActQuant"; }

  /// Enable quantization with a calibrated full-scale activation value.
  void calibrate(float max_abs);
  /// Turn quantization off and restart range observation from scratch.
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] float observed_max() const { return observed_max_; }
  /// Quantization step of the calibrated grid (meaningful when enabled).
  [[nodiscard]] float step() const { return step_; }

 private:
  int bits_;
  bool enabled_ = false;
  float step_ = 1.0f;
  float observed_max_ = 0.0f;  ///< running max seen while disabled
};

}  // namespace rdo::quant
