// Fuzz target: RLut::load — the LUT cache deserializer behind
// RDO_LUT_CACHE_DIR.
//
// Contract under fuzzing: arbitrary bytes either load cleanly, report a
// stale fingerprint (false), or raise LutError; never a crash, an
// unbounded resize, or a table built from uninitialized memory. The
// stored fingerprint is lifted out of the input so the fuzzer reaches the
// post-fingerprint payload path as well as the mismatch path.
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "rram/rlut.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  // Fingerprint at offset 4 (after the magic), as written by RLut::save.
  std::uint64_t stored_fp = 0;
  if (size >= 12) std::memcpy(&stored_fp, data + 4, sizeof(stored_fp));

  for (const std::uint64_t fp : {stored_fp, std::uint64_t{0}}) {
    std::istringstream in(bytes, std::ios::binary);
    rdo::rram::RLut out;
    try {
      (void)rdo::rram::RLut::load(in, fp, out, "fuzz");
    } catch (const rdo::rram::LutError&) {
      // Corrupt input must raise LutError — never crash.
    }
    if (stored_fp == 0) break;  // both iterations identical
  }
  return 0;
}
