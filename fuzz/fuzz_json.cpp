// Fuzz target: obs::Json::parse — the parser behind every BENCH_*.json,
// trace document and bench_diff input.
//
// Contract under fuzzing: arbitrary bytes either parse or raise
// std::exception; no crash, no UB, and anything accepted must round-trip
// through dump() back to an equal-typed document.
#include <cstdint>
#include <string>

#include "obs/json.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const rdo::obs::Json doc = rdo::obs::Json::parse(text);
    // Accepted input must survive a serialize/reparse cycle: the writer
    // may not emit anything its own parser rejects.
    const rdo::obs::Json again = rdo::obs::Json::parse(doc.dump(2));
    (void)again;
  } catch (const std::exception&) {
    // Malformed documents must be rejected with an exception — never a
    // crash or a silently-truncated parse.
  }
  return 0;
}
