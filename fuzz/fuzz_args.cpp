// Fuzz target: tools::parse_experiment_args — the strict CLI flag parser
// in front of every rdo_experiment invocation.
//
// Contract under fuzzing: any argv vector yields a ParseOutcome (ok or a
// diagnostic) without crashing, throwing, or reading past the argument
// array. Input bytes are split on newlines into argv tokens.
#include <cstdint>
#include <string>
#include <vector>

#include "experiment_args.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::vector<std::string> tokens;
  std::string cur;
  for (std::size_t i = 0; i < size && tokens.size() < 64; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      tokens.push_back(cur);
      cur.clear();
    } else if (c != '\0') {  // argv strings cannot contain NUL
      cur += c;
    }
  }
  if (!cur.empty() && tokens.size() < 64) tokens.push_back(cur);

  std::vector<const char*> argv;
  argv.push_back("rdo_experiment");
  for (const std::string& t : tokens) argv.push_back(t.c_str());

  rdo::tools::ExperimentArgs args;
  const rdo::tools::ParseOutcome outcome = rdo::tools::parse_experiment_args(
      static_cast<int>(argv.size()), argv.data(), args);
  (void)outcome;
  return 0;
}
