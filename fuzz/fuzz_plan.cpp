// Fuzz target: DeploymentPlan::load — the plan cache deserializer behind
// RDO_PLAN_CACHE_DIR.
//
// Contract under fuzzing: arbitrary bytes either load cleanly, report a
// stale fingerprint (nullopt), or raise PlanError; never a crash, an
// unbounded resize, a ContractViolation escaping from deeper layers, or
// a plan built from unvalidated fields. The stored fingerprint is lifted
// out of the input so the fuzzer reaches the post-fingerprint payload
// path as well as the mismatch path.
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "core/plan.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  // Fingerprint at offset 4 (after the magic), as written by save().
  std::uint64_t stored_fp = 0;
  if (size >= 12) std::memcpy(&stored_fp, data + 4, sizeof(stored_fp));

  for (const std::uint64_t fp : {stored_fp, std::uint64_t{0}}) {
    std::istringstream in(bytes, std::ios::binary);
    try {
      (void)rdo::core::DeploymentPlan::load(in, fp, "fuzz");
    } catch (const rdo::core::PlanError&) {
      // Corrupt input must raise PlanError — never crash.
    }
    if (stored_fp == 0) break;  // both iterations identical
  }
  return 0;
}
