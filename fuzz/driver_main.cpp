// Standalone corpus-replay driver for the fuzz harnesses.
//
// libFuzzer (clang's -fsanitize=fuzzer) supplies its own main(); with any
// other toolchain the harnesses link this driver instead, which replays
// every file (or every regular file in every directory) passed on the
// command line through LLVMFuzzerTestOneInput. That keeps the committed
// seed corpus running as a plain ctest regression on every build — Debug,
// Release and all sanitizer presets — even where libFuzzer is absent.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_one(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "fuzz driver: cannot open %s\n", p.string().c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int failures = 0;
  int cases = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      // Deterministic replay order regardless of directory-entry order.
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& p : files) {
        failures += run_one(p);
        ++cases;
      }
    } else {
      failures += run_one(arg);
      ++cases;
    }
  }
  std::fprintf(stderr, "fuzz driver: replayed %d corpus case(s)\n", cases);
  return failures == 0 ? 0 : 1;
}
