// Fuzz target: nn::load_params — the model-file deserializer used to
// reuse trained weights across experiment binaries.
//
// Contract under fuzzing: arbitrary bytes either load into the probe
// network or raise SerializeError; never a crash, a read past the
// document, or a partially-overwritten network. Two probe networks (an
// MLP and a conv+batchnorm stack, the latter exercising the buffer
// section) are tried against every input.
#include <cstdint>
#include <sstream>
#include <string>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "nn/serialize.h"

namespace {

rdo::nn::Sequential& mlp_probe() {
  static rdo::nn::Sequential* net = [] {
    rdo::nn::Rng rng(1);
    auto* s = new rdo::nn::Sequential();
    s->emplace<rdo::nn::Dense>(4, 8, rng);
    s->emplace<rdo::nn::Dense>(8, 3, rng);
    return s;
  }();
  return *net;
}

rdo::nn::Sequential& conv_probe() {
  static rdo::nn::Sequential* net = [] {
    rdo::nn::Rng rng(2);
    auto* s = new rdo::nn::Sequential();
    s->emplace<rdo::nn::Conv2D>(1, 2, 3, 1, 1, rng);
    s->emplace<rdo::nn::BatchNorm2D>(2);
    return s;
  }();
  return *net;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  for (rdo::nn::Sequential* net : {&mlp_probe(), &conv_probe()}) {
    std::istringstream in(bytes, std::ios::binary);
    try {
      rdo::nn::load_params(*net, in, "fuzz");
    } catch (const rdo::nn::SerializeError&) {
      // Malformed model files must raise SerializeError — never crash.
    }
  }
  return 0;
}
