// bench_diff — the BENCH trajectory regression gate.
//
//   bench_diff [options] <baseline.json> <current.json>
//
// Compares the deterministic sections (counters, gauges, results,
// failures) of two BENCH_*.json documents; timings, pool stats and
// histograms are reported informationally only. See obs/diff.h for the
// tolerance model. CI runs this against the committed baseline under
// bench/baselines/ to gate every PR.
//
// Options:
//   --abs-tol X          absolute tolerance for gauge/result numbers
//   --rel-tol X          relative tolerance for gauge/result numbers
//   --counter-rel-tol X  relative tolerance for counters (default exact)
//
// Exit codes:
//   0  deterministic sections match within tolerance
//   1  regression: at least one divergence beyond tolerance
//   2  usage error
//   3  a file could not be read or is not valid JSON
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/diff.h"
#include "obs/json.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--abs-tol X] [--rel-tol X] "
               "[--counter-rel-tol X] <baseline.json> <current.json>\n");
  return 2;
}

bool parse_tol(const char* flag, const char* value, double* out) {
  if (value == nullptr) {
    std::fprintf(stderr, "bench_diff: %s needs a value\n", flag);
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || !(v >= 0.0)) {
    std::fprintf(stderr, "bench_diff: bad value for %s: %s\n", flag, value);
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  rdo::obs::DiffOptions opt;
  std::string paths[2];
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--abs-tol") == 0) {
      if (!parse_tol(arg, i + 1 < argc ? argv[++i] : nullptr,
                     &opt.abs_tol)) {
        return 2;
      }
    } else if (std::strcmp(arg, "--rel-tol") == 0) {
      if (!parse_tol(arg, i + 1 < argc ? argv[++i] : nullptr,
                     &opt.rel_tol)) {
        return 2;
      }
    } else if (std::strcmp(arg, "--counter-rel-tol") == 0) {
      if (!parse_tol(arg, i + 1 < argc ? argv[++i] : nullptr,
                     &opt.counter_rel_tol)) {
        return 2;
      }
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown flag %s\n", arg);
      return usage();
    } else if (npaths < 2) {
      paths[npaths++] = arg;
    } else {
      return usage();
    }
  }
  if (npaths != 2) return usage();

  rdo::obs::Json baseline;
  rdo::obs::Json current;
  try {
    baseline = rdo::obs::read_json_file(paths[0]);
    current = rdo::obs::read_json_file(paths[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 3;
  }

  const rdo::obs::DiffReport report =
      rdo::obs::diff_bench_documents(baseline, current, opt);
  for (const std::string& line : report.infos) {
    std::printf("info: %s\n", line.c_str());
  }
  for (const std::string& line : report.regressions) {
    std::printf("REGRESSION: %s\n", line.c_str());
  }
  if (!report.ok()) {
    std::printf("bench_diff: %zu regression(s) vs %s\n",
                report.regressions.size(), paths[0].c_str());
    return 1;
  }
  std::printf("bench_diff: deterministic sections match (%zu tolerated "
              "drift(s))\n",
              report.infos.size());
  return 0;
}
