// Regenerate the committed fuzz seed corpus (fuzz/corpus/*).
//
//   make_fuzz_seeds <corpus-root>
//
// Seeds are produced by the real serializers (save_params, RLut::save)
// plus hand-derived corrupt variants (truncations, bad magic, oversized
// header counts, trailing bytes), so every branch of the hardened load
// paths has at least one corpus case from the start. The generator is
// deterministic: regenerating over an existing corpus is byte-identical.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/plan.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "nn/tensor.h"
#include "nn/trainer.h"
#include "rram/rlut.h"

namespace {

namespace fs = std::filesystem;

std::vector<char> slurp(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  if (!f) throw std::runtime_error("cannot read " + p.string());
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

void spit(const fs::path& p, const std::vector<char>& bytes) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot write " + p.string());
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void spit(const fs::path& p, const std::string& text) {
  spit(p, std::vector<char>(text.begin(), text.end()));
}

/// Derived corrupt variants every binary loader must reject: truncation
/// at several depths, a flipped magic, and trailing garbage.
void corrupt_variants(const fs::path& dir, const std::string& stem,
                      const std::vector<char>& valid) {
  std::vector<char> t = valid;
  t.resize(valid.size() / 2);
  spit(dir / (stem + "_truncated_half.bin"), t);
  t = valid;
  t.resize(valid.size() - 1);
  spit(dir / (stem + "_truncated_tail.bin"), t);
  t = valid;
  t.resize(3);  // shorter than any header
  spit(dir / (stem + "_truncated_header.bin"), t);
  t = valid;
  t[0] ^= 0x5A;
  spit(dir / (stem + "_bad_magic.bin"), t);
  t = valid;
  t.push_back('\x7f');
  t.push_back('\x00');
  spit(dir / (stem + "_trailing.bin"), t);
}

void make_serialize_seeds(const fs::path& dir) {
  fs::create_directories(dir);
  // Must stay in sync with the probe networks in fuzz/fuzz_serialize.cpp
  // and the fixtures consumed by tests/test_serialize.cpp.
  rdo::nn::Rng rng(1);
  rdo::nn::Sequential mlp;
  mlp.emplace<rdo::nn::Dense>(4, 8, rng);
  mlp.emplace<rdo::nn::Dense>(8, 3, rng);
  rdo::nn::save_params(mlp, (dir / "valid_mlp.bin").string());

  rdo::nn::Rng rng2(2);
  rdo::nn::Sequential conv;
  conv.emplace<rdo::nn::Conv2D>(1, 2, 3, 1, 1, rng2);
  conv.emplace<rdo::nn::BatchNorm2D>(2);
  rdo::nn::save_params(conv, (dir / "valid_conv.bin").string());

  const std::vector<char> valid = slurp(dir / "valid_mlp.bin");
  corrupt_variants(dir, "mlp", valid);

  // Header that declares far more tensors than the file holds: the
  // loader must reject it from the byte budget before consuming data.
  std::vector<char> oversized = valid;
  const std::uint64_t huge = 1ull << 60;
  std::memcpy(oversized.data() + 4, &huge, sizeof(huge));
  spit(dir / "mlp_oversized_pcount.bin", oversized);
}

void make_rlut_seeds(const fs::path& dir) {
  fs::create_directories(dir);
  const rdo::rram::CellModel slc{rdo::rram::CellKind::SLC, 200.0};
  const rdo::rram::WeightProgrammer prog(slc, 4, {0.5, 0.0});
  const rdo::rram::RLut lut = rdo::rram::RLut::build_analytic(prog);
  const std::uint64_t fp =
      rdo::rram::RLut::fingerprint(prog, 4, 4, /*seed=*/1);
  lut.save((dir / "valid.bin").string(), fp);

  const std::vector<char> valid = slurp(dir / "valid.bin");
  corrupt_variants(dir, "lut", valid);

  // Entry count far beyond kMaxEntries: must be rejected before resize.
  std::vector<char> huge_n = valid;
  const std::uint64_t huge = 1ull << 40;
  std::memcpy(huge_n.data() + 12, &huge, sizeof(huge));
  spit(dir / "lut_huge_n.bin", huge_n);

  // Valid table with a different fingerprint: the stale-cache path
  // (returns false, no throw).
  std::vector<char> stale = valid;
  const std::uint64_t other_fp = fp ^ 0xDEADBEEFull;
  std::memcpy(stale.data() + 4, &other_fp, sizeof(other_fp));
  spit(dir / "lut_stale_fp.bin", stale);
}

void make_plan_seeds(const fs::path& dir) {
  fs::create_directories(dir);
  // Tiny but complete plan: one Dense layer, VAWO* so the gradient and
  // offset sections are populated, a cheap 2x2 LUT protocol. Must stay
  // deterministic (fixed seed, fixed data) so regeneration is
  // byte-identical.
  rdo::nn::Rng rng(7);
  rdo::nn::Sequential net;
  net.emplace<rdo::nn::Dense>(4, 3, rng);

  rdo::nn::Tensor images({8, 4});
  for (std::int64_t i = 0; i < images.size(); ++i) {
    images[i] = 0.125f * static_cast<float>(i % 9) - 0.5f;
  }
  const std::vector<int> labels = {0, 1, 2, 0, 1, 2, 0, 1};
  const rdo::nn::DataView train{&images, &labels};

  rdo::core::DeployOptions opt;
  opt.scheme = rdo::core::Scheme::VAWOStar;
  opt.weight_bits = 4;
  opt.offsets.m = 2;
  opt.offsets.offset_bits = 4;
  opt.lut_k_sets = 2;
  opt.lut_j_cycles = 2;
  opt.grad_samples = 8;
  opt.seed = 7;

  const rdo::core::DeploymentPlan plan =
      rdo::core::compile_plan(net, opt, train);
  const std::uint64_t fp = rdo::core::plan_fingerprint(net, opt, train);
  plan.save((dir / "valid.bin").string(), fp);

  const std::vector<char> valid = slurp(dir / "valid.bin");
  corrupt_variants(dir, "plan", valid);

  // Valid plan with a different fingerprint: the stale-cache path
  // (returns nullopt, no throw).
  std::vector<char> stale = valid;
  const std::uint64_t other_fp = fp ^ 0xDEADBEEFull;
  std::memcpy(stale.data() + 4, &other_fp, sizeof(other_fp));
  spit(dir / "plan_stale_fp.bin", stale);

  // Embedded-LUT blob length far beyond the file: must be rejected by
  // the byte budget before any allocation. The length field sits right
  // after the options block (magic 4 + fingerprint 8 + 123 fixed-width
  // option bytes + the 8-byte length prefix of the empty optimizer pass
  // list — see plan_io.cpp write_options).
  std::vector<char> huge_lut = valid;
  const std::uint64_t huge = 1ull << 40;
  std::memcpy(huge_lut.data() + 143, &huge, sizeof(huge));
  spit(dir / "plan_huge_lut.bin", huge_lut);

  // RDP2 fixtures: a plan carrying the full optimizer pipeline (tuned
  // per-layer m, colored registers, provenance record), its corrupt
  // variants, and pass-list rejection cases.
  rdo::core::DeployOptions topt = opt;
  topt.opt_passes =
      "tune_group_size,color_offset_registers,eliminate_dead_tiles,"
      "canonicalize_complement";
  const rdo::core::DeploymentPlan tuned =
      rdo::core::compile_plan(net, topt, train);
  const std::uint64_t tuned_fp =
      rdo::core::plan_fingerprint(net, topt, train);
  tuned.save((dir / "valid_tuned.bin").string(), tuned_fp);
  const std::vector<char> tuned_bytes = slurp(dir / "valid_tuned.bin");
  corrupt_variants(dir, "tuned", tuned_bytes);

  // Stale-fingerprint path over the tuned format.
  std::vector<char> tuned_stale = tuned_bytes;
  const std::uint64_t tuned_other = tuned_fp ^ 0xDEADBEEFull;
  std::memcpy(tuned_stale.data() + 4, &tuned_other, sizeof(tuned_other));
  spit(dir / "tuned_stale_fp.bin", tuned_stale);

  // Unregistered name in the trailing pass-provenance record (the file
  // ends with the last pass name's bytes): must raise PlanError.
  std::vector<char> bad_prov = tuned_bytes;
  bad_prov.back() ^= 0x01;
  spit(dir / "tuned_bad_provenance.bin", bad_prov);

  // Unparseable optimizer pass list in the options block: the loader
  // must reject it before anything downstream consumes the options.
  rdo::core::DeploymentPlan bad_list = plan;
  bad_list.opt.opt_passes = "bogus_pass";
  bad_list.save((dir / "plan_bad_passlist.bin").string(), fp);
}

void make_json_seeds(const fs::path& dir) {
  fs::create_directories(dir);
  spit(dir / "scalars.json", std::string("[0, -1, 2.5, 1e-3, true, false, "
                                         "null, \"s\"]"));
  spit(dir / "nested.json",
       std::string("{\"a\": {\"b\": [1, {\"c\": [[]]}]}, \"d\": {}}"));
  spit(dir / "escapes.json",
       std::string("[\"\\n\\t\\\"\\\\\\u0041\\u00e9\\u4e16\"]"));
  spit(dir / "bench_like.json",
       std::string("{\"schema_version\": 2, \"name\": \"x\", \"results\": "
                   "[{\"scheme\": \"vawo*+pwt\", \"accuracy\": 0.98}], "
                   "\"counters\": {\"device_pulses\": 123456}}"));
  spit(dir / "bad_trailing.json", std::string("{} x"));
  spit(dir / "bad_number.json", std::string("[1e+ , -]"));
  spit(dir / "bad_unterminated.json", std::string("[\"abc"));
  spit(dir / "deep_nesting.json",
       std::string(300, '[') + std::string(300, ']'));
}

void make_args_seeds(const fs::path& dir) {
  fs::create_directories(dir);
  spit(dir / "valid_full.txt",
       std::string("--model\nlenet\n--scheme\nvawo*+pwt\n--cell\nmlc2\n"
                   "--scope\nper-cell\n--sigma\n0.7\n--ddv\n0.25\n--m\n8\n"
                   "--bits\n4\n--repeats\n2\n--seed\n42\n--json\nout.json"));
  spit(dir / "help.txt", std::string("--help"));
  spit(dir / "bad_number.txt", std::string("--sigma\nnot-a-number"));
  spit(dir / "bad_scheme.txt", std::string("--scheme\nbogus"));
  spit(dir / "missing_value.txt", std::string("--seed"));
  spit(dir / "overflow.txt",
       std::string("--m\n99999999999999999999\n--seed\n-1"));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_fuzz_seeds <corpus-root>\n");
    return 2;
  }
  const fs::path root(argv[1]);
  try {
    make_serialize_seeds(root / "fuzz_serialize");
    make_rlut_seeds(root / "fuzz_rlut");
    make_plan_seeds(root / "fuzz_plan");
    make_json_seeds(root / "fuzz_json");
    make_args_seeds(root / "fuzz_args");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "make_fuzz_seeds: %s\n", e.what());
    return 1;
  }
  return 0;
}
