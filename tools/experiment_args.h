// Argument parsing for the rdo_experiment CLI, split out so tests can
// drive it without spawning the binary (tests/test_cli.cpp).
//
// Parsing is strict: numeric values must consume the whole token
// (end-pointer checked, no atof/atoi silent-zero fallbacks), enum-like
// strings must name a known choice, and every value is bounds-checked.
// Any violation produces `ok == false` plus a one-line diagnostic; the
// binary prints it and exits 2.
#pragma once

#include <cstdint>
#include <string>

namespace rdo::tools {

struct ExperimentArgs {
  std::string model = "mlp";        // mlp | lenet | resnet | vgg
  std::string scheme = "vawo*+pwt"; // plain | vawo | vawo* | pwt | vawo*+pwt
  std::string cell = "slc";         // slc | mlc2
  std::string scope = "per-weight"; // per-weight | per-cell
  double sigma = 0.5;               // >= 0
  double ddv = 0.0;                 // in [0, 1]
  int m = 16;                       // >= 1
  int repeats = 3;                  // >= 1
  int offset_bits = 8;              // in [1, 16]
  std::uint64_t seed = 1;
  std::string json_path;            // --json <path>: write BENCH document
  bool help = false;
};

struct ParseOutcome {
  bool ok = true;
  std::string error;  // set when !ok
};

/// Parse argv into `out`. Never exits or prints; the caller decides how
/// to surface `error` (the binary: stderr + usage + exit 2).
ParseOutcome parse_experiment_args(int argc, const char* const* argv,
                                   ExperimentArgs& out);

/// The usage text shown by --help and after a parse error.
const char* experiment_usage();

}  // namespace rdo::tools
