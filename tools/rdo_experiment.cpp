// rdo_experiment — command-line experiment runner.
//
// Deploys a freshly-trained model onto simulated RRAM crossbars with any
// combination of the paper's knobs and prints the measured accuracy and
// hardware accounting. Intended for quick what-if studies without writing
// code:
//
//   rdo_experiment --model lenet --scheme vawo*+pwt --sigma 0.5 --m 16
//   rdo_experiment --model mlp --scheme plain --cell mlc2 --repeats 5
//   rdo_experiment --model resnet --scheme vawo* --sigma 0.8 --ddv 0.5
//   rdo_experiment --model mlp --json results.json
//
// Flag parsing lives in experiment_args.{h,cpp} (strict, bounds-checked;
// malformed input exits 2). With --json the run also writes the same
// schema-versioned document the bench harnesses emit (see EXPERIMENTS.md).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "arch/isaac_cost.h"
#include "core/deploy.h"
#include "core/opt/pipeline.h"
#include "obs/envvar.h"
#include "core/plan.h"
#include "data/synthetic.h"
#include "experiment_args.h"
#include "models/lenet.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "obs/report.h"
#include "quant/act_quant.h"

using namespace rdo;

int main(int argc, char** argv) {
  tools::ExperimentArgs a;
  const tools::ParseOutcome parsed =
      tools::parse_experiment_args(argc, argv, a);
  if (!parsed.ok) {
    std::fprintf(stderr, "rdo_experiment: %s\n\n%s", parsed.error.c_str(),
                 tools::experiment_usage());
    return 2;
  }
  if (a.help) {
    std::fputs(tools::experiment_usage(), stdout);
    return 0;
  }

  // Optimizer pass pipeline (core/opt): validated up front so a typo in
  // the environment fails fast like a malformed flag, before any training.
  std::string opt_passes;
  if (const char* passes = rdo::obs::env_knob("RDO_OPT_PASSES")) {
    std::string err;
    if (!core::opt::parse_pass_list(passes, &err)) {
      std::fprintf(stderr, "rdo_experiment: RDO_OPT_PASSES: %s\n",
                   err.c_str());
      return 2;
    }
    opt_passes = passes;
  }

  obs::BenchReport rep("rdo_experiment", a.seed);

  // Dataset + model.
  const bool is_cifar = a.model == "resnet" || a.model == "vgg";
  data::SyntheticSpec spec =
      is_cifar ? data::cifar_like() : data::mnist_like();
  spec.train_per_class = 60;
  spec.test_per_class = 20;
  const data::SyntheticDataset ds = data::make_synthetic(spec);

  nn::Rng rng(a.seed);
  std::unique_ptr<nn::Sequential> net;
  float lr = 0.02f;
  int epochs = 10;
  if (a.model == "mlp") {
    net = std::make_unique<nn::Sequential>();
    net->emplace<nn::Flatten>();
    net->emplace<quant::ActQuant>(8);
    net->emplace<nn::Dense>(28 * 28, 64, rng);
    net->emplace<nn::ReLU>();
    net->emplace<quant::ActQuant>(8);
    net->emplace<nn::Dense>(64, 10, rng);
    lr = 0.05f;
    epochs = 6;
  } else if (a.model == "lenet") {
    net = models::make_lenet({}, rng);
  } else if (a.model == "resnet") {
    models::ResNetConfig cfg;
    cfg.base_channels = 8;
    net = models::make_resnet(cfg, rng);
    epochs = 12;
  } else {  // "vgg" (validated by the parser)
    models::VggConfig cfg;
    cfg.base_channels = 8;
    net = models::make_vgg(cfg, rng);
    epochs = 12;
  }

  std::printf("training %s ...\n", a.model.c_str());
  float ideal = 0.0f;
  {
    obs::PhaseTimer t(rep.recorder(), "train_model");
    nn::SGD opt(net->params(), lr, 0.9f, 1e-4f);
    for (int e = 0; e < epochs; ++e) {
      nn::train_epoch(*net, opt, ds.train(), 32, rng);
    }
    ideal = nn::evaluate(*net, ds.test(), 64).accuracy;
  }
  std::printf("ideal accuracy: %.2f%%\n\n", 100 * ideal);

  // Deployment. The parser already validated the scheme name through the
  // same core::parse_scheme table, so the optional is always engaged.
  core::DeployOptions o;
  o.scheme = core::parse_scheme(a.scheme).value_or(core::Scheme::VAWOStarPWT);
  o.offsets.m = a.m;
  o.offsets.offset_bits = a.offset_bits;
  o.cell = {a.cell == "mlc2" ? rram::CellKind::MLC2 : rram::CellKind::SLC,
            200.0};
  o.variation.sigma = a.sigma;
  o.variation.ddv_fraction = a.ddv;
  o.variation.scope = a.scope == "per-cell"
                          ? rram::VariationScope::PerCell
                          : rram::VariationScope::PerWeight;
  o.seed = a.seed;
  o.opt_passes = opt_passes;

  std::printf("deploying: scheme=%s cell=%s sigma=%.2f ddv=%.2f m=%d "
              "bits=%d scope=%s repeats=%d\n",
              core::to_string(o.scheme), a.cell.c_str(), a.sigma, a.ddv,
              a.m, a.offset_bits, a.scope.c_str(), a.repeats);

  rep.results()["config"] = obs::Json::object();
  {
    obs::Json& cfg = rep.results()["config"];
    cfg["model"] = a.model;
    cfg["scheme"] = a.scheme;
    cfg["cell"] = a.cell;
    cfg["scope"] = a.scope;
    cfg["sigma"] = a.sigma;
    cfg["ddv"] = a.ddv;
    cfg["m"] = a.m;
    cfg["offset_bits"] = a.offset_bits;
    cfg["repeats"] = a.repeats;
  }
  rep.results()["ideal_accuracy"] = static_cast<double>(ideal);

  try {
    core::SchemeResult res;
    {
      obs::PhaseTimer t(rep.recorder(), "deployment");
      res = core::run_scheme(*net, o, ds.train(), ds.test(), a.repeats);
    }
    std::printf("\naccuracy under variation: %.2f%% (loss vs ideal: %.2f%%)\n",
                100 * res.mean_accuracy,
                100 * (ideal - res.mean_accuracy));
    std::printf("per-cycle:");
    for (float acc : res.per_cycle) std::printf(" %.2f%%", 100 * acc);
    std::printf("\n");

    rep.results()["mean_accuracy"] = static_cast<double>(res.mean_accuracy);
    obs::Json per_cycle = obs::Json::array();
    for (float acc : res.per_cycle) {
      per_cycle.push_back(static_cast<double>(acc));
    }
    rep.results()["per_cycle"] = std::move(per_cycle);
    rep.results()["stats"] = core::deploy_stats_json(res.stats);
    core::add_deploy_phase_times(rep.recorder(), res.stats);
    for (double s : res.trial_seconds) {
      rep.recorder().observe("trial_seconds", s);
    }
    for (double s : res.stats.eval_seconds) {
      rep.recorder().observe("deploy_evaluate_seconds", s);
    }

    // Hardware accounting for the chosen configuration, read off a
    // compiled plan (the network itself is left untouched).
    obs::PhaseTimer t(rep.recorder(), "hardware_accounting");
    const core::DeploymentPlan plan = core::compile_plan(*net, o, ds.train());
    const double ratio = plan.assigned_read_power() / plan.plain_read_power();
    std::printf("\ncrossbars (128x128): %lld\n",
                static_cast<long long>(plan.total_crossbars()));
    std::printf("offset registers: %lld\n",
                static_cast<long long>(plan.total_offset_registers()));
    std::printf("device reading power vs plain: %.1f%%\n", 100 * ratio);
    const arch::TileOverhead ov = arch::tile_overhead(a.m, a.offset_bits,
                                                      ratio);
    std::printf("ISAAC tile overhead: +%.3f mm^2 (%.1f%%), %+.2f mW "
                "(%.1f%%)\n",
                ov.area_mm2, ov.area_pct, ov.power_mw, ov.power_pct);

    obs::Json& hw = rep.results()["hardware"];
    hw = obs::Json::object();
    hw["crossbars"] = static_cast<std::int64_t>(plan.total_crossbars());
    hw["offset_registers"] =
        static_cast<std::int64_t>(plan.total_offset_registers());
    hw["read_power_ratio"] = ratio;
    hw["tile_area_mm2"] = ov.area_mm2;
    hw["tile_power_mw"] = ov.power_mw;

    // Plan-aware overhead, only with an optimizer pipeline configured:
    // the default run's stdout and JSON stay byte-identical to builds
    // without the optimizer (the bench-json CI gate diffs them).
    if (!o.opt_passes.empty()) {
      std::vector<arch::LayerOffsetCost> lc;
      for (std::size_t li = 0; li < plan.layers.size(); ++li) {
        const core::PlanLayer& pl = plan.layers[li];
        lc.push_back({pl.m,
                      static_cast<long long>(
                          plan.layer_tiling(li).total_crossbars()),
                      static_cast<long long>(pl.offset_registers)});
      }
      const arch::PlanOverhead pov =
          arch::plan_overhead(lc, a.offset_bits, ratio);
      std::printf("optimized plan (passes: %s):\n", o.opt_passes.c_str());
      std::printf("  offset registers after passes: %lld\n",
                  static_cast<long long>(pov.registers));
      std::printf("  plan overhead: +%.3f mm^2 (%.1f%%), %+.2f mW (%.1f%%)\n",
                  pov.area_mm2, pov.area_pct, pov.power_mw, pov.power_pct);
      rep.results()["config"]["opt_passes"] = o.opt_passes;
      obs::Json applied = obs::Json::array();
      for (const std::string& name : plan.passes_applied) {
        applied.push_back(name);
      }
      hw["opt_passes_applied"] = std::move(applied);
      hw["plan_area_mm2"] = pov.area_mm2;
      hw["plan_power_mw"] = pov.power_mw;
      obs::Json per_layer_m = obs::Json::array();
      for (const core::PlanLayer& pl : plan.layers) {
        per_layer_m.push_back(static_cast<std::int64_t>(pl.m));
      }
      hw["per_layer_m"] = std::move(per_layer_m);
    }
  } catch (const std::exception& e) {
    rep.add_failure("deployment", e.what());
    std::fprintf(stderr, "rdo_experiment: deployment failed: %s\n", e.what());
  }

  if (!a.json_path.empty()) {
    try {
      rep.write_to(a.json_path);
      std::fprintf(stderr, "[rdo_experiment] wrote %s\n",
                   a.json_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rdo_experiment: cannot write %s: %s\n",
                   a.json_path.c_str(), e.what());
      return 1;
    }
  }
  return rep.exit_code();
}
