// rdo_experiment — command-line experiment runner.
//
// Deploys a freshly-trained model onto simulated RRAM crossbars with any
// combination of the paper's knobs and prints the measured accuracy and
// hardware accounting. Intended for quick what-if studies without writing
// code:
//
//   rdo_experiment --model lenet --scheme vawo*+pwt --sigma 0.5 --m 16
//   rdo_experiment --model mlp --scheme plain --cell mlc2 --repeats 5
//   rdo_experiment --model resnet --scheme vawo* --sigma 0.8 --ddv 0.5
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "arch/isaac_cost.h"
#include "core/deploy.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "quant/act_quant.h"

using namespace rdo;

namespace {

struct Args {
  std::string model = "mlp";
  std::string scheme = "vawo*+pwt";
  std::string cell = "slc";
  std::string scope = "per-weight";
  double sigma = 0.5;
  double ddv = 0.0;
  int m = 16;
  int repeats = 3;
  int offset_bits = 8;
  std::uint64_t seed = 1;
  bool help = false;
};

void usage() {
  std::printf(
      "rdo_experiment — deploy a model onto simulated RRAM crossbars\n\n"
      "  --model   mlp | lenet | resnet | vgg        (default mlp)\n"
      "  --scheme  plain | vawo | vawo* | pwt | vawo*+pwt\n"
      "  --cell    slc | mlc2                        (default slc)\n"
      "  --scope   per-weight | per-cell             (default per-weight)\n"
      "  --sigma   <double>   log-normal sigma       (default 0.5)\n"
      "  --ddv     <double>   DDV share of variance  (default 0)\n"
      "  --m       <int>      sharing granularity    (default 16)\n"
      "  --bits    <int>      offset register width  (default 8)\n"
      "  --repeats <int>      programming cycles     (default 3)\n"
      "  --seed    <int>\n");
}

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      a.help = true;
    } else if (flag == "--model") {
      a.model = next("--model");
    } else if (flag == "--scheme") {
      a.scheme = next("--scheme");
    } else if (flag == "--cell") {
      a.cell = next("--cell");
    } else if (flag == "--scope") {
      a.scope = next("--scope");
    } else if (flag == "--sigma") {
      a.sigma = std::atof(next("--sigma"));
    } else if (flag == "--ddv") {
      a.ddv = std::atof(next("--ddv"));
    } else if (flag == "--m") {
      a.m = std::atoi(next("--m"));
    } else if (flag == "--bits") {
      a.offset_bits = std::atoi(next("--bits"));
    } else if (flag == "--repeats") {
      a.repeats = std::atoi(next("--repeats"));
    } else if (flag == "--seed") {
      a.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

core::Scheme parse_scheme(const std::string& s) {
  if (s == "plain") return core::Scheme::Plain;
  if (s == "vawo") return core::Scheme::VAWO;
  if (s == "vawo*") return core::Scheme::VAWOStar;
  if (s == "pwt") return core::Scheme::PWT;
  if (s == "vawo*+pwt") return core::Scheme::VAWOStarPWT;
  std::fprintf(stderr, "unknown scheme '%s'\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) {
    usage();
    return 2;
  }
  if (a.help) {
    usage();
    return 0;
  }

  // Dataset + model.
  const bool is_cifar = a.model == "resnet" || a.model == "vgg";
  data::SyntheticSpec spec =
      is_cifar ? data::cifar_like() : data::mnist_like();
  spec.train_per_class = 60;
  spec.test_per_class = 20;
  const data::SyntheticDataset ds = data::make_synthetic(spec);

  nn::Rng rng(a.seed);
  std::unique_ptr<nn::Sequential> net;
  float lr = 0.02f;
  int epochs = 10;
  if (a.model == "mlp") {
    net = std::make_unique<nn::Sequential>();
    net->emplace<nn::Flatten>();
    net->emplace<quant::ActQuant>(8);
    net->emplace<nn::Dense>(28 * 28, 64, rng);
    net->emplace<nn::ReLU>();
    net->emplace<quant::ActQuant>(8);
    net->emplace<nn::Dense>(64, 10, rng);
    lr = 0.05f;
    epochs = 6;
  } else if (a.model == "lenet") {
    net = models::make_lenet({}, rng);
  } else if (a.model == "resnet") {
    models::ResNetConfig cfg;
    cfg.base_channels = 8;
    net = models::make_resnet(cfg, rng);
    epochs = 12;
  } else if (a.model == "vgg") {
    models::VggConfig cfg;
    cfg.base_channels = 8;
    net = models::make_vgg(cfg, rng);
    epochs = 12;
  } else {
    std::fprintf(stderr, "unknown model '%s'\n", a.model.c_str());
    usage();
    return 2;
  }

  std::printf("training %s ...\n", a.model.c_str());
  nn::SGD opt(net->params(), lr, 0.9f, 1e-4f);
  for (int e = 0; e < epochs; ++e) {
    nn::train_epoch(*net, opt, ds.train(), 32, rng);
  }
  const float ideal = nn::evaluate(*net, ds.test(), 64).accuracy;
  std::printf("ideal accuracy: %.2f%%\n\n", 100 * ideal);

  // Deployment.
  core::DeployOptions o;
  o.scheme = parse_scheme(a.scheme);
  o.offsets.m = a.m;
  o.offsets.offset_bits = a.offset_bits;
  o.cell = {a.cell == "mlc2" ? rram::CellKind::MLC2 : rram::CellKind::SLC,
            200.0};
  o.variation.sigma = a.sigma;
  o.variation.ddv_fraction = a.ddv;
  o.variation.scope = a.scope == "per-cell"
                          ? rram::VariationScope::PerCell
                          : rram::VariationScope::PerWeight;
  o.seed = a.seed;

  std::printf("deploying: scheme=%s cell=%s sigma=%.2f ddv=%.2f m=%d "
              "bits=%d scope=%s repeats=%d\n",
              core::to_string(o.scheme), a.cell.c_str(), a.sigma, a.ddv,
              a.m, a.offset_bits, a.scope.c_str(), a.repeats);
  const core::SchemeResult res =
      core::run_scheme(*net, o, ds.train(), ds.test(), a.repeats);
  std::printf("\naccuracy under variation: %.2f%% (loss vs ideal: %.2f%%)\n",
              100 * res.mean_accuracy,
              100 * (ideal - res.mean_accuracy));
  std::printf("per-cycle:");
  for (float acc : res.per_cycle) std::printf(" %.2f%%", 100 * acc);
  std::printf("\n");

  // Hardware accounting for the chosen configuration.
  core::Deployment dep(*net, o);
  dep.prepare(ds.train());
  const double ratio = dep.assigned_read_power() / dep.plain_read_power();
  std::printf("\ncrossbars (128x128): %lld\n",
              static_cast<long long>(dep.total_crossbars()));
  std::printf("offset registers: %lld\n",
              static_cast<long long>(dep.total_offset_registers()));
  std::printf("device reading power vs plain: %.1f%%\n", 100 * ratio);
  const arch::TileOverhead ov = arch::tile_overhead(a.m, a.offset_bits,
                                                    ratio);
  std::printf("ISAAC tile overhead: +%.3f mm^2 (%.1f%%), %+.2f mW (%.1f%%)\n",
              ov.area_mm2, ov.area_pct, ov.power_mw, ov.power_pct);
  dep.restore();
  return 0;
}
