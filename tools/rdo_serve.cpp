// rdo_serve — long-running deployment server over the compile/execute
// pipeline (deployment-as-a-service).
//
// Trains a model once at startup, then answers line-delimited JSON
// requests (see src/serve/protocol.h): each evaluate request names a
// deployment config, a programming cycle and a slice of the registered
// train/test data (or an inline batch); the service compiles or re-uses
// a DeploymentPlan (LRU of hot plans; RDO_PLAN_CACHE_DIR persists them
// across restarts) and evaluates on a pooled backend.
//
//   rdo_serve --model mlp --stdio --max-requests 8
//   rdo_serve --model mlp --port 0          # ephemeral TCP port
//
// Transports:
//   --stdio     requests on stdin, responses on stdout, one per line
//   --port P    TCP on 127.0.0.1:P (0 = ephemeral; the chosen port is
//               printed as "rdo_serve: listening on 127.0.0.1:<port>").
//               Connections are handled one at a time; concurrency
//               limits are exercised in-process by tests/test_serve.cpp.
//
// With --bench, a BENCH_rdo_serve.json report (request latency
// histogram, serve_* counters absorbed from the live registry) is
// written on exit, honouring RDO_BENCH_DIR; RDO_TRACE emits
// serve:request spans like every other harness.
//
// Operational telemetry (see src/obs/log.h and src/obs/metrics.h):
// structured log lines go to stderr (RDO_LOG_LEVEL, RDO_LOG_FORMAT);
// RDO_METRICS_INTERVAL_S > 0 dumps a registry snapshot every interval;
// SIGINT/SIGTERM shut down gracefully — stop accepting, drain in-flight
// requests, flush the trace and log a final metrics snapshot.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/deploy.h"
#include "obs/envvar.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "quant/act_quant.h"
#include "serve/server.h"

using namespace rdo;

namespace {

/// Set by the SIGINT/SIGTERM handler; the transport loops poll it and
/// the interrupted accept()/read() (no SA_RESTART) returns EINTR so a
/// blocked loop wakes promptly.
volatile std::sig_atomic_t g_shutdown = 0;
volatile std::sig_atomic_t g_signal = 0;

void on_shutdown_signal(int sig) {
  g_shutdown = 1;
  g_signal = sig;
}

void install_signal_handlers() {
  struct sigaction sa {};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking syscalls must wake
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

/// Background thread logging a metrics snapshot every RDO_METRICS_INTERVAL_S
/// seconds (fractional values allowed; unset or <= 0 disables it).
class MetricsDumper {
 public:
  explicit MetricsDumper(serve::InferenceService& svc) {
    double interval_s = 0.0;
    if (const char* p = rdo::obs::env_knob("RDO_METRICS_INTERVAL_S")) {
      char* end = nullptr;
      const double v = std::strtod(p, &end);
      if (end != p && *end == '\0' && v > 0.0) interval_s = v;
    }
    if (interval_s <= 0.0) return;
    th_ = std::thread([this, &svc, interval_s] {
      std::unique_lock<std::mutex> lk(mu_);
      while (!cv_.wait_for(lk, std::chrono::duration<double>(interval_s),
                           [this] { return stop_; })) {
        lk.unlock();
        obs::log_info("serve", "metrics dump")
            .with("snapshot", svc.metrics().snapshot_json().dump());
        lk.lock();
      }
    });
  }

  ~MetricsDumper() {
    if (!th_.joinable()) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    th_.join();
  }

  MetricsDumper(const MetricsDumper&) = delete;
  MetricsDumper& operator=(const MetricsDumper&) = delete;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread th_;
};

struct ServeArgs {
  std::string model = "mlp";  // mlp | lenet
  std::uint64_t seed = 1;
  int epochs = 6;
  int train_per_class = 60;
  int test_per_class = 20;
  int port = -1;        // >= 0: TCP transport (0 = ephemeral)
  bool stdio = false;
  long max_requests = 0;  // 0 = unlimited
  bool bench = false;
  bool help = false;
  serve::ServeConfig cfg;
};

const char* usage() {
  return
      "usage: rdo_serve [options]\n"
      "  --model NAME         mlp | lenet (default mlp)\n"
      "  --seed N             master seed (default 1)\n"
      "  --epochs N           training epochs at startup (default 6)\n"
      "  --train-per-class N  synthetic train samples per class (default 60)\n"
      "  --test-per-class N   synthetic test samples per class (default 20)\n"
      "  --stdio              serve requests from stdin to stdout\n"
      "  --port P             serve TCP on 127.0.0.1:P (0 = ephemeral)\n"
      "  --max-requests N     exit after N request lines (0 = unlimited)\n"
      "  --max-plans N        LRU capacity of hot plans (default 4)\n"
      "  --max-backends N     idle backends kept per plan+cycle (default 2)\n"
      "  --max-active N       concurrent evaluate requests (default 4)\n"
      "  --max-queued N       waiting requests before shedding (default 16)\n"
      "  --bench              write BENCH_rdo_serve.json on exit\n"
      "  --help               this text\n";
}

bool parse_long(const char* s, long lo, long hi, long& out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < lo || v > hi) return false;
  out = v;
  return true;
}

bool parse_args(int argc, char** argv, ServeArgs& a, std::string& err) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&](long lo, long hi, long& out) {
      if (i + 1 >= argc) {
        err = flag + " needs a value";
        return false;
      }
      if (!parse_long(argv[++i], lo, hi, out)) {
        err = flag + ": invalid value \"" + argv[i] + '"';
        return false;
      }
      return true;
    };
    long v = 0;
    if (flag == "--help") {
      a.help = true;
    } else if (flag == "--stdio") {
      a.stdio = true;
    } else if (flag == "--bench") {
      a.bench = true;
    } else if (flag == "--model") {
      if (i + 1 >= argc) {
        err = "--model needs a value";
        return false;
      }
      a.model = argv[++i];
      if (a.model != "mlp" && a.model != "lenet") {
        err = "--model: unknown model \"" + a.model + '"';
        return false;
      }
    } else if (flag == "--seed") {
      if (!value(0, 1L << 60, v)) return false;
      a.seed = static_cast<std::uint64_t>(v);
    } else if (flag == "--epochs") {
      if (!value(0, 1000, v)) return false;
      a.epochs = static_cast<int>(v);
    } else if (flag == "--train-per-class") {
      if (!value(1, 100000, v)) return false;
      a.train_per_class = static_cast<int>(v);
    } else if (flag == "--test-per-class") {
      if (!value(1, 100000, v)) return false;
      a.test_per_class = static_cast<int>(v);
    } else if (flag == "--port") {
      if (!value(0, 65535, v)) return false;
      a.port = static_cast<int>(v);
    } else if (flag == "--max-requests") {
      if (!value(0, 1L << 40, v)) return false;
      a.max_requests = v;
    } else if (flag == "--max-plans") {
      if (!value(1, 1024, v)) return false;
      a.cfg.max_plans = static_cast<std::size_t>(v);
    } else if (flag == "--max-backends") {
      if (!value(0, 1024, v)) return false;
      a.cfg.max_backends_per_plan = static_cast<std::size_t>(v);
    } else if (flag == "--max-active") {
      if (!value(1, 1024, v)) return false;
      a.cfg.max_active = static_cast<int>(v);
    } else if (flag == "--max-queued") {
      if (!value(0, 65536, v)) return false;
      a.cfg.max_queued = static_cast<int>(v);
    } else {
      err = "unknown flag \"" + flag + '"';
      return false;
    }
  }
  if (!a.help && a.stdio == (a.port >= 0)) {
    err = "pick exactly one transport: --stdio or --port";
    return false;
  }
  return true;
}

/// Serve request lines from `in` to `out` until EOF or the request
/// budget is exhausted. Returns lines handled.
long serve_stream(serve::InferenceService& svc, std::FILE* in,
                  std::FILE* out, long budget, long handled) {
  std::string line;
  int c = 0;
  while ((budget == 0 || handled < budget) && g_shutdown == 0) {
    line.clear();
    while ((c = std::fgetc(in)) != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
      if (line.size() > (1u << 26)) break;  // 64 MiB request-line cap
    }
    // A shutdown signal interrupts the blocking read (EOF + EINTR, no
    // SA_RESTART); drop the partial line and let the caller drain.
    if (c == EOF && g_shutdown != 0) break;
    if (line.empty() && c == EOF) break;
    const std::string resp = svc.handle_line(line);
    std::fputs(resp.c_str(), out);
    std::fputc('\n', out);
    std::fflush(out);
    ++handled;
    if (c == EOF) break;
  }
  return handled;
}

int run_tcp(serve::InferenceService& svc, int port, long max_requests) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("rdo_serve: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 16) < 0) {
    std::perror("rdo_serve: bind/listen");
    ::close(listener);
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  std::printf("rdo_serve: listening on 127.0.0.1:%d\n",
              ntohs(addr.sin_port));
  std::fflush(stdout);

  long handled = 0;
  while ((max_requests == 0 || handled < max_requests) && g_shutdown == 0) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) break;  // includes EINTR from a shutdown signal
    std::FILE* in = ::fdopen(conn, "r");
    std::FILE* out = ::fdopen(::dup(conn), "w");
    if (in == nullptr || out == nullptr) {
      if (in != nullptr) std::fclose(in);
      if (out != nullptr) std::fclose(out);
      ::close(conn);
      continue;
    }
    handled = serve_stream(svc, in, out, max_requests, handled);
    std::fclose(out);
    std::fclose(in);  // closes conn
  }
  ::close(listener);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeArgs a;
  std::string err;
  if (!parse_args(argc, argv, a, err)) {
    std::fprintf(stderr, "rdo_serve: %s\n\n%s", err.c_str(), usage());
    return 2;
  }
  if (a.help) {
    std::fputs(usage(), stdout);
    return 0;
  }

  obs::BenchReport rep("rdo_serve", a.seed);

  data::SyntheticSpec spec = data::mnist_like();
  spec.train_per_class = a.train_per_class;
  spec.test_per_class = a.test_per_class;
  const data::SyntheticDataset ds = data::make_synthetic(spec);

  nn::Rng rng(a.seed);
  std::unique_ptr<nn::Sequential> net;
  float lr = 0.05f;
  if (a.model == "lenet") {
    net = models::make_lenet({}, rng);
    lr = 0.02f;
  } else {
    net = std::make_unique<nn::Sequential>();
    net->emplace<nn::Flatten>();
    net->emplace<quant::ActQuant>(8);
    net->emplace<nn::Dense>(28 * 28, 64, rng);
    net->emplace<nn::ReLU>();
    net->emplace<quant::ActQuant>(8);
    net->emplace<nn::Dense>(64, 10, rng);
  }
  {
    obs::PhaseTimer t(rep.recorder(), "train_model");
    nn::SGD opt(net->params(), lr, 0.9f, 1e-4f);
    for (int e = 0; e < a.epochs; ++e) {
      nn::train_epoch(*net, opt, ds.train(), 32, rng);
    }
  }
  const float ideal = nn::evaluate(*net, ds.test(), 64).accuracy;
  obs::log_info("serve", "model trained")
      .with("model", a.model)
      .with("ideal_accuracy", static_cast<double>(ideal));

  core::DeployOptions base;
  base.seed = a.seed;
  serve::InferenceService svc(*net, ds.train(), ds.test(), base, a.cfg);

  install_signal_handlers();
  int rc = 0;
  {
    MetricsDumper dumper(svc);
    if (a.stdio) {
      serve_stream(svc, stdin, stdout, a.max_requests, 0);
    } else {
      rc = run_tcp(svc, a.port, a.max_requests);
    }

    if (g_shutdown != 0) {
      // Graceful shutdown: new admissions have stopped (the transport
      // loop exited); wait out whatever is still evaluating, then make
      // sure the trace is on disk even though exit is still normal.
      obs::log_info("serve", "shutdown signal received; draining")
          .with("signal", static_cast<std::int64_t>(g_signal))
          .with("active", svc.gate().active())
          .with("queued", svc.gate().queued());
      svc.gate().wait_idle();
      obs::trace_flush();
      rc = 0;
    }
  }  // joins the dumper thread

  obs::log_info("serve", "final metrics snapshot")
      .with("snapshot", svc.metrics().snapshot_json().dump());

  const serve::ServeCounters c = svc.counters();
  obs::log_info("serve", "request summary")
      .with("requests", c.requests)
      .with("ok", c.ok)
      .with("bad_request", c.bad_request)
      .with("overloaded", c.overloaded)
      .with("plan_hits", c.plan_hits)
      .with("plan_misses", c.plan_misses)
      .with("plan_evictions", c.plan_evictions);
  if (a.bench) {
    // Fold the live registry (serve_* instruments plus the process-wide
    // deploy cache counters) into the report's recorder.
    obs::absorb_metrics(rep.recorder(), svc.metrics());
    obs::absorb_metrics(rep.recorder(), obs::global_metrics());
    try {
      const std::string path = rep.write();
      obs::log_info("serve", "wrote bench report").with("path", path);
    } catch (const std::exception& e) {
      obs::log_error("serve", "cannot write bench report")
          .with("error", e.what());
      return 1;
    }
  }
  return rc;
}
