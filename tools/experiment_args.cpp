#include "experiment_args.h"

#include <cerrno>
#include <cstdlib>
#include <initializer_list>

#include "core/deploy.h"

namespace rdo::tools {

namespace {

ParseOutcome fail(const std::string& msg) { return {false, msg}; }

/// Strict strtod: the whole token must parse, no overflow.
bool parse_double(const char* s, double& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

/// Strict strtoll confined to int range.
bool parse_int(const char* s, int& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  if (v < -2147483648ll || v > 2147483647ll) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool one_of(const std::string& v, std::initializer_list<const char*> allowed) {
  for (const char* a : allowed) {
    if (v == a) return true;
  }
  return false;
}

}  // namespace

const char* experiment_usage() {
  return
      "rdo_experiment — deploy a model onto simulated RRAM crossbars\n\n"
      "  --model   mlp | lenet | resnet | vgg        (default mlp)\n"
      "  --scheme  plain | vawo | vawo* | pwt | vawo*+pwt\n"
      "  --cell    slc | mlc2                        (default slc)\n"
      "  --scope   per-weight | per-cell             (default per-weight)\n"
      "  --sigma   <double>   log-normal sigma, >= 0 (default 0.5)\n"
      "  --ddv     <double>   DDV share, in [0, 1]   (default 0)\n"
      "  --m       <int>      sharing granularity, >= 1 (default 16)\n"
      "  --bits    <int>      offset width, 1..16    (default 8)\n"
      "  --repeats <int>      programming cycles, >= 1 (default 3)\n"
      "  --seed    <uint64>\n"
      "  --json    <path>     write a schema-versioned result document\n";
}

ParseOutcome parse_experiment_args(int argc, const char* const* argv,
                                   ExperimentArgs& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = nullptr;
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    auto missing = [&]() { return fail("missing value for " + flag); };

    if (flag == "--help" || flag == "-h") {
      out.help = true;
    } else if (flag == "--model") {
      if ((value = next()) == nullptr) return missing();
      out.model = value;
      if (!one_of(out.model, {"mlp", "lenet", "resnet", "vgg"})) {
        return fail("unknown model '" + out.model +
                    "' (expected mlp|lenet|resnet|vgg)");
      }
    } else if (flag == "--scheme") {
      if ((value = next()) == nullptr) return missing();
      out.scheme = value;
      // Validated against the core scheme table (the inverse of
      // core::to_string) so the CLI can never drift from the library.
      if (!rdo::core::parse_scheme(out.scheme)) {
        return fail("unknown scheme '" + out.scheme +
                    "' (expected plain|vawo|vawo*|pwt|vawo*+pwt)");
      }
    } else if (flag == "--cell") {
      if ((value = next()) == nullptr) return missing();
      out.cell = value;
      if (!one_of(out.cell, {"slc", "mlc2"})) {
        return fail("unknown cell '" + out.cell + "' (expected slc|mlc2)");
      }
    } else if (flag == "--scope") {
      if ((value = next()) == nullptr) return missing();
      out.scope = value;
      if (!one_of(out.scope, {"per-weight", "per-cell"})) {
        return fail("unknown scope '" + out.scope +
                    "' (expected per-weight|per-cell)");
      }
    } else if (flag == "--sigma") {
      if ((value = next()) == nullptr) return missing();
      if (!parse_double(value, out.sigma) || out.sigma < 0.0) {
        return fail(std::string("--sigma expects a number >= 0, got '") +
                    value + "'");
      }
    } else if (flag == "--ddv") {
      if ((value = next()) == nullptr) return missing();
      if (!parse_double(value, out.ddv) || out.ddv < 0.0 || out.ddv > 1.0) {
        return fail(std::string("--ddv expects a number in [0, 1], got '") +
                    value + "'");
      }
    } else if (flag == "--m") {
      if ((value = next()) == nullptr) return missing();
      if (!parse_int(value, out.m) || out.m < 1) {
        return fail(std::string("--m expects an integer >= 1, got '") + value +
                    "'");
      }
    } else if (flag == "--bits") {
      if ((value = next()) == nullptr) return missing();
      if (!parse_int(value, out.offset_bits) || out.offset_bits < 1 ||
          out.offset_bits > 16) {
        return fail(std::string("--bits expects an integer in [1, 16], "
                                "got '") +
                    value + "'");
      }
    } else if (flag == "--repeats") {
      if ((value = next()) == nullptr) return missing();
      if (!parse_int(value, out.repeats) || out.repeats < 1) {
        return fail(std::string("--repeats expects an integer >= 1, got '") +
                    value + "'");
      }
    } else if (flag == "--seed") {
      if ((value = next()) == nullptr) return missing();
      if (!parse_u64(value, out.seed)) {
        return fail(std::string("--seed expects an unsigned integer, got '") +
                    value + "'");
      }
    } else if (flag == "--json") {
      if ((value = next()) == nullptr) return missing();
      out.json_path = value;
      if (out.json_path.empty()) return fail("--json expects a path");
    } else {
      return fail("unknown flag " + flag);
    }
  }
  return {};
}

}  // namespace rdo::tools
