// validate_bench_json — schema check for BENCH_*.json documents and
// (with --trace) Perfetto trace files.
//
//   validate_bench_json BENCH_ablation_design.json [more.json ...]
//   validate_bench_json --trace trace_ablation_design.json
//
// Exit codes (distinct so tests and CI can tell failure modes apart):
//   0  every file parses and conforms to the expected layout
//      (obs/report.h for BENCH documents, obs/trace.h for traces)
//   1  at least one file parsed but violates the schema
//   2  usage error (no files given / unknown flag)
//   3  at least one file could not be read or is not valid JSON
// Schema violations dominate I/O errors when both occur.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/json.h"
#include "obs/report.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  bool trace_mode = false;
  int first_file = 1;
  if (argc > 1 && std::strcmp(argv[1], "--trace") == 0) {
    trace_mode = true;
    first_file = 2;
  } else if (argc > 1 && argv[1][0] == '-') {
    std::fprintf(stderr, "validate_bench_json: unknown flag %s\n", argv[1]);
    return 2;
  }
  if (first_file >= argc) {
    std::fprintf(stderr,
                 "usage: validate_bench_json [--trace] <file.json> "
                 "[more ...]\n");
    return 2;
  }
  int invalid = 0;
  int errors = 0;
  for (int i = first_file; i < argc; ++i) {
    const std::string path = argv[i];
    try {
      const rdo::obs::Json doc = rdo::obs::read_json_file(path);
      std::string err;
      if (trace_mode) {
        if (!rdo::obs::validate_trace_document(doc, &err)) {
          std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                       err.c_str());
          ++invalid;
          continue;
        }
        std::printf("%s: ok (%zu trace events)\n", path.c_str(),
                    doc.find("traceEvents")->size());
      } else {
        if (!rdo::obs::validate_bench_document(doc, &err)) {
          std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                       err.c_str());
          ++invalid;
          continue;
        }
        std::printf("%s: ok (schema_version %lld, name %s)\n", path.c_str(),
                    static_cast<long long>(
                        doc.find("schema_version")->as_int()),
                    doc.find("name")->as_string().c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: ERROR: %s\n", path.c_str(), e.what());
      ++errors;
    }
  }
  if (invalid > 0) return 1;
  if (errors > 0) return 3;
  return 0;
}
