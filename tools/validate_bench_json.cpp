// validate_bench_json — schema check for BENCH_*.json documents,
// (with --trace) Perfetto trace files, and (with --stats) saved
// `stats` responses from rdo_serve.
//
//   validate_bench_json BENCH_ablation_design.json [more.json ...]
//   validate_bench_json --trace trace_ablation_design.json
//   validate_bench_json --stats stats_response.json
//
// Exit codes (distinct so tests and CI can tell failure modes apart):
//   0  every file parses and conforms to the expected layout
//      (obs/report.h for BENCH documents, obs/trace.h for traces,
//      serve stats envelope + obs/metrics.h for --stats)
//   1  at least one file parsed but violates the schema
//   2  usage error (no files given / unknown flag)
//   3  at least one file could not be read or is not valid JSON
// Schema violations dominate I/O errors when both occur.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace {

bool scheck(bool cond, const std::string& what, std::string* err) {
  if (cond) return true;
  if (err != nullptr) *err = what;
  return false;
}

/// One rdo_serve `stats` response line: {"id":..., "ok":true,
/// "result": {counters..., gauges..., "metrics": <registry snapshot>}}.
bool validate_stats_response(const rdo::obs::Json& doc, std::string* err) {
  if (!scheck(doc.is_object(), "stats response is not an object", err)) {
    return false;
  }
  const rdo::obs::Json* ok = doc.find("ok");
  if (!scheck(ok != nullptr && ok->is_bool() && ok->as_bool(),
              "response is not ok:true", err)) {
    return false;
  }
  const rdo::obs::Json* result = doc.find("result");
  if (!scheck(result != nullptr && result->is_object(),
              "missing result object", err)) {
    return false;
  }
  for (const char* key :
       {"requests", "ok", "bad_request", "overloaded", "internal",
        "plan_hits", "plan_misses", "plan_evictions", "backend_creates",
        "backend_reuses", "slow_requests", "cached_plans",
        "pooled_backends", "active", "queued"}) {
    const rdo::obs::Json* v = result->find(key);
    if (!scheck(v != nullptr && v->is_int(),
                std::string("result.") + key + " is not an int", err)) {
      return false;
    }
  }
  for (const char* key : {"uptime_seconds", "plan_hit_rate"}) {
    const rdo::obs::Json* v = result->find(key);
    if (!scheck(v != nullptr && v->is_number(),
                std::string("result.") + key + " is not a number", err)) {
      return false;
    }
  }
  const rdo::obs::Json* up = result->find("uptime_seconds");
  if (!scheck(up->as_double() >= 0.0, "negative uptime_seconds", err)) {
    return false;
  }
  const rdo::obs::Json* metrics = result->find("metrics");
  if (!scheck(metrics != nullptr, "missing result.metrics", err)) {
    return false;
  }
  std::string merr;
  if (!rdo::obs::validate_metrics_json(*metrics, &merr)) {
    return scheck(false, "result.metrics: " + merr, err);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool trace_mode = false;
  bool stats_mode = false;
  int first_file = 1;
  if (argc > 1 && std::strcmp(argv[1], "--trace") == 0) {
    trace_mode = true;
    first_file = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "--stats") == 0) {
    stats_mode = true;
    first_file = 2;
  } else if (argc > 1 && argv[1][0] == '-') {
    std::fprintf(stderr, "validate_bench_json: unknown flag %s\n", argv[1]);
    return 2;
  }
  if (first_file >= argc) {
    std::fprintf(stderr,
                 "usage: validate_bench_json [--trace|--stats] <file.json> "
                 "[more ...]\n");
    return 2;
  }
  int invalid = 0;
  int errors = 0;
  for (int i = first_file; i < argc; ++i) {
    const std::string path = argv[i];
    try {
      const rdo::obs::Json doc = rdo::obs::read_json_file(path);
      std::string err;
      if (trace_mode) {
        if (!rdo::obs::validate_trace_document(doc, &err)) {
          std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                       err.c_str());
          ++invalid;
          continue;
        }
        std::printf("%s: ok (%zu trace events)\n", path.c_str(),
                    doc.find("traceEvents")->size());
      } else if (stats_mode) {
        if (!validate_stats_response(doc, &err)) {
          std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                       err.c_str());
          ++invalid;
          continue;
        }
        std::printf("%s: ok (%lld requests)\n", path.c_str(),
                    static_cast<long long>(
                        doc.find("result")->find("requests")->as_int()));
      } else {
        if (!rdo::obs::validate_bench_document(doc, &err)) {
          std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                       err.c_str());
          ++invalid;
          continue;
        }
        std::printf("%s: ok (schema_version %lld, name %s)\n", path.c_str(),
                    static_cast<long long>(
                        doc.find("schema_version")->as_int()),
                    doc.find("name")->as_string().c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: ERROR: %s\n", path.c_str(), e.what());
      ++errors;
    }
  }
  if (invalid > 0) return 1;
  if (errors > 0) return 3;
  return 0;
}
