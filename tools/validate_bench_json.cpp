// validate_bench_json — schema check for BENCH_*.json documents.
//
//   validate_bench_json BENCH_ablation_design.json [more.json ...]
//
// Exits 0 when every file parses and conforms to the layout in
// obs/report.h (schema_version 1); prints the first violation and exits
// 1 otherwise. CI runs this against the artifacts each bench produces.
#include <cstdio>
#include <string>

#include "obs/json.h"
#include "obs/report.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: validate_bench_json <BENCH_*.json> [more ...]\n");
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    try {
      const rdo::obs::Json doc = rdo::obs::read_json_file(path);
      std::string err;
      if (!rdo::obs::validate_bench_document(doc, &err)) {
        std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), err.c_str());
        ++bad;
        continue;
      }
      std::printf("%s: ok (schema_version %lld, name %s)\n", path.c_str(),
                  static_cast<long long>(
                      doc.find("schema_version")->as_int()),
                  doc.find("name")->as_string().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: ERROR: %s\n", path.c_str(), e.what());
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}
