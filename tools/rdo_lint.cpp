// rdo_lint — driver for the src/lint/ determinism & contract analyzer.
//
// The analysis itself (lexer, rules, suppressions, baseline, emitters)
// lives in rdo_lint_lib so tests can drive it in-process; this file only
// parses flags, expands roots, and routes findings to an emitter.
//
// Exit codes (a contract CI asserts on):
//   0  clean — no fresh findings, no stale baseline entries
//   1  fresh findings, or baseline entries no longer matched (ratchet)
//   2  usage error or I/O failure (unreadable file, broken baseline)
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/baseline.h"
#include "lint/emit.h"
#include "lint/engine.h"
#include "lint/rule.h"

namespace {

namespace fs = std::filesystem;
using rdo::lint::Baseline;
using rdo::lint::BaselineResult;
using rdo::lint::Engine;
using rdo::lint::Finding;

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: rdo_lint [options] <dir-or-file>...\n"
               "\n"
               "options:\n"
               "  --format text|json|sarif  output format (default text)\n"
               "  --output FILE             write the report to FILE instead of\n"
               "                            stderr (text) / stdout (json, sarif)\n"
               "  --baseline FILE           absorb findings listed in FILE; fresh\n"
               "                            findings and stale entries exit 1\n"
               "  --update-baseline         rewrite --baseline FILE from the\n"
               "                            current findings, then exit 0\n"
               "  --relative-to DIR         report paths relative to DIR so the\n"
               "                            baseline is checkout-independent\n"
               "  --exclude SUBSTRING       skip paths containing SUBSTRING\n"
               "                            (repeatable)\n"
               "  --rules a,b,c             run only the named rules\n"
               "  --list-rules              print the rule catalogue and exit\n");
}

/// Path as spelled in findings: relative to --relative-to when given
/// (and the file is under it), the original spelling otherwise.
std::string report_path(const fs::path& file, const fs::path& rel_base) {
  if (rel_base.empty()) return file.generic_string();
  std::error_code ec;
  const fs::path rel = fs::relative(file, rel_base, ec);
  if (ec || rel.empty() || *rel.begin() == "..") return file.generic_string();
  return rel.generic_string();
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    std::string piece = s.substr(start, comma - start);
    while (!piece.empty() && piece.front() == ' ') piece.erase(0, 1);
    while (!piece.empty() && piece.back() == ' ') piece.pop_back();
    if (!piece.empty()) out.push_back(std::move(piece));
    start = comma + 1;
  }
  return out;
}

int run(int argc, char** argv) {
  std::string format = "text";
  std::string output;
  std::string baseline_path;
  bool update_baseline = false;
  fs::path rel_base;
  std::vector<std::string> excludes;
  std::vector<std::string> only_rules;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rdo_lint: %s needs a value\n", flag);
        usage(stderr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--format") {
      format = need_value("--format");
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "rdo_lint: unknown format: %s\n", format.c_str());
        return 2;
      }
    } else if (arg == "--output") {
      output = need_value("--output");
    } else if (arg == "--baseline") {
      baseline_path = need_value("--baseline");
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--relative-to") {
      rel_base = fs::path(need_value("--relative-to"));
    } else if (arg == "--exclude") {
      excludes.push_back(need_value("--exclude"));
    } else if (arg == "--rules") {
      only_rules = split_commas(need_value("--rules"));
    } else if (arg == "--list-rules") {
      const Engine engine;
      for (const auto& r : engine.rules()) {
        std::printf("%-18s %s\n", r->name(), r->description());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "rdo_lint: unknown option: %s\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    usage(stderr);
    return 2;
  }
  if (update_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "rdo_lint: --update-baseline needs --baseline\n");
    return 2;
  }

  Engine engine;
  engine.set_enabled(only_rules);  // throws std::invalid_argument -> exit 2

  const std::vector<fs::path> files =
      rdo::lint::collect_files(roots, excludes);

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::vector<Finding> f =
        engine.lint_file(file, report_path(file, rel_base));
    findings.insert(findings.end(), std::make_move_iterator(f.begin()),
                    std::make_move_iterator(f.end()));
  }

  if (update_baseline) {
    rdo::lint::save_baseline(rdo::lint::make_baseline(findings),
                             baseline_path);
    std::fprintf(stderr,
                 "rdo_lint: wrote %s (%zu finding(s) across %zu file(s))\n",
                 baseline_path.c_str(), findings.size(), files.size());
    return 0;
  }

  const bool baseline_used = !baseline_path.empty();
  BaselineResult ratchet;
  if (baseline_used) {
    const Baseline b = rdo::lint::load_baseline(baseline_path);
    ratchet = rdo::lint::apply_baseline(findings, b);
  } else {
    ratchet.fresh = static_cast<int>(findings.size());
  }

  // Emit. Text defaults to stderr (the PR 5 tool's stream, so existing
  // `2>&1 | grep` habits keep working); structured formats to stdout.
  std::string report;
  if (format == "text") {
    report = rdo::lint::format_text(findings, static_cast<int>(files.size()));
  } else if (format == "json") {
    report = rdo::lint::findings_json(findings).dump(2) + "\n";
  } else {
    report =
        rdo::lint::sarif_document(engine, findings, baseline_used).dump(2) +
        "\n";
  }
  if (!output.empty()) {
    std::ofstream out(output, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "rdo_lint: cannot write %s\n", output.c_str());
      return 2;
    }
    out << report;
    if (!out.flush()) {
      std::fprintf(stderr, "rdo_lint: cannot write %s\n", output.c_str());
      return 2;
    }
  } else if (format == "text") {
    std::fputs(report.c_str(), stderr);
  } else {
    std::fputs(report.c_str(), stdout);
  }

  // The ratchet's stale side: entries the codebase no longer triggers
  // must leave the ledger, so debt can only shrink.
  for (const auto& e : ratchet.stale) {
    std::fprintf(stderr,
                 "rdo_lint: stale baseline entry (%d unmatched): %s [%s] %s\n",
                 e.count, e.file.c_str(), e.rule.c_str(), e.context.c_str());
  }
  if (!ratchet.stale.empty()) {
    std::fprintf(stderr,
                 "rdo_lint: baseline is stale; rerun with --update-baseline "
                 "to shrink it\n");
  }
  return (ratchet.fresh > 0 || !ratchet.stale.empty()) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "rdo_lint: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rdo_lint: %s\n", e.what());
    return 2;
  }
}
