// rdo_lint — project-invariant checker for the deployment stack.
//
//   rdo_lint <dir-or-file>...     exit 0 clean, 1 violations, 2 usage/IO
//
// Three repo invariants that neither the compiler nor clang-tidy enforce,
// checked textually over every .cpp/.h under the given roots (comments,
// string and character literals are stripped first, so naming a pattern
// in a diagnostic or a regex does not trip the checker):
//
//   naked-read        every raw `stream.read(...)` must be followed
//                     within three lines by a stream-state check
//                     (`gcount`, `if (!f ...`, or an RDO_CHECK) — in
//                     practice: route binary reads through a read_exact
//                     helper. A read whose success is never examined is
//                     how a truncated file becomes silent garbage.
//   nondeterminism    `rand()`, `srand()`, `time()` and
//                     `std::random_device` are banned: every random
//                     draw must come from a seeded rdo::nn::Rng, or
//                     deterministic BENCH sections and the cross-backend
//                     parity gate break.
//   unordered-iter    `std::unordered_map` / `std::unordered_set` are
//                     banned: their iteration order is
//                     implementation-defined, and hashed containers have
//                     repeatedly leaked that order into "deterministic"
//                     output. Use std::map or a sorted vector.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

/// Replace comments, string literals and char literals with spaces,
/// preserving newlines so reported line numbers stay exact.
std::string strip_non_code(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { Code, LineComment, BlockComment, String, Char };
  State st = State::Code;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case State::Code:
        if (c == '/' && next == '/') {
          st = State::LineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::BlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = State::String;
          out += ' ';
        } else if (c == '\'') {
          st = State::Char;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          st = State::Code;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          st = State::Code;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::String:
      case State::Char: {
        const char quote = st == State::String ? '"' : '\'';
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == quote) {
          st = State::Code;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

struct Violation {
  fs::path file;
  std::size_t line;
  std::string rule;
  std::string message;
};

void lint_file(const fs::path& path, std::vector<Violation>& out) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string stripped = strip_non_code(ss.str());

  std::vector<std::string> lines;
  std::string line;
  std::istringstream ls(stripped);
  while (std::getline(ls, line)) lines.push_back(line);

  static const std::regex naked_read(R"((^|[^\w])\w+(\.|->)read\s*\()");
  static const std::regex state_check(
      R"(gcount|RDO_CHECK|if\s*\(\s*!|\|\|\s*!)");
  static const std::regex nondet(
      R"((^|[^\w:.])(rand|srand|time)\s*\(|std\s*::\s*(rand|srand|time)\s*\(|random_device)");
  static const std::regex unordered(R"(unordered_(map|set)\s*<)");

  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i], naked_read)) {
      bool checked = false;
      for (std::size_t j = i; j < lines.size() && j <= i + 3; ++j) {
        if (std::regex_search(lines[j], state_check)) {
          checked = true;
          break;
        }
      }
      if (!checked) {
        out.push_back({path, i + 1, "naked-read",
                       "stream read without a state check within 3 lines; "
                       "route binary reads through a read_exact helper"});
      }
    }
    if (std::regex_search(lines[i], nondet)) {
      out.push_back({path, i + 1, "nondeterminism",
                     "rand()/srand()/time()/random_device are banned; draw "
                     "from a seeded rdo::nn::Rng instead"});
    }
    if (std::regex_search(lines[i], unordered)) {
      out.push_back({path, i + 1, "unordered-iter",
                     "hashed-container iteration order is nondeterministic "
                     "and leaks into BENCH sections; use std::map or a "
                     "sorted vector"});
    }
  }
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".hpp" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: rdo_lint <dir-or-file>...\n");
    return 2;
  }
  std::vector<Violation> violations;
  int files = 0;
  try {
    for (int i = 1; i < argc; ++i) {
      const fs::path root(argv[i]);
      if (fs::is_directory(root)) {
        std::vector<fs::path> paths;
        for (const auto& entry : fs::recursive_directory_iterator(root)) {
          if (entry.is_regular_file() && lintable(entry.path())) {
            paths.push_back(entry.path());
          }
        }
        std::sort(paths.begin(), paths.end());
        for (const auto& p : paths) {
          lint_file(p, violations);
          ++files;
        }
      } else if (fs::is_regular_file(root)) {
        lint_file(root, violations);
        ++files;
      } else {
        std::fprintf(stderr, "rdo_lint: no such file or directory: %s\n",
                     argv[i]);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rdo_lint: %s\n", e.what());
    return 2;
  }
  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.string().c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  std::fprintf(stderr, "rdo_lint: %d file(s), %zu violation(s)\n", files,
               violations.size());
  return violations.empty() ? 0 : 1;
}
