// Scenario: architect's design-space exploration of the sharing
// granularity m.
//
// m trades three quantities against each other (paper Secs. III-A, IV-B):
//   * accuracy    — finer m = more offsets = better compensation;
//   * registers   — H = S*l/m offset registers per crossbar (Eq. 9);
//   * adder cost  — the m-input Sum adder grows with m while the
//                   register file shrinks, so area/power are non-monotone.
// This example sweeps m, prints the hardware accounting from the ISAAC
// tile cost model, checks the Sum+Multi stage against the 100 ns clock,
// and measures the deployed accuracy at three representative m values.
#include <cstdio>

#include "arch/isaac_cost.h"
#include "core/deploy.h"
#include "core/plan.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "quant/act_quant.h"

using namespace rdo;

int main() {
  const arch::TileParams tp;
  const arch::GateCosts g;

  std::printf("=== hardware accounting per crossbar (2-bit MLC, 8-bit "
              "offsets) ===\n");
  std::printf("%-6s %-10s %-10s %-12s %-12s %-10s\n", "m", "registers",
              "adder FAs", "area/um2", "power/uW", "delay/ns");
  for (int m : {8, 16, 32, 64, 128}) {
    const arch::OffsetHardware hw = arch::offset_hardware(m, 8, tp);
    std::printf("%-6d %-10lld %-10d %-12.0f %-12.1f %-10.1f\n", m,
                hw.register_bits / 8, hw.adder_fa, hw.area_um2(g),
                hw.power_uw(g), arch::sum_multi_delay_ns(m, g));
  }
  std::printf("(all delays must stay below the %.0f ns ISAAC clock)\n",
              tp.clock_ns);

  // Accuracy side of the trade-off on a small deployed model.
  data::SyntheticSpec spec = data::mnist_like();
  spec.train_per_class = 60;
  spec.test_per_class = 20;
  const data::SyntheticDataset ds = data::make_synthetic(spec);
  nn::Rng rng(9);
  nn::Sequential net;
  net.emplace<nn::Flatten>();
  net.emplace<quant::ActQuant>(8);
  net.emplace<nn::Dense>(28 * 28, 48, rng);
  net.emplace<nn::ReLU>();
  net.emplace<quant::ActQuant>(8);
  net.emplace<nn::Dense>(48, 10, rng);
  nn::SGD opt(net.params(), 0.05f);
  for (int e = 0; e < 6; ++e) nn::train_epoch(net, opt, ds.train(), 32, rng);

  std::printf("\n=== accuracy vs m (VAWO*+PWT, MLC2, sigma 0.5) ===\n");
  std::printf("%-6s %-10s %-14s %-14s\n", "m", "accuracy", "tile area ovh",
              "tile power ovh");
  for (int m : {16, 64, 128}) {
    core::DeployOptions o;
    o.scheme = core::Scheme::VAWOStarPWT;
    o.offsets.m = m;
    o.cell = {rram::CellKind::MLC2, 200.0};
    o.variation.sigma = 0.5;
    o.seed = 13;
    const float acc =
        core::run_scheme(net, o, ds.train(), ds.test(), 2).mean_accuracy;

    const core::DeploymentPlan plan = core::compile_plan(net, o, ds.train());
    const double ratio = plan.assigned_read_power() / plan.plain_read_power();
    const arch::TileOverhead ov = arch::tile_overhead(m, 8, ratio, tp, g);
    std::printf("%-6d %8.1f%% %12.1f%% %12.1f%%\n", m, 100 * acc,
                ov.area_pct, ov.power_pct);
  }
  std::printf(
      "\ndesign rule of thumb: m = 16 buys the best accuracy at the lowest\n"
      "power overhead; m = 128 saves area on registers but pays in adders\n"
      "and accuracy (paper Table II + Fig. 5).\n");
  return 0;
}
