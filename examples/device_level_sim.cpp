// Scenario: run an entire network on the device-level simulator.
//
// Everything the accelerator does happens on simulated hardware here:
// bit-sliced cells in 128x128-class crossbar arrays, per-device
// variation, group-by-group wordline activation, digital Sum+Multi offset
// units, complement post-processing, the ISAAC weight shift, and digital
// ReLU/bias between layers. sim::DeviceSimBackend is the
// slow-but-faithful counterpart to core::EffectiveWeightBackend: both
// execute the same compiled core::DeploymentPlan, and the parity test
// suite proves their deterministic pipeline counters are bit-identical.
// This example tells the same accuracy story entirely in devices, plus
// ISAAC bit-serial input streaming and the energy model.
#include <cstdio>

#include "arch/energy.h"
#include "core/plan.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "sim/device_backend.h"

using namespace rdo;

int main() {
  data::SyntheticSpec spec = data::mnist_like();
  spec.height = spec.width = 12;
  spec.train_per_class = 60;
  spec.test_per_class = 12;
  spec.noise = 0.15;
  spec.max_shift = 1.0;
  const data::SyntheticDataset ds = data::make_synthetic(spec);

  nn::Rng rng(3);
  nn::Sequential net;
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(144, 32, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Dense>(32, 10, rng);
  nn::SGD opt(net.params(), 0.1f);
  for (int e = 0; e < 15; ++e) nn::train_epoch(net, opt, ds.train(), 16, rng);
  const float ideal = nn::evaluate(net, ds.test(), 64).accuracy;
  std::printf("ideal (float) accuracy: %.2f%%\n\n", 100 * ideal);

  core::DeployOptions base;
  base.cell = {rram::CellKind::MLC2, 200.0};
  base.variation.sigma = 0.4;
  base.offsets.m = 16;
  base.seed = 7;

  // Plain deployment: CTW = NTW, no offsets.
  core::DeployOptions plain_opt = base;
  plain_opt.scheme = core::Scheme::Plain;
  const core::DeploymentPlan plain_plan =
      core::compile_plan(net, plain_opt, ds.train());
  sim::DeviceSimBackend plain(plain_plan, net);
  plain.program_cycle(0);
  std::printf("device-level, plain:              %.2f%%  (%lld crossbars)\n",
              100 * plain.evaluate(ds.test()),
              static_cast<long long>(plain.crossbar_count()));

  // VAWO* CTWs with digital offsets.
  core::DeployOptions vawo_opt = base;
  vawo_opt.scheme = core::Scheme::VAWOStar;
  const core::DeploymentPlan vawo_plan =
      core::compile_plan(net, vawo_opt, ds.train());
  sim::DeviceSimBackend vawo(vawo_plan, net);
  vawo.program_cycle(0);
  std::printf("device-level, VAWO*:              %.2f%%\n",
              100 * vawo.evaluate(ds.test()));

  // Post-writing tuning on this cycle's measured conductances.
  core::DeployOptions full_opt = base;
  full_opt.scheme = core::Scheme::VAWOStarPWT;
  full_opt.pwt.epochs = 1;
  full_opt.pwt.max_samples = 200;
  const core::DeploymentPlan full_plan =
      core::compile_plan(net, full_opt, ds.train());
  sim::DeviceSimBackend full(full_plan, net);
  full.program_cycle(0);
  full.tune(ds.train());
  std::printf("device-level, VAWO* + PWT:        %.2f%%\n",
              100 * full.evaluate(ds.test()));

  // ISAAC bit-serial input streaming on one sample (layer 0).
  std::printf("\nbit-serial check (first test sample, layer 0 outputs):\n");
  const std::int64_t sample = ds.test_images.size() / ds.test_images.dim(0);
  std::vector<double> x(static_cast<std::size_t>(sample));
  for (std::int64_t j = 0; j < sample; ++j) {
    x[static_cast<std::size_t>(j)] = ds.test_images[j];
  }
  const auto logits = full.forward(x);
  std::printf("  logits[0..3] via full-precision inputs: %.3f %.3f %.3f\n",
              logits[0], logits[1], logits[2]);

  // Energy estimate for one inference.
  arch::VmmGeometry g;
  g.m = 16;
  const double pj = arch::network_energy_pj(
      full.crossbar_count(), /*vmm_count=*/1, g, 128.0 * 128.0 * 0.5);
  std::printf("\nestimated energy per inference: %.2f nJ (%lld crossbars)\n",
              pj * 1e-3, static_cast<long long>(full.crossbar_count()));
  return 0;
}
