// Scenario: study how the *composition* of resistance variation affects
// each mitigation strategy.
//
// The paper's core critique of prior work is that mapping-based methods
// assume the deviation of a device is stable across programming cycles —
// true for device-to-device variation (DDV), false for cycle-to-cycle
// variation (CCV). This example deploys the same trained model while
// sweeping the DDV share of a fixed total variance, and contrasts:
//   * plain            (no mitigation)
//   * VAWO* only       (a-priori statistics: insensitive to the split)
//   * VAWO*+PWT        (posteriori measurement: handles any split)
// It also compares the paper's per-weight variation scope with the
// per-cell (bit-sliced) scope.
#include <cstdio>

#include "core/deploy.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "quant/act_quant.h"

using namespace rdo;

namespace {

float run(nn::Sequential& net, const data::SyntheticDataset& ds,
          core::Scheme scheme, double ddv_fraction,
          rram::VariationScope scope) {
  core::DeployOptions o;
  o.scheme = scheme;
  o.offsets.m = 16;
  o.cell = {rram::CellKind::SLC, 200.0};
  o.variation.sigma = 0.4;
  o.variation.ddv_fraction = ddv_fraction;
  o.variation.scope = scope;
  o.seed = 3;
  return core::run_scheme(net, o, ds.train(), ds.test(), 3).mean_accuracy;
}

}  // namespace

int main() {
  data::SyntheticSpec spec = data::mnist_like();
  spec.train_per_class = 60;
  spec.test_per_class = 20;
  const data::SyntheticDataset ds = data::make_synthetic(spec);

  nn::Rng rng(5);
  nn::Sequential net;
  net.emplace<nn::Flatten>();
  net.emplace<quant::ActQuant>(8);
  net.emplace<nn::Dense>(28 * 28, 64, rng);
  net.emplace<nn::ReLU>();
  net.emplace<quant::ActQuant>(8);
  net.emplace<nn::Dense>(64, 10, rng);
  nn::SGD opt(net.params(), 0.05f);
  for (int e = 0; e < 6; ++e) nn::train_epoch(net, opt, ds.train(), 32, rng);
  std::printf("ideal accuracy: %.2f%%\n",
              100 * nn::evaluate(net, ds.test(), 64).accuracy);

  std::printf("\n-- DDV/CCV split (total sigma fixed at 0.4, per-weight "
              "scope) --\n");
  std::printf("%-22s %-9s %-9s %-9s\n", "DDV share of variance", "plain",
              "VAWO*", "VAWO*+PWT");
  for (double ddv : {0.0, 0.5, 1.0}) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", 100 * ddv);
    std::printf("%-22s %7.1f%% %8.1f%% %8.1f%%\n", label,
                100 * run(net, ds, core::Scheme::Plain, ddv,
                          rram::VariationScope::PerWeight),
                100 * run(net, ds, core::Scheme::VAWOStar, ddv,
                          rram::VariationScope::PerWeight),
                100 * run(net, ds, core::Scheme::VAWOStarPWT, ddv,
                          rram::VariationScope::PerWeight));
  }
  std::printf(
      "\nPWT measures the *actual* post-writing conductances, so the full\n"
      "method is strong regardless of how variance splits into DDV/CCV —\n"
      "the property mapping-based methods lack (paper Sec. I).\n");

  std::printf("\n-- variation scope (pure CCV, sigma 0.4) --\n");
  std::printf("%-22s %-9s %-9s %-9s\n", "scope", "plain", "VAWO*",
              "VAWO*+PWT");
  for (auto scope :
       {rram::VariationScope::PerWeight, rram::VariationScope::PerCell}) {
    std::printf("%-22s %7.1f%% %8.1f%% %8.1f%%\n",
                scope == rram::VariationScope::PerWeight
                    ? "per-weight (paper)"
                    : "per-cell (Fig. 3)",
                100 * run(net, ds, core::Scheme::Plain, 0.0, scope),
                100 * run(net, ds, core::Scheme::VAWOStar, 0.0, scope),
                100 * run(net, ds, core::Scheme::VAWOStarPWT, 0.0, scope));
  }
  return 0;
}
