// Scenario: deploy a trained LeNet classifier onto an RRAM accelerator.
//
// The full production flow a user of this library would run:
//   1. train LeNet in float                      (rdo::nn / rdo::models)
//   2. characterize the device (build the E[R(v)]/Var[R(v)] LUT —
//      done internally by core::compile_plan from the variation model)
//   3. deploy with VAWO* + PWT on SLC crossbars   (rdo::core)
//   4. report accuracy across the variation sweep, device reading power,
//      crossbar count and the ISAAC tile overhead  (rdo::arch)
#include <cstdio>

#include "arch/isaac_cost.h"
#include "core/deploy.h"
#include "core/plan.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "nn/optimizer.h"
#include "nn/parallel.h"
#include "nn/trainer.h"

using namespace rdo;

int main() {
  // 1. Data + training.
  data::SyntheticSpec spec = data::mnist_like();
  spec.train_per_class = 60;
  spec.test_per_class = 20;
  const data::SyntheticDataset ds = data::make_synthetic(spec);

  nn::Rng rng(7);
  auto net = models::make_lenet({}, rng);
  nn::SGD opt(net->params(), 0.02f, 0.9f, 1e-4f);
  for (int e = 0; e < 10; ++e) {
    const auto st = nn::train_epoch(*net, opt, ds.train(), 32, rng);
    if (e % 3 == 0) {
      std::printf("train epoch %d: loss %.3f acc %.3f\n", e, st.loss,
                  st.accuracy);
    }
  }
  const float ideal = nn::evaluate(*net, ds.test(), 64).accuracy;
  std::printf("\nideal accuracy: %.2f%%\n", 100 * ideal);

  // 2+3. Deploy across the variation sweep. Each configuration compiles
  // once into a shared DeploymentPlan; the programming-cycle trials are
  // Monte-Carlo repeats (each cycle's devices are seeded from
  // Rng::split(trial)) running in parallel on private backend clones of
  // the trained network — results are bit-identical to the serial
  // core::run_scheme for any RDO_THREADS.
  std::printf("\ndeploying with %d threads (RDO_THREADS to override)\n",
              nn::thread_count());
  std::printf("\n%-8s %-10s %-12s\n", "sigma", "plain", "VAWO*+PWT");
  for (double sigma : {0.2, 0.3, 0.5}) {
    core::DeployOptions base;
    base.offsets.m = 16;
    base.cell = {rram::CellKind::SLC, 200.0};
    base.variation.sigma = sigma;
    base.seed = 11;

    core::DeployOptions plain = base;
    plain.scheme = core::Scheme::Plain;
    core::DeployOptions full = base;
    full.scheme = core::Scheme::VAWOStarPWT;

    const float a_plain =
        core::run_scheme_parallel(*net, plain, ds.train(), ds.test(), 2)
            .mean_accuracy;
    const float a_full =
        core::run_scheme_parallel(*net, full, ds.train(), ds.test(), 2)
            .mean_accuracy;
    std::printf("%-8.1f %8.2f%% %10.2f%%\n", sigma, 100 * a_plain,
                100 * a_full);
  }

  // 4. Hardware accounting for the deployed configuration, read off a
  // compiled plan (the trained network is never modified).
  core::DeployOptions o;
  o.scheme = core::Scheme::VAWOStar;
  o.offsets.m = 16;
  o.cell = {rram::CellKind::MLC2, 200.0};  // ISAAC stores 2 bits/cell
  o.variation.sigma = 0.5;
  const core::DeploymentPlan plan = core::compile_plan(*net, o, ds.train());
  const double ratio = plan.assigned_read_power() / plan.plain_read_power();
  std::printf("\ncrossbars (128x128, 2-bit MLC): %lld\n",
              static_cast<long long>(plan.total_crossbars()));
  std::printf("offset registers (Eq. 9): %lld\n",
              static_cast<long long>(plan.total_offset_registers()));
  std::printf("device reading power vs plain: %.1f%%\n", 100 * ratio);
  const arch::TileOverhead ov = arch::tile_overhead(16, 8, ratio);
  std::printf("ISAAC tile overhead: +%.3f mm^2 (%.1f%%), %+.2f mW (%.1f%%)\n",
              ov.area_mm2, ov.area_pct, ov.power_mw, ov.power_pct);
  return 0;
}
