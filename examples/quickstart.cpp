// Quickstart: train a small network, deploy it onto variation-afflicted
// RRAM crossbars, and watch digital offsets recover the accuracy.
//
// Walks the whole public API in under a minute:
//   1. synthesize a dataset            (rdo::data)
//   2. train a float network           (rdo::nn)
//   3. deploy with each scheme         (rdo::core) on SLC crossbars with
//      sigma = 0.5 log-normal variation (rdo::rram)
//   4. compare: plain / VAWO / VAWO* / PWT / VAWO*+PWT.
#include <cstdio>

#include "core/deploy.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "quant/act_quant.h"

using namespace rdo;

int main() {
  // 1. A small MNIST-like task.
  data::SyntheticSpec spec = data::mnist_like();
  spec.train_per_class = 80;
  spec.test_per_class = 30;
  const data::SyntheticDataset ds = data::make_synthetic(spec);

  // 2. A two-layer perceptron (every Dense layer maps onto crossbars).
  nn::Rng rng(1);
  nn::Sequential net;
  net.emplace<nn::Flatten>();
  net.emplace<quant::ActQuant>(8);
  net.emplace<nn::Dense>(28 * 28, 64, rng);
  net.emplace<nn::ReLU>();
  net.emplace<quant::ActQuant>(8);
  net.emplace<nn::Dense>(64, 10, rng);

  nn::SGD opt(net.params(), 0.05f);
  for (int epoch = 0; epoch < 4; ++epoch) {
    const nn::EpochStats st = nn::train_epoch(net, opt, ds.train(), 32, rng);
    std::printf("epoch %d  loss %.3f  train-acc %.3f\n", epoch, st.loss,
                st.accuracy);
  }
  const float ideal = nn::evaluate(net, ds.test(), 64).accuracy;
  std::printf("\nideal (float) test accuracy: %.2f%%\n\n", 100.0f * ideal);

  // 3+4. Deploy on SLC crossbars with sigma = 0.5 under every scheme.
  for (core::Scheme scheme :
       {core::Scheme::Plain, core::Scheme::VAWO, core::Scheme::VAWOStar,
        core::Scheme::PWT, core::Scheme::VAWOStarPWT}) {
    core::DeployOptions dopt;
    dopt.scheme = scheme;
    dopt.offsets.m = 16;
    dopt.cell = {rram::CellKind::SLC, 200.0};
    dopt.variation.sigma = 0.5;
    dopt.seed = 9;
    const core::SchemeResult res =
        core::run_scheme(net, dopt, ds.train(), ds.test(), /*repeats=*/2);
    std::printf("%-10s  accuracy %.2f%%\n", core::to_string(scheme),
                100.0f * res.mean_accuracy);
  }
  return 0;
}
