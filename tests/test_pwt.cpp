// Post-writing tuning (paper §III-D): offsets trained by backprop.
#include <gtest/gtest.h>

#include <cmath>

#include "core/deploy.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

using namespace rdo;
using namespace rdo::core;

namespace {

struct Fixture {
  data::SyntheticDataset ds;
  nn::Sequential net;

  Fixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.height = spec.width = 10;
    spec.classes = 6;
    spec.train_per_class = 25;
    spec.test_per_class = 10;
    spec.seed = 9;
    ds = data::make_synthetic(spec);
    nn::Rng rng(4);
    net.emplace<nn::Flatten>();
    net.emplace<nn::Dense>(100, 24, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Dense>(24, 6, rng);
    nn::SGD opt(net.params(), 0.1f);
    for (int e = 0; e < 8; ++e) {
      nn::train_epoch(net, opt, ds.train(), 16, rng);
    }
  }

  DeployOptions options(Scheme s) const {
    DeployOptions o;
    o.scheme = s;
    o.offsets.m = 8;
    o.cell = {rram::CellKind::SLC, 200.0};
    o.variation.sigma = 0.5;
    o.lut_k_sets = 8;
    o.lut_j_cycles = 8;
    o.pwt.epochs = 3;
    o.seed = 11;
    return o;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

float deployed_loss(nn::Layer& net, const nn::DataView& data) {
  return nn::evaluate(net, data, 64).loss;
}

}  // namespace

TEST(Pwt, TuningReducesTrainingLoss) {
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::PWT);
  Deployment dep(f.net, o);
  dep.prepare(f.ds.train());
  dep.program_cycle(0);
  const float loss_before = deployed_loss(f.net, f.ds.train());
  dep.tune(f.ds.train());
  const float loss_after = deployed_loss(f.net, f.ds.train());
  EXPECT_LT(loss_after, loss_before);
  dep.restore();
}

TEST(Pwt, TuningImprovesTestAccuracy) {
  auto& f = fixture();
  DeployOptions plain = f.options(Scheme::Plain);
  DeployOptions pwt = f.options(Scheme::PWT);
  const float a_plain =
      run_scheme(f.net, plain, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  const float a_pwt =
      run_scheme(f.net, pwt, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  EXPECT_GT(a_pwt, a_plain + 0.05f);
}

TEST(Pwt, OffsetsLandOnRegisterGrid) {
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::PWT);
  Deployment dep(f.net, o);
  dep.prepare(f.ds.train());
  dep.program_cycle(0);
  dep.tune(f.ds.train());
  for (const DeployedLayer& dl : dep.layers()) {
    for (float b : dl.offsets) {
      EXPECT_FLOAT_EQ(b, std::round(b));
      EXPECT_GE(b, -128.0f);
      EXPECT_LE(b, 127.0f);
    }
  }
  dep.restore();
}

TEST(Pwt, SomeOffsetsBecomeNonZero) {
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::PWT);
  Deployment dep(f.net, o);
  dep.prepare(f.ds.train());
  dep.program_cycle(0);
  dep.tune(f.ds.train());
  int nonzero = 0;
  for (const DeployedLayer& dl : dep.layers()) {
    for (float b : dl.offsets) {
      if (b != 0.0f) ++nonzero;
    }
  }
  EXPECT_GT(nonzero, 0);
  dep.restore();
}

TEST(Pwt, TuneIsNoOpForNonPwtSchemes) {
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::VAWOStar);
  Deployment dep(f.net, o);
  dep.prepare(f.ds.train());
  dep.program_cycle(0);
  std::vector<float> before;
  for (const DeployedLayer& dl : dep.layers()) {
    before.insert(before.end(), dl.offsets.begin(), dl.offsets.end());
  }
  dep.tune(f.ds.train());
  std::size_t k = 0;
  for (const DeployedLayer& dl : dep.layers()) {
    for (float b : dl.offsets) EXPECT_FLOAT_EQ(b, before[k++]);
  }
  dep.restore();
}

TEST(Pwt, EachCycleStartsFromAPrioriOffsets) {
  // After tuning cycle 0, programming cycle 1 must reset the working
  // offsets to the VAWO (a-priori) values before re-tuning.
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::VAWOStarPWT);
  Deployment dep(f.net, o);
  dep.prepare(f.ds.train());
  dep.program_cycle(0);
  dep.tune(f.ds.train());
  dep.program_cycle(1);
  std::size_t k = 0;
  for (const DeployedLayer& dl : dep.layers()) {
    for (std::size_t i = 0; i < dl.offsets.size(); ++i, ++k) {
      EXPECT_FLOAT_EQ(dl.offsets[i], dl.assign.offsets[i]);
    }
  }
  dep.restore();
}

TEST(Pwt, DoesNotHurtACleanDeployment) {
  // With zero variation there is nothing to repair; tuning must not make
  // the deployed network meaningfully worse.
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::PWT);
  o.variation.sigma = 0.0;
  Deployment dep(f.net, o);
  dep.prepare(f.ds.train());
  dep.program_cycle(0);
  const float clean = dep.evaluate(f.ds.test());
  dep.tune(f.ds.train());
  const float tuned = dep.evaluate(f.ds.test());
  EXPECT_GE(tuned, clean - 0.05f);
  dep.restore();
}

TEST(Pwt, ComplementedGroupsTuneWithFlippedSign) {
  // VAWO*+PWT on a high-variation deployment: tuning must still reduce
  // the training loss even when many groups are stored complemented.
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::VAWOStarPWT);
  o.variation.sigma = 0.8;
  Deployment dep(f.net, o);
  dep.prepare(f.ds.train());
  int complemented = 0;
  for (const DeployedLayer& dl : dep.layers()) {
    for (auto c : dl.assign.complemented) complemented += c;
  }
  ASSERT_GT(complemented, 0);  // the premise: some groups are inverted
  dep.program_cycle(0);
  const float before = deployed_loss(f.net, f.ds.train());
  dep.tune(f.ds.train());
  const float after = deployed_loss(f.net, f.ds.train());
  EXPECT_LT(after, before + 1e-4f);
  dep.restore();
}
