// Post-writing tuning (paper §III-D): offsets trained by backprop.
#include <gtest/gtest.h>

#include <cmath>

#include "core/backend.h"
#include "core/deploy.h"
#include "core/plan.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

using namespace rdo;
using namespace rdo::core;

namespace {

struct Fixture {
  data::SyntheticDataset ds;
  nn::Sequential net;

  Fixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.height = spec.width = 10;
    spec.classes = 6;
    spec.train_per_class = 25;
    spec.test_per_class = 10;
    spec.seed = 9;
    ds = data::make_synthetic(spec);
    nn::Rng rng(4);
    net.emplace<nn::Flatten>();
    net.emplace<nn::Dense>(100, 24, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Dense>(24, 6, rng);
    nn::SGD opt(net.params(), 0.1f);
    for (int e = 0; e < 8; ++e) {
      nn::train_epoch(net, opt, ds.train(), 16, rng);
    }
  }

  DeployOptions options(Scheme s) const {
    DeployOptions o;
    o.scheme = s;
    o.offsets.m = 8;
    o.cell = {rram::CellKind::SLC, 200.0};
    o.variation.sigma = 0.5;
    o.lut_k_sets = 8;
    o.lut_j_cycles = 8;
    o.pwt.epochs = 3;
    o.seed = 11;
    return o;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// Training loss of a backend's deployed twin (the caller's network never
/// carries deployed weights, so loss probes must go through the backend).
float deployed_loss(EffectiveWeightBackend& backend,
                    const nn::DataView& data) {
  return nn::evaluate(backend.network(), data, 64).loss;
}

}  // namespace

TEST(Pwt, TuningReducesTrainingLoss) {
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::PWT);
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EffectiveWeightBackend backend(plan, f.net);
  backend.program_cycle(0);
  const float loss_before = deployed_loss(backend, f.ds.train());
  backend.tune(f.ds.train());
  const float loss_after = deployed_loss(backend, f.ds.train());
  EXPECT_LT(loss_after, loss_before);
}

TEST(Pwt, TuningImprovesTestAccuracy) {
  auto& f = fixture();
  DeployOptions plain = f.options(Scheme::Plain);
  DeployOptions pwt = f.options(Scheme::PWT);
  const float a_plain =
      run_scheme(f.net, plain, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  const float a_pwt =
      run_scheme(f.net, pwt, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  EXPECT_GT(a_pwt, a_plain + 0.05f);
}

TEST(Pwt, OffsetsLandOnRegisterGrid) {
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::PWT);
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EffectiveWeightBackend backend(plan, f.net);
  backend.program_cycle(0);
  backend.tune(f.ds.train());
  for (const EffectiveWeightBackend::LayerState& ls : backend.layers()) {
    for (float b : ls.offsets) {
      EXPECT_FLOAT_EQ(b, std::round(b));
      EXPECT_GE(b, -128.0f);
      EXPECT_LE(b, 127.0f);
    }
  }
}

TEST(Pwt, SomeOffsetsBecomeNonZero) {
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::PWT);
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EffectiveWeightBackend backend(plan, f.net);
  backend.program_cycle(0);
  backend.tune(f.ds.train());
  int nonzero = 0;
  for (const EffectiveWeightBackend::LayerState& ls : backend.layers()) {
    for (float b : ls.offsets) {
      if (b != 0.0f) ++nonzero;
    }
  }
  EXPECT_GT(nonzero, 0);
}

TEST(Pwt, TuneIsNoOpForNonPwtSchemes) {
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::VAWOStar);
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EffectiveWeightBackend backend(plan, f.net);
  backend.program_cycle(0);
  std::vector<float> before;
  for (const EffectiveWeightBackend::LayerState& ls : backend.layers()) {
    before.insert(before.end(), ls.offsets.begin(), ls.offsets.end());
  }
  backend.tune(f.ds.train());
  std::size_t k = 0;
  for (const EffectiveWeightBackend::LayerState& ls : backend.layers()) {
    for (float b : ls.offsets) EXPECT_FLOAT_EQ(b, before[k++]);
  }
}

TEST(Pwt, EachCycleStartsFromAPrioriOffsets) {
  // After tuning cycle 0, programming cycle 1 must reset the working
  // offsets to the VAWO (a-priori) values from the plan before re-tuning.
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::VAWOStarPWT);
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EffectiveWeightBackend backend(plan, f.net);
  backend.program_cycle(0);
  backend.tune(f.ds.train());
  backend.program_cycle(1);
  for (std::size_t li = 0; li < backend.layers().size(); ++li) {
    const auto& offsets = backend.layers()[li].offsets;
    const auto& apriori = plan.layers[li].assign.offsets;
    ASSERT_EQ(offsets.size(), apriori.size());
    for (std::size_t i = 0; i < offsets.size(); ++i) {
      EXPECT_FLOAT_EQ(offsets[i], apriori[i]);
    }
  }
}

TEST(Pwt, DoesNotHurtACleanDeployment) {
  // With zero variation there is nothing to repair; tuning must not make
  // the deployed network meaningfully worse.
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::PWT);
  o.variation.sigma = 0.0;
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EffectiveWeightBackend backend(plan, f.net);
  backend.program_cycle(0);
  const float clean = backend.evaluate(f.ds.test());
  backend.tune(f.ds.train());
  const float tuned = backend.evaluate(f.ds.test());
  EXPECT_GE(tuned, clean - 0.05f);
}

TEST(Pwt, ComplementedGroupsTuneWithFlippedSign) {
  // VAWO*+PWT on a high-variation deployment: tuning must still reduce
  // the training loss even when many groups are stored complemented.
  auto& f = fixture();
  DeployOptions o = f.options(Scheme::VAWOStarPWT);
  o.variation.sigma = 0.8;
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  int complemented = 0;
  for (const PlanLayer& pl : plan.layers) {
    for (auto c : pl.assign.complemented) complemented += c;
  }
  ASSERT_GT(complemented, 0);  // the premise: some groups are inverted
  EffectiveWeightBackend backend(plan, f.net);
  backend.program_cycle(0);
  const float before = deployed_loss(backend, f.ds.train());
  backend.tune(f.ds.train());
  const float after = deployed_loss(backend, f.ds.train());
  EXPECT_LT(after, before + 1e-4f);
}
