// Dropout, LR schedules, AlexNet, RLut persistence, and the risk
// analysis module.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/analysis.h"
#include "data/synthetic.h"
#include "models/alexnet.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/lr_schedule.h"
#include "nn/optimizer.h"
#include "quant/act_quant.h"
#include "rram/rlut.h"

using namespace rdo;
using rdo::nn::Rng;
using rdo::nn::Tensor;

// ---------------------------------------------------------------- Dropout

TEST(Dropout, EvalModeIsIdentity) {
  nn::Dropout d(0.5f, 1);
  Tensor x({100});
  x.fill(2.0f);
  Tensor y = d.forward(x, /*train=*/false);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_FLOAT_EQ(y[i], 2.0f);
}

TEST(Dropout, TrainModeDropsAndRescales) {
  nn::Dropout d(0.5f, 2);
  Tensor x({10000});
  x.fill(1.0f);
  Tensor y = d.forward(x, true);
  int dropped = 0;
  for (std::int64_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) {
      ++dropped;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(dropped) / 10000.0, 0.5, 0.03);
  // Inverted dropout keeps the expectation.
  EXPECT_NEAR(y.sum() / 10000.0, 1.0, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  nn::Dropout d(0.5f, 3);
  Tensor x({1000});
  x.fill(1.0f);
  Tensor y = d.forward(x, true);
  Tensor g({1000});
  g.fill(1.0f);
  Tensor gi = d.backward(g);
  for (std::int64_t i = 0; i < 1000; ++i) {
    EXPECT_FLOAT_EQ(gi[i], y[i]);  // same mask, same scale
  }
}

TEST(Dropout, ZeroProbabilityIsIdentityInTraining) {
  nn::Dropout d(0.0f, 4);
  Tensor x({10});
  x.fill(3.0f);
  Tensor y = d.forward(x, true);
  EXPECT_FLOAT_EQ(y.sum(), 30.0f);
}

TEST(Dropout, RejectsBadProbability) {
  nn::Dropout d(1.0f, 5);
  Tensor x({2});
  EXPECT_THROW(d.forward(x, true), std::invalid_argument);
}

// ----------------------------------------------------------- LR schedules

TEST(LrSchedule, StepDecay) {
  nn::StepDecay s(1.0f, 10, 0.1f);
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(9), 1.0f);
  EXPECT_FLOAT_EQ(s.at(10), 0.1f);
  EXPECT_NEAR(s.at(25), 0.01f, 1e-7f);
  EXPECT_THROW(nn::StepDecay(1.0f, 0), std::invalid_argument);
}

TEST(LrSchedule, CosineDecayEndpoints) {
  nn::CosineDecay c(1.0f, 100, 0.0f);
  EXPECT_FLOAT_EQ(c.at(0), 1.0f);
  EXPECT_NEAR(c.at(50), 0.5f, 1e-3f);
  EXPECT_NEAR(c.at(100), 0.0f, 1e-6f);
  EXPECT_NEAR(c.at(150), 0.0f, 1e-6f);  // past the horizon
}

TEST(LrSchedule, CosineIsMonotoneDecreasing) {
  nn::CosineDecay c(0.5f, 40, 0.01f);
  for (int e = 1; e < 40; ++e) EXPECT_LE(c.at(e), c.at(e - 1) + 1e-7f);
}

TEST(LrSchedule, WarmupRampsLinearly) {
  nn::Warmup<nn::CosineDecay> w(nn::CosineDecay(1.0f, 100), 4);
  EXPECT_LT(w.at(0), w.at(1));
  EXPECT_LT(w.at(1), w.at(3));
  // After warmup, follows the inner schedule.
  EXPECT_FLOAT_EQ(w.at(10), nn::CosineDecay(1.0f, 100).at(10));
}

// ----------------------------------------------------------------- AlexNet

TEST(AlexNet, ForwardShape) {
  Rng rng(1);
  models::AlexNetConfig cfg;
  cfg.base_channels = 4;
  auto net = models::make_alexnet(cfg, rng);
  Tensor x({2, 3, 32, 32});
  x.uniform_init(rng, 0.0f, 1.0f);
  Tensor y = net->forward(x, /*train=*/false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 10);
}

TEST(AlexNet, TrainAndEvalModesDiffer) {
  // Dropout makes train-mode forward stochastic and eval deterministic.
  Rng rng(2);
  models::AlexNetConfig cfg;
  cfg.base_channels = 4;
  auto net = models::make_alexnet(cfg, rng);
  Tensor x({1, 3, 32, 32});
  x.uniform_init(rng, 0.0f, 1.0f);
  Tensor e1 = net->forward(x, false);
  Tensor e2 = net->forward(x, false);
  for (std::int64_t i = 0; i < e1.size(); ++i) {
    EXPECT_FLOAT_EQ(e1[i], e2[i]);
  }
  Tensor t1 = net->forward(x, true);
  Tensor t2 = net->forward(x, true);
  bool any_diff = false;
  for (std::int64_t i = 0; i < t1.size(); ++i) {
    if (t1[i] != t2[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AlexNet, HasSixCrossbarLayers) {
  Rng rng(3);
  models::AlexNetConfig cfg;
  cfg.base_channels = 4;
  auto net = models::make_alexnet(cfg, rng);
  std::vector<nn::Layer*> all;
  collect_layers(net.get(), all);
  int ops = 0;
  for (nn::Layer* l : all) {
    if (dynamic_cast<nn::MatrixOp*>(l)) ++ops;
  }
  EXPECT_EQ(ops, 6);  // 4 convs + 2 fc
}

// ------------------------------------------------------- RLut persistence

TEST(RLutIo, RoundTrip) {
  rram::WeightProgrammer prog({rram::CellKind::SLC, 200.0}, 8, {0.5, 0.0});
  const rram::RLut lut = rram::RLut::build(prog, 8, 8, Rng(4));
  const std::uint64_t fp = rram::RLut::fingerprint(prog, 8, 8, 4);
  const std::string path = std::string(::testing::TempDir()) + "lut.bin";
  lut.save(path, fp);
  rram::RLut loaded;
  ASSERT_TRUE(rram::RLut::load(path, fp, loaded));
  for (int v = 0; v <= 255; v += 15) {
    EXPECT_DOUBLE_EQ(loaded.mean(v), lut.mean(v));
    EXPECT_DOUBLE_EQ(loaded.var(v), lut.var(v));
  }
  std::remove(path.c_str());
}

TEST(RLutIo, MissingFileReturnsFalse) {
  rram::RLut lut;
  EXPECT_FALSE(rram::RLut::load(
      std::string(::testing::TempDir()) + "nope.bin", 0, lut));
}

TEST(RLutIo, CorruptFileThrows) {
  const std::string path = std::string(::testing::TempDir()) + "bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
  }
  rram::RLut lut;
  EXPECT_THROW(rram::RLut::load(path, 0, lut), std::runtime_error);
  std::remove(path.c_str());
}

TEST(RLutIo, StaleConfigFingerprintIsRejectedAndRebuilt) {
  // The PR-2 satellite bugfix: a cached table saved for one device
  // configuration must not load for another. Every knob the statistics
  // depend on feeds the fingerprint.
  const rram::WeightProgrammer slc({rram::CellKind::SLC, 200.0}, 8,
                                   {0.5, 0.0});
  const std::uint64_t fp_slc = rram::RLut::fingerprint(slc, 8, 8, 4);

  // Each single-knob change must produce a distinct fingerprint.
  const rram::WeightProgrammer mlc({rram::CellKind::MLC2, 200.0}, 8,
                                   {0.5, 0.0});
  const rram::WeightProgrammer sigma({rram::CellKind::SLC, 200.0}, 8,
                                     {0.8, 0.0});
  const rram::WeightProgrammer ddv({rram::CellKind::SLC, 200.0}, 8,
                                   {0.5, 0.5});
  const rram::WeightProgrammer bits({rram::CellKind::SLC, 200.0}, 6,
                                    {0.5, 0.0});
  rram::WeightProgrammer faulty({rram::CellKind::SLC, 200.0}, 8, {0.5, 0.0},
                                {0.01, 0.0});
  EXPECT_NE(fp_slc, rram::RLut::fingerprint(mlc, 8, 8, 4));
  EXPECT_NE(fp_slc, rram::RLut::fingerprint(sigma, 8, 8, 4));
  EXPECT_NE(fp_slc, rram::RLut::fingerprint(ddv, 8, 8, 4));
  EXPECT_NE(fp_slc, rram::RLut::fingerprint(bits, 8, 8, 4));
  EXPECT_NE(fp_slc, rram::RLut::fingerprint(faulty, 8, 8, 4));
  EXPECT_NE(fp_slc, rram::RLut::fingerprint(slc, 16, 8, 4));  // K
  EXPECT_NE(fp_slc, rram::RLut::fingerprint(slc, 8, 4, 4));   // J
  EXPECT_NE(fp_slc, rram::RLut::fingerprint(slc, 8, 8, 5));   // seed

  // Stale entry on disk: load reports a miss (not corruption), the
  // caller rebuilds and overwrites, and the fresh entry then hits.
  const std::string path = std::string(::testing::TempDir()) + "stale.bin";
  rram::RLut::build(slc, 8, 8, Rng(4)).save(path, fp_slc);
  const std::uint64_t fp_sigma = rram::RLut::fingerprint(sigma, 8, 8, 4);
  rram::RLut out;
  EXPECT_FALSE(rram::RLut::load(path, fp_sigma, out));
  const rram::RLut rebuilt = rram::RLut::build(sigma, 8, 8, Rng(4));
  rebuilt.save(path, fp_sigma);
  ASSERT_TRUE(rram::RLut::load(path, fp_sigma, out));
  EXPECT_DOUBLE_EQ(out.mean(128), rebuilt.mean(128));
  std::remove(path.c_str());
}

// ---------------------------------------------------------- Risk analysis

namespace {

struct RiskFixture {
  data::SyntheticDataset ds;
  nn::Sequential net;

  RiskFixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.height = spec.width = 10;
    spec.classes = 5;
    spec.train_per_class = 25;
    spec.test_per_class = 10;
    spec.seed = 55;
    ds = data::make_synthetic(spec);
    Rng rng(5);
    net.emplace<nn::Flatten>();
    net.emplace<nn::Dense>(100, 20, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Dense>(20, 5, rng);
    nn::SGD opt(net.params(), 0.1f);
    for (int e = 0; e < 8; ++e) {
      nn::train_epoch(net, opt, ds.train(), 16, rng);
    }
  }

  double risk_of(core::Scheme s, double sigma) {
    core::DeployOptions o;
    o.scheme = s;
    o.offsets.m = 10;
    o.cell = {rram::CellKind::SLC, 200.0};
    o.variation.sigma = sigma;
    o.seed = 6;
    const core::DeploymentPlan plan = core::compile_plan(net, o, ds.train());
    return core::network_risk(plan);
  }
};

RiskFixture& rf() {
  static RiskFixture f;
  return f;
}

}  // namespace

TEST(Analysis, ZeroVariationRiskIsTiny) {
  EXPECT_LT(rf().risk_of(core::Scheme::Plain, 0.0), 0.01);
}

TEST(Analysis, VawoReducesPredictedRisk) {
  const double plain = rf().risk_of(core::Scheme::Plain, 0.5);
  const double vawo = rf().risk_of(core::Scheme::VAWO, 0.5);
  const double star = rf().risk_of(core::Scheme::VAWOStar, 0.5);
  EXPECT_LT(vawo, plain);
  // VAWO* minimizes the gradient-weighted objective, so its *unweighted*
  // risk may differ from VAWO's by a little — but both sit far below
  // plain.
  EXPECT_LT(star, 0.5 * plain);
  EXPECT_NEAR(star, vawo, 0.25 * vawo);
}

TEST(Analysis, RiskGrowsWithSigma) {
  EXPECT_LT(rf().risk_of(core::Scheme::VAWOStar, 0.2),
            rf().risk_of(core::Scheme::VAWOStar, 0.8));
}

TEST(Analysis, RiskPredictsAccuracyOrdering) {
  // The predictive claim: lower network_risk => higher deployed accuracy
  // (for the same model/σ across schemes).
  auto& f = rf();
  const double risk_plain = f.risk_of(core::Scheme::Plain, 0.4);
  const double risk_star = f.risk_of(core::Scheme::VAWOStar, 0.4);
  ASSERT_LT(risk_star, risk_plain);

  auto acc = [&](core::Scheme s) {
    core::DeployOptions o;
    o.scheme = s;
    o.offsets.m = 10;
    o.cell = {rram::CellKind::SLC, 200.0};
    o.variation.sigma = 0.4;
    o.seed = 6;
    return core::run_scheme(f.net, o, f.ds.train(), f.ds.test(), 3)
        .mean_accuracy;
  };
  EXPECT_GT(acc(core::Scheme::VAWOStar), acc(core::Scheme::Plain));
}

TEST(Analysis, PerLayerRisksMatchNetworkAggregate) {
  auto& f = rf();
  core::DeployOptions o;
  o.scheme = core::Scheme::VAWOStar;
  o.offsets.m = 10;
  o.cell = {rram::CellKind::SLC, 200.0};
  o.variation.sigma = 0.5;
  o.seed = 6;
  const core::DeploymentPlan plan =
      core::compile_plan(f.net, o, f.ds.train());
  const auto layers = core::deployment_risk(plan);
  ASSERT_EQ(layers.size(), 2u);
  double total = 0.0, n = 0.0;
  const double counts[2] = {100.0 * 20.0, 20.0 * 5.0};
  for (std::size_t i = 0; i < layers.size(); ++i) {
    EXPECT_GT(layers[i].mean_sq_dev, 0.0);
    total += layers[i].mean_sq_dev * counts[i];
    n += counts[i];
  }
  EXPECT_NEAR(core::network_risk(plan), std::sqrt(total / n) / 255.0, 1e-9);
}

TEST(Analysis, GranularityTunerPicksCoarsestWithinBudget) {
  auto& f = rf();
  core::DeployOptions base;
  base.scheme = core::Scheme::VAWOStar;
  base.cell = {rram::CellKind::SLC, 200.0};
  base.variation.sigma = 0.4;
  base.seed = 6;
  // A generous budget accepts the coarsest candidate.
  const auto loose = core::choose_granularity(f.net, base, f.ds.train(),
                                              {5, 10, 20}, 1.0);
  EXPECT_TRUE(loose.within_budget);
  EXPECT_EQ(loose.m, 20);
  EXPECT_EQ(loose.candidates.size(), 3u);
  // An impossible budget falls back to the minimum-risk candidate.
  const auto strict = core::choose_granularity(f.net, base, f.ds.train(),
                                               {5, 10, 20}, 1e-12);
  EXPECT_FALSE(strict.within_budget);
  double best = 1e9;
  for (const auto& [m, r] : strict.candidates) best = std::min(best, r);
  EXPECT_DOUBLE_EQ(strict.risk, best);
}

TEST(Analysis, GranularityTunerRejectsEmptyCandidates) {
  auto& f = rf();
  core::DeployOptions base;
  base.variation.sigma = 0.4;
  EXPECT_THROW(
      core::choose_granularity(f.net, base, f.ds.train(), {}, 0.5),
      std::invalid_argument);
}
