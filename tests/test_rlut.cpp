// Statistical E[R(v)] / Var[R(v)] look-up table (paper §III-B protocol).
#include <gtest/gtest.h>

#include <cmath>

#include "rram/rlut.h"

using namespace rdo::rram;
using rdo::nn::Rng;

namespace {
const CellModel kSlc{CellKind::SLC, 200.0};
const CellModel kMlc{CellKind::MLC2, 200.0};
}  // namespace

TEST(RLut, AnalyticCoversFullRange) {
  WeightProgrammer p(kSlc, 8, {0.5, 0.0});
  const RLut lut = RLut::build_analytic(p);
  EXPECT_EQ(lut.max_weight(), 255);
  EXPECT_LT(lut.mean_lo(), lut.mean_hi());
}

TEST(RLut, MonteCarloMatchesAnalytic) {
  WeightProgrammer p(kSlc, 8, {0.5, 0.0});
  const RLut mc = RLut::build(p, /*k_sets=*/32, /*j_cycles=*/32, Rng(1));
  const RLut an = RLut::build_analytic(p);
  for (int v = 0; v <= 255; v += 17) {
    EXPECT_NEAR(mc.mean(v), an.mean(v), 0.05 * std::max(4.0, an.mean(v)))
        << "v=" << v;
    EXPECT_NEAR(mc.var(v), an.var(v), 0.35 * an.var(v) + 1.0) << "v=" << v;
  }
}

TEST(RLut, MeanIsMonotone) {
  WeightProgrammer p(kMlc, 8, {0.8, 0.0});
  const RLut lut = RLut::build(p, 8, 8, Rng(2));  // deliberately noisy
  for (int v = 1; v <= 255; ++v) {
    EXPECT_GT(lut.mean(v), lut.mean(v - 1));
  }
}

TEST(RLut, InvertMeanRecoversV) {
  WeightProgrammer p(kSlc, 8, {0.5, 0.0});
  const RLut lut = RLut::build_analytic(p);
  for (int v = 0; v <= 255; v += 7) {
    EXPECT_EQ(lut.invert_mean(lut.mean(v)), v);
  }
}

TEST(RLut, InvertMeanPicksNearest) {
  WeightProgrammer p(kSlc, 8, {0.5, 0.0});
  const RLut lut = RLut::build_analytic(p);
  const double mid_lo = 0.75 * lut.mean(10) + 0.25 * lut.mean(11);
  EXPECT_EQ(lut.invert_mean(mid_lo), 10);
  const double mid_hi = 0.25 * lut.mean(10) + 0.75 * lut.mean(11);
  EXPECT_EQ(lut.invert_mean(mid_hi), 11);
}

TEST(RLut, InvertMeanClampsOutOfRange) {
  WeightProgrammer p(kSlc, 8, {0.5, 0.0});
  const RLut lut = RLut::build_analytic(p);
  EXPECT_EQ(lut.invert_mean(lut.mean_lo() - 100.0), 0);
  EXPECT_EQ(lut.invert_mean(lut.mean_hi() + 100.0), 255);
}

TEST(RLut, ZeroSigmaLutIsIdentity) {
  WeightProgrammer p(kMlc, 8, {0.0, 0.0});
  const RLut lut = RLut::build(p, 4, 4, Rng(3));
  for (int v = 0; v <= 255; v += 15) {
    EXPECT_NEAR(lut.mean(v), static_cast<double>(v), 1e-9);
    EXPECT_NEAR(lut.var(v), 0.0, 1e-12);
  }
}

TEST(RLut, VariancePatternPreservedByMonteCarlo) {
  // Var[128] > Var[127] must survive the statistical measurement (this is
  // what VAWO's objective feeds on).
  WeightProgrammer p(kSlc, 8, {0.5, 0.0});
  const RLut lut = RLut::build(p, 32, 32, Rng(4));
  EXPECT_GT(lut.var(128), lut.var(127));
}

TEST(RLut, BuildIsDeterministicInSeed) {
  WeightProgrammer p(kSlc, 8, {0.5, 0.0});
  const RLut a = RLut::build(p, 4, 4, Rng(5));
  const RLut b = RLut::build(p, 4, 4, Rng(5));
  for (int v = 0; v <= 255; v += 25) {
    EXPECT_DOUBLE_EQ(a.mean(v), b.mean(v));
    EXPECT_DOUBLE_EQ(a.var(v), b.var(v));
  }
}

class RLutSweep
    : public ::testing::TestWithParam<std::tuple<CellKind, double>> {};

TEST_P(RLutSweep, MeanInflationMatchesLognormalFactor) {
  const auto [kind, sigma] = GetParam();
  WeightProgrammer p({kind, 200.0}, 8, {sigma, 0.0});
  const RLut lut = RLut::build_analytic(p);
  // Slope of the mean curve equals E[e^theta].
  const double slope = (lut.mean(200) - lut.mean(100)) / 100.0;
  EXPECT_NEAR(slope, (VariationModel{sigma, 0.0}).mean_factor(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    CellsAndSigmas, RLutSweep,
    ::testing::Combine(::testing::Values(CellKind::SLC, CellKind::MLC2),
                       ::testing::Values(0.2, 0.5, 0.8, 1.0)));
