// The BENCH regression gate (obs/diff.h): deterministic sections are
// compared exactly or within an explicit tolerance, volatile sections
// are informational only, and failures never get tolerance.
#include <gtest/gtest.h>

#include <string>

#include "obs/diff.h"
#include "obs/json.h"

using rdo::obs::DiffOptions;
using rdo::obs::DiffReport;
using rdo::obs::Json;
using rdo::obs::diff_bench_documents;

namespace {

/// A minimal but schema-shaped BENCH document.
Json base_doc() {
  return Json::parse(R"({
    "schema_version": 2,
    "name": "probe",
    "env": {"threads": 4, "seed": 7},
    "timing": {"total_seconds": 1.5},
    "pool": {"chunks_executed": 100},
    "histograms": {},
    "counters": {"cycles": 3, "device_pulses": 1200},
    "gauges": {"accuracy": 0.912, "read_power_ratio": 1.31},
    "results": {"per_cycle": [0.9, 0.91, 0.92], "config": {"m": 8}},
    "failures": []
  })");
}

}  // namespace

TEST(BenchDiff, SelfCompareIsClean) {
  const Json doc = base_doc();
  const DiffReport rep = diff_bench_documents(doc, doc, DiffOptions{});
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.regressions.empty());
  EXPECT_TRUE(rep.infos.empty());
}

TEST(BenchDiff, CountersAreExactUnlessGivenTolerance) {
  const Json a = base_doc();
  Json b = base_doc();
  b["counters"]["device_pulses"] = std::int64_t{1212};  // +1%
  EXPECT_FALSE(diff_bench_documents(a, b, DiffOptions{}).ok());
  DiffOptions loose;
  loose.counter_rel_tol = 0.05;
  const DiffReport rep = diff_bench_documents(a, b, loose);
  EXPECT_TRUE(rep.ok());
  EXPECT_FALSE(rep.infos.empty());  // tolerated drift is still reported
  loose.counter_rel_tol = 0.001;
  EXPECT_FALSE(diff_bench_documents(a, b, loose).ok());
}

TEST(BenchDiff, GaugesHonourAbsoluteAndRelativeTolerance) {
  const Json a = base_doc();
  Json b = base_doc();
  b["gauges"]["accuracy"] = 0.902;  // -0.01 absolute
  EXPECT_FALSE(diff_bench_documents(a, b, DiffOptions{}).ok());
  DiffOptions abs;
  abs.abs_tol = 0.02;
  EXPECT_TRUE(diff_bench_documents(a, b, abs).ok());
  DiffOptions rel;
  rel.rel_tol = 0.02;
  EXPECT_TRUE(diff_bench_documents(a, b, rel).ok());
  rel.rel_tol = 0.001;
  EXPECT_FALSE(diff_bench_documents(a, b, rel).ok());
}

TEST(BenchDiff, ResultsAreComparedDeeply) {
  const Json a = base_doc();
  Json nested = base_doc();
  nested["results"]["config"]["m"] = std::int64_t{16};
  EXPECT_FALSE(diff_bench_documents(a, nested, DiffOptions{}).ok());

  Json shorter = base_doc();
  shorter["results"]["per_cycle"] = Json::parse("[0.9, 0.91]");
  EXPECT_FALSE(diff_bench_documents(a, shorter, DiffOptions{}).ok());

  Json drifted = base_doc();
  drifted["results"]["per_cycle"] = Json::parse("[0.9, 0.91, 0.925]");
  DiffOptions tol;
  tol.abs_tol = 0.01;
  EXPECT_TRUE(diff_bench_documents(a, drifted, tol).ok());

  Json retyped = base_doc();
  retyped["results"]["config"] = "m=8";  // object -> string
  EXPECT_FALSE(diff_bench_documents(a, retyped, DiffOptions{}).ok());
}

TEST(BenchDiff, MissingAndExtraMembersRegress) {
  const Json a = base_doc();
  Json missing = base_doc();  // drop results.config
  missing["results"] = Json::parse(R"({"per_cycle": [0.9, 0.91, 0.92]})");
  EXPECT_FALSE(diff_bench_documents(a, missing, DiffOptions{}).ok());
  // Extra member in current is also a divergence.
  Json extra = base_doc();
  extra["results"]["surprise"] = 1;
  EXPECT_FALSE(diff_bench_documents(a, extra, DiffOptions{}).ok());
}

TEST(BenchDiff, FailuresNeverGetTolerance) {
  const Json a = base_doc();
  Json b = base_doc();
  b["failures"] = Json::parse(R"([{"where": "grid", "what": "boom"}])");
  DiffOptions very_loose;
  very_loose.abs_tol = 1e9;
  very_loose.rel_tol = 1e9;
  very_loose.counter_rel_tol = 1e9;
  const DiffReport rep = diff_bench_documents(a, b, very_loose);
  EXPECT_FALSE(rep.ok());
}

TEST(BenchDiff, DifferentHarnessesOrMissingSectionsRegress) {
  const Json a = base_doc();
  Json renamed = base_doc();
  renamed["name"] = "other_harness";
  EXPECT_FALSE(diff_bench_documents(a, renamed, DiffOptions{}).ok());

  const Json truncated = Json::parse(R"({"schema_version": 2,
                                         "name": "probe"})");
  EXPECT_FALSE(diff_bench_documents(a, truncated, DiffOptions{}).ok());
}

TEST(BenchDiff, VolatileSectionsAreInformationalOnly) {
  const Json a = base_doc();
  Json b = base_doc();
  b["timing"]["total_seconds"] = 99.0;
  b["pool"]["chunks_executed"] = std::int64_t{4};
  b["env"]["threads"] = std::int64_t{16};
  b["schema_version"] = std::int64_t{1};
  const DiffReport rep = diff_bench_documents(a, b, DiffOptions{});
  EXPECT_TRUE(rep.ok()) << (rep.regressions.empty()
                                ? ""
                                : rep.regressions.front());
  EXPECT_FALSE(rep.infos.empty());
}
