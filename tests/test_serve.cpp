// Deployment-as-a-service: protocol parsing, the plan LRU, backend
// pooling, admission control and end-to-end parity of served evaluate()
// against a directly driven ExecutionBackend.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.h"
#include "core/plan.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace rdo;
using obs::Json;

namespace {

/// Small deterministic service fixture: one Dense net, 20 train / 10
/// test samples, a cheap LUT protocol so per-request compilation stays
/// fast.
struct ServeFixture {
  std::unique_ptr<nn::Sequential> net;
  nn::Tensor train_images{{20, 6}};
  std::vector<int> train_labels;
  nn::Tensor test_images{{10, 6}};
  std::vector<int> test_labels;
  core::DeployOptions base;

  ServeFixture() {
    nn::Rng rng(5);
    net = std::make_unique<nn::Sequential>();
    net->emplace<nn::Dense>(6, 4, rng);
    for (std::int64_t i = 0; i < train_images.size(); ++i) {
      train_images[i] = 0.15f * static_cast<float>(i % 11) - 0.7f;
    }
    for (int i = 0; i < 20; ++i) train_labels.push_back(i % 4);
    for (std::int64_t i = 0; i < test_images.size(); ++i) {
      test_images[i] = 0.15f * static_cast<float>((i + 3) % 11) - 0.7f;
    }
    for (int i = 0; i < 10; ++i) test_labels.push_back((i + 1) % 4);
    base.weight_bits = 4;
    base.offsets.m = 2;
    base.offsets.offset_bits = 4;
    base.lut_k_sets = 2;
    base.lut_j_cycles = 2;
    base.grad_samples = 8;
    base.seed = 5;
  }

  [[nodiscard]] nn::DataView train() const {
    return {&train_images, &train_labels};
  }
  [[nodiscard]] nn::DataView test() const {
    return {&test_images, &test_labels};
  }

  [[nodiscard]] serve::InferenceService make_service(
      serve::ServeConfig cfg = {}) const {
    return {*net, train(), test(), base, cfg};
  }
};

Json reply(serve::InferenceService& svc, const std::string& line) {
  return Json::parse(svc.handle_line(line));
}

void expect_bad_request(const Json& r, const std::string& line) {
  ASSERT_NE(r.find("ok"), nullptr) << line;
  EXPECT_FALSE(r.find("ok")->as_bool()) << line;
  const Json* err = r.find("error");
  ASSERT_NE(err, nullptr) << line;
  EXPECT_EQ(err->find("code")->as_string(), "bad_request") << line;
}

}  // namespace

TEST(Serve, PingEchoesIdAndStatsCountRequests) {
  const ServeFixture f;
  serve::InferenceService svc = f.make_service();

  const Json pong = reply(svc, R"({"id": "a1", "op": "ping"})");
  EXPECT_EQ(pong.find("id")->as_string(), "a1");
  EXPECT_TRUE(pong.find("ok")->as_bool());
  EXPECT_TRUE(pong.find("result")->find("pong")->as_bool());

  const Json stats = reply(svc, R"({"id": 2, "op": "stats"})");
  EXPECT_EQ(stats.find("id")->as_int(), 2);
  const Json* r = stats.find("result");
  EXPECT_EQ(r->find("requests")->as_int(), 2);
  EXPECT_EQ(r->find("ok")->as_int(), 1);  // snapshot before this reply
  EXPECT_EQ(r->find("cached_plans")->as_int(), 0);
  EXPECT_EQ(r->find("pooled_backends")->as_int(), 0);
  EXPECT_GE(r->find("uptime_seconds")->as_double(), 0.0);
  EXPECT_EQ(r->find("plan_hit_rate")->as_double(), 0.0);
  // The nested live-registry snapshot is structurally valid and agrees
  // with the flat counters.
  const Json* metrics = r->find("metrics");
  ASSERT_NE(metrics, nullptr);
  std::string err;
  EXPECT_TRUE(obs::validate_metrics_json(*metrics, &err)) << err;
  EXPECT_EQ(metrics->find("counters")->find("serve_requests")->as_int(), 2);
  EXPECT_EQ(
      metrics->find("gauges")->find("serve_active_requests")->as_double(),
      0.0);
  const Json* hist =
      metrics->find("histograms")->find("serve_request_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_int(), 1);  // snapshot mid-request #2
}

TEST(Serve, StatsReflectsKnownRequestAndCacheCounts) {
  const ServeFixture f;
  serve::InferenceService svc = f.make_service();
  const std::string eval_line =
      R"({"op": "evaluate", "data": {"split": "test", "count": 4}})";
  const Json first = reply(svc, eval_line);
  ASSERT_TRUE(first.find("ok")->as_bool());
  const Json second = reply(svc, eval_line);
  ASSERT_TRUE(second.find("ok")->as_bool());
  expect_bad_request(reply(svc, "nope"), "nope");

  const Json stats = reply(svc, R"({"op": "stats"})");
  const Json* r = stats.find("result");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->find("requests")->as_int(), 4);
  EXPECT_EQ(r->find("ok")->as_int(), 2);
  EXPECT_EQ(r->find("bad_request")->as_int(), 1);
  EXPECT_EQ(r->find("plan_hits")->as_int(), 1);
  EXPECT_EQ(r->find("plan_misses")->as_int(), 1);
  EXPECT_EQ(r->find("cached_plans")->as_int(), 1);
  EXPECT_EQ(r->find("pooled_backends")->as_int(), 1);
  EXPECT_EQ(r->find("plan_hit_rate")->as_double(), 0.5);
  EXPECT_EQ(r->find("active")->as_int(), 0);
  EXPECT_EQ(r->find("queued")->as_int(), 0);
  const Json* counters = r->find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("serve_backend_creates")->as_int(), 1);
  EXPECT_EQ(counters->find("serve_backend_reuses")->as_int(), 1);
}

TEST(Serve, EvaluateMatchesDirectBackendBitIdentically) {
  const ServeFixture f;
  serve::InferenceService svc = f.make_service();

  const Json r = reply(svc,
                       R"({"id": 1, "op": "evaluate",)"
                       R"( "config": {"scheme": "VAWO*", "sigma": 0.6},)"
                       R"( "cycle": 2, "data": {"split": "test"}})");
  ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();
  const Json* res = r.find("result");
  EXPECT_EQ(res->find("samples")->as_int(), 10);
  EXPECT_EQ(res->find("cycle")->as_int(), 2);
  EXPECT_FALSE(res->find("cached_plan")->as_bool());

  // Drive the pipeline directly with the same effective options.
  core::DeployOptions opt = f.base;
  opt.scheme = core::Scheme::VAWOStar;
  opt.variation.sigma = 0.6;
  const core::DeploymentPlan plan = core::compile_plan(*f.net, opt, f.train());
  core::EffectiveWeightBackend backend(plan, *f.net);
  backend.program_cycle(2);
  backend.tune(f.train());
  const float direct = backend.evaluate(f.test(), 64);

  EXPECT_EQ(res->find("accuracy")->as_double(),
            static_cast<double>(direct));

  // Fingerprint on the wire matches plan_fingerprint of the same config.
  const std::uint64_t fp = core::plan_fingerprint(*f.net, opt, f.train());
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fp));
  EXPECT_EQ(res->find("plan_fingerprint")->as_string(), hex);

  // Same request again: plan LRU hit, pooled backend reused, identical
  // accuracy.
  const Json r2 = reply(svc,
                        R"({"id": 2, "op": "evaluate",)"
                        R"( "config": {"scheme": "VAWO*", "sigma": 0.6},)"
                        R"( "cycle": 2, "data": {"split": "test"}})");
  ASSERT_TRUE(r2.find("ok")->as_bool()) << r2.dump();
  EXPECT_TRUE(r2.find("result")->find("cached_plan")->as_bool());
  EXPECT_EQ(r2.find("result")->find("accuracy")->as_double(),
            r.find("result")->find("accuracy")->as_double());
  const serve::ServeCounters c = svc.counters();
  EXPECT_EQ(c.plan_misses, 1);
  EXPECT_EQ(c.plan_hits, 1);
  EXPECT_EQ(c.backend_creates, 1);
  EXPECT_EQ(c.backend_reuses, 1);
}

TEST(Serve, DiskPlanCacheWarmsAFreshServiceInstance) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "rdo_serve_plan_cache";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ::setenv("RDO_PLAN_CACHE_DIR", dir.string().c_str(), 1);

  const ServeFixture f;
  const std::string line =
      R"({"op": "evaluate", "data": {"split": "test", "count": 4}})";
  {
    serve::InferenceService cold = f.make_service();
    const Json r = reply(cold, line);
    ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();
    EXPECT_FALSE(r.find("result")->find("plan_from_disk_cache")->as_bool());
  }
  {
    // A fresh service (empty LRU) must warm-start from the on-disk plan:
    // not an LRU hit, but loaded instead of recompiled.
    serve::InferenceService warm = f.make_service();
    const Json r = reply(warm, line);
    ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();
    EXPECT_FALSE(r.find("result")->find("cached_plan")->as_bool());
    EXPECT_TRUE(r.find("result")->find("plan_from_disk_cache")->as_bool());
  }
  ::unsetenv("RDO_PLAN_CACHE_DIR");
  fs::remove_all(dir);
}

TEST(Serve, InlineDataMatchesSplitSlice) {
  const ServeFixture f;
  serve::InferenceService svc = f.make_service();

  // First 6 test samples shipped inline.
  std::ostringstream req;
  req << R"({"id": 1, "op": "evaluate", "data": {"shape": [6, 6],)"
      << R"( "images": [)";
  for (std::int64_t i = 0; i < 36; ++i) {
    if (i > 0) req << ", ";
    req << static_cast<double>(f.test_images[i]);
  }
  req << R"(], "labels": [)";
  for (int i = 0; i < 6; ++i) {
    if (i > 0) req << ", ";
    req << f.test_labels[static_cast<std::size_t>(i)];
  }
  req << "]}}";
  const Json inline_r = reply(svc, req.str());
  ASSERT_TRUE(inline_r.find("ok")->as_bool()) << inline_r.dump();

  const Json slice_r = reply(
      svc,
      R"({"id": 2, "op": "evaluate",)"
      R"( "data": {"split": "test", "offset": 0, "count": 6}})");
  ASSERT_TRUE(slice_r.find("ok")->as_bool()) << slice_r.dump();

  EXPECT_EQ(inline_r.find("result")->find("accuracy")->as_double(),
            slice_r.find("result")->find("accuracy")->as_double());
  EXPECT_EQ(inline_r.find("result")->find("samples")->as_int(), 6);
}

TEST(Serve, LruEvictsLeastRecentlyUsedPlan) {
  const ServeFixture f;
  serve::ServeConfig cfg;
  cfg.max_plans = 2;
  serve::InferenceService svc = f.make_service(cfg);

  const auto eval_sigma = [&](const char* sigma) {
    const Json r = reply(
        svc, std::string(R"({"id": 1, "op": "evaluate", "config": )") +
                 R"({"sigma": )" + sigma +
                 R"(}, "data": {"split": "test", "count": 4}})");
    ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();
  };
  eval_sigma("0.3");
  eval_sigma("0.5");
  eval_sigma("0.7");  // evicts the 0.3 plan
  EXPECT_EQ(svc.cached_plans(), 2u);
  serve::ServeCounters c = svc.counters();
  EXPECT_EQ(c.plan_misses, 3);
  EXPECT_EQ(c.plan_evictions, 1);

  eval_sigma("0.5");  // still hot: most recently used before 0.7
  EXPECT_EQ(svc.counters().plan_hits, 1);
  eval_sigma("0.3");  // was evicted: recompiled
  c = svc.counters();
  EXPECT_EQ(c.plan_misses, 4);
  EXPECT_EQ(c.plan_evictions, 2);
  EXPECT_EQ(svc.cached_plans(), 2u);
}

TEST(Serve, AdmissionShedsWhenActiveAndQueueAreFull) {
  const ServeFixture f;
  serve::ServeConfig cfg;
  cfg.max_active = 1;
  cfg.max_queued = 0;
  serve::InferenceService svc = f.make_service(cfg);

  std::optional<serve::AdmissionTicket> holder;
  holder.emplace(svc.gate());
  ASSERT_TRUE(holder->admitted());

  const Json r = reply(svc, R"({"id": 9, "op": "evaluate"})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_EQ(r.find("error")->find("code")->as_string(), "overloaded");
  EXPECT_EQ(r.find("id")->as_int(), 9);
  EXPECT_EQ(svc.counters().overloaded, 1);

  // Ping and stats are not admission-gated: the control plane stays
  // responsive under load.
  const Json ping = reply(svc, R"({"op": "ping"})");
  EXPECT_TRUE(ping.find("ok")->as_bool());

  holder.reset();
  const Json ok = reply(svc, R"({"id": 10, "op": "evaluate"})");
  EXPECT_TRUE(ok.find("ok")->as_bool()) << ok.dump();
}

TEST(Serve, QueuedRequestProceedsWhenSlotFrees) {
  const ServeFixture f;
  serve::ServeConfig cfg;
  cfg.max_active = 1;
  cfg.max_queued = 1;
  serve::InferenceService svc = f.make_service(cfg);

  std::optional<serve::AdmissionTicket> holder;
  holder.emplace(svc.gate());
  ASSERT_TRUE(holder->admitted());

  std::string queued_response;
  std::thread waiter([&] {
    queued_response = svc.handle_line(R"({"id": "q", "op": "evaluate"})");
  });
  // Wait until the request is parked in the bounded queue, then free the
  // slot it is waiting for.
  while (svc.gate().queued() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  holder.reset();
  waiter.join();

  const Json r = Json::parse(queued_response);
  EXPECT_TRUE(r.find("ok")->as_bool()) << queued_response;
  EXPECT_EQ(svc.counters().overloaded, 0);
  EXPECT_EQ(svc.gate().active(), 0);
  EXPECT_EQ(svc.gate().queued(), 0);
}

TEST(Serve, MalformedRequestsGetTypedBadRequestErrors) {
  const ServeFixture f;
  serve::InferenceService svc = f.make_service();
  const std::vector<std::string> bad = {
      "not json at all",
      "[1, 2, 3]",
      R"({"op": "reboot"})",
      R"({"op": "ping", "extra": 1})",
      R"({"id": {"nested": true}, "op": "ping"})",
      R"({"op": "evaluate", "config": {"voltage": 5}})",
      R"({"op": "evaluate", "config": {"scheme": "bogus"}})",
      R"({"op": "evaluate", "config": {"sigma": -1}})",
      R"({"op": "evaluate", "config": {"cell": "MLC2", "weight_bits": 3}})",
      R"({"op": "evaluate", "data": {"split": "validation"}})",
      R"({"op": "evaluate", "data": {"split": "test", "offset": 99}})",
      R"({"op": "evaluate", "data": {"split": "test", "count": 99}})",
      R"({"op": "evaluate", "data": {"shape": [2, 6], "images": [0.0],)"
      R"( "labels": [0, 1]}})",
      R"({"op": "evaluate", "batch": 0})",
      R"({"op": "evaluate", "config": {"opt_passes": "bogus_pass"}})",
      R"({"op": "evaluate", "config": {"opt_passes": 3}})",
      R"({"op": "evaluate", "config": )"
      R"({"opt_passes": "tune_group_size,tune_group_size"}})",
  };
  for (const std::string& line : bad) {
    expect_bad_request(reply(svc, line), line);
  }
  const serve::ServeCounters c = svc.counters();
  EXPECT_EQ(c.bad_request, static_cast<std::int64_t>(bad.size()));
  EXPECT_EQ(c.ok, 0);
  // Nothing malformed ever reached the pipeline.
  EXPECT_EQ(c.plan_misses, 0);
  EXPECT_EQ(svc.cached_plans(), 0u);
}

TEST(Serve, OptPassesOverrideCompilesDistinctPlan) {
  const ServeFixture f;
  serve::InferenceService svc = f.make_service();
  const Json plain = reply(
      svc, R"({"op": "evaluate", "data": {"split": "test", "count": 4}})");
  ASSERT_TRUE(plain.find("ok")->as_bool()) << plain.dump();
  const Json opt = reply(
      svc,
      R"({"op": "evaluate", "config": {"opt_passes": )"
      R"("color_offset_registers"}, "data": {"split": "test", "count": 4}})");
  ASSERT_TRUE(opt.find("ok")->as_bool()) << opt.dump();
  // The pass list is part of the plan cache key: the override compiled
  // (and cached) a second, distinct plan.
  EXPECT_EQ(svc.cached_plans(), 2u);
  EXPECT_EQ(svc.counters().plan_misses, 2);
}

TEST(Serve, BackendPoolIsKeyedByCycle) {
  const ServeFixture f;
  serve::InferenceService svc = f.make_service();
  const auto eval_cycle = [&](const char* cycle) {
    const Json r = reply(
        svc, std::string(R"({"op": "evaluate", "cycle": )") + cycle + "}");
    ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();
  };
  eval_cycle("0");
  eval_cycle("0");  // same (plan, cycle): pooled backend, no reprogram
  eval_cycle("1");  // different cycle: distinct programmed state
  const serve::ServeCounters c = svc.counters();
  EXPECT_EQ(c.backend_creates, 2);
  EXPECT_EQ(c.backend_reuses, 1);
  EXPECT_EQ(c.plan_misses, 1);
  EXPECT_EQ(c.plan_hits, 2);
}

TEST(Serve, LatencyAndCountersLandInRecorder) {
  const ServeFixture f;
  serve::InferenceService svc = f.make_service();
  const Json ev = reply(svc, R"({"op": "evaluate"})");
  ASSERT_TRUE(ev.find("ok")->as_bool()) << ev.dump();
  const Json ping = reply(svc, R"({"op": "ping"})");
  ASSERT_TRUE(ping.find("ok")->as_bool());
  expect_bad_request(reply(svc, "nope"), "nope");

  // Report-time bridge: the live registry folds into a Recorder once,
  // instead of the service writing the Recorder per event.
  obs::Recorder rec;
  obs::absorb_metrics(rec, svc.metrics());

  EXPECT_EQ(rec.counter("serve_requests"), 3);
  EXPECT_EQ(rec.counter("serve_ok"), 2);
  EXPECT_EQ(rec.counter("serve_bad_request"), 1);
  EXPECT_EQ(rec.counter("serve_plan_misses"), 1);
  const Json hist = rec.histograms_json();
  const Json* lat = hist.find("serve_request_seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_int(), 3);
}

#ifdef RDO_SERVE_BIN
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>

namespace {

/// Line-oriented client over one TCP connection.
class TcpClient {
 public:
  bool connect_to(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  ~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string request(const std::string& line) {
    const std::string out = line + "\n";
    if (::write(fd_, out.data(), out.size()) !=
        static_cast<ssize_t>(out.size())) {
      return {};
    }
    std::string in;
    char c = 0;
    while (::read(fd_, &c, 1) == 1 && c != '\n') in += c;
    return in;
  }

 private:
  int fd_ = -1;
};

}  // namespace

// End-to-end over the real binary and a real socket: spawn rdo_serve on
// an ephemeral port, parse the advertised port, drive a ping + two
// evaluates + a malformed line, and let --max-requests end the process.
TEST(ServeTcp, EndToEndOverRealSocket) {
  const std::string cmd =
      std::string("'") + RDO_SERVE_BIN +
      "' --port 0 --epochs 0 --train-per-class 3 --test-per-class 3"
      " --max-requests 4 2>/dev/null";
  std::FILE* proc = ::popen(cmd.c_str(), "r");
  ASSERT_NE(proc, nullptr);

  // First stdout line advertises the bound port.
  char line[256] = {0};
  ASSERT_NE(std::fgets(line, sizeof(line), proc), nullptr);
  int port = 0;
  ASSERT_EQ(std::sscanf(line, "rdo_serve: listening on 127.0.0.1:%d", &port),
            1)
      << line;
  ASSERT_GT(port, 0);

  TcpClient client;
  ASSERT_TRUE(client.connect_to(port));
  const Json pong = Json::parse(client.request(R"({"op": "ping"})"));
  EXPECT_TRUE(pong.find("ok")->as_bool());

  const std::string eval_line =
      R"({"op": "evaluate", "config": {"sigma": 0.4},)"
      R"( "data": {"split": "test", "count": 6}})";
  const Json a = Json::parse(client.request(eval_line));
  ASSERT_TRUE(a.find("ok")->as_bool()) << a.dump();
  const Json b = Json::parse(client.request(eval_line));
  ASSERT_TRUE(b.find("ok")->as_bool()) << b.dump();
  // Deterministic service: the repeated request is served from the hot
  // plan with the identical result.
  EXPECT_TRUE(b.find("result")->find("cached_plan")->as_bool());
  EXPECT_EQ(a.find("result")->find("accuracy")->as_double(),
            b.find("result")->find("accuracy")->as_double());

  const Json bad = Json::parse(client.request("garbage"));
  EXPECT_FALSE(bad.find("ok")->as_bool());
  EXPECT_EQ(bad.find("error")->find("code")->as_string(), "bad_request");

  EXPECT_EQ(::pclose(proc), 0);
}

// Graceful shutdown end-to-end: SIGTERM must exit 0 after draining, the
// RDO_TRACE file must be flushed and valid (not lost to the signal), and
// stderr must carry the shutdown, slow-request and final-snapshot log
// lines. `echo $$; exec env ... bin` makes the popen'd shell print its
// own PID and then *become* the server, so line 1 is the PID to kill.
TEST(ServeTcp, SigtermDrainsFlushesTraceAndSnapshot) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "rdo_serve_sigterm";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string trace = (dir / "trace.json").string();
  const std::string errfile = (dir / "stderr.log").string();
  const std::string cmd = "echo $$; exec env RDO_TRACE='" + trace +
                          "' RDO_METRICS_INTERVAL_S=0.1"
                          " RDO_SLOW_REQUEST_MS=0 '" +
                          RDO_SERVE_BIN +
                          "' --port 0 --epochs 0 --train-per-class 3"
                          " --test-per-class 3 2>'" +
                          errfile + "'";
  std::FILE* proc = ::popen(cmd.c_str(), "r");
  ASSERT_NE(proc, nullptr);

  char line[256] = {0};
  ASSERT_NE(std::fgets(line, sizeof(line), proc), nullptr);
  int pid = 0;
  ASSERT_EQ(std::sscanf(line, "%d", &pid), 1) << line;
  ASSERT_GT(pid, 0);
  ASSERT_NE(std::fgets(line, sizeof(line), proc), nullptr);
  int port = 0;
  ASSERT_EQ(std::sscanf(line, "rdo_serve: listening on 127.0.0.1:%d", &port),
            1)
      << line;

  {
    TcpClient client;
    ASSERT_TRUE(client.connect_to(port));
    const Json pong = Json::parse(client.request(R"({"op": "ping"})"));
    EXPECT_TRUE(pong.find("ok")->as_bool());
    const Json stats = Json::parse(client.request(R"({"op": "stats"})"));
    EXPECT_TRUE(stats.find("ok")->as_bool());
    EXPECT_EQ(stats.find("result")->find("requests")->as_int(), 2);
  }
  // Give the periodic dumper (0.1 s interval) time to fire at least once,
  // then interrupt the accept() wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(::pclose(proc), 0);  // graceful: drained and exited 0

  std::string err;
  const Json doc = obs::read_json_file(trace);
  EXPECT_TRUE(obs::validate_trace_document(doc, &err)) << err;

  std::ifstream errs(errfile);
  const std::string stderr_text((std::istreambuf_iterator<char>(errs)),
                                std::istreambuf_iterator<char>());
  EXPECT_NE(stderr_text.find("shutdown signal received"), std::string::npos)
      << stderr_text;
  EXPECT_NE(stderr_text.find("final metrics snapshot"), std::string::npos)
      << stderr_text;
  EXPECT_NE(stderr_text.find("metrics dump"), std::string::npos)
      << stderr_text;
  EXPECT_NE(stderr_text.find("slow request"), std::string::npos)
      << stderr_text;
  fs::remove_all(dir);
}
#endif  // RDO_SERVE_BIN
