// Contract-macro semantics (src/core/check.h): RDO_CHECK always fires,
// RDO_DCHECK compiles out of Release builds (NDEBUG) without evaluating
// its condition, RDO_BOUNDS enforces half-open ranges. These tests run in
// both the Release tier-1 suite and the Debug sanitizer presets, so both
// sides of the NDEBUG split are exercised in CI.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/check.h"

using rdo::core::ContractViolation;

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(RDO_CHECK(1 + 1 == 2, "arithmetic works"));
}

TEST(Check, FailingCheckThrowsContractViolation) {
  EXPECT_THROW(RDO_CHECK(false, "always fails"), ContractViolation);
}

TEST(Check, ContractViolationIsInvalidArgument) {
  // Boundary checks threaded through existing code used to raise
  // std::invalid_argument; catch sites relying on that (or on its
  // logic_error base) must keep working.
  EXPECT_THROW(RDO_CHECK(false, "x"), std::invalid_argument);
  EXPECT_THROW(RDO_CHECK(false, "x"), std::logic_error);
}

TEST(Check, MessageCarriesLocationExpressionAndText) {
  try {
    RDO_CHECK(2 < 1, std::string("two is not less than one"));
    FAIL() << "RDO_CHECK(false) did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos)
        << what;
  }
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  RDO_CHECK(++calls > 0, "side effect");
  EXPECT_EQ(calls, 1);
}

TEST(Bounds, InRangeIndexPasses) {
  EXPECT_NO_THROW(RDO_BOUNDS(0, 4));
  EXPECT_NO_THROW(RDO_BOUNDS(3, 4));
}

TEST(Bounds, OutOfRangeIndexThrowsWithValues) {
  EXPECT_THROW(RDO_BOUNDS(4, 4), ContractViolation);
  EXPECT_THROW(RDO_BOUNDS(-1, 4), ContractViolation);
  try {
    RDO_BOUNDS(7, 4);
    FAIL() << "RDO_BOUNDS(7, 4) did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find('7'), std::string::npos) << what;
    EXPECT_NE(what.find('4'), std::string::npos) << what;
  }
}

#ifdef NDEBUG

TEST(Dcheck, CompiledOutInReleaseAndNotEvaluated) {
  // In Release the macro must be a no-op: the condition expression is
  // never evaluated, so the counter stays untouched and a false
  // condition cannot throw.
  int calls = 0;
  auto bump = [&calls] { return ++calls > 0; };
  (void)bump;
  EXPECT_NO_THROW(RDO_DCHECK(bump(), "must not run"));
  EXPECT_EQ(calls, 0);
  EXPECT_NO_THROW(RDO_DCHECK(false, "must not throw in Release"));
}

#else  // !NDEBUG

TEST(Dcheck, ActiveInDebugBuilds) {
  int calls = 0;
  auto bump = [&calls] { return ++calls > 0; };
  EXPECT_NO_THROW(RDO_DCHECK(bump(), "runs in Debug"));
  EXPECT_EQ(calls, 1);
  EXPECT_THROW(RDO_DCHECK(false, "fires in Debug"), ContractViolation);
}

#endif  // NDEBUG
