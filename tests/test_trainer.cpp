// Training loop, evaluation, batch assembly, mean-gradient collection.
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/sequential.h"
#include "nn/trainer.h"

using namespace rdo::nn;

namespace {

/// Tiny two-blob binary classification task.
struct Toy {
  Tensor images{std::vector<std::int64_t>{40, 1, 2, 2}};
  std::vector<int> labels;

  Toy() {
    Rng rng(5);
    for (std::int64_t i = 0; i < 40; ++i) {
      const int cls = i % 2;
      labels.push_back(cls);
      for (std::int64_t j = 0; j < 4; ++j) {
        images[i * 4 + j] = static_cast<float>(
            (cls ? 0.8 : 0.2) + rng.normal(0.0, 0.05));
      }
    }
  }
  [[nodiscard]] DataView view() const { return {&images, &labels}; }
};

Sequential make_mlp(Rng& rng) {
  Sequential s;
  s.emplace<Flatten>();
  s.emplace<Dense>(4, 8, rng);
  s.emplace<ReLU>();
  s.emplace<Dense>(8, 2, rng);
  return s;
}

}  // namespace

TEST(GatherBatch, CopiesSelectedSamples) {
  Tensor images({3, 1, 1, 2});
  for (std::int64_t i = 0; i < 6; ++i) images[i] = static_cast<float>(i);
  Tensor batch = gather_batch(images, {2, 0});
  EXPECT_EQ(batch.dim(0), 2);
  EXPECT_FLOAT_EQ(batch[0], 4.0f);  // sample 2 first element
  EXPECT_FLOAT_EQ(batch[2], 0.0f);  // sample 0 first element
}

TEST(Trainer, TrainEpochLearnsToy) {
  Toy toy;
  Rng rng(1);
  Sequential net = make_mlp(rng);
  SGD opt(net.params(), 0.2f);
  EpochStats last{};
  for (int e = 0; e < 15; ++e) {
    last = train_epoch(net, opt, toy.view(), 8, rng);
  }
  EXPECT_GT(last.accuracy, 0.95f);
  EXPECT_LT(last.loss, 0.3f);
}

TEST(Trainer, EvaluateMatchesPerfectModel) {
  Toy toy;
  Rng rng(2);
  Sequential net = make_mlp(rng);
  SGD opt(net.params(), 0.2f);
  for (int e = 0; e < 20; ++e) train_epoch(net, opt, toy.view(), 8, rng);
  const EpochStats st = evaluate(net, toy.view(), 16);
  EXPECT_GT(st.accuracy, 0.95f);
}

TEST(Trainer, EvaluateIsDeterministic) {
  Toy toy;
  Rng rng(3);
  Sequential net = make_mlp(rng);
  const float a1 = evaluate(net, toy.view(), 8).accuracy;
  const float a2 = evaluate(net, toy.view(), 8).accuracy;
  EXPECT_FLOAT_EQ(a1, a2);
}

TEST(Trainer, EvaluateIndependentOfBatchSize) {
  Toy toy;
  Rng rng(4);
  Sequential net = make_mlp(rng);
  const float a1 = evaluate(net, toy.view(), 7).accuracy;
  const float a2 = evaluate(net, toy.view(), 40).accuracy;
  EXPECT_FLOAT_EQ(a1, a2);
}

TEST(Trainer, AccumulateMeanGradientsPopulatesGrads) {
  Toy toy;
  Rng rng(5);
  Sequential net = make_mlp(rng);
  accumulate_mean_gradients(net, toy.view(), 8);
  double total = 0.0;
  for (Param* p : net.params()) {
    for (std::int64_t i = 0; i < p->grad.size(); ++i) {
      total += std::abs(p->grad[i]);
    }
  }
  EXPECT_GT(total, 0.0);
}

TEST(Trainer, MeanGradientsScaleWithBatchCount) {
  // The mean over batches must be invariant to how the dataset is split.
  Toy toy;
  Rng rng(6);
  Sequential net = make_mlp(rng);
  accumulate_mean_gradients(net, toy.view(), 40);  // single batch
  std::vector<float> g1;
  for (Param* p : net.params()) {
    for (std::int64_t i = 0; i < p->grad.size(); ++i) {
      g1.push_back(p->grad[i]);
    }
  }
  accumulate_mean_gradients(net, toy.view(), 10);  // four batches
  std::size_t k = 0;
  for (Param* p : net.params()) {
    for (std::int64_t i = 0; i < p->grad.size(); ++i, ++k) {
      EXPECT_NEAR(p->grad[i], g1[k], 1e-4f);
    }
  }
}

TEST(Trainer, MaxSamplesLimitsThePass) {
  Toy toy;
  Rng rng(7);
  Sequential net = make_mlp(rng);
  // Just exercises the truncation path; gradients still populated.
  accumulate_mean_gradients(net, toy.view(), 8, /*max_samples=*/8);
  double total = 0.0;
  for (Param* p : net.params()) total += std::abs(p->grad.sum());
  EXPECT_GT(total, 0.0);
}

TEST(Trainer, DataViewSize) {
  Toy toy;
  EXPECT_EQ(toy.view().size(), 40);
}
