// SGD / Adam optimizer semantics and convergence.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.h"
#include "nn/optimizer.h"

using namespace rdo::nn;

TEST(SGD, PlainStepDescendsGradient) {
  Param p({2});
  p.value[0] = 1.0f;
  p.value[1] = -1.0f;
  p.grad[0] = 0.5f;
  p.grad[1] = -0.5f;
  SGD opt({&p}, /*lr=*/0.1f, /*momentum=*/0.0f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.95f);
  EXPECT_FLOAT_EQ(p.value[1], -0.95f);
}

TEST(SGD, StepZeroesGradient) {
  Param p({1});
  p.grad[0] = 1.0f;
  SGD opt({&p}, 0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(SGD, MomentumAccumulates) {
  Param p({1});
  SGD opt({&p}, 1.0f, /*momentum=*/0.5f);
  p.grad[0] = 1.0f;
  opt.step();  // v = 1, w = -1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad[0] = 1.0f;
  opt.step();  // v = 1.5, w = -2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(SGD, WeightDecayShrinksWeights) {
  Param p({1});
  p.value[0] = 10.0f;
  SGD opt({&p}, 0.1f, 0.0f, /*weight_decay=*/0.1f);
  opt.step();  // grad = 0 + 0.1*10 = 1; w = 10 - 0.1
  EXPECT_FLOAT_EQ(p.value[0], 9.9f);
}

TEST(SGD, SkipsNonTrainableParams) {
  Param p({1});
  p.value[0] = 1.0f;
  p.grad[0] = 1.0f;
  p.trainable = false;
  SGD opt({&p}, 0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
}

TEST(SGD, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 by feeding grad = 2(w - 3).
  Param p({1});
  p.value[0] = 0.0f;
  SGD opt({&p}, 0.1f, 0.0f);
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-4f);
}

TEST(SGD, LrSetterTakesEffect) {
  Param p({1});
  SGD opt({&p}, 0.1f, 0.0f);
  opt.set_lr(1.0f);
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
  p.grad[0] = 1.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
}

TEST(SGD, ZeroGradClearsAll) {
  Param a({2}), b({3});
  a.grad.fill(1.0f);
  b.grad.fill(2.0f);
  SGD opt({&a, &b}, 0.1f);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(a.grad.sum(), 0.0f);
  EXPECT_FLOAT_EQ(b.grad.sum(), 0.0f);
}

TEST(Adam, FirstStepMovesByLr) {
  // With bias correction, the very first Adam step moves ~lr in the
  // gradient direction regardless of gradient magnitude.
  Param p({2});
  p.grad[0] = 100.0f;
  p.grad[1] = -0.001f;
  Adam opt({&p}, 0.1f);
  opt.step();
  EXPECT_NEAR(p.value[0], -0.1f, 1e-4f);
  EXPECT_NEAR(p.value[1], 0.1f, 1e-3f);
}

TEST(Adam, StepZeroesGradientAndCounts) {
  Param p({1});
  p.grad[0] = 1.0f;
  Adam opt({&p}, 0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(Adam, ConvergesOnQuadratic) {
  Param p({1});
  p.value[0] = 10.0f;
  Adam opt({&p}, 0.3f);
  for (int i = 0; i < 300; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Adam, SkipsNonTrainableParams) {
  Param p({1});
  p.value[0] = 1.0f;
  p.grad[0] = 1.0f;
  p.trainable = false;
  Adam opt({&p}, 0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
}

TEST(Adam, WeightDecayShrinks) {
  Param p({1});
  p.value[0] = 10.0f;
  Adam opt({&p}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  opt.step();  // gradient comes purely from decay; must move toward 0
  EXPECT_LT(p.value[0], 10.0f);
}

TEST(Adam, AdaptsPerParameterScale) {
  // Two coordinates with wildly different gradient scales should make
  // similar per-step progress (the point of Adam).
  Param p({2});
  p.value[0] = 1.0f;
  p.value[1] = 1.0f;
  Adam opt({&p}, 0.05f);
  for (int i = 0; i < 50; ++i) {
    p.grad[0] = 1000.0f * p.value[0];
    p.grad[1] = 0.01f * p.value[1];
    opt.step();
  }
  // Both decay toward 0 at nearly the same (normalized) rate despite the
  // 10^5 gradient-scale difference.
  EXPECT_LT(std::fabs(p.value[0]), 0.2f);
  EXPECT_LT(std::fabs(p.value[1]), 0.2f);
  EXPECT_NEAR(p.value[0], p.value[1], 0.05f);
}
