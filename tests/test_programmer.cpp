// Bit-sliced weight programming: slicing, composition, moments.
#include <gtest/gtest.h>

#include <cmath>

#include "rram/programmer.h"
#include "rram/rlut.h"

using namespace rdo::rram;
using rdo::nn::Rng;

namespace {
const CellModel kSlc{CellKind::SLC, 200.0};
const CellModel kMlc{CellKind::MLC2, 200.0};
}  // namespace

TEST(Programmer, CellsPerWeight) {
  EXPECT_EQ(WeightProgrammer(kSlc, 8, {0.5, 0.0}).cells_per_weight(), 8);
  EXPECT_EQ(WeightProgrammer(kMlc, 8, {0.5, 0.0}).cells_per_weight(), 4);
  EXPECT_EQ(WeightProgrammer(kMlc, 4, {0.5, 0.0}).cells_per_weight(), 2);
}

TEST(Programmer, RejectsIndivisibleBits) {
  EXPECT_THROW(WeightProgrammer(kMlc, 7, {0.5, 0.0}), std::invalid_argument);
}

TEST(Programmer, SliceLsbFirstSlc) {
  WeightProgrammer p(kSlc, 8, {0.5, 0.0});
  const auto s = p.slice(0b10110001);
  ASSERT_EQ(s.size(), 8u);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], 0);
  EXPECT_EQ(s[4], 1);
  EXPECT_EQ(s[7], 1);
}

TEST(Programmer, SliceLsbFirstMlc) {
  WeightProgrammer p(kMlc, 8, {0.5, 0.0});
  const auto s = p.slice(0xB4);  // 10 11 01 00 -> cells LSB-first: 0,1,3,2
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], 0);
  EXPECT_EQ(s[1], 1);
  EXPECT_EQ(s[2], 3);
  EXPECT_EQ(s[3], 2);
}

TEST(Programmer, SliceRejectsOutOfRange) {
  WeightProgrammer p(kSlc, 8, {0.5, 0.0});
  EXPECT_THROW(p.slice(-1), std::invalid_argument);
  EXPECT_THROW(p.slice(256), std::invalid_argument);
}

TEST(Programmer, SliceComposeRoundTripIdeal) {
  for (const CellModel& cell : {kSlc, kMlc}) {
    WeightProgrammer p(cell, 8, {0.0, 0.0});
    for (int v = 0; v <= 255; v += 13) {
      const auto states = p.slice(v);
      std::vector<double> vals(states.size());
      for (std::size_t k = 0; k < states.size(); ++k) {
        vals[k] = cell.read_value(states[k], 1.0);
      }
      EXPECT_NEAR(p.compose(vals), static_cast<double>(v), 1e-9);
    }
  }
}

TEST(Programmer, ZeroSigmaProgramIsExact) {
  WeightProgrammer p(kMlc, 8, {0.0, 0.0});
  Rng rng(1);
  for (int v : {0, 1, 100, 200, 255}) {
    EXPECT_NEAR(p.program(v, rng), static_cast<double>(v), 1e-9);
  }
}

TEST(Programmer, ProgramMomentsMatchAnalytic) {
  WeightProgrammer p(kSlc, 8, {0.5, 0.0});
  Rng rng(2);
  for (int v : {37, 128, 255}) {
    const int n = 20000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
      const double x = p.program(v, rng);
      sum += x;
      sum2 += x * x;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, p.analytic_mean(v),
                0.02 * std::max(1.0, p.analytic_mean(v)));
    EXPECT_NEAR(var, p.analytic_var(v), 0.1 * p.analytic_var(v) + 0.5);
  }
}

TEST(Programmer, AnalyticMeanIsAffineInV) {
  // E[R(v)] = M v + const: check three collinear points.
  WeightProgrammer p(kMlc, 8, {0.7, 0.0});
  const double d1 = p.analytic_mean(100) - p.analytic_mean(50);
  const double d2 = p.analytic_mean(150) - p.analytic_mean(100);
  EXPECT_NEAR(d1, d2, 1e-9);
  EXPECT_NEAR(d1 / 50.0, (VariationModel{0.7, 0.0}).mean_factor(), 1e-9);
}

TEST(Programmer, VarianceDependsOnBitPatternNotMagnitude) {
  // Var[R(128)] (single MSB device) must exceed Var[R(127)] (7 low
  // devices) — the effect VAWO exploits to prefer low-bit-heavy CTWs.
  WeightProgrammer p(kSlc, 8, {0.5, 0.0});
  EXPECT_GT(p.analytic_var(128), p.analytic_var(127));
}

TEST(Programmer, HigherSigmaRaisesVariance) {
  WeightProgrammer lo(kSlc, 8, {0.2, 0.0});
  WeightProgrammer hi(kSlc, 8, {1.0, 0.0});
  for (int v : {10, 100, 250}) {
    EXPECT_GT(hi.analytic_var(v), lo.analytic_var(v));
  }
}

TEST(Programmer, ProgramWithDdvUsesPersistentComponent) {
  // Pure DDV (ddv_fraction = 1): repeated cycles with fixed thetas give
  // identical CRWs.
  WeightProgrammer p(kSlc, 8, {0.5, 1.0});
  Rng rng(3);
  std::vector<double> ddv(static_cast<std::size_t>(p.cells_per_weight()));
  for (auto& t : ddv) t = p.variation().sample_ddv_theta(rng);
  const double a = p.program_with_ddv(200, ddv, rng);
  const double b = p.program_with_ddv(200, ddv, rng);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Programmer, ProgramWithDdvCcvVariesAcrossCycles) {
  WeightProgrammer p(kSlc, 8, {0.5, 0.5});
  Rng rng(4);
  std::vector<double> ddv(static_cast<std::size_t>(p.cells_per_weight()));
  for (auto& t : ddv) t = p.variation().sample_ddv_theta(rng);
  const double a = p.program_with_ddv(200, ddv, rng);
  const double b = p.program_with_ddv(200, ddv, rng);
  EXPECT_NE(a, b);
}

TEST(Programmer, ProgramWithDdvRejectsWrongThetaCount) {
  WeightProgrammer p(kSlc, 8, {0.5, 0.5});
  Rng rng(5);
  std::vector<double> ddv(3);
  EXPECT_THROW(p.program_with_ddv(10, ddv, rng), std::invalid_argument);
}

TEST(Programmer, StuckAtHrsPullsReadbackDown) {
  WeightProgrammer healthy(kSlc, 8, {0.0, 0.0});
  WeightProgrammer faulty(kSlc, 8, {0.0, 0.0}, {0.5, 0.0});
  Rng rng(60);
  double healthy_sum = 0.0, faulty_sum = 0.0;
  for (int i = 0; i < 500; ++i) {
    healthy_sum += healthy.program(255, rng);
    faulty_sum += faulty.program(255, rng);
  }
  EXPECT_NEAR(healthy_sum / 500.0, 255.0, 1e-9);
  // Half the cells stuck at HRS: expect roughly half the value.
  EXPECT_NEAR(faulty_sum / 500.0, 127.5, 15.0);
}

TEST(Programmer, StuckAtLrsPushesReadbackUp) {
  WeightProgrammer faulty(kSlc, 8, {0.0, 0.0}, {0.0, 0.5});
  Rng rng(61);
  double sum = 0.0;
  for (int i = 0; i < 500; ++i) sum += faulty.program(0, rng);
  EXPECT_GT(sum / 500.0, 100.0);  // ~half the cells read the top state
}

TEST(Programmer, StuckCellsHaveNoVariation) {
  // All cells stuck: readback is exact and repeatable despite sigma.
  WeightProgrammer faulty(kSlc, 8, {1.0, 0.0}, {1.0, 0.0});
  Rng rng(62);
  const double a = faulty.program(170, rng);
  const double b = faulty.program(170, rng);
  EXPECT_DOUBLE_EQ(a, 0.0);  // every cell stuck at HRS
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Programmer, FaultRatesCapturedByStatisticalLut) {
  // The LUT protocol measures the same (simulated) devices, so a fault
  // rate shifts E[R(v)] down for high targets — making VAWO fault-aware.
  WeightProgrammer healthy(kSlc, 8, {0.3, 0.0});
  WeightProgrammer faulty(kSlc, 8, {0.3, 0.0}, {0.2, 0.0});
  const RLut lut_h = RLut::build(healthy, 16, 16, Rng(63));
  const RLut lut_f = RLut::build(faulty, 16, 16, Rng(63));
  EXPECT_LT(lut_f.mean(255), lut_h.mean(255) * 0.95);
}

class ProgrammerCellSweep
    : public ::testing::TestWithParam<std::tuple<CellKind, double>> {};

TEST_P(ProgrammerCellSweep, MeanFollowsAnalyticAcrossRange) {
  const auto [kind, sigma] = GetParam();
  WeightProgrammer p({kind, 200.0}, 8, {sigma, 0.0});
  Rng rng(6);
  for (int v = 0; v <= 255; v += 51) {
    const int n = 4000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += p.program(v, rng);
    EXPECT_NEAR(sum / n, p.analytic_mean(v),
                0.05 * std::max(2.0, p.analytic_mean(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    CellsAndSigmas, ProgrammerCellSweep,
    ::testing::Combine(::testing::Values(CellKind::SLC, CellKind::MLC2),
                       ::testing::Values(0.2, 0.5, 1.0)));
