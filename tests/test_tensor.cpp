// Unit tests for the Tensor value type.
#include <gtest/gtest.h>

#include <stdexcept>

#include "nn/tensor.h"

using rdo::nn::Rng;
using rdo::nn::Tensor;

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.rank(), 0);
}

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3);
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(2), 4);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({5, 5});
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, RejectsNonPositiveDims) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(Tensor({-1, 3}), std::invalid_argument);
}

TEST(Tensor, Matrix2DIndexing) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[1 * 3 + 2], 7.0f);
  EXPECT_EQ(t.at(1, 2), 7.0f);
}

TEST(Tensor, Nchw4DIndexing) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.rank(), 2);
  EXPECT_EQ(r.dim(0), 3);
  for (std::int64_t i = 0; i < 12; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
}

TEST(Tensor, ReshapeRejectsSizeMismatch) {
  Tensor t({2, 6});
  EXPECT_THROW(t.reshaped({5, 3}), std::invalid_argument);
}

TEST(Tensor, FillAndZero) {
  Tensor t({4});
  t.fill(2.5f);
  EXPECT_EQ(t.sum(), 10.0f);
  t.zero();
  EXPECT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, AxpyAccumulates) {
  Tensor a({3}), b({3});
  a.fill(1.0f);
  b.fill(2.0f);
  a.axpy(0.5f, b);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(a[i], 2.0f);
}

TEST(Tensor, AxpyRejectsSizeMismatch) {
  Tensor a({3}), b({4});
  EXPECT_THROW(a.axpy(1.0f, b), std::invalid_argument);
}

TEST(Tensor, Scale) {
  Tensor a({2});
  a.fill(3.0f);
  a.scale(-2.0f);
  EXPECT_FLOAT_EQ(a[0], -6.0f);
}

TEST(Tensor, MaxAbs) {
  Tensor a({3});
  a[0] = -5.0f;
  a[1] = 2.0f;
  a[2] = 4.0f;
  EXPECT_FLOAT_EQ(a.max_abs(), 5.0f);
}

TEST(Tensor, KaimingInitStatistics) {
  Rng rng(3);
  Tensor t({100, 50});
  t.kaiming_init(rng, 100);
  const float target_std = std::sqrt(2.0f / 100.0f);
  double mean = 0.0, var = 0.0;
  for (std::int64_t i = 0; i < t.size(); ++i) mean += t[i];
  mean /= static_cast<double>(t.size());
  for (std::int64_t i = 0; i < t.size(); ++i) {
    var += (t[i] - mean) * (t[i] - mean);
  }
  var /= static_cast<double>(t.size());
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(var), target_std, 0.01);
}

TEST(Tensor, UniformInitRange) {
  Rng rng(4);
  Tensor t({1000});
  t.uniform_init(rng, -0.25f, 0.75f);
  float mn = 1e9f, mx = -1e9f;
  for (std::int64_t i = 0; i < t.size(); ++i) {
    mn = std::min(mn, t[i]);
    mx = std::max(mx, t[i]);
  }
  EXPECT_GE(mn, -0.25f);
  EXPECT_LT(mx, 0.75f);
  EXPECT_LT(mn, -0.1f);  // actually explores the range
  EXPECT_GT(mx, 0.6f);
}

TEST(Tensor, ShapeStr) {
  Tensor t({2, 3});
  EXPECT_EQ(t.shape_str(), "[2, 3]");
}

TEST(Tensor, CopyIsDeep) {
  Tensor a({2});
  a.fill(1.0f);
  Tensor b = a;
  b[0] = 5.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(Tensor, NumelHelper) {
  EXPECT_EQ(Tensor::numel({2, 3, 4}), 24);
  EXPECT_EQ(Tensor::numel({7}), 7);
}
