// Live metrics registry (obs/metrics.h) and structured logging
// (obs/log.h): instrument semantics, concurrent determinism, the JSON /
// Prometheus exports, the Recorder bridge, and the log line format
// contract.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

using namespace rdo;
using obs::Json;

namespace {

std::string prom_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

TEST(Metrics, CounterAddsAndSumsAcrossShards) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("serve_requests");
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Find-or-create: same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("serve_requests"), &c);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("serve_uptime_seconds");
  EXPECT_EQ(g.value(), 0.0);
  g.set(1.5);
  g.set(-2.25);
  EXPECT_EQ(g.value(), -2.25);
}

TEST(Metrics, NameClaimsExactlyOneInstrumentKind) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
  reg.gauge("y");
  EXPECT_THROW(reg.counter("y"), std::logic_error);
}

TEST(Metrics, BucketGeometryMatchesRecorderContract) {
  // bucket i covers [2^i, 2^(i+1)) microseconds.
  EXPECT_EQ(obs::latency_bucket_index(0.0), 0);
  EXPECT_EQ(obs::latency_bucket_index(-1.0), 0);
  EXPECT_EQ(obs::latency_bucket_index(0.5e-6), 0);  // sub-µs
  EXPECT_EQ(obs::latency_bucket_index(1.0e-6), 0);
  EXPECT_EQ(obs::latency_bucket_index(3.0e-6), 1);
  EXPECT_EQ(obs::latency_bucket_index(4.0e-6), 2);
  EXPECT_EQ(obs::latency_bucket_index(1e9), obs::kLatencyBuckets - 1);
  for (int i = 0; i < obs::kLatencyBuckets; ++i) {
    EXPECT_EQ(obs::latency_bucket_upper_seconds(i),
              std::exp2(i + 1) * 1e-6);
    const double mid = obs::latency_bucket_midpoint_seconds(i);
    EXPECT_EQ(obs::latency_bucket_index(mid), i);
  }
}

TEST(Metrics, HistogramSnapshotTracksCountSumAndExtremes) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("serve_request_seconds");
  obs::HistogramSnapshot empty = h.snapshot();
  EXPECT_EQ(empty.count, 0);
  EXPECT_EQ(empty.min_seconds, 0.0);
  EXPECT_EQ(empty.max_seconds, 0.0);

  h.observe(3.0e-6);
  h.observe(40.0e-6);
  h.observe(1.0e-3);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.min_seconds, 3.0e-6);
  EXPECT_EQ(s.max_seconds, 1.0e-3);
  EXPECT_NEAR(s.sum_seconds, 3.0e-6 + 40.0e-6 + 1.0e-3, 1e-8);
  std::int64_t total = 0;
  for (const std::int64_t b : s.buckets) total += b;
  EXPECT_EQ(total, 3);
  EXPECT_EQ(s.buckets[static_cast<std::size_t>(
                obs::latency_bucket_index(3.0e-6))],
            1);
  // A non-finite sample must neither crash nor corrupt the sum.
  h.observe(std::nan(""));
  EXPECT_EQ(h.snapshot().count, 4);
}

namespace {

/// Deterministic concurrent stress: `nthreads` threads hammer one
/// counter and one histogram; the final snapshot must be an exact
/// function of the work, independent of interleaving.
void stress_registry(int nthreads) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("stress_total");
  obs::Histogram& h = reg.histogram("stress_seconds");
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(2);
        h.observe(1.0e-6 * static_cast<double>(i % 64 + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::int64_t n = static_cast<std::int64_t>(nthreads) * kPerThread;
  EXPECT_EQ(c.value(), 2 * n);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, n);
  EXPECT_EQ(s.min_seconds, 1.0e-6);
  EXPECT_EQ(s.max_seconds, 64.0e-6);
  std::int64_t total = 0;
  for (const std::int64_t b : s.buckets) total += b;
  EXPECT_EQ(total, n);
}

}  // namespace

TEST(Metrics, ConcurrentStressSingleThread) { stress_registry(1); }

TEST(Metrics, ConcurrentStressFourThreads) { stress_registry(4); }

TEST(Metrics, SnapshotJsonIsSortedAndValid) {
  obs::MetricsRegistry reg;
  // Registered out of order: the export must sort by name.
  reg.counter("serve_requests").add(3);
  reg.counter("deploy_lut_cache_hits").add(1);
  reg.gauge("serve_uptime_seconds").set(2.0);
  reg.histogram("serve_request_seconds").observe(5.0e-6);

  const Json doc = reg.snapshot_json();
  std::string err;
  EXPECT_TRUE(obs::validate_metrics_json(doc, &err)) << err;
  const auto& counters = doc.find("counters")->members();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "deploy_lut_cache_hits");
  EXPECT_EQ(counters[1].first, "serve_requests");
  EXPECT_EQ(counters[1].second.as_int(), 3);
  // Identical state serializes identically (snapshot determinism).
  EXPECT_EQ(doc.dump(), reg.snapshot_json().dump());
}

TEST(Metrics, PrometheusExpositionGolden) {
  obs::MetricsRegistry reg;
  reg.counter("serve_requests").add(7);
  reg.gauge("serve_queue.depth").set(2.5);  // '.' sanitized to '_'
  reg.histogram("serve_request_seconds").observe(3.0e-6);

  // Expected text built with the same bucket-boundary formatting the
  // exposition promises (le = 2^(i+1) µs rendered with %g).
  const obs::HistogramSnapshot hs =
      reg.histogram("serve_request_seconds").snapshot();
  std::string expected;
  expected += "# TYPE rdo_serve_requests counter\n";
  expected += "rdo_serve_requests 7\n";
  expected += "# TYPE rdo_serve_queue_depth gauge\n";
  expected += "rdo_serve_queue_depth 2.5\n";
  expected += "# TYPE rdo_serve_request_seconds histogram\n";
  std::int64_t cumulative = 0;
  for (int i = 0; i < obs::kLatencyBuckets; ++i) {
    cumulative += hs.buckets[static_cast<std::size_t>(i)];
    expected += "rdo_serve_request_seconds_bucket{le=\"" +
                prom_g(obs::latency_bucket_upper_seconds(i)) + "\"} " +
                std::to_string(cumulative) + "\n";
  }
  expected += "rdo_serve_request_seconds_bucket{le=\"+Inf\"} 1\n";
  expected += "rdo_serve_request_seconds_sum " + prom_g(hs.sum_seconds) +
              "\n";
  expected += "rdo_serve_request_seconds_count 1\n";

  EXPECT_EQ(reg.prometheus_text(), expected);
  // The 3 µs sample lands in bucket [2µs, 4µs): cumulative goes 0 then 1.
  EXPECT_NE(expected.find("le=\"2e-06\"} 0\n"), std::string::npos);
  EXPECT_NE(expected.find("le=\"4e-06\"} 1\n"), std::string::npos);
}

TEST(Metrics, QuantileWalksBucketsAndClamps) {
  std::array<std::int64_t, obs::kLatencyBuckets> buckets{};
  buckets[3] = 10;  // ten samples in [8µs, 16µs)
  const double q50 =
      obs::latency_histogram_quantile(buckets, 10, 0.50, 9.0e-6, 12.0e-6);
  EXPECT_EQ(q50, obs::latency_bucket_midpoint_seconds(3));
  // Clamped to the observed extremes when the midpoint overshoots.
  const double q99 =
      obs::latency_histogram_quantile(buckets, 10, 0.99, 9.0e-6, 1.0e-5);
  EXPECT_EQ(q99, 1.0e-5);
}

TEST(Metrics, AbsorbFoldsRegistryIntoRecorder) {
  obs::MetricsRegistry reg;
  reg.counter("serve_requests").add(5);
  reg.gauge("serve_uptime_seconds").set(1.25);
  obs::Histogram& h = reg.histogram("serve_request_seconds");
  h.observe(3.0e-6);
  h.observe(40.0e-6);

  obs::Recorder rec;
  rec.observe("serve_request_seconds", 2.0e-3);  // pre-existing sample
  obs::absorb_metrics(rec, reg);

  EXPECT_EQ(rec.counter("serve_requests"), 5);
  const Json gauges = rec.gauges_json();
  EXPECT_EQ(gauges.find("serve_uptime_seconds")->as_double(), 1.25);
  const Json hist = rec.histograms_json();
  const Json* lat = hist.find("serve_request_seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_int(), 3);  // merged, not resampled
  EXPECT_EQ(lat->find("min_seconds")->as_double(), 3.0e-6);
  EXPECT_EQ(lat->find("max_seconds")->as_double(), 2.0e-3);
}

TEST(Metrics, AbsorbOfEmptyRegistryIsByteIdenticalNoOp) {
  obs::Recorder rec;
  rec.incr("existing", 2);
  rec.observe("lat", 1.0e-4);
  const std::string before = rec.counters_json().dump() +
                             rec.gauges_json().dump() +
                             rec.histograms_json().dump();
  const obs::MetricsRegistry empty;
  obs::absorb_metrics(rec, empty);
  const std::string after = rec.counters_json().dump() +
                            rec.gauges_json().dump() +
                            rec.histograms_json().dump();
  EXPECT_EQ(before, after);
}

TEST(Metrics, ValidateMetricsJsonRejectsStructuralDamage) {
  obs::MetricsRegistry reg;
  reg.counter("c").add();
  reg.histogram("h").observe(1.0e-5);
  std::string err;
  ASSERT_TRUE(obs::validate_metrics_json(reg.snapshot_json(), &err)) << err;

  Json no_hists = Json::object();
  no_hists["counters"] = Json::object();
  no_hists["gauges"] = Json::object();
  EXPECT_FALSE(obs::validate_metrics_json(no_hists, &err));
  EXPECT_NE(err.find("histograms"), std::string::npos);

  Json bad_counter = reg.snapshot_json();
  bad_counter["counters"]["c"] = "not an int";
  EXPECT_FALSE(obs::validate_metrics_json(bad_counter, &err));

  Json short_buckets = reg.snapshot_json();
  short_buckets["histograms"]["h"]["bucket_counts"] = Json::array();
  EXPECT_FALSE(obs::validate_metrics_json(short_buckets, &err));
  EXPECT_NE(err.find("bucket_counts"), std::string::npos);
}

TEST(Metrics, GlobalRegistryIsProcessWideSingleton) {
  obs::MetricsRegistry& a = obs::global_metrics();
  obs::MetricsRegistry& b = obs::global_metrics();
  EXPECT_EQ(&a, &b);
}

// ---------------------------------------------------------------------
// Structured logging (obs/log.h)

TEST(Log, LevelNamesRoundTrip) {
  using obs::LogLevel;
  EXPECT_STREQ(obs::to_string(LogLevel::Debug), "debug");
  EXPECT_STREQ(obs::to_string(LogLevel::Error), "error");
  EXPECT_EQ(obs::log_level_from_string("WARN", LogLevel::Info),
            LogLevel::Warn);
  EXPECT_EQ(obs::log_level_from_string("warning", LogLevel::Info),
            LogLevel::Warn);
  EXPECT_EQ(obs::log_level_from_string("off", LogLevel::Info),
            LogLevel::Off);
  EXPECT_EQ(obs::log_level_from_string("bogus", LogLevel::Error),
            LogLevel::Error);
}

TEST(Log, LevelFilteringIsMonotonic) {
  using obs::LogLevel;
  obs::log_set_level(LogLevel::Warn);
  EXPECT_FALSE(obs::log_enabled(LogLevel::Debug));
  EXPECT_FALSE(obs::log_enabled(LogLevel::Info));
  EXPECT_TRUE(obs::log_enabled(LogLevel::Warn));
  EXPECT_TRUE(obs::log_enabled(LogLevel::Error));
  obs::log_set_level(LogLevel::Off);
  EXPECT_FALSE(obs::log_enabled(LogLevel::Error));
  obs::log_set_level(LogLevel::Info);  // restore the default
}

TEST(Log, TextFormatIsPinned) {
  Json fields = Json::object();
  fields["path"] = "/tmp/a b.bin";  // needs quoting
  fields["n"] = 3;
  fields["ratio"] = 0.5;
  const std::string line = obs::format_log_line(
      obs::LogFormat::Text, 12.345, obs::LogLevel::Warn, "deploy",
      "corrupt entry", fields);
  EXPECT_EQ(line,
            "[    12.345] WARN  deploy: corrupt entry "
            "path=\"/tmp/a b.bin\" n=3 ratio=0.5");
  // Values without spaces stay unquoted.
  Json plain = Json::object();
  plain["op"] = "ping";
  EXPECT_EQ(obs::format_log_line(obs::LogFormat::Text, 0.0,
                                 obs::LogLevel::Info, "serve", "ok", plain),
            "[     0.000] INFO  serve: ok op=ping");
}

TEST(Log, JsonLinesParseBackWithFieldsInline) {
  Json fields = Json::object();
  fields["request_id"] = 7;
  fields["status"] = "ok";
  const std::string line = obs::format_log_line(
      obs::LogFormat::JsonLines, 1.5, obs::LogLevel::Info, "serve",
      "request handled", fields);
  const Json doc = Json::parse(line);
  EXPECT_EQ(doc.find("ts")->as_double(), 1.5);
  EXPECT_EQ(doc.find("level")->as_string(), "info");
  EXPECT_EQ(doc.find("subsystem")->as_string(), "serve");
  EXPECT_EQ(doc.find("message")->as_string(), "request handled");
  EXPECT_EQ(doc.find("request_id")->as_int(), 7);
  EXPECT_EQ(doc.find("status")->as_string(), "ok");
}

TEST(Log, EmitsToRedirectedSinkAndFiltersBelowLevel) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  obs::log_set_sink(sink);
  obs::log_set_format(obs::LogFormat::Text);
  obs::log_set_level(obs::LogLevel::Info);

  obs::log_info("test", "visible").with("k", "v");
  obs::log_debug("test", "filtered out");

  obs::log_set_sink(nullptr);  // restore stderr before asserting
  std::rewind(sink);
  std::string content;
  int c = 0;
  while ((c = std::fgetc(sink)) != EOF) {
    content.push_back(static_cast<char>(c));
  }
  std::fclose(sink);
  EXPECT_NE(content.find("INFO  test: visible k=v\n"), std::string::npos)
      << content;
  EXPECT_EQ(content.find("filtered out"), std::string::npos) << content;
}

TEST(Log, UptimeIsMonotonic) {
  const double a = obs::log_uptime_seconds();
  const double b = obs::log_uptime_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}
