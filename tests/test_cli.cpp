// Tests for the rdo_experiment flag parser (tools/experiment_args.cpp):
// strict numeric parsing with end-pointer checks, bounds validation and
// enum-string validation — malformed input must produce a diagnostic
// instead of an atoi-style silent zero. The companion CTest entry
// `cli_rejects_malformed_flag` (WILL_FAIL) drives the real binary.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiment_args.h"

using rdo::tools::ExperimentArgs;
using rdo::tools::parse_experiment_args;
using rdo::tools::ParseOutcome;

namespace {

ParseOutcome parse(std::vector<const char*> argv, ExperimentArgs& out) {
  argv.insert(argv.begin(), "rdo_experiment");
  return parse_experiment_args(static_cast<int>(argv.size()), argv.data(),
                               out);
}

ParseOutcome parse(std::vector<const char*> argv) {
  ExperimentArgs ignored;
  return parse(std::move(argv), ignored);
}

}  // namespace

TEST(CliArgs, DefaultsAreValid) {
  ExperimentArgs a;
  const ParseOutcome r = parse({}, a);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(a.model, "mlp");
  EXPECT_EQ(a.scheme, "vawo*+pwt");
  EXPECT_EQ(a.m, 16);
  EXPECT_FALSE(a.help);
}

TEST(CliArgs, ParsesAFullValidCommandLine) {
  ExperimentArgs a;
  const ParseOutcome r =
      parse({"--model", "lenet", "--scheme", "vawo*", "--cell", "mlc2",
             "--scope", "per-cell", "--sigma", "0.8", "--ddv", "0.25", "--m",
             "64", "--bits", "10", "--repeats", "5", "--seed", "42", "--json",
             "out.json"},
            a);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(a.model, "lenet");
  EXPECT_EQ(a.scheme, "vawo*");
  EXPECT_EQ(a.cell, "mlc2");
  EXPECT_EQ(a.scope, "per-cell");
  EXPECT_DOUBLE_EQ(a.sigma, 0.8);
  EXPECT_DOUBLE_EQ(a.ddv, 0.25);
  EXPECT_EQ(a.m, 64);
  EXPECT_EQ(a.offset_bits, 10);
  EXPECT_EQ(a.repeats, 5);
  EXPECT_EQ(a.seed, 42u);
  EXPECT_EQ(a.json_path, "out.json");
}

TEST(CliArgs, BoundaryValuesAreAccepted) {
  ExperimentArgs a;
  EXPECT_TRUE(parse({"--sigma", "0"}, a).ok);
  EXPECT_TRUE(parse({"--ddv", "1"}, a).ok);
  EXPECT_TRUE(parse({"--m", "1"}, a).ok);
  EXPECT_TRUE(parse({"--bits", "1"}, a).ok);
  EXPECT_TRUE(parse({"--bits", "16"}, a).ok);
  EXPECT_TRUE(parse({"--repeats", "1"}, a).ok);
}

TEST(CliArgs, RejectsNonNumericValues) {
  // atof/atoi would have silently produced 0 for every one of these.
  EXPECT_FALSE(parse({"--sigma", "nope"}).ok);
  EXPECT_FALSE(parse({"--sigma", "1.5x"}).ok);
  EXPECT_FALSE(parse({"--m", "abc"}).ok);
  EXPECT_FALSE(parse({"--m", "16q"}).ok);
  EXPECT_FALSE(parse({"--m", "1.5"}).ok);
  EXPECT_FALSE(parse({"--bits", ""}).ok);
  EXPECT_FALSE(parse({"--repeats", "3three"}).ok);
  EXPECT_FALSE(parse({"--seed", "-3"}).ok);
  EXPECT_FALSE(parse({"--seed", "12ab"}).ok);
}

TEST(CliArgs, RejectsOutOfBoundsValues) {
  EXPECT_FALSE(parse({"--m", "0"}).ok);
  EXPECT_FALSE(parse({"--m", "-4"}).ok);
  EXPECT_FALSE(parse({"--bits", "0"}).ok);
  EXPECT_FALSE(parse({"--bits", "17"}).ok);
  EXPECT_FALSE(parse({"--sigma", "-0.1"}).ok);
  EXPECT_FALSE(parse({"--ddv", "1.5"}).ok);
  EXPECT_FALSE(parse({"--ddv", "-0.5"}).ok);
  EXPECT_FALSE(parse({"--repeats", "0"}).ok);
  EXPECT_FALSE(parse({"--m", "99999999999999999999"}).ok);
}

TEST(CliArgs, RejectsUnknownNamesAndFlags) {
  EXPECT_FALSE(parse({"--model", "alexnet"}).ok);
  EXPECT_FALSE(parse({"--scheme", "vawo**"}).ok);
  EXPECT_FALSE(parse({"--cell", "mlc4"}).ok);
  EXPECT_FALSE(parse({"--scope", "global"}).ok);
  EXPECT_FALSE(parse({"--frobnicate"}).ok);
}

TEST(CliArgs, RejectsMissingValues) {
  EXPECT_FALSE(parse({"--sigma"}).ok);
  EXPECT_FALSE(parse({"--model"}).ok);
  EXPECT_FALSE(parse({"--json"}).ok);
}

TEST(CliArgs, ErrorsNameTheOffendingFlag) {
  const ParseOutcome r = parse({"--bits", "17"});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--bits"), std::string::npos);
  EXPECT_NE(r.error.find("17"), std::string::npos);
}

TEST(CliArgs, HelpIsRecognized) {
  ExperimentArgs a;
  EXPECT_TRUE(parse({"--help"}, a).ok);
  EXPECT_TRUE(a.help);
  EXPECT_NE(std::string(rdo::tools::experiment_usage()).find("--sigma"),
            std::string::npos);
}
