// End-to-end exit-code contract of the command-line tools. The binary
// paths and the fixture directory are baked in by CMake, so these tests
// exercise exactly what CI runs:
//   validate_bench_json  0 ok / 1 schema-invalid / 2 usage / 3 parse-IO
//   bench_diff           0 ok / 1 regression / 2 usage / 3 parse-IO
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include <sys/wait.h>

namespace {

int run(const std::string& cmd) {
  const int status = std::system((cmd + " > /dev/null 2>&1").c_str());
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

const std::string kValidate = VALIDATE_BIN;
const std::string kBenchDiff = BENCH_DIFF_BIN;
const std::string kData = TEST_DATA_DIR;

}  // namespace

TEST(ValidateCli, AcceptsAValidDocument) {
  EXPECT_EQ(run(kValidate + " " + kData + "/bench_valid.json"), 0);
}

TEST(ValidateCli, SchemaViolationsExitOne) {
  EXPECT_EQ(run(kValidate + " " + kData + "/bench_missing_version.json"), 1);
  EXPECT_EQ(run(kValidate + " " + kData + "/bench_wrong_types.json"), 1);
  // A schema violation dominates a parse error across a file list.
  EXPECT_EQ(run(kValidate + " " + kData + "/bench_wrong_types.json " +
                kData + "/malformed.json"),
            1);
}

TEST(ValidateCli, ParseAndIoFailuresExitThree) {
  EXPECT_EQ(run(kValidate + " " + kData + "/malformed.json"), 3);
  EXPECT_EQ(run(kValidate + " " + kData + "/no_such_file.json"), 3);
}

TEST(ValidateCli, UsageErrorsExitTwo) {
  EXPECT_EQ(run(kValidate), 2);
  EXPECT_EQ(run(kValidate + " --bogus-flag x.json"), 2);
  EXPECT_EQ(run(kValidate + " --trace"), 2);
}

TEST(ValidateCli, TraceModeChecksPerfettoStructure) {
  EXPECT_EQ(run(kValidate + " --trace " + kData + "/trace_valid.json"), 0);
  EXPECT_EQ(run(kValidate + " --trace " + kData + "/trace_invalid.json"), 1);
  // A BENCH document is not a trace.
  EXPECT_EQ(run(kValidate + " --trace " + kData + "/bench_valid.json"), 1);
}

TEST(BenchDiffCli, SelfCompareExitsZero) {
  const std::string doc = kData + "/bench_valid.json";
  EXPECT_EQ(run(kBenchDiff + " " + doc + " " + doc), 0);
}

TEST(BenchDiffCli, DivergenceExitsOneUnlessTolerated) {
  const std::string base = kData + "/bench_valid.json";
  const std::string cur = kData + "/bench_diverged.json";
  EXPECT_EQ(run(kBenchDiff + " " + base + " " + cur), 1);
  // Huge tolerances absorb the numeric drift (device_pulses +50%,
  // accuracy -0.16); the volatile env/timing/pool changes never gate.
  EXPECT_EQ(run(kBenchDiff + " --abs-tol 1 --counter-rel-tol 1 " + base +
                " " + cur),
            0);
}

TEST(BenchDiffCli, UsageAndIoErrors) {
  EXPECT_EQ(run(kBenchDiff), 2);
  EXPECT_EQ(run(kBenchDiff + " only_one.json"), 2);
  EXPECT_EQ(run(kBenchDiff + " --abs-tol nope a.json b.json"), 2);
  EXPECT_EQ(run(kBenchDiff + " " + kData + "/bench_valid.json " + kData +
                "/no_such_file.json"),
            3);
  EXPECT_EQ(run(kBenchDiff + " " + kData + "/bench_valid.json " + kData +
                "/malformed.json"),
            3);
}
