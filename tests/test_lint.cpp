// The token-level determinism & contract analyzer (src/lint/): lexer,
// rule positives/negatives over the fixture pairs in tests/data/lint/,
// inline suppressions, the baseline ratchet, byte parity with the
// retired PR 5 regex tool, and the real binary's exit-code contract.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "lint/baseline.h"
#include "lint/emit.h"
#include "lint/engine.h"
#include "lint/rule.h"
#include "lint/token.h"
#include "obs/json.h"

namespace fs = std::filesystem;
using rdo::lint::Baseline;
using rdo::lint::Engine;
using rdo::lint::Finding;
using rdo::lint::lex;
using rdo::lint::TokKind;
using rdo::lint::Token;

namespace {

const std::string kData = std::string(RDO_TEST_DATA_DIR) + "/lint";
const std::string kBin = RDO_LINT_BIN;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Finding> lint_fixture(const Engine& eng, const std::string& name) {
  return eng.lint_file(kData + "/" + name, name);
}

/// Every finding carries `rule`, and there is at least one.
void expect_only(const std::vector<Finding>& found, const std::string& rule) {
  EXPECT_FALSE(found.empty()) << "expected at least one " << rule;
  for (const Finding& f : found) {
    EXPECT_EQ(f.rule, rule) << f.file << ":" << f.line << " " << f.message;
  }
}

int run(const std::string& cmd) {
  const int status = std::system((cmd + " > /dev/null 2>&1").c_str());
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Temp directory wiped at construction; removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("rdo_lint_test_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Lexer

TEST(Lexer, ClassifiesAndPositions) {
  const auto toks = lex("int x = 42; // trailing\n\"str\" 'c'\n");
  ASSERT_EQ(toks.size(), 8u);
  EXPECT_EQ(toks[0].kind, TokKind::Identifier);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  EXPECT_EQ(toks[3].kind, TokKind::Number);
  EXPECT_EQ(toks[3].text, "42");
  EXPECT_EQ(toks[5].kind, TokKind::Comment);
  EXPECT_EQ(toks[5].text, "// trailing");
  EXPECT_EQ(toks[6].kind, TokKind::String);
  EXPECT_EQ(toks[6].line, 2);
  EXPECT_EQ(toks[6].col, 1);
  EXPECT_EQ(toks[7].kind, TokKind::CharLit);
}

TEST(Lexer, CommentsAreKeptNotStripped) {
  const auto toks = lex("/* block\ncomment */ x");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::Comment);
  EXPECT_EQ(toks[0].text, "/* block\ncomment */");
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[1].line, 2);  // positions survive the embedded newline
}

TEST(Lexer, RawStringWithEmbeddedQuote) {
  // The PR 5 stripper desynchronised on exactly this shape.
  const auto toks = lex(R"src(auto s = R"(has a " quote)"; rand();)src");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[3].kind, TokKind::RawString);
  EXPECT_EQ(toks[3].text, "R\"(has a \" quote)\"");
  // The code after the raw string is still lexed as code.
  bool saw_rand = false;
  for (const auto& t : toks) {
    saw_rand |= t.kind == TokKind::Identifier && t.text == "rand";
  }
  EXPECT_TRUE(saw_rand);
}

TEST(Lexer, RawStringCustomDelimiter) {
  const auto toks = lex("auto p = R\"re(x)\" y)re\";");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[3].kind, TokKind::RawString);
  EXPECT_EQ(toks[3].text, "R\"re(x)\" y)re\"");
}

TEST(Lexer, MultiCharOperatorsLongestMatch) {
  const auto toks = lex("a <<= b->c >= d :: e");
  std::vector<std::string> punct;
  for (const auto& t : toks) {
    if (t.kind == TokKind::Punct) punct.push_back(t.text);
  }
  EXPECT_EQ(punct, (std::vector<std::string>{"<<=", "->", ">=", "::"}));
}

TEST(Lexer, LineContinuationKeepsCounting) {
  const auto toks = lex("#define M \\\n  body\nnext");
  const Token& last = toks.back();
  EXPECT_EQ(last.text, "next");
  EXPECT_EQ(last.line, 3);
}

// ---------------------------------------------------------------------------
// Rule fixture pairs: the positive file triggers only its rule, the
// negative file is silent.

struct PairCase {
  const char* rule;
  const char* stem;
};

class RulePair : public ::testing::TestWithParam<PairCase> {};

TEST_P(RulePair, PositiveFiresNegativeSilent) {
  const Engine eng;
  expect_only(lint_fixture(eng, std::string(GetParam().stem) + "_pos.cpp"),
              GetParam().rule);
  const auto neg =
      lint_fixture(eng, std::string(GetParam().stem) + "_neg.cpp");
  EXPECT_TRUE(neg.empty()) << neg.front().rule << ": "
                           << neg.front().message;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RulePair,
    ::testing::Values(PairCase{"naked-read", "naked_read"},
                      PairCase{"nondeterminism", "nondeterminism"},
                      PairCase{"unordered-iter", "unordered_iter"},
                      PairCase{"unbudgeted-alloc", "unbudgeted_alloc"},
                      PairCase{"float-reduce-order", "float_reduce_order"},
                      PairCase{"metric-name", "metric_name"},
                      PairCase{"unspanned-phase", "unspanned_phase"},
                      PairCase{"pass-invariant", "pass_invariant"},
                      PairCase{"naked-getenv", "naked_getenv"}),
    [](const ::testing::TestParamInfo<PairCase>& info) {
      return std::string(info.param.stem);
    });

TEST(Rules, RawStringRegressionFixture) {
  // Two real violations AFTER raw strings with embedded quotes: proves
  // the lexer never desynchronises the way the old stripper did.
  const Engine eng;
  const auto found = lint_fixture(eng, "raw_string.cpp");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].rule, "nondeterminism");
  EXPECT_EQ(found[0].line, 11);
  EXPECT_EQ(found[1].rule, "nondeterminism");
  EXPECT_EQ(found[1].line, 15);
}

TEST(Rules, CatalogueHasAtLeastNine) {
  const Engine eng;
  EXPECT_GE(eng.rules().size(), 9u);
}

TEST(Rules, SetEnabledRejectsUnknownNames) {
  Engine eng;
  EXPECT_THROW(eng.set_enabled({"no-such-rule"}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Suppressions

TEST(Suppressions, AllFormsSuppress) {
  const Engine eng;
  const auto found = lint_fixture(eng, "suppressed.cpp");
  EXPECT_TRUE(found.empty()) << found.front().rule << " at line "
                             << found.front().line;
}

TEST(Suppressions, UnusedSuppressionIsAFinding) {
  const Engine eng;
  const auto found = lint_fixture(eng, "unused_suppression.cpp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, rdo::lint::kUnusedSuppression);
  EXPECT_EQ(found[0].line, 1);
}

TEST(Suppressions, MalformedSuppressionsAreFindings) {
  const Engine eng;
  const auto found = lint_fixture(eng, "malformed_suppression.cpp");
  ASSERT_EQ(found.size(), 3u);
  for (const Finding& f : found) {
    EXPECT_EQ(f.rule, rdo::lint::kMalformedSuppression);
  }
  EXPECT_EQ(found[0].line, 1);  // unknown rule
  EXPECT_EQ(found[1].line, 4);  // missing reason
  EXPECT_EQ(found[2].line, 7);  // wrong verb
}

TEST(Suppressions, ProseMentioningTheMarkerIsNotADirective) {
  const Engine eng;
  const auto found = eng.lint_source(
      "doc.cpp",
      "// The directive looks like: rdo-lint: allow(bogus) reason\n"
      "int x = 1;\n");
  EXPECT_TRUE(found.empty());
}

// ---------------------------------------------------------------------------
// Baseline ratchet

TEST(Baseline, AbsorbsKnownAndFlagsFresh) {
  const Engine eng;
  auto found = lint_fixture(eng, "nondeterminism_pos.cpp");
  ASSERT_EQ(found.size(), 4u);

  // Baseline built from only the first three findings.
  Baseline b = rdo::lint::make_baseline(
      {found.begin(), found.begin() + 3});
  const auto r = rdo::lint::apply_baseline(found, b);
  EXPECT_EQ(r.absorbed, 3);
  EXPECT_EQ(r.fresh, 1);
  EXPECT_TRUE(r.stale.empty());
  EXPECT_TRUE(found[0].baselined);
  EXPECT_FALSE(found[3].baselined);
}

TEST(Baseline, FixedFindingGoesStale) {
  const Engine eng;
  auto found = lint_fixture(eng, "nondeterminism_pos.cpp");
  Baseline b = rdo::lint::make_baseline(found);
  b.entries.push_back(
      {"nondeterminism_pos.cpp", "nondeterminism", "long gone;", 2});
  const auto r = rdo::lint::apply_baseline(found, b);
  EXPECT_EQ(r.fresh, 0);
  ASSERT_EQ(r.stale.size(), 1u);
  EXPECT_EQ(r.stale[0].context, "long gone;");
  EXPECT_EQ(r.stale[0].count, 2);
}

TEST(Baseline, SaveLoadRoundTripsSorted) {
  TempDir tmp;
  const std::string path = (tmp.path / "baseline.json").string();
  Baseline b;
  b.entries.push_back({"b.cpp", "r2", "ctx", 1});
  b.entries.push_back({"a.cpp", "r1", "ctx", 3});
  rdo::lint::save_baseline(b, path);
  const Baseline loaded = rdo::lint::load_baseline(path);
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.entries[0].file, "a.cpp");  // sorted on disk
  EXPECT_EQ(loaded.entries[0].count, 3);
  EXPECT_EQ(loaded.entries[1].file, "b.cpp");
}

TEST(Baseline, RejectsBrokenSchema) {
  TempDir tmp;
  const std::string path = (tmp.path / "broken.json").string();
  std::ofstream(path) << "{\"version\": 2, \"entries\": []}";
  EXPECT_THROW(rdo::lint::load_baseline(path), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Byte parity with the retired regex tool on the frozen fixture tree.
// tests/data/lint/legacy_expected.txt is the old binary's verbatim
// stderr; the token engine must reproduce it exactly.

TEST(LegacyParity, ByteIdenticalOnFrozenTree) {
  Engine eng;
  eng.set_enabled({"naked-read", "nondeterminism", "unordered-iter"});
  const auto files = rdo::lint::collect_files({kData + "/legacy"}, {});
  ASSERT_EQ(files.size(), 3u);
  std::vector<Finding> findings;
  for (const auto& f : files) {
    const std::string as_run =
        "tests/data/lint/legacy/" + f.filename().string();
    auto one = eng.lint_file(f, as_run);
    findings.insert(findings.end(), one.begin(), one.end());
  }
  const std::string got =
      rdo::lint::format_text(findings, static_cast<int>(files.size()));
  EXPECT_EQ(got, slurp(kData + "/legacy_expected.txt"));
}

// ---------------------------------------------------------------------------
// Emitters

TEST(Emit, SarifDocumentShape) {
  const Engine eng;
  auto found = lint_fixture(eng, "nondeterminism_pos.cpp");
  Baseline b = rdo::lint::make_baseline({found.begin(), found.begin() + 1});
  (void)rdo::lint::apply_baseline(found, b);

  const rdo::obs::Json doc = rdo::lint::sarif_document(eng, found, true);
  EXPECT_EQ(doc.find("version")->as_string(), "2.1.0");
  const auto& run0 = doc.find("runs")->at(0);
  const auto& driver = run0.find("tool")->find("driver");
  EXPECT_EQ(driver->find("name")->as_string(), "rdo_lint");
  // Rule catalogue covers the engine's rules plus the two pseudo-rules.
  EXPECT_EQ(driver->find("rules")->size(), eng.rules().size() + 2);
  const auto& results = *run0.find("results");
  ASSERT_EQ(results.size(), found.size());
  EXPECT_EQ(results.at(0).find("baselineState")->as_string(), "unchanged");
  EXPECT_EQ(results.at(1).find("baselineState")->as_string(), "new");
  const auto& loc = results.at(0).find("locations")->at(0);
  EXPECT_EQ(loc.find("physicalLocation")
                ->find("artifactLocation")
                ->find("uri")
                ->as_string(),
            "nondeterminism_pos.cpp");
}

TEST(Emit, TextSkipsBaselinedFindings) {
  std::vector<Finding> fs(2);
  fs[0] = {"r", "m", "f.cpp", "ctx", 1, 1, true};
  fs[1] = {"r", "m", "f.cpp", "ctx", 2, 1, false};
  const std::string text = rdo::lint::format_text(fs, 1);
  EXPECT_EQ(text, "f.cpp:2: [r] m\nrdo_lint: 1 file(s), 1 violation(s)\n");
}

// ---------------------------------------------------------------------------
// The real binary's exit-code contract and the end-to-end ratchet.

TEST(BinaryContract, UsageErrorsExitTwo) {
  EXPECT_EQ(run(kBin), 2);
  EXPECT_EQ(run(kBin + " --no-such-flag " + kData), 2);
  EXPECT_EQ(run(kBin + " --rules no-such-rule " + kData), 2);
  EXPECT_EQ(run(kBin + " --format bogus " + kData), 2);
  EXPECT_EQ(run(kBin + " --update-baseline " + kData), 2);
  EXPECT_EQ(run(kBin + " /no/such/path"), 2);
}

TEST(BinaryContract, CleanTreeExitsZero) {
  EXPECT_EQ(run(kBin + " " + kData + "/naked_read_neg.cpp"), 0);
}

TEST(BinaryContract, FindingsExitOne) {
  EXPECT_EQ(run(kBin + " " + kData + "/nondeterminism_pos.cpp"), 1);
}

TEST(BinaryContract, RatchetEndToEnd) {
  TempDir tmp;
  const fs::path tree = tmp.path / "tree";
  fs::create_directories(tree);
  fs::copy_file(kData + "/nondeterminism_pos.cpp", tree / "debt.cpp");
  const std::string baseline = (tmp.path / "baseline.json").string();
  const std::string base_cmd = kBin + " --relative-to " + tmp.path.string() +
                               " --baseline " + baseline + " " +
                               tree.string();

  // Adopt the existing debt, then the gate is green.
  EXPECT_EQ(run(base_cmd + " --update-baseline"), 0);
  EXPECT_EQ(run(base_cmd), 0);

  // A NEW violation fails the gate even though old debt is baselined.
  std::ofstream(tree / "fresh.cpp") << "#include <cstdlib>\n"
                                    << "int f() { return rand(); }\n";
  EXPECT_EQ(run(base_cmd), 1);
  fs::remove(tree / "fresh.cpp");

  // FIXING baselined debt also fails (stale entries force the shrink)...
  fs::remove(tree / "debt.cpp");
  std::ofstream(tree / "debt.cpp") << "int f() { return 4; }\n";
  EXPECT_EQ(run(base_cmd), 1);

  // ...and --update-baseline ratchets the ledger down to green again.
  EXPECT_EQ(run(base_cmd + " --update-baseline"), 0);
  EXPECT_EQ(run(base_cmd), 0);
}

TEST(BinaryContract, SarifOutputParses) {
  TempDir tmp;
  const std::string out = (tmp.path / "report.sarif").string();
  EXPECT_EQ(run(kBin + " --format sarif --output " + out + " " + kData +
                "/nondeterminism_pos.cpp"),
            1);
  const rdo::obs::Json doc = rdo::obs::read_json_file(out);
  EXPECT_EQ(doc.find("version")->as_string(), "2.1.0");
  EXPECT_EQ(doc.find("runs")->at(0).find("results")->size(), 4u);
}
