// GEMM kernels vs. a naive triple-loop reference, across shapes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "nn/gemm.h"
#include "nn/rng.h"

using namespace rdo::nn;

namespace {

std::vector<float> random_mat(std::int64_t r, std::int64_t c, Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(r * c));
  for (auto& x : m) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

std::vector<float> ref_gemm(const std::vector<float>& a,
                            const std::vector<float>& b, std::int64_t m,
                            std::int64_t k, std::int64_t n) {
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[static_cast<std::size_t>(i * k + p)]) *
               b[static_cast<std::size_t>(p * n + j)];
      }
      c[static_cast<std::size_t>(i * n + j)] = static_cast<float>(acc);
    }
  }
  return c;
}

void expect_near(const std::vector<float>& a, const std::vector<float>& b,
                 float tol = 1e-4f) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], tol);
}

}  // namespace

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 100 + n));
  const auto a = random_mat(m, k, rng);
  const auto b = random_mat(k, n, rng);
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  gemm(a.data(), b.data(), c.data(), m, k, n);
  expect_near(c, ref_gemm(a, b, m, k, n));
}

TEST_P(GemmShapes, AtBMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m + k + n));
  // A stored as [k, m]; result C[m, n] = A^T B.
  const auto a_t = random_mat(k, m, rng);
  const auto b = random_mat(k, n, rng);
  // Build A[m, k] explicitly for the reference.
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  for (std::int64_t p = 0; p < k; ++p) {
    for (std::int64_t i = 0; i < m; ++i) {
      a[static_cast<std::size_t>(i * k + p)] =
          a_t[static_cast<std::size_t>(p * m + i)];
    }
  }
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  gemm_at_b_accumulate(a_t.data(), b.data(), c.data(), m, k, n);
  expect_near(c, ref_gemm(a, b, m, k, n));
}

TEST_P(GemmShapes, ABtMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7 + k * 3 + n));
  const auto a = random_mat(m, k, rng);
  // B stored as [n, k]; result C[m, n] = A B^T.
  const auto b_t = random_mat(n, k, rng);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t p = 0; p < k; ++p) {
      b[static_cast<std::size_t>(p * n + j)] =
          b_t[static_cast<std::size_t>(j * k + p)];
    }
  }
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  gemm_a_bt_accumulate(a.data(), b_t.data(), c.data(), m, k, n);
  expect_near(c, ref_gemm(a, b, m, k, n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(1, 32, 8), std::make_tuple(33, 17, 9),
                      std::make_tuple(64, 3, 64)));

TEST(Gemm, AccumulateAddsOntoExisting) {
  const std::int64_t m = 2, k = 2, n = 2;
  std::vector<float> a{1, 0, 0, 1};  // identity
  std::vector<float> b{1, 2, 3, 4};
  std::vector<float> c{10, 10, 10, 10};
  gemm_accumulate(a.data(), b.data(), c.data(), m, k, n);
  EXPECT_FLOAT_EQ(c[0], 11.0f);
  EXPECT_FLOAT_EQ(c[3], 14.0f);
}

TEST(Gemm, SkipsZeroRowsCorrectly) {
  // The kernel short-circuits zero A entries (common after ReLU); the
  // result must still be exact.
  const std::int64_t m = 3, k = 4, n = 2;
  Rng rng(5);
  auto a = random_mat(m, k, rng);
  a[0] = a[1] = a[5] = 0.0f;
  const auto b = random_mat(k, n, rng);
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  gemm(a.data(), b.data(), c.data(), m, k, n);
  expect_near(c, ref_gemm(a, b, m, k, n));
}
