// Synthetic dataset generator.
#include <gtest/gtest.h>

#include "data/synthetic.h"

using namespace rdo::data;

TEST(Data, MnistLikeShapes) {
  SyntheticSpec spec = mnist_like();
  spec.train_per_class = 5;
  spec.test_per_class = 2;
  const SyntheticDataset ds = make_synthetic(spec);
  EXPECT_EQ(ds.train_images.shape(),
            (std::vector<std::int64_t>{50, 1, 28, 28}));
  EXPECT_EQ(ds.test_images.shape(),
            (std::vector<std::int64_t>{20, 1, 28, 28}));
  EXPECT_EQ(ds.train_labels.size(), 50u);
}

TEST(Data, CifarLikeShapes) {
  SyntheticSpec spec = cifar_like();
  spec.train_per_class = 3;
  spec.test_per_class = 1;
  const SyntheticDataset ds = make_synthetic(spec);
  EXPECT_EQ(ds.train_images.shape(),
            (std::vector<std::int64_t>{30, 3, 32, 32}));
}

TEST(Data, PixelsInUnitRange) {
  SyntheticSpec spec = mnist_like();
  spec.train_per_class = 4;
  spec.test_per_class = 2;
  const SyntheticDataset ds = make_synthetic(spec);
  for (std::int64_t i = 0; i < ds.train_images.size(); ++i) {
    EXPECT_GE(ds.train_images[i], 0.0f);
    EXPECT_LE(ds.train_images[i], 1.0f);
  }
}

TEST(Data, LabelsBalancedAndOrdered) {
  SyntheticSpec spec = mnist_like();
  spec.train_per_class = 3;
  spec.test_per_class = 2;
  const SyntheticDataset ds = make_synthetic(spec);
  std::vector<int> counts(10, 0);
  for (int l : ds.train_labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 10);
    ++counts[static_cast<std::size_t>(l)];
  }
  for (int c : counts) EXPECT_EQ(c, 3);
}

TEST(Data, DeterministicForSeed) {
  SyntheticSpec spec = mnist_like();
  spec.train_per_class = 2;
  spec.test_per_class = 1;
  const SyntheticDataset a = make_synthetic(spec);
  const SyntheticDataset b = make_synthetic(spec);
  for (std::int64_t i = 0; i < a.train_images.size(); ++i) {
    EXPECT_FLOAT_EQ(a.train_images[i], b.train_images[i]);
  }
}

TEST(Data, DifferentSeedsProduceDifferentData) {
  SyntheticSpec s1 = mnist_like();
  s1.train_per_class = 2;
  s1.test_per_class = 1;
  SyntheticSpec s2 = s1;
  s2.seed = 1234;
  const SyntheticDataset a = make_synthetic(s1);
  const SyntheticDataset b = make_synthetic(s2);
  bool any_diff = false;
  for (std::int64_t i = 0; i < a.train_images.size() && !any_diff; ++i) {
    if (a.train_images[i] != b.train_images[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Data, ClassesAreSeparableByPrototypeMatching) {
  // Nearest-prototype classification on noiseless renders should beat
  // chance by a wide margin — the premise that makes the tasks learnable.
  SyntheticSpec spec = mnist_like();
  spec.train_per_class = 20;
  spec.test_per_class = 10;
  const SyntheticDataset ds = make_synthetic(spec);
  // Build per-class mean images from train.
  const std::int64_t px = 28 * 28;
  std::vector<std::vector<double>> proto(
      10, std::vector<double>(static_cast<std::size_t>(px), 0.0));
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < ds.train_images.dim(0); ++i) {
    const int cls = ds.train_labels[static_cast<std::size_t>(i)];
    ++counts[static_cast<std::size_t>(cls)];
    for (std::int64_t j = 0; j < px; ++j) {
      proto[static_cast<std::size_t>(cls)][static_cast<std::size_t>(j)] +=
          ds.train_images[i * px + j];
    }
  }
  for (int k = 0; k < 10; ++k) {
    for (auto& v : proto[static_cast<std::size_t>(k)]) {
      v /= counts[static_cast<std::size_t>(k)];
    }
  }
  int correct = 0;
  for (std::int64_t i = 0; i < ds.test_images.dim(0); ++i) {
    double best = 1e18;
    int arg = -1;
    for (int k = 0; k < 10; ++k) {
      double d = 0.0;
      for (std::int64_t j = 0; j < px; ++j) {
        const double diff =
            ds.test_images[i * px + j] -
            proto[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        arg = k;
      }
    }
    if (arg == ds.test_labels[static_cast<std::size_t>(i)]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / ds.test_images.dim(0), 0.8);
}

TEST(Data, ViewsPointAtStorage) {
  SyntheticSpec spec = mnist_like();
  spec.train_per_class = 1;
  spec.test_per_class = 1;
  const SyntheticDataset ds = make_synthetic(spec);
  EXPECT_EQ(ds.train().size(), 10);
  EXPECT_EQ(ds.test().size(), 10);
  EXPECT_EQ(ds.train().images, &ds.train_images);
}
