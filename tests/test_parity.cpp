// Cross-backend parity: core::EffectiveWeightBackend and
// sim::DeviceSimBackend execute the same compiled core::DeploymentPlan,
// so their deterministic DeployStats counters must be bit-identical for
// every scheme and cell kind, and their reported accuracies must agree
// up to ADC/floating-point summation effects. These tests carry the
// `parity` ctest label and run in CI under several RDO_THREADS settings.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/backend.h"
#include "core/plan.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "sim/device_backend.h"

using namespace rdo;
using namespace rdo::core;

namespace {

/// One tiny trained LeNet-class CNN on an 8x8 synthetic task, shared by
/// every parity case (device-level evaluation is slow, so the fixture is
/// deliberately small).
struct Fixture {
  data::SyntheticDataset ds;
  nn::Sequential net;

  Fixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.height = spec.width = 8;
    spec.classes = 4;
    spec.train_per_class = 20;
    spec.test_per_class = 8;
    spec.seed = 73;
    ds = data::make_synthetic(spec);
    nn::Rng rng(12);
    net.emplace<nn::Conv2D>(1, 4, 3, 1, 1, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::MaxPool2D>(2);
    net.emplace<nn::Flatten>();
    net.emplace<nn::Dense>(4 * 4 * 4, 4, rng);
    nn::SGD opt(net.params(), 0.05f);
    for (int e = 0; e < 6; ++e) {
      nn::train_epoch(net, opt, ds.train(), 16, rng);
    }
  }

  DeployOptions options(Scheme s, rram::CellKind cell) const {
    DeployOptions o;
    o.scheme = s;
    o.offsets.m = 8;
    o.cell = {cell, 200.0};
    o.variation.sigma = 0.4;
    o.lut_k_sets = 4;
    o.lut_j_cycles = 4;
    o.grad_samples = 48;
    o.pwt.epochs = 1;
    o.pwt.max_samples = 48;
    o.seed = 29;
    return o;
  }

  /// Device geometry matching the m = 8 offset groups (the group size
  /// must be a multiple of the activated wordlines, paper Sec. III-A).
  sim::DeviceSimOptions geometry() const {
    sim::DeviceSimOptions d;
    d.xbar_rows = 32;
    d.xbar_cols = 32;
    d.active_wordlines = 8;
    return d;
  }

  /// Snapshot of every parameter value of the caller's network, for the
  /// byte-identity check.
  std::vector<float> param_bytes() {
    std::vector<float> out;
    for (nn::Param* p : net.params()) {
      const float* d = p->value.data();
      out.insert(out.end(), d, d + p->value.size());
    }
    return out;
  }
};

Fixture& fx() {
  static Fixture f;
  return f;
}

/// Full program/tune/evaluate pipeline over `cycles` programming cycles
/// on an already-constructed backend; returns its stats.
const DeployStats& run_pipeline(ExecutionBackend& backend,
                                const nn::DataView& train,
                                const nn::DataView& test, int cycles) {
  for (int c = 0; c < cycles; ++c) {
    backend.program_cycle(static_cast<std::uint64_t>(c));
    backend.tune(train);
    (void)backend.evaluate(test);
  }
  return backend.stats();
}

}  // namespace

TEST(Parity, DeterministicCountersMatchAcrossBackendsAllSchemes) {
  auto& f = fx();
  const Scheme kSchemes[] = {Scheme::Plain, Scheme::VAWO, Scheme::VAWOStar,
                             Scheme::PWT, Scheme::VAWOStarPWT};
  for (rram::CellKind cell : {rram::CellKind::SLC, rram::CellKind::MLC2}) {
    for (Scheme s : kSchemes) {
      SCOPED_TRACE(std::string(to_string(s)) + "/" +
                   (cell == rram::CellKind::SLC ? "SLC" : "MLC2"));
      const DeploymentPlan plan =
          compile_plan(f.net, f.options(s, cell), f.ds.train());
      EffectiveWeightBackend ew(plan, f.net);
      sim::DeviceSimBackend dev(plan, f.net, f.geometry());
      const DeployStats& a =
          run_pipeline(ew, f.ds.train(), f.ds.test(), /*cycles=*/2);
      const DeployStats& b =
          run_pipeline(dev, f.ds.train(), f.ds.test(), /*cycles=*/2);

      // Every deterministic pipeline counter must be bit-identical: both
      // backends draw devices and run PWT from the same seeded streams.
      EXPECT_EQ(a.cycles, b.cycles);
      EXPECT_EQ(a.weights_programmed, b.weights_programmed);
      EXPECT_EQ(a.device_pulses, b.device_pulses);
      EXPECT_EQ(a.pwt_epochs, b.pwt_epochs);
      EXPECT_EQ(a.pwt_batches, b.pwt_batches);
      EXPECT_EQ(a.pwt_offset_updates, b.pwt_offset_updates);
      ASSERT_EQ(a.pwt_epoch_loss.size(), b.pwt_epoch_loss.size());
      for (std::size_t i = 0; i < a.pwt_epoch_loss.size(); ++i) {
        EXPECT_FLOAT_EQ(a.pwt_epoch_loss[i], b.pwt_epoch_loss[i])
            << "pwt epoch " << i;
      }

      // Accuracies agree up to the ADC model and floating-point
      // summation order (the device path accumulates per-crossbar).
      ASSERT_EQ(a.eval_accuracy.size(), b.eval_accuracy.size());
      for (std::size_t i = 0; i < a.eval_accuracy.size(); ++i) {
        EXPECT_NEAR(a.eval_accuracy[i], b.eval_accuracy[i], 0.15f)
            << "cycle " << i;
      }
    }
  }
}

TEST(Parity, SchemeCountersActuallyDiffer) {
  // Guard against the parity test passing vacuously: the counters it
  // compares must respond to the scheme (PWT adds tuning work).
  auto& f = fx();
  const DeploymentPlan plain = compile_plan(
      f.net, f.options(Scheme::Plain, rram::CellKind::SLC), f.ds.train());
  const DeploymentPlan full = compile_plan(
      f.net, f.options(Scheme::VAWOStarPWT, rram::CellKind::SLC),
      f.ds.train());
  EffectiveWeightBackend a(plain, f.net);
  EffectiveWeightBackend b(full, f.net);
  run_pipeline(a, f.ds.train(), f.ds.test(), 1);
  run_pipeline(b, f.ds.train(), f.ds.test(), 1);
  EXPECT_EQ(a.stats().pwt_epochs, 0);
  EXPECT_GT(b.stats().pwt_epochs, 0);
  EXPECT_GT(b.stats().pwt_batches, 0);
  EXPECT_GT(a.stats().device_pulses, 0);
}

TEST(Parity, CallerNetworkBytesUntouchedByBothBackends) {
  // Backends deploy onto private twins; the caller's trained parameters
  // must be byte-identical after a full pipeline on each backend.
  auto& f = fx();
  const std::vector<float> before = f.param_bytes();
  {
    const DeploymentPlan plan = compile_plan(
        f.net, f.options(Scheme::VAWOStarPWT, rram::CellKind::MLC2),
        f.ds.train());
    EffectiveWeightBackend ew(plan, f.net);
    run_pipeline(ew, f.ds.train(), f.ds.test(), 1);
    sim::DeviceSimBackend dev(plan, f.net, f.geometry());
    run_pipeline(dev, f.ds.train(), f.ds.test(), 1);
  }
  const std::vector<float> after = f.param_bytes();
  ASSERT_EQ(before.size(), after.size());
  EXPECT_EQ(0, std::memcmp(before.data(), after.data(),
                           before.size() * sizeof(float)));
}

TEST(Parity, SharedPlanSupportsManyIndependentBackends) {
  // Compile once, execute many: two effective-weight backends over the
  // same plan and the same cycle salt land identical accuracies, and an
  // interleaved third backend does not perturb them.
  auto& f = fx();
  const DeploymentPlan plan = compile_plan(
      f.net, f.options(Scheme::VAWOStar, rram::CellKind::SLC), f.ds.train());
  EffectiveWeightBackend b1(plan, f.net);
  EffectiveWeightBackend b2(plan, f.net);
  EffectiveWeightBackend noise(plan, f.net);
  b1.program_cycle(3);
  noise.program_cycle(5);  // different salt, interleaved
  b2.program_cycle(3);
  const float a1 = b1.evaluate(f.ds.test());
  (void)noise.evaluate(f.ds.test());
  const float a2 = b2.evaluate(f.ds.test());
  EXPECT_FLOAT_EQ(a1, a2);
}

TEST(Parity, ThrowingProgramCycleLeavesBackendDestructibleAndRetryable) {
  // Teardown regression: a plan corrupted to hold an out-of-range CTW
  // makes WeightProgrammer::slice throw mid-pipeline. The backend must
  // survive the throw (destruction and retry both safe), and the caller's
  // network must stay untouched.
  auto& f = fx();
  const std::vector<float> before = f.param_bytes();
  const DeployOptions o = f.options(Scheme::VAWOStarPWT, rram::CellKind::SLC);
  const DeploymentPlan clean = compile_plan(f.net, o, f.ds.train());

  DeploymentPlan corrupt = clean;  // plans are pure data: copyable
  ASSERT_FALSE(corrupt.layers.empty());
  ASSERT_FALSE(corrupt.layers[0].assign.ctw.empty());
  corrupt.layers[0].assign.ctw[0] = 1 << 20;  // far outside the weight range

  {
    EffectiveWeightBackend backend(corrupt, f.net);
    EXPECT_THROW(backend.program_cycle(0), std::invalid_argument);
    // The pipeline never reached deployment, so downstream stages refuse
    // to run instead of computing on half-programmed state.
    EXPECT_THROW(backend.tune(f.ds.train()), std::logic_error);
    EXPECT_THROW(backend.evaluate(f.ds.test()), std::logic_error);
    EXPECT_THROW(backend.program_cycle(0), std::invalid_argument);
  }  // first destruction: the backend, then its twin — must not throw
  // The device backend lays the nominal CTWs onto crossbars at
  // construction, so the corrupt plan is rejected before any cycle runs.
  EXPECT_THROW(sim::DeviceSimBackend(corrupt, f.net, f.geometry()),
               std::invalid_argument);

  // A fresh backend over the clean plan is unaffected by the failed runs.
  EffectiveWeightBackend good(clean, f.net);
  good.program_cycle(0);
  EXPECT_GT(good.evaluate(f.ds.test()), 0.0f);

  const std::vector<float> after = f.param_bytes();
  EXPECT_EQ(0, std::memcmp(before.data(), after.data(),
                           before.size() * sizeof(float)));
}
