// Seeded violations for the six contract rules added in the token
// analyzer (plus an unused suppression). Never compiled; the WILL_FAIL
// ctest entry proves each rule still fires.
#include <cstdlib>
#include <vector>

// unbudgeted-alloc: a freshly parsed count drives resize with no
// require/RDO_CHECK between parse and allocation.
void unbudgeted(Reader& r, std::vector<int>& v) {
  const std::uint32_t n = r.scalar<std::uint32_t>("count");
  v.resize(n);
}

// float-reduce-order: accumulating into a captured variable from inside
// a parallel_for body sums in chunk-completion order.
double race_sum(const std::vector<double>& xs) {
  double total = 0.0;
  rdo::nn::parallel_for(xs.size(), [&](std::size_t i) {
    total += xs[i];
  });
  return total;
}

// metric-name: off-convention names (no subsystem prefix; sub-second
// unit; histogram not in seconds).
void bad_metrics(rdo::obs::MetricsRegistry& reg) {
  reg.counter("requests").inc();
  reg.gauge("serve_latency_ms").set(3);
  reg.histogram("serve_enqueue_micros").observe(1.0);
}

// unspanned-phase: a ScopedTimer with no TraceSpan anywhere nearby, so
// the phase is invisible to RDO_TRACE.
void untraced_phase(rdo::core::DeployStats& stats) {
  rdo::obs::ScopedTimer timer(&stats.pack_seconds);
  do_pack();
  do_more_packing();
  finish_packing();
  flush_everything();
  and_then_some();
}

// pass-invariant: an opt::Pass with a check() that asserts nothing.
class SloppyPass final : public Pass {
 public:
  const char* name() const override { return "sloppy"; }
  void run(Plan& plan) const override { mutate(plan); }
  void check(const Plan& plan) const override {
    (void)plan;  // no RDO_CHECK: the invariant is never asserted
  }
};

// naked-getenv: a knob read that bypasses rdo::obs::env_knob.
const char* naked_knob() { return std::getenv("RDO_SECRET_KNOB"); }

// unused-suppression: allowance on a line that triggers nothing.
// rdo-lint: allow(nondeterminism) stale allowance that should be reported
int perfectly_deterministic() { return 4; }
