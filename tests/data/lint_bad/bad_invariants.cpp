// Seeded rdo_lint violations — this file is a test fixture, never
// compiled. The WILL_FAIL ctest entry `rdo_lint_detects_seeded_violation`
// proves the linter actually fires on each rule; if rdo_lint ever starts
// passing this file, the gate itself is broken.
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <unordered_map>

void naked_read_without_state_check(std::ifstream& f, char* buf) {
  f.read(buf, 16);
  // ... four lines without ever looking at the stream state ...
  buf[0] = 'x';
  buf[1] = 'y';
  buf[2] = 'z';
  buf[3] = static_cast<char>(buf[0] + 1);
}

unsigned nondeterministic_seed() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  return static_cast<unsigned>(std::rand());
}

double sum_in_hash_order(const std::unordered_map<int, double>& m) {
  double s = 0.0;
  for (const auto& kv : m) s += kv.second;  // iteration order leaks
  return s;
}
