void f(rdo::core::DeployStats& stats) {
  rdo::obs::TraceSpan span("deploy.pack");
  rdo::obs::ScopedTimer timer(&stats.pack_seconds);
  pack_one();
  pack_two();
}
void g(rdo::core::DeployStats& stats) {
  rdo::obs::ScopedTimer timer(&stats.map_seconds);
  rdo::obs::TraceSpan span("deploy.map");
  map_one();
  map_two();
}
