// rdo-lint: allow(nondeterminism) nothing below actually draws randomness
int perfectly_deterministic() { return 4; }
