#include <map>
#include <set>
std::map<int, int> fine_map;
std::set<int> fine_set;
// std::unordered_map<int, int> in a comment is fine.
const char* doc() { return "std::unordered_set<int> is banned"; }
