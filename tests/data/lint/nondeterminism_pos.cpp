#include <cstdlib>
#include <ctime>
#include <random>
int a() { return rand(); }
void b() { srand(7); }
long c() { return std::time(nullptr); }
int d() {
  std::random_device rd;
  return static_cast<int>(rd());
}
