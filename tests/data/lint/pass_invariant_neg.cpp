class GoodPass final : public Pass {
 public:
  const char* name() const override { return "good"; }
  void run(Plan& plan) const override { mutate(plan); }
  void check(const Plan& plan) const override {
    RDO_CHECK(!plan.layers.empty(), "pass must keep at least one layer");
    RDO_CHECK_EQ(plan.total_rows(), expected_rows(plan), "row count drift");
  }
};
class NotAPass {  // no Pass base: the rule must not care
 public:
  void run() {}
};
