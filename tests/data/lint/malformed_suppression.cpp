// rdo-lint: allow(no-such-rule) reason present but the rule is unknown
int a() { return 1; }

// rdo-lint: allow(nondeterminism)
int missing_reason() { return 2; }

// rdo-lint: suppress(nondeterminism) wrong verb
int wrong_verb() { return 3; }
