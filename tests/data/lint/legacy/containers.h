// Frozen parity fixture: unordered-iter positives and negatives.
#pragma once
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Tables {
  std::unordered_map<std::string, int> bad_map;
  std::unordered_set<int> bad_set;
  std::map<std::string, int> fine_ordered;
};

// Mentioning unordered_map<int> in a comment is fine in both tools.
inline const char* doc() { return "std::unordered_map<K, V> is banned"; }
