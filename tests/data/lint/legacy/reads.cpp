// Frozen parity fixture: naked-read positives and negatives. Both the
// retired regex tool (PR 5) and the token analyzer must report exactly
// the same findings here, byte for byte.
#include <fstream>

void unchecked_read(std::ifstream& f, char* buf) {
  f.read(buf, 64);
  use(buf);
  more(buf);
  even_more(buf);
  done(buf);
}

void checked_with_gcount(std::ifstream& f, char* buf) {
  f.read(buf, 64);
  if (f.gcount() != 64) fail();
}

void checked_with_bang(std::ifstream& f, char* buf) {
  f.read(buf, 64);
  if (!f) fail();
}

void checked_with_macro(std::ifstream& f, char* buf) {
  f.read(buf, 64);
  RDO_CHECK(f.good(), "short read");
}

void pointer_receiver(std::ifstream* f, char* buf) {
  f->read(buf, 64);
  use(buf);
  more(buf);
  even_more(buf);
  done(buf);
}

void check_arrives_too_late(std::ifstream& f, char* buf) {
  f.read(buf, 64);
  one(buf);
  two(buf);
  three(buf);
  if (!f) fail();  // line 4 after the read: outside the window
}

void not_a_stream_read() {
  // A comment saying f.read(buf, 64) must not trip the checker.
  const char* s = "f.read(buf, 64)";
  consume(s);
}
