// Frozen parity fixture: nondeterminism positives and negatives.
#include <cstdlib>
#include <ctime>
#include <random>

int bad_rand() { return rand(); }

void bad_srand() { srand(42); }

long bad_time() { return std::time(nullptr); }

int bad_device() {
  std::random_device rd;
  return static_cast<int>(rd());
}

int fine_qualified_elsewhere() { return mylib::time(); }

int fine_member_rand(Widget& w) { return w.rand(); }

int fine_identifier() {
  int randomize = 3;
  return randomize;
}

int fine_in_string() {
  const char* s = "rand() and time() and random_device";
  return use(s);  // stripped/classified away in both tools
}
