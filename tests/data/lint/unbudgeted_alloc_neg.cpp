#include <vector>
void f(Reader& r, std::vector<int>& v) {
  const std::uint32_t n = r.scalar<std::uint32_t>("count");
  r.require(n <= kMaxLayers, "layer count");
  v.resize(n);
}
void g(std::istream& in, std::vector<int>& v) {
  std::uint32_t n = 0;
  read_u32(in, &n);
  RDO_CHECK(n <= 1024, "count out of range");
  v.reserve(n);
}
void h(std::istream& in, std::vector<int>& v) {
  std::uint32_t n = 0;
  read_u32(in, &n);
  if (n > 1024) throw std::runtime_error("count");
  v.resize(n);
}
void untainted(std::vector<int>& v) {
  const std::size_t n = v.size() * 2;  // not parsed from input
  v.resize(n);
}
