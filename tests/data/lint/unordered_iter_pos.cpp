#include <unordered_map>
#include <unordered_set>
std::unordered_map<int, int> bad_map;
std::unordered_set<int> bad_set;
