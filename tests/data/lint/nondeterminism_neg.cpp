int a() { return mylib::time(); }
int b(Widget& w) { return w.rand(); }
int c() {
  int randomize = 3;  // merely contains "rand"
  return randomize;
}
const char* d() { return "rand() time() random_device"; }
int my_srandom_helper(int x) { return x; }
