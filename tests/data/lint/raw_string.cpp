// Regression fixture for the PR 5 stripper bug: a raw string literal
// containing a plain `"` desynchronised strip_non_code, which then
// treated real code as string contents (or vice versa). The lexer must
// consume the raw literal to its exact )delim" terminator, keep scanning
// the code after it, and flag the real violations below.
#include <cstdlib>
#include <string>

const char* kDoc = R"(a raw string with an embedded " quote and rand() text)";

int real_violation_after_raw() { return rand(); }

const char* kRegex = R"re(pattern with )" and "( inside)re";

long second_violation() { return std::time(nullptr); }

const char* kFine = R"(std::unordered_map<int, int> named in data only)";
