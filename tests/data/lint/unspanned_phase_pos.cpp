void f(rdo::core::DeployStats& stats) {
  rdo::obs::ScopedTimer timer(&stats.pack_seconds);
  pack_one();
  pack_two();
  pack_three();
  pack_four();
  pack_five();
  pack_six();
}
