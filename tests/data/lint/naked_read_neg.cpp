#include <fstream>
void f(std::ifstream& in, char* buf) {
  in.read(buf, 32);
  if (in.gcount() != 32) fail();
}
void g(std::ifstream& in, char* buf) {
  in.read(buf, 32);
  RDO_CHECK(in.good(), "short read");
}
void h(std::ifstream& in, char* buf) {
  in.read(buf, 32);
  if (!in) fail();
}
void not_a_read() {
  // in.read(buf, 32) named in a comment is not a read.
  const char* s = "in.read(buf, 32)";
  consume(s);
}
