#include <vector>
double f(const std::vector<double>& xs) {
  double total = 0.0;
  rdo::nn::parallel_for(xs.size(), [&](std::size_t i) {
    total += xs[i];
  });
  return total;
}
