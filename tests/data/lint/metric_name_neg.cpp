void f(rdo::obs::MetricsRegistry& reg) {
  reg.counter("serve_requests_total").inc();
  reg.gauge("serve_queue_depth").set(3);
  reg.histogram("deploy_compile_seconds").observe(1.0);
  reg.counter("pool_alloc_bytes").inc();
  reg.counter(dynamic_name).inc();  // non-literal names are out of scope
}
