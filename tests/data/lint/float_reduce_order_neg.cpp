#include <vector>
double f(const std::vector<double>& xs, std::vector<double>& per_chunk) {
  rdo::nn::parallel_for_chunked(xs.size(), [&](std::size_t c, std::size_t i) {
    double local = 0.0;  // declared inside the body: chunk-local
    local += xs[i];
    per_chunk[c] += xs[i];  // element access, one writer per chunk index
  });
  double total = 0.0;
  for (const double v : per_chunk) total += v;  // serial reduce is fine
  return total;
}
struct Stats {
  double sum = 0.0;
  void serial(const std::vector<double>& xs) {
    for (const double v : xs) sum += v;  // no parallel_for in sight
  }
};
