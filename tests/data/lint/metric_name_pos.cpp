void f(rdo::obs::MetricsRegistry& reg) {
  reg.counter("requests").inc();
  reg.counter("rdo_serve_requests_total").inc();
  reg.gauge("serve_latency_ms").set(3);
  reg.gauge("Serve_Queue_Depth").set(1);
  reg.histogram("serve_enqueue_wait").observe(1.0);
  reg.counter("pool_bytes_mb").inc();
}
