#include <vector>
void f(Reader& r, std::vector<int>& v) {
  const std::uint32_t n = r.scalar<std::uint32_t>("count");
  v.resize(n);
}
void g(std::istream& in, std::vector<int>& v) {
  std::uint32_t n = 0;
  read_u32(in, &n);
  v.reserve(n);
}
