#include <cstdlib>
#include <unordered_map>

// Trailing form: governs its own line.
long t() { return std::time(nullptr); }  // rdo-lint: allow(nondeterminism) wall-clock for a log banner only

// Standalone form: governs the next line that holds code.
// rdo-lint: allow(unordered-iter) order never observed, keys are dumped sorted
std::unordered_map<int, int> lookaside;

/* rdo-lint: allow(nondeterminism) block-comment form, same contract */
int r() { return rand(); }

// Multi-rule allowance on one line.
// rdo-lint: allow(nondeterminism, naked-read) fixture exercising two rules at once
long both(std::ifstream& f, char* b) { f.read(b, 8); return std::time(nullptr); }
