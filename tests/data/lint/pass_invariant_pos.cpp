class SilentPass final : public Pass {
 public:
  const char* name() const override { return "silent"; }
  void run(Plan& plan) const override { mutate(plan); }
  void check(const Plan& plan) const override { (void)plan; }
};
class NoCheckPass final : public Pass {
 public:
  const char* name() const override { return "nocheck"; }
  void run(Plan& plan) const override { mutate(plan); }
};
