#include <fstream>
void f(std::ifstream& in, char* buf) {
  in.read(buf, 32);
  touch(buf);
  touch(buf);
  touch(buf);
  touch(buf);
}
