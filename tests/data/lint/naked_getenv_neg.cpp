#include "obs/envvar.h"
const char* f() { return rdo::obs::env_knob("RDO_THREADS"); }
// Naming getenv in a comment or string is fine.
const char* doc() { return "std::getenv is banned outside envvar.cpp"; }
int my_getenv_cache_size() { return 4; }
