#include <cstdlib>
const char* f() { return std::getenv("RDO_THREADS"); }
const char* g() { return getenv("RDO_TRACE"); }
const char* h() { return secure_getenv("RDO_TRACE"); }
