// Weight quantization (NTW generation) and activation fake-quant.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dense.h"
#include "quant/act_quant.h"
#include "quant/quantizer.h"

using namespace rdo::nn;
using namespace rdo::quant;

namespace {

Dense make_dense_with(const std::vector<float>& w, std::int64_t in,
                      std::int64_t out) {
  Rng rng(1);
  Dense d(in, out, rng);
  for (std::int64_t r = 0; r < in; ++r) {
    for (std::int64_t c = 0; c < out; ++c) {
      d.set_weight_at(r, c, w[static_cast<std::size_t>(r * out + c)]);
    }
  }
  return d;
}

}  // namespace

TEST(Quantizer, RoundTripErrorBoundedByHalfStep) {
  Rng rng(2);
  Dense d(16, 8, rng);
  const LayerQuant lq = quantize_matrix(d, 8);
  for (std::int64_t r = 0; r < 16; ++r) {
    for (std::int64_t c = 0; c < 8; ++c) {
      const float w = d.weight_at(r, c);
      const float deq = lq.dequant(static_cast<float>(lq.at(r, c)));
      EXPECT_LE(std::fabs(w - deq), 0.5f * lq.scale + 1e-6f);
    }
  }
}

TEST(Quantizer, IntegersWithinRange) {
  Rng rng(3);
  Dense d(32, 4, rng);
  const LayerQuant lq = quantize_matrix(d, 8);
  for (int v : lq.q) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 255);
  }
}

TEST(Quantizer, ZeroIsExactlyRepresentable) {
  const LayerQuant lq =
      quantize_matrix(make_dense_with({-1.0f, 0.0f, 0.5f, 1.0f}, 4, 1), 8);
  EXPECT_NEAR(lq.dequant(static_cast<float>(lq.zero)), 0.0f, 1e-7f);
}

TEST(Quantizer, ZeroPointIsAlwaysMidRange) {
  // Symmetric quantization: the ISAAC weight shift is exactly half the
  // integer range, so the near-zero weight cluster of any trained layer
  // sits at 2^(bits-1), within reach of the signed offset registers.
  const LayerQuant pos =
      quantize_matrix(make_dense_with({0.5f, 1.0f, 1.5f, 2.0f}, 4, 1), 8);
  EXPECT_EQ(pos.zero, 128);
  EXPECT_NEAR(pos.dequant(static_cast<float>(pos.at(3, 0))), 2.0f,
              pos.scale);
  const LayerQuant neg = quantize_matrix(
      make_dense_with({-2.0f, -1.5f, -1.0f, -0.5f}, 4, 1), 8);
  EXPECT_EQ(neg.zero, 128);
  EXPECT_NEAR(neg.dequant(static_cast<float>(neg.at(0, 0))), -2.0f,
              neg.scale);
}

TEST(Quantizer, SymmetricRangeCoversMaxAbs) {
  const LayerQuant lq =
      quantize_matrix(make_dense_with({-0.3f, 1.2f, 0.1f, -0.9f}, 4, 1), 8);
  EXPECT_NEAR(lq.scale * 127.0f, 1.2f, 0.02f);
}

TEST(Quantizer, FourBitMode) {
  Rng rng(4);
  Dense d(8, 8, rng);
  const LayerQuant lq = quantize_matrix(d, 4);
  EXPECT_EQ(lq.levels(), 15);
  for (int v : lq.q) EXPECT_LE(v, 15);
}

TEST(Quantizer, RejectsBadBits) {
  Rng rng(5);
  Dense d(2, 2, rng);
  EXPECT_THROW(quantize_matrix(d, 0), std::invalid_argument);
  EXPECT_THROW(quantize_matrix(d, 17), std::invalid_argument);
}

TEST(Quantizer, ApplyQuantizedWritesBack) {
  Rng rng(6);
  Dense d(4, 4, rng);
  const LayerQuant lq = quantize_matrix(d, 8);
  apply_quantized(d, lq);
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(d.weight_at(r, c),
                      lq.dequant(static_cast<float>(lq.at(r, c))));
    }
  }
}

TEST(Quantizer, ConstantMatrixDoesNotBlowUp) {
  const LayerQuant lq =
      quantize_matrix(make_dense_with({0.0f, 0.0f, 0.0f, 0.0f}, 4, 1), 8);
  EXPECT_GT(lq.scale, 0.0f);
  EXPECT_NEAR(lq.dequant(static_cast<float>(lq.at(0, 0))), 0.0f, 1e-6f);
}

TEST(ActQuant, DisabledIsIdentity) {
  ActQuant aq(8);
  Tensor x({3});
  x[0] = 0.123f;
  x[1] = 4.567f;
  x[2] = 0.0f;
  Tensor y = aq.forward(x, false);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(ActQuant, ObservesMaxWhileDisabled) {
  ActQuant aq(8);
  Tensor x({2});
  x[0] = 1.0f;
  x[1] = 3.5f;
  (void)aq.forward(x, false);
  EXPECT_FLOAT_EQ(aq.observed_max(), 3.5f);
}

TEST(ActQuant, CalibratedSnapsToGrid) {
  ActQuant aq(8);
  aq.calibrate(255.0f);  // step = 1.0
  Tensor x({3});
  x[0] = 1.4f;
  x[1] = 1.6f;
  x[2] = 300.0f;  // above full scale -> clamp
  Tensor y = aq.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 255.0f);
}

TEST(ActQuant, ClampsNegativeToZero) {
  ActQuant aq(8);
  aq.calibrate(255.0f);
  Tensor x({1});
  x[0] = -3.0f;
  Tensor y = aq.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
}

TEST(ActQuant, QuantizationErrorBoundedByHalfStep) {
  ActQuant aq(8);
  aq.calibrate(1.0f);
  const float step = 1.0f / 255.0f;
  Rng rng(7);
  Tensor x({100});
  for (std::int64_t i = 0; i < 100; ++i) {
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  Tensor y = aq.forward(x, false);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_LE(std::fabs(y[i] - x[i]), 0.5f * step + 1e-7f);
  }
}

TEST(ActQuant, StraightThroughBackward) {
  ActQuant aq(8);
  aq.calibrate(1.0f);
  Tensor x({2});
  x[0] = 0.3f;
  x[1] = 0.7f;
  (void)aq.forward(x, false);
  Tensor g({2});
  g[0] = 1.5f;
  g[1] = -2.0f;
  Tensor gi = aq.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 1.5f);
  EXPECT_FLOAT_EQ(gi[1], -2.0f);
}

TEST(ActQuant, DisableReenablesPassthrough) {
  ActQuant aq(8);
  aq.calibrate(1.0f);
  EXPECT_TRUE(aq.enabled());
  aq.disable();
  EXPECT_FALSE(aq.enabled());
  Tensor x({1});
  x[0] = 0.12345f;
  EXPECT_FLOAT_EQ(aq.forward(x, false)[0], 0.12345f);
}
