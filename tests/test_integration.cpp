// End-to-end integration: miniature versions of the paper's experiments,
// asserting the qualitative shapes the full benches reproduce at scale.
#include <gtest/gtest.h>

#include "arch/isaac_cost.h"
#include "core/deploy.h"
#include "core/plan.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

using namespace rdo;
using namespace rdo::core;

namespace {

/// One trained LeNet on a reduced MNIST-like task, shared across tests.
struct LeNetFixture {
  data::SyntheticDataset ds;
  std::unique_ptr<nn::Sequential> net;
  float ideal = 0.0f;

  LeNetFixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.train_per_class = 40;
    spec.test_per_class = 15;
    spec.noise = 0.25;
    ds = data::make_synthetic(spec);
    nn::Rng rng(31);
    net = models::make_lenet({}, rng);
    nn::SGD opt(net->params(), 0.04f, 0.9f, 1e-4f);
    for (int e = 0; e < 10; ++e) {
      nn::train_epoch(*net, opt, ds.train(), 32, rng);
    }
    ideal = nn::evaluate(*net, ds.test(), 64).accuracy;
  }

  DeployOptions options(Scheme s, int m, double sigma) const {
    DeployOptions o;
    o.scheme = s;
    o.offsets.m = m;
    o.cell = {rram::CellKind::SLC, 200.0};
    o.variation.sigma = sigma;
    o.lut_k_sets = 8;
    o.lut_j_cycles = 8;
    o.grad_samples = 128;
    o.pwt.epochs = 2;
    o.pwt.max_samples = 200;
    o.seed = 17;
    return o;
  }

  float acc(Scheme s, int m, double sigma, int repeats = 1) {
    return run_scheme(*net, options(s, m, sigma), ds.train(), ds.test(),
                      repeats)
        .mean_accuracy;
  }
};

LeNetFixture& fx() {
  static LeNetFixture f;
  return f;
}

}  // namespace

TEST(Integration, LeNetTrainsWell) { EXPECT_GT(fx().ideal, 0.9f); }

TEST(Integration, Fig5aShapePlainCollapses) {
  // Calibrated sigma* = 0.3 puts our scaled substrate in the paper's
  // sigma = 0.5 regime (see EXPERIMENTS.md); plain drops to near chance.
  EXPECT_LT(fx().acc(Scheme::Plain, 16, 0.3), 0.4f);
}

TEST(Integration, Fig5aShapeFullMethodNearIdeal) {
  // Even at the nominal sigma = 0.5 the full method stays near ideal.
  const float full = fx().acc(Scheme::VAWOStarPWT, 16, 0.5);
  EXPECT_GT(full, fx().ideal - 0.1f);
}

TEST(Integration, Fig5aShapeMethodOrdering) {
  auto& f = fx();
  const float plain = f.acc(Scheme::Plain, 16, 0.3);
  const float vawo = f.acc(Scheme::VAWO, 16, 0.3);
  const float star = f.acc(Scheme::VAWOStar, 16, 0.3);
  const float pwt = f.acc(Scheme::PWT, 16, 0.3);
  const float full = f.acc(Scheme::VAWOStarPWT, 16, 0.3);
  EXPECT_GT(vawo, plain + 0.1f);
  EXPECT_GT(star, vawo + 0.1f);   // the complement technique pays off
  EXPECT_GT(pwt, plain + 0.3f);   // paper: PWT alone ~ideal for LeNet
  EXPECT_GE(full + 0.02f, std::max({plain, vawo, star, pwt}));
  EXPECT_GT(full, f.ideal - 0.08f);
}

TEST(Integration, Fig5cShapeAccuracyFallsWithSigma) {
  auto& f = fx();
  DeployOptions base = f.options(Scheme::VAWOStarPWT, 16, 0.2);
  base.cell = {rram::CellKind::MLC2, 200.0};
  float prev = 1.1f;
  for (double sigma : {0.2, 1.0}) {
    DeployOptions o = base;
    o.variation.sigma = sigma;
    const float a =
        run_scheme(*f.net, o, f.ds.train(), f.ds.test(), 1).mean_accuracy;
    EXPECT_LE(a, prev + 0.05f);
    prev = a;
  }
}

TEST(Integration, TableIShapeReadingPowerSavings) {
  auto& f = fx();
  // VAWO* reduces total device reading power, more at finer granularity.
  const DeploymentPlan p16 =
      compile_plan(*f.net, f.options(Scheme::VAWOStar, 16, 0.5),
                   f.ds.train());
  const double r16 = p16.assigned_read_power() / p16.plain_read_power();

  const DeploymentPlan p128 =
      compile_plan(*f.net, f.options(Scheme::VAWOStar, 128, 0.5),
                   f.ds.train());
  const double r128 = p128.assigned_read_power() / p128.plain_read_power();

  EXPECT_LT(r16, 1.0);
  EXPECT_LT(r128, 1.0);
  EXPECT_LE(r16, r128 + 0.05);  // finer m saves at least as much
}

TEST(Integration, TableIIShapeFromMeasuredRatio) {
  auto& f = fx();
  DeployOptions o = f.options(Scheme::VAWOStar, 16, 0.5);
  o.cell = {rram::CellKind::MLC2, 200.0};
  const DeploymentPlan plan = compile_plan(*f.net, o, f.ds.train());
  const double ratio = plan.assigned_read_power() / plan.plain_read_power();
  const arch::TileOverhead ov = arch::tile_overhead(16, 8, ratio);
  EXPECT_GT(ov.area_pct, 0.0);
  EXPECT_LT(ov.area_pct, 30.0);
  EXPECT_LT(ov.power_pct, 10.0);
}

TEST(Integration, OffsetsAreTheOnlyMutation) {
  // Backends execute on a private twin, so a second deployment from the
  // same seed reproduces identical accuracy — no hidden state leaks.
  auto& f = fx();
  const float a1 = f.acc(Scheme::VAWOStarPWT, 16, 0.5);
  const float a2 = f.acc(Scheme::VAWOStarPWT, 16, 0.5);
  EXPECT_FLOAT_EQ(a1, a2);
}

TEST(Integration, SaveLoadThenDeployMatches) {
  auto& f = fx();
  const std::string path = std::string(::testing::TempDir()) + "lenet.bin";
  nn::save_params(*f.net, path);
  nn::Rng rng(31);
  auto clone = models::make_lenet({}, rng);
  ASSERT_TRUE(nn::load_params(*clone, path));
  DeployOptions o = f.options(Scheme::VAWOStar, 16, 0.5);
  const float a =
      run_scheme(*clone, o, f.ds.train(), f.ds.test(), 1).mean_accuracy;
  const float b = f.acc(Scheme::VAWOStar, 16, 0.5);
  EXPECT_FLOAT_EQ(a, b);
  std::remove(path.c_str());
}
