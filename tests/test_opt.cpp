// Optimizer pass pipeline (core/opt): parse_pass_list, the four shipped
// passes (parity + improvement per pass), provenance, and the RDP2
// round-trip of an optimized plan.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/opt/pipeline.h"
#include "core/plan.h"
#include "nn/dense.h"
#include "nn/sequential.h"

using namespace rdo;

namespace {

constexpr const char* kAllPasses =
    "tune_group_size,color_offset_registers,eliminate_dead_tiles,"
    "canonicalize_complement";

struct Fixture {
  std::unique_ptr<nn::Sequential> net;
  nn::Tensor images;
  std::vector<int> labels;
  core::DeployOptions opt;

  [[nodiscard]] nn::DataView train() const { return {&images, &labels}; }
};

/// Tiny deterministic compile fixture (same shape as the test_plan_io
/// one): one Dense layer, cheap LUT protocol, scheme set per test.
Fixture make_fixture(core::Scheme scheme) {
  Fixture f;
  nn::Rng rng(11);
  f.net = std::make_unique<nn::Sequential>();
  f.net->emplace<nn::Dense>(6, 4, rng);
  f.images = nn::Tensor({12, 6});
  for (std::int64_t i = 0; i < f.images.size(); ++i) {
    f.images[i] = 0.2f * static_cast<float>(i % 7) - 0.6f;
  }
  for (int i = 0; i < 12; ++i) f.labels.push_back(i % 4);
  f.opt.scheme = scheme;
  f.opt.weight_bits = 4;
  f.opt.offsets.m = 2;
  f.opt.offsets.offset_bits = 4;
  f.opt.variation.sigma = 0.5;
  f.opt.lut_k_sets = 2;
  f.opt.lut_j_cycles = 2;
  f.opt.grad_samples = 12;
  f.opt.seed = 11;
  return f;
}

std::string save_bytes(const core::DeploymentPlan& plan, std::uint64_t fp) {
  std::ostringstream out(std::ios::binary);
  plan.save(out, fp);
  return out.str();
}

/// Deploy one programming cycle on the fast backend and evaluate.
float eval_once(const core::DeploymentPlan& plan, const Fixture& f) {
  core::EffectiveWeightBackend be(plan, *f.net);
  be.program_cycle(0);
  return be.evaluate(f.train(), 4);
}

bool assign_equal(const core::VawoResult& a, const core::VawoResult& b) {
  return a.ctw == b.ctw && a.offsets == b.offsets &&
         a.complemented == b.complemented &&
         a.groups_per_col == b.groups_per_col;
}

}  // namespace

TEST(OptParse, RegistryHoldsCanonicalOrder) {
  const std::vector<std::string>& names = core::opt::registered_passes();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "tune_group_size");
  EXPECT_EQ(names[1], "color_offset_registers");
  EXPECT_EQ(names[2], "eliminate_dead_tiles");
  EXPECT_EQ(names[3], "canonicalize_complement");
}

TEST(OptParse, RoundTripsValidLists) {
  auto all = core::opt::parse_pass_list(kAllPasses);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(*all, core::opt::registered_passes());

  auto one = core::opt::parse_pass_list("eliminate_dead_tiles");
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->size(), 1u);

  // Order is preserved, not canonicalized.
  auto rev =
      core::opt::parse_pass_list("canonicalize_complement,tune_group_size");
  ASSERT_TRUE(rev.has_value());
  EXPECT_EQ((*rev)[0], "canonicalize_complement");
  EXPECT_EQ((*rev)[1], "tune_group_size");
}

TEST(OptParse, EmptyStringIsEmptyList) {
  auto names = core::opt::parse_pass_list("");
  ASSERT_TRUE(names.has_value());
  EXPECT_TRUE(names->empty());
}

TEST(OptParse, RejectsUnknownRepeatedAndEmptyNames) {
  std::string err;
  EXPECT_FALSE(core::opt::parse_pass_list("bogus_pass", &err).has_value());
  EXPECT_NE(err.find("bogus_pass"), std::string::npos);
  EXPECT_NE(err.find("tune_group_size"), std::string::npos)
      << "error should list the known passes";

  EXPECT_FALSE(
      core::opt::parse_pass_list("tune_group_size,tune_group_size", &err)
          .has_value());
  EXPECT_FALSE(
      core::opt::parse_pass_list("tune_group_size,,eliminate_dead_tiles",
                                 &err)
          .has_value());
  EXPECT_FALSE(core::opt::parse_pass_list(",", &err).has_value());
}

TEST(OptPipeline, UnknownNameThrows) {
  Fixture f = make_fixture(core::Scheme::Plain);
  core::DeploymentPlan plan = core::compile_plan(*f.net, f.opt, f.train());
  EXPECT_THROW(core::opt::run_pipeline(plan, {"bogus"}),
               std::invalid_argument);
}

TEST(OptPipeline, EmptyListLeavesPlanByteIdentical) {
  Fixture f = make_fixture(core::Scheme::VAWOStar);
  const core::DeploymentPlan base =
      core::compile_plan(*f.net, f.opt, f.train());
  Fixture g = make_fixture(core::Scheme::VAWOStar);
  g.opt.opt_passes = "";
  const core::DeploymentPlan same =
      core::compile_plan(*g.net, g.opt, g.train());
  EXPECT_EQ(save_bytes(base, 1), save_bytes(same, 1));
  EXPECT_TRUE(base.passes_applied.empty());
}

TEST(OptPipeline, RecordsProvenanceInOrder) {
  Fixture f = make_fixture(core::Scheme::VAWOStar);
  f.opt.opt_passes = kAllPasses;
  const core::DeploymentPlan plan =
      core::compile_plan(*f.net, f.opt, f.train());
  EXPECT_EQ(plan.passes_applied, core::opt::registered_passes());
}

TEST(OptPipeline, OptimizedCompileIsDeterministic) {
  Fixture f = make_fixture(core::Scheme::VAWOStar);
  f.opt.opt_passes = kAllPasses;
  const core::DeploymentPlan a =
      core::compile_plan(*f.net, f.opt, f.train());
  Fixture g = make_fixture(core::Scheme::VAWOStar);
  g.opt.opt_passes = kAllPasses;
  const core::DeploymentPlan b =
      core::compile_plan(*g.net, g.opt, g.train());
  EXPECT_EQ(save_bytes(a, 7), save_bytes(b, 7));
}

TEST(OptTuneGroupSize, PlainSchemeSharesRegistersWithoutAccuracyChange) {
  Fixture f = make_fixture(core::Scheme::Plain);
  const core::DeploymentPlan base =
      core::compile_plan(*f.net, f.opt, f.train());
  Fixture g = make_fixture(core::Scheme::Plain);
  g.opt.opt_passes = "tune_group_size";
  const core::DeploymentPlan tuned =
      core::compile_plan(*g.net, g.opt, g.train());

  // Plain offsets are all zero, so sibling groups always agree and the
  // 6-row layer's m doubles 2 -> 4 (rows=6: ceil(6/2)=3 groups -> m=4:
  // ceil(6/4)=2 groups). Registers strictly decrease.
  EXPECT_LT(tuned.total_offset_registers(), base.total_offset_registers());
  EXPECT_GT(tuned.layers[0].m, base.layers[0].m);
  // CTWs are untouched; the merged assignment executes bit-identically.
  EXPECT_EQ(tuned.layers[0].assign.ctw, base.layers[0].assign.ctw);
  EXPECT_EQ(eval_once(tuned, g), eval_once(base, f));
}

TEST(OptTuneGroupSize, VawoReSolveIsBitDeterministic) {
  Fixture f = make_fixture(core::Scheme::VAWOStar);
  const core::DeploymentPlan base =
      core::compile_plan(*f.net, f.opt, f.train());
  Fixture g = make_fixture(core::Scheme::VAWOStar);
  g.opt.opt_passes = "tune_group_size";
  const core::DeploymentPlan tuned =
      core::compile_plan(*g.net, g.opt, g.train());

  // Whether or not any layer tuned, the accepted assignment must expand
  // to exactly the baseline per-row assignment: same CTWs, and eval is
  // bit-identical on the same backend.
  EXPECT_EQ(tuned.layers[0].assign.ctw, base.layers[0].assign.ctw);
  EXPECT_LE(tuned.total_offset_registers(), base.total_offset_registers());
  EXPECT_EQ(eval_once(tuned, g), eval_once(base, f));
}

TEST(OptColorRegisters, CountsDistinctOffsetValues) {
  Fixture f = make_fixture(core::Scheme::Plain);
  core::DeploymentPlan plan = core::compile_plan(*f.net, f.opt, f.train());
  const core::VawoResult before = plan.layers[0].assign;
  const std::int64_t geometric = plan.total_offset_registers();
  core::opt::run_pipeline(plan, {"color_offset_registers"});
  // Plain scheme: every group stores (0, direct), one distinct value per
  // layer — maximal sharing.
  EXPECT_EQ(plan.layers[0].offset_registers, 1);
  EXPECT_LT(plan.total_offset_registers(), geometric);
  // Accounting-only: the assignment is untouched.
  EXPECT_TRUE(assign_equal(plan.layers[0].assign, before));
}

TEST(OptDeadTiles, SkipsAllZeroColumnsAndPreservesLiveDraws) {
  // Zero out one output column of the Dense layer: it quantizes to the
  // zero point everywhere and becomes dead.
  Fixture f = make_fixture(core::Scheme::Plain);
  {
    std::vector<nn::Param*> ps = f.net->params();
    // Dense stores W as fan_in x fan_out row-major; column 2 of 4.
    nn::Param* w = ps[0];
    for (std::int64_t r = 0; r < 6; ++r) w->value[r * 4 + 2] = 0.0f;
  }
  const core::DeploymentPlan base =
      core::compile_plan(*f.net, f.opt, f.train());
  core::DeploymentPlan dead = base;
  core::opt::run_pipeline(dead, {"eliminate_dead_tiles"});

  ASSERT_EQ(dead.layers[0].dead_cols.size(), 4u);
  EXPECT_EQ(dead.layers[0].dead_cols[2], 1);
  EXPECT_EQ(dead.layers[0].dead_cols[0], 0);

  core::EffectiveWeightBackend bbase(base, *f.net);
  core::EffectiveWeightBackend bdead(dead, *f.net);
  bbase.program_cycle(0);
  bdead.program_cycle(0);
  // One 6-row column skipped: 6 fewer weights, pulses scale with
  // cells/weight. Counters are deterministic, so exact.
  EXPECT_EQ(bdead.stats().weights_programmed,
            bbase.stats().weights_programmed - 6);
  EXPECT_EQ(bdead.stats().device_pulses,
            bbase.stats().device_pulses -
                6 * base.prog.cells_per_weight());
  // Live weights consumed the same RNG draws, and the dead column reads
  // back exactly zero, so accuracy cannot degrade vs the noisy zero.
  const float acc_base = bbase.evaluate(f.train(), 4);
  const float acc_dead = bdead.evaluate(f.train(), 4);
  EXPECT_GE(acc_dead, acc_base);
}

TEST(OptCanonicalize, IdentityOnSolverOutput) {
  Fixture f = make_fixture(core::Scheme::VAWOStar);
  const core::DeploymentPlan base =
      core::compile_plan(*f.net, f.opt, f.train());
  core::DeploymentPlan canon = base;
  core::opt::run_pipeline(canon, {"canonicalize_complement"});
  // The solver enumerates the direct form first with strict-< winners,
  // so re-solving an untampered plan reproduces it exactly.
  EXPECT_TRUE(assign_equal(canon.layers[0].assign, base.layers[0].assign));
}

TEST(OptCanonicalize, RepairsTamperedComplementFlags) {
  Fixture f = make_fixture(core::Scheme::VAWOStar);
  const core::DeploymentPlan base =
      core::compile_plan(*f.net, f.opt, f.train());
  core::DeploymentPlan tampered = base;
  tampered.layers[0].assign.complemented[0] ^= 1;
  core::opt::run_pipeline(tampered, {"canonicalize_complement"});
  EXPECT_TRUE(
      assign_equal(tampered.layers[0].assign, base.layers[0].assign));
}

TEST(OptPipeline, PwtSchemesAreLeftUntouched) {
  Fixture f = make_fixture(core::Scheme::VAWOStarPWT);
  const core::DeploymentPlan base =
      core::compile_plan(*f.net, f.opt, f.train());
  Fixture g = make_fixture(core::Scheme::VAWOStarPWT);
  g.opt.opt_passes = kAllPasses;
  const core::DeploymentPlan opt =
      core::compile_plan(*g.net, g.opt, g.train());
  // All four passes skip PWT schemes (compile-time sharing would change
  // the tuning head-room and counters); only provenance differs.
  EXPECT_TRUE(assign_equal(opt.layers[0].assign, base.layers[0].assign));
  EXPECT_EQ(opt.layers[0].m, base.layers[0].m);
  EXPECT_EQ(opt.total_offset_registers(), base.total_offset_registers());
  EXPECT_EQ(opt.passes_applied, core::opt::registered_passes());
}

TEST(OptPlanIo, OptimizedPlanRoundTripsByteIdentical) {
  Fixture f = make_fixture(core::Scheme::VAWOStar);
  f.opt.opt_passes = kAllPasses;
  const core::DeploymentPlan plan =
      core::compile_plan(*f.net, f.opt, f.train());
  const std::uint64_t fp =
      core::plan_fingerprint(*f.net, f.opt, f.train());
  const std::string bytes = save_bytes(plan, fp);
  std::istringstream in(bytes, std::ios::binary);
  auto loaded = core::DeploymentPlan::load(in, fp, "test");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(save_bytes(*loaded, fp), bytes);
  EXPECT_EQ(loaded->passes_applied, plan.passes_applied);
  EXPECT_EQ(loaded->layers[0].m, plan.layers[0].m);
  EXPECT_EQ(loaded->total_offset_registers(),
            plan.total_offset_registers());
  EXPECT_EQ(eval_once(*loaded, f), eval_once(plan, f));
}

TEST(OptPlanIo, PassListChangesFingerprint) {
  Fixture f = make_fixture(core::Scheme::VAWOStar);
  const std::uint64_t fp_plain =
      core::plan_fingerprint(*f.net, f.opt, f.train());
  f.opt.opt_passes = kAllPasses;
  const std::uint64_t fp_opt =
      core::plan_fingerprint(*f.net, f.opt, f.train());
  EXPECT_NE(fp_plain, fp_opt);
}

TEST(OptPlanIo, RejectsBadStoredPassList) {
  Fixture f = make_fixture(core::Scheme::VAWOStar);
  core::DeploymentPlan plan = core::compile_plan(*f.net, f.opt, f.train());
  plan.opt.opt_passes = "bogus_pass";  // save() does not re-validate
  const std::string bytes = save_bytes(plan, 3);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(core::DeploymentPlan::load(in, 3, "test"), core::PlanError);
}

TEST(OptPlanIo, RejectsTamperedProvenance) {
  Fixture f = make_fixture(core::Scheme::VAWOStar);
  f.opt.opt_passes = "color_offset_registers";
  const core::DeploymentPlan plan =
      core::compile_plan(*f.net, f.opt, f.train());
  std::string bytes = save_bytes(plan, 3);
  ASSERT_FALSE(plan.passes_applied.empty());
  bytes.back() ^= 0x01;  // last byte of the last recorded pass name
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(core::DeploymentPlan::load(in, 3, "test"), core::PlanError);
}
